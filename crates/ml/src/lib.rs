//! Machine-learning substrate for the WISE reproduction.
//!
//! The paper trains one decision-tree classifier per `{method,
//! parameter}` configuration (29 trees), with Gini split criterion,
//! maximum depth 15, and minimal cost-complexity pruning at
//! `ccp_alpha = 0.005` (Section 4.3, Table 4). No ML crates are
//! available offline, so the trees are implemented here from scratch:
//!
//! * [`tree`] — CART classification trees (Gini impurity, midpoint
//!   thresholds, deterministic tie-breaking) plus sklearn-style minimal
//!   cost-complexity pruning; training runs the presorted columnar
//!   engine of [`presort`] (the node-local re-sorting trainer survives
//!   as `fit_reference`, the parity oracle);
//! * [`presort`] — the per-fit sorted-order layer (sort each feature
//!   column once, stable-partition the orders down the tree), shareable
//!   across every fit over the same `(matrix, row set)`;
//! * [`dataset`] — the shared columnar [`FeatureMatrix`], label views
//!   over it, and seeded k-fold splitting (the paper uses 10-fold
//!   cross-validation);
//! * [`explain`] — per-prediction root-to-leaf decision paths
//!   ([`DecisionPath`]) so every classifier vote in the 29-model
//!   selection is auditable, not a black box;
//! * [`confusion`] — confusion matrices with the paper's two accuracy
//!   readings (exact and within-one-class distance);
//! * [`grid`] — the hyperparameter grid sweep of Table 4 and
//!   fold-plan-backed cross-validation helpers.

pub mod confusion;
pub mod dataset;
pub mod explain;
pub mod forest;
pub mod grid;
pub mod presort;
pub mod tree;

pub use confusion::ConfusionMatrix;
pub use dataset::{kfold_indices, Dataset, FeatureMatrix};
pub use explain::{DecisionPath, DecisionStep};
pub use forest::{ForestParams, RandomForest};
pub use grid::FoldPlan;
pub use presort::Presort;
pub use tree::{DecisionTree, PartialPrediction, TreeParams};
