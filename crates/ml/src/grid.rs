//! Hyperparameter grid sweeps (paper Table 4) and cross-validated
//! evaluation helpers.
//!
//! Cross-validation is backed by a [`FoldPlan`]: the seeded fold split
//! plus one prebuilt [`Presort`] per fold's training subset. The
//! presort layer is label-independent, so one plan serves every tree
//! configuration (the 29 registry models) *and* every Table 4 grid
//! cell over the same feature matrix — the whole
//! `grid x configs x folds` pyramid sorts each fold's columns exactly
//! once.

use crate::confusion::ConfusionMatrix;
use crate::dataset::{kfold_indices, Dataset, FeatureMatrix};
use crate::presort::Presort;
use crate::tree::{DecisionTree, TreeParams};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The paper's Table 4 axes.
pub const DEPTH_GRID: [usize; 4] = [5, 10, 15, 20];
pub const CCP_GRID: [f64; 6] = [0.0, 0.001, 0.005, 0.01, 0.05, 0.1];

/// One cell of a grid sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridCell {
    pub max_depth: usize,
    pub ccp_alpha: f64,
    pub score: f64,
}

/// Runs `eval` for every `(depth, ccp)` combination of Table 4 — the 24
/// cells in parallel — and returns the grid row-major (depth-major,
/// ccp-minor; output order is deterministic regardless of scheduling).
pub fn sweep_table4(eval: impl Fn(TreeParams) -> f64 + Sync) -> Vec<GridCell> {
    let cells: Vec<(usize, f64)> =
        DEPTH_GRID.iter().flat_map(|&d| CCP_GRID.iter().map(move |&ccp| (d, ccp))).collect();
    cells
        .into_par_iter()
        .map(|(max_depth, ccp_alpha)| {
            let params = TreeParams { max_depth, ccp_alpha, ..Default::default() };
            GridCell { max_depth, ccp_alpha, score: eval(params) }
        })
        .collect()
}

/// A reusable cross-validation plan over one feature-matrix view: the
/// seeded k-fold split plus a presorted columnar layer per fold's
/// training subset. Build once, fit many — the plan is immutable and
/// `Sync`, so grid cells and configurations can evaluate against it in
/// parallel.
#[derive(Debug, Clone)]
pub struct FoldPlan {
    matrix: Arc<FeatureMatrix>,
    /// Matrix row behind each base-dataset position.
    base_rows: Vec<u32>,
    folds: Vec<(Vec<usize>, Vec<usize>)>,
    /// One presort per fold, over that fold's training subset.
    presorts: Vec<Presort>,
    k: usize,
    seed: u64,
}

impl FoldPlan {
    /// Builds the plan for a view of `matrix` (`base_rows` is the
    /// matrix row behind each sample position; pass the identity for a
    /// full-matrix dataset). Fold presorts build in parallel.
    pub fn build(matrix: &Arc<FeatureMatrix>, base_rows: &[u32], k: usize, seed: u64) -> FoldPlan {
        let folds = kfold_indices(base_rows.len(), k, seed);
        let presorts: Vec<Presort> = folds
            .par_iter()
            .map(|(train_idx, _)| {
                let rows: Vec<u32> = train_idx.iter().map(|&i| base_rows[i]).collect();
                Presort::build(matrix, &rows)
            })
            .collect();
        FoldPlan {
            matrix: Arc::clone(matrix),
            base_rows: base_rows.to_vec(),
            folds,
            presorts,
            k,
            seed,
        }
    }

    /// Builds the plan for an existing dataset's view (labels are
    /// ignored — the plan is label-independent).
    pub fn for_dataset(data: &Dataset, k: usize, seed: u64) -> FoldPlan {
        Self::build(data.matrix(), data.row_indices(), k, seed)
    }

    /// `(train, test)` position indices per fold.
    pub fn folds(&self) -> &[(Vec<usize>, Vec<usize>)] {
        &self.folds
    }

    pub fn k(&self) -> usize {
        self.k
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether this plan was built for exactly `data`'s view.
    pub fn matches(&self, data: &Dataset) -> bool {
        Arc::ptr_eq(&self.matrix, data.matrix()) && self.base_rows == data.row_indices()
    }

    /// The training subset of fold `f` for a dataset sharing this
    /// plan's view, as a cheap view dataset.
    fn train_subset(&self, data: &Dataset, f: usize) -> Dataset {
        data.subset(&self.folds[f].0)
    }
}

/// K-fold cross-validated predictions for one tree configuration:
/// returns `(true, predicted)` pairs covering every sample exactly once,
/// plus the combined confusion matrix — the construction behind
/// Figure 10. Builds a fresh [`FoldPlan`]; when evaluating many
/// configurations or grid cells over the same features, build the plan
/// once and call [`cross_val_confusion_planned`].
pub fn cross_val_confusion(
    data: &Dataset,
    params: TreeParams,
    k: usize,
    seed: u64,
) -> (Vec<(u32, u32)>, ConfusionMatrix) {
    let plan = FoldPlan::for_dataset(data, k, seed);
    cross_val_confusion_planned(&plan, data, params)
}

/// [`cross_val_confusion`] against a prebuilt [`FoldPlan`] (shared
/// presort layer; no per-call sorting). `data` must share the plan's
/// matrix view — labels are free to differ, which is exactly what the
/// 29 per-configuration datasets do.
pub fn cross_val_confusion_planned(
    plan: &FoldPlan,
    data: &Dataset,
    params: TreeParams,
) -> (Vec<(u32, u32)>, ConfusionMatrix) {
    assert!(plan.matches(data), "fold plan was built for a different dataset view");
    let mut pairs = vec![(0u32, 0u32); data.len()];
    let mut cm = ConfusionMatrix::new(data.n_classes());
    for (f, (_, test_idx)) in plan.folds.iter().enumerate() {
        let train = plan.train_subset(data, f);
        let tree = DecisionTree::fit_with(&train, &plan.presorts[f], params);
        for &i in test_idx {
            let truth = data.label(i);
            let pred = tree.predict(data.row(i));
            pairs[i] = (truth, pred);
            cm.record(truth, pred);
        }
    }
    (pairs, cm)
}

/// Out-of-fold predictions only (when the caller aggregates its own
/// metric, e.g. the end-to-end speedup of Table 4).
pub fn cross_val_predictions(data: &Dataset, params: TreeParams, k: usize, seed: u64) -> Vec<u32> {
    cross_val_confusion(data, params, k, seed).0.into_iter().map(|(_, p)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        // Cleanly separable three-class problem.
        let rows: Vec<Vec<f64>> = (0..90).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let labels: Vec<u32> = (0..90).map(|i| (i / 30) as u32).collect();
        Dataset::new(rows, labels, 3)
    }

    #[test]
    fn table4_grid_shape() {
        let cells = sweep_table4(|p| p.max_depth as f64 + p.ccp_alpha);
        assert_eq!(cells.len(), 24);
        assert_eq!(cells[0].max_depth, 5);
        assert_eq!(cells[0].ccp_alpha, 0.0);
        assert_eq!(cells[23].max_depth, 20);
        assert!((cells[23].ccp_alpha - 0.1).abs() < 1e-12);
    }

    #[test]
    fn table4_parallel_order_is_row_major() {
        // Deterministic row-major output order whatever the thread
        // interleaving: cell i covers (DEPTH_GRID[i/6], CCP_GRID[i%6]).
        let cells = sweep_table4(|p| p.max_depth as f64 * 1000.0 + p.ccp_alpha);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.max_depth, DEPTH_GRID[i / CCP_GRID.len()]);
            assert_eq!(c.ccp_alpha, CCP_GRID[i % CCP_GRID.len()]);
            assert_eq!(c.score, c.max_depth as f64 * 1000.0 + c.ccp_alpha);
        }
    }

    #[test]
    fn cross_val_covers_every_sample() {
        let d = dataset();
        let (pairs, cm) = cross_val_confusion(&d, TreeParams::default(), 10, 1);
        assert_eq!(pairs.len(), d.len());
        assert_eq!(cm.total(), d.len() as u64);
        // Separable data: held-out accuracy should be high.
        assert!(cm.accuracy() > 0.9, "accuracy {}", cm.accuracy());
        // Truth labels recorded faithfully.
        for (i, &(t, _)) in pairs.iter().enumerate() {
            assert_eq!(t, d.label(i));
        }
    }

    #[test]
    fn cross_val_deterministic() {
        let d = dataset();
        let a = cross_val_predictions(&d, TreeParams::default(), 5, 3);
        let b = cross_val_predictions(&d, TreeParams::default(), 5, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn planned_cross_val_matches_unplanned_across_label_sets() {
        // One plan, two label assignments over the same matrix: each
        // must reproduce its own from-scratch run exactly.
        let d = dataset();
        let plan = FoldPlan::for_dataset(&d, 5, 7);
        let alt_labels: Vec<u32> = (0..d.len()).map(|i| (i % 3) as u32).collect();
        let alt = Dataset::from_matrix(Arc::clone(d.matrix()), alt_labels, 3);
        for data in [&d, &alt] {
            let (pairs_a, cm_a) = cross_val_confusion_planned(&plan, data, TreeParams::default());
            let (pairs_b, cm_b) = cross_val_confusion(data, TreeParams::default(), 5, 7);
            assert_eq!(pairs_a, pairs_b);
            assert_eq!(cm_a, cm_b);
        }
    }

    #[test]
    #[should_panic(expected = "different dataset view")]
    fn plan_rejects_foreign_dataset() {
        let d = dataset();
        let plan = FoldPlan::for_dataset(&d, 5, 7);
        let other = dataset(); // same contents, different matrix allocation
        cross_val_confusion_planned(&plan, &other, TreeParams::default());
    }
}
