//! Hyperparameter grid sweeps (paper Table 4) and cross-validated
//! evaluation helpers.

use crate::confusion::ConfusionMatrix;
use crate::dataset::{kfold_indices, Dataset};
use crate::tree::{DecisionTree, TreeParams};
use serde::{Deserialize, Serialize};

/// The paper's Table 4 axes.
pub const DEPTH_GRID: [usize; 4] = [5, 10, 15, 20];
pub const CCP_GRID: [f64; 6] = [0.0, 0.001, 0.005, 0.01, 0.05, 0.1];

/// One cell of a grid sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridCell {
    pub max_depth: usize,
    pub ccp_alpha: f64,
    pub score: f64,
}

/// Runs `eval` for every `(depth, ccp)` combination of Table 4 and
/// returns the grid row-major (depth-major, ccp-minor).
pub fn sweep_table4(mut eval: impl FnMut(TreeParams) -> f64) -> Vec<GridCell> {
    let mut out = Vec::with_capacity(DEPTH_GRID.len() * CCP_GRID.len());
    for &d in &DEPTH_GRID {
        for &ccp in &CCP_GRID {
            let params = TreeParams { max_depth: d, ccp_alpha: ccp, ..Default::default() };
            out.push(GridCell { max_depth: d, ccp_alpha: ccp, score: eval(params) });
        }
    }
    out
}

/// K-fold cross-validated predictions for one tree configuration:
/// returns `(true, predicted)` pairs covering every sample exactly once,
/// plus the combined confusion matrix — the construction behind
/// Figure 10.
pub fn cross_val_confusion(
    data: &Dataset,
    params: TreeParams,
    k: usize,
    seed: u64,
) -> (Vec<(u32, u32)>, ConfusionMatrix) {
    let folds = kfold_indices(data.len(), k, seed);
    let mut pairs = vec![(0u32, 0u32); data.len()];
    let mut cm = ConfusionMatrix::new(data.n_classes());
    for (train_idx, test_idx) in folds {
        let train = data.subset(&train_idx);
        let tree = DecisionTree::fit(&train, params);
        for &i in &test_idx {
            let truth = data.label(i);
            let pred = tree.predict(data.row(i));
            pairs[i] = (truth, pred);
            cm.record(truth, pred);
        }
    }
    (pairs, cm)
}

/// Out-of-fold predictions only (when the caller aggregates its own
/// metric, e.g. the end-to-end speedup of Table 4).
pub fn cross_val_predictions(data: &Dataset, params: TreeParams, k: usize, seed: u64) -> Vec<u32> {
    cross_val_confusion(data, params, k, seed).0.into_iter().map(|(_, p)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        // Cleanly separable three-class problem.
        let rows: Vec<Vec<f64>> = (0..90).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let labels: Vec<u32> = (0..90).map(|i| (i / 30) as u32).collect();
        Dataset::new(rows, labels, 3)
    }

    #[test]
    fn table4_grid_shape() {
        let cells = sweep_table4(|p| p.max_depth as f64 + p.ccp_alpha);
        assert_eq!(cells.len(), 24);
        assert_eq!(cells[0].max_depth, 5);
        assert_eq!(cells[0].ccp_alpha, 0.0);
        assert_eq!(cells[23].max_depth, 20);
        assert!((cells[23].ccp_alpha - 0.1).abs() < 1e-12);
    }

    #[test]
    fn cross_val_covers_every_sample() {
        let d = dataset();
        let (pairs, cm) = cross_val_confusion(&d, TreeParams::default(), 10, 1);
        assert_eq!(pairs.len(), d.len());
        assert_eq!(cm.total(), d.len() as u64);
        // Separable data: held-out accuracy should be high.
        assert!(cm.accuracy() > 0.9, "accuracy {}", cm.accuracy());
        // Truth labels recorded faithfully.
        for (i, &(t, _)) in pairs.iter().enumerate() {
            assert_eq!(t, d.label(i));
        }
    }

    #[test]
    fn cross_val_deterministic() {
        let d = dataset();
        let a = cross_val_predictions(&d, TreeParams::default(), 5, 3);
        let b = cross_val_predictions(&d, TreeParams::default(), 5, 3);
        assert_eq!(a, b);
    }
}
