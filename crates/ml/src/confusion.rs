//! Confusion matrices and the paper's accuracy readings (Section 6.2,
//! Figure 10).

use serde::{Deserialize, Serialize};

/// An `n_classes x n_classes` confusion matrix; rows are true classes,
/// columns predicted (as in Figure 10 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    n_classes: usize,
    /// Row-major counts.
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    pub fn new(n_classes: usize) -> ConfusionMatrix {
        ConfusionMatrix { n_classes, counts: vec![0; n_classes * n_classes] }
    }

    /// Builds directly from label pairs.
    pub fn from_pairs(n_classes: usize, pairs: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut m = Self::new(n_classes);
        for (t, p) in pairs {
            m.record(t, p);
        }
        m
    }

    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Records one `(true, predicted)` observation.
    pub fn record(&mut self, truth: u32, predicted: u32) {
        assert!((truth as usize) < self.n_classes && (predicted as usize) < self.n_classes);
        self.counts[truth as usize * self.n_classes + predicted as usize] += 1;
    }

    /// Merges another matrix (used to combine the k folds of CV).
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.n_classes, other.n_classes);
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    #[inline]
    pub fn get(&self, truth: usize, predicted: usize) -> u64 {
        self.counts[truth * self.n_classes + predicted]
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Exact-match accuracy (diagonal mass).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.n_classes).map(|i| self.get(i, i)).sum();
        diag as f64 / total as f64
    }

    /// Fraction of *misclassified* samples within `dist` classes of the
    /// truth — the paper reports ≥89% of misses at distance 1.
    pub fn misses_within(&self, dist: usize) -> f64 {
        let total = self.total();
        let diag: u64 = (0..self.n_classes).map(|i| self.get(i, i)).sum();
        let misses = total - diag;
        if misses == 0 {
            return 1.0;
        }
        let mut near = 0u64;
        for t in 0..self.n_classes {
            for p in 0..self.n_classes {
                if t != p && t.abs_diff(p) <= dist {
                    near += self.get(t, p);
                }
            }
        }
        near as f64 / misses as f64
    }

    /// Mass above the diagonal (speedup over-estimated, the less
    /// desirable direction per the paper) vs below.
    pub fn over_under(&self) -> (u64, u64) {
        let mut over = 0;
        let mut under = 0;
        for t in 0..self.n_classes {
            for p in 0..self.n_classes {
                use std::cmp::Ordering;
                match p.cmp(&t) {
                    Ordering::Greater => over += self.get(t, p),
                    Ordering::Less => under += self.get(t, p),
                    Ordering::Equal => {}
                }
            }
        }
        (over, under)
    }

    /// ASCII rendering in the layout of Figure 10.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("true\\pred");
        for p in 0..self.n_classes {
            s.push_str(&format!("{p:>7}"));
        }
        s.push('\n');
        for t in 0..self.n_classes {
            s.push_str(&format!("{t:>9}"));
            for p in 0..self.n_classes {
                s.push_str(&format!("{:>7}", self.get(t, p)));
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_accuracy() {
        let m = ConfusionMatrix::from_pairs(3, [(0, 0), (1, 1), (2, 2), (0, 1)]);
        assert_eq!(m.total(), 4);
        assert!((m.accuracy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn misses_within_distance() {
        // Misses: (0,1) d=1, (0,2) d=2, (2,1) d=1 -> 2/3 within 1.
        let m = ConfusionMatrix::from_pairs(3, [(0, 0), (0, 1), (0, 2), (2, 1)]);
        assert!((m.misses_within(1) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.misses_within(2), 1.0);
    }

    #[test]
    fn all_correct_means_within_is_one() {
        let m = ConfusionMatrix::from_pairs(2, [(0, 0), (1, 1)]);
        assert_eq!(m.misses_within(1), 1.0);
        assert_eq!(m.accuracy(), 1.0);
    }

    #[test]
    fn over_under_split() {
        let m = ConfusionMatrix::from_pairs(3, [(0, 2), (2, 0), (1, 2), (1, 1)]);
        let (over, under) = m.over_under();
        assert_eq!(over, 2);
        assert_eq!(under, 1);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ConfusionMatrix::from_pairs(2, [(0, 0)]);
        let b = ConfusionMatrix::from_pairs(2, [(0, 0), (1, 0)]);
        a.merge(&b);
        assert_eq!(a.get(0, 0), 2);
        assert_eq!(a.get(1, 0), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn render_contains_counts() {
        let m = ConfusionMatrix::from_pairs(2, [(0, 1), (0, 1), (0, 1)]);
        let s = m.render();
        assert!(s.contains('3'), "{s}");
    }

    #[test]
    fn empty_matrix_metrics() {
        let m = ConfusionMatrix::new(4);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.misses_within(1), 1.0);
    }
}
