//! Decision-path explainability for trained trees.
//!
//! WISE's selection is a vote of 29 per-`{method, params}` classifiers;
//! without explainability that vote is a black box — "SELL-8 won"
//! carries no information about *which feature values* drove the
//! prediction. [`DecisionPath`] captures the exact root-to-leaf walk of
//! one prediction: at every internal node the feature index, the
//! threshold, the row's value and the branch taken, ending at the leaf
//! with its class and training support. The path is produced by
//! [`crate::DecisionTree::decision_path`], is serde-serializable (it
//! rides along on `wise_core`'s `Choice`), and renders via
//! [`DecisionPath::render`] with caller-supplied feature names.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One internal node crossed during a prediction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionStep {
    /// Feature index the node split on.
    pub feature: u32,
    /// Split threshold (`value <= threshold` goes left).
    pub threshold: f64,
    /// The predicted row's value of that feature.
    pub value: f64,
    /// Branch taken.
    pub went_left: bool,
    /// Training samples that reached this node.
    pub n_samples: u32,
}

/// The full root-to-leaf walk of one prediction.
///
/// A decision stump (single-leaf tree) has no steps but still carries
/// the leaf class and its training support, so even degenerate models
/// explain themselves ("always class 3, from 214 training samples").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DecisionPath {
    /// Internal nodes crossed, root first. Empty for a stump.
    pub steps: Vec<DecisionStep>,
    /// Class of the leaf reached — always equals the prediction.
    pub leaf_class: u32,
    /// Training samples that reached the leaf.
    pub leaf_samples: u32,
}

impl DecisionPath {
    /// Depth of the walk (number of internal nodes crossed).
    pub fn depth(&self) -> usize {
        self.steps.len()
    }

    /// Renders the walk as indented text, resolving feature indices
    /// through `feature_name` (pass `|i| format!("f{i}")` when no names
    /// are available). One line per step plus the leaf line:
    ///
    /// ```text
    /// p_R = 0.1320 <= 0.2050 -> left (n=214)
    /// gini_C = 0.8800 > 0.5000 -> right (n=96)
    /// leaf: class 3 (n=41)
    /// ```
    pub fn render(&self, mut feature_name: impl FnMut(u32) -> String) -> String {
        let mut out = String::new();
        for s in &self.steps {
            let (op, dir) = if s.went_left { ("<=", "left") } else { (">", "right") };
            let _ = writeln!(
                out,
                "{} = {:.4} {} {:.4} -> {} (n={})",
                feature_name(s.feature),
                s.value,
                op,
                s.threshold,
                dir,
                s.n_samples
            );
        }
        let _ = writeln!(out, "leaf: class {} (n={})", self.leaf_class, self.leaf_samples);
        out
    }
}
