//! Feature-matrix storage and cross-validation splits.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A dense feature matrix with integer class labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Row-major `n_samples x n_features`.
    features: Vec<f64>,
    labels: Vec<u32>,
    n_features: usize,
    n_classes: usize,
}

impl Dataset {
    /// Builds a dataset; every row must have `n_features` entries and
    /// labels must be `< n_classes`.
    pub fn new(rows: Vec<Vec<f64>>, labels: Vec<u32>, n_classes: usize) -> Dataset {
        assert_eq!(rows.len(), labels.len(), "rows and labels must align");
        let n_features = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut features = Vec::with_capacity(rows.len() * n_features);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), n_features, "row {i} has wrong feature count");
            features.extend_from_slice(r);
        }
        for (i, &l) in labels.iter().enumerate() {
            assert!((l as usize) < n_classes, "label {l} at sample {i} >= n_classes {n_classes}");
        }
        Dataset { features, labels, n_features, n_classes }
    }

    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    pub fn n_features(&self) -> usize {
        self.n_features
    }

    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Feature row of sample `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.features[i * self.n_features..(i + 1) * self.n_features]
    }

    #[inline]
    pub fn label(&self, i: usize) -> u32 {
        self.labels[i]
    }

    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// The sub-dataset at `indices` (copies rows).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut features = Vec::with_capacity(indices.len() * self.n_features);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            features.extend_from_slice(self.row(i));
            labels.push(self.labels[i]);
        }
        Dataset { features, labels, n_features: self.n_features, n_classes: self.n_classes }
    }
}

/// Seeded k-fold split: returns `(train_indices, test_indices)` per
/// fold. Indices are shuffled deterministically; folds are disjoint and
/// jointly cover `0..n`.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(n >= k, "need at least k samples");
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let lo = f * n / k;
        let hi = (f + 1) * n / k;
        let test: Vec<usize> = order[lo..hi].to_vec();
        let train: Vec<usize> = order[..lo].iter().chain(order[hi..].iter()).copied().collect();
        folds.push((train, test));
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![2.0, 2.0]], vec![0, 1, 1], 2)
    }

    #[test]
    fn construction_and_access() {
        let d = toy();
        assert_eq!(d.len(), 3);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(1), &[1.0, 0.0]);
        assert_eq!(d.label(2), 1);
    }

    #[test]
    #[should_panic(expected = "label")]
    fn rejects_out_of_range_label() {
        Dataset::new(vec![vec![0.0]], vec![5], 2);
    }

    #[test]
    #[should_panic(expected = "wrong feature count")]
    fn rejects_ragged_rows() {
        Dataset::new(vec![vec![0.0], vec![1.0, 2.0]], vec![0, 0], 1);
    }

    #[test]
    fn subset_copies_rows() {
        let d = toy();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0), &[2.0, 2.0]);
        assert_eq!(s.label(1), 0);
    }

    #[test]
    fn kfold_partitions() {
        let folds = kfold_indices(103, 10, 42);
        assert_eq!(folds.len(), 10);
        let mut all_test: Vec<usize> = folds.iter().flat_map(|(_, t)| t.clone()).collect();
        all_test.sort_unstable();
        assert_eq!(all_test, (0..103).collect::<Vec<_>>());
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 103);
            for t in test {
                assert!(!train.contains(t));
            }
        }
    }

    #[test]
    fn kfold_deterministic() {
        assert_eq!(kfold_indices(50, 5, 7), kfold_indices(50, 5, 7));
        assert_ne!(kfold_indices(50, 5, 7), kfold_indices(50, 5, 8));
    }
}
