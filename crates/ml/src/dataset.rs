//! Feature-matrix storage and cross-validation splits.
//!
//! Storage is split from labeling so the whole training pyramid can
//! share one copy of the feature corpus: a [`FeatureMatrix`] holds the
//! numbers (in both row-major and feature-major layout, behind an
//! `Arc`), while a [`Dataset`] is a cheap *view* — row indices plus
//! labels — over it. The 29 per-configuration datasets, every k-fold
//! train subset and every bootstrap resample all alias the same
//! matrix; building one costs `O(n_samples)` index/label copies, never
//! a feature copy.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;

/// An immutable dense feature matrix, stored in both orientations:
/// row-major (for prediction, which walks one sample's features) and
/// feature-major (for training, which scans one feature across all
/// samples). Shared between datasets via `Arc`.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    /// Row-major `n_rows x n_features`.
    rows: Vec<f64>,
    /// Feature-major `n_features x n_rows` (the columnar mirror).
    cols: Vec<f64>,
    n_rows: usize,
    n_features: usize,
}

impl FeatureMatrix {
    /// Builds a matrix from per-sample rows; every row must have the
    /// same length.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> FeatureMatrix {
        Self::from_row_slices(rows.len(), rows.iter().map(|r| r.as_slice()))
    }

    /// Builds a matrix from an iterator of row slices (avoids the
    /// intermediate `Vec<Vec<f64>>` when rows already live elsewhere,
    /// e.g. in `CorpusLabels`).
    pub fn from_row_slices<'a>(
        size_hint: usize,
        rows: impl Iterator<Item = &'a [f64]>,
    ) -> FeatureMatrix {
        let mut flat = Vec::new();
        let mut n_features = 0usize;
        let mut n_rows = 0usize;
        for (i, r) in rows.enumerate() {
            if i == 0 {
                n_features = r.len();
                flat.reserve(size_hint * n_features);
            }
            assert_eq!(r.len(), n_features, "row {i} has wrong feature count");
            flat.extend_from_slice(r);
            n_rows += 1;
        }
        let mut cols = vec![0.0f64; flat.len()];
        for r in 0..n_rows {
            for f in 0..n_features {
                cols[f * n_rows + r] = flat[r * n_features + f];
            }
        }
        FeatureMatrix { rows: flat, cols, n_rows, n_features }
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Feature row `r` (row-major slice).
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.rows[r * self.n_features..(r + 1) * self.n_features]
    }

    /// Feature column `f` across all rows (feature-major slice).
    #[inline]
    pub fn column(&self, f: usize) -> &[f64] {
        &self.cols[f * self.n_rows..(f + 1) * self.n_rows]
    }
}

/// A labeled view over a shared [`FeatureMatrix`]: row indices (which
/// may repeat, e.g. bootstrap resamples) plus one label per view
/// position. All constructors are `O(n_samples)`; the feature numbers
/// are never copied.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    matrix: Arc<FeatureMatrix>,
    /// Matrix row behind each sample of the view.
    indices: Vec<u32>,
    labels: Vec<u32>,
    n_classes: usize,
}

impl Dataset {
    /// Builds a dataset owning a fresh matrix; every row must have
    /// `n_features` entries and labels must be `< n_classes`.
    pub fn new(rows: Vec<Vec<f64>>, labels: Vec<u32>, n_classes: usize) -> Dataset {
        assert_eq!(rows.len(), labels.len(), "rows and labels must align");
        let matrix = Arc::new(FeatureMatrix::from_rows(rows));
        Self::from_matrix(matrix, labels, n_classes)
    }

    /// A view covering every row of `matrix`, in order, with one label
    /// per row.
    pub fn from_matrix(matrix: Arc<FeatureMatrix>, labels: Vec<u32>, n_classes: usize) -> Dataset {
        assert_eq!(matrix.n_rows(), labels.len(), "rows and labels must align");
        let indices: Vec<u32> = (0..matrix.n_rows() as u32).collect();
        Self::from_matrix_rows(matrix, indices, labels, n_classes)
    }

    /// A view over selected `matrix` rows (repeats allowed) with one
    /// label per view position.
    pub fn from_matrix_rows(
        matrix: Arc<FeatureMatrix>,
        indices: Vec<u32>,
        labels: Vec<u32>,
        n_classes: usize,
    ) -> Dataset {
        assert_eq!(indices.len(), labels.len(), "indices and labels must align");
        for (i, &r) in indices.iter().enumerate() {
            assert!((r as usize) < matrix.n_rows(), "row {r} at sample {i} out of matrix bounds");
        }
        for (i, &l) in labels.iter().enumerate() {
            assert!((l as usize) < n_classes, "label {l} at sample {i} >= n_classes {n_classes}");
        }
        Dataset { matrix, indices, labels, n_classes }
    }

    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    pub fn n_features(&self) -> usize {
        self.matrix.n_features()
    }

    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The shared feature matrix behind this view.
    pub fn matrix(&self) -> &Arc<FeatureMatrix> {
        &self.matrix
    }

    /// Matrix row indices behind each view position.
    pub fn row_indices(&self) -> &[u32] {
        &self.indices
    }

    /// Feature row of sample `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        self.matrix.row(self.indices[i] as usize)
    }

    /// Value of feature `f` for sample `i` (columnar access path).
    #[inline]
    pub fn feature_value(&self, f: usize, i: usize) -> f64 {
        self.matrix.column(f)[self.indices[i] as usize]
    }

    #[inline]
    pub fn label(&self, i: usize) -> u32 {
        self.labels[i]
    }

    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// The sub-dataset at `indices` — a new view over the same shared
    /// matrix (no feature copies; repeated indices allowed).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let rows: Vec<u32> = indices.iter().map(|&i| self.indices[i]).collect();
        let labels: Vec<u32> = indices.iter().map(|&i| self.labels[i]).collect();
        Dataset {
            matrix: Arc::clone(&self.matrix),
            indices: rows,
            labels,
            n_classes: self.n_classes,
        }
    }
}

/// Seeded k-fold split: returns `(train_indices, test_indices)` per
/// fold. Indices are shuffled deterministically; folds are disjoint and
/// jointly cover `0..n`.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(n >= k, "need at least k samples");
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let lo = f * n / k;
        let hi = (f + 1) * n / k;
        let test: Vec<usize> = order[lo..hi].to_vec();
        let train: Vec<usize> = order[..lo].iter().chain(order[hi..].iter()).copied().collect();
        folds.push((train, test));
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![2.0, 2.0]], vec![0, 1, 1], 2)
    }

    #[test]
    fn construction_and_access() {
        let d = toy();
        assert_eq!(d.len(), 3);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(1), &[1.0, 0.0]);
        assert_eq!(d.label(2), 1);
    }

    #[test]
    fn columnar_mirror_matches_rows() {
        let d = toy();
        for f in 0..d.n_features() {
            for i in 0..d.len() {
                assert_eq!(d.feature_value(f, i), d.row(i)[f]);
            }
        }
        assert_eq!(d.matrix().column(0), &[0.0, 1.0, 2.0]);
        assert_eq!(d.matrix().column(1), &[1.0, 0.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "label")]
    fn rejects_out_of_range_label() {
        Dataset::new(vec![vec![0.0]], vec![5], 2);
    }

    #[test]
    #[should_panic(expected = "wrong feature count")]
    fn rejects_ragged_rows() {
        Dataset::new(vec![vec![0.0], vec![1.0, 2.0]], vec![0, 0], 1);
    }

    #[test]
    fn subset_is_a_view_sharing_the_matrix() {
        let d = toy();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0), &[2.0, 2.0]);
        assert_eq!(s.label(1), 0);
        // Same allocation, not a copy.
        assert!(Arc::ptr_eq(s.matrix(), d.matrix()));
        // Views of views stay anchored to the base matrix.
        let ss = s.subset(&[1]);
        assert!(Arc::ptr_eq(ss.matrix(), d.matrix()));
        assert_eq!(ss.row(0), &[0.0, 1.0]);
    }

    #[test]
    fn subset_allows_repeats() {
        let d = toy();
        let s = d.subset(&[1, 1, 1]);
        assert_eq!(s.len(), 3);
        for i in 0..3 {
            assert_eq!(s.row(i), &[1.0, 0.0]);
            assert_eq!(s.label(i), 1);
        }
    }

    #[test]
    fn shared_matrix_views_differ_only_in_labels() {
        let m = Arc::new(FeatureMatrix::from_rows(vec![vec![1.0], vec![2.0]]));
        let a = Dataset::from_matrix(Arc::clone(&m), vec![0, 1], 2);
        let b = Dataset::from_matrix(Arc::clone(&m), vec![1, 0], 2);
        assert!(Arc::ptr_eq(a.matrix(), b.matrix()));
        assert_eq!(a.row(0), b.row(0));
        assert_ne!(a.labels(), b.labels());
    }

    #[test]
    fn kfold_partitions() {
        let folds = kfold_indices(103, 10, 42);
        assert_eq!(folds.len(), 10);
        let mut all_test: Vec<usize> = folds.iter().flat_map(|(_, t)| t.clone()).collect();
        all_test.sort_unstable();
        assert_eq!(all_test, (0..103).collect::<Vec<_>>());
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 103);
            for t in test {
                assert!(!train.contains(t));
            }
        }
    }

    #[test]
    fn kfold_deterministic() {
        assert_eq!(kfold_indices(50, 5, 7), kfold_indices(50, 5, 7));
        assert_ne!(kfold_indices(50, 5, 7), kfold_indices(50, 5, 8));
    }
}
