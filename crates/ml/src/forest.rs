//! Random forests (bootstrap-aggregated decision trees).
//!
//! The paper uses single pruned trees; a forest is the obvious
//! robustness extension and powers the model ablation
//! (`wise-bench --bin ablation_models`). Bagging only: each tree sees a
//! bootstrap resample of the training set; prediction is a majority
//! vote with ties broken toward the lower class (conservative: never
//! over-promise speedup on a tie).

use crate::dataset::Dataset;
use crate::tree::{DecisionTree, TreeParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestParams {
    pub n_trees: usize,
    pub tree: TreeParams,
    /// Bootstrap RNG seed; the whole fit is deterministic.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams { n_trees: 25, tree: TreeParams::default(), seed: 0x5EED }
    }
}

/// A trained bagged ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Fits `params.n_trees` trees, each on a bootstrap resample.
    /// Resamples are index views over the shared feature matrix (no
    /// feature copies); each tree presorts its own view, since the
    /// bootstrap changes the value multiset.
    pub fn fit(data: &Dataset, params: ForestParams) -> RandomForest {
        assert!(params.n_trees >= 1, "forest needs at least one tree");
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let n = data.len();
        let trees = (0..params.n_trees)
            .map(|t| {
                let mut rng = StdRng::seed_from_u64(params.seed.wrapping_add(t as u64));
                let sample: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                DecisionTree::fit(&data.subset(&sample), params.tree)
            })
            .collect();
        RandomForest { trees, n_classes: data.n_classes() }
    }

    /// Majority vote over trees; ties break toward the lower class.
    pub fn predict(&self, row: &[f64]) -> u32 {
        let mut votes = vec![0usize; self.n_classes];
        for t in &self.trees {
            votes[t.predict(row) as usize] += 1;
        }
        let mut best = 0usize;
        for (c, &v) in votes.iter().enumerate() {
            if v > votes[best] {
                best = c;
            }
        }
        best as u32
    }

    pub fn predict_all(&self, data: &Dataset) -> Vec<u32> {
        (0..data.len()).map(|i| self.predict(data.row(i))).collect()
    }

    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_dataset(seed: u64) -> Dataset {
        // Two informative features + label noise.
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> =
            (0..300).map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()]).collect();
        let labels: Vec<u32> = rows
            .iter()
            .map(|r| {
                let clean = u32::from(r[0] + r[1] > 1.0);
                if rng.gen::<f64>() < 0.15 {
                    1 - clean
                } else {
                    clean
                }
            })
            .collect();
        Dataset::new(rows, labels, 2)
    }

    #[test]
    fn forest_fits_and_predicts_in_range() {
        let d = noisy_dataset(1);
        let f = RandomForest::fit(&d, ForestParams { n_trees: 9, ..Default::default() });
        assert_eq!(f.n_trees(), 9);
        for i in 0..d.len() {
            assert!(f.predict(d.row(i)) < 2);
        }
    }

    #[test]
    fn forest_is_deterministic() {
        let d = noisy_dataset(2);
        let p = ForestParams { n_trees: 7, ..Default::default() };
        let a = RandomForest::fit(&d, p);
        let b = RandomForest::fit(&d, p);
        assert_eq!(a, b);
    }

    #[test]
    fn forest_generalizes_at_least_as_well_as_single_tree_on_noise() {
        // Train on one noisy draw, test on a fresh draw of the same
        // concept: the ensemble should not be (much) worse.
        let train = noisy_dataset(3);
        let test = noisy_dataset(4);
        let tree = DecisionTree::fit(
            &train,
            TreeParams { max_depth: 12, ccp_alpha: 0.0, ..Default::default() },
        );
        let forest = RandomForest::fit(
            &train,
            ForestParams {
                n_trees: 25,
                tree: TreeParams { max_depth: 12, ccp_alpha: 0.0, ..Default::default() },
                seed: 9,
            },
        );
        let acc = |preds: Vec<u32>| {
            preds.iter().zip(test.labels()).filter(|(a, b)| a == b).count() as f64
                / test.len() as f64
        };
        let tree_acc = acc(tree.predict_all(&test));
        let forest_acc = acc(forest.predict_all(&test));
        assert!(forest_acc >= tree_acc - 0.03, "forest {forest_acc:.3} vs tree {tree_acc:.3}");
    }

    #[test]
    fn single_tree_forest_close_to_plain_tree() {
        // With one tree the only difference is the bootstrap resample.
        let d = noisy_dataset(5);
        let f = RandomForest::fit(&d, ForestParams { n_trees: 1, ..Default::default() });
        let preds = f.predict_all(&d);
        let agree =
            preds.iter().zip(d.labels()).filter(|(a, b)| a == b).count() as f64 / d.len() as f64;
        assert!(agree > 0.7, "bootstrap tree should still track labels: {agree}");
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_rejected() {
        let d = noisy_dataset(6);
        RandomForest::fit(&d, ForestParams { n_trees: 0, ..Default::default() });
    }
}
