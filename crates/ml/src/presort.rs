//! The presorted, columnar tree-training engine.
//!
//! The reference trainer ([`crate::DecisionTree::fit_reference`])
//! re-sorts every feature column at every node — `O(depth * n_features
//! * n log n)` per fit. This engine sorts each feature column **once
//! per fit** ([`Presort::build`]) and threads the sorted order down the
//! tree by *stable partition* of per-feature arrays (the sklearn
//! presort strategy): when a node splits, each feature's sorted
//! segment is partitioned into the left block followed by the right
//! block, preserving relative (= sorted) order, so children inherit
//! sorted segments for free and per-node split search is
//! `O(n_features * n)` with incremental Gini class counts.
//!
//! Three further measures keep the constant factor down:
//!
//! - Each feature's **values and labels ride along** the sorted order
//!   in lockstep arrays, so the split scan's memory traffic is fully
//!   sequential (no gathers through the order indices).
//! - A candidate **screen** built from exact integer class statistics
//!   skips the per-class floating-point Gini loops for candidates that
//!   provably cannot beat the current best (see `scan_feature`).
//! - Partitions are **skipped for terminal children**: when neither
//!   child can split again (depth cap, split floor, or purity — all
//!   checkable before partitioning), the segments are dead.
//!
//! # Determinism / parity with the reference
//!
//! The engine evaluates exactly the candidate splits the reference
//! evaluates — boundaries between *distinct* values in sorted order —
//! with the same floating-point expressions in the same order, and
//! picks the winner by the same first-strictly-best rule. Candidate
//! statistics at a distinct-value boundary count *all* samples up to
//! that value, so they are independent of how ties are ordered, which
//! is why the partitioned orders (whose tie order can differ from the
//! reference's re-sorts) still produce bit-identical trees. Split
//! search parallelizes across features for large nodes; each feature's
//! scan is independent and results merge in feature order with the same
//! strict-improvement rule, so the winner is identical for every
//! thread count. `tests/tree_parity.rs` pins `fit == fit_reference`
//! across a seeded sweep of shapes and hyperparameters.

use crate::dataset::{Dataset, FeatureMatrix};
use crate::tree::{argmax, gini_from_counts, gini_incremental, gini_remainder, Node, TreeParams};
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// Node size at and above which split search fans out across features.
/// Below it the rayon dispatch overhead outweighs the scan.
const PARALLEL_SPLIT_CUTOFF: usize = 2048;

/// Work size (`n_features * n_samples`) above which [`Presort::build`]
/// sorts feature columns in parallel.
const PARALLEL_BUILD_CUTOFF: usize = 1 << 14;

/// The per-fit (label-independent) presort layer: for every feature,
/// the sample order sorted by that feature's value and the values
/// themselves in that sorted order.
///
/// A `Presort` depends only on the feature values behind a dataset view
/// — not its labels — so one build can be shared by every fit over the
/// same `(matrix, row set)`: the 29 per-configuration models of the
/// registry, and all 24 Table 4 grid cells of one cross-validation
/// fold. [`crate::DecisionTree::fit_with`] takes it by reference and
/// copies only the index and value arrays (`O(n_features * n)`
/// memcpy), never re-sorting.
#[derive(Debug, Clone)]
pub struct Presort {
    matrix: Arc<FeatureMatrix>,
    /// The view (matrix rows per sample position) this was built for.
    indices: Vec<u32>,
    /// Feature-major `n_features x n`: sample positions sorted by the
    /// feature's value (stable: ties keep view-position order).
    order: Vec<u32>,
    /// Feature-major `n_features x n`: the view's values **in sorted
    /// order** (`sorted_vals[f*n + w]` is the value behind
    /// `order[f*n + w]`), so split scans read values sequentially.
    sorted_vals: Vec<f64>,
    n: usize,
    n_features: usize,
}

impl Presort {
    /// Sorts every feature column of the view `(matrix, indices)` once.
    pub fn build(matrix: &Arc<FeatureMatrix>, indices: &[u32]) -> Presort {
        let _span = wise_trace::span("train.presort");
        let n = indices.len();
        let n_features = matrix.n_features();
        let mut sorted_vals = vec![0.0f64; n_features * n];
        let mut order = vec![0u32; n_features * n];
        let sort_one = |f: usize, vals: &mut [f64], ord: &mut [u32]| {
            let col = matrix.column(f);
            // Monotone key: orders exactly like `f64::total_cmp`, but
            // the sign-magnitude transform is paid once per element
            // instead of once per comparison. Unstable sort + position
            // tie-break == stable sort by value (key ties are
            // bit-identical values), and pdqsort on integer pairs
            // beats the stable merge sort measurably.
            let mut pairs: Vec<(u64, u32)> = indices
                .iter()
                .enumerate()
                .map(|(i, &r)| {
                    let b = col[r as usize].to_bits();
                    let key = if b >> 63 == 1 { !b } else { b ^ (1u64 << 63) };
                    (key, i as u32)
                })
                .collect();
            pairs.sort_unstable();
            for ((v, o), (key, i)) in vals.iter_mut().zip(ord.iter_mut()).zip(pairs) {
                let b = if key >> 63 == 1 { key ^ (1u64 << 63) } else { !key };
                *v = f64::from_bits(b);
                *o = i;
            }
        };
        if n > 0 {
            if n_features * n >= PARALLEL_BUILD_CUTOFF {
                sorted_vals
                    .par_chunks_mut(n)
                    .zip(order.par_chunks_mut(n))
                    .enumerate()
                    .for_each(|(f, (vals, ord))| sort_one(f, vals, ord));
            } else {
                for (f, (vals, ord)) in
                    sorted_vals.chunks_mut(n).zip(order.chunks_mut(n)).enumerate()
                {
                    sort_one(f, vals, ord);
                }
            }
        }
        let (matrix, indices) = (Arc::clone(matrix), indices.to_vec());
        Presort { matrix, indices, order, sorted_vals, n, n_features }
    }

    /// Presort for an existing dataset view.
    pub fn for_dataset(data: &Dataset) -> Presort {
        Self::build(data.matrix(), data.row_indices())
    }

    pub fn n_samples(&self) -> usize {
        self.n
    }

    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Whether this presort was built for exactly `data`'s view.
    pub fn matches(&self, data: &Dataset) -> bool {
        Arc::ptr_eq(&self.matrix, data.matrix()) && self.indices == data.row_indices()
    }
}

/// Grows the (unpruned) node vector for `data` using `presort`.
/// Node ids, fields and recursion order mirror the reference builder
/// exactly.
pub(crate) fn grow(data: &Dataset, presort: &Presort, params: TreeParams) -> Vec<Node> {
    // Real assert: the unchecked indexing below relies on the presorted
    // orders being permutations of this view's positions.
    assert!(presort.matches(data), "presort was built for a different dataset view");
    let n = data.len();
    let labels = data.labels();
    let order = presort.order.clone();
    // Per-fit label mirror of the orders (labels are per-fit state, so
    // this can't live in the shared, label-independent `Presort`).
    let lab: Vec<u32> = order.iter().map(|&s| labels[s as usize]).collect();
    let mut state = BuildState {
        labels,
        order,
        lab,
        vals: presort.sorted_vals.clone(),
        active: (0..n as u32).collect(),
        scratch: vec![0u32; n],
        scratch_lab: vec![0u32; n],
        scratch_vals: vec![0.0f64; n],
        on_left: vec![false; n],
        counts_buf: Vec::new(),
        scratch_counts: Vec::new(),
        n,
        n_features: presort.n_features,
        n_classes: data.n_classes(),
        params,
        nodes: Vec::new(),
    };
    state.build(0, n, 0);
    state.nodes
}

struct BuildState<'a> {
    /// Label per view position.
    labels: &'a [u32],
    /// Working copy of the presorted orders; partitioned in place as
    /// the tree grows. `order[f*n + lo .. f*n + hi]` is the node's
    /// sample set sorted by feature `f`.
    order: Vec<u32>,
    /// The labels behind `order`, kept in lockstep by every partition
    /// (`lab[f*n + w]` is the label of sample `order[f*n + w]`).
    /// Together with `vals` this makes the split scan's memory traffic
    /// fully sequential — no gathering through the order indices.
    lab: Vec<u32>,
    /// The values behind `order`, kept in lockstep by every partition
    /// (`vals[f*n + w]` is feature `f`'s value of sample
    /// `order[f*n + w]`).
    vals: Vec<f64>,
    /// The node's samples in reference insertion order (the exact
    /// order the reference builder's `indices` vector would hold);
    /// only used for class counting, so any order would do.
    active: Vec<u32>,
    scratch: Vec<u32>,
    scratch_lab: Vec<u32>,
    scratch_vals: Vec<f64>,
    on_left: Vec<bool>,
    /// Reused per-node class-count buffer (one tree can have thousands
    /// of nodes; a fresh allocation per node is measurable).
    counts_buf: Vec<usize>,
    /// Second reused count buffer, for the left-child purity check.
    scratch_counts: Vec<usize>,
    n: usize,
    n_features: usize,
    n_classes: usize,
    params: TreeParams,
    nodes: Vec<Node>,
}

impl BuildState<'_> {
    fn build(&mut self, lo: usize, hi: usize, depth: usize) -> u32 {
        let n_node = hi - lo;
        let mut counts = std::mem::take(&mut self.counts_buf);
        counts.clear();
        counts.resize(self.n_classes, 0);
        for &s in &self.active[lo..hi] {
            counts[self.labels[s as usize] as usize] += 1;
        }
        let (majority, majority_n) = argmax(&counts);
        let node_risk = (n_node - majority_n) as f64 / self.n as f64;
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            feature: u32::MAX,
            threshold: 0.0,
            left: 0,
            right: 0,
            class: majority as u32,
            n_samples: n_node as u32,
            node_risk,
        });

        let pure = majority_n == n_node;
        if pure || depth >= self.params.max_depth || n_node < self.params.min_samples_split {
            self.counts_buf = counts;
            return id;
        }
        let split = self.best_split(lo, hi, &counts);
        let Some((feature, threshold, left_n)) = split else {
            self.counts_buf = counts;
            return id;
        };
        debug_assert!(left_n > 0 && left_n < n_node);
        let (n, nf) = (self.n, self.n_features);

        // The chosen feature's segment is already partitioned (left is
        // exactly its sorted prefix); mark membership from it, then
        // stable-partition every other segment so children inherit
        // sorted order. Children only read those segments if they can
        // split again — when both are terminal by construction (the
        // depth cap, a half below the split floor, or a pure half,
        // counted cheaply from the chosen feature's label prefix) the
        // partition is dead work and is skipped; `active` is always
        // partitioned because the children's class counts come from it.
        let right_n = n_node - left_n;
        let min_split = self.params.min_samples_split;
        let need_orders =
            depth + 1 < self.params.max_depth && (left_n >= min_split || right_n >= min_split) && {
                let mut left_major = 0usize;
                let mut left_counts = std::mem::take(&mut self.scratch_counts);
                left_counts.clear();
                left_counts.resize(self.n_classes, 0);
                for &l in &self.lab[feature * n + lo..feature * n + lo + left_n] {
                    let c = left_counts[l as usize] + 1;
                    left_counts[l as usize] = c;
                    left_major = left_major.max(c);
                }
                let left_splittable = left_n >= min_split && left_major < left_n;
                let right_splittable = right_n >= min_split
                    && counts.iter().zip(left_counts.iter()).all(|(&p, &l)| p - l < right_n);
                self.scratch_counts = left_counts;
                left_splittable || right_splittable
            };
        self.counts_buf = counts;
        for &s in &self.order[feature * n + lo..feature * n + lo + left_n] {
            self.on_left[s as usize] = true;
        }
        if need_orders {
            for f in 0..nf {
                if f != feature {
                    stable_partition_tracked(
                        &mut self.order[f * n + lo..f * n + hi],
                        &mut self.lab[f * n + lo..f * n + hi],
                        &mut self.vals[f * n + lo..f * n + hi],
                        &self.on_left,
                        &mut self.scratch,
                        &mut self.scratch_lab,
                        &mut self.scratch_vals,
                    );
                }
            }
        }
        stable_partition(&mut self.active[lo..hi], &self.on_left, &mut self.scratch);
        for &s in &self.order[feature * n + lo..feature * n + lo + left_n] {
            self.on_left[s as usize] = false;
        }
        #[cfg(debug_assertions)]
        if need_orders {
            self.assert_segments_sorted(lo, lo + left_n);
            self.assert_segments_sorted(lo + left_n, hi);
        }

        let left = self.build(lo, lo + left_n, depth + 1);
        let right = self.build(lo + left_n, hi, depth + 1);
        let node = &mut self.nodes[id as usize];
        node.feature = feature as u32;
        node.threshold = threshold;
        node.left = left;
        node.right = right;
        id
    }

    /// Best Gini split over all features for the node `[lo, hi)`;
    /// returns `(feature, threshold, left_n)`. Bit-identical to the
    /// reference's sequential scan: per-feature candidates are found
    /// with the same strict-improvement rule, then merged in feature
    /// order — so the winner is the first strictly-best split whatever
    /// the number of threads.
    fn best_split(&self, lo: usize, hi: usize, parent_counts: &[usize]) -> Option<SplitChoice> {
        let t_split = wise_trace::enabled().then(Instant::now);
        let n_node = hi - lo;
        let parent_gini = gini_from_counts(parent_counts, n_node);
        let bar0 = parent_gini + 1e-12;
        let mut best: Option<(f64, SplitChoice)> = None;
        if n_node >= PARALLEL_SPLIT_CUTOFF && self.n_features > 1 {
            let scan = |f: usize| {
                let mut counts = vec![0usize; self.n_classes];
                self.scan_feature(f, lo, hi, parent_counts, n_node as f64, bar0, &mut counts)
            };
            let per_feature: Vec<Option<(f64, f64, usize)>> =
                (0..self.n_features).into_par_iter().map(scan).collect();
            for (f, cand) in per_feature.into_iter().enumerate() {
                if let Some((impurity, threshold, left_n)) = cand {
                    let bar = best.as_ref().map_or(bar0, |(b, _)| *b);
                    if impurity < bar {
                        best = Some((impurity, (f, threshold, left_n)));
                    }
                }
            }
        } else {
            // Serial: one counts buffer for all features (the per-scan
            // allocation shows up at this call frequency). The inline
            // merge is the same feature-order strict-< rule.
            let mut counts = vec![0usize; self.n_classes];
            for f in 0..self.n_features {
                counts.fill(0);
                let cand =
                    self.scan_feature(f, lo, hi, parent_counts, n_node as f64, bar0, &mut counts);
                if let Some((impurity, threshold, left_n)) = cand {
                    let bar = best.as_ref().map_or(bar0, |(b, _)| *b);
                    if impurity < bar {
                        best = Some((impurity, (f, threshold, left_n)));
                    }
                }
            }
        }
        if let Some(t0) = t_split {
            wise_trace::observe_ns("train.split", t0.elapsed().as_nanos() as u64);
        }
        best.map(|(_, choice)| choice)
    }

    /// One feature's split scan over its sorted segment: incremental
    /// left-class counts (accumulated into the caller's zeroed
    /// `left_counts` buffer), candidates only between distinct values,
    /// first strictly-best candidate wins. Returns
    /// `(impurity, threshold, left_n)`.
    #[allow(clippy::too_many_arguments)]
    fn scan_feature(
        &self,
        f: usize,
        lo: usize,
        hi: usize,
        parent_counts: &[usize],
        n_node: f64,
        bar0: f64,
        left_counts: &mut [usize],
    ) -> Option<(f64, f64, usize)> {
        let vals = &self.vals[f * self.n + lo..f * self.n + hi];
        let lab = &self.lab[f * self.n + lo..f * self.n + hi];
        let min_leaf = self.params.min_samples_leaf;
        let n_seg = vals.len();
        let mut best: Option<(f64, f64, usize)> = None;
        // Integer split statistics for the candidate screen: in exact
        // arithmetic the weighted child Gini is
        //   (n - sum_l/left_n - sum_r/right_n) / n
        // with `sum_l = Σ left_c²` and `sum_r = Σ (parent_c - left_c)²
        // = s_p - 2*pl + sum_l`. Both sides of the screening inequality
        // below agree with the exact float evaluation to ~1e-13
        // relative, so a 1e-9 margin can never screen out a candidate
        // the exact rule would pick — those near the bar fall through
        // to the bit-exact evaluation. This skips the expensive
        // per-class Gini loops for the vast majority of candidates.
        let s_p: u64 = parent_counts.iter().map(|&c| (c * c) as u64).sum();
        let mut sum_l: u64 = 0;
        let mut pl: u64 = 0;
        let mut bar = bar0;
        let mut c_bar = (bar + 1e-9) * n_node;
        for w in 0..n_seg - 1 {
            // SAFETY: `w + 1 < n_seg == vals.len() == lab.len()`; every
            // label is validated `< n_classes == left_counts.len() ==
            // parent_counts.len()` by the `Dataset` constructors. This
            // loop runs once per element per feature per node — the
            // bounds checks are measurable.
            unsafe {
                let l = *lab.get_unchecked(w) as usize;
                let c = left_counts.get_unchecked_mut(l);
                sum_l += (2 * *c + 1) as u64;
                *c += 1;
                pl += *parent_counts.get_unchecked(l) as u64;
            }
            let (v_cur, v_next) = unsafe { (*vals.get_unchecked(w), *vals.get_unchecked(w + 1)) };
            if v_cur == v_next {
                continue; // can't split between equal values
            }
            let left_n = w + 1;
            let right_n = n_seg - left_n;
            if left_n < min_leaf || right_n < min_leaf {
                continue;
            }
            // Screen: `weighted >= bar + 1e-9` (scaled by
            // `n * left_n * right_n > 0`) can never be selected — skip
            // the exact Gini evaluation.
            let (ln_f, rn_f) = (left_n as f64, right_n as f64);
            let sum_r = s_p + sum_l - 2 * pl;
            let lr = ln_f * rn_f;
            if n_node * lr - (sum_l as f64 * rn_f + sum_r as f64 * ln_f) >= c_bar * lr {
                continue;
            }
            let gl = gini_incremental(left_counts, left_n);
            let gr = gini_remainder(parent_counts, left_counts, right_n);
            let weighted = (ln_f * gl + rn_f * gr) / n_node;
            if weighted < bar {
                let threshold = v_cur + (v_next - v_cur) / 2.0;
                best = Some((weighted, threshold, left_n));
                bar = weighted;
                c_bar = (bar + 1e-9) * n_node;
            }
        }
        best
    }

    /// Debug invariant: every feature segment of a node is sorted by
    /// its feature's value (what stable partition must preserve).
    #[cfg(debug_assertions)]
    fn assert_segments_sorted(&self, lo: usize, hi: usize) {
        for f in 0..self.n_features {
            let vals = &self.vals[f * self.n + lo..f * self.n + hi];
            debug_assert!(
                vals.windows(2).all(|w| w[0].total_cmp(&w[1]).is_le()),
                "feature {f} segment [{lo}, {hi}) lost sorted order"
            );
        }
    }
}

/// `(feature, threshold, left_n)` of a chosen split.
type SplitChoice = (usize, f64, usize);

/// Stable partition of `seg` by the `on_left` flag of each element:
/// left block first, right block after, both preserving relative
/// order. `scratch` must be at least `seg.len()` long.
pub(crate) fn stable_partition(seg: &mut [u32], on_left: &[bool], scratch: &mut [u32]) {
    assert!(scratch.len() >= seg.len(), "scratch shorter than the segment");
    let mut w = 0usize;
    let mut r = 0usize;
    for i in 0..seg.len() {
        // SAFETY: `i < seg.len()`, `w <= i`, `r <= i`, and `scratch` is
        // asserted at least `seg.len()` long above. `on_left` stays
        // checked — its coverage is the caller's contract.
        unsafe {
            let s = *seg.get_unchecked(i);
            if on_left[s as usize] {
                *seg.get_unchecked_mut(w) = s;
                w += 1;
            } else {
                *scratch.get_unchecked_mut(r) = s;
                r += 1;
            }
        }
    }
    seg[w..].copy_from_slice(&scratch[..r]);
}

/// [`stable_partition`] over an order segment and its label and value
/// mirrors in lockstep: element `i` of `seg`, `lab` and `vals` moves to
/// the same destination, so children keep contiguous sorted values and
/// labels.
#[allow(clippy::too_many_arguments)]
pub(crate) fn stable_partition_tracked(
    seg: &mut [u32],
    lab: &mut [u32],
    vals: &mut [f64],
    on_left: &[bool],
    scratch: &mut [u32],
    scratch_lab: &mut [u32],
    scratch_vals: &mut [f64],
) {
    let len = seg.len();
    assert!(
        lab.len() == len
            && vals.len() == len
            && scratch.len() >= len
            && scratch_lab.len() >= len
            && scratch_vals.len() >= len,
        "tracked partition buffers shorter than the segment"
    );
    let mut w = 0usize;
    let mut r = 0usize;
    for i in 0..len {
        // SAFETY: `i < len`, `w <= i`, `r <= i`, and all six buffers
        // are asserted at least `len` long above. `on_left` stays
        // checked — its coverage is the caller's contract.
        unsafe {
            let s = *seg.get_unchecked(i);
            let l = *lab.get_unchecked(i);
            let v = *vals.get_unchecked(i);
            if on_left[s as usize] {
                *seg.get_unchecked_mut(w) = s;
                *lab.get_unchecked_mut(w) = l;
                *vals.get_unchecked_mut(w) = v;
                w += 1;
            } else {
                *scratch.get_unchecked_mut(r) = s;
                *scratch_lab.get_unchecked_mut(r) = l;
                *scratch_vals.get_unchecked_mut(r) = v;
                r += 1;
            }
        }
    }
    seg[w..].copy_from_slice(&scratch[..r]);
    lab[w..].copy_from_slice(&scratch_lab[..r]);
    vals[w..].copy_from_slice(&scratch_vals[..r]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dataset(seed: u64, n: usize, f: usize, classes: usize) -> Dataset {
        // Deterministic pseudo-random data with plenty of duplicate
        // values (modulus far below n).
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..f)
                    .map(|j| ((i as u64 * 2654435761 + j as u64 * 40503 + seed) % 17) as f64 / 17.0)
                    .collect()
            })
            .collect();
        let labels: Vec<u32> =
            (0..n).map(|i| ((i as u64 * 97 + seed) % classes as u64) as u32).collect();
        Dataset::new(rows, labels, classes)
    }

    #[test]
    fn presort_orders_every_feature() {
        let d = dataset(3, 120, 5, 4);
        let p = Presort::for_dataset(&d);
        for f in 0..5 {
            let seg = &p.order[f * 120..(f + 1) * 120];
            for w in seg.windows(2) {
                let (a, b) = (d.feature_value(f, w[0] as usize), d.feature_value(f, w[1] as usize));
                assert!(a <= b, "feature {f}: {a} > {b}");
                // Stable: ties keep view-position order.
                if a == b {
                    assert!(w[0] < w[1]);
                }
            }
        }
    }

    #[test]
    fn presort_matches_only_its_view() {
        let d = dataset(5, 40, 3, 2);
        let p = Presort::for_dataset(&d);
        assert!(p.matches(&d));
        let s = d.subset(&[0, 2, 4]);
        assert!(!p.matches(&s));
        assert!(Presort::for_dataset(&s).matches(&s));
    }

    proptest! {
        /// Stable partition keeps relative order inside both halves —
        /// the invariant that lets children inherit sorted segments.
        #[test]
        fn stable_partition_preserves_relative_order(
            flags in proptest::collection::vec(any::<bool>(), 1..200)
        ) {
            let n = flags.len();
            let mut seg: Vec<u32> = (0..n as u32).collect();
            let mut scratch = vec![0u32; n];
            stable_partition(&mut seg, &flags, &mut scratch);
            let n_left = flags.iter().filter(|&&b| b).count();
            // Left block: exactly the flagged elements, ascending
            // (ascending == original relative order here).
            for w in seg[..n_left].windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            for &s in &seg[..n_left] {
                prop_assert!(flags[s as usize]);
            }
            for w in seg[n_left..].windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            for &s in &seg[n_left..] {
                prop_assert!(!flags[s as usize]);
            }
        }

        /// The tracked partition moves the label and value mirrors to
        /// exactly the same destinations as the order entries, and
        /// orders the segment identically to the plain stable
        /// partition.
        #[test]
        fn tracked_partition_moves_mirrors_in_lockstep(
            flags in proptest::collection::vec(any::<bool>(), 1..150)
        ) {
            let n = flags.len();
            let mut seg: Vec<u32> = (0..n as u32).collect();
            let mut lab: Vec<u32> = (0..n as u32).map(|i| i * 7 % 5).collect();
            let mut vals: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
            let (mut s1, mut s2) = (vec![0u32; n], vec![0u32; n]);
            let mut s3 = vec![0.0f64; n];
            stable_partition_tracked(
                &mut seg, &mut lab, &mut vals, &flags, &mut s1, &mut s2, &mut s3,
            );
            for w in 0..n {
                prop_assert_eq!(lab[w], seg[w] * 7 % 5);
                prop_assert_eq!(vals[w], seg[w] as f64 * 0.5);
            }
            let mut plain: Vec<u32> = (0..n as u32).collect();
            stable_partition(&mut plain, &flags, &mut s1);
            prop_assert_eq!(seg, plain);
        }

        /// Presorted sorted order survives an arbitrary partition the
        /// way the tree applies it (mark a value-prefix of one feature,
        /// partition the rest): every feature segment stays sorted.
        #[test]
        fn partition_keeps_feature_segments_sorted(
            seed in 0u64..500, split_at in 1usize..59
        ) {
            let n = 60;
            let d = dataset(seed, n, 4, 3);
            let p = Presort::for_dataset(&d);
            let mut order = p.order.clone();
            // Mark the first `split_at` samples of feature 0's order.
            let mut on_left = vec![false; n];
            for &s in &order[..split_at] {
                on_left[s as usize] = true;
            }
            let mut scratch = vec![0u32; n];
            for f in 1..4 {
                stable_partition(&mut order[f * n..(f + 1) * n], &on_left, &mut scratch);
            }
            for f in 1..4 {
                for half in [&order[f * n..f * n + split_at], &order[f * n + split_at..(f + 1) * n]] {
                    for w in half.windows(2) {
                        let (a, b) = (
                            d.feature_value(f, w[0] as usize),
                            d.feature_value(f, w[1] as usize),
                        );
                        prop_assert!(a.total_cmp(&b).is_le());
                    }
                }
            }
        }
    }
}
