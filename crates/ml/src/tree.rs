//! CART classification trees with Gini splits and minimal
//! cost-complexity pruning (paper Section 4.3).
//!
//! Matches the sklearn configuration the paper uses: Gini impurity
//! split criterion, `max_depth = 15`, `ccp_alpha = 0.005` by default.
//! Fitting is fully deterministic — features are scanned in order and
//! the first best split wins — so trained models are reproducible
//! artifacts.
//!
//! [`DecisionTree::fit`] runs the presorted columnar engine
//! ([`crate::presort`]): each feature column is sorted once per fit and
//! the sorted order is threaded down the tree by stable partition, so
//! split search is `O(n_features * n)` per node instead of
//! `O(n_features * n log n)`. The original node-local re-sorting
//! trainer is kept as [`DecisionTree::fit_reference`] — the parity
//! oracle; `tests/tree_parity.rs` asserts the two produce bit-identical
//! trees.

use crate::dataset::Dataset;
use crate::presort::Presort;
use serde::{Deserialize, Serialize};

/// Hyperparameters (paper defaults from Table 4's chosen cell).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples on each side of a split.
    pub min_samples_leaf: usize,
    /// Minimal cost-complexity pruning threshold.
    pub ccp_alpha: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams { max_depth: 15, min_samples_split: 2, min_samples_leaf: 1, ccp_alpha: 0.005 }
    }
}

/// One tree node. Leaves have `feature == u32::MAX`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct Node {
    /// Split feature index, or `u32::MAX` for a leaf.
    pub(crate) feature: u32,
    /// Split threshold: `x[feature] <= threshold` goes left.
    pub(crate) threshold: f64,
    pub(crate) left: u32,
    pub(crate) right: u32,
    /// Majority class at this node.
    pub(crate) class: u32,
    /// Training samples that reached this node.
    pub(crate) n_samples: u32,
    /// Misclassified training fraction if this node were a leaf,
    /// weighted by n_samples/n_total (the R(t) of pruning).
    pub(crate) node_risk: f64,
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.feature == u32::MAX
    }
}

/// Outcome of [`DecisionTree::predict_partial`]: the walk over a
/// partially-known feature row, stopped at the first split on an
/// unknown feature (or at a true leaf).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartialPrediction {
    /// Majority class at the stopping node.
    pub class: u32,
    /// Training-frequency confidence in `class`: the stopping node's
    /// majority fraction, or exactly 1.0 when the walk reached a leaf
    /// (the partial walk then provably equals the full walk on every
    /// completion of the row).
    pub confidence: f64,
    /// Whether every split en route tested a known feature.
    pub reached_leaf: bool,
    /// Internal nodes crossed before stopping.
    pub depth: u32,
}

/// A trained classification tree.
///
/// ```
/// use wise_ml::{Dataset, DecisionTree, TreeParams};
/// let data = Dataset::new(
///     vec![vec![0.1], vec![0.2], vec![0.8], vec![0.9]],
///     vec![0, 0, 1, 1],
///     2,
/// );
/// let tree = DecisionTree::fit(&data, TreeParams::default());
/// assert_eq!(tree.predict(&[0.05]), 0);
/// assert_eq!(tree.predict(&[0.95]), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_features: usize,
    n_classes: usize,
    params: TreeParams,
}

impl DecisionTree {
    /// Fits a tree on `data` with `params`, then applies cost-complexity
    /// pruning at `params.ccp_alpha`. Uses the presorted columnar
    /// engine; the result is bit-identical to
    /// [`DecisionTree::fit_reference`].
    pub fn fit(data: &Dataset, params: TreeParams) -> DecisionTree {
        let _span = wise_trace::span("ml.fit");
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let presort = Presort::for_dataset(data);
        Self::fit_presorted(data, &presort, params)
    }

    /// Fits with a prebuilt, shareable [`Presort`] (which is
    /// label-independent, so one presort serves every fit over the same
    /// `(matrix, row set)` — e.g. all 29 registry models, or all 24
    /// Table 4 cells of one cross-validation fold). Panics if `presort`
    /// was built for a different view.
    pub fn fit_with(data: &Dataset, presort: &Presort, params: TreeParams) -> DecisionTree {
        let _span = wise_trace::span("ml.fit");
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        assert!(presort.matches(data), "presort was built for a different dataset view");
        Self::fit_presorted(data, presort, params)
    }

    fn fit_presorted(data: &Dataset, presort: &Presort, params: TreeParams) -> DecisionTree {
        let nodes = crate::presort::grow(data, presort, params);
        wise_trace::counter("train.tree.nodes", nodes.len() as u64);
        let mut tree = DecisionTree {
            nodes,
            n_features: data.n_features(),
            n_classes: data.n_classes(),
            params,
        };
        tree.prune(params.ccp_alpha);
        tree
    }

    /// The original exact trainer — re-sorts every feature column at
    /// every node. Kept as the parity oracle for the presorted engine
    /// (`tests/tree_parity.rs` asserts `fit == fit_reference`
    /// bit-for-bit); prefer [`DecisionTree::fit`] everywhere else.
    pub fn fit_reference(data: &Dataset, params: TreeParams) -> DecisionTree {
        let _span = wise_trace::span("ml.fit");
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_features: data.n_features(),
            n_classes: data.n_classes(),
            params,
        };
        let indices: Vec<u32> = (0..data.len() as u32).collect();
        tree.build(data, indices, 0);
        tree.prune(params.ccp_alpha);
        tree
    }

    /// Recursively builds the subtree for `indices`; returns its node id.
    fn build(&mut self, data: &Dataset, indices: Vec<u32>, depth: usize) -> u32 {
        let counts = class_counts(data, &indices, self.n_classes);
        let (majority, majority_n) = argmax(&counts);
        let n = indices.len();
        let node_risk = (n - majority_n) as f64 / data.len() as f64;
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            feature: u32::MAX,
            threshold: 0.0,
            left: 0,
            right: 0,
            class: majority as u32,
            n_samples: n as u32,
            node_risk,
        });

        let pure = majority_n == n;
        if pure || depth >= self.params.max_depth || n < self.params.min_samples_split {
            return id;
        }
        let Some((feature, threshold)) = self.best_split(data, &indices, &counts) else {
            return id;
        };
        let (left_idx, right_idx): (Vec<u32>, Vec<u32>) =
            indices.into_iter().partition(|&i| data.row(i as usize)[feature] <= threshold);
        debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());
        let left = self.build(data, left_idx, depth + 1);
        let right = self.build(data, right_idx, depth + 1);
        let node = &mut self.nodes[id as usize];
        node.feature = feature as u32;
        node.threshold = threshold;
        node.left = left;
        node.right = right;
        id
    }

    /// Exhaustive best Gini split over all features; `None` if no split
    /// satisfies the leaf-size constraint or improves impurity.
    fn best_split(
        &self,
        data: &Dataset,
        indices: &[u32],
        parent_counts: &[usize],
    ) -> Option<(usize, f64)> {
        let n = indices.len() as f64;
        let parent_gini = gini_from_counts(parent_counts, indices.len());
        let min_leaf = self.params.min_samples_leaf;
        let mut best: Option<(f64, usize, f64)> = None; // (impurity, feature, threshold)

        let mut sorted: Vec<(f64, u32)> = Vec::with_capacity(indices.len());
        for feature in 0..self.n_features {
            sorted.clear();
            sorted.extend(
                indices.iter().map(|&i| (data.row(i as usize)[feature], data.label(i as usize))),
            );
            sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut left_counts = vec![0usize; self.n_classes];
            let mut left_n = 0usize;
            for w in 0..sorted.len() - 1 {
                let (v, label) = sorted[w];
                left_counts[label as usize] += 1;
                left_n += 1;
                let v_next = sorted[w + 1].0;
                if v == v_next {
                    continue; // can't split between equal values
                }
                let right_n = sorted.len() - left_n;
                if left_n < min_leaf || right_n < min_leaf {
                    continue;
                }
                // Weighted child Gini. Like sklearn, a split is
                // acceptable even at zero impurity decrease (ties with
                // the parent); recursion still terminates because both
                // children are strictly smaller. Among candidates the
                // first strictly-best split wins (deterministic).
                let gl = gini_incremental(&left_counts, left_n);
                let gr = gini_remainder(parent_counts, &left_counts, right_n);
                let weighted = (left_n as f64 * gl + right_n as f64 * gr) / n;
                let bar = best.map_or(parent_gini + 1e-12, |(b, _, _)| b);
                if weighted < bar {
                    let threshold = v + (v_next - v) / 2.0;
                    best = Some((weighted, feature, threshold));
                }
            }
        }
        best.map(|(_, f, t)| (f, t))
    }

    /// Minimal cost-complexity pruning: repeatedly collapse the internal
    /// node with the weakest link strength
    /// `g(t) = (R(t) - R(T_t)) / (|leaves(T_t)| - 1)`
    /// while `g(t) <= alpha` (Breiman et al.; sklearn's `ccp_alpha`).
    fn prune(&mut self, alpha: f64) {
        if alpha <= 0.0 {
            return;
        }
        loop {
            // Subtree risk and leaf count per node.
            let (risk, leaves) = self.subtree_stats();
            let mut weakest: Option<(f64, usize)> = None;
            for (i, node) in self.nodes.iter().enumerate() {
                if node.is_leaf() || !self.reachable(i) {
                    continue;
                }
                let nl = leaves[i];
                if nl <= 1 {
                    continue;
                }
                let g = (node.node_risk - risk[i]) / (nl as f64 - 1.0);
                if weakest.is_none_or(|(wg, _)| g < wg) {
                    weakest = Some((g, i));
                }
            }
            match weakest {
                Some((g, i)) if g <= alpha => {
                    let node = &mut self.nodes[i];
                    node.feature = u32::MAX;
                }
                _ => break,
            }
        }
    }

    /// `(R(T_t), |leaves(T_t)|)` for every node (children processed
    /// before parents because children always have larger ids).
    fn subtree_stats(&self) -> (Vec<f64>, Vec<usize>) {
        let n = self.nodes.len();
        let mut risk = vec![0.0f64; n];
        let mut leaves = vec![0usize; n];
        for i in (0..n).rev() {
            let node = &self.nodes[i];
            if node.is_leaf() {
                risk[i] = node.node_risk;
                leaves[i] = 1;
            } else {
                risk[i] = risk[node.left as usize] + risk[node.right as usize];
                leaves[i] = leaves[node.left as usize] + leaves[node.right as usize];
            }
        }
        (risk, leaves)
    }

    /// Whether node `i` is still reachable from the root (pruning turns
    /// ancestors into leaves without removing descendants).
    fn reachable(&self, target: usize) -> bool {
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            if i == target {
                return true;
            }
            let node = &self.nodes[i];
            if !node.is_leaf() {
                stack.push(node.left as usize);
                stack.push(node.right as usize);
            }
        }
        false
    }

    /// Predicts the class of one feature row.
    pub fn predict(&self, row: &[f64]) -> u32 {
        assert_eq!(row.len(), self.n_features, "feature count mismatch");
        let mut i = 0usize;
        loop {
            let node = &self.nodes[i];
            if node.is_leaf() {
                return node.class;
            }
            i = if row[node.feature as usize] <= node.threshold {
                node.left as usize
            } else {
                node.right as usize
            };
        }
    }

    /// Predicts every row of a dataset.
    pub fn predict_all(&self, data: &Dataset) -> Vec<u32> {
        (0..data.len()).map(|i| self.predict(data.row(i))).collect()
    }

    /// Predicts one row *and* records the root-to-leaf walk that
    /// produced the prediction (see [`crate::explain`]). The returned
    /// path's `leaf_class` always equals [`DecisionTree::predict`] on
    /// the same row.
    pub fn decision_path(&self, row: &[f64]) -> crate::explain::DecisionPath {
        assert_eq!(row.len(), self.n_features, "feature count mismatch");
        let mut path = crate::explain::DecisionPath::default();
        let mut i = 0usize;
        loop {
            let node = &self.nodes[i];
            if node.is_leaf() {
                path.leaf_class = node.class;
                path.leaf_samples = node.n_samples;
                return path;
            }
            let value = row[node.feature as usize];
            let went_left = value <= node.threshold;
            path.steps.push(crate::explain::DecisionStep {
                feature: node.feature,
                threshold: node.threshold,
                value,
                went_left,
                n_samples: node.n_samples,
            });
            i = if went_left { node.left as usize } else { node.right as usize };
        }
    }

    /// Walks the tree over a partially-known row, stopping at the
    /// first split whose feature is `None` (see
    /// `wise_core::cascade`): every comparison it *can* make uses the
    /// exact full-extraction value, so the walk prefix is identical to
    /// [`DecisionTree::predict`]'s on any completion of the row.
    ///
    /// When the walk reaches a true leaf the prediction therefore
    /// *provably equals* the full prediction and `confidence` is 1.
    /// When it stops early, the stopping node's majority class is
    /// returned with the majority training fraction as confidence —
    /// the probability (under training-set frequency) that completing
    /// the walk would land on the same class.
    pub fn predict_partial(&self, values: &[Option<f64>]) -> PartialPrediction {
        assert_eq!(values.len(), self.n_features, "feature count mismatch");
        let n_total = self.nodes[0].n_samples as f64;
        let mut i = 0usize;
        let mut depth = 0u32;
        loop {
            let node = &self.nodes[i];
            if node.is_leaf() {
                return PartialPrediction {
                    class: node.class,
                    confidence: 1.0,
                    reached_leaf: true,
                    depth,
                };
            }
            let Some(v) = values[node.feature as usize] else {
                // node_risk is weighted by n_samples/n_total; unweight
                // it to recover the node-local majority fraction.
                let confidence = if node.n_samples == 0 {
                    0.0
                } else {
                    (1.0 - node.node_risk * n_total / node.n_samples as f64).clamp(0.0, 1.0)
                };
                return PartialPrediction {
                    class: node.class,
                    confidence,
                    reached_leaf: false,
                    depth,
                };
            };
            i = if v <= node.threshold { node.left as usize } else { node.right as usize };
            depth += 1;
        }
    }

    /// [`DecisionTree::predict_partial`] plus the walk it took, as a
    /// [`crate::explain::DecisionPath`] whose terminal entry is the
    /// stopping node (a true leaf, or the first unknown-feature split
    /// with its majority class and support). Keeps partial selections
    /// as auditable as full ones.
    pub fn predict_partial_explained(
        &self,
        values: &[Option<f64>],
    ) -> (PartialPrediction, crate::explain::DecisionPath) {
        assert_eq!(values.len(), self.n_features, "feature count mismatch");
        let n_total = self.nodes[0].n_samples as f64;
        let mut path = crate::explain::DecisionPath::default();
        let mut i = 0usize;
        loop {
            let node = &self.nodes[i];
            if node.is_leaf() {
                path.leaf_class = node.class;
                path.leaf_samples = node.n_samples;
                let p = PartialPrediction {
                    class: node.class,
                    confidence: 1.0,
                    reached_leaf: true,
                    depth: path.steps.len() as u32,
                };
                return (p, path);
            }
            let Some(value) = values[node.feature as usize] else {
                path.leaf_class = node.class;
                path.leaf_samples = node.n_samples;
                let confidence = if node.n_samples == 0 {
                    0.0
                } else {
                    (1.0 - node.node_risk * n_total / node.n_samples as f64).clamp(0.0, 1.0)
                };
                let p = PartialPrediction {
                    class: node.class,
                    confidence,
                    reached_leaf: false,
                    depth: path.steps.len() as u32,
                };
                return (p, path);
            };
            let went_left = value <= node.threshold;
            path.steps.push(crate::explain::DecisionStep {
                feature: node.feature,
                threshold: node.threshold,
                value,
                went_left,
                n_samples: node.n_samples,
            });
            i = if went_left { node.left as usize } else { node.right as usize };
        }
    }

    /// Per-feature importance: normalized training-error decrease
    /// contributed by splits on each feature (the order-consistent
    /// analogue of sklearn's `feature_importances_`). Reveals which of
    /// the Table 2 features actually drive each performance model.
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut importances = vec![0.0f64; self.n_features];
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            let node = &self.nodes[i];
            if node.is_leaf() {
                continue;
            }
            let l = &self.nodes[node.left as usize];
            let r = &self.nodes[node.right as usize];
            // node_risk is already weighted by n_samples / n_total, so
            // this is the (sample-weighted) error decrease of the split.
            let decrease = (node.node_risk - l.node_risk - r.node_risk).max(0.0);
            importances[node.feature as usize] += decrease;
            stack.push(node.left as usize);
            stack.push(node.right as usize);
        }
        let total: f64 = importances.iter().sum();
        if total > 0.0 {
            for v in &mut importances {
                *v /= total;
            }
        }
        importances
    }

    /// Number of reachable nodes.
    pub fn n_nodes(&self) -> usize {
        let mut count = 0;
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            count += 1;
            let node = &self.nodes[i];
            if !node.is_leaf() {
                stack.push(node.left as usize);
                stack.push(node.right as usize);
            }
        }
        count
    }

    /// Maximum depth of the reachable tree (root = depth 0).
    pub fn depth(&self) -> usize {
        let mut max = 0;
        let mut stack = vec![(0usize, 0usize)];
        while let Some((i, d)) = stack.pop() {
            max = max.max(d);
            let node = &self.nodes[i];
            if !node.is_leaf() {
                stack.push((node.left as usize, d + 1));
                stack.push((node.right as usize, d + 1));
            }
        }
        max
    }

    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    pub fn params(&self) -> &TreeParams {
        &self.params
    }
}

fn class_counts(data: &Dataset, indices: &[u32], n_classes: usize) -> Vec<usize> {
    let mut counts = vec![0usize; n_classes];
    for &i in indices {
        counts[data.label(i as usize) as usize] += 1;
    }
    counts
}

pub(crate) fn argmax(counts: &[usize]) -> (usize, usize) {
    let mut best = (0usize, 0usize);
    for (c, &n) in counts.iter().enumerate() {
        if n > best.1 {
            best = (c, n);
        }
    }
    best
}

pub(crate) fn gini_from_counts(counts: &[usize], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / nf).powi(2)).sum::<f64>()
}

pub(crate) fn gini_incremental(left_counts: &[usize], left_n: usize) -> f64 {
    gini_from_counts(left_counts, left_n)
}

pub(crate) fn gini_remainder(parent: &[usize], left: &[usize], right_n: usize) -> f64 {
    if right_n == 0 {
        return 0.0;
    }
    let nf = right_n as f64;
    let mut acc = 0.0;
    for (p, l) in parent.iter().zip(left.iter()) {
        let r = (p - l) as f64 / nf;
        acc += r * r;
    }
    1.0 - acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn axis_dataset() -> Dataset {
        // Class = (x > 0.5) as label, y irrelevant.
        let rows: Vec<Vec<f64>> =
            (0..40).map(|i| vec![i as f64 / 40.0, ((i * 7) % 13) as f64]).collect();
        let labels: Vec<u32> = (0..40).map(|i| u32::from(i as f64 / 40.0 > 0.5)).collect();
        Dataset::new(rows, labels, 2)
    }

    #[test]
    fn fits_axis_aligned_split_perfectly() {
        let d = axis_dataset();
        let t = DecisionTree::fit(&d, TreeParams { ccp_alpha: 0.0, ..Default::default() });
        assert_eq!(t.predict_all(&d), d.labels());
        // One split suffices.
        assert_eq!(t.n_nodes(), 3);
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn respects_max_depth() {
        // XOR labels force depth 2; cap at 1 first.
        let rows: Vec<Vec<f64>> =
            (0..32).map(|i| vec![(i % 2) as f64, ((i / 2) % 2) as f64]).collect();
        let labels: Vec<u32> = (0..32).map(|i| ((i % 2) ^ ((i / 2) % 2)) as u32).collect();
        let d = Dataset::new(rows, labels, 2);
        let t = DecisionTree::fit(
            &d,
            TreeParams { max_depth: 1, ccp_alpha: 0.0, ..Default::default() },
        );
        assert!(t.depth() <= 1);
        // Depth 2 solves XOR exactly.
        let t2 = DecisionTree::fit(
            &d,
            TreeParams { max_depth: 4, ccp_alpha: 0.0, ..Default::default() },
        );
        assert_eq!(t2.predict_all(&d), d.labels());
    }

    #[test]
    fn min_samples_leaf_enforced() {
        let d = axis_dataset();
        let t = DecisionTree::fit(
            &d,
            TreeParams { min_samples_leaf: 25, ccp_alpha: 0.0, ..Default::default() },
        );
        // No split can leave 25 on both sides of 40 samples.
        assert_eq!(t.n_nodes(), 1);
    }

    #[test]
    fn pruning_shrinks_tree_monotonically() {
        // Noisy labels produce an overgrown tree that pruning collapses.
        let rows: Vec<Vec<f64>> =
            (0..200).map(|i| vec![(i as f64).sin(), (i as f64).cos()]).collect();
        let labels: Vec<u32> = (0..200).map(|i| ((i * 2654435761usize) >> 7) as u32 % 3).collect();
        let d = Dataset::new(rows, labels, 3);
        let mut prev_nodes = usize::MAX;
        for alpha in [0.0, 0.001, 0.01, 0.1] {
            let t = DecisionTree::fit(
                &d,
                TreeParams { max_depth: 20, ccp_alpha: alpha, ..Default::default() },
            );
            assert!(t.n_nodes() <= prev_nodes, "alpha={alpha}: {} > {prev_nodes}", t.n_nodes());
            prev_nodes = t.n_nodes();
        }
        // Heavy pruning reaches (near) a stump.
        assert!(prev_nodes <= 3, "alpha=0.1 left {prev_nodes} nodes");
    }

    #[test]
    fn constant_features_yield_single_leaf() {
        let d = Dataset::new(vec![vec![1.0, 1.0]; 10], vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1], 2);
        let t = DecisionTree::fit(&d, TreeParams { ccp_alpha: 0.0, ..Default::default() });
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.predict(&[1.0, 1.0]), 0); // majority tie -> lowest class
    }

    #[test]
    fn deterministic_fit() {
        let d = axis_dataset();
        let p = TreeParams::default();
        assert_eq!(DecisionTree::fit(&d, p), DecisionTree::fit(&d, p));
    }

    #[test]
    fn serde_roundtrip() {
        let d = axis_dataset();
        let t = DecisionTree::fit(&d, TreeParams::default());
        let json = serde_json::to_string(&t).unwrap();
        let t2: DecisionTree = serde_json::from_str(&json).unwrap();
        assert_eq!(t, t2);
        assert_eq!(t.predict_all(&d), t2.predict_all(&d));
    }

    proptest! {
        /// Predictions are always one of the trained classes, whatever
        /// the data.
        #[test]
        fn predictions_in_class_range(
            raw in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0u32..4), 5..60)
        ) {
            let rows: Vec<Vec<f64>> = raw.iter().map(|&(a, b, _)| vec![a, b]).collect();
            let labels: Vec<u32> = raw.iter().map(|&(_, _, l)| l).collect();
            let d = Dataset::new(rows, labels, 4);
            let t = DecisionTree::fit(&d, TreeParams::default());
            for i in 0..d.len() {
                prop_assert!(t.predict(d.row(i)) < 4);
            }
            prop_assert!(t.predict(&[0.5, 0.5]) < 4);
        }

        /// With no depth cap, no pruning and unique feature values, the
        /// tree memorizes the training set.
        #[test]
        fn memorizes_separable_data(labels in proptest::collection::vec(0u32..3, 4..40)) {
            let rows: Vec<Vec<f64>> =
                (0..labels.len()).map(|i| vec![i as f64]).collect();
            let d = Dataset::new(rows, labels.clone(), 3);
            let t = DecisionTree::fit(
                &d,
                TreeParams { max_depth: 64, ccp_alpha: 0.0, ..Default::default() },
            );
            prop_assert_eq!(t.predict_all(&d), labels);
        }
    }
}

#[cfg(test)]
mod explain_tests {
    use super::*;

    fn xor_dataset() -> Dataset {
        let rows: Vec<Vec<f64>> =
            (0..32).map(|i| vec![(i % 2) as f64, ((i / 2) % 2) as f64]).collect();
        let labels: Vec<u32> = (0..32).map(|i| ((i % 2) ^ ((i / 2) % 2)) as u32).collect();
        Dataset::new(rows, labels, 2)
    }

    #[test]
    fn path_leaf_always_matches_predict() {
        let d = xor_dataset();
        let t = DecisionTree::fit(
            &d,
            TreeParams { max_depth: 4, ccp_alpha: 0.0, ..Default::default() },
        );
        for i in 0..d.len() {
            let path = t.decision_path(d.row(i));
            assert_eq!(path.leaf_class, t.predict(d.row(i)), "row {i}");
            assert!(!path.steps.is_empty(), "XOR tree must split");
            assert!(path.depth() <= t.depth());
            // The recorded walk is self-consistent: each step's branch
            // matches its own value/threshold comparison.
            for s in &path.steps {
                assert_eq!(s.went_left, s.value <= s.threshold);
            }
            // Root step carries the full training support.
            assert_eq!(path.steps[0].n_samples, d.len() as u32);
        }
    }

    #[test]
    fn partial_with_all_known_matches_predict_exactly() {
        let d = xor_dataset();
        let t = DecisionTree::fit(
            &d,
            TreeParams { max_depth: 4, ccp_alpha: 0.0, ..Default::default() },
        );
        for i in 0..d.len() {
            let row = d.row(i);
            let known: Vec<Option<f64>> = row.iter().map(|&v| Some(v)).collect();
            let p = t.predict_partial(&known);
            assert!(p.reached_leaf);
            assert_eq!(p.confidence, 1.0);
            assert_eq!(p.class, t.predict(row), "row {i}");
        }
    }

    #[test]
    fn partial_with_nothing_known_reports_root_majority() {
        // 3:1 class imbalance -> root majority 0 with confidence 0.75.
        let rows: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64]).collect();
        let labels: Vec<u32> = (0..32).map(|i| u32::from(i % 4 == 0)).collect();
        let d = Dataset::new(rows, labels, 2);
        let t = DecisionTree::fit(
            &d,
            TreeParams { max_depth: 6, ccp_alpha: 0.0, ..Default::default() },
        );
        let p = t.predict_partial(&[None]);
        assert!(!p.reached_leaf);
        assert_eq!(p.depth, 0);
        assert_eq!(p.class, 0);
        assert!((p.confidence - 0.75).abs() < 1e-12, "conf {}", p.confidence);
    }

    #[test]
    fn partial_leaf_agrees_with_every_completion() {
        // Tree that splits only on feature 0: knowing feature 0 alone
        // must reach a leaf, and the class must match predict() for
        // any value of the unknown feature 1.
        let rows: Vec<Vec<f64>> = (0..16).map(|i| vec![i as f64, 0.0]).collect();
        let labels: Vec<u32> = (0..16).map(|i| u32::from(i >= 8)).collect();
        let d = Dataset::new(rows, labels, 2);
        let t = DecisionTree::fit(
            &d,
            TreeParams { max_depth: 4, ccp_alpha: 0.0, ..Default::default() },
        );
        for probe in [0.0, 5.0, 11.0, 15.0] {
            let p = t.predict_partial(&[Some(probe), None]);
            assert!(p.reached_leaf, "probe {probe}");
            for unknown in [-1e9, 0.0, 1e9] {
                assert_eq!(p.class, t.predict(&[probe, unknown]), "probe {probe}");
            }
        }
    }

    #[test]
    fn partial_explained_agrees_with_partial_and_full_paths() {
        let d = xor_dataset();
        let t = DecisionTree::fit(
            &d,
            TreeParams { max_depth: 4, ccp_alpha: 0.0, ..Default::default() },
        );
        for i in 0..d.len() {
            let row = d.row(i);
            let known: Vec<Option<f64>> = row.iter().map(|&v| Some(v)).collect();
            let (p, path) = t.predict_partial_explained(&known);
            assert_eq!(p, t.predict_partial(&known));
            // Fully-known walk: the explained path equals decision_path.
            assert_eq!(path, t.decision_path(row), "row {i}");
        }
        // Early stop: path terminates at the unknown-feature split with
        // that node's majority and support.
        let (p, path) = t.predict_partial_explained(&[None, None]);
        assert!(!p.reached_leaf);
        assert!(path.steps.is_empty());
        assert_eq!(path.leaf_class, p.class);
        assert_eq!(path.leaf_samples, d.len() as u32);
    }

    #[test]
    fn stump_path_has_no_steps_but_valid_leaf() {
        let d = Dataset::new(vec![vec![1.0]; 8], vec![2; 8], 3);
        let t = DecisionTree::fit(&d, TreeParams::default());
        let path = t.decision_path(&[1.0]);
        assert!(path.steps.is_empty());
        assert_eq!(path.leaf_class, 2);
        assert_eq!(path.leaf_samples, 8);
        assert!(path.render(|i| format!("f{i}")).contains("leaf: class 2 (n=8)"));
    }

    #[test]
    fn render_names_features_and_directions() {
        let d = xor_dataset();
        let t = DecisionTree::fit(
            &d,
            TreeParams { max_depth: 4, ccp_alpha: 0.0, ..Default::default() },
        );
        let names = ["alpha", "beta"];
        let text = t.decision_path(&[0.0, 1.0]).render(|i| names[i as usize].to_string());
        assert!(text.contains("alpha") || text.contains("beta"), "{text}");
        assert!(text.contains("-> left") || text.contains("-> right"), "{text}");
        assert!(
            text.trim_end()
                .ends_with(&format!("(n={})", t.decision_path(&[0.0, 1.0]).leaf_samples)),
            "{text}"
        );
    }

    #[test]
    fn path_serde_roundtrip() {
        let d = xor_dataset();
        let t = DecisionTree::fit(
            &d,
            TreeParams { max_depth: 4, ccp_alpha: 0.0, ..Default::default() },
        );
        let path = t.decision_path(&[1.0, 0.0]);
        let json = serde_json::to_string(&path).unwrap();
        let back: crate::explain::DecisionPath = serde_json::from_str(&json).unwrap();
        assert_eq!(back, path);
    }
}

#[cfg(test)]
mod importance_tests {
    use super::*;

    #[test]
    fn importances_identify_the_informative_feature() {
        // Feature 1 fully determines the label; feature 0 is noise.
        let rows: Vec<Vec<f64>> =
            (0..60).map(|i| vec![((i * 37) % 11) as f64, (i % 2) as f64]).collect();
        let labels: Vec<u32> = (0..60).map(|i| (i % 2) as u32).collect();
        let d = Dataset::new(rows, labels, 2);
        let t = DecisionTree::fit(&d, TreeParams { ccp_alpha: 0.0, ..Default::default() });
        let imp = t.feature_importances();
        assert_eq!(imp.len(), 2);
        assert!(imp[1] > 0.9, "informative feature should dominate: {imp:?}");
        let total: f64 = imp.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_leaf_has_zero_importances() {
        let d = Dataset::new(vec![vec![1.0]; 5], vec![0; 5], 2);
        let t = DecisionTree::fit(&d, TreeParams::default());
        assert_eq!(t.feature_importances(), vec![0.0]);
    }
}
