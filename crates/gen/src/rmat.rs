//! The RMAT recursive matrix generator (Chakrabarti et al., SDM'04),
//! as used by Graph500 and by the paper (Section 4.5).
//!
//! To place an edge, a quadrant of the matrix is picked according to
//! probabilities `(a, b, c, d)`; the chosen quadrant is recursively
//! subdivided until a single cell remains. Skew comes from `a >> d`;
//! locality (diagonal concentration) from `a = d > b = c`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use wise_matrix::coo::DupPolicy;
use wise_matrix::{Coo, Csr};

/// Vertices per relabeling block in [`RmatParams::generate_shuffled`]:
/// large enough to preserve the local hub clustering of real crawls,
/// small enough to scatter hot columns across the cache-line space.
pub const SHUFFLE_BLOCK: usize = 16;

/// RMAT quadrant probabilities. Must be non-negative and sum to ~1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RmatParams {
    pub a: f64,
    pub b: f64,
    pub c: f64,
    pub d: f64,
}

impl RmatParams {
    /// Graph500 parameters: the paper's HighSkew setting.
    pub const HIGH_SKEW: RmatParams = RmatParams { a: 0.57, b: 0.19, c: 0.19, d: 0.05 };
    /// The paper's MedSkew setting.
    pub const MED_SKEW: RmatParams = RmatParams { a: 0.46, b: 0.22, c: 0.22, d: 0.10 };
    /// The paper's LowSkew setting.
    pub const LOW_SKEW: RmatParams = RmatParams { a: 0.35, b: 0.25, c: 0.25, d: 0.15 };
    /// Erdos-Renyi-like: the paper's LowLoc setting.
    pub const LOW_LOC: RmatParams = RmatParams { a: 0.25, b: 0.25, c: 0.25, d: 0.25 };
    /// The paper's MedLoc setting.
    pub const MED_LOC: RmatParams = RmatParams { a: 0.35, b: 0.15, c: 0.15, d: 0.35 };
    /// The paper's HighLoc setting.
    pub const HIGH_LOC: RmatParams = RmatParams { a: 0.45, b: 0.05, c: 0.05, d: 0.45 };

    /// Checks the probabilities are a distribution (within tolerance).
    pub fn validate(&self) -> bool {
        let s = self.a + self.b + self.c + self.d;
        (s - 1.0).abs() < 1e-9 && self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0
    }

    /// Samples one cell of a `2^scale x 2^scale` matrix.
    ///
    /// A small deterministic per-level perturbation of the probabilities
    /// (the standard Graph500 "noise") prevents the artificial staircase
    /// pattern pure RMAT produces.
    fn sample_cell(&self, scale: u32, rng: &mut StdRng) -> (u32, u32) {
        let mut row = 0u32;
        let mut col = 0u32;
        for _ in 0..scale {
            // +/-5% multiplicative noise, renormalized.
            let na = self.a * (0.95 + 0.1 * rng.gen::<f64>());
            let nb = self.b * (0.95 + 0.1 * rng.gen::<f64>());
            let nc = self.c * (0.95 + 0.1 * rng.gen::<f64>());
            let nd = self.d * (0.95 + 0.1 * rng.gen::<f64>());
            let total = na + nb + nc + nd;
            let u = rng.gen::<f64>() * total;
            row <<= 1;
            col <<= 1;
            if u < na {
                // top-left
            } else if u < na + nb {
                col |= 1; // top-right
            } else if u < na + nb + nc {
                row |= 1; // bottom-left
            } else {
                row |= 1;
                col |= 1; // bottom-right
            }
        }
        (row, col)
    }

    /// Generates a `2^scale x 2^scale` sparse matrix with roughly
    /// `avg_degree` nonzeros per row.
    ///
    /// `avg_degree * 2^scale` cells are sampled; duplicate samples are
    /// collapsed (an edge drawn twice is one edge), so the realized
    /// average degree is slightly below the target for dense/small
    /// configurations — matching Graph500 semantics. Values are
    /// deterministic pseudo-random in `[0.5, 1.5)`.
    pub fn generate(&self, scale: u32, avg_degree: u32, seed: u64) -> Csr {
        self.generate_opts(scale, avg_degree, seed, false)
    }

    /// Like [`Self::generate`], but with a *block* random vertex
    /// relabeling applied (the same permutation to rows and columns).
    ///
    /// Raw recursive RMAT concentrates all hubs at low indices — an
    /// artifact real web/social graphs do not have, so Graph500
    /// shuffles vertex labels. A fully uniform shuffle, however,
    /// destroys the *local* hub clustering real graphs keep (crawl
    /// order groups pages by domain). Permuting blocks of
    /// [`SHUFFLE_BLOCK`] consecutive vertices reproduces both
    /// properties: hub clusters are scattered across the ID space
    /// (driving the input-vector locality effects that CFS exploits)
    /// while staying locally contiguous (driving the scheduling load
    /// imbalance of the paper's Figure 3).
    pub fn generate_shuffled(&self, scale: u32, avg_degree: u32, seed: u64) -> Csr {
        self.generate_opts(scale, avg_degree, seed, true)
    }

    fn generate_opts(&self, scale: u32, avg_degree: u32, seed: u64, shuffle: bool) -> Csr {
        assert!(self.validate(), "RMAT probabilities must sum to 1");
        assert!(scale <= 31, "scale too large for u32 indices");
        let n = 1usize << scale;
        let nnz_target = n.saturating_mul(avg_degree as usize);
        let mut rng = StdRng::seed_from_u64(seed);
        let relabel: Option<Vec<u32>> = if shuffle {
            use rand::seq::SliceRandom;
            let nblocks = n.div_ceil(SHUFFLE_BLOCK);
            let mut blocks: Vec<usize> = (0..nblocks).collect();
            blocks.shuffle(&mut rng);
            let mut p = vec![0u32; n];
            for (new_b, &old_b) in blocks.iter().enumerate() {
                for i in 0..SHUFFLE_BLOCK {
                    let old = old_b * SHUFFLE_BLOCK + i;
                    if old < n {
                        // Blocks are all full because n is a power of
                        // two >= SHUFFLE_BLOCK for every corpus scale.
                        p[old] = (new_b * SHUFFLE_BLOCK + i) as u32;
                    }
                }
            }
            Some(p)
        } else {
            None
        };
        let mut coo = Coo::with_capacity(n, n, nnz_target);
        for _ in 0..nnz_target {
            let (mut r, mut c) = self.sample_cell(scale, &mut rng);
            if let Some(p) = &relabel {
                r = p[r as usize];
                c = p[c as usize];
            }
            let v = 0.5 + rng.gen::<f64>();
            coo.push_unchecked(r, c, v);
        }
        coo.to_csr(DupPolicy::KeepLast)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distributions() {
        for p in [
            RmatParams::HIGH_SKEW,
            RmatParams::MED_SKEW,
            RmatParams::LOW_SKEW,
            RmatParams::LOW_LOC,
            RmatParams::MED_LOC,
            RmatParams::HIGH_LOC,
        ] {
            assert!(p.validate(), "{p:?}");
        }
    }

    #[test]
    fn dimensions_and_density() {
        let m = RmatParams::LOW_LOC.generate(10, 8, 42);
        assert_eq!(m.nrows(), 1024);
        assert_eq!(m.ncols(), 1024);
        // Dedup removes some edges but the bulk must remain.
        assert!(m.nnz() > 1024 * 8 / 2, "nnz={}", m.nnz());
        assert!(m.nnz() <= 1024 * 8);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = RmatParams::HIGH_SKEW.generate(8, 4, 7);
        let b = RmatParams::HIGH_SKEW.generate(8, 4, 7);
        assert_eq!(a, b);
        let c = RmatParams::HIGH_SKEW.generate(8, 4, 8);
        assert_ne!(a, c);
    }

    /// Max row degree of HighSkew should far exceed LowLoc's at the same
    /// size — that's the whole point of the parameterization.
    #[test]
    fn high_skew_is_skewed() {
        let hs = RmatParams::HIGH_SKEW.generate(11, 8, 1);
        let ll = RmatParams::LOW_LOC.generate(11, 8, 1);
        let max_hs = hs.nnz_per_row().into_iter().max().unwrap();
        let max_ll = ll.nnz_per_row().into_iter().max().unwrap();
        assert!(
            max_hs > 3 * max_ll,
            "HighSkew max degree {max_hs} should dominate LowLoc {max_ll}"
        );
    }

    /// HighLoc concentrates nonzeros near the diagonal: the mean
    /// |row - col| distance must be far smaller than for LowLoc.
    #[test]
    fn high_loc_is_diagonal_heavy() {
        let hl = RmatParams::HIGH_LOC.generate(11, 8, 1);
        let ll = RmatParams::LOW_LOC.generate(11, 8, 1);
        let mean_dist = |m: &Csr| -> f64 {
            let mut total = 0.0;
            for r in 0..m.nrows() {
                for (c, _) in m.row(r) {
                    total += (r as f64 - c as f64).abs();
                }
            }
            total / m.nnz() as f64
        };
        let d_hl = mean_dist(&hl);
        let d_ll = mean_dist(&ll);
        assert!(d_hl < d_ll / 2.0, "HighLoc dist {d_hl} vs LowLoc {d_ll}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Generated matrices always have valid dimensions and a
        /// realized density within (0, target].
        #[test]
        fn dimensions_and_density_bounds(
            scale in 5u32..10,
            degree in 1u32..16,
            seed in 0u64..1000,
        ) {
            let m = RmatParams::MED_SKEW.generate(scale, degree, seed);
            let n = 1usize << scale;
            prop_assert_eq!(m.nrows(), n);
            prop_assert_eq!(m.ncols(), n);
            prop_assert!(m.nnz() >= 1);
            prop_assert!(m.nnz() <= n * degree as usize);
        }

        /// Block-shuffled generation has the same density profile as
        /// raw generation: relabeling cannot change edge counts beyond
        /// the statistical noise introduced by the rng stream offset of
        /// drawing the permutation (dedup rates fluctuate at small
        /// scales, so the tolerance is generous).
        #[test]
        fn shuffle_preserves_density(
            scale in 8u32..11,
            seed in 0u64..200,
        ) {
            let raw = RmatParams::HIGH_SKEW.generate(scale, 8, seed);
            let shuf = RmatParams::HIGH_SKEW.generate_shuffled(scale, 8, seed);
            let d = (raw.nnz() as f64 - shuf.nnz() as f64).abs() / raw.nnz() as f64;
            prop_assert!(d < 0.15, "dedup rates should be similar: {d}");
            prop_assert_eq!(raw.nrows(), shuf.nrows());
        }
    }
}
