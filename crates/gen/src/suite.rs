//! Synthetic stand-ins for the 136 SuiteSparse matrices of the paper.
//!
//! Real SuiteSparse downloads are a data gate in this environment, so
//! this module synthesizes matrices that match the statistical profile
//! the paper *measures* for its SuiteSparse subset:
//!
//! * nonzeros-per-row p-ratio mostly > 0.4 (Fig. 7) — balanced rows;
//! * small average row degree (Fig. 12b) — most mass below ~30;
//! * mostly scientific structure (banded systems, 2D/3D stencils,
//!   FEM-style meshes, road networks) plus a few power-law graphs.
//!
//! Anything loaded via `wise_matrix::io::read_matrix_market` can replace
//! these stand-ins without touching the rest of the pipeline.

use crate::rgg::RggParams;
use crate::rmat::RmatParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wise_matrix::coo::DupPolicy;
use wise_matrix::{Coo, Csr};

/// A banded matrix: each row has entries within `half_bw` of the
/// diagonal, each present with probability `fill`. Models banded direct
/// solver systems (e.g. the `*_dia` families of SuiteSparse).
pub fn banded(n: usize, half_bw: usize, fill: f64, seed: u64) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed);
    let expected = (n as f64 * (2 * half_bw + 1) as f64 * fill) as usize;
    let mut coo = Coo::with_capacity(n, n, expected);
    for r in 0..n {
        let lo = r.saturating_sub(half_bw);
        let hi = (r + half_bw).min(n - 1);
        for c in lo..=hi {
            if c == r || rng.gen::<f64>() < fill {
                coo.push_unchecked(r as u32, c as u32, 0.5 + rng.gen::<f64>());
            }
        }
    }
    coo.to_csr(DupPolicy::KeepLast)
}

/// A 5-point 2D Laplacian stencil on an `nx x ny` grid (classic PDE
/// discretization; the archetypal SuiteSparse scientific matrix).
pub fn stencil_2d(nx: usize, ny: usize) -> Csr {
    let n = nx * ny;
    let mut coo = Coo::with_capacity(n, n, 5 * n);
    for y in 0..ny {
        for x in 0..nx {
            let i = (y * nx + x) as u32;
            coo.push_unchecked(i, i, 4.0);
            if x > 0 {
                coo.push_unchecked(i, i - 1, -1.0);
            }
            if x + 1 < nx {
                coo.push_unchecked(i, i + 1, -1.0);
            }
            if y > 0 {
                coo.push_unchecked(i, i - nx as u32, -1.0);
            }
            if y + 1 < ny {
                coo.push_unchecked(i, i + nx as u32, -1.0);
            }
        }
    }
    coo.to_csr(DupPolicy::KeepLast)
}

/// A 7-point 3D Laplacian stencil on an `nx x ny x nz` grid.
pub fn stencil_3d(nx: usize, ny: usize, nz: usize) -> Csr {
    let n = nx * ny * nz;
    let plane = (nx * ny) as u32;
    let mut coo = Coo::with_capacity(n, n, 7 * n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = (z * nx * ny + y * nx + x) as u32;
                coo.push_unchecked(i, i, 6.0);
                if x > 0 {
                    coo.push_unchecked(i, i - 1, -1.0);
                }
                if x + 1 < nx {
                    coo.push_unchecked(i, i + 1, -1.0);
                }
                if y > 0 {
                    coo.push_unchecked(i, i - nx as u32, -1.0);
                }
                if y + 1 < ny {
                    coo.push_unchecked(i, i + nx as u32, -1.0);
                }
                if z > 0 {
                    coo.push_unchecked(i, i - plane, -1.0);
                }
                if z + 1 < nz {
                    coo.push_unchecked(i, i + plane, -1.0);
                }
            }
        }
    }
    coo.to_csr(DupPolicy::KeepLast)
}

/// FEM-style unstructured mesh: an RGG with moderate degree, whose
/// cell-sorted labeling mirrors mesh node numbering.
pub fn fem_like(n: usize, avg_degree: f64, seed: u64) -> Csr {
    RggParams { n, avg_degree }.generate(seed)
}

/// Road-network-like graph: an RGG with very low degree (real road
/// graphs average degree ~2.5) — the `road_usa`/`delaunay` family.
pub fn road_like(n: usize, seed: u64) -> Csr {
    RggParams { n, avg_degree: 3.0 }.generate(seed)
}

/// A power-law (web/social) graph — the minority class of SuiteSparse
/// (`sk-2005`, `uk-2002`, ...).
pub fn power_law(scale: u32, avg_degree: u32, seed: u64) -> Csr {
    RmatParams::HIGH_SKEW.generate_shuffled(scale, avg_degree, seed)
}

/// Uniform random (Erdos-Renyi-like) matrix for corpus variety.
pub fn uniform_random(scale: u32, avg_degree: u32, seed: u64) -> Csr {
    RmatParams::LOW_LOC.generate(scale, avg_degree, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banded_stays_in_band() {
        let m = banded(200, 5, 0.6, 1);
        for r in 0..m.nrows() {
            for (c, _) in m.row(r) {
                assert!((r as i64 - c as i64).unsigned_abs() <= 5);
            }
        }
        // Diagonal is always present.
        for r in 0..m.nrows() {
            assert!(m.row_cols(r).contains(&(r as u32)));
        }
    }

    #[test]
    fn stencil_2d_structure() {
        let m = stencil_2d(10, 10);
        assert_eq!(m.nrows(), 100);
        // Interior point has 5 entries, corner 3.
        assert_eq!(m.row_nnz(0), 3);
        assert_eq!(m.row_nnz(5 * 10 + 5), 5);
        // Symmetric.
        assert_eq!(m, m.transpose());
        // Row sums: 4 - (#neighbors) >= 0; interior rows sum to 0.
        let x = vec![1.0; 100];
        let mut y = vec![0.0; 100];
        m.spmv_reference(&x, &mut y);
        assert_eq!(y[5 * 10 + 5], 0.0);
    }

    #[test]
    fn stencil_3d_structure() {
        let m = stencil_3d(5, 5, 5);
        assert_eq!(m.nrows(), 125);
        assert_eq!(m, m.transpose());
        // Center point has full 7-point stencil.
        let center = 2 * 25 + 2 * 5 + 2;
        assert_eq!(m.row_nnz(center), 7);
    }

    #[test]
    fn road_like_is_sparse() {
        let m = road_like(3000, 2);
        let avg = m.nnz() as f64 / m.nrows() as f64;
        assert!(avg < 6.0, "road-like degree should be small, got {avg}");
    }

    /// The key corpus property the paper documents: scientific matrices
    /// have balanced row distributions (high p-ratio), power-law ones do
    /// not. Checked here with a crude balance proxy (max/mean degree).
    #[test]
    fn scientific_rows_are_balanced_power_law_is_not() {
        let sci = stencil_2d(64, 64);
        let pl = power_law(12, 8, 3);
        let imbalance = |m: &Csr| {
            let rows = m.nnz_per_row();
            let max = *rows.iter().max().unwrap() as f64;
            let mean = m.nnz() as f64 / m.nrows() as f64;
            max / mean
        };
        assert!(imbalance(&sci) < 3.0);
        assert!(imbalance(&pl) > 10.0);
    }
}
