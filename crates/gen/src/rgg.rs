//! Random geometric graphs (Section 4.5 of the paper).
//!
//! `n` vertices are placed uniformly at random in the 2D unit square;
//! an undirected edge connects every pair within distance `r`, where
//! `r = sqrt(degree / (n * pi))` for a target average degree. Vertices
//! are labeled in row-major grid-cell order, which mirrors the high
//! spatial locality the paper relies on RGG to model.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use wise_matrix::coo::DupPolicy;
use wise_matrix::{Coo, Csr};

/// Parameters for a random geometric graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RggParams {
    /// Number of vertices (matrix dimension).
    pub n: usize,
    /// Target average degree; sets the connection radius
    /// `r = sqrt(degree / (n * pi))` as in the paper.
    pub avg_degree: f64,
}

impl RggParams {
    /// Generates the adjacency matrix of the RGG.
    ///
    /// Uses a uniform grid of cell size `r` so each vertex only checks
    /// the 3x3 neighborhood of its cell — O(n·degree) expected time.
    /// Vertices are sorted by grid cell (row-major), so nearby vertices
    /// get nearby indices: the adjacency matrix is strongly
    /// diagonal-concentrated, as in real mesh-like SuiteSparse matrices.
    pub fn generate(&self, seed: u64) -> Csr {
        let n = self.n;
        assert!(n > 1, "RGG needs at least two vertices");
        let r = (self.avg_degree / (n as f64 * std::f64::consts::PI)).sqrt();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();

        // Grid bucketing; cells of side >= r.
        let cells = ((1.0 / r).floor() as usize).clamp(1, 1 << 12);
        let cell_of = |p: (f64, f64)| -> (usize, usize) {
            let cx = ((p.0 * cells as f64) as usize).min(cells - 1);
            let cy = ((p.1 * cells as f64) as usize).min(cells - 1);
            (cx, cy)
        };
        // Relabel vertices by cell (row-major), preserving locality.
        pts.sort_by(|&p, &q| {
            let (px, py) = cell_of(p);
            let (qx, qy) = cell_of(q);
            (py, px).cmp(&(qy, qx)).then(p.partial_cmp(&q).unwrap_or(std::cmp::Ordering::Equal))
        });

        let mut grid: Vec<Vec<u32>> = vec![Vec::new(); cells * cells];
        for (i, &p) in pts.iter().enumerate() {
            let (cx, cy) = cell_of(p);
            grid[cy * cells + cx].push(i as u32);
        }

        let r2 = r * r;
        let mut coo = Coo::with_capacity(n, n, (n as f64 * self.avg_degree) as usize);
        for (i, &(x, y)) in pts.iter().enumerate() {
            let (cx, cy) = cell_of((x, y));
            let x0 = cx.saturating_sub(1);
            let y0 = cy.saturating_sub(1);
            let x1 = (cx + 1).min(cells - 1);
            let y1 = (cy + 1).min(cells - 1);
            for gy in y0..=y1 {
                for gx in x0..=x1 {
                    for &j in &grid[gy * cells + gx] {
                        let j = j as usize;
                        if j <= i {
                            continue; // each unordered pair once
                        }
                        let (px, py) = pts[j];
                        let dx = x - px;
                        let dy = y - py;
                        if dx * dx + dy * dy <= r2 {
                            let v = 0.5 + 0.5 * ((i + j) as f64 % 97.0) / 97.0;
                            coo.push_unchecked(i as u32, j as u32, v);
                            coo.push_unchecked(j as u32, i as u32, v);
                        }
                    }
                }
            }
        }
        coo.to_csr(DupPolicy::KeepLast)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_adjacency() {
        let m = RggParams { n: 2000, avg_degree: 8.0 }.generate(3);
        assert_eq!(m, m.transpose());
    }

    #[test]
    fn degree_close_to_target() {
        let m = RggParams { n: 4000, avg_degree: 12.0 }.generate(11);
        let avg = m.nnz() as f64 / m.nrows() as f64;
        assert!((avg - 12.0).abs() < 4.0, "expected avg degree near 12, got {avg}");
    }

    #[test]
    fn deterministic() {
        let a = RggParams { n: 500, avg_degree: 6.0 }.generate(5);
        let b = RggParams { n: 500, avg_degree: 6.0 }.generate(5);
        assert_eq!(a, b);
    }

    /// Cell-order labeling must concentrate nonzeros near the diagonal:
    /// mean |row-col| far below the ~n/3 expected for random labeling.
    #[test]
    fn labeling_gives_locality() {
        let n = 4000;
        let m = RggParams { n, avg_degree: 8.0 }.generate(17);
        let mut total = 0.0;
        for r in 0..m.nrows() {
            for (c, _) in m.row(r) {
                total += (r as f64 - c as f64).abs();
            }
        }
        let mean = total / m.nnz() as f64;
        assert!(mean < n as f64 / 6.0, "mean |r-c| = {mean}");
    }

    #[test]
    fn no_self_loops() {
        let m = RggParams { n: 1000, avg_degree: 8.0 }.generate(23);
        for r in 0..m.nrows() {
            assert!(!m.row_cols(r).contains(&(r as u32)));
        }
    }
}
