//! Matrix generators for the WISE reproduction.
//!
//! The paper's training corpus (Section 4.5) combines:
//!
//! * **RMAT** graphs ([`rmat`]) with the quadrant probabilities of
//!   Table 3 — three skew levels (HS/MS/LS) and three locality levels
//!   (LL/ML/HL);
//! * **RGG** random geometric graphs ([`rgg`]) for spatially structured
//!   matrices;
//! * **SuiteSparse** matrices. Downloading SuiteSparse is a data gate in
//!   this environment, so [`suite`] synthesizes matrices matching the
//!   statistical profile the paper measures for SuiteSparse (Figs. 7 and
//!   12b): p-ratio mostly > 0.4, small average row degree, few columns —
//!   banded systems, 2D/3D stencils, FEM-like meshes, road-like graphs,
//!   plus a handful of power-law graphs (the paper notes SuiteSparse
//!   "also has some social and web network graphs").
//!
//! [`recipe`] names the Table 3 parameter sets and assembles full
//! corpora at a configurable scale. All generation is seeded and
//! deterministic.

pub mod recipe;
pub mod rgg;
pub mod rmat;
pub mod suite;

pub use recipe::{Corpus, CorpusScale, LabeledMatrix, Recipe};
pub use rgg::RggParams;
pub use rmat::RmatParams;
