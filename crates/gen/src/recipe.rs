//! Named generator recipes (paper Table 3) and corpus assembly
//! (Section 4.5 / Section 5).
//!
//! The paper trains on 136 SuiteSparse + 1326 RMAT/RGG matrices with
//! 2^20–2^26 rows. [`CorpusScale`] makes the sweep dimensions explicit
//! so the same code runs at laptop scale (`quick`, the default
//! everywhere) or at paper scale (`paper`) on a machine that can hold
//! 2-billion-nonzero matrices.

use crate::rmat::RmatParams;
use crate::{rgg::RggParams, suite};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use wise_matrix::Csr;

/// One row of the paper's Table 3: a named random-matrix recipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Recipe {
    /// RMAT a=.57 b=.19 c=.19 d=.05 (Graph500; p-ratio ~0.1).
    HighSkew,
    /// RMAT a=.46 b=.22 c=.22 d=.10 (p-ratio ~0.2).
    MedSkew,
    /// RMAT a=.35 b=.25 c=.25 d=.15 (p-ratio ~0.3).
    LowSkew,
    /// RMAT a=b=c=d=.25 (Erdos-Renyi-like; nonzeros spread everywhere).
    LowLoc,
    /// RMAT a=d=.35 b=c=.15 (diagonal-leaning).
    MedLoc,
    /// RMAT a=d=.45 b=c=.05 (strongly diagonal).
    HighLoc,
    /// Random geometric graph (spatial structure, high locality).
    Rgg,
}

impl Recipe {
    /// All Table 3 recipes, in the paper's order.
    pub const ALL: [Recipe; 7] = [
        Recipe::HighSkew,
        Recipe::MedSkew,
        Recipe::LowSkew,
        Recipe::LowLoc,
        Recipe::MedLoc,
        Recipe::HighLoc,
        Recipe::Rgg,
    ];

    /// The paper's abbreviation (HS, MS, LS, LL, ML, HL, rgg).
    pub fn abbrev(&self) -> &'static str {
        match self {
            Recipe::HighSkew => "HS",
            Recipe::MedSkew => "MS",
            Recipe::LowSkew => "LS",
            Recipe::LowLoc => "LL",
            Recipe::MedLoc => "ML",
            Recipe::HighLoc => "HL",
            Recipe::Rgg => "rgg",
        }
    }

    /// RMAT quadrant probabilities, or `None` for RGG.
    pub fn rmat_params(&self) -> Option<RmatParams> {
        match self {
            Recipe::HighSkew => Some(RmatParams::HIGH_SKEW),
            Recipe::MedSkew => Some(RmatParams::MED_SKEW),
            Recipe::LowSkew => Some(RmatParams::LOW_SKEW),
            Recipe::LowLoc => Some(RmatParams::LOW_LOC),
            Recipe::MedLoc => Some(RmatParams::MED_LOC),
            Recipe::HighLoc => Some(RmatParams::HIGH_LOC),
            Recipe::Rgg => None,
        }
    }

    /// Generates one matrix: `2^scale` rows, ~`avg_degree` nonzeros/row.
    ///
    /// The skew recipes (HS/MS/LS) apply Graph500-style random vertex
    /// relabeling — real web/social graphs have their hubs scattered
    /// across the ID space, and that scattering is what CFS/RFS exist
    /// to undo. The locality recipes (LL/ML/HL) keep raw RMAT labels:
    /// the diagonal concentration *is* the property being modeled.
    pub fn generate(&self, scale: u32, avg_degree: u32, seed: u64) -> Csr {
        match self {
            Recipe::HighSkew | Recipe::MedSkew | Recipe::LowSkew => self
                .rmat_params()
                .expect("skew recipes are RMAT")
                .generate_shuffled(scale, avg_degree, seed),
            Recipe::LowLoc | Recipe::MedLoc | Recipe::HighLoc => self
                .rmat_params()
                .expect("locality recipes are RMAT")
                .generate(scale, avg_degree, seed),
            Recipe::Rgg => {
                RggParams { n: 1usize << scale, avg_degree: avg_degree as f64 }.generate(seed)
            }
        }
    }
}

/// Where a corpus matrix came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatrixGroup {
    /// SuiteSparse stand-in (synthetic scientific suite).
    Suite,
    /// Randomly generated per a Table 3 recipe.
    Random(Recipe),
}

/// A corpus matrix with provenance.
#[derive(Debug, Clone)]
pub struct LabeledMatrix {
    /// Unique human-readable id, e.g. `HS_s14_d32` or `stencil2d_128`.
    pub name: String,
    pub group: MatrixGroup,
    pub matrix: Csr,
}

/// Sweep dimensions for corpus generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusScale {
    /// log2 of row counts to sweep (paper: 20..=26).
    pub row_scales: Vec<u32>,
    /// Average nonzeros per row to sweep (paper: 4..=128).
    pub degrees: Vec<u32>,
    /// Skip configurations whose projected nnz exceeds this
    /// (paper: 2 billion, bounded by server memory).
    pub max_nnz: usize,
}

impl CorpusScale {
    /// Laptop-scale default: 2^12–2^16 rows, nnz capped at 2^21 so the
    /// full corpus labels in minutes on one core.
    pub fn quick() -> Self {
        CorpusScale {
            row_scales: vec![12, 13, 14, 15, 16],
            degrees: vec![4, 8, 16, 32, 64, 128],
            max_nnz: 1 << 21,
        }
    }

    /// Tiny scale for unit/integration tests.
    pub fn tiny() -> Self {
        CorpusScale { row_scales: vec![8, 9, 10], degrees: vec![4, 16], max_nnz: 1 << 16 }
    }

    /// The paper's scale (needs a large-memory server).
    pub fn paper() -> Self {
        CorpusScale {
            row_scales: (20..=26).collect(),
            degrees: vec![4, 8, 16, 24, 32, 48, 64, 80, 96, 112, 128],
            max_nnz: 2_000_000_000,
        }
    }
}

/// The full matrix corpus: SuiteSparse stand-ins + Table 3 randoms.
#[derive(Debug, Clone)]
pub struct Corpus {
    pub matrices: Vec<LabeledMatrix>,
}

impl Corpus {
    /// Generates the random (RMAT/RGG) part of the corpus: every
    /// `recipe x scale x degree` combination within the nnz budget.
    /// Generation is parallel across matrices and fully deterministic:
    /// each configuration derives its seed from `base_seed` and its own
    /// coordinates, independent of sweep order.
    pub fn random(scale: &CorpusScale, base_seed: u64) -> Corpus {
        let _span = wise_trace::span("gen.corpus.random");
        let mut configs = Vec::new();
        for (ri, &recipe) in Recipe::ALL.iter().enumerate() {
            for &s in &scale.row_scales {
                for &d in &scale.degrees {
                    let projected = (1usize << s).saturating_mul(d as usize);
                    if projected > scale.max_nnz {
                        continue;
                    }
                    let seed = base_seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add((ri as u64) << 32)
                        .wrapping_add((s as u64) << 16)
                        .wrapping_add(d as u64);
                    configs.push((recipe, s, d, seed));
                }
            }
        }
        let matrices = configs
            .into_par_iter()
            .map(|(recipe, s, d, seed)| LabeledMatrix {
                name: format!("{}_s{}_d{}", recipe.abbrev(), s, d),
                group: MatrixGroup::Random(recipe),
                matrix: recipe.generate(s, d, seed),
            })
            .collect();
        Corpus { matrices }
    }

    /// Generates the SuiteSparse stand-in part of the corpus. Family
    /// sizes are derived from the sweep's row-scale range so quick and
    /// paper scales produce proportionate matrices.
    pub fn suite(scale: &CorpusScale, base_seed: u64) -> Corpus {
        let _span = wise_trace::span("gen.corpus.suite");
        let lo = *scale.row_scales.iter().min().expect("empty row_scales");
        let hi = *scale.row_scales.iter().max().expect("empty row_scales");
        let mid = (lo + hi) / 2;
        let budget = scale.max_nnz;

        // (name, thunk) pairs; thunks run in parallel below.
        type Thunk = Box<dyn Fn() -> Csr + Send + Sync>;
        let mut fams: Vec<(String, Thunk)> = Vec::new();

        // Banded systems.
        for (i, &s) in [lo, mid, hi].iter().enumerate() {
            for (j, &bw) in [4usize, 16, 64].iter().enumerate() {
                for (k, fill) in [0.4f64, 0.9].iter().enumerate() {
                    let n = 1usize << s;
                    if n * (2 * bw + 1) * 9 / 10 > budget {
                        continue;
                    }
                    let fill = *fill;
                    let seed = base_seed + (i * 100 + j * 10 + k) as u64;
                    fams.push((
                        format!("banded_s{}_bw{}_f{}", s, bw, (fill * 10.0) as u32),
                        Box::new(move || suite::banded(n, bw, fill, seed)),
                    ));
                }
            }
        }
        // 2D stencils: side ~ 2^(s/2) so n ~ 2^s. Integer division can
        // collapse adjacent scales to the same side, so dedupe.
        let mut sides2d: Vec<usize> =
            [lo, mid, hi].iter().map(|&s| ((1usize << s) as f64).sqrt().round() as usize).collect();
        sides2d.dedup();
        for side in sides2d {
            if side * side * 5 > budget {
                continue;
            }
            fams.push((
                format!("stencil2d_{side}"),
                Box::new(move || suite::stencil_2d(side, side)),
            ));
        }
        // 3D stencils: side ~ 2^(s/3).
        let mut sides3d: Vec<usize> =
            [lo, mid, hi].iter().map(|&s| ((1usize << s) as f64).cbrt().round() as usize).collect();
        sides3d.dedup();
        for side in sides3d {
            if side.pow(3) * 7 > budget {
                continue;
            }
            fams.push((
                format!("stencil3d_{side}"),
                Box::new(move || suite::stencil_3d(side, side, side)),
            ));
        }
        // FEM-like meshes.
        for (i, &s) in [lo, mid, hi].iter().enumerate() {
            for (j, &deg) in [8u32, 16, 24].iter().enumerate() {
                let n = 1usize << s;
                if n * deg as usize > budget {
                    continue;
                }
                let seed = base_seed + 1000 + (i * 10 + j) as u64;
                fams.push((
                    format!("fem_s{s}_d{deg}"),
                    Box::new(move || suite::fem_like(n, deg as f64, seed)),
                ));
            }
        }
        // Road networks.
        for (i, &s) in [mid, hi].iter().enumerate() {
            let n = 1usize << s;
            if n * 4 > budget {
                continue;
            }
            let seed = base_seed + 2000 + i as u64;
            fams.push((format!("road_s{s}"), Box::new(move || suite::road_like(n, seed))));
        }
        // The minority power-law class.
        for (i, &s) in [lo, mid].iter().enumerate() {
            for (j, &deg) in [8u32, 32].iter().enumerate() {
                if (1usize << s) * deg as usize > budget {
                    continue;
                }
                let seed = base_seed + 3000 + (i * 10 + j) as u64;
                fams.push((
                    format!("weblike_s{s}_d{deg}"),
                    Box::new(move || suite::power_law(s, deg, seed)),
                ));
            }
        }
        // Uniform randoms for variety.
        for (i, &s) in [lo, mid].iter().enumerate() {
            let deg = 8u32;
            if (1usize << s) * deg as usize > budget {
                continue;
            }
            let seed = base_seed + 4000 + i as u64;
            fams.push((
                format!("uniform_s{s}_d{deg}"),
                Box::new(move || suite::uniform_random(s, deg, seed)),
            ));
        }

        let matrices = fams
            .into_par_iter()
            .map(|(name, thunk)| LabeledMatrix { name, group: MatrixGroup::Suite, matrix: thunk() })
            .collect();
        Corpus { matrices }
    }

    /// The combined corpus (suite + random), as used for training.
    pub fn full(scale: &CorpusScale, base_seed: u64) -> Corpus {
        let mut c = Corpus::suite(scale, base_seed);
        c.matrices.extend(Corpus::random(scale, base_seed).matrices);
        c
    }

    pub fn len(&self) -> usize {
        self.matrices.len()
    }

    pub fn is_empty(&self) -> bool {
        self.matrices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recipes_roundtrip_abbrev() {
        let abbrevs: Vec<_> = Recipe::ALL.iter().map(|r| r.abbrev()).collect();
        assert_eq!(abbrevs, vec!["HS", "MS", "LS", "LL", "ML", "HL", "rgg"]);
    }

    #[test]
    fn tiny_random_corpus_shape() {
        let scale = CorpusScale::tiny();
        let c = Corpus::random(&scale, 42);
        // 7 recipes x 3 scales x 2 degrees, minus nnz-capped combos.
        assert!(!c.is_empty());
        assert!(c.len() <= 7 * 3 * 2);
        for m in &c.matrices {
            assert!(m.matrix.nnz() <= scale.max_nnz);
            assert!(matches!(m.group, MatrixGroup::Random(_)));
        }
        // Names unique.
        let mut names: Vec<_> = c.matrices.iter().map(|m| m.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), c.len());
    }

    #[test]
    fn corpus_deterministic() {
        let scale = CorpusScale::tiny();
        let a = Corpus::random(&scale, 1);
        let b = Corpus::random(&scale, 1);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.matrices.iter().zip(&b.matrices) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.matrix, y.matrix);
        }
    }

    #[test]
    fn suite_corpus_nonempty_and_unique() {
        let scale = CorpusScale::tiny();
        let c = Corpus::suite(&scale, 7);
        assert!(c.len() >= 10, "suite corpus too small: {}", c.len());
        let mut names: Vec<_> = c.matrices.iter().map(|m| m.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), c.len());
        for m in &c.matrices {
            assert_eq!(m.group, MatrixGroup::Suite);
        }
    }

    #[test]
    fn full_is_union() {
        let scale = CorpusScale::tiny();
        let s = Corpus::suite(&scale, 3).len();
        let r = Corpus::random(&scale, 3).len();
        assert_eq!(Corpus::full(&scale, 3).len(), s + r);
    }
}
