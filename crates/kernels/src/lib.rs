#![cfg_attr(wise_portable_simd, feature(portable_simd))]
//! SpMV kernels for the WISE reproduction.
//!
//! This crate implements the full SpMV optimization space of the paper
//! (Section 2 and Table 1):
//!
//! * [`sched`] — the three row-scheduling policies (Dyn, St, StCont) and
//!   the executors that realize them (persistent pool by default, scoped
//!   spawn threads as the parity oracle / `WISE_POOL=0` escape hatch);
//! * [`pool`] — the lazily-initialized, process-wide persistent worker
//!   pool: parked threads woken via an epoch-sequenced condvar handoff,
//!   so repeated SpMV calls pay a microsecond-scale dispatch instead of
//!   per-call OS thread creation (see DESIGN.md §12);
//! * [`csr_spmv`] — parallel CSR SpMV under any scheduling policy;
//! * [`srvpack`] — the unified Segmented Reordered Vector Packing format
//!   (Appendix A) and its vectorized kernel, plus builders for
//!   SELLPACK, Sell-c-σ, Sell-c-R, LAV-1Seg and LAV;
//! * [`method`] — the `{method, parameter}` catalog (29 configurations,
//!   Section 4.3) and a uniform `prepare`/`spmv` interface over it;
//! * [`baseline`] — the MKL-like fixed-schedule baseline and the trial-
//!   executing inspector-executor (substitutes for Intel MKL and MKL IE;
//!   see DESIGN.md for the substitution argument);
//! * [`merge_csr`] — a merge-path load-balanced CSR kernel, the worked
//!   example for extending WISE beyond the paper's 29 configurations;
//! * [`simd`] — the runtime CPU capability probe (SSE2/AVX2/AVX-512, a
//!   portable multi-accumulator level elsewhere) and the explicitly
//!   vectorized CSR-row and SELL-chunk kernels it dispatches — with
//!   software-prefetched gathers (`WISE_PREFETCH`), row-block/chunk-pair
//!   interleaving, and AVX-512 masked tails (DESIGN.md §17) — plus the
//!   ulp-tolerance contract that replaces bit-exactness for reassociated
//!   sums (`WISE_SIMD=0` opts back into the bit-exact scalar paths; see
//!   DESIGN.md §14). Building with `--cfg wise_portable_simd` (nightly)
//!   swaps the portable level's plain-Rust loops for `std::simd`;
//! * [`timing`] — robust wall-clock measurement helpers reporting the
//!   full sample spread ([`timing::Samples`]).
//!
//! Format conversion and every `Prepared::spmv` call are traced via
//! [`wise_trace`] spans (`kernel.convert`, `kernel.spmv`, plus a nested
//! `kernel.spmv.simd` span and a `kernel.simd.lanes` counter when a
//! vector path is active) with nnz/bytes-moved counters; with
//! `WISE_TRACE` unset the instrumentation costs one relaxed atomic load
//! per call.
//!
//! Every kernel computes exactly `y = A x` and is tested against
//! [`wise_matrix::Csr::spmv_reference`] (bit-exact for scalar paths,
//! ulp-bounded for vector ones).

pub mod baseline;
pub mod csr_spmv;
pub mod merge_csr;
pub mod method;
pub mod pool;
pub mod sched;
pub mod simd;
pub mod srvpack;
pub mod timing;

pub use method::{Method, MethodConfig, Prepared};
pub use pool::WorkerPool;
pub use sched::{Executor, Schedule};
pub use simd::SimdIsa;
pub use srvpack::SrvPack;
