//! Stand-ins for the two Intel MKL comparison points of the paper.
//!
//! * [`mkl_like_config`] — the *MKL baseline* of Sections 3/6.3: a CSR
//!   SpMV with a fixed vendor-default schedule that does not adapt to
//!   the matrix. Figure 3 of the paper shows MKL tracking (and slightly
//!   trailing) the best CSR schedule, which is exactly the behaviour of
//!   a fixed-policy kernel.
//! * [`InspectorExecutor`] — the *MKL inspector-executor* of Section
//!   6.4: it trial-executes every candidate configuration on the actual
//!   matrix and keeps the fastest. This is the canonical IE design and
//!   reproduces the two measured properties the paper reports: near-
//!   oracle selection quality and a preprocessing cost far above
//!   WISE's (the paper measures 17.43 vs 8.33 baseline iterations).

use crate::method::{MethodConfig, Prepared};
use crate::sched::Schedule;
use crate::srvpack::SpmvWorkspace;
use crate::timing::{measure_median, measure_once};
use std::time::Duration;
use wise_matrix::Csr;

/// The fixed configuration standing in for the MKL CSR baseline:
/// static scheduling, default chunking.
pub fn mkl_like_config() -> MethodConfig {
    MethodConfig::csr(Schedule::St)
}

/// Result of an inspector-executor run.
#[derive(Debug)]
pub struct InspectorReport {
    /// The winning configuration.
    pub choice: MethodConfig,
    /// Trial execution time of every candidate, in catalog order.
    pub trials: Vec<(MethodConfig, Duration)>,
    /// Total preprocessing spent: every format conversion plus every
    /// trial execution.
    pub preprocessing: Duration,
}

/// A trial-executing inspector-executor over a candidate set.
pub struct InspectorExecutor {
    candidates: Vec<MethodConfig>,
    /// Timed trial iterations per candidate (median taken).
    pub trial_iters: usize,
}

impl Default for InspectorExecutor {
    fn default() -> Self {
        InspectorExecutor { candidates: MethodConfig::catalog(), trial_iters: 1 }
    }
}

impl InspectorExecutor {
    pub fn with_candidates(candidates: Vec<MethodConfig>) -> Self {
        InspectorExecutor { candidates, trial_iters: 1 }
    }

    /// Inspects `m`: converts to every candidate format, times a trial
    /// SpMV of each, and returns the fastest prepared kernel plus a
    /// report of everything it cost to find out.
    pub fn inspect<'m>(
        &self,
        m: &'m Csr,
        x: &[f64],
        nthreads: usize,
    ) -> (Prepared<'m>, InspectorReport) {
        assert!(!self.candidates.is_empty(), "inspector needs at least one candidate");
        let mut y = vec![0.0; m.nrows()];
        let mut ws = SpmvWorkspace::default();
        let mut best: Option<(usize, Duration)> = None;
        let mut trials = Vec::with_capacity(self.candidates.len());
        let mut preprocessing = Duration::ZERO;
        for (i, cfg) in self.candidates.iter().enumerate() {
            let (prep, conv_time) = measure_once(|| cfg.prepare(m));
            let samples =
                measure_median(|| prep.spmv(x, &mut y, nthreads, &mut ws), 0, self.trial_iters);
            let trial = samples.median;
            // Charge what the trials actually cost (summed durations),
            // not `median × iters` — with skewed samples the median
            // misstates the real amortization bill.
            preprocessing += conv_time + samples.total;
            trials.push((*cfg, trial));
            if best.is_none_or(|(_, t)| trial < t) {
                best = Some((i, trial));
            }
        }
        let (best_idx, _) = best.expect("non-empty candidates");
        let choice = self.candidates[best_idx];
        // Re-prepare the winner (the trial Prepared values were dropped
        // as we went to bound peak memory, like a real IE would).
        let prep = choice.prepare(m);
        (prep, InspectorReport { choice, trials, preprocessing })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use wise_gen::RmatParams;

    #[test]
    fn mkl_like_is_fixed_csr() {
        let cfg = mkl_like_config();
        assert_eq!(cfg.method, crate::method::Method::Csr);
        assert_eq!(cfg.schedule, Schedule::St);
    }

    #[test]
    fn inspector_picks_a_candidate_and_computes_correctly() {
        let m = RmatParams::HIGH_SKEW.generate(8, 8, 13);
        let mut rng = StdRng::seed_from_u64(3);
        let x: Vec<f64> = (0..m.ncols()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let candidates = vec![
            MethodConfig::csr(Schedule::Dyn),
            MethodConfig::sellpack(8, Schedule::Dyn),
            MethodConfig::lav(8, 0.8),
        ];
        let ie = InspectorExecutor::with_candidates(candidates.clone());
        let (prep, report) = ie.inspect(&m, &x, 1);
        assert!(candidates.iter().any(|c| c.label() == report.choice.label()));
        assert_eq!(report.trials.len(), 3);
        assert!(report.preprocessing > Duration::ZERO);
        // The returned kernel computes y = Ax.
        let mut want = vec![0.0; m.nrows()];
        m.spmv_reference(&x, &mut want);
        let mut got = vec![0.0; m.nrows()];
        prep.spmv(&x, &mut got, 1, &mut SpmvWorkspace::default());
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9 * (1.0 + w.abs()));
        }
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn inspector_rejects_empty_candidates() {
        let m = Csr::identity(4);
        let x = vec![1.0; 4];
        InspectorExecutor::with_candidates(vec![]).inspect(&m, &x, 1);
    }
}
