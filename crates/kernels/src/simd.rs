//! Runtime-dispatched SIMD kernels for the SpMV inner loops.
//!
//! The capability probe ([`detect_raw`]) classifies the host into one
//! of four [`SimdIsa`] levels at startup; kernels then dispatch through
//! `#[target_feature]` functions so a single binary runs the widest
//! safe path everywhere (scalar fallback on non-x86_64). Two kernel
//! families are vectorized:
//!
//! * **CSR rows** ([`csr_row`]): 4-/8-wide gather–multiply–accumulate
//!   with a horizontal reduction and a scalar tail for the `nnz % lanes`
//!   residue. The SSE2 level has no gather instruction, so it emulates
//!   one with paired scalar loads (still wins on the FMA-free add/mul
//!   pipe for long rows).
//! * **SELL/SRVPack chunks** ([`sell_chunk`]): the column-major padded
//!   chunk layout was built for this — the chunk's `c` rows map 1:1
//!   onto vector lanes, every step is one gather + one FMA, and no
//!   horizontal reduction is needed at all.
//!
//! Vectorization reassociates the per-row sums (pairwise/strided
//! instead of strictly left-to-right), so bit-exactness with the scalar
//! oracles is forfeited by design. The replacement contract is
//! ulp-tolerance: [`assert_ulp_close`] with a per-kernel bound
//! ([`SPMV_MAX_ULPS`], plus [`SPMV_ABS_FLOOR`] for catastrophic-
//! cancellation results near zero, where relative ulp distance is
//! meaningless). Setting `WISE_SIMD=0` (or preparing a config with
//! explicit width 1) restores the original scalar path bit-exactly.
//!
//! All gathers index with *signed 32-bit* lanes, so [`resolve`] falls
//! back to scalar when the x vector could exceed `i32::MAX` entries.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// A SIMD capability level, ordered narrowest to widest.
///
/// `Avx512` is only ever detected/activated when AVX2 and FMA are also
/// present (true on every shipping AVX-512 part), so a kernel running
/// at one level may safely call helpers of any lower level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdIsa {
    /// No explicit vectorization: the original scalar kernels.
    Scalar,
    /// 2 × f64 lanes, no hardware gather (emulated with scalar loads).
    Sse2,
    /// 4 × f64 lanes, `vgatherdpd` + FMA.
    Avx2,
    /// 8 × f64 lanes, `vgatherdpd` + FMA + full-width reduce.
    Avx512,
}

impl SimdIsa {
    /// f64 lanes per vector register at this level.
    pub const fn lanes(self) -> usize {
        match self {
            SimdIsa::Scalar => 1,
            SimdIsa::Sse2 => 2,
            SimdIsa::Avx2 => 4,
            SimdIsa::Avx512 => 8,
        }
    }

    /// Stable lowercase name (used in fingerprints and reports).
    pub const fn name(self) -> &'static str {
        match self {
            SimdIsa::Scalar => "scalar",
            SimdIsa::Sse2 => "sse2",
            SimdIsa::Avx2 => "avx2",
            SimdIsa::Avx512 => "avx512f",
        }
    }

    /// The widest level whose lane count is `<= lanes` (0 clamps to
    /// scalar). Inverse of [`SimdIsa::lanes`] for the valid widths.
    pub const fn widest_for_lanes(lanes: usize) -> SimdIsa {
        match lanes {
            0 | 1 => SimdIsa::Scalar,
            2 | 3 => SimdIsa::Sse2,
            4..=7 => SimdIsa::Avx2,
            _ => SimdIsa::Avx512,
        }
    }

    const fn to_u8(self) -> u8 {
        match self {
            SimdIsa::Scalar => 0,
            SimdIsa::Sse2 => 1,
            SimdIsa::Avx2 => 2,
            SimdIsa::Avx512 => 3,
        }
    }

    const fn from_u8(v: u8) -> SimdIsa {
        match v {
            1 => SimdIsa::Sse2,
            2 => SimdIsa::Avx2,
            3 => SimdIsa::Avx512,
            _ => SimdIsa::Scalar,
        }
    }
}

/// Probes the host CPU. On x86_64 this is `is_x86_feature_detected!`
/// (cached by std after the first cpuid); elsewhere always `Scalar`.
///
/// The `Avx512` level additionally requires AVX2 + FMA so higher levels
/// strictly superset lower ones (see [`SimdIsa`]).
pub fn detect_raw() -> SimdIsa {
    #[cfg(target_arch = "x86_64")]
    {
        let avx2 = is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma");
        if avx2 && is_x86_feature_detected!("avx512f") {
            SimdIsa::Avx512
        } else if avx2 {
            SimdIsa::Avx2
        } else if is_x86_feature_detected!("sse2") {
            SimdIsa::Sse2
        } else {
            SimdIsa::Scalar
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdIsa::Scalar
    }
}

/// [`detect_raw`] memoized (one atomic load after the first call).
pub fn detected() -> SimdIsa {
    static DETECTED: OnceLock<SimdIsa> = OnceLock::new();
    *DETECTED.get_or_init(detect_raw)
}

/// Why a `WISE_SIMD` value was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimdEnvError {
    /// Set but empty (or only whitespace).
    Empty,
    /// Not a recognized width or ISA name.
    NotAWidth(String),
}

impl std::fmt::Display for SimdEnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimdEnvError::Empty => write!(f, "WISE_SIMD is set but empty"),
            SimdEnvError::NotAWidth(s) => write!(
                f,
                "WISE_SIMD={s:?} is not a SIMD width (expected 0/off/scalar/1, 2/sse2, \
                 4/avx2, or 8/avx512)"
            ),
        }
    }
}

/// Parses a raw `WISE_SIMD` value into a capability *cap*. `Ok(None)`
/// means unset (auto-detect); `0`, `off`, `scalar`, and `1` all force
/// the scalar path.
pub fn parse_wise_simd(raw: Option<&str>) -> Result<Option<SimdIsa>, SimdEnvError> {
    let Some(raw) = raw else { return Ok(None) };
    let t = raw.trim();
    if t.is_empty() {
        return Err(SimdEnvError::Empty);
    }
    match t.to_ascii_lowercase().as_str() {
        "0" | "off" | "scalar" | "1" => Ok(Some(SimdIsa::Scalar)),
        "2" | "sse2" => Ok(Some(SimdIsa::Sse2)),
        "4" | "avx2" => Ok(Some(SimdIsa::Avx2)),
        "8" | "avx512" | "avx512f" => Ok(Some(SimdIsa::Avx512)),
        _ => Err(SimdEnvError::NotAWidth(t.to_string())),
    }
}

const ISA_UNINIT: u8 = u8::MAX;
static ACTIVE: AtomicU8 = AtomicU8::new(ISA_UNINIT);

/// The process-wide active SIMD level: `min(detected, WISE_SIMD cap)`,
/// resolved lazily on first use and cached. A malformed `WISE_SIMD`
/// falls back to auto-detect *loudly*: a once-per-process stderr
/// warning plus a `kernel.simd_env_invalid` trace counter — never a
/// silent behavior change.
pub fn active() -> SimdIsa {
    match ACTIVE.load(Ordering::Relaxed) {
        ISA_UNINIT => {
            let isa = active_from_env();
            ACTIVE.store(isa.to_u8(), Ordering::Relaxed);
            isa
        }
        v => SimdIsa::from_u8(v),
    }
}

fn active_from_env() -> SimdIsa {
    let det = detected();
    match parse_wise_simd(std::env::var("WISE_SIMD").ok().as_deref()) {
        Ok(Some(cap)) => cap.min(det),
        Ok(None) => det,
        Err(err) => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!("[wise-kernels] {err}; using the detected level ({})", det.name());
            });
            wise_trace::counter("kernel.simd_env_invalid", 1);
            det
        }
    }
}

/// Overrides the active level (tests, experiments). The request is
/// capped at [`detected`] so an unsupported level can never be forced
/// into the dispatchers.
pub fn set_active(isa: SimdIsa) {
    ACTIVE.store(isa.min(detected()).to_u8(), Ordering::Relaxed);
}

/// Resolves a catalog SIMD width `v` against the active level for a
/// matrix with `ncols` columns: `0` = auto (widest active), `1` =
/// forced scalar, otherwise the widest level with at most `v` lanes,
/// capped by [`active`]. Falls back to scalar when column indices
/// would not fit the signed 32-bit gather lanes.
pub fn resolve(v: usize, ncols: usize) -> SimdIsa {
    if v == 1 || ncols > i32::MAX as usize {
        return SimdIsa::Scalar;
    }
    let cap = active();
    if v == 0 {
        cap
    } else {
        SimdIsa::widest_for_lanes(v).min(cap)
    }
}

// ---------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------

/// One CSR row: `dot(vals, x[cols])` at the given level.
///
/// # Safety
///
/// `vals.len() == cols.len()` and every `cols[k] as usize <
/// x.len()` — the `Csr::try_new` invariants. The level is clamped to
/// [`detected`] internally, so an over-wide `isa` cannot execute
/// unsupported instructions.
pub unsafe fn csr_row(isa: SimdIsa, vals: &[f64], cols: &[u32], x: &[f64]) -> f64 {
    debug_assert_eq!(vals.len(), cols.len());
    #[cfg(target_arch = "x86_64")]
    match isa.min(detected()) {
        SimdIsa::Avx512 => return x86::csr_row_avx512(vals, cols, x),
        SimdIsa::Avx2 => return x86::csr_row_avx2(vals, cols, x),
        SimdIsa::Sse2 => return x86::csr_row_sse2(vals, cols, x),
        SimdIsa::Scalar => {}
    }
    let _ = isa;
    csr_row_scalar(vals, cols, x)
}

/// One SELL/SRVPack chunk: accumulates `width` column-major steps of
/// `c` lanes into `acc` (the chunk's per-row partial sums). Vector
/// paths exist for `c ∈ {4, 8}`; other widths run the scalar loop.
///
/// # Safety
///
/// `vals.len() == cols.len()`, both a multiple of `c`, `acc.len() ==
/// c`, and every `cols[k] as usize < x.len()` (padding entries store
/// column 0 with value 0.0 — the `SrvPack` build invariant). The level
/// is clamped to [`detected`] internally.
pub unsafe fn sell_chunk(
    isa: SimdIsa,
    vals: &[f64],
    cols: &[u32],
    c: usize,
    x: &[f64],
    acc: &mut [f64],
) {
    debug_assert_eq!(vals.len(), cols.len());
    debug_assert!(vals.len() % c.max(1) == 0 && acc.len() == c);
    #[cfg(target_arch = "x86_64")]
    match (isa.min(detected()), c) {
        (SimdIsa::Avx512, 8) => return x86::sell_chunk_avx512(vals, cols, x, acc),
        (SimdIsa::Avx512 | SimdIsa::Avx2, 4 | 8) => {
            return x86::sell_chunk_avx2(vals, cols, c, x, acc)
        }
        (SimdIsa::Sse2, _) if c % 2 == 0 => return x86::sell_chunk_sse2(vals, cols, c, x, acc),
        _ => {}
    }
    let _ = isa;
    sell_chunk_scalar(vals, cols, c, x, acc);
}

/// Scalar CSR row oracle (strict left-to-right accumulation), shared by
/// the dispatcher fallback and the parity tests.
///
/// Bounds are checked — the hot scalar path stays in `CsrSpmv::spmv`,
/// which keeps its original unchecked loop bit-for-bit.
pub fn csr_row_scalar(vals: &[f64], cols: &[u32], x: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    for (v, &ci) in vals.iter().zip(cols) {
        acc += v * x[ci as usize];
    }
    acc
}

/// Scalar SELL chunk oracle: per-lane strict accumulation order,
/// identical to `SrvPack`'s scalar chunk kernels.
pub fn sell_chunk_scalar(vals: &[f64], cols: &[u32], c: usize, x: &[f64], acc: &mut [f64]) {
    for (vrow, crow) in vals.chunks_exact(c).zip(cols.chunks_exact(c)) {
        for l in 0..c {
            acc[l] += vrow[l] * x[crow[l] as usize];
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! `#[target_feature]` kernel bodies. Callers must guarantee the
    //! feature is present (the public dispatchers clamp to `detected`)
    //! and the slice/index invariants documented on them.
    use std::arch::x86_64::*;

    #[target_feature(enable = "sse2")]
    pub unsafe fn csr_row_sse2(vals: &[f64], cols: &[u32], x: &[f64]) -> f64 {
        let n = vals.len();
        let mut acc = _mm_setzero_pd();
        let mut k = 0usize;
        while k + 2 <= n {
            // No gather below AVX2: emulate with two scalar loads.
            let xv = _mm_set_pd(
                *x.get_unchecked(*cols.get_unchecked(k + 1) as usize),
                *x.get_unchecked(*cols.get_unchecked(k) as usize),
            );
            let vv = _mm_loadu_pd(vals.as_ptr().add(k));
            acc = _mm_add_pd(acc, _mm_mul_pd(vv, xv));
            k += 2;
        }
        let mut sum = _mm_cvtsd_f64(acc) + _mm_cvtsd_f64(_mm_unpackhi_pd(acc, acc));
        while k < n {
            sum += *vals.get_unchecked(k) * *x.get_unchecked(*cols.get_unchecked(k) as usize);
            k += 1;
        }
        sum
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn csr_row_avx2(vals: &[f64], cols: &[u32], x: &[f64]) -> f64 {
        let n = vals.len();
        let mut acc = _mm256_setzero_pd();
        let mut k = 0usize;
        while k + 4 <= n {
            let idx = _mm_loadu_si128(cols.as_ptr().add(k) as *const __m128i);
            let xv = _mm256_i32gather_pd::<8>(x.as_ptr(), idx);
            let vv = _mm256_loadu_pd(vals.as_ptr().add(k));
            acc = _mm256_fmadd_pd(vv, xv, acc);
            k += 4;
        }
        let lo = _mm256_castpd256_pd128(acc);
        let hi = _mm256_extractf128_pd::<1>(acc);
        let pair = _mm_add_pd(lo, hi);
        let mut sum = _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
        while k < n {
            sum += *vals.get_unchecked(k) * *x.get_unchecked(*cols.get_unchecked(k) as usize);
            k += 1;
        }
        sum
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn csr_row_avx512(vals: &[f64], cols: &[u32], x: &[f64]) -> f64 {
        let n = vals.len();
        let mut acc = _mm512_setzero_pd();
        let mut k = 0usize;
        while k + 8 <= n {
            let idx = _mm256_loadu_si256(cols.as_ptr().add(k) as *const __m256i);
            let xv = _mm512_i32gather_pd::<8>(idx, x.as_ptr());
            let vv = _mm512_loadu_pd(vals.as_ptr().add(k));
            acc = _mm512_fmadd_pd(vv, xv, acc);
            k += 8;
        }
        let mut sum = _mm512_reduce_add_pd(acc);
        while k < n {
            sum += *vals.get_unchecked(k) * *x.get_unchecked(*cols.get_unchecked(k) as usize);
            k += 1;
        }
        sum
    }

    /// AVX2 SELL chunk, `c ∈ {4, 8}`: one (c=4) or two (c=8) 4-lane
    /// accumulators — the two-accumulator shape hides gather latency
    /// and measured fastest for c=8 on AVX2-only parts.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn sell_chunk_avx2(
        vals: &[f64],
        cols: &[u32],
        c: usize,
        x: &[f64],
        acc: &mut [f64],
    ) {
        debug_assert!((c == 4 || c == 8) && acc.len() == c);
        let steps = vals.len() / c;
        if c == 4 {
            let mut a0 = _mm256_loadu_pd(acc.as_ptr());
            for s in 0..steps {
                let base = s * c;
                let idx = _mm_loadu_si128(cols.as_ptr().add(base) as *const __m128i);
                let xv = _mm256_i32gather_pd::<8>(x.as_ptr(), idx);
                let vv = _mm256_loadu_pd(vals.as_ptr().add(base));
                a0 = _mm256_fmadd_pd(vv, xv, a0);
            }
            _mm256_storeu_pd(acc.as_mut_ptr(), a0);
        } else {
            let mut a0 = _mm256_loadu_pd(acc.as_ptr());
            let mut a1 = _mm256_loadu_pd(acc.as_ptr().add(4));
            for s in 0..steps {
                let base = s * c;
                let i0 = _mm_loadu_si128(cols.as_ptr().add(base) as *const __m128i);
                let i1 = _mm_loadu_si128(cols.as_ptr().add(base + 4) as *const __m128i);
                let x0 = _mm256_i32gather_pd::<8>(x.as_ptr(), i0);
                let x1 = _mm256_i32gather_pd::<8>(x.as_ptr(), i1);
                let v0 = _mm256_loadu_pd(vals.as_ptr().add(base));
                let v1 = _mm256_loadu_pd(vals.as_ptr().add(base + 4));
                a0 = _mm256_fmadd_pd(v0, x0, a0);
                a1 = _mm256_fmadd_pd(v1, x1, a1);
            }
            _mm256_storeu_pd(acc.as_mut_ptr(), a0);
            _mm256_storeu_pd(acc.as_mut_ptr().add(4), a1);
        }
    }

    /// AVX-512 SELL chunk, `c == 8`: the chunk's 8 rows map 1:1 onto
    /// the zmm lanes; no horizontal reduction anywhere.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn sell_chunk_avx512(vals: &[f64], cols: &[u32], x: &[f64], acc: &mut [f64]) {
        debug_assert!(acc.len() == 8);
        let steps = vals.len() / 8;
        let mut a = _mm512_loadu_pd(acc.as_ptr());
        for s in 0..steps {
            let base = s * 8;
            let idx = _mm256_loadu_si256(cols.as_ptr().add(base) as *const __m256i);
            let xv = _mm512_i32gather_pd::<8>(idx, x.as_ptr());
            let vv = _mm512_loadu_pd(vals.as_ptr().add(base));
            a = _mm512_fmadd_pd(vv, xv, a);
        }
        _mm512_storeu_pd(acc.as_mut_ptr(), a);
    }

    /// SSE2 SELL chunk, even `c`: 2-lane blocks with emulated gathers.
    #[target_feature(enable = "sse2")]
    pub unsafe fn sell_chunk_sse2(
        vals: &[f64],
        cols: &[u32],
        c: usize,
        x: &[f64],
        acc: &mut [f64],
    ) {
        debug_assert!(c % 2 == 0 && acc.len() == c);
        let steps = vals.len() / c;
        for b in 0..c / 2 {
            let mut a = _mm_loadu_pd(acc.as_ptr().add(b * 2));
            for s in 0..steps {
                let base = s * c + b * 2;
                let xv = _mm_set_pd(
                    *x.get_unchecked(*cols.get_unchecked(base + 1) as usize),
                    *x.get_unchecked(*cols.get_unchecked(base) as usize),
                );
                let vv = _mm_loadu_pd(vals.as_ptr().add(base));
                a = _mm_add_pd(a, _mm_mul_pd(vv, xv));
            }
            _mm_storeu_pd(acc.as_mut_ptr().add(b * 2), a);
        }
    }
}

// ---------------------------------------------------------------------
// Ulp-tolerance contract
// ---------------------------------------------------------------------

/// Ulp distance between two doubles: the number of representable f64
/// values strictly between them (0 for equal values, including
/// `+0 == -0`; `u64::MAX` if either is NaN). Works across the zero
/// sign boundary by mapping bit patterns onto a monotone integer line.
pub fn ulp_distance(a: f64, b: f64) -> u64 {
    if a == b {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    // Sign-magnitude -> offset binary, monotone in the real ordering.
    fn key(x: f64) -> i64 {
        let bits = x.to_bits() as i64;
        if bits < 0 {
            i64::MIN.wrapping_add(bits.wrapping_neg())
        } else {
            bits
        }
    }
    key(a).abs_diff(key(b))
}

/// Per-kernel ulp bound for SpMV results. Reassociating a k-term dot
/// product perturbs the result by O(k) ulps of the running sum; the
/// catalog's widest kernels were measured at < 450 ulps on 10^4-term
/// rows, so 1024 gives ~2× headroom without masking real bugs (a wrong
/// gather or dropped tail lands orders of magnitude outside it).
pub const SPMV_MAX_ULPS: u64 = 1024;

/// Absolute floor accompanying [`SPMV_MAX_ULPS`]: when two results
/// differ by less than this, they pass regardless of ulp distance.
/// Near-total cancellation leaves results of magnitude ~1e-13 whose
/// ulp spacing is ~1e-29 — relative comparison is meaningless there.
pub const SPMV_ABS_FLOOR: f64 = 1e-9;

/// True when `got` is within `max_ulps` ulps of `want` *or* within the
/// absolute floor (see [`SPMV_ABS_FLOOR`] for why both are needed).
pub fn ulp_close(got: f64, want: f64, max_ulps: u64, abs_floor: f64) -> bool {
    ulp_distance(got, want) <= max_ulps || (got - want).abs() <= abs_floor
}

/// Asserts element-wise ulp-tolerance between a kernel result and its
/// scalar oracle, with a diagnostic naming the worst element.
///
/// # Panics
///
/// On length mismatch or any element outside both the ulp bound and
/// the absolute floor.
pub fn assert_ulp_close(got: &[f64], want: &[f64], max_ulps: u64, abs_floor: f64, ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length mismatch");
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        assert!(
            ulp_close(g, w, max_ulps, abs_floor),
            "{ctx}: element {i}: got {g:e}, want {w:e} ({} ulps apart, bound {max_ulps}, \
             abs floor {abs_floor:e})",
            ulp_distance(g, w)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_problem(n: usize, ncols: usize, seed: u64) -> (Vec<f64>, Vec<u32>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let vals = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let cols = (0..n).map(|_| rng.gen_range(0..ncols as u32)).collect();
        let x = (0..ncols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        (vals, cols, x)
    }

    /// Levels actually runnable on this host (always includes Scalar).
    fn runnable() -> Vec<SimdIsa> {
        [SimdIsa::Scalar, SimdIsa::Sse2, SimdIsa::Avx2, SimdIsa::Avx512]
            .into_iter()
            .filter(|&isa| isa <= detected())
            .collect()
    }

    #[test]
    fn lanes_names_and_ordering() {
        assert!(SimdIsa::Scalar < SimdIsa::Sse2 && SimdIsa::Sse2 < SimdIsa::Avx2);
        assert!(SimdIsa::Avx2 < SimdIsa::Avx512);
        for isa in [SimdIsa::Scalar, SimdIsa::Sse2, SimdIsa::Avx2, SimdIsa::Avx512] {
            assert_eq!(SimdIsa::widest_for_lanes(isa.lanes()), isa);
            assert_eq!(SimdIsa::from_u8(isa.to_u8()), isa);
        }
        assert_eq!(SimdIsa::Avx512.lanes(), 8);
        assert_eq!(SimdIsa::Avx2.name(), "avx2");
        assert_eq!(SimdIsa::widest_for_lanes(0), SimdIsa::Scalar);
        assert_eq!(SimdIsa::widest_for_lanes(6), SimdIsa::Avx2);
        assert_eq!(SimdIsa::widest_for_lanes(64), SimdIsa::Avx512);
    }

    #[test]
    fn parse_accepts_widths_and_names() {
        assert_eq!(parse_wise_simd(None), Ok(None));
        for (s, isa) in [
            ("0", SimdIsa::Scalar),
            ("off", SimdIsa::Scalar),
            ("Scalar", SimdIsa::Scalar),
            ("1", SimdIsa::Scalar),
            ("2", SimdIsa::Sse2),
            ("sse2", SimdIsa::Sse2),
            ("4", SimdIsa::Avx2),
            ("AVX2", SimdIsa::Avx2),
            ("8", SimdIsa::Avx512),
            ("avx512", SimdIsa::Avx512),
            (" avx512f ", SimdIsa::Avx512),
        ] {
            assert_eq!(parse_wise_simd(Some(s)), Ok(Some(isa)), "input {s:?}");
        }
    }

    #[test]
    fn parse_rejects_garbage_loudly() {
        assert_eq!(parse_wise_simd(Some("")), Err(SimdEnvError::Empty));
        assert_eq!(parse_wise_simd(Some("  ")), Err(SimdEnvError::Empty));
        for bad in ["3", "16", "-4", "avx", "wide", "8 lanes"] {
            let got = parse_wise_simd(Some(bad));
            assert_eq!(got, Err(SimdEnvError::NotAWidth(bad.trim().to_string())), "input {bad:?}");
            assert!(got.unwrap_err().to_string().contains("WISE_SIMD"));
        }
    }

    #[test]
    fn detect_is_stable_and_active_is_runnable() {
        assert_eq!(detected(), detect_raw());
        assert!(active() <= detected());
    }

    #[test]
    fn resolve_respects_width_requests() {
        let cap = active();
        assert_eq!(resolve(0, 100), cap);
        assert_eq!(resolve(1, 100), SimdIsa::Scalar);
        assert_eq!(resolve(2, 100), SimdIsa::Sse2.min(cap));
        assert_eq!(resolve(4, 100), SimdIsa::Avx2.min(cap));
        assert_eq!(resolve(8, 100), SimdIsa::Avx512.min(cap));
        // Signed 32-bit gather indices cannot address a wider x.
        assert_eq!(resolve(0, i32::MAX as usize + 1), SimdIsa::Scalar);
    }

    #[test]
    fn csr_row_matches_scalar_for_every_residue() {
        let (vals, cols, x) = rand_problem(67, 512, 7);
        for isa in runnable() {
            for len in 0..=vals.len() {
                let want = csr_row_scalar(&vals[..len], &cols[..len], &x);
                let got = unsafe { csr_row(isa, &vals[..len], &cols[..len], &x) };
                assert!(
                    ulp_close(got, want, SPMV_MAX_ULPS, SPMV_ABS_FLOOR),
                    "{isa:?} len={len}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn sell_chunk_matches_scalar_for_both_widths() {
        for &c in &[4usize, 8] {
            for width in [0usize, 1, 2, 3, 17, 33] {
                let (vals, cols, x) = rand_problem(width * c, 512, width as u64 * 31 + c as u64);
                let mut want = vec![0.1f64; c]; // nonzero start: contract accumulates
                sell_chunk_scalar(&vals, &cols, c, &x, &mut want);
                for isa in runnable() {
                    let mut got = vec![0.1f64; c];
                    unsafe { sell_chunk(isa, &vals, &cols, c, &x, &mut got) };
                    assert_ulp_close(
                        &got,
                        &want,
                        SPMV_MAX_ULPS,
                        SPMV_ABS_FLOOR,
                        &format!("{isa:?} c={c} width={width}"),
                    );
                }
            }
        }
    }

    #[test]
    fn sell_chunk_odd_width_falls_back_to_scalar() {
        // c = 6 has no vector path at any level; the dispatcher must
        // produce the bit-exact scalar result.
        let c = 6usize;
        let (vals, cols, x) = rand_problem(5 * c, 128, 3);
        let mut want = vec![0.0f64; c];
        sell_chunk_scalar(&vals, &cols, c, &x, &mut want);
        for isa in [SimdIsa::Avx2, SimdIsa::Avx512] {
            let mut got = vec![0.0f64; c];
            unsafe { sell_chunk(isa, &vals, &cols, c, &x, &mut got) };
            assert_eq!(got, want, "{isa:?}");
        }
    }

    #[test]
    fn ulp_distance_properties() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(ulp_distance(1.0, f64::from_bits(1.0f64.to_bits() + 1)), 1);
        assert_eq!(ulp_distance(1.0, f64::NAN), u64::MAX);
        // Straddling zero: distance counts representable values between.
        let tiny = f64::from_bits(1); // smallest positive subnormal
        assert_eq!(ulp_distance(tiny, -tiny), 2);
        assert!(ulp_distance(1.0, 2.0) == 1u64 << 52);
    }

    #[test]
    fn ulp_close_uses_absolute_floor_near_zero() {
        // 1e-13 vs -1e-13: astronomically many ulps apart, but within
        // any reasonable cancellation floor.
        assert!(!ulp_close(1e-13, -1e-13, SPMV_MAX_ULPS, 0.0));
        assert!(ulp_close(1e-13, -1e-13, SPMV_MAX_ULPS, SPMV_ABS_FLOOR));
        assert!(!ulp_close(1.0, 1.5, SPMV_MAX_ULPS, SPMV_ABS_FLOOR));
    }

    #[test]
    #[should_panic(expected = "ulps apart")]
    fn assert_ulp_close_panics_outside_bound() {
        assert_ulp_close(&[1.0], &[1.0 + 1e-6], 16, 1e-12, "unit");
    }
}
