//! Runtime-dispatched SIMD kernels for the SpMV inner loops.
//!
//! The capability probe ([`detect_raw`]) classifies the host into one
//! of five [`SimdIsa`] levels at startup; kernels then dispatch through
//! `#[target_feature]` functions so a single binary runs the widest
//! safe path everywhere. Non-x86-64 hosts land on the [`SimdIsa::
//! Portable`] level — a plain-Rust multi-accumulator path (optionally
//! `std::simd` under `--cfg wise_portable_simd` on nightly) instead of
//! the old scalar fallback. Two kernel families are vectorized:
//!
//! * **CSR rows** ([`csr_row_pf`], [`csr_rows_pf`]): 4-/8-wide
//!   gather–multiply–accumulate with a horizontal reduction. The
//!   AVX-512 path replaces the scalar `nnz % 8` residue with a masked
//!   gather (`_mm512_maskz_*`), and [`csr_rows_pf`] processes `R` rows
//!   concurrently with `R` independent accumulator chains so gathers
//!   from different rows overlap in the load ports.
//! * **SELL/SRVPack chunks** ([`sell_chunk_pf`], [`sell_chunk_pair`]):
//!   the column-major padded chunk layout maps the chunk's `c` rows
//!   1:1 onto vector lanes. Chunk heights `c ∈ {2..=7}` now run a
//!   masked AVX-512 path instead of falling back to scalar, and
//!   [`sell_chunk_pair`] interleaves two chunks (two independent
//!   accumulator chains) to hide gather latency — measured the most
//!   robust MLP win on this host (never loses to the single chain).
//!
//! Gather-bound SpMV serializes on `vgatherdpd` latency, not FLOPs, so
//! the kernels also accept a software **prefetch distance**: `D` steps
//! ahead of the current one, the kernel issues `_mm_prefetch` on the
//! x-lines named by `cols[k + D·lanes ..]`. The distance comes from
//! [`prefetch_distance`]: the `WISE_PREFETCH` env override when set
//! (0 = off, `auto`/unset = policy, malformed warns once + counter),
//! else an auto policy that only engages when x cannot be
//! cache-resident ([`PREFETCH_MIN_X_BYTES`]) — prefetch measurably
//! *hurts* when x already lives in L2.
//!
//! Vectorization reassociates the per-row sums (pairwise/strided
//! instead of strictly left-to-right), so bit-exactness with the scalar
//! oracles is forfeited by design. The replacement contract is
//! ulp-tolerance: [`assert_ulp_close`] with a per-kernel bound
//! ([`SPMV_MAX_ULPS`], plus [`SPMV_ABS_FLOOR`] for catastrophic-
//! cancellation results near zero, where relative ulp distance is
//! meaningless). Prefetching and interleaving are pure *scheduling*
//! changes: for a fixed level they never alter the sequence of
//! operations feeding any accumulator, so results are bit-identical
//! across every `(D, R)` setting. Setting `WISE_SIMD=0` (or preparing
//! a config with explicit width 1) restores the original scalar path
//! bit-exactly regardless of the other knobs.
//!
//! All gathers index with *signed 32-bit* lanes, so [`resolve`] — and,
//! per kernel call, [`clamp_isa`] — fall back to scalar when the x
//! vector could exceed `i32::MAX` entries.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::OnceLock;
use wise_trace::env_knob::{Knob, KnobError};

/// A SIMD capability level, ordered narrowest to widest.
///
/// `Avx512` is only ever detected/activated when AVX2 and FMA are also
/// present (true on every shipping AVX-512 part), so a kernel running
/// at one level may safely call helpers of any lower level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdIsa {
    /// No explicit vectorization: the original scalar kernels.
    Scalar,
    /// Plain-Rust multi-accumulator kernels for non-x86-64 hosts
    /// (`std::simd` under `--cfg wise_portable_simd`). Ordered just
    /// above scalar: it has no hardware gather, so any real x86 level
    /// should win a `min` against it.
    Portable,
    /// 2 × f64 lanes, no hardware gather (emulated with scalar loads).
    Sse2,
    /// 4 × f64 lanes, `vgatherdpd` + FMA.
    Avx2,
    /// 8 × f64 lanes, `vgatherdpd` + FMA + full-width reduce.
    Avx512,
}

impl SimdIsa {
    /// f64 lanes per vector register at this level. `Portable` reports
    /// 2 — the conservative width the plain-Rust path is modeled at.
    pub const fn lanes(self) -> usize {
        match self {
            SimdIsa::Scalar => 1,
            SimdIsa::Portable => 2,
            SimdIsa::Sse2 => 2,
            SimdIsa::Avx2 => 4,
            SimdIsa::Avx512 => 8,
        }
    }

    /// Stable lowercase name (used in fingerprints and reports).
    pub const fn name(self) -> &'static str {
        match self {
            SimdIsa::Scalar => "scalar",
            SimdIsa::Portable => "portable2",
            SimdIsa::Sse2 => "sse2",
            SimdIsa::Avx2 => "avx2",
            SimdIsa::Avx512 => "avx512f",
        }
    }

    /// The widest level whose lane count is `<= lanes` (0 clamps to
    /// scalar). Inverse of [`SimdIsa::lanes`] for the valid widths on
    /// x86; never returns `Portable` (catalog widths name x86 levels,
    /// and `min` against a portable [`active`] cap does the demotion).
    pub const fn widest_for_lanes(lanes: usize) -> SimdIsa {
        match lanes {
            0 | 1 => SimdIsa::Scalar,
            2 | 3 => SimdIsa::Sse2,
            4..=7 => SimdIsa::Avx2,
            _ => SimdIsa::Avx512,
        }
    }

    const fn to_u8(self) -> u8 {
        match self {
            SimdIsa::Scalar => 0,
            SimdIsa::Sse2 => 1,
            SimdIsa::Avx2 => 2,
            SimdIsa::Avx512 => 3,
            // Appended after the original four so persisted values
            // keep their meaning.
            SimdIsa::Portable => 4,
        }
    }

    const fn from_u8(v: u8) -> SimdIsa {
        match v {
            1 => SimdIsa::Sse2,
            2 => SimdIsa::Avx2,
            3 => SimdIsa::Avx512,
            4 => SimdIsa::Portable,
            _ => SimdIsa::Scalar,
        }
    }
}

/// Probes the host CPU. On x86_64 this is `is_x86_feature_detected!`
/// (cached by std after the first cpuid); elsewhere the portable
/// multi-accumulator level.
///
/// The `Avx512` level additionally requires AVX2 + FMA so higher levels
/// strictly superset lower ones (see [`SimdIsa`]).
pub fn detect_raw() -> SimdIsa {
    #[cfg(target_arch = "x86_64")]
    {
        let avx2 = is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma");
        if avx2 && is_x86_feature_detected!("avx512f") {
            SimdIsa::Avx512
        } else if avx2 {
            SimdIsa::Avx2
        } else if is_x86_feature_detected!("sse2") {
            SimdIsa::Sse2
        } else {
            SimdIsa::Scalar
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdIsa::Portable
    }
}

/// [`detect_raw`] memoized (one atomic load after the first call).
pub fn detected() -> SimdIsa {
    static DETECTED: OnceLock<SimdIsa> = OnceLock::new();
    *DETECTED.get_or_init(detect_raw)
}

/// The `WISE_SIMD` knob, on the shared [`wise_trace::env_knob`] grammar.
const SIMD_KNOB: Knob = Knob::new(
    "WISE_SIMD",
    "a SIMD width (expected 0/off/scalar/1, 2/sse2, 4/avx2, 8/avx512, or portable)",
);

/// Parses a raw `WISE_SIMD` value into a capability *cap*. `Ok(None)`
/// means unset (auto-detect); `0`, `off`, `scalar`, and `1` all force
/// the scalar path; `portable` caps at the plain-Rust level (useful for
/// exercising the non-x86 path on x86 hosts).
pub fn parse_wise_simd(raw: Option<&str>) -> Result<Option<SimdIsa>, KnobError> {
    SIMD_KNOB.parse(raw, |norm| match norm {
        "0" | "off" | "scalar" | "1" => Some(SimdIsa::Scalar),
        "portable" | "portable2" => Some(SimdIsa::Portable),
        "2" | "sse2" => Some(SimdIsa::Sse2),
        "4" | "avx2" => Some(SimdIsa::Avx2),
        "8" | "avx512" | "avx512f" => Some(SimdIsa::Avx512),
        _ => None,
    })
}

const ISA_UNINIT: u8 = u8::MAX;
static ACTIVE: AtomicU8 = AtomicU8::new(ISA_UNINIT);

/// The process-wide active SIMD level: `min(detected, WISE_SIMD cap)`,
/// resolved lazily on first use and cached. A malformed `WISE_SIMD`
/// falls back to auto-detect *loudly*: a once-per-process stderr
/// warning plus a `kernel.simd_env_invalid` trace counter — never a
/// silent behavior change.
pub fn active() -> SimdIsa {
    match ACTIVE.load(Ordering::Relaxed) {
        ISA_UNINIT => {
            let isa = active_from_env();
            ACTIVE.store(isa.to_u8(), Ordering::Relaxed);
            isa
        }
        v => SimdIsa::from_u8(v),
    }
}

fn active_from_env() -> SimdIsa {
    let det = detected();
    SIMD_KNOB
        .read("kernel.simd_env_invalid", "using the detected level", |norm| match norm {
            "0" | "off" | "scalar" | "1" => Some(SimdIsa::Scalar),
            "portable" | "portable2" => Some(SimdIsa::Portable),
            "2" | "sse2" => Some(SimdIsa::Sse2),
            "4" | "avx2" => Some(SimdIsa::Avx2),
            "8" | "avx512" | "avx512f" => Some(SimdIsa::Avx512),
            _ => None,
        })
        .map_or(det, |cap| cap.min(det))
}

/// Overrides the active level (tests, experiments). The request is
/// capped at [`detected`] so an unsupported level can never be forced
/// into the dispatchers.
pub fn set_active(isa: SimdIsa) {
    ACTIVE.store(isa.min(detected()).to_u8(), Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Prefetch distance: WISE_PREFETCH override + auto policy
// ---------------------------------------------------------------------

/// Upper clamp on any prefetch distance (in vector steps). Distances
/// beyond this are past every useful horizon — the lines would be
/// evicted again before use.
pub const MAX_PREFETCH: usize = 64;

/// Auto-prefetch engages only when the x vector is bigger than this
/// (bytes): below it x is L2/L3-resident and prefetch instructions are
/// pure overhead (measured 0.92× at D=2 on an L2-resident probe);
/// above it the gathers miss to DRAM and prefetch hides that latency
/// (measured 1.21× at D=8 on a 32 MB x).
pub const PREFETCH_MIN_X_BYTES: usize = 4 << 20;

/// CSR row-interleave auto policy only engages when x fits well inside
/// the private caches (bytes): interleaving R rows multiplies the
/// live gather footprint by R, which thrashes once x spills.
pub const INTERLEAVE_MAX_X_BYTES: usize = 256 << 10;

/// CSR row-interleave auto policy requires at least this many nonzeros
/// per row: shorter rows spend their time in the reduce/tail epilogue
/// where interleaving cannot help.
pub const INTERLEAVE_MIN_ROW_NNZ: usize = 32;

/// The `WISE_PREFETCH` knob, on the shared [`wise_trace::env_knob`]
/// grammar.
const PREFETCH_KNOB: Knob =
    Knob::new("WISE_PREFETCH", "a prefetch distance (expected a step count, 0 = off, or `auto`)");

/// Interpreter shared by [`parse_wise_prefetch`] and the env read:
/// `auto` keeps the policy (`Some(None)`), a number forces a distance
/// (clamped at [`MAX_PREFETCH`]).
fn prefetch_interp(norm: &str) -> Option<Option<usize>> {
    if norm == "auto" {
        return Some(None);
    }
    norm.parse::<usize>().ok().map(|d| Some(d.min(MAX_PREFETCH)))
}

/// Parses a raw `WISE_PREFETCH` value into a distance *override* in
/// vector steps. `Ok(None)` means unset or `auto` (use the policy);
/// `Ok(Some(0))` disables prefetch entirely; larger values clamp at
/// [`MAX_PREFETCH`].
pub fn parse_wise_prefetch(raw: Option<&str>) -> Result<Option<usize>, KnobError> {
    PREFETCH_KNOB.parse(raw, prefetch_interp).map(Option::flatten)
}

const PF_UNINIT: usize = usize::MAX;
const PF_AUTO: usize = usize::MAX - 1;
static PREFETCH: AtomicUsize = AtomicUsize::new(PF_UNINIT);

/// The process-wide `WISE_PREFETCH` override, resolved lazily from the
/// environment and cached: `Some(d)` forces distance `d` everywhere
/// (0 = off), `None` defers to [`auto_prefetch_distance`]. A malformed
/// value falls back to auto *loudly*: a once-per-process stderr warning
/// plus a `kernel.prefetch_env_invalid` trace counter.
pub fn prefetch_override() -> Option<usize> {
    match PREFETCH.load(Ordering::Relaxed) {
        PF_UNINIT => {
            let ov = prefetch_from_env();
            PREFETCH.store(ov.unwrap_or(PF_AUTO), Ordering::Relaxed);
            ov
        }
        PF_AUTO => None,
        d => Some(d),
    }
}

fn prefetch_from_env() -> Option<usize> {
    PREFETCH_KNOB
        .read("kernel.prefetch_env_invalid", "using the auto prefetch policy", prefetch_interp)
        .flatten()
}

/// Overrides the prefetch distance (tests, experiments): `Some(d)`
/// forces `d` (clamped at [`MAX_PREFETCH`]), `None` restores the auto
/// policy.
pub fn set_prefetch(d: Option<usize>) {
    PREFETCH.store(d.map_or(PF_AUTO, |d| d.min(MAX_PREFETCH)), Ordering::Relaxed);
}

/// The auto prefetch policy: distance 8 for the gather levels when x
/// cannot be cache-resident (see [`PREFETCH_MIN_X_BYTES`]), else 0.
/// SSE2 has no hardware gather to overlap and the portable path's
/// loads are already exposed to the out-of-order window, so both get 0.
pub fn auto_prefetch_distance(isa: SimdIsa, ncols: usize) -> usize {
    match isa {
        SimdIsa::Avx512 | SimdIsa::Avx2
            if ncols.saturating_mul(std::mem::size_of::<f64>()) > PREFETCH_MIN_X_BYTES =>
        {
            8
        }
        _ => 0,
    }
}

/// The effective prefetch distance for a kernel at `isa` over an x of
/// `ncols` entries: the `WISE_PREFETCH` override when set, else the
/// auto policy. Scalar kernels never prefetch.
pub fn prefetch_distance(isa: SimdIsa, ncols: usize) -> usize {
    if isa.lanes() <= 1 {
        return 0;
    }
    match prefetch_override() {
        Some(d) => d,
        None => auto_prefetch_distance(isa, ncols),
    }
}

/// The auto CSR row-interleave factor: 2 on AVX-512 when x is small
/// enough to stay cache-resident under the doubled gather footprint
/// (see [`INTERLEAVE_MAX_X_BYTES`]; callers additionally gate on
/// [`INTERLEAVE_MIN_ROW_NNZ`] per row block), else 1.
pub fn auto_csr_interleave(isa: SimdIsa, ncols: usize) -> usize {
    if isa == SimdIsa::Avx512
        && ncols.saturating_mul(std::mem::size_of::<f64>()) <= INTERLEAVE_MAX_X_BYTES
    {
        2
    } else {
        1
    }
}

/// The auto SELL chunk-interleave factor: pair chunks on the AVX-512
/// c=8 path (two independent accumulator chains — measured the one MLP
/// transform that never loses on this host), else 1.
pub fn auto_sell_interleave(isa: SimdIsa, c: usize) -> usize {
    if isa == SimdIsa::Avx512 && c == 8 {
        2
    } else {
        1
    }
}

/// Per-kernel-call ISA clamp: the requested level capped at
/// [`detected`], forced to scalar when column indices would not fit
/// the signed 32-bit gather lanes for this x. [`resolve`] applies the
/// same rule at catalog-resolution time, but the kernel entry points
/// re-check against the *actual* x so a config resolved against one
/// matrix can never mis-gather on a wider one.
pub fn clamp_isa(isa: SimdIsa, xlen: usize) -> SimdIsa {
    if xlen > i32::MAX as usize {
        SimdIsa::Scalar
    } else {
        isa.min(detected())
    }
}

/// Resolves a catalog SIMD width `v` against the active level for a
/// matrix with `ncols` columns: `0` = auto (widest active), `1` =
/// forced scalar, otherwise the widest level with at most `v` lanes,
/// capped by [`active`]. Falls back to scalar when column indices
/// would not fit the signed 32-bit gather lanes.
pub fn resolve(v: usize, ncols: usize) -> SimdIsa {
    if v == 1 || ncols > i32::MAX as usize {
        return SimdIsa::Scalar;
    }
    let cap = active();
    if v == 0 {
        cap
    } else {
        SimdIsa::widest_for_lanes(v).min(cap)
    }
}

// ---------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------

/// One CSR row: `dot(vals, x[cols])` at the given level, no prefetch.
/// Equivalent to [`csr_row_pf`] with distance 0 — kept for callers
/// that predate the MLP knobs.
///
/// # Safety
///
/// See [`csr_row_pf`].
pub unsafe fn csr_row(isa: SimdIsa, vals: &[f64], cols: &[u32], x: &[f64]) -> f64 {
    csr_row_pf(isa, vals, cols, x, 0)
}

/// One CSR row: `dot(vals, x[cols])` at the given level, issuing
/// software prefetches `pf` vector steps ahead (0 = none). The
/// prefetch distance never changes the result — only the schedule.
///
/// # Safety
///
/// `vals.len() == cols.len()` and every `cols[k] as usize <
/// x.len()` — the `Csr::try_new` invariants. The level is clamped per
/// call via [`clamp_isa`], so an over-wide `isa` cannot execute
/// unsupported instructions and oversized x falls back to scalar.
pub unsafe fn csr_row_pf(isa: SimdIsa, vals: &[f64], cols: &[u32], x: &[f64], pf: usize) -> f64 {
    debug_assert_eq!(vals.len(), cols.len());
    let isa = clamp_isa(isa, x.len());
    #[cfg(target_arch = "x86_64")]
    match isa {
        SimdIsa::Avx512 => return x86::csr_row_avx512(vals, cols, x, pf),
        SimdIsa::Avx2 => return x86::csr_row_avx2(vals, cols, x, pf),
        SimdIsa::Sse2 => return x86::csr_row_sse2(vals, cols, x),
        SimdIsa::Portable => return portable::csr_row(vals, cols, x),
        SimdIsa::Scalar => {}
    }
    #[cfg(not(target_arch = "x86_64"))]
    if isa > SimdIsa::Scalar {
        return portable::csr_row(vals, cols, x);
    }
    let _ = pf;
    csr_row_scalar(vals, cols, x)
}

/// `R` CSR rows concurrently: row `i` spans `vals[ranges[i].0 ..
/// ranges[i].1]` (and the same span of `cols`), and each row gets its
/// own accumulator chain so the gathers of all `R` rows stay in flight
/// together. On AVX-512 the rows advance in lockstep over the shortest
/// row's full steps, then each finishes independently (masked tail for
/// the residue); every other level degrades to `R` sequential
/// [`csr_row_pf`] calls. Either way the per-row operation sequence is
/// identical to the `R = 1` path, so results are **bit-identical** to
/// calling [`csr_row_pf`] per row — interleaving is scheduling only.
///
/// # Safety
///
/// Every range must satisfy `r.0 <= r.1 <= vals.len() == cols.len()`,
/// and every referenced `cols[k] as usize < x.len()`.
pub unsafe fn csr_rows_pf<const R: usize>(
    isa: SimdIsa,
    ranges: &[(usize, usize); R],
    vals: &[f64],
    cols: &[u32],
    x: &[f64],
    pf: usize,
) -> [f64; R] {
    debug_assert_eq!(vals.len(), cols.len());
    let isa = clamp_isa(isa, x.len());
    #[cfg(target_arch = "x86_64")]
    if isa == SimdIsa::Avx512 {
        return x86::csr_rows_avx512::<R>(ranges, vals, cols, x, pf);
    }
    let mut out = [0.0f64; R];
    for i in 0..R {
        let (k0, k1) = ranges[i];
        out[i] = csr_row_pf(isa, &vals[k0..k1], &cols[k0..k1], x, pf);
    }
    out
}

/// One SELL/SRVPack chunk, no prefetch: see [`sell_chunk_pf`].
///
/// # Safety
///
/// See [`sell_chunk_pf`].
pub unsafe fn sell_chunk(
    isa: SimdIsa,
    vals: &[f64],
    cols: &[u32],
    c: usize,
    x: &[f64],
    acc: &mut [f64],
) {
    sell_chunk_pf(isa, vals, cols, c, x, acc, 0);
}

/// One SELL/SRVPack chunk: accumulates `width` column-major steps of
/// `c` lanes into `acc` (the chunk's per-row partial sums), issuing
/// software prefetches `pf` steps ahead (0 = none). Vector paths:
/// `c ∈ {4, 8}` natively; `c ∈ {2..=7}` via the AVX-512 masked-lane
/// kernel (ulp-close, not bit-exact, to scalar: masked FMA fuses the
/// multiply-add the scalar oracle rounds twice); anything else runs
/// the scalar loop.
///
/// # Safety
///
/// `vals.len() == cols.len()`, both a multiple of `c`, `acc.len() ==
/// c`, and every `cols[k] as usize < x.len()` (padding entries store
/// column 0 with value 0.0 — the `SrvPack` build invariant). The level
/// is clamped per call via [`clamp_isa`].
pub unsafe fn sell_chunk_pf(
    isa: SimdIsa,
    vals: &[f64],
    cols: &[u32],
    c: usize,
    x: &[f64],
    acc: &mut [f64],
    pf: usize,
) {
    debug_assert_eq!(vals.len(), cols.len());
    debug_assert!(vals.len() % c.max(1) == 0 && acc.len() == c);
    let isa = clamp_isa(isa, x.len());
    #[cfg(target_arch = "x86_64")]
    match (isa, c) {
        (SimdIsa::Avx512, 8) => return x86::sell_chunk_avx512(vals, cols, x, acc, pf),
        (SimdIsa::Avx512 | SimdIsa::Avx2, 4 | 8) => {
            return x86::sell_chunk_avx2(vals, cols, c, x, acc)
        }
        (SimdIsa::Avx512, 2..=7) => return x86::sell_chunk_avx512_masked(vals, cols, c, x, acc),
        (SimdIsa::Sse2, _) if c % 2 == 0 => return x86::sell_chunk_sse2(vals, cols, c, x, acc),
        (SimdIsa::Portable, _) if c >= 2 => return portable::sell_chunk(vals, cols, c, x, acc),
        _ => {}
    }
    #[cfg(not(target_arch = "x86_64"))]
    if isa > SimdIsa::Scalar && c >= 2 {
        return portable::sell_chunk(vals, cols, c, x, acc);
    }
    let _ = pf;
    sell_chunk_scalar(vals, cols, c, x, acc);
}

/// Two SELL/SRVPack chunks interleaved: the AVX-512 c=8 path runs both
/// chunks' steps in lockstep with two independent accumulator chains
/// (the measured-robust MLP transform), every other level runs the two
/// chunks sequentially. Each chunk's accumulator sees exactly the
/// operation sequence of a solo [`sell_chunk_pf`] call, so results are
/// **bit-identical** to two sequential calls.
///
/// # Safety
///
/// Both chunk triples must satisfy the [`sell_chunk_pf`] invariants
/// for the same `c` and `x`.
#[allow(clippy::too_many_arguments)]
pub unsafe fn sell_chunk_pair(
    isa: SimdIsa,
    vals0: &[f64],
    cols0: &[u32],
    acc0: &mut [f64],
    vals1: &[f64],
    cols1: &[u32],
    acc1: &mut [f64],
    c: usize,
    x: &[f64],
    pf: usize,
) {
    let clamped = clamp_isa(isa, x.len());
    #[cfg(target_arch = "x86_64")]
    if clamped == SimdIsa::Avx512 && c == 8 {
        return x86::sell_chunk_pair_avx512(vals0, cols0, vals1, cols1, x, acc0, acc1, pf);
    }
    let _ = clamped;
    sell_chunk_pf(isa, vals0, cols0, c, x, acc0, pf);
    sell_chunk_pf(isa, vals1, cols1, c, x, acc1, pf);
}

/// Scalar CSR row oracle (strict left-to-right accumulation), shared by
/// the dispatcher fallback and the parity tests.
///
/// Bounds are checked — the hot scalar path stays in `CsrSpmv::spmv`,
/// which keeps its original unchecked loop bit-for-bit.
pub fn csr_row_scalar(vals: &[f64], cols: &[u32], x: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    for (v, &ci) in vals.iter().zip(cols) {
        acc += v * x[ci as usize];
    }
    acc
}

/// Scalar SELL chunk oracle: per-lane strict accumulation order,
/// identical to `SrvPack`'s scalar chunk kernels.
pub fn sell_chunk_scalar(vals: &[f64], cols: &[u32], c: usize, x: &[f64], acc: &mut [f64]) {
    for (vrow, crow) in vals.chunks_exact(c).zip(cols.chunks_exact(c)) {
        for l in 0..c {
            acc[l] += vrow[l] * x[crow[l] as usize];
        }
    }
}

mod portable {
    //! The [`SimdIsa::Portable`](super::SimdIsa::Portable) kernel
    //! bodies: plain Rust written so the per-lane work is independent
    //! (multi-accumulator CSR rows, column-major SELL steps) and the
    //! compiler's autovectorizer — or the `std::simd` variant under
    //! `--cfg wise_portable_simd` on nightly — can keep several loads
    //! in flight on any target, aarch64 included. Compiled on every
    //! arch so the level stays testable from x86 CI.

    /// Four independent accumulator chains + pairwise combine. The
    /// reassociation stays inside the ulp contract; the tail is strict
    /// left-to-right like the scalar oracle.
    #[cfg(not(wise_portable_simd))]
    pub fn csr_row(vals: &[f64], cols: &[u32], x: &[f64]) -> f64 {
        let n = vals.len();
        let mut a = [0.0f64; 4];
        let mut k = 0usize;
        while k + 4 <= n {
            for l in 0..4 {
                a[l] += vals[k + l] * x[cols[k + l] as usize];
            }
            k += 4;
        }
        let mut sum = (a[0] + a[1]) + (a[2] + a[3]);
        while k < n {
            sum += vals[k] * x[cols[k] as usize];
            k += 1;
        }
        sum
    }

    /// `std::simd` variant of [`csr_row`]: 4-lane gather + multiply
    /// into one vector accumulator, reduced pairwise like the plain
    /// path so both variants stay within the same ulp envelope.
    #[cfg(wise_portable_simd)]
    pub fn csr_row(vals: &[f64], cols: &[u32], x: &[f64]) -> f64 {
        use std::simd::prelude::*;
        let n = vals.len();
        let mut acc = Simd::<f64, 4>::splat(0.0);
        let mut k = 0usize;
        while k + 4 <= n {
            let idx = Simd::<usize, 4>::from_array([
                cols[k] as usize,
                cols[k + 1] as usize,
                cols[k + 2] as usize,
                cols[k + 3] as usize,
            ]);
            let xv = Simd::<f64, 4>::gather_or_default(x, idx);
            let vv = Simd::<f64, 4>::from_slice(&vals[k..k + 4]);
            acc += vv * xv;
            k += 4;
        }
        let a = acc.to_array();
        let mut sum = (a[0] + a[1]) + (a[2] + a[3]);
        while k < n {
            sum += vals[k] * x[cols[k] as usize];
            k += 1;
        }
        sum
    }

    /// Portable SELL chunk: the column-major layout already presents
    /// `c` independent per-lane accumulations per step, which is
    /// exactly the shape autovectorizers handle; the loop is kept in
    /// scalar-oracle order so this path is **bit-exact** with
    /// [`sell_chunk_scalar`](super::sell_chunk_scalar).
    pub fn sell_chunk(vals: &[f64], cols: &[u32], c: usize, x: &[f64], acc: &mut [f64]) {
        for (vrow, crow) in vals.chunks_exact(c).zip(cols.chunks_exact(c)) {
            for l in 0..c {
                acc[l] += vrow[l] * x[crow[l] as usize];
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! `#[target_feature]` kernel bodies. Callers must guarantee the
    //! feature is present (the public dispatchers clamp to `detected`)
    //! and the slice/index invariants documented on them. All prefetch
    //! distances (`pf`) are in vector steps and only ever change the
    //! instruction schedule, never the arithmetic.
    use std::arch::x86_64::*;

    #[target_feature(enable = "sse2")]
    pub unsafe fn csr_row_sse2(vals: &[f64], cols: &[u32], x: &[f64]) -> f64 {
        let n = vals.len();
        let mut acc = _mm_setzero_pd();
        let mut k = 0usize;
        while k + 2 <= n {
            // No gather below AVX2: emulate with two scalar loads.
            let xv = _mm_set_pd(
                *x.get_unchecked(*cols.get_unchecked(k + 1) as usize),
                *x.get_unchecked(*cols.get_unchecked(k) as usize),
            );
            let vv = _mm_loadu_pd(vals.as_ptr().add(k));
            acc = _mm_add_pd(acc, _mm_mul_pd(vv, xv));
            k += 2;
        }
        let mut sum = _mm_cvtsd_f64(acc) + _mm_cvtsd_f64(_mm_unpackhi_pd(acc, acc));
        while k < n {
            sum += *vals.get_unchecked(k) * *x.get_unchecked(*cols.get_unchecked(k) as usize);
            k += 1;
        }
        sum
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn csr_row_avx2(vals: &[f64], cols: &[u32], x: &[f64], pf: usize) -> f64 {
        let n = vals.len();
        let dist = pf * 4;
        let mut acc = _mm256_setzero_pd();
        let mut k = 0usize;
        while k + 4 <= n {
            if dist > 0 && k + dist + 4 <= n {
                for j in 0..4 {
                    _mm_prefetch::<_MM_HINT_T0>(
                        x.as_ptr().add(*cols.get_unchecked(k + dist + j) as usize) as *const i8,
                    );
                }
            }
            let idx = _mm_loadu_si128(cols.as_ptr().add(k) as *const __m128i);
            let xv = _mm256_i32gather_pd::<8>(x.as_ptr(), idx);
            let vv = _mm256_loadu_pd(vals.as_ptr().add(k));
            acc = _mm256_fmadd_pd(vv, xv, acc);
            k += 4;
        }
        let lo = _mm256_castpd256_pd128(acc);
        let hi = _mm256_extractf128_pd::<1>(acc);
        let pair = _mm_add_pd(lo, hi);
        let mut sum = _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
        while k < n {
            sum += *vals.get_unchecked(k) * *x.get_unchecked(*cols.get_unchecked(k) as usize);
            k += 1;
        }
        sum
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn csr_row_avx512(vals: &[f64], cols: &[u32], x: &[f64], pf: usize) -> f64 {
        csr_rows_avx512::<1>(&[(0, vals.len())], vals, cols, x, pf)[0]
    }

    /// `R` CSR rows with `R` independent zmm accumulator chains. The
    /// rows advance in lockstep over the shortest row's full 8-wide
    /// steps (keeping `R` gathers in flight), then each row finishes
    /// its remaining full steps and a masked-gather residue alone.
    /// Each chain sees its row's steps in the exact order the `R = 1`
    /// kernel would issue them, so the results are bit-identical to
    /// `R` solo calls.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn csr_rows_avx512<const R: usize>(
        ranges: &[(usize, usize); R],
        vals: &[f64],
        cols: &[u32],
        x: &[f64],
        pf: usize,
    ) -> [f64; R] {
        let dist = pf * 8;
        let mut acc = [_mm512_setzero_pd(); R];
        let steps = ranges.iter().map(|r| (r.1 - r.0) / 8).min().unwrap_or(0);
        for s in 0..steps {
            for i in 0..R {
                let k = ranges[i].0 + s * 8;
                if dist > 0 && k + dist + 8 <= ranges[i].1 {
                    for j in 0..8 {
                        _mm_prefetch::<_MM_HINT_T0>(
                            x.as_ptr().add(*cols.get_unchecked(k + dist + j) as usize) as *const i8,
                        );
                    }
                }
                let idx = _mm256_loadu_si256(cols.as_ptr().add(k) as *const __m256i);
                let xv = _mm512_i32gather_pd::<8>(idx, x.as_ptr());
                let vv = _mm512_loadu_pd(vals.as_ptr().add(k));
                acc[i] = _mm512_fmadd_pd(vv, xv, acc[i]);
            }
        }
        let mut out = [0.0f64; R];
        for i in 0..R {
            let (k0, k1) = ranges[i];
            let mut k = k0 + steps * 8;
            let mut a = acc[i];
            while k + 8 <= k1 {
                if dist > 0 && k + dist + 8 <= k1 {
                    for j in 0..8 {
                        _mm_prefetch::<_MM_HINT_T0>(
                            x.as_ptr().add(*cols.get_unchecked(k + dist + j) as usize) as *const i8,
                        );
                    }
                }
                let idx = _mm256_loadu_si256(cols.as_ptr().add(k) as *const __m256i);
                let xv = _mm512_i32gather_pd::<8>(idx, x.as_ptr());
                let vv = _mm512_loadu_pd(vals.as_ptr().add(k));
                a = _mm512_fmadd_pd(vv, xv, a);
                k += 8;
            }
            let rem = k1 - k;
            if rem > 0 {
                // Masked residue: stage the short index run in a stack
                // buffer (a full 256-bit load could run off `cols`),
                // then gather/load only the live lanes. Dead lanes
                // contribute 0·0 to the FMA — no NaN contamination.
                let m: __mmask8 = (1u8 << rem) - 1;
                let mut buf = [0u32; 8];
                buf[..rem].copy_from_slice(&cols[k..k1]);
                let idx = _mm256_loadu_si256(buf.as_ptr() as *const __m256i);
                let xv = _mm512_mask_i32gather_pd::<8>(_mm512_setzero_pd(), m, idx, x.as_ptr());
                let vv = _mm512_maskz_loadu_pd(m, vals.as_ptr().add(k));
                a = _mm512_fmadd_pd(vv, xv, a);
            }
            out[i] = _mm512_reduce_add_pd(a);
        }
        out
    }

    /// AVX2 SELL chunk, `c ∈ {4, 8}`: one (c=4) or two (c=8) 4-lane
    /// accumulators — the two-accumulator shape hides gather latency
    /// and measured fastest for c=8 on AVX2-only parts.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn sell_chunk_avx2(
        vals: &[f64],
        cols: &[u32],
        c: usize,
        x: &[f64],
        acc: &mut [f64],
    ) {
        debug_assert!((c == 4 || c == 8) && acc.len() == c);
        let steps = vals.len() / c;
        if c == 4 {
            let mut a0 = _mm256_loadu_pd(acc.as_ptr());
            for s in 0..steps {
                let base = s * c;
                let idx = _mm_loadu_si128(cols.as_ptr().add(base) as *const __m128i);
                let xv = _mm256_i32gather_pd::<8>(x.as_ptr(), idx);
                let vv = _mm256_loadu_pd(vals.as_ptr().add(base));
                a0 = _mm256_fmadd_pd(vv, xv, a0);
            }
            _mm256_storeu_pd(acc.as_mut_ptr(), a0);
        } else {
            let mut a0 = _mm256_loadu_pd(acc.as_ptr());
            let mut a1 = _mm256_loadu_pd(acc.as_ptr().add(4));
            for s in 0..steps {
                let base = s * c;
                let i0 = _mm_loadu_si128(cols.as_ptr().add(base) as *const __m128i);
                let i1 = _mm_loadu_si128(cols.as_ptr().add(base + 4) as *const __m128i);
                let x0 = _mm256_i32gather_pd::<8>(x.as_ptr(), i0);
                let x1 = _mm256_i32gather_pd::<8>(x.as_ptr(), i1);
                let v0 = _mm256_loadu_pd(vals.as_ptr().add(base));
                let v1 = _mm256_loadu_pd(vals.as_ptr().add(base + 4));
                a0 = _mm256_fmadd_pd(v0, x0, a0);
                a1 = _mm256_fmadd_pd(v1, x1, a1);
            }
            _mm256_storeu_pd(acc.as_mut_ptr(), a0);
            _mm256_storeu_pd(acc.as_mut_ptr().add(4), a1);
        }
    }

    /// AVX-512 SELL chunk, `c == 8`: the chunk's 8 rows map 1:1 onto
    /// the zmm lanes; no horizontal reduction anywhere. `pf` steps of
    /// lookahead prefetch on the gathered x-lines.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn sell_chunk_avx512(
        vals: &[f64],
        cols: &[u32],
        x: &[f64],
        acc: &mut [f64],
        pf: usize,
    ) {
        debug_assert!(acc.len() == 8);
        let steps = vals.len() / 8;
        let dist = pf * 8;
        let mut a = _mm512_loadu_pd(acc.as_ptr());
        for s in 0..steps {
            let base = s * 8;
            if dist > 0 && base + dist + 8 <= vals.len() {
                for j in 0..8 {
                    _mm_prefetch::<_MM_HINT_T0>(
                        x.as_ptr().add(*cols.get_unchecked(base + dist + j) as usize) as *const i8,
                    );
                }
            }
            let idx = _mm256_loadu_si256(cols.as_ptr().add(base) as *const __m256i);
            let xv = _mm512_i32gather_pd::<8>(idx, x.as_ptr());
            let vv = _mm512_loadu_pd(vals.as_ptr().add(base));
            a = _mm512_fmadd_pd(vv, xv, a);
        }
        _mm512_storeu_pd(acc.as_mut_ptr(), a);
    }

    /// AVX-512 SELL chunk for the non-native heights `c ∈ {2..=7}`:
    /// the chunk's `c` rows occupy the low `c` zmm lanes under a
    /// constant mask; dead lanes load/gather zeros and accumulate
    /// 0·0 + 0. One masked gather + one FMA per step — the FMA fuses
    /// the multiply-add the scalar oracle rounds twice, so this path
    /// is ulp-close (not bit-exact) to scalar.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn sell_chunk_avx512_masked(
        vals: &[f64],
        cols: &[u32],
        c: usize,
        x: &[f64],
        acc: &mut [f64],
    ) {
        debug_assert!((2..=7).contains(&c) && acc.len() == c);
        let steps = vals.len() / c;
        let m: __mmask8 = ((1u16 << c) - 1) as u8;
        let mut a = _mm512_maskz_loadu_pd(m, acc.as_ptr());
        let mut s = 0usize;
        // Fast loop: a full 256-bit index load reads 8 u32 starting at
        // the step base, which is only in-bounds while 8 columns
        // remain (for c < 8 the load spills into the next steps'
        // columns — harmless, the gather mask ignores those lanes).
        while s < steps && s * c + 8 <= cols.len() {
            let base = s * c;
            let idx = _mm256_loadu_si256(cols.as_ptr().add(base) as *const __m256i);
            let xv = _mm512_mask_i32gather_pd::<8>(_mm512_setzero_pd(), m, idx, x.as_ptr());
            let vv = _mm512_maskz_loadu_pd(m, vals.as_ptr().add(base));
            a = _mm512_fmadd_pd(vv, xv, a);
            s += 1;
        }
        // Trailing steps: stage the c live indices in a stack buffer.
        while s < steps {
            let base = s * c;
            let mut buf = [0u32; 8];
            buf[..c].copy_from_slice(&cols[base..base + c]);
            let idx = _mm256_loadu_si256(buf.as_ptr() as *const __m256i);
            let xv = _mm512_mask_i32gather_pd::<8>(_mm512_setzero_pd(), m, idx, x.as_ptr());
            let vv = _mm512_maskz_loadu_pd(m, vals.as_ptr().add(base));
            a = _mm512_fmadd_pd(vv, xv, a);
            s += 1;
        }
        let mut t = [0.0f64; 8];
        _mm512_storeu_pd(t.as_mut_ptr(), a);
        acc[..c].copy_from_slice(&t[..c]);
    }

    /// Two AVX-512 c=8 SELL chunks in lockstep with two independent
    /// accumulator chains, so the second chunk's gather issues while
    /// the first's is still in flight. Chunks may have different
    /// widths: the joint loop covers the shorter one, then the longer
    /// chunk finishes alone. Per-chain operation order matches the
    /// solo kernel exactly (bit-identical results).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn sell_chunk_pair_avx512(
        v0: &[f64],
        c0: &[u32],
        v1: &[f64],
        c1: &[u32],
        x: &[f64],
        a0: &mut [f64],
        a1: &mut [f64],
        pf: usize,
    ) {
        debug_assert!(a0.len() == 8 && a1.len() == 8);
        let dist = pf * 8;
        let s0 = v0.len() / 8;
        let s1 = v1.len() / 8;
        let joint = s0.min(s1);
        let mut acc0 = _mm512_loadu_pd(a0.as_ptr());
        let mut acc1 = _mm512_loadu_pd(a1.as_ptr());
        for s in 0..joint {
            let b = s * 8;
            if dist > 0 {
                if b + dist + 8 <= v0.len() {
                    for j in 0..8 {
                        _mm_prefetch::<_MM_HINT_T0>(
                            x.as_ptr().add(*c0.get_unchecked(b + dist + j) as usize) as *const i8,
                        );
                    }
                }
                if b + dist + 8 <= v1.len() {
                    for j in 0..8 {
                        _mm_prefetch::<_MM_HINT_T0>(
                            x.as_ptr().add(*c1.get_unchecked(b + dist + j) as usize) as *const i8,
                        );
                    }
                }
            }
            let i0 = _mm256_loadu_si256(c0.as_ptr().add(b) as *const __m256i);
            let i1 = _mm256_loadu_si256(c1.as_ptr().add(b) as *const __m256i);
            let x0 = _mm512_i32gather_pd::<8>(i0, x.as_ptr());
            let x1 = _mm512_i32gather_pd::<8>(i1, x.as_ptr());
            acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(v0.as_ptr().add(b)), x0, acc0);
            acc1 = _mm512_fmadd_pd(_mm512_loadu_pd(v1.as_ptr().add(b)), x1, acc1);
        }
        for s in joint..s0 {
            let b = s * 8;
            if dist > 0 && b + dist + 8 <= v0.len() {
                for j in 0..8 {
                    _mm_prefetch::<_MM_HINT_T0>(
                        x.as_ptr().add(*c0.get_unchecked(b + dist + j) as usize) as *const i8,
                    );
                }
            }
            let i0 = _mm256_loadu_si256(c0.as_ptr().add(b) as *const __m256i);
            let x0 = _mm512_i32gather_pd::<8>(i0, x.as_ptr());
            acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(v0.as_ptr().add(b)), x0, acc0);
        }
        for s in joint..s1 {
            let b = s * 8;
            if dist > 0 && b + dist + 8 <= v1.len() {
                for j in 0..8 {
                    _mm_prefetch::<_MM_HINT_T0>(
                        x.as_ptr().add(*c1.get_unchecked(b + dist + j) as usize) as *const i8,
                    );
                }
            }
            let i1 = _mm256_loadu_si256(c1.as_ptr().add(b) as *const __m256i);
            let x1 = _mm512_i32gather_pd::<8>(i1, x.as_ptr());
            acc1 = _mm512_fmadd_pd(_mm512_loadu_pd(v1.as_ptr().add(b)), x1, acc1);
        }
        _mm512_storeu_pd(a0.as_mut_ptr(), acc0);
        _mm512_storeu_pd(a1.as_mut_ptr(), acc1);
    }

    /// SSE2 SELL chunk, even `c`: 2-lane blocks with emulated gathers.
    #[target_feature(enable = "sse2")]
    pub unsafe fn sell_chunk_sse2(
        vals: &[f64],
        cols: &[u32],
        c: usize,
        x: &[f64],
        acc: &mut [f64],
    ) {
        debug_assert!(c % 2 == 0 && acc.len() == c);
        let steps = vals.len() / c;
        for b in 0..c / 2 {
            let mut a = _mm_loadu_pd(acc.as_ptr().add(b * 2));
            for s in 0..steps {
                let base = s * c + b * 2;
                let xv = _mm_set_pd(
                    *x.get_unchecked(*cols.get_unchecked(base + 1) as usize),
                    *x.get_unchecked(*cols.get_unchecked(base) as usize),
                );
                let vv = _mm_loadu_pd(vals.as_ptr().add(base));
                a = _mm_add_pd(a, _mm_mul_pd(vv, xv));
            }
            _mm_storeu_pd(acc.as_mut_ptr().add(b * 2), a);
        }
    }
}

// ---------------------------------------------------------------------
// Ulp-tolerance contract
// ---------------------------------------------------------------------

/// Ulp distance between two doubles: the number of representable f64
/// values strictly between them (0 for equal values, including
/// `+0 == -0`; `u64::MAX` if either is NaN). Works across the zero
/// sign boundary by mapping bit patterns onto a monotone integer line.
pub fn ulp_distance(a: f64, b: f64) -> u64 {
    if a == b {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    // Sign-magnitude -> offset binary, monotone in the real ordering.
    fn key(x: f64) -> i64 {
        let bits = x.to_bits() as i64;
        if bits < 0 {
            i64::MIN.wrapping_add(bits.wrapping_neg())
        } else {
            bits
        }
    }
    key(a).abs_diff(key(b))
}

/// Per-kernel ulp bound for SpMV results. Reassociating a k-term dot
/// product perturbs the result by O(k) ulps of the running sum; the
/// catalog's widest kernels were measured at < 450 ulps on 10^4-term
/// rows, so 1024 gives ~2× headroom without masking real bugs (a wrong
/// gather or dropped tail lands orders of magnitude outside it).
pub const SPMV_MAX_ULPS: u64 = 1024;

/// Absolute floor accompanying [`SPMV_MAX_ULPS`]: when two results
/// differ by less than this, they pass regardless of ulp distance.
/// Near-total cancellation leaves results of magnitude ~1e-13 whose
/// ulp spacing is ~1e-29 — relative comparison is meaningless there.
pub const SPMV_ABS_FLOOR: f64 = 1e-9;

/// True when `got` is within `max_ulps` ulps of `want` *or* within the
/// absolute floor (see [`SPMV_ABS_FLOOR`] for why both are needed).
pub fn ulp_close(got: f64, want: f64, max_ulps: u64, abs_floor: f64) -> bool {
    ulp_distance(got, want) <= max_ulps || (got - want).abs() <= abs_floor
}

/// Asserts element-wise ulp-tolerance between a kernel result and its
/// scalar oracle, with a diagnostic naming the worst element.
///
/// # Panics
///
/// On length mismatch or any element outside both the ulp bound and
/// the absolute floor.
pub fn assert_ulp_close(got: &[f64], want: &[f64], max_ulps: u64, abs_floor: f64, ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length mismatch");
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        assert!(
            ulp_close(g, w, max_ulps, abs_floor),
            "{ctx}: element {i}: got {g:e}, want {w:e} ({} ulps apart, bound {max_ulps}, \
             abs floor {abs_floor:e})",
            ulp_distance(g, w)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_problem(n: usize, ncols: usize, seed: u64) -> (Vec<f64>, Vec<u32>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let vals = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let cols = (0..n).map(|_| rng.gen_range(0..ncols as u32)).collect();
        let x = (0..ncols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        (vals, cols, x)
    }

    const ALL: [SimdIsa; 5] =
        [SimdIsa::Scalar, SimdIsa::Portable, SimdIsa::Sse2, SimdIsa::Avx2, SimdIsa::Avx512];

    /// Levels actually runnable on this host (always includes Scalar;
    /// Portable is compiled everywhere so it is always runnable too).
    fn runnable() -> Vec<SimdIsa> {
        ALL.into_iter().filter(|&isa| isa == SimdIsa::Portable || isa <= detected()).collect()
    }

    #[test]
    fn lanes_names_and_ordering() {
        assert!(SimdIsa::Scalar < SimdIsa::Portable && SimdIsa::Portable < SimdIsa::Sse2);
        assert!(SimdIsa::Sse2 < SimdIsa::Avx2 && SimdIsa::Avx2 < SimdIsa::Avx512);
        for isa in ALL {
            assert_eq!(SimdIsa::from_u8(isa.to_u8()), isa);
            if isa != SimdIsa::Portable {
                // widest_for_lanes inverts lanes() for the x86 levels;
                // Portable shares the 2-lane slot with Sse2 and is
                // deliberately never produced from a width.
                assert_eq!(SimdIsa::widest_for_lanes(isa.lanes()), isa);
            }
        }
        assert_eq!(SimdIsa::widest_for_lanes(SimdIsa::Portable.lanes()), SimdIsa::Sse2);
        assert_eq!(SimdIsa::Avx512.lanes(), 8);
        assert_eq!(SimdIsa::Portable.lanes(), 2);
        assert_eq!(SimdIsa::Avx2.name(), "avx2");
        assert_eq!(SimdIsa::Portable.name(), "portable2");
        assert_eq!(SimdIsa::widest_for_lanes(0), SimdIsa::Scalar);
        assert_eq!(SimdIsa::widest_for_lanes(6), SimdIsa::Avx2);
        assert_eq!(SimdIsa::widest_for_lanes(64), SimdIsa::Avx512);
    }

    #[test]
    fn parse_accepts_widths_and_names() {
        assert_eq!(parse_wise_simd(None), Ok(None));
        for (s, isa) in [
            ("0", SimdIsa::Scalar),
            ("off", SimdIsa::Scalar),
            ("Scalar", SimdIsa::Scalar),
            ("1", SimdIsa::Scalar),
            ("portable", SimdIsa::Portable),
            ("Portable2", SimdIsa::Portable),
            ("2", SimdIsa::Sse2),
            ("sse2", SimdIsa::Sse2),
            ("4", SimdIsa::Avx2),
            ("AVX2", SimdIsa::Avx2),
            ("8", SimdIsa::Avx512),
            ("avx512", SimdIsa::Avx512),
            (" avx512f ", SimdIsa::Avx512),
        ] {
            assert_eq!(parse_wise_simd(Some(s)), Ok(Some(isa)), "input {s:?}");
        }
    }

    #[test]
    fn parse_rejects_garbage_loudly() {
        assert_eq!(parse_wise_simd(Some("")), Err(KnobError::Empty { knob: "WISE_SIMD" }));
        assert_eq!(parse_wise_simd(Some("  ")), Err(KnobError::Empty { knob: "WISE_SIMD" }));
        for bad in ["3", "16", "-4", "avx", "wide", "8 lanes"] {
            let err = parse_wise_simd(Some(bad)).unwrap_err();
            match &err {
                KnobError::Invalid { knob: "WISE_SIMD", value, .. } => {
                    assert_eq!(value, bad.trim(), "input {bad:?}");
                }
                other => panic!("input {bad:?}: unexpected error {other:?}"),
            }
            assert!(err.to_string().contains("WISE_SIMD"));
        }
    }

    #[test]
    fn parse_prefetch_accepts_distances_and_auto() {
        assert_eq!(parse_wise_prefetch(None), Ok(None));
        assert_eq!(parse_wise_prefetch(Some("auto")), Ok(None));
        assert_eq!(parse_wise_prefetch(Some(" AUTO ")), Ok(None));
        assert_eq!(parse_wise_prefetch(Some("0")), Ok(Some(0)));
        assert_eq!(parse_wise_prefetch(Some("8")), Ok(Some(8)));
        assert_eq!(parse_wise_prefetch(Some(" 12 ")), Ok(Some(12)));
        // Distances clamp at MAX_PREFETCH instead of erroring.
        assert_eq!(parse_wise_prefetch(Some("10000")), Ok(Some(MAX_PREFETCH)));
    }

    #[test]
    fn parse_prefetch_rejects_garbage_loudly() {
        assert_eq!(parse_wise_prefetch(Some("")), Err(KnobError::Empty { knob: "WISE_PREFETCH" }));
        assert_eq!(
            parse_wise_prefetch(Some("  ")),
            Err(KnobError::Empty { knob: "WISE_PREFETCH" })
        );
        for bad in ["-1", "2.5", "far", "8 steps"] {
            let err = parse_wise_prefetch(Some(bad)).unwrap_err();
            match &err {
                KnobError::Invalid { knob: "WISE_PREFETCH", value, .. } => {
                    assert_eq!(value, bad.trim(), "input {bad:?}");
                }
                other => panic!("input {bad:?}: unexpected error {other:?}"),
            }
            assert!(err.to_string().contains("WISE_PREFETCH"));
        }
    }

    #[test]
    fn prefetch_policy_and_override() {
        // Pure policy first (no global state).
        let small = (INTERLEAVE_MAX_X_BYTES / 8) / 2;
        let big = PREFETCH_MIN_X_BYTES / 8 + 1;
        assert_eq!(auto_prefetch_distance(SimdIsa::Avx512, small), 0);
        assert_eq!(auto_prefetch_distance(SimdIsa::Avx512, big), 8);
        assert_eq!(auto_prefetch_distance(SimdIsa::Avx2, big), 8);
        assert_eq!(auto_prefetch_distance(SimdIsa::Sse2, big), 0);
        assert_eq!(auto_prefetch_distance(SimdIsa::Portable, big), 0);
        assert_eq!(auto_prefetch_distance(SimdIsa::Scalar, big), 0);
        assert_eq!(auto_csr_interleave(SimdIsa::Avx512, small), 2);
        assert_eq!(auto_csr_interleave(SimdIsa::Avx512, big), 1);
        assert_eq!(auto_csr_interleave(SimdIsa::Avx2, small), 1);
        assert_eq!(auto_sell_interleave(SimdIsa::Avx512, 8), 2);
        assert_eq!(auto_sell_interleave(SimdIsa::Avx512, 4), 1);
        assert_eq!(auto_sell_interleave(SimdIsa::Avx2, 8), 1);
        // Override round-trip (single test fn: the atomic is global).
        let prior = prefetch_override();
        set_prefetch(Some(3));
        assert_eq!(prefetch_override(), Some(3));
        assert_eq!(prefetch_distance(SimdIsa::Avx512, small), 3);
        assert_eq!(prefetch_distance(SimdIsa::Scalar, big), 0);
        set_prefetch(Some(MAX_PREFETCH + 10));
        assert_eq!(prefetch_override(), Some(MAX_PREFETCH));
        set_prefetch(None);
        assert_eq!(prefetch_override(), None);
        assert_eq!(prefetch_distance(SimdIsa::Avx512, big), 8);
        assert_eq!(prefetch_distance(SimdIsa::Avx512, small), 0);
        set_prefetch(prior);
    }

    #[test]
    fn detect_is_stable_and_active_is_runnable() {
        assert_eq!(detected(), detect_raw());
        assert!(active() <= detected());
    }

    #[test]
    fn resolve_respects_width_requests() {
        let cap = active();
        assert_eq!(resolve(0, 100), cap);
        assert_eq!(resolve(1, 100), SimdIsa::Scalar);
        assert_eq!(resolve(2, 100), SimdIsa::Sse2.min(cap));
        assert_eq!(resolve(4, 100), SimdIsa::Avx2.min(cap));
        assert_eq!(resolve(8, 100), SimdIsa::Avx512.min(cap));
        // Signed 32-bit gather indices cannot address a wider x —
        // including under an explicit width request (the satellite-2
        // regression: v=8 must not survive the bound).
        assert_eq!(resolve(0, i32::MAX as usize + 1), SimdIsa::Scalar);
        assert_eq!(resolve(8, i32::MAX as usize + 1), SimdIsa::Scalar);
        // And the per-kernel-call clamp applies the same rule.
        assert_eq!(clamp_isa(SimdIsa::Avx512, i32::MAX as usize + 1), SimdIsa::Scalar);
        assert_eq!(clamp_isa(SimdIsa::Avx512, 100), SimdIsa::Avx512.min(detected()));
    }

    #[test]
    fn csr_row_matches_scalar_for_every_residue() {
        let (vals, cols, x) = rand_problem(67, 512, 7);
        for isa in runnable() {
            for len in 0..=vals.len() {
                let want = csr_row_scalar(&vals[..len], &cols[..len], &x);
                let got = unsafe { csr_row(isa, &vals[..len], &cols[..len], &x) };
                assert!(
                    ulp_close(got, want, SPMV_MAX_ULPS, SPMV_ABS_FLOOR),
                    "{isa:?} len={len}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn csr_row_results_do_not_depend_on_prefetch_distance() {
        let (vals, cols, x) = rand_problem(333, 512, 11);
        for isa in runnable() {
            let base = unsafe { csr_row_pf(isa, &vals, &cols, &x, 0) };
            for pf in [1usize, 2, 8, MAX_PREFETCH] {
                let got = unsafe { csr_row_pf(isa, &vals, &cols, &x, pf) };
                assert_eq!(got.to_bits(), base.to_bits(), "{isa:?} pf={pf}");
            }
        }
    }

    #[test]
    fn csr_rows_interleave_is_bit_identical_to_solo_rows() {
        let (vals, cols, x) = rand_problem(500, 512, 13);
        // Ragged row layout, including empty and sub-vector rows.
        let bounds = [0usize, 0, 5, 64, 100, 173, 296, 500];
        for isa in runnable() {
            for pf in [0usize, 4] {
                let mut solo = Vec::new();
                for w in bounds.windows(2) {
                    solo.push(unsafe {
                        csr_row_pf(isa, &vals[w[0]..w[1]], &cols[w[0]..w[1]], &x, pf)
                    });
                }
                // R = 2 and R = 4 blocks over the same rows.
                let mut blocked = Vec::new();
                let ranges4 = [
                    (bounds[0], bounds[1]),
                    (bounds[1], bounds[2]),
                    (bounds[2], bounds[3]),
                    (bounds[3], bounds[4]),
                ];
                blocked.extend(unsafe { csr_rows_pf::<4>(isa, &ranges4, &vals, &cols, &x, pf) });
                let ranges2 = [(bounds[4], bounds[5]), (bounds[5], bounds[6])];
                blocked.extend(unsafe { csr_rows_pf::<2>(isa, &ranges2, &vals, &cols, &x, pf) });
                blocked.extend(unsafe {
                    csr_rows_pf::<1>(isa, &[(bounds[6], bounds[7])], &vals, &cols, &x, pf)
                });
                assert_eq!(solo.len(), blocked.len());
                for (i, (s, b)) in solo.iter().zip(&blocked).enumerate() {
                    assert_eq!(s.to_bits(), b.to_bits(), "{isa:?} pf={pf} row {i}");
                }
            }
        }
    }

    #[test]
    fn sell_chunk_matches_scalar_for_both_widths() {
        for &c in &[4usize, 8] {
            for width in [0usize, 1, 2, 3, 17, 33] {
                let (vals, cols, x) = rand_problem(width * c, 512, width as u64 * 31 + c as u64);
                let mut want = vec![0.1f64; c]; // nonzero start: contract accumulates
                sell_chunk_scalar(&vals, &cols, c, &x, &mut want);
                for isa in runnable() {
                    let mut got = vec![0.1f64; c];
                    unsafe { sell_chunk(isa, &vals, &cols, c, &x, &mut got) };
                    assert_ulp_close(
                        &got,
                        &want,
                        SPMV_MAX_ULPS,
                        SPMV_ABS_FLOOR,
                        &format!("{isa:?} c={c} width={width}"),
                    );
                }
            }
        }
    }

    #[test]
    fn sell_chunk_masked_heights_match_scalar() {
        // c ∈ {2, 3, 5, 6, 7} run the AVX-512 masked path when the
        // host has it; every level must stay inside the ulp contract,
        // including widths whose trailing steps need the staged-index
        // loop (total columns < 8).
        for &c in &[2usize, 3, 5, 6, 7] {
            for width in [0usize, 1, 2, 3, 9, 40] {
                let (vals, cols, x) = rand_problem(width * c, 256, width as u64 * 17 + c as u64);
                let mut want = vec![0.25f64; c];
                sell_chunk_scalar(&vals, &cols, c, &x, &mut want);
                for isa in runnable() {
                    let mut got = vec![0.25f64; c];
                    unsafe { sell_chunk(isa, &vals, &cols, c, &x, &mut got) };
                    assert_ulp_close(
                        &got,
                        &want,
                        SPMV_MAX_ULPS,
                        SPMV_ABS_FLOOR,
                        &format!("{isa:?} c={c} width={width}"),
                    );
                }
            }
        }
    }

    #[test]
    fn sell_chunk_pair_is_bit_identical_to_sequential_chunks() {
        let c = 8usize;
        // Different widths so the joint loop + solo-tail path runs.
        for (w0, w1) in [(0usize, 5usize), (7, 7), (12, 3), (1, 0)] {
            let (v0, c0, x) = rand_problem(w0 * c, 512, 71 + w0 as u64);
            let (v1, c1, _) = rand_problem(w1 * c, 512, 171 + w1 as u64);
            for isa in runnable() {
                for pf in [0usize, 4] {
                    let mut s0 = vec![0.5f64; c];
                    let mut s1 = vec![-0.5f64; c];
                    unsafe {
                        sell_chunk_pf(isa, &v0, &c0, c, &x, &mut s0, pf);
                        sell_chunk_pf(isa, &v1, &c1, c, &x, &mut s1, pf);
                    }
                    let mut p0 = vec![0.5f64; c];
                    let mut p1 = vec![-0.5f64; c];
                    unsafe {
                        sell_chunk_pair(isa, &v0, &c0, &mut p0, &v1, &c1, &mut p1, c, &x, pf)
                    };
                    let key = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
                    assert_eq!(key(&s0), key(&p0), "{isa:?} pf={pf} w=({w0},{w1}) chunk0");
                    assert_eq!(key(&s1), key(&p1), "{isa:?} pf={pf} w=({w0},{w1}) chunk1");
                }
            }
        }
    }

    #[test]
    fn sell_chunk_odd_width_is_scalar_or_masked() {
        // c = 6: AVX2 has no vector path and must produce the
        // bit-exact scalar result; AVX-512 runs the masked kernel,
        // which is ulp-close (FMA fuses what scalar rounds twice).
        let c = 6usize;
        let (vals, cols, x) = rand_problem(5 * c, 128, 3);
        let mut want = vec![0.0f64; c];
        sell_chunk_scalar(&vals, &cols, c, &x, &mut want);
        let mut got = vec![0.0f64; c];
        unsafe { sell_chunk(SimdIsa::Avx2, &vals, &cols, c, &x, &mut got) };
        assert_eq!(got, want, "Avx2 must fall back to the exact scalar loop");
        let mut got = vec![0.0f64; c];
        unsafe { sell_chunk(SimdIsa::Avx512, &vals, &cols, c, &x, &mut got) };
        assert_ulp_close(&got, &want, SPMV_MAX_ULPS, SPMV_ABS_FLOOR, "Avx512 masked c=6");
    }

    #[test]
    fn portable_kernels_honor_the_contract() {
        let (vals, cols, x) = rand_problem(129, 512, 23);
        let want = csr_row_scalar(&vals, &cols, &x);
        let got = portable::csr_row(&vals, &cols, &x);
        assert!(
            ulp_close(got, want, SPMV_MAX_ULPS, SPMV_ABS_FLOOR),
            "portable csr_row: {got} vs {want}"
        );
        // The portable SELL chunk keeps scalar accumulation order and
        // must be bit-exact.
        for c in [2usize, 4, 8] {
            let (vals, cols, x) = rand_problem(9 * c, 128, c as u64);
            let mut want = vec![0.0f64; c];
            sell_chunk_scalar(&vals, &cols, c, &x, &mut want);
            let mut got = vec![0.0f64; c];
            portable::sell_chunk(&vals, &cols, c, &x, &mut got);
            assert_eq!(got, want, "portable sell_chunk c={c}");
            // And the dispatcher reaches it when Portable is requested.
            let mut via = vec![0.0f64; c];
            unsafe { sell_chunk(SimdIsa::Portable, &vals, &cols, c, &x, &mut via) };
            assert_eq!(via, want, "dispatched portable sell_chunk c={c}");
        }
    }

    #[test]
    fn ulp_distance_properties() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(ulp_distance(1.0, f64::from_bits(1.0f64.to_bits() + 1)), 1);
        assert_eq!(ulp_distance(1.0, f64::NAN), u64::MAX);
        // Straddling zero: distance counts representable values between.
        let tiny = f64::from_bits(1); // smallest positive subnormal
        assert_eq!(ulp_distance(tiny, -tiny), 2);
        assert!(ulp_distance(1.0, 2.0) == 1u64 << 52);
    }

    #[test]
    fn ulp_close_uses_absolute_floor_near_zero() {
        // 1e-13 vs -1e-13: astronomically many ulps apart, but within
        // any reasonable cancellation floor.
        assert!(!ulp_close(1e-13, -1e-13, SPMV_MAX_ULPS, 0.0));
        assert!(ulp_close(1e-13, -1e-13, SPMV_MAX_ULPS, SPMV_ABS_FLOOR));
        assert!(!ulp_close(1.0, 1.5, SPMV_MAX_ULPS, SPMV_ABS_FLOOR));
    }

    #[test]
    #[should_panic(expected = "ulps apart")]
    fn assert_ulp_close_panics_outside_bound() {
        assert_ulp_close(&[1.0], &[1.0 + 1e-6], 16, 1e-12, "unit");
    }
}
