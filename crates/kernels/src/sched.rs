//! Row/chunk scheduling policies (paper Section 2.1).
//!
//! SpMV work is divided into *chunks* (K consecutive rows for CSR, one
//! SRVPack chunk of `c` rows for the vectorized methods). The paper's
//! three policies differ in how chunks are assigned to threads:
//!
//! * **Dyn** — threads grab the next unprocessed chunk from a shared
//!   atomic counter (OpenMP `schedule(dynamic)`); balances skewed
//!   work at the cost of one atomic RMW per grab.
//! * **St** — chunks are dealt round-robin (`schedule(static, K)`);
//!   zero runtime overhead, interleaves hot/cold regions.
//! * **StCont** — each thread gets one contiguous block of chunks
//!   (`schedule(static)`); zero overhead, best spatial locality, worst
//!   balance under skew.
//!
//! Two executors realize these policies, sharing one per-thread chunk
//! loop ([`Executor`]):
//!
//! * **Pool** (default) — the persistent worker pool of [`crate::pool`];
//!   a dispatch costs a condvar handoff instead of OS thread creation,
//!   which matters enormously when SpMV is called in a timing loop.
//! * **Spawn** — fresh `std::thread::scope` threads per call; the
//!   original executor, kept as the parity oracle (`pool_parity` test
//!   suite) and as an escape hatch (`WISE_POOL=0`).
//!
//! Neither executor is a work-stealing pool (rayon would blur the
//! Dyn/St/StCont distinctions the paper studies): a logical thread `t`
//! runs exactly the chunks the policy assigns to `t`, and because both
//! executors call the *same* [`thread_chunk_loop`], their chunk→thread
//! assignments are identical by construction.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use wise_trace::env_knob::{Knob, KnobError};

/// A chunk-to-thread scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Schedule {
    /// Dynamic self-scheduling via a shared counter.
    Dyn,
    /// Static round-robin over chunks.
    St,
    /// Static contiguous block per thread.
    StCont,
}

impl Schedule {
    /// All policies, in the paper's order.
    pub const ALL: [Schedule; 3] = [Schedule::Dyn, Schedule::St, Schedule::StCont];

    /// Paper abbreviation.
    pub fn name(&self) -> &'static str {
        match self {
            Schedule::Dyn => "Dyn",
            Schedule::St => "St",
            Schedule::StCont => "StCont",
        }
    }

    /// Inverse of [`Schedule::name`] (used by `MethodConfig::parse`).
    pub fn parse(name: &str) -> Option<Schedule> {
        Schedule::ALL.into_iter().find(|s| s.name() == name)
    }
}

// ---------------------------------------------------------------------
// Thread-count resolution
// ---------------------------------------------------------------------

/// The `WISE_THREADS` knob, on the shared [`wise_trace::env_knob`]
/// grammar.
const THREADS_KNOB: Knob = Knob::new("WISE_THREADS", "a positive integer");

/// Parses a raw `WISE_THREADS` value. `Ok(None)` means the variable is
/// unset (use the hardware default); `Err` means it is set but
/// malformed — including `0`, since a zero-thread pool cannot make
/// progress — which [`default_threads`] reports loudly instead of
/// silently ignoring.
pub fn parse_wise_threads(raw: Option<&str>) -> Result<Option<usize>, KnobError> {
    THREADS_KNOB.parse(raw, |norm| match norm.parse::<usize>() {
        Ok(0) | Err(_) => None,
        Ok(n) => Some(n),
    })
}

/// Number of worker threads to use: the `WISE_THREADS` environment
/// variable if set, otherwise `std::thread::available_parallelism()`.
///
/// A malformed `WISE_THREADS` (empty, `0`, non-numeric) falls back to
/// the hardware default *loudly*: one warning on stderr (per process)
/// plus a `sched.threads_env_invalid` trace counter, so a typo in a
/// benchmark script cannot silently change what was measured.
pub fn default_threads() -> usize {
    let hardware = || std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    THREADS_KNOB
        .read("sched.threads_env_invalid", "falling back to available_parallelism()", |norm| {
            match norm.parse::<usize>() {
                Ok(0) | Err(_) => None,
                Ok(n) => Some(n),
            }
        })
        .unwrap_or_else(hardware)
}

// ---------------------------------------------------------------------
// Disjoint output writer
// ---------------------------------------------------------------------

/// Shared mutable slice for disjoint-index parallel writes.
///
/// Each chunk of an SpMV kernel writes a set of output rows disjoint
/// from every other chunk's, so concurrent `write`s never alias. The
/// type exists to express that contract where `&mut [f64]` cannot be
/// shared across threads.
///
/// # Why this is sound
///
/// * **No data race:** the contract on [`Self::write`]/[`Self::add`]
///   requires that no index is targeted by two threads during the
///   writer's lifetime. In the kernels this holds structurally — CSR
///   chunks own disjoint row ranges (`chunk * rows_per_chunk ..`), and
///   an SRVPack segment's `row_order` contains each row at most once,
///   with segments processed sequentially under a full barrier
///   (`parallel_for_chunks` returns only when every chunk finished).
/// * **No reference aliasing:** `new` consumes the `&mut [T]` into a
///   raw pointer; no Rust reference to any element exists between
///   `new` and the writer's drop, so the writes cannot invalidate a
///   live `&`/`&mut`. All accesses go through raw-pointer writes,
///   which the disjointness contract makes race-free.
/// * **No out-of-bounds:** both methods `debug_assert!(index < len)`
///   and their contract requires it; callers derive indices from CSR /
///   pack invariants validated at construction.
pub struct DisjointWriter<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: writes are only issued through `write`/`add`, whose contract
// requires callers to target disjoint indices per thread (see the
// soundness notes on the type).
unsafe impl<T: Send> Sync for DisjointWriter<'_, T> {}
unsafe impl<T: Send> Send for DisjointWriter<'_, T> {}

impl<'a, T> DisjointWriter<'a, T> {
    pub fn new(slice: &'a mut [T]) -> Self {
        DisjointWriter {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety
    /// No two threads may write the same `index` during the lifetime of
    /// this writer, and `index < len()`.
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.len);
        unsafe { *self.ptr.add(index) = value };
    }

    /// Adds `value` into `index` (same contract as [`Self::write`]).
    ///
    /// # Safety
    /// See [`Self::write`].
    #[inline]
    pub unsafe fn add(&self, index: usize, value: T)
    where
        T: std::ops::AddAssign + Copy,
    {
        debug_assert!(index < self.len);
        unsafe { *self.ptr.add(index) += value };
    }
}

// ---------------------------------------------------------------------
// Executors
// ---------------------------------------------------------------------

/// Which mechanism carries the per-thread chunk loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Executor {
    /// The persistent worker pool ([`crate::pool`]); the default.
    Pool,
    /// Fresh scoped threads per call — the original executor, kept as
    /// the parity oracle and the `WISE_POOL=0` escape hatch.
    Spawn,
}

const EXEC_UNINIT: u8 = 0;
const EXEC_POOL: u8 = 1;
const EXEC_SPAWN: u8 = 2;

/// Process-wide executor choice; resolved from `WISE_POOL` on first
/// use, overridable via [`set_executor`].
static EXECUTOR: AtomicU8 = AtomicU8::new(EXEC_UNINIT);

/// The executor `parallel_for_chunks` currently routes through:
/// [`Executor::Pool`] unless `WISE_POOL` is set to `0`, `off` or
/// `spawn` (or [`set_executor`] said otherwise).
pub fn executor() -> Executor {
    match EXECUTOR.load(Ordering::Relaxed) {
        EXEC_POOL => Executor::Pool,
        EXEC_SPAWN => Executor::Spawn,
        _ => {
            let exec = match std::env::var("WISE_POOL").ok().as_deref().map(str::trim) {
                Some("0") | Some("off") | Some("spawn") => Executor::Spawn,
                _ => Executor::Pool,
            };
            set_executor(exec);
            exec
        }
    }
}

/// Overrides the process-wide executor (benchmarks compare the two;
/// tests pin one side).
pub fn set_executor(executor: Executor) {
    let v = match executor {
        Executor::Pool => EXEC_POOL,
        Executor::Spawn => EXEC_SPAWN,
    };
    EXECUTOR.store(v, Ordering::Relaxed);
}

/// The per-thread chunk loop shared *verbatim* by both executors, so
/// their chunk→thread assignments cannot drift apart: logical thread
/// `t` of `nthreads` executes exactly the chunks `schedule` assigns to
/// `t` (for Dyn, whatever it wins from the shared `counter`).
#[inline]
fn thread_chunk_loop<F: Fn(usize) + Sync>(
    t: usize,
    nthreads: usize,
    nchunks: usize,
    schedule: Schedule,
    grain: usize,
    counter: &AtomicUsize,
    body: &F,
) {
    match schedule {
        Schedule::Dyn => loop {
            let start = counter.fetch_add(grain, Ordering::Relaxed);
            if start >= nchunks {
                break;
            }
            for i in start..(start + grain).min(nchunks) {
                body(i);
            }
        },
        Schedule::St => {
            // Blocks of `grain` chunks, dealt round-robin.
            let mut block = t;
            loop {
                let start = block * grain;
                if start >= nchunks {
                    break;
                }
                for i in start..(start + grain).min(nchunks) {
                    body(i);
                }
                block += nthreads;
            }
        }
        Schedule::StCont => {
            let lo = t * nchunks / nthreads;
            let hi = (t + 1) * nchunks / nthreads;
            for i in lo..hi {
                body(i);
            }
        }
    }
}

/// Runs `body(chunk_index)` for every chunk in `0..nchunks` across
/// `nthreads` threads under the given policy, using the process-wide
/// [`executor`] (the persistent pool by default).
///
/// `grain` is the number of consecutive chunks a thread takes at once
/// for Dyn/St (the paper's "K rows at a time" granularity knob, in
/// units of chunks). StCont ignores `grain`.
///
/// Single-thread calls and tiny jobs (`nchunks <= grain`) run inline on
/// the caller — no dispatch at all.
pub fn parallel_for_chunks<F>(
    nchunks: usize,
    nthreads: usize,
    schedule: Schedule,
    grain: usize,
    body: F,
) where
    F: Fn(usize) + Sync,
{
    parallel_for_chunks_with(executor(), nchunks, nthreads, schedule, grain, body)
}

/// [`parallel_for_chunks`] on the spawn executor — the reference the
/// parity suite compares the pool against.
pub fn parallel_for_chunks_spawn<F>(
    nchunks: usize,
    nthreads: usize,
    schedule: Schedule,
    grain: usize,
    body: F,
) where
    F: Fn(usize) + Sync,
{
    parallel_for_chunks_with(Executor::Spawn, nchunks, nthreads, schedule, grain, body)
}

/// [`parallel_for_chunks`] with an explicit executor choice.
pub fn parallel_for_chunks_with<F>(
    executor: Executor,
    nchunks: usize,
    nthreads: usize,
    schedule: Schedule,
    grain: usize,
    body: F,
) where
    F: Fn(usize) + Sync,
{
    let grain = grain.max(1);
    if nthreads <= 1 || nchunks <= grain {
        for i in 0..nchunks {
            body(i);
        }
        return;
    }
    let nthreads = nthreads.min(nchunks);
    let counter = AtomicUsize::new(0);
    // Nested parallelism (a body that itself calls parallel_for_chunks)
    // must not dispatch to the pool from inside a pool worker — that
    // would wait on a job the pool cannot start. Reroute to spawn.
    let use_pool = executor == Executor::Pool && crate::pool::current_worker_index().is_none();
    if use_pool {
        crate::pool::global().run(nthreads, &|t| {
            thread_chunk_loop(t, nthreads, nchunks, schedule, grain, &counter, &body)
        });
    } else {
        std::thread::scope(|s| {
            for t in 0..nthreads {
                let body = &body;
                let counter = &counter;
                s.spawn(move || {
                    crate::pool::with_worker_index(t, || {
                        thread_chunk_loop(t, nthreads, nchunks, schedule, grain, counter, body)
                    })
                });
            }
        });
    }
}

/// Returns, for each thread, the list of chunk indices it would execute
/// under `schedule` — the *assignment function* used by the performance
/// model (`wise-perf`) to compute load imbalance without running
/// threads. Dyn is excluded: its assignment is timing-dependent and the
/// model simulates it with list scheduling instead.
pub fn static_assignment(
    nchunks: usize,
    nthreads: usize,
    schedule: Schedule,
    grain: usize,
) -> Vec<Vec<usize>> {
    let grain = grain.max(1);
    let nthreads = nthreads.max(1);
    let mut out = vec![Vec::new(); nthreads];
    match schedule {
        Schedule::St => {
            let mut block = 0usize;
            loop {
                let start = block * grain;
                if start >= nchunks {
                    break;
                }
                let t = block % nthreads;
                out[t].extend(start..(start + grain).min(nchunks));
                block += 1;
            }
        }
        Schedule::StCont => {
            for (t, chunks) in out.iter_mut().enumerate() {
                let lo = t * nchunks / nthreads;
                let hi = (t + 1) * nchunks / nthreads;
                chunks.extend(lo..hi);
            }
        }
        Schedule::Dyn => panic!("Dyn has no static assignment; use list-scheduling simulation"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn covers_all_with(
        exec: Executor,
        schedule: Schedule,
        nchunks: usize,
        nthreads: usize,
        grain: usize,
    ) {
        let hits: Vec<AtomicU64> = (0..nchunks).map(|_| AtomicU64::new(0)).collect();
        parallel_for_chunks_with(exec, nchunks, nthreads, schedule, grain, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "chunk {i} under {schedule:?} ({exec:?})");
        }
    }

    #[test]
    fn every_schedule_covers_every_chunk_exactly_once() {
        for exec in [Executor::Pool, Executor::Spawn] {
            for sched in Schedule::ALL {
                for &(n, t, g) in
                    &[(1usize, 1usize, 1usize), (7, 3, 1), (100, 4, 8), (64, 8, 16), (5, 8, 2)]
                {
                    covers_all_with(exec, sched, n, t, g);
                }
            }
        }
    }

    #[test]
    fn zero_chunks_is_fine() {
        for sched in Schedule::ALL {
            parallel_for_chunks(0, 4, sched, 1, |_| panic!("no chunks"));
        }
    }

    #[test]
    fn static_assignment_partitions() {
        for sched in [Schedule::St, Schedule::StCont] {
            for &(n, t, g) in &[(10usize, 3usize, 1usize), (64, 4, 8), (7, 16, 2)] {
                let a = static_assignment(n, t, sched, g);
                let mut all: Vec<usize> = a.into_iter().flatten().collect();
                all.sort_unstable();
                assert_eq!(all, (0..n).collect::<Vec<_>>(), "{sched:?} n={n} t={t} g={g}");
            }
        }
    }

    #[test]
    fn stcont_blocks_are_contiguous() {
        let a = static_assignment(100, 4, Schedule::StCont, 1);
        for chunks in &a {
            for w in chunks.windows(2) {
                assert_eq!(w[1], w[0] + 1);
            }
        }
        // Balanced to within one chunk.
        let sizes: Vec<_> = a.iter().map(|c| c.len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn st_round_robin_pattern() {
        let a = static_assignment(8, 2, Schedule::St, 2);
        assert_eq!(a[0], vec![0, 1, 4, 5]);
        assert_eq!(a[1], vec![2, 3, 6, 7]);
    }

    #[test]
    fn disjoint_writer_single_thread() {
        let mut v = vec![0.0f64; 4];
        {
            let w = DisjointWriter::new(&mut v);
            unsafe {
                w.write(1, 2.5);
                w.add(1, 0.5);
                w.write(3, 1.0);
            }
        }
        assert_eq!(v, vec![0.0, 3.0, 0.0, 1.0]);
    }

    #[test]
    fn default_threads_env_override() {
        // Can't set env safely in parallel tests; just check it returns >= 1.
        assert!(default_threads() >= 1);
    }

    #[test]
    fn wise_threads_parse_paths() {
        assert_eq!(parse_wise_threads(None), Ok(None));
        assert_eq!(parse_wise_threads(Some("4")), Ok(Some(4)));
        assert_eq!(parse_wise_threads(Some(" 16 ")), Ok(Some(16)));
        assert_eq!(parse_wise_threads(Some("")), Err(KnobError::Empty { knob: "WISE_THREADS" }));
        assert_eq!(parse_wise_threads(Some("   ")), Err(KnobError::Empty { knob: "WISE_THREADS" }));
        // Zero, words and negatives are all rejected by the shared
        // grammar with a self-describing message.
        for bad in ["0", "four", "-2"] {
            let err = parse_wise_threads(Some(bad)).unwrap_err();
            assert!(matches!(err, KnobError::Invalid { knob: "WISE_THREADS", .. }), "{bad:?}");
            assert!(err.to_string().contains("WISE_THREADS"), "{err}");
            assert!(err.to_string().contains("positive integer"), "{err}");
        }
    }

    #[test]
    fn executors_produce_identical_static_assignments() {
        // Spot-check here; the exhaustive version (incl. kernels) lives
        // in tests/pool_parity.rs.
        use std::sync::Mutex;
        for exec in [Executor::Pool, Executor::Spawn] {
            let owners = Mutex::new(vec![usize::MAX; 24]);
            parallel_for_chunks_with(exec, 24, 3, Schedule::St, 2, |i| {
                let t = crate::pool::current_worker_index().unwrap_or(0);
                owners.lock().unwrap()[i] = t;
            });
            let owners = owners.into_inner().unwrap();
            let want = static_assignment(24, 3, Schedule::St, 2);
            for (t, chunks) in want.iter().enumerate() {
                for &c in chunks {
                    assert_eq!(owners[c], t, "chunk {c} ({exec:?})");
                }
            }
        }
    }
}
