//! Row/chunk scheduling policies (paper Section 2.1).
//!
//! SpMV work is divided into *chunks* (K consecutive rows for CSR, one
//! SRVPack chunk of `c` rows for the vectorized methods). The paper's
//! three policies differ in how chunks are assigned to threads:
//!
//! * **Dyn** — threads grab the next unprocessed chunk from a shared
//!   atomic counter (OpenMP `schedule(dynamic)`); balances skewed
//!   work at the cost of one atomic RMW per grab.
//! * **St** — chunks are dealt round-robin (`schedule(static, K)`);
//!   zero runtime overhead, interleaves hot/cold regions.
//! * **StCont** — each thread gets one contiguous block of chunks
//!   (`schedule(static)`); zero overhead, best spatial locality, worst
//!   balance under skew.
//!
//! The executor uses `std::thread::scope` rather than rayon because the
//! assignment policy itself is the object of study — a work-stealing
//! pool would blur Dyn/St/StCont distinctions.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A chunk-to-thread scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Schedule {
    /// Dynamic self-scheduling via a shared counter.
    Dyn,
    /// Static round-robin over chunks.
    St,
    /// Static contiguous block per thread.
    StCont,
}

impl Schedule {
    /// All policies, in the paper's order.
    pub const ALL: [Schedule; 3] = [Schedule::Dyn, Schedule::St, Schedule::StCont];

    /// Paper abbreviation.
    pub fn name(&self) -> &'static str {
        match self {
            Schedule::Dyn => "Dyn",
            Schedule::St => "St",
            Schedule::StCont => "StCont",
        }
    }
}

/// Number of worker threads to use: the `WISE_THREADS` environment
/// variable if set, otherwise `std::thread::available_parallelism()`.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("WISE_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Shared mutable slice for disjoint-index parallel writes.
///
/// Each chunk of an SpMV kernel writes a set of output rows disjoint
/// from every other chunk's, so concurrent `write`s never alias. The
/// type exists to express that contract where `&mut [f64]` cannot be
/// shared across scoped threads.
pub struct DisjointWriter<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: writes are only issued through `write`, whose contract
// requires callers to target disjoint indices per thread.
unsafe impl<T: Send> Sync for DisjointWriter<'_, T> {}
unsafe impl<T: Send> Send for DisjointWriter<'_, T> {}

impl<'a, T> DisjointWriter<'a, T> {
    pub fn new(slice: &'a mut [T]) -> Self {
        DisjointWriter {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety
    /// No two threads may write the same `index` during the lifetime of
    /// this writer, and `index < len()`.
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.len);
        unsafe { *self.ptr.add(index) = value };
    }

    /// Adds `value` into `index` (same contract as [`Self::write`]).
    ///
    /// # Safety
    /// See [`Self::write`].
    #[inline]
    pub unsafe fn add(&self, index: usize, value: T)
    where
        T: std::ops::AddAssign + Copy,
    {
        debug_assert!(index < self.len);
        unsafe { *self.ptr.add(index) += value };
    }
}

/// Runs `body(chunk_index)` for every chunk in `0..nchunks` across
/// `nthreads` threads under the given policy.
///
/// `grain` is the number of consecutive chunks a thread takes at once
/// for Dyn/St (the paper's "K rows at a time" granularity knob, in
/// units of chunks). StCont ignores `grain`.
pub fn parallel_for_chunks<F>(
    nchunks: usize,
    nthreads: usize,
    schedule: Schedule,
    grain: usize,
    body: F,
) where
    F: Fn(usize) + Sync,
{
    let grain = grain.max(1);
    if nthreads <= 1 || nchunks <= grain {
        for i in 0..nchunks {
            body(i);
        }
        return;
    }
    let nthreads = nthreads.min(nchunks);
    match schedule {
        Schedule::Dyn => {
            let counter = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..nthreads {
                    s.spawn(|| loop {
                        let start = counter.fetch_add(grain, Ordering::Relaxed);
                        if start >= nchunks {
                            break;
                        }
                        for i in start..(start + grain).min(nchunks) {
                            body(i);
                        }
                    });
                }
            });
        }
        Schedule::St => {
            std::thread::scope(|s| {
                for t in 0..nthreads {
                    let body = &body;
                    s.spawn(move || {
                        // Blocks of `grain` chunks, dealt round-robin.
                        let mut block = t;
                        loop {
                            let start = block * grain;
                            if start >= nchunks {
                                break;
                            }
                            for i in start..(start + grain).min(nchunks) {
                                body(i);
                            }
                            block += nthreads;
                        }
                    });
                }
            });
        }
        Schedule::StCont => {
            std::thread::scope(|s| {
                for t in 0..nthreads {
                    let body = &body;
                    s.spawn(move || {
                        let lo = t * nchunks / nthreads;
                        let hi = (t + 1) * nchunks / nthreads;
                        for i in lo..hi {
                            body(i);
                        }
                    });
                }
            });
        }
    }
}

/// Returns, for each thread, the list of chunk indices it would execute
/// under `schedule` — the *assignment function* used by the performance
/// model (`wise-perf`) to compute load imbalance without running
/// threads. Dyn is excluded: its assignment is timing-dependent and the
/// model simulates it with list scheduling instead.
pub fn static_assignment(
    nchunks: usize,
    nthreads: usize,
    schedule: Schedule,
    grain: usize,
) -> Vec<Vec<usize>> {
    let grain = grain.max(1);
    let nthreads = nthreads.max(1);
    let mut out = vec![Vec::new(); nthreads];
    match schedule {
        Schedule::St => {
            let mut block = 0usize;
            loop {
                let start = block * grain;
                if start >= nchunks {
                    break;
                }
                let t = block % nthreads;
                out[t].extend(start..(start + grain).min(nchunks));
                block += 1;
            }
        }
        Schedule::StCont => {
            for (t, chunks) in out.iter_mut().enumerate() {
                let lo = t * nchunks / nthreads;
                let hi = (t + 1) * nchunks / nthreads;
                chunks.extend(lo..hi);
            }
        }
        Schedule::Dyn => panic!("Dyn has no static assignment; use list-scheduling simulation"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn covers_all(schedule: Schedule, nchunks: usize, nthreads: usize, grain: usize) {
        let hits: Vec<AtomicU64> = (0..nchunks).map(|_| AtomicU64::new(0)).collect();
        parallel_for_chunks(nchunks, nthreads, schedule, grain, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "chunk {i} under {schedule:?}");
        }
    }

    #[test]
    fn every_schedule_covers_every_chunk_exactly_once() {
        for sched in Schedule::ALL {
            for &(n, t, g) in
                &[(1usize, 1usize, 1usize), (7, 3, 1), (100, 4, 8), (64, 8, 16), (5, 8, 2)]
            {
                covers_all(sched, n, t, g);
            }
        }
    }

    #[test]
    fn zero_chunks_is_fine() {
        for sched in Schedule::ALL {
            parallel_for_chunks(0, 4, sched, 1, |_| panic!("no chunks"));
        }
    }

    #[test]
    fn static_assignment_partitions() {
        for sched in [Schedule::St, Schedule::StCont] {
            for &(n, t, g) in &[(10usize, 3usize, 1usize), (64, 4, 8), (7, 16, 2)] {
                let a = static_assignment(n, t, sched, g);
                let mut all: Vec<usize> = a.into_iter().flatten().collect();
                all.sort_unstable();
                assert_eq!(all, (0..n).collect::<Vec<_>>(), "{sched:?} n={n} t={t} g={g}");
            }
        }
    }

    #[test]
    fn stcont_blocks_are_contiguous() {
        let a = static_assignment(100, 4, Schedule::StCont, 1);
        for chunks in &a {
            for w in chunks.windows(2) {
                assert_eq!(w[1], w[0] + 1);
            }
        }
        // Balanced to within one chunk.
        let sizes: Vec<_> = a.iter().map(|c| c.len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn st_round_robin_pattern() {
        let a = static_assignment(8, 2, Schedule::St, 2);
        assert_eq!(a[0], vec![0, 1, 4, 5]);
        assert_eq!(a[1], vec![2, 3, 6, 7]);
    }

    #[test]
    fn disjoint_writer_single_thread() {
        let mut v = vec![0.0f64; 4];
        {
            let w = DisjointWriter::new(&mut v);
            unsafe {
                w.write(1, 2.5);
                w.add(1, 0.5);
                w.write(3, 1.0);
            }
        }
        assert_eq!(v, vec![0.0, 3.0, 0.0, 1.0]);
    }

    #[test]
    fn default_threads_env_override() {
        // Can't set env safely in parallel tests; just check it returns >= 1.
        assert!(default_threads() >= 1);
    }
}
