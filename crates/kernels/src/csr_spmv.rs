//! Parallel CSR SpMV under the three scheduling policies
//! (paper Section 2.1).
//!
//! Rows are grouped into chunks of [`CsrSpmv::rows_per_chunk`] rows;
//! chunks are assigned to threads per [`Schedule`]. Each chunk writes a
//! disjoint row range of `y`, which is what makes the shared-output
//! parallelism sound.
//!
//! On the vector levels the row loop additionally exploits memory-level
//! parallelism (DESIGN.md §17): rows are processed in blocks of
//! [`CsrSpmv::resolved_interleave`] rows with independent accumulator
//! chains (bit-identical to the solo-row kernels — pure scheduling),
//! and gathers are software-prefetched [`CsrSpmv::resolved_prefetch`]
//! steps ahead. In auto mode the interleave skips ragged blocks whose
//! shortest row has fewer than [`simd::INTERLEAVE_MIN_ROW_NNZ`]
//! nonzeros — those rows run the solo kernel instead.

use crate::sched::{parallel_for_chunks, DisjointWriter, Schedule};
use crate::simd::{self, SimdIsa};
use wise_matrix::Csr;

/// Default rows per scheduling chunk (the paper's "K rows at a time").
pub const DEFAULT_ROWS_PER_CHUNK: usize = 256;

/// A CSR matrix prepared for scheduled parallel SpMV.
///
/// CSR needs no format conversion — this type only records the
/// scheduling configuration, mirroring "CSR is the format the matrix
/// already arrives in" (zero preprocessing cost in Section 4.4).
#[derive(Debug, Clone)]
pub struct CsrSpmv<'a> {
    matrix: &'a Csr,
    schedule: Schedule,
    rows_per_chunk: usize,
    simd: usize,
    prefetch: Option<usize>,
    interleave: usize,
}

impl<'a> CsrSpmv<'a> {
    pub fn new(matrix: &'a Csr, schedule: Schedule) -> Self {
        CsrSpmv {
            matrix,
            schedule,
            rows_per_chunk: DEFAULT_ROWS_PER_CHUNK,
            simd: 0,
            prefetch: None,
            interleave: 0,
        }
    }

    /// Overrides the chunk granularity.
    pub fn with_rows_per_chunk(mut self, rows: usize) -> Self {
        self.rows_per_chunk = rows.max(1);
        self
    }

    /// Requests a SIMD width for the row kernel: 0 = auto (widest
    /// active level), 1 = the original scalar path (bit-exact), else
    /// capped at the host's [`simd::active`] level.
    pub fn with_simd(mut self, v: usize) -> Self {
        self.simd = v;
        self
    }

    /// The requested SIMD width (see [`CsrSpmv::with_simd`]).
    pub fn simd(&self) -> usize {
        self.simd
    }

    /// Requests a software prefetch distance in vector steps:
    /// `Some(0)` disables prefetch, `Some(d)` forces `d` (clamped at
    /// [`simd::MAX_PREFETCH`]), `None` (default) defers to the
    /// `WISE_PREFETCH` override / auto policy. Never changes results —
    /// prefetch is scheduling only.
    pub fn with_prefetch(mut self, d: Option<usize>) -> Self {
        self.prefetch = d;
        self
    }

    /// The requested prefetch distance (see [`CsrSpmv::with_prefetch`]).
    pub fn prefetch(&self) -> Option<usize> {
        self.prefetch
    }

    /// Requests a row-interleave factor (rows processed concurrently
    /// with independent accumulator chains): 0 = auto policy, 1 = off,
    /// 2 or 4 = force that block height (3 rounds down to 2, ≥ 4
    /// clamps to 4). An explicit factor bypasses the auto policy's
    /// short-row gate. Results are bit-identical across all factors.
    pub fn with_interleave(mut self, r: usize) -> Self {
        self.interleave = r;
        self
    }

    /// The requested interleave factor (see [`CsrSpmv::with_interleave`]).
    pub fn interleave(&self) -> usize {
        self.interleave
    }

    /// The level this kernel will actually execute at.
    pub fn resolved_isa(&self) -> SimdIsa {
        simd::resolve(self.simd, self.matrix.ncols())
    }

    /// The effective prefetch distance at `isa` for this matrix: the
    /// config override when set, else the `WISE_PREFETCH` / auto
    /// policy chain. Scalar never prefetches.
    pub fn resolved_prefetch(&self, isa: SimdIsa) -> usize {
        if isa.lanes() <= 1 {
            return 0;
        }
        match self.prefetch {
            Some(d) => d.min(simd::MAX_PREFETCH),
            None => simd::prefetch_distance(isa, self.matrix.ncols()),
        }
    }

    /// The effective row-block height at `isa`: the config override
    /// (clamped to {1, 2, 4}) or the auto policy.
    pub fn resolved_interleave(&self, isa: SimdIsa) -> usize {
        if isa == SimdIsa::Scalar {
            return 1;
        }
        match self.interleave {
            0 => simd::auto_csr_interleave(isa, self.matrix.ncols()),
            1 => 1,
            2 | 3 => 2,
            _ => 4,
        }
    }

    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    pub fn rows_per_chunk(&self) -> usize {
        self.rows_per_chunk
    }

    /// Number of scheduling chunks.
    pub fn nchunks(&self) -> usize {
        self.matrix.nrows().div_ceil(self.rows_per_chunk)
    }

    /// Stored nonzeros (CSR stores no padding).
    pub fn nnz(&self) -> usize {
        self.matrix.nnz()
    }

    /// `y = A x` with `nthreads` workers.
    pub fn spmv(&self, x: &[f64], y: &mut [f64], nthreads: usize) {
        let m = self.matrix;
        assert_eq!(x.len(), m.ncols(), "x length must equal ncols");
        assert_eq!(y.len(), m.nrows(), "y length must equal nrows");
        let rows_per_chunk = self.rows_per_chunk;
        let nchunks = self.nchunks();
        let row_ptr = m.row_ptr();
        let col_idx = m.col_idx();
        let vals = m.vals();
        let writer = DisjointWriter::new(y);
        let isa = self.resolved_isa();
        let pf = self.resolved_prefetch(isa);
        let block = self.resolved_interleave(isa);
        // Auto mode gates ragged/short blocks; an explicit interleave
        // request runs every block.
        let gate_short = self.interleave == 0;
        // For CSR the scheduling chunk IS the work grain, so grain = 1.
        parallel_for_chunks(nchunks, nthreads, self.schedule, 1, |chunk| {
            let row_lo = chunk * rows_per_chunk;
            let row_hi = (row_lo + rows_per_chunk).min(m.nrows());
            // SAFETY (all unchecked accesses below): r < nrows and
            // row_ptr has nrows + 1 entries, monotone with
            // row_ptr[nrows] == nnz == vals.len() == col_idx.len(),
            // and every col_idx < ncols == x.len() — the Csr
            // invariants validated by `Csr::try_new`. The
            // indexing-free gather is what lets these loops keep the
            // memory pipeline full; the checked form re-tests x's
            // bound per nonzero because the optimizer cannot prove the
            // data-dependent column index in range.
            let row_range =
                |r: usize| unsafe { (*row_ptr.get_unchecked(r), *row_ptr.get_unchecked(r + 1)) };
            if isa == SimdIsa::Scalar {
                // The original unchecked scalar loop, bit-for-bit.
                for r in row_lo..row_hi {
                    let (k0, k1) = row_range(r);
                    debug_assert!(k0 <= k1 && k1 <= vals.len());
                    let mut acc = 0.0f64;
                    for k in k0..k1 {
                        unsafe {
                            let c = *col_idx.get_unchecked(k) as usize;
                            debug_assert!(c < x.len());
                            acc += *vals.get_unchecked(k) * *x.get_unchecked(c);
                        }
                    }
                    // SAFETY: chunk row ranges are disjoint by construction.
                    unsafe { writer.write(r, acc) };
                }
                return;
            }
            let long_enough = |ranges: &[(usize, usize)]| {
                !gate_short || ranges.iter().all(|&(a, b)| b - a >= simd::INTERLEAVE_MIN_ROW_NNZ)
            };
            let mut r = row_lo;
            while r < row_hi {
                // Row-block interleave: R rows, R independent
                // accumulator chains (bit-identical to solo rows).
                if block >= 4 && r + 4 <= row_hi {
                    let ranges =
                        [row_range(r), row_range(r + 1), row_range(r + 2), row_range(r + 3)];
                    if long_enough(&ranges) {
                        let out =
                            unsafe { simd::csr_rows_pf::<4>(isa, &ranges, vals, col_idx, x, pf) };
                        for (i, v) in out.into_iter().enumerate() {
                            // SAFETY: disjoint chunk row ranges.
                            unsafe { writer.write(r + i, v) };
                        }
                        r += 4;
                        continue;
                    }
                } else if block >= 2 && r + 2 <= row_hi {
                    let ranges = [row_range(r), row_range(r + 1)];
                    if long_enough(&ranges) {
                        let out =
                            unsafe { simd::csr_rows_pf::<2>(isa, &ranges, vals, col_idx, x, pf) };
                        for (i, v) in out.into_iter().enumerate() {
                            // SAFETY: disjoint chunk row ranges.
                            unsafe { writer.write(r + i, v) };
                        }
                        r += 2;
                        continue;
                    }
                }
                // Solo cleanup: short/ragged blocks and chunk tails.
                let (k0, k1) = row_range(r);
                debug_assert!(k0 <= k1 && k1 <= vals.len());
                // SAFETY: the row's vals/cols slices are equal-length
                // and every column index < ncols == x.len() (same Csr
                // invariants as above).
                let acc = unsafe { simd::csr_row_pf(isa, &vals[k0..k1], &col_idx[k0..k1], x, pf) };
                // SAFETY: chunk row ranges are disjoint by construction.
                unsafe { writer.write(r, acc) };
                r += 1;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use wise_gen::RmatParams;

    fn random_x(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn check_against_reference(m: &Csr, nthreads: usize) {
        let x = random_x(m.ncols(), 99);
        let mut want = vec![0.0; m.nrows()];
        m.spmv_reference(&x, &mut want);
        for sched in Schedule::ALL {
            let mut got = vec![0.0; m.nrows()];
            CsrSpmv::new(m, sched).with_rows_per_chunk(7).spmv(&x, &mut got, nthreads);
            for (g, w) in got.iter().zip(&want) {
                assert!(
                    (g - w).abs() <= 1e-9 * (1.0 + w.abs()),
                    "{sched:?} nthreads={nthreads}: {g} vs {w}"
                );
            }
        }
    }

    #[test]
    fn matches_reference_single_thread() {
        let m = RmatParams::MED_SKEW.generate(9, 8, 5);
        check_against_reference(&m, 1);
    }

    #[test]
    fn matches_reference_multi_thread() {
        let m = RmatParams::HIGH_SKEW.generate(10, 8, 6);
        check_against_reference(&m, 4);
        check_against_reference(&m, 13);
    }

    #[test]
    fn empty_rows_produce_zeros() {
        // Matrix with many empty rows.
        let m = Csr::try_new(4, 4, vec![0, 0, 2, 2, 2], vec![0, 3], vec![2.0, 4.0]).unwrap();
        let x = vec![1.0, 1.0, 1.0, 1.0];
        let mut y = vec![9.9; 4];
        CsrSpmv::new(&m, Schedule::Dyn).spmv(&x, &mut y, 2);
        assert_eq!(y, vec![0.0, 6.0, 0.0, 0.0]);
    }

    #[test]
    fn rectangular_matrix() {
        let m = Csr::try_new(2, 5, vec![0, 2, 3], vec![0, 4, 2], vec![1.0, 2.0, 3.0]).unwrap();
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let mut y = vec![0.0; 2];
        CsrSpmv::new(&m, Schedule::StCont).spmv(&x, &mut y, 3);
        assert_eq!(y, vec![1.0 + 10.0, 9.0]);
    }

    #[test]
    fn simd_widths_match_scalar_within_ulp_bound() {
        use crate::simd;
        let m = RmatParams::MED_SKEW.generate(9, 8, 11);
        let x = random_x(m.ncols(), 3);
        let mut want = vec![0.0; m.nrows()];
        CsrSpmv::new(&m, Schedule::Dyn).with_simd(1).spmv(&x, &mut want, 2);
        for v in [0usize, 2, 4, 8] {
            let k = CsrSpmv::new(&m, Schedule::Dyn).with_simd(v);
            assert!(k.resolved_isa().lanes() <= v.max(simd::active().lanes()));
            let mut got = vec![0.0; m.nrows()];
            k.spmv(&x, &mut got, 2);
            simd::assert_ulp_close(
                &got,
                &want,
                simd::SPMV_MAX_ULPS,
                simd::SPMV_ABS_FLOOR,
                &format!("csr v={v}"),
            );
        }
    }

    #[test]
    fn forced_scalar_width_matches_reference_bitwise() {
        // v=1 must run the original unchecked loop: same order of
        // operations as `spmv_reference`, so bit-for-bit equal.
        let m = RmatParams::LOW_LOC.generate(8, 4, 12);
        let x = random_x(m.ncols(), 5);
        let mut want = vec![0.0; m.nrows()];
        m.spmv_reference(&x, &mut want);
        let k = CsrSpmv::new(&m, Schedule::St).with_simd(1);
        assert_eq!(k.resolved_isa(), crate::simd::SimdIsa::Scalar);
        let mut got = vec![0.0; m.nrows()];
        k.spmv(&x, &mut got, 3);
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&got), bits(&want));
    }

    #[test]
    fn prefetch_and_interleave_never_change_results() {
        // Prefetch distance and row-block interleave are scheduling
        // knobs: for a fixed resolved level the output must be
        // bit-identical across every (D, R) combination, including the
        // auto policies.
        let m = RmatParams::MED_SKEW.generate(9, 8, 21);
        let x = random_x(m.ncols(), 17);
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        let mut base = vec![0.0; m.nrows()];
        CsrSpmv::new(&m, Schedule::Dyn)
            .with_prefetch(Some(0))
            .with_interleave(1)
            .spmv(&x, &mut base, 2);
        for pf in [None, Some(0), Some(2), Some(8), Some(simd::MAX_PREFETCH + 99)] {
            for il in [0usize, 1, 2, 3, 4, 16] {
                let k = CsrSpmv::new(&m, Schedule::Dyn).with_prefetch(pf).with_interleave(il);
                let mut got = vec![0.0; m.nrows()];
                k.spmv(&x, &mut got, 2);
                assert_eq!(bits(&got), bits(&base), "pf={pf:?} il={il}");
            }
        }
    }

    #[test]
    fn resolved_knobs_follow_policy() {
        let m = RmatParams::MED_SKEW.generate(8, 6, 2);
        let k = CsrSpmv::new(&m, Schedule::Dyn);
        // Scalar never prefetches or interleaves.
        assert_eq!(k.resolved_prefetch(SimdIsa::Scalar), 0);
        assert_eq!(k.resolved_interleave(SimdIsa::Scalar), 1);
        // Explicit overrides clamp into range.
        let k = k.with_prefetch(Some(simd::MAX_PREFETCH + 5)).with_interleave(3);
        assert_eq!(k.resolved_prefetch(SimdIsa::Avx512), simd::MAX_PREFETCH);
        assert_eq!(k.resolved_interleave(SimdIsa::Avx512), 2);
        let k = k.with_interleave(9);
        assert_eq!(k.resolved_interleave(SimdIsa::Avx512), 4);
        assert_eq!(k.prefetch(), Some(simd::MAX_PREFETCH + 5));
        assert_eq!(k.interleave(), 9);
        // Auto mode: small x on AVX-512 interleaves. (The auto
        // prefetch chain reads the process-wide WISE_PREFETCH override
        // and is asserted in `simd::tests` under its own lock.)
        let auto = CsrSpmv::new(&m, Schedule::Dyn);
        assert_eq!(auto.resolved_interleave(SimdIsa::Avx512), 2);
    }

    #[test]
    fn nchunks_rounds_up() {
        let m = Csr::zero(10, 10);
        let k = CsrSpmv::new(&m, Schedule::St).with_rows_per_chunk(3);
        assert_eq!(k.nchunks(), 4);
    }
}
