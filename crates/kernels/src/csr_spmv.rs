//! Parallel CSR SpMV under the three scheduling policies
//! (paper Section 2.1).
//!
//! Rows are grouped into chunks of [`CsrSpmv::rows_per_chunk`] rows;
//! chunks are assigned to threads per [`Schedule`]. Each chunk writes a
//! disjoint row range of `y`, which is what makes the shared-output
//! parallelism sound.

use crate::sched::{parallel_for_chunks, DisjointWriter, Schedule};
use crate::simd::{self, SimdIsa};
use wise_matrix::Csr;

/// Default rows per scheduling chunk (the paper's "K rows at a time").
pub const DEFAULT_ROWS_PER_CHUNK: usize = 256;

/// A CSR matrix prepared for scheduled parallel SpMV.
///
/// CSR needs no format conversion — this type only records the
/// scheduling configuration, mirroring "CSR is the format the matrix
/// already arrives in" (zero preprocessing cost in Section 4.4).
#[derive(Debug, Clone)]
pub struct CsrSpmv<'a> {
    matrix: &'a Csr,
    schedule: Schedule,
    rows_per_chunk: usize,
    simd: usize,
}

impl<'a> CsrSpmv<'a> {
    pub fn new(matrix: &'a Csr, schedule: Schedule) -> Self {
        CsrSpmv { matrix, schedule, rows_per_chunk: DEFAULT_ROWS_PER_CHUNK, simd: 0 }
    }

    /// Overrides the chunk granularity.
    pub fn with_rows_per_chunk(mut self, rows: usize) -> Self {
        self.rows_per_chunk = rows.max(1);
        self
    }

    /// Requests a SIMD width for the row kernel: 0 = auto (widest
    /// active level), 1 = the original scalar path (bit-exact), else
    /// capped at the host's [`simd::active`] level.
    pub fn with_simd(mut self, v: usize) -> Self {
        self.simd = v;
        self
    }

    /// The requested SIMD width (see [`CsrSpmv::with_simd`]).
    pub fn simd(&self) -> usize {
        self.simd
    }

    /// The level this kernel will actually execute at.
    pub fn resolved_isa(&self) -> SimdIsa {
        simd::resolve(self.simd, self.matrix.ncols())
    }

    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    pub fn rows_per_chunk(&self) -> usize {
        self.rows_per_chunk
    }

    /// Number of scheduling chunks.
    pub fn nchunks(&self) -> usize {
        self.matrix.nrows().div_ceil(self.rows_per_chunk)
    }

    /// Stored nonzeros (CSR stores no padding).
    pub fn nnz(&self) -> usize {
        self.matrix.nnz()
    }

    /// `y = A x` with `nthreads` workers.
    pub fn spmv(&self, x: &[f64], y: &mut [f64], nthreads: usize) {
        let m = self.matrix;
        assert_eq!(x.len(), m.ncols(), "x length must equal ncols");
        assert_eq!(y.len(), m.nrows(), "y length must equal nrows");
        let rows_per_chunk = self.rows_per_chunk;
        let nchunks = self.nchunks();
        let row_ptr = m.row_ptr();
        let col_idx = m.col_idx();
        let vals = m.vals();
        let writer = DisjointWriter::new(y);
        let isa = self.resolved_isa();
        // For CSR the scheduling chunk IS the work grain, so grain = 1.
        parallel_for_chunks(nchunks, nthreads, self.schedule, 1, |chunk| {
            let row_lo = chunk * rows_per_chunk;
            let row_hi = (row_lo + rows_per_chunk).min(m.nrows());
            for r in row_lo..row_hi {
                // SAFETY: r < nrows and row_ptr has nrows + 1 entries,
                // monotone with row_ptr[nrows] == nnz == vals.len() ==
                // col_idx.len(), and every col_idx < ncols == x.len() —
                // the Csr invariants validated by `Csr::try_new`. The
                // indexing-free gather is what lets this loop keep the
                // memory pipeline full; the checked form re-tests x's
                // bound per nonzero because the optimizer cannot prove
                // the data-dependent column index in range.
                let (k0, k1) =
                    unsafe { (*row_ptr.get_unchecked(r), *row_ptr.get_unchecked(r + 1)) };
                debug_assert!(k0 <= k1 && k1 <= vals.len());
                let acc = if isa == SimdIsa::Scalar {
                    let mut acc = 0.0f64;
                    for k in k0..k1 {
                        unsafe {
                            let c = *col_idx.get_unchecked(k) as usize;
                            debug_assert!(c < x.len());
                            acc += *vals.get_unchecked(k) * *x.get_unchecked(c);
                        }
                    }
                    acc
                } else {
                    // SAFETY: the row's vals/cols slices are equal-length
                    // and every column index < ncols == x.len() (same Csr
                    // invariants as above).
                    unsafe { simd::csr_row(isa, &vals[k0..k1], &col_idx[k0..k1], x) }
                };
                // SAFETY: chunk row ranges are disjoint by construction.
                unsafe { writer.write(r, acc) };
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use wise_gen::RmatParams;

    fn random_x(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn check_against_reference(m: &Csr, nthreads: usize) {
        let x = random_x(m.ncols(), 99);
        let mut want = vec![0.0; m.nrows()];
        m.spmv_reference(&x, &mut want);
        for sched in Schedule::ALL {
            let mut got = vec![0.0; m.nrows()];
            CsrSpmv::new(m, sched).with_rows_per_chunk(7).spmv(&x, &mut got, nthreads);
            for (g, w) in got.iter().zip(&want) {
                assert!(
                    (g - w).abs() <= 1e-9 * (1.0 + w.abs()),
                    "{sched:?} nthreads={nthreads}: {g} vs {w}"
                );
            }
        }
    }

    #[test]
    fn matches_reference_single_thread() {
        let m = RmatParams::MED_SKEW.generate(9, 8, 5);
        check_against_reference(&m, 1);
    }

    #[test]
    fn matches_reference_multi_thread() {
        let m = RmatParams::HIGH_SKEW.generate(10, 8, 6);
        check_against_reference(&m, 4);
        check_against_reference(&m, 13);
    }

    #[test]
    fn empty_rows_produce_zeros() {
        // Matrix with many empty rows.
        let m = Csr::try_new(4, 4, vec![0, 0, 2, 2, 2], vec![0, 3], vec![2.0, 4.0]).unwrap();
        let x = vec![1.0, 1.0, 1.0, 1.0];
        let mut y = vec![9.9; 4];
        CsrSpmv::new(&m, Schedule::Dyn).spmv(&x, &mut y, 2);
        assert_eq!(y, vec![0.0, 6.0, 0.0, 0.0]);
    }

    #[test]
    fn rectangular_matrix() {
        let m = Csr::try_new(2, 5, vec![0, 2, 3], vec![0, 4, 2], vec![1.0, 2.0, 3.0]).unwrap();
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let mut y = vec![0.0; 2];
        CsrSpmv::new(&m, Schedule::StCont).spmv(&x, &mut y, 3);
        assert_eq!(y, vec![1.0 + 10.0, 9.0]);
    }

    #[test]
    fn simd_widths_match_scalar_within_ulp_bound() {
        use crate::simd;
        let m = RmatParams::MED_SKEW.generate(9, 8, 11);
        let x = random_x(m.ncols(), 3);
        let mut want = vec![0.0; m.nrows()];
        CsrSpmv::new(&m, Schedule::Dyn).with_simd(1).spmv(&x, &mut want, 2);
        for v in [0usize, 2, 4, 8] {
            let k = CsrSpmv::new(&m, Schedule::Dyn).with_simd(v);
            assert!(k.resolved_isa().lanes() <= v.max(simd::active().lanes()));
            let mut got = vec![0.0; m.nrows()];
            k.spmv(&x, &mut got, 2);
            simd::assert_ulp_close(
                &got,
                &want,
                simd::SPMV_MAX_ULPS,
                simd::SPMV_ABS_FLOOR,
                &format!("csr v={v}"),
            );
        }
    }

    #[test]
    fn forced_scalar_width_matches_reference_bitwise() {
        // v=1 must run the original unchecked loop: same order of
        // operations as `spmv_reference`, so bit-for-bit equal.
        let m = RmatParams::LOW_LOC.generate(8, 4, 12);
        let x = random_x(m.ncols(), 5);
        let mut want = vec![0.0; m.nrows()];
        m.spmv_reference(&x, &mut want);
        let k = CsrSpmv::new(&m, Schedule::St).with_simd(1);
        assert_eq!(k.resolved_isa(), crate::simd::SimdIsa::Scalar);
        let mut got = vec![0.0; m.nrows()];
        k.spmv(&x, &mut got, 3);
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&got), bits(&want));
    }

    #[test]
    fn nchunks_rounds_up() {
        let m = Csr::zero(10, 10);
        let k = CsrSpmv::new(&m, Schedule::St).with_rows_per_chunk(3);
        assert_eq!(k.nchunks(), 4);
    }
}
