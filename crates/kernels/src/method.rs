//! The `{method, parameter}` configuration space (paper Table 1 and
//! Section 4.3) and a uniform prepare/execute interface over it.
//!
//! WISE trains one performance model per configuration; the paper's
//! parameter choices (c ∈ {4, 8}, σ ∈ {2^9, 2^12, 2^14}, T ∈ {0.7, 0.8,
//! 0.9}, plus scheduling) yield exactly 29 configurations, reproduced
//! by [`MethodConfig::catalog`].

use crate::csr_spmv::CsrSpmv;
use crate::sched::Schedule;
use crate::srvpack::{SpmvWorkspace, SrvPack};
use serde::{Deserialize, Serialize};
use wise_matrix::Csr;

/// The six SpMV methods of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    Csr,
    SellPack,
    SellCSigma,
    SellCR,
    Lav1Seg,
    Lav,
}

impl Method {
    /// All methods, cheapest preprocessing first (the tie-break order of
    /// Section 4.4: CSR, SELLPACK, Sell-c-σ, Sell-c-R, LAV-1Seg, LAV).
    pub const ALL: [Method; 6] = [
        Method::Csr,
        Method::SellPack,
        Method::SellCSigma,
        Method::SellCR,
        Method::Lav1Seg,
        Method::Lav,
    ];

    /// Position in the preprocessing-cost order (lower = cheaper).
    pub fn preproc_rank(&self) -> u8 {
        match self {
            Method::Csr => 0,
            Method::SellPack => 1,
            Method::SellCSigma => 2,
            Method::SellCR => 3,
            Method::Lav1Seg => 4,
            Method::Lav => 5,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Method::Csr => "CSR",
            Method::SellPack => "SELLPACK",
            Method::SellCSigma => "Sell-c-s",
            Method::SellCR => "Sell-c-R",
            Method::Lav1Seg => "LAV-1Seg",
            Method::Lav => "LAV",
        }
    }
}

/// The chunk heights evaluated (vector widths of the paper's machine).
pub const C_VALUES: [usize; 2] = [4, 8];
/// The σ window sizes evaluated (L1-resident to L2-resident).
pub const SIGMA_VALUES: [usize; 3] = [512, 4096, 16384];
/// The LAV dense-segment fractions evaluated.
pub const T_VALUES: [f64; 3] = [0.7, 0.8, 0.9];

/// One fully parameterized SpMV configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MethodConfig {
    pub method: Method,
    pub schedule: Schedule,
    /// Chunk height; 0 for CSR (not packed).
    pub c: usize,
    /// σ window; 0 unless `method == SellCSigma`.
    pub sigma: usize,
    /// LAV dense fraction; 0.0 unless `method == Lav`.
    pub t: f64,
    /// Requested SIMD lane width for the kernels: 0 = auto (widest
    /// level active on the host), 1 = forced scalar (bit-exact legacy
    /// path), 2/4/8 = cap at that many f64 lanes. Defaults to 0, so
    /// configs serialized before this field existed — and the default
    /// catalog — behave as auto and keep their pre-SIMD labels.
    #[serde(default)]
    pub v: usize,
    /// Requested software-prefetch distance in vector steps: 0 = auto
    /// (the `WISE_PREFETCH` / ISA policy decides), n ≥ 1 = prefetch n
    /// steps ahead. Serde-defaulted so pre-MLP JSON stays byte-stable;
    /// an explicit value appears in labels as a `-p{n}` tag.
    #[serde(default)]
    pub pf: usize,
    /// Requested row/chunk interleave factor: 0 = auto policy, 1 =
    /// off (solo chains), n ≥ 2 = interleave n independent accumulator
    /// chains. Serde-defaulted; labeled as `-i{n}` when explicit.
    #[serde(default)]
    pub il: usize,
}

impl MethodConfig {
    pub fn csr(schedule: Schedule) -> Self {
        MethodConfig { method: Method::Csr, schedule, c: 0, sigma: 0, t: 0.0, v: 0, pf: 0, il: 0 }
    }

    pub fn sellpack(c: usize, schedule: Schedule) -> Self {
        MethodConfig { method: Method::SellPack, schedule, c, sigma: 0, t: 0.0, v: 0, pf: 0, il: 0 }
    }

    pub fn sell_c_sigma(c: usize, sigma: usize, schedule: Schedule) -> Self {
        MethodConfig { method: Method::SellCSigma, schedule, c, sigma, t: 0.0, v: 0, pf: 0, il: 0 }
    }

    pub fn sell_c_r(c: usize) -> Self {
        MethodConfig {
            method: Method::SellCR,
            schedule: Schedule::Dyn,
            c,
            sigma: 0,
            t: 0.0,
            v: 0,
            pf: 0,
            il: 0,
        }
    }

    pub fn lav_1seg(c: usize) -> Self {
        MethodConfig {
            method: Method::Lav1Seg,
            schedule: Schedule::Dyn,
            c,
            sigma: 0,
            t: 0.0,
            v: 0,
            pf: 0,
            il: 0,
        }
    }

    pub fn lav(c: usize, t: f64) -> Self {
        MethodConfig {
            method: Method::Lav,
            schedule: Schedule::Dyn,
            c,
            sigma: 0,
            t,
            v: 0,
            pf: 0,
            il: 0,
        }
    }

    /// Returns this config with an explicit SIMD width (see the `v`
    /// field docs for the encoding).
    pub fn with_simd(mut self, v: usize) -> Self {
        self.v = v;
        self
    }

    /// Returns this config with an explicit prefetch distance (see the
    /// `pf` field docs; 0 restores the auto policy).
    pub fn with_prefetch(mut self, pf: usize) -> Self {
        self.pf = pf;
        self
    }

    /// Returns this config with an explicit interleave factor (see the
    /// `il` field docs; 0 restores the auto policy, 1 disables).
    pub fn with_interleave(mut self, il: usize) -> Self {
        self.il = il;
        self
    }

    /// The paper's 29 configurations, in preprocessing-cost order
    /// (method rank, then smaller parameters first):
    ///
    /// * CSR × {Dyn, St, StCont}                       → 3
    /// * SELLPACK × c ∈ {4,8} × {StCont, Dyn}          → 4
    /// * Sell-c-σ × c × σ ∈ {2^9,2^12,2^14} × sched    → 12
    /// * Sell-c-R × c (Dyn only)                       → 2
    /// * LAV-1Seg × c (Dyn only)                       → 2
    /// * LAV × c × T ∈ {0.7,0.8,0.9} (Dyn only)        → 6
    pub fn catalog() -> Vec<MethodConfig> {
        let mut v = Vec::with_capacity(29);
        for s in [Schedule::Dyn, Schedule::St, Schedule::StCont] {
            v.push(MethodConfig::csr(s));
        }
        for &c in &C_VALUES {
            for s in [Schedule::StCont, Schedule::Dyn] {
                v.push(MethodConfig::sellpack(c, s));
            }
        }
        for &c in &C_VALUES {
            for &sigma in &SIGMA_VALUES {
                for s in [Schedule::StCont, Schedule::Dyn] {
                    v.push(MethodConfig::sell_c_sigma(c, sigma, s));
                }
            }
        }
        for &c in &C_VALUES {
            v.push(MethodConfig::sell_c_r(c));
        }
        for &c in &C_VALUES {
            v.push(MethodConfig::lav_1seg(c));
        }
        for &c in &C_VALUES {
            for &t in &T_VALUES {
                v.push(MethodConfig::lav(c, t));
            }
        }
        v
    }

    /// The catalog with every entry pinned to an explicit SIMD width —
    /// used by experiments comparing vectorized vs scalar selection.
    pub fn catalog_with_simd(v: usize) -> Vec<MethodConfig> {
        Self::catalog().into_iter().map(|c| c.with_simd(v)).collect()
    }

    /// Stable human-readable label, used in reports and model files.
    ///
    /// The SIMD width appears as a `-v{n}` segment only when explicit
    /// (`v != 0`), directly before the schedule suffix for scheduled
    /// methods (`CSR-v8-Dyn`, `SELLPACK-c8-v4-Dyn`) and at the end for
    /// Dyn-only methods (`Sell-c-R-c8-v4`) — so every pre-SIMD label
    /// is unchanged and still parses ([`MethodConfig::parse`]). The
    /// MLP knobs follow the same rule in the same position: `-p{n}`
    /// (prefetch distance) then `-i{n}` (interleave), each emitted
    /// only when explicit, e.g. `CSR-v8-p4-i2-Dyn`.
    pub fn label(&self) -> String {
        let mut vtag = if self.v == 0 { String::new() } else { format!("-v{}", self.v) };
        if self.pf != 0 {
            vtag.push_str(&format!("-p{}", self.pf));
        }
        if self.il != 0 {
            vtag.push_str(&format!("-i{}", self.il));
        }
        match self.method {
            Method::Csr => format!("CSR{}-{}", vtag, self.schedule.name()),
            Method::SellPack => format!("SELLPACK-c{}{}-{}", self.c, vtag, self.schedule.name()),
            Method::SellCSigma => {
                format!("Sell-c-s-c{}-s{}{}-{}", self.c, self.sigma, vtag, self.schedule.name())
            }
            Method::SellCR => format!("Sell-c-R-c{}{}", self.c, vtag),
            Method::Lav1Seg => format!("LAV-1Seg-c{}{}", self.c, vtag),
            Method::Lav => {
                format!("LAV-c{}-T{}{}", self.c, (self.t * 100.0).round() as u32, vtag)
            }
        }
    }

    /// Inverse of [`MethodConfig::label`]: parses both pre-SIMD labels
    /// (`v = 0`) and width-suffixed ones. Returns `None` for anything
    /// `label()` cannot produce.
    pub fn parse(label: &str) -> Option<MethodConfig> {
        // Leading decimal run -> (number, rest).
        fn num(s: &str) -> Option<(usize, &str)> {
            let end = s.find(|ch: char| !ch.is_ascii_digit()).unwrap_or(s.len());
            if end == 0 {
                return None;
            }
            Some((s[..end].parse().ok()?, &s[end..]))
        }
        // One optional "{ch}{n}-" tag with n != 0 (explicit tags never
        // encode 0 — zero means "omit the tag").
        fn tag(s: &str, ch: char) -> Option<(usize, &str)> {
            let (n, tail) = s.strip_prefix(ch).and_then(num)?;
            if n == 0 {
                return None;
            }
            Some((n, tail.strip_prefix('-')?))
        }
        // Optional "v{n}-p{n}-i{n}-" run ahead of a schedule suffix
        // (each tag independently optional, in that order).
        fn mlp_infix(s: &str) -> (usize, usize, usize, &str) {
            let (mut v, mut pf, mut il, mut rest) = (0, 0, 0, s);
            if let Some((n, tail)) = tag(rest, 'v') {
                (v, rest) = (n, tail);
            }
            if let Some((n, tail)) = tag(rest, 'p') {
                (pf, rest) = (n, tail);
            }
            if let Some((n, tail)) = tag(rest, 'i') {
                (il, rest) = (n, tail);
            }
            (v, pf, il, rest)
        }
        // Optional trailing "-v{n}[-p{n}][-i{n}]" on Dyn-only labels.
        fn mlp_suffix(s: &str) -> Option<(usize, usize, usize)> {
            fn stag<'a>(s: &'a str, pre: &str) -> Option<(usize, &'a str)> {
                let (n, tail) = s.strip_prefix(pre).and_then(num)?;
                (n != 0).then_some((n, tail))
            }
            let (mut v, mut pf, mut il, mut rest) = (0, 0, 0, s);
            if let Some((n, tail)) = stag(rest, "-v") {
                (v, rest) = (n, tail);
            }
            if let Some((n, tail)) = stag(rest, "-p") {
                (pf, rest) = (n, tail);
            }
            if let Some((n, tail)) = stag(rest, "-i") {
                (il, rest) = (n, tail);
            }
            rest.is_empty().then_some((v, pf, il))
        }
        let mlp =
            |cfg: MethodConfig, v, pf, il| cfg.with_simd(v).with_prefetch(pf).with_interleave(il);
        if let Some(rest) = label.strip_prefix("CSR-") {
            let (v, pf, il, rest) = mlp_infix(rest);
            return Some(mlp(MethodConfig::csr(Schedule::parse(rest)?), v, pf, il));
        }
        if let Some(rest) = label.strip_prefix("SELLPACK-c") {
            let (c, rest) = num(rest)?;
            let (v, pf, il, rest) = mlp_infix(rest.strip_prefix('-')?);
            return Some(mlp(MethodConfig::sellpack(c, Schedule::parse(rest)?), v, pf, il));
        }
        if let Some(rest) = label.strip_prefix("Sell-c-s-c") {
            let (c, rest) = num(rest)?;
            let (sigma, rest) = num(rest.strip_prefix("-s")?)?;
            let (v, pf, il, rest) = mlp_infix(rest.strip_prefix('-')?);
            return Some(mlp(
                MethodConfig::sell_c_sigma(c, sigma, Schedule::parse(rest)?),
                v,
                pf,
                il,
            ));
        }
        if let Some(rest) = label.strip_prefix("Sell-c-R-c") {
            let (c, rest) = num(rest)?;
            let (v, pf, il) = mlp_suffix(rest)?;
            return Some(mlp(MethodConfig::sell_c_r(c), v, pf, il));
        }
        if let Some(rest) = label.strip_prefix("LAV-1Seg-c") {
            let (c, rest) = num(rest)?;
            let (v, pf, il) = mlp_suffix(rest)?;
            return Some(mlp(MethodConfig::lav_1seg(c), v, pf, il));
        }
        if let Some(rest) = label.strip_prefix("LAV-c") {
            let (c, rest) = num(rest)?;
            let (t100, rest) = num(rest.strip_prefix("-T")?)?;
            let (v, pf, il) = mlp_suffix(rest)?;
            return Some(mlp(MethodConfig::lav(c, t100 as f64 / 100.0), v, pf, il));
        }
        None
    }

    /// Total order used for preprocessing-cost tie-breaking
    /// (Section 4.4): method rank first, then smaller parameters. The
    /// SIMD width and MLP knobs sort last — they change execution, not
    /// preprocessing, so they only break ties among otherwise-identical
    /// configs.
    pub fn preproc_key(&self) -> (u8, usize, usize, u64, usize, usize, usize) {
        (
            self.method.preproc_rank(),
            self.c,
            self.sigma,
            (self.t * 1000.0) as u64,
            self.v,
            self.pf,
            self.il,
        )
    }

    /// Converts the matrix into this configuration's executable form.
    /// For CSR this is free (the matrix is already CSR).
    pub fn prepare<'m>(&self, m: &'m Csr) -> Prepared<'m> {
        let _span = wise_trace::span_pmu("kernel.convert");
        wise_trace::counter("kernel.convert.nnz", m.nnz() as u64);
        // 0 = auto in the catalog encoding; the kernels take None for
        // auto so an explicit `-p0` label (rejected by parse) never
        // aliases "prefetch off".
        let pf = if self.pf == 0 { None } else { Some(self.pf) };
        let pack = |p: SrvPack| {
            Prepared::Pack(
                Box::new(p.with_simd(self.v).with_prefetch(pf).with_interleave(self.il)),
                self.schedule,
            )
        };
        let prepared = match self.method {
            Method::Csr => Prepared::Csr(
                CsrSpmv::new(m, self.schedule)
                    .with_simd(self.v)
                    .with_prefetch(pf)
                    .with_interleave(self.il),
            ),
            Method::SellPack => pack(SrvPack::sellpack(m, self.c)),
            Method::SellCSigma => pack(SrvPack::sell_c_sigma(m, self.c, self.sigma)),
            Method::SellCR => pack(SrvPack::sell_c_r(m, self.c)),
            Method::Lav1Seg => pack(SrvPack::lav_1seg(m, self.c)),
            Method::Lav => pack(SrvPack::lav(m, self.c, self.t)),
        };
        wise_trace::counter("kernel.convert.nnz_padded", prepared.nnz_padded() as u64);
        prepared
    }
}

/// An executable SpMV: a prepared matrix plus its scheduling policy.
#[derive(Debug)]
pub enum Prepared<'m> {
    /// CSR needs no conversion; borrows the source matrix.
    Csr(CsrSpmv<'m>),
    /// A packed SRVPack matrix (boxed: it owns large buffers).
    Pack(Box<SrvPack>, Schedule),
}

impl Prepared<'_> {
    /// Lanes the kernel will actually execute with (1 = scalar path).
    pub fn simd_lanes(&self) -> usize {
        match self {
            Prepared::Csr(k) => k.resolved_isa().lanes(),
            Prepared::Pack(p, _) => p.resolved_isa().lanes(),
        }
    }

    /// `y = A x`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64], nthreads: usize, ws: &mut SpmvWorkspace) {
        let _span = wise_trace::span_pmu("kernel.spmv");
        // Declared after the kernel.spmv guard so it drops first and
        // the simd span nests inside its parent in the trace.
        let lanes = self.simd_lanes();
        let _simd_span = (lanes > 1).then(|| {
            wise_trace::counter("kernel.simd.lanes", lanes as u64);
            wise_trace::span("kernel.spmv.simd")
        });
        let stored = match self {
            Prepared::Csr(k) => {
                k.spmv(x, y, nthreads);
                k.nnz()
            }
            Prepared::Pack(p, sched) => {
                p.spmv(x, y, nthreads, *sched, ws);
                p.nnz_padded()
            }
        };
        // Lower-bound traffic estimate: stored entries (value + index)
        // plus one streaming pass over x and y. Together with the
        // kernel.spmv stage time, nnz and rows give the ledger its
        // nnz/s and rows/s throughput figures.
        wise_trace::counter("kernel.spmv.nnz", stored as u64);
        wise_trace::counter("kernel.spmv.rows", y.len() as u64);
        wise_trace::counter(
            "kernel.spmv.bytes_est",
            (stored * 12 + (x.len() + y.len()) * 8) as u64,
        );
    }

    /// Stored entries including any padding (CSR has none).
    pub fn nnz_padded(&self) -> usize {
        match self {
            Prepared::Csr(_) => 0,
            Prepared::Pack(p, _) => p.nnz_padded(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use wise_gen::RmatParams;

    #[test]
    fn catalog_has_29_unique_configs() {
        let cat = MethodConfig::catalog();
        assert_eq!(cat.len(), 29);
        let mut labels: Vec<_> = cat.iter().map(|c| c.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 29);
    }

    #[test]
    fn catalog_counts_per_method() {
        let cat = MethodConfig::catalog();
        let count = |m: Method| cat.iter().filter(|c| c.method == m).count();
        assert_eq!(count(Method::Csr), 3);
        assert_eq!(count(Method::SellPack), 4);
        assert_eq!(count(Method::SellCSigma), 12);
        assert_eq!(count(Method::SellCR), 2);
        assert_eq!(count(Method::Lav1Seg), 2);
        assert_eq!(count(Method::Lav), 6);
    }

    #[test]
    fn preproc_keys_are_ordered_like_catalog_methods() {
        let cat = MethodConfig::catalog();
        for w in cat.windows(2) {
            assert!(
                w[0].method.preproc_rank() <= w[1].method.preproc_rank(),
                "catalog must be cheapest-first"
            );
        }
        // Within LAV, smaller T sorts first.
        assert!(MethodConfig::lav(4, 0.7).preproc_key() < MethodConfig::lav(4, 0.9).preproc_key());
        // Across methods, CSR cheapest, LAV most expensive.
        assert!(
            MethodConfig::csr(Schedule::Dyn).preproc_key()
                < MethodConfig::lav(4, 0.7).preproc_key()
        );
    }

    #[test]
    fn every_config_computes_correct_spmv() {
        let m = RmatParams::MED_SKEW.generate(9, 8, 21);
        let mut rng = StdRng::seed_from_u64(5);
        let x: Vec<f64> = (0..m.ncols()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut want = vec![0.0; m.nrows()];
        m.spmv_reference(&x, &mut want);
        let mut ws = SpmvWorkspace::default();
        for cfg in MethodConfig::catalog() {
            let prep = cfg.prepare(&m);
            let mut got = vec![0.0; m.nrows()];
            prep.spmv(&x, &mut got, 2, &mut ws);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!(
                    (g - w).abs() <= 1e-9 * (1.0 + w.abs()),
                    "{} row {i}: {g} vs {w}",
                    cfg.label()
                );
            }
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(MethodConfig::csr(Schedule::StCont).label(), "CSR-StCont");
        assert_eq!(MethodConfig::sellpack(8, Schedule::Dyn).label(), "SELLPACK-c8-Dyn");
        assert_eq!(
            MethodConfig::sell_c_sigma(4, 4096, Schedule::StCont).label(),
            "Sell-c-s-c4-s4096-StCont"
        );
        assert_eq!(MethodConfig::lav(8, 0.8).label(), "LAV-c8-T80");
    }

    #[test]
    fn width_suffixed_labels_are_stable() {
        assert_eq!(MethodConfig::csr(Schedule::Dyn).with_simd(8).label(), "CSR-v8-Dyn");
        assert_eq!(
            MethodConfig::sellpack(8, Schedule::Dyn).with_simd(4).label(),
            "SELLPACK-c8-v4-Dyn"
        );
        assert_eq!(
            MethodConfig::sell_c_sigma(4, 4096, Schedule::StCont).with_simd(8).label(),
            "Sell-c-s-c4-s4096-v8-StCont"
        );
        assert_eq!(MethodConfig::sell_c_r(8).with_simd(4).label(), "Sell-c-R-c8-v4");
        assert_eq!(MethodConfig::lav_1seg(4).with_simd(8).label(), "LAV-1Seg-c4-v8");
        assert_eq!(MethodConfig::lav(8, 0.8).with_simd(2).label(), "LAV-c8-T80-v2");
    }

    #[test]
    fn mlp_tagged_labels_are_stable() {
        let csr = MethodConfig::csr(Schedule::Dyn);
        assert_eq!(
            csr.with_simd(8).with_prefetch(4).with_interleave(2).label(),
            "CSR-v8-p4-i2-Dyn"
        );
        assert_eq!(csr.with_prefetch(4).label(), "CSR-p4-Dyn");
        assert_eq!(csr.with_interleave(2).label(), "CSR-i2-Dyn");
        assert_eq!(
            MethodConfig::sellpack(8, Schedule::StCont).with_prefetch(8).label(),
            "SELLPACK-c8-p8-StCont"
        );
        assert_eq!(
            MethodConfig::sell_c_sigma(8, 512, Schedule::Dyn)
                .with_simd(8)
                .with_interleave(2)
                .label(),
            "Sell-c-s-c8-s512-v8-i2-Dyn"
        );
        assert_eq!(MethodConfig::sell_c_r(8).with_prefetch(16).label(), "Sell-c-R-c8-p16");
        assert_eq!(
            MethodConfig::lav(8, 0.8).with_simd(8).with_prefetch(4).with_interleave(1).label(),
            "LAV-c8-T80-v8-p4-i1"
        );
    }

    #[test]
    fn parse_round_trips_every_catalog_label() {
        for cfg in MethodConfig::catalog() {
            assert_eq!(MethodConfig::parse(&cfg.label()), Some(cfg), "{}", cfg.label());
            for v in [1usize, 2, 4, 8] {
                let wide = cfg.with_simd(v);
                assert_eq!(MethodConfig::parse(&wide.label()), Some(wide), "{}", wide.label());
            }
            for (v, pf, il) in
                [(0usize, 4usize, 0usize), (0, 0, 2), (8, 4, 2), (8, 0, 1), (4, 64, 2), (1, 1, 1)]
            {
                let knobbed = cfg.with_simd(v).with_prefetch(pf).with_interleave(il);
                assert_eq!(
                    MethodConfig::parse(&knobbed.label()),
                    Some(knobbed),
                    "{}",
                    knobbed.label()
                );
            }
        }
    }

    #[test]
    fn parse_rejects_malformed_labels() {
        for bad in [
            "",
            "CSR",
            "CSR-",
            "CSR-v0-Dyn",
            "CSR-v8",
            "CSR-Quick",
            "SELLPACK-Dyn",
            "SELLPACK-c8-v-Dyn",
            "Sell-c-s-c4-StCont",
            "Sell-c-R-c8-v4x",
            "LAV-c8",
            "LAV-c8-T80-v0",
            "csr-Dyn",
            "CSR-p0-Dyn",
            "CSR-i0-Dyn",
            "CSR-i2-p4-Dyn",
            "CSR-p4-v8-Dyn",
            "Sell-c-R-c8-p0",
            "LAV-c8-T80-i0",
            "LAV-c8-T80-v8-p4-i2x",
        ] {
            assert_eq!(MethodConfig::parse(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn catalog_with_simd_pins_every_entry() {
        let cat = MethodConfig::catalog_with_simd(1);
        assert_eq!(cat.len(), 29);
        assert!(cat.iter().all(|c| c.v == 1));
        // The auto catalog stays width-0 with unchanged labels.
        assert!(MethodConfig::catalog().iter().all(|c| c.v == 0));
    }

    #[test]
    fn config_json_without_v_field_defaults_to_auto() {
        let cfg = MethodConfig::sell_c_sigma(8, 512, Schedule::Dyn);
        let json = serde_json::to_string(&cfg).unwrap();
        let stripped =
            json.replace(",\"v\":0", "").replace(",\"pf\":0", "").replace(",\"il\":0", "");
        assert_ne!(stripped, json, "test must actually strip the fields");
        let back: MethodConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn mlp_knobs_round_trip_json_and_never_change_results() {
        let cfg = MethodConfig::csr(Schedule::Dyn).with_prefetch(4).with_interleave(2);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: MethodConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
        // The knobs are scheduling-only: prepared output is
        // bit-identical to the untagged config's.
        let m = RmatParams::MED_SKEW.generate(9, 8, 21);
        let mut rng = StdRng::seed_from_u64(5);
        let x: Vec<f64> = (0..m.ncols()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut ws = SpmvWorkspace::default();
        for base in
            [MethodConfig::csr(Schedule::Dyn), MethodConfig::sell_c_sigma(8, 512, Schedule::Dyn)]
        {
            let mut want = vec![0.0; m.nrows()];
            base.prepare(&m).spmv(&x, &mut want, 2, &mut ws);
            for (pf, il) in [(4usize, 0usize), (0, 2), (8, 1), (2, 2)] {
                let knobbed = base.with_prefetch(pf).with_interleave(il);
                let mut got = vec![0.0; m.nrows()];
                knobbed.prepare(&m).spmv(&x, &mut got, 2, &mut ws);
                let wb: Vec<u64> = want.iter().map(|f| f.to_bits()).collect();
                let gb: Vec<u64> = got.iter().map(|f| f.to_bits()).collect();
                assert_eq!(gb, wb, "{} vs {}", knobbed.label(), base.label());
            }
        }
    }
}
