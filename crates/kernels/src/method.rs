//! The `{method, parameter}` configuration space (paper Table 1 and
//! Section 4.3) and a uniform prepare/execute interface over it.
//!
//! WISE trains one performance model per configuration; the paper's
//! parameter choices (c ∈ {4, 8}, σ ∈ {2^9, 2^12, 2^14}, T ∈ {0.7, 0.8,
//! 0.9}, plus scheduling) yield exactly 29 configurations, reproduced
//! by [`MethodConfig::catalog`].

use crate::csr_spmv::CsrSpmv;
use crate::sched::Schedule;
use crate::srvpack::{SpmvWorkspace, SrvPack};
use serde::{Deserialize, Serialize};
use wise_matrix::Csr;

/// The six SpMV methods of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    Csr,
    SellPack,
    SellCSigma,
    SellCR,
    Lav1Seg,
    Lav,
}

impl Method {
    /// All methods, cheapest preprocessing first (the tie-break order of
    /// Section 4.4: CSR, SELLPACK, Sell-c-σ, Sell-c-R, LAV-1Seg, LAV).
    pub const ALL: [Method; 6] = [
        Method::Csr,
        Method::SellPack,
        Method::SellCSigma,
        Method::SellCR,
        Method::Lav1Seg,
        Method::Lav,
    ];

    /// Position in the preprocessing-cost order (lower = cheaper).
    pub fn preproc_rank(&self) -> u8 {
        match self {
            Method::Csr => 0,
            Method::SellPack => 1,
            Method::SellCSigma => 2,
            Method::SellCR => 3,
            Method::Lav1Seg => 4,
            Method::Lav => 5,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Method::Csr => "CSR",
            Method::SellPack => "SELLPACK",
            Method::SellCSigma => "Sell-c-s",
            Method::SellCR => "Sell-c-R",
            Method::Lav1Seg => "LAV-1Seg",
            Method::Lav => "LAV",
        }
    }
}

/// The chunk heights evaluated (vector widths of the paper's machine).
pub const C_VALUES: [usize; 2] = [4, 8];
/// The σ window sizes evaluated (L1-resident to L2-resident).
pub const SIGMA_VALUES: [usize; 3] = [512, 4096, 16384];
/// The LAV dense-segment fractions evaluated.
pub const T_VALUES: [f64; 3] = [0.7, 0.8, 0.9];

/// One fully parameterized SpMV configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MethodConfig {
    pub method: Method,
    pub schedule: Schedule,
    /// Chunk height; 0 for CSR (not packed).
    pub c: usize,
    /// σ window; 0 unless `method == SellCSigma`.
    pub sigma: usize,
    /// LAV dense fraction; 0.0 unless `method == Lav`.
    pub t: f64,
}

impl MethodConfig {
    pub fn csr(schedule: Schedule) -> Self {
        MethodConfig { method: Method::Csr, schedule, c: 0, sigma: 0, t: 0.0 }
    }

    pub fn sellpack(c: usize, schedule: Schedule) -> Self {
        MethodConfig { method: Method::SellPack, schedule, c, sigma: 0, t: 0.0 }
    }

    pub fn sell_c_sigma(c: usize, sigma: usize, schedule: Schedule) -> Self {
        MethodConfig { method: Method::SellCSigma, schedule, c, sigma, t: 0.0 }
    }

    pub fn sell_c_r(c: usize) -> Self {
        MethodConfig { method: Method::SellCR, schedule: Schedule::Dyn, c, sigma: 0, t: 0.0 }
    }

    pub fn lav_1seg(c: usize) -> Self {
        MethodConfig { method: Method::Lav1Seg, schedule: Schedule::Dyn, c, sigma: 0, t: 0.0 }
    }

    pub fn lav(c: usize, t: f64) -> Self {
        MethodConfig { method: Method::Lav, schedule: Schedule::Dyn, c, sigma: 0, t }
    }

    /// The paper's 29 configurations, in preprocessing-cost order
    /// (method rank, then smaller parameters first):
    ///
    /// * CSR × {Dyn, St, StCont}                       → 3
    /// * SELLPACK × c ∈ {4,8} × {StCont, Dyn}          → 4
    /// * Sell-c-σ × c × σ ∈ {2^9,2^12,2^14} × sched    → 12
    /// * Sell-c-R × c (Dyn only)                       → 2
    /// * LAV-1Seg × c (Dyn only)                       → 2
    /// * LAV × c × T ∈ {0.7,0.8,0.9} (Dyn only)        → 6
    pub fn catalog() -> Vec<MethodConfig> {
        let mut v = Vec::with_capacity(29);
        for s in [Schedule::Dyn, Schedule::St, Schedule::StCont] {
            v.push(MethodConfig::csr(s));
        }
        for &c in &C_VALUES {
            for s in [Schedule::StCont, Schedule::Dyn] {
                v.push(MethodConfig::sellpack(c, s));
            }
        }
        for &c in &C_VALUES {
            for &sigma in &SIGMA_VALUES {
                for s in [Schedule::StCont, Schedule::Dyn] {
                    v.push(MethodConfig::sell_c_sigma(c, sigma, s));
                }
            }
        }
        for &c in &C_VALUES {
            v.push(MethodConfig::sell_c_r(c));
        }
        for &c in &C_VALUES {
            v.push(MethodConfig::lav_1seg(c));
        }
        for &c in &C_VALUES {
            for &t in &T_VALUES {
                v.push(MethodConfig::lav(c, t));
            }
        }
        v
    }

    /// Stable human-readable label, used in reports and model files.
    pub fn label(&self) -> String {
        match self.method {
            Method::Csr => format!("CSR-{}", self.schedule.name()),
            Method::SellPack => format!("SELLPACK-c{}-{}", self.c, self.schedule.name()),
            Method::SellCSigma => {
                format!("Sell-c-s-c{}-s{}-{}", self.c, self.sigma, self.schedule.name())
            }
            Method::SellCR => format!("Sell-c-R-c{}", self.c),
            Method::Lav1Seg => format!("LAV-1Seg-c{}", self.c),
            Method::Lav => format!("LAV-c{}-T{}", self.c, (self.t * 100.0).round() as u32),
        }
    }

    /// Total order used for preprocessing-cost tie-breaking
    /// (Section 4.4): method rank first, then smaller parameters.
    pub fn preproc_key(&self) -> (u8, usize, usize, u64) {
        (self.method.preproc_rank(), self.c, self.sigma, (self.t * 1000.0) as u64)
    }

    /// Converts the matrix into this configuration's executable form.
    /// For CSR this is free (the matrix is already CSR).
    pub fn prepare<'m>(&self, m: &'m Csr) -> Prepared<'m> {
        let _span = wise_trace::span("kernel.convert");
        wise_trace::counter("kernel.convert.nnz", m.nnz() as u64);
        let prepared = match self.method {
            Method::Csr => Prepared::Csr(CsrSpmv::new(m, self.schedule)),
            Method::SellPack => {
                Prepared::Pack(Box::new(SrvPack::sellpack(m, self.c)), self.schedule)
            }
            Method::SellCSigma => Prepared::Pack(
                Box::new(SrvPack::sell_c_sigma(m, self.c, self.sigma)),
                self.schedule,
            ),
            Method::SellCR => Prepared::Pack(Box::new(SrvPack::sell_c_r(m, self.c)), self.schedule),
            Method::Lav1Seg => {
                Prepared::Pack(Box::new(SrvPack::lav_1seg(m, self.c)), self.schedule)
            }
            Method::Lav => Prepared::Pack(Box::new(SrvPack::lav(m, self.c, self.t)), self.schedule),
        };
        wise_trace::counter("kernel.convert.nnz_padded", prepared.nnz_padded() as u64);
        prepared
    }
}

/// An executable SpMV: a prepared matrix plus its scheduling policy.
#[derive(Debug)]
pub enum Prepared<'m> {
    /// CSR needs no conversion; borrows the source matrix.
    Csr(CsrSpmv<'m>),
    /// A packed SRVPack matrix (boxed: it owns large buffers).
    Pack(Box<SrvPack>, Schedule),
}

impl Prepared<'_> {
    /// `y = A x`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64], nthreads: usize, ws: &mut SpmvWorkspace) {
        let _span = wise_trace::span("kernel.spmv");
        let stored = match self {
            Prepared::Csr(k) => {
                k.spmv(x, y, nthreads);
                k.nnz()
            }
            Prepared::Pack(p, sched) => {
                p.spmv(x, y, nthreads, *sched, ws);
                p.nnz_padded()
            }
        };
        // Lower-bound traffic estimate: stored entries (value + index)
        // plus one streaming pass over x and y. Together with the
        // kernel.spmv stage time, nnz and rows give the ledger its
        // nnz/s and rows/s throughput figures.
        wise_trace::counter("kernel.spmv.nnz", stored as u64);
        wise_trace::counter("kernel.spmv.rows", y.len() as u64);
        wise_trace::counter(
            "kernel.spmv.bytes_est",
            (stored * 12 + (x.len() + y.len()) * 8) as u64,
        );
    }

    /// Stored entries including any padding (CSR has none).
    pub fn nnz_padded(&self) -> usize {
        match self {
            Prepared::Csr(_) => 0,
            Prepared::Pack(p, _) => p.nnz_padded(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use wise_gen::RmatParams;

    #[test]
    fn catalog_has_29_unique_configs() {
        let cat = MethodConfig::catalog();
        assert_eq!(cat.len(), 29);
        let mut labels: Vec<_> = cat.iter().map(|c| c.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 29);
    }

    #[test]
    fn catalog_counts_per_method() {
        let cat = MethodConfig::catalog();
        let count = |m: Method| cat.iter().filter(|c| c.method == m).count();
        assert_eq!(count(Method::Csr), 3);
        assert_eq!(count(Method::SellPack), 4);
        assert_eq!(count(Method::SellCSigma), 12);
        assert_eq!(count(Method::SellCR), 2);
        assert_eq!(count(Method::Lav1Seg), 2);
        assert_eq!(count(Method::Lav), 6);
    }

    #[test]
    fn preproc_keys_are_ordered_like_catalog_methods() {
        let cat = MethodConfig::catalog();
        for w in cat.windows(2) {
            assert!(
                w[0].method.preproc_rank() <= w[1].method.preproc_rank(),
                "catalog must be cheapest-first"
            );
        }
        // Within LAV, smaller T sorts first.
        assert!(MethodConfig::lav(4, 0.7).preproc_key() < MethodConfig::lav(4, 0.9).preproc_key());
        // Across methods, CSR cheapest, LAV most expensive.
        assert!(
            MethodConfig::csr(Schedule::Dyn).preproc_key()
                < MethodConfig::lav(4, 0.7).preproc_key()
        );
    }

    #[test]
    fn every_config_computes_correct_spmv() {
        let m = RmatParams::MED_SKEW.generate(9, 8, 21);
        let mut rng = StdRng::seed_from_u64(5);
        let x: Vec<f64> = (0..m.ncols()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut want = vec![0.0; m.nrows()];
        m.spmv_reference(&x, &mut want);
        let mut ws = SpmvWorkspace::default();
        for cfg in MethodConfig::catalog() {
            let prep = cfg.prepare(&m);
            let mut got = vec![0.0; m.nrows()];
            prep.spmv(&x, &mut got, 2, &mut ws);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!(
                    (g - w).abs() <= 1e-9 * (1.0 + w.abs()),
                    "{} row {i}: {g} vs {w}",
                    cfg.label()
                );
            }
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(MethodConfig::csr(Schedule::StCont).label(), "CSR-StCont");
        assert_eq!(MethodConfig::sellpack(8, Schedule::Dyn).label(), "SELLPACK-c8-Dyn");
        assert_eq!(
            MethodConfig::sell_c_sigma(4, 4096, Schedule::StCont).label(),
            "Sell-c-s-c4-s4096-StCont"
        );
        assert_eq!(MethodConfig::lav(8, 0.8).label(), "LAV-c8-T80");
    }
}
