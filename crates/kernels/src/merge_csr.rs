//! Merge-based CSR SpMV (Merrill & Garland, SC'16) — a load-balanced
//! CSR kernel that splits *nonzeros + rows* evenly across threads
//! instead of whole rows, so a single hub row can never serialize a
//! thread.
//!
//! This method is NOT part of the paper's 29-configuration space; it
//! exists as the worked example of WISE's extensibility (paper
//! Section 7): `examples/extend_wise.rs` and the catalog-extension API
//! can add it as a 30th configuration without touching the existing
//! models.
//!
//! The algorithm views SpMV as a merge of two sorted lists — the row
//! end-offsets `row_ptr[1..]` and the nonzero indices `0..nnz` — and
//! assigns each thread an equal slice of the merged path. A thread's
//! slice may start or end mid-row; partial sums are handed to a serial
//! fix-up pass.

use crate::sched::DisjointWriter;
use wise_matrix::Csr;

/// Finds the merge-path split point for `diagonal`: the `(row, nz)`
/// pair with `row + nz == diagonal` where the path crosses.
fn merge_path_search(diagonal: usize, row_ends: &[usize], nnz: usize) -> (usize, usize) {
    let mut lo = diagonal.saturating_sub(nnz);
    let mut hi = diagonal.min(row_ends.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        // Consume row boundary `mid` before nonzero `diagonal - mid - 1`?
        if row_ends[mid] < diagonal - mid {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    (lo, diagonal - lo)
}

/// Merge-based parallel CSR SpMV: `y = A x`.
///
/// Work per thread is `(nnz + nrows) / nthreads` items regardless of
/// the row-length distribution — perfect static load balance by
/// construction.
pub fn merge_spmv(m: &Csr, x: &[f64], y: &mut [f64], nthreads: usize) {
    assert_eq!(x.len(), m.ncols(), "x length must equal ncols");
    assert_eq!(y.len(), m.nrows(), "y length must equal nrows");
    let nrows = m.nrows();
    let nnz = m.nnz();
    if nrows == 0 {
        return;
    }
    let row_ends = &m.row_ptr()[1..];
    let vals = m.vals();
    let cols = m.col_idx();
    let nthreads = nthreads.max(1).min(nrows + nnz);
    let total = nrows + nnz;

    // Per-thread carry-out: (row the thread ended inside, partial sum).
    let mut carries: Vec<(usize, f64)> = vec![(usize::MAX, 0.0); nthreads];
    {
        let ywriter = DisjointWriter::new(&mut *y);
        let carrywriter = DisjointWriter::new(&mut carries);
        std::thread::scope(|s| {
            for t in 0..nthreads {
                let ywriter = &ywriter;
                let carrywriter = &carrywriter;
                let run = move || {
                    let d0 = t * total / nthreads;
                    let d1 = (t + 1) * total / nthreads;
                    let (mut row, mut k) = merge_path_search(d0, row_ends, nnz);
                    let (row_end, k_end) = merge_path_search(d1, row_ends, nnz);
                    let mut acc = 0.0f64;
                    // Full rows owned by this thread.
                    while row < row_end {
                        while k < row_ends[row] {
                            acc += vals[k] * x[cols[k] as usize];
                            k += 1;
                        }
                        // SAFETY: each full row is completed by exactly
                        // one thread (merge-path slices are disjoint).
                        unsafe { ywriter.write(row, acc) };
                        acc = 0.0;
                        row += 1;
                    }
                    // Partial tail of the row this slice ends inside.
                    while k < k_end {
                        acc += vals[k] * x[cols[k] as usize];
                        k += 1;
                    }
                    // SAFETY: slot `t` is written only by thread `t`.
                    unsafe {
                        carrywriter
                            .write(t, if row < nrows { (row, acc) } else { (usize::MAX, 0.0) })
                    };
                };
                if nthreads == 1 {
                    run();
                } else {
                    s.spawn(run);
                }
            }
        });
    }

    // Serial fix-up: rows split across threads were written by the
    // completing thread; add every carry-out into its row.
    for &(row, partial) in &carries {
        if row != usize::MAX {
            y[row] += partial;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use wise_gen::RmatParams;

    fn check(m: &Csr, nthreads: usize, tag: &str) {
        let mut rng = StdRng::seed_from_u64(7);
        let x: Vec<f64> = (0..m.ncols()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut want = vec![0.0; m.nrows()];
        m.spmv_reference(&x, &mut want);
        let mut got = vec![f64::NAN; m.nrows()];
        merge_spmv(m, &x, &mut got, nthreads);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() <= 1e-9 * (1.0 + w.abs()),
                "{tag} t={nthreads} row {i}: {g} vs {w}"
            );
        }
    }

    #[test]
    fn merge_path_search_basics() {
        // 3 rows with ends [2, 2, 5] (middle row empty), nnz = 5.
        let row_ends = [2usize, 2, 5];
        assert_eq!(merge_path_search(0, &row_ends, 5), (0, 0));
        // Full path consumes 3 rows + 5 nnz = 8 items.
        assert_eq!(merge_path_search(8, &row_ends, 5), (3, 5));
        // Monotone non-decreasing components.
        let mut prev = (0, 0);
        for d in 0..=8 {
            let p = merge_path_search(d, &row_ends, 5);
            assert!(p.0 >= prev.0 && p.1 >= prev.1, "d={d}");
            assert_eq!(p.0 + p.1, d);
            prev = p;
        }
    }

    #[test]
    fn matches_reference_across_thread_counts() {
        let m = RmatParams::HIGH_SKEW.generate_shuffled(10, 8, 3);
        for t in [1, 2, 3, 8, 24] {
            check(&m, t, "hs");
        }
    }

    #[test]
    fn hub_rows_are_split_across_threads() {
        // One giant row + many tiny rows: the hub is shared, so every
        // thread boundary inside it must still give the exact result.
        let n = 64usize;
        let mut row_ptr = vec![0usize];
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for c in 0..n as u32 {
            cols.push(c);
            vals.push(1.0);
        }
        row_ptr.push(cols.len());
        for r in 1..n {
            cols.push((r % n) as u32);
            vals.push(2.0);
            row_ptr.push(cols.len());
        }
        let m = Csr::try_new(n, n, row_ptr, cols, vals).unwrap();
        for t in [2, 5, 16] {
            check(&m, t, "hub");
        }
    }

    #[test]
    fn empty_rows_and_empty_matrix() {
        check(&Csr::zero(10, 10), 4, "zero");
        let m =
            Csr::try_new(5, 5, vec![0, 0, 3, 3, 3, 3], vec![0, 2, 4], vec![1.0, 2.0, 3.0]).unwrap();
        check(&m, 3, "gaps");
    }

    #[test]
    fn single_row_single_thread() {
        let m = Csr::try_new(1, 4, vec![0, 4], vec![0, 1, 2, 3], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        check(&m, 1, "single");
        check(&m, 7, "single-many-threads");
    }
}
