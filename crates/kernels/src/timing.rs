//! Robust wall-clock measurement helpers.
//!
//! SpMV iterations on small matrices run in microseconds, so single
//! measurements are hopelessly noisy. [`measure_median`] runs a warmup
//! then repeated timed runs and reports the full sample spread as a
//! [`Samples`] summary — the estimator the bench harness uses when
//! operating in wall-clock (`--measured`) mode. Every timed iteration
//! is also recorded into the `timing.measure_median` trace histogram
//! (when `wise-trace` is enabled), so measured runs leave their noise
//! profile in the emitted `perf_summary.json` instead of discarding it.

use std::time::{Duration, Instant};

/// The spread of one [`measure_median`] run: order statistics over the
/// timed iterations, not just the median.
///
/// All percentiles (including `median`) use one definition —
/// *nearest-rank with rounding*: percentile `p` is the sorted sample at
/// index `round((len - 1) · p)`, with ties rounding away from zero. For
/// even-length samples the median is therefore the **upper** middle
/// element (index `len / 2`), and `median == p50` by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Samples {
    /// The median timed iteration (the headline estimate). Identical to
    /// `p50` — both use the nearest-rank definition above.
    pub median: Duration,
    pub min: Duration,
    /// 50th percentile; equals `median` (kept for symmetry with `p95`).
    pub p50: Duration,
    pub p95: Duration,
    pub max: Duration,
    /// Sum of every timed iteration — what the whole measurement
    /// actually cost in wall-clock terms (the honest "preprocessing
    /// spent" figure for trial-executing inspectors).
    pub total: Duration,
    /// Timed iterations taken (after warmup).
    pub iters: usize,
}

impl Samples {
    /// Summarizes a set of raw durations (need not be sorted).
    pub fn from_durations(mut samples: Vec<Duration>) -> Samples {
        assert!(!samples.is_empty(), "need at least one sample");
        let total: Duration = samples.iter().sum();
        samples.sort_unstable();
        // Nearest-rank with rounding (see the type docs); the single
        // definition shared by every field so they cannot disagree.
        let pct = |p: f64| samples[((samples.len() - 1) as f64 * p).round() as usize];
        Samples {
            median: pct(0.50),
            min: samples[0],
            p50: pct(0.50),
            p95: pct(0.95),
            max: samples[samples.len() - 1],
            total,
            iters: samples.len(),
        }
    }

    /// Relative spread `(p95 - min) / median` — a quick noise gauge.
    pub fn relative_spread(&self) -> f64 {
        let median = self.median.as_secs_f64();
        if median == 0.0 {
            0.0
        } else {
            (self.p95.as_secs_f64() - self.min.as_secs_f64()) / median
        }
    }
}

/// Runs `f` `warmup` times untimed, then `iters` timed runs, returning
/// the sample summary (median, min/p50/p95/max, count). `iters` of 0 is
/// treated as 1. Each timed run is recorded into the
/// `timing.measure_median` trace histogram when tracing is enabled.
pub fn measure_median(mut f: impl FnMut(), warmup: usize, iters: usize) -> Samples {
    for _ in 0..warmup {
        f();
    }
    let iters = iters.max(1);
    let mut samples: Vec<Duration> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        let d = t0.elapsed();
        wise_trace::observe_ns("timing.measure_median", d.as_nanos() as u64);
        samples.push(d);
    }
    Samples::from_durations(samples)
}

/// Times a single invocation (used for one-shot preprocessing costs).
pub fn measure_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_warmup_plus_iters() {
        let calls = AtomicUsize::new(0);
        let s = measure_median(
            || {
                calls.fetch_add(1, Ordering::Relaxed);
            },
            3,
            5,
        );
        assert_eq!(calls.load(Ordering::Relaxed), 8);
        assert_eq!(s.iters, 5);
        assert!(s.median < Duration::from_secs(1));
    }

    #[test]
    fn zero_iters_still_measures_once() {
        let calls = AtomicUsize::new(0);
        let s = measure_median(
            || {
                calls.fetch_add(1, Ordering::Relaxed);
            },
            0,
            0,
        );
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(s.iters, 1);
        assert_eq!(s.min, s.max);
    }

    #[test]
    fn samples_order_statistics() {
        let ms = Duration::from_millis;
        let s = Samples::from_durations(vec![ms(5), ms(1), ms(3), ms(2), ms(4)]);
        assert_eq!(s.min, ms(1));
        assert_eq!(s.median, ms(3));
        assert_eq!(s.p50, ms(3));
        assert_eq!(s.p95, ms(5)); // round(4 * 0.95) = 4 -> last sample
        assert_eq!(s.max, ms(5));
        assert_eq!(s.total, ms(15));
        assert_eq!(s.iters, 5);
        assert!((s.relative_spread() - (0.005 - 0.001) / 0.003).abs() < 1e-9);
    }

    #[test]
    fn spread_ordering_invariants() {
        let s = measure_median(
            || {
                std::hint::black_box((0..100).sum::<u64>());
            },
            1,
            9,
        );
        assert!(s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.max);
        assert!(s.min <= s.median && s.median <= s.max);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_rejected() {
        Samples::from_durations(vec![]);
    }

    #[test]
    fn median_equals_p50_on_even_lengths() {
        let ms = Duration::from_millis;
        for len in [2usize, 4, 6, 10] {
            let s = Samples::from_durations((1..=len as u64).map(ms).collect());
            assert_eq!(s.median, s.p50, "len={len}");
            // Upper middle element by the documented definition.
            assert_eq!(s.median, ms(len as u64 / 2 + 1), "len={len}");
            assert_eq!(s.total, ms((1..=len as u64).sum()), "len={len}");
        }
    }

    #[test]
    fn measure_once_returns_value() {
        let (v, d) = measure_once(|| 2 + 2);
        assert_eq!(v, 4);
        assert!(d < Duration::from_secs(1));
    }
}
