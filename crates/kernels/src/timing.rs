//! Robust wall-clock measurement helpers.
//!
//! SpMV iterations on small matrices run in microseconds, so single
//! measurements are hopelessly noisy. [`measure_median`] runs a warmup
//! then reports the median of repeated timed runs — the estimator the
//! bench harness uses when operating in wall-clock (`--measured`) mode.

use std::time::{Duration, Instant};

/// Runs `f` `warmup` times untimed, then `iters` timed runs, returning
/// the median duration. `iters` of 0 is treated as 1.
pub fn measure_median(mut f: impl FnMut(), warmup: usize, iters: usize) -> Duration {
    for _ in 0..warmup {
        f();
    }
    let iters = iters.max(1);
    let mut samples: Vec<Duration> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed());
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Times a single invocation (used for one-shot preprocessing costs).
pub fn measure_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_warmup_plus_iters() {
        let calls = AtomicUsize::new(0);
        let d = measure_median(
            || {
                calls.fetch_add(1, Ordering::Relaxed);
            },
            3,
            5,
        );
        assert_eq!(calls.load(Ordering::Relaxed), 8);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn zero_iters_still_measures_once() {
        let calls = AtomicUsize::new(0);
        measure_median(
            || {
                calls.fetch_add(1, Ordering::Relaxed);
            },
            0,
            0,
        );
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn measure_once_returns_value() {
        let (v, d) = measure_once(|| 2 + 2);
        assert_eq!(v, 4);
        assert!(d < Duration::from_secs(1));
    }
}
