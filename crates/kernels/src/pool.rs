//! Persistent SpMV worker pool.
//!
//! Every labeling run times SpMV thousands of times (29 catalog
//! configurations × many matrices × `measure_median` iterations), and
//! the spawn executor in [`crate::sched`] used to pay a fresh
//! `std::thread::scope` spawn+join per call — tens of microseconds that
//! dominate small-matrix kernels and inflate every measured label. This
//! module keeps the workers alive across calls: they park on a condvar
//! and are woken by an epoch bump, so a dispatch costs one mutex
//! round-trip per side instead of OS thread creation.
//!
//! # Protocol (epoch-sequenced handoff)
//!
//! Shared state is one mutex-guarded [`JobState`] plus two condvars:
//!
//! 1. **Publish** — the dispatcher stores the lifetime-erased job
//!    reference, sets `remaining = nworkers`, increments `epoch`, and
//!    `notify_all`s the work condvar.
//! 2. **Pick up** — each worker sleeps until `epoch` differs from the
//!    last value it saw, then snapshots the *current* job under the
//!    lock. Workers whose index is `>= nworkers` just record the epoch
//!    and go back to sleep; a worker that slept through an entire job
//!    was by construction not a participant of it (the dispatcher does
//!    not return while a participant has yet to run), so it can never
//!    execute a stale job.
//! 3. **Complete** — each participant runs the job body (wrapped in
//!    `catch_unwind`), then decrements `remaining` under the lock; the
//!    last one signals the done condvar. The dispatcher waits (short
//!    spin on a mirror atomic, then condvar) until `remaining == 0`.
//!
//! # Safety of the lifetime-erased job
//!
//! [`WorkerPool::run`] transmutes `&'a (dyn Fn(usize) + Sync)` to
//! `&'static` before publishing it. This is sound because `run` is a
//! completion barrier: it does not return until every participating
//! worker has decremented `remaining`, and workers touch the job
//! reference only between pickup and their decrement. Non-participants
//! never dereference it. The borrow therefore strictly outlives every
//! use, exactly as in `std::thread::scope`.
//!
//! # Schedule preservation
//!
//! The pool does not decide *what* a worker runs — it only delivers a
//! logical thread index `t ∈ 0..nworkers` to the job body. The
//! chunk→thread assignment logic (Dyn / St / StCont, paper §2.1) lives
//! in [`crate::sched::parallel_for_chunks`]'s shared per-thread loop,
//! which is the same code the spawn executor runs, so scheduling
//! semantics are identical by construction (and pinned by the
//! `pool_parity` test suite).
//!
//! # Panics
//!
//! A panic inside a job body is caught on the worker, recorded, and
//! re-thrown on the dispatching thread after the barrier completes; the
//! worker itself survives and the pool keeps serving subsequent
//! dispatches.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;
use wise_trace::env_knob::{Knob, KnobError};

thread_local! {
    /// Logical executor-thread index of the current thread, if it is
    /// running inside a pool worker or a spawn-executor thread.
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The logical thread index the current thread is executing under, or
/// `None` outside any executor (e.g. on the main thread, where the
/// inline fallback of `parallel_for_chunks` runs).
///
/// Used by the parity suite to record chunk→thread assignments, and by
/// `parallel_for_chunks` to detect (and reroute) nested parallelism so
/// a pool worker never dispatches to its own pool.
pub fn current_worker_index() -> Option<usize> {
    WORKER_INDEX.with(|w| w.get())
}

/// Runs `f` with [`current_worker_index`] set to `index` (used by the
/// spawn executor, whose threads are born and die inside one call).
pub(crate) fn with_worker_index<R>(index: usize, f: impl FnOnce() -> R) -> R {
    WORKER_INDEX.with(|w| {
        let prev = w.replace(Some(index));
        let out = f();
        w.set(prev);
        out
    })
}

/// A published job: the erased body plus how many workers participate.
#[derive(Clone, Copy)]
struct ErasedJob {
    /// Lifetime-erased by [`WorkerPool::run`]; valid until every
    /// participant has decremented `remaining` (see module docs).
    body: &'static (dyn Fn(usize) + Sync),
    nworkers: usize,
    /// The dispatcher's flight-recorder request id
    /// ([`wise_trace::telemetry::current_request`]), forwarded to the
    /// workers so kernel work is attributed to the selection request
    /// that dispatched it (0 = none).
    request: u64,
}

struct JobState {
    /// Job sequence number; bumped at every publish. Workers detect
    /// fresh work by comparing against the last epoch they saw.
    epoch: u64,
    /// The most recently published job. Never cleared: a worker only
    /// reads it after observing a fresh epoch under the same lock, and
    /// the dispatcher of that epoch's job is still inside `run`.
    job: Option<ErasedJob>,
    /// Participants of the current job that have not yet finished.
    remaining: usize,
    /// Whether any participant of the current job panicked.
    panicked: bool,
    /// Tells workers to exit (local pools only; set by `Drop`).
    shutdown: bool,
}

struct Shared {
    state: Mutex<JobState>,
    /// Signaled on publish and on shutdown.
    work_cv: Condvar,
    /// Signaled by the last participant of a job.
    done_cv: Condvar,
    /// Mirror of `state.epoch` for the workers' pre-lock spin.
    epoch_hint: AtomicU64,
    /// Mirror of `state.remaining` for the dispatcher's pre-wait spin.
    remaining_hint: AtomicUsize,
}

/// Recovers the guard even if a mutex was poisoned. Pool state is
/// always left consistent before any user code (which is what can
/// panic) runs, so a poisoned lock carries no torn invariants.
fn lock(m: &Mutex<JobState>) -> MutexGuard<'_, JobState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait<'a>(cv: &Condvar, g: MutexGuard<'a, JobState>) -> MutexGuard<'a, JobState> {
    cv.wait(g).unwrap_or_else(|e| e.into_inner())
}

/// The `WISE_POOL_SPIN` knob, on the shared [`wise_trace::env_knob`]
/// grammar.
const SPIN_KNOB: Knob = Knob::new("WISE_POOL_SPIN", "a non-negative integer");

/// Parses a raw `WISE_POOL_SPIN` value. `Ok(None)` means unset (use the
/// automatic budget); `Ok(Some(0))` is valid and disables spinning
/// entirely; `Err` means set but malformed, which [`spin_budget`]
/// reports loudly instead of silently ignoring.
pub fn parse_wise_pool_spin(raw: Option<&str>) -> Result<Option<u32>, KnobError> {
    SPIN_KNOB.parse(raw, |norm| norm.parse::<u32>().ok())
}

/// Spin iterations before sleeping on a condvar, tunable via
/// `WISE_POOL_SPIN` (0 disables spinning). Defaults to 512 on
/// multi-core hosts and 0 on single-core ones, where spinning only
/// steals cycles from the thread being waited on. A malformed value
/// falls back to the automatic budget *loudly* — one stderr warning
/// plus a `pool.spin_env_invalid` trace counter — never silently.
fn spin_budget() -> u32 {
    static BUDGET: OnceLock<u32> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        let auto = || {
            let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            if cores > 1 {
                512
            } else {
                0
            }
        };
        SPIN_KNOB
            .read("pool.spin_env_invalid", "falling back to the automatic spin budget", |norm| {
                norm.parse::<u32>().ok()
            })
            .unwrap_or_else(auto)
    })
}

/// A persistent pool of parked worker threads executing chunk-loop
/// jobs. See the module docs for the protocol; almost all callers want
/// the process-wide [`global`] instance, which `parallel_for_chunks`
/// uses. Local instances (tests, benchmarks) shut their workers down on
/// `Drop`.
pub struct WorkerPool {
    shared: std::sync::Arc<Shared>,
    /// Serializes dispatches (one job in flight per pool) and owns the
    /// worker handles for `Drop`. Lock order: `workers` before `state`.
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Creates an empty pool; workers are spawned lazily on the first
    /// `run` that needs them and the pool grows whenever a larger
    /// `nworkers` is requested.
    pub fn new() -> WorkerPool {
        WorkerPool {
            shared: std::sync::Arc::new(Shared {
                state: Mutex::new(JobState {
                    epoch: 0,
                    job: None,
                    remaining: 0,
                    panicked: false,
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
                epoch_hint: AtomicU64::new(0),
                remaining_hint: AtomicUsize::new(0),
            }),
            workers: Mutex::new(Vec::new()),
        }
    }

    /// Number of live worker threads.
    pub fn size(&self) -> usize {
        self.workers.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Runs `body(t)` for every logical thread index `t` in
    /// `0..nworkers`, in parallel on the pool's workers, and returns
    /// once all of them have finished (completion barrier).
    ///
    /// `nworkers == 1` runs inline. Calls from inside a pool worker run
    /// inline serially as well — dispatching to the own pool would
    /// deadlock on the in-flight job (`parallel_for_chunks` reroutes
    /// nested parallelism to the spawn executor before this can
    /// happen).
    ///
    /// # Panics
    /// Re-throws (as a new panic) if any participant's body panicked.
    pub fn run(&self, nworkers: usize, body: &(dyn Fn(usize) + Sync)) {
        assert!(nworkers >= 1, "need at least one worker");
        if nworkers == 1 || current_worker_index().is_some() {
            for t in 0..nworkers {
                body(t);
            }
            return;
        }
        let t0 = wise_trace::enabled().then(Instant::now);

        // One job in flight per pool; concurrent dispatchers queue here.
        let mut handles = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        if handles.len() < nworkers {
            self.grow(&mut handles, nworkers);
        }

        // SAFETY: lifetime erasure only. This function does not return
        // until every participant has finished with `body` (completion
        // barrier below), so the reference outlives all uses.
        let body: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(body) };

        let panicked = {
            let request = wise_trace::telemetry::current_request();
            let mut st = lock(&self.shared.state);
            debug_assert_eq!(st.remaining, 0, "dispatch lock admitted overlapping jobs");
            st.job = Some(ErasedJob { body, nworkers, request });
            st.remaining = nworkers;
            st.panicked = false;
            st.epoch += 1;
            self.shared.remaining_hint.store(nworkers, Ordering::Release);
            self.shared.epoch_hint.store(st.epoch, Ordering::Release);
            drop(st);
            self.shared.work_cv.notify_all();

            // Completion barrier: spin briefly on the mirror, then
            // sleep. The final lock also synchronizes `panicked`.
            for _ in 0..spin_budget() {
                if self.shared.remaining_hint.load(Ordering::Acquire) == 0 {
                    break;
                }
                std::hint::spin_loop();
            }
            let mut st = lock(&self.shared.state);
            while st.remaining > 0 {
                st = wait(&self.shared.done_cv, st);
            }
            st.panicked
        };
        drop(handles);

        if let Some(t0) = t0 {
            wise_trace::counter("pool.jobs", 1);
            wise_trace::observe_ns("pool.dispatch", t0.elapsed().as_nanos() as u64);
        }
        if panicked {
            panic!("a worker panicked inside a pooled job (original panic reported by the worker)");
        }
    }

    /// Spawns workers `handles.len()..target`. Caller holds the
    /// dispatch lock, so no job is in flight while the pool grows.
    fn grow(&self, handles: &mut Vec<JoinHandle<()>>, target: usize) {
        let _span = wise_trace::span("pool.start");
        // Workers must skip every epoch published before they existed;
        // snapshotting under the state lock makes that exact.
        let epoch_at_spawn = lock(&self.shared.state).epoch;
        for id in handles.len()..target {
            let shared = std::sync::Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name(format!("wise-pool-{id}"))
                .spawn(move || worker_loop(shared, id, epoch_at_spawn))
                .expect("spawn pool worker");
            handles.push(handle);
        }
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::new()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let handles = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: std::sync::Arc<Shared>, id: usize, mut seen: u64) {
    WORKER_INDEX.with(|w| w.set(Some(id)));
    loop {
        // Pre-lock spin: cheap wakeup when a job lands immediately.
        for _ in 0..spin_budget() {
            if shared.epoch_hint.load(Ordering::Acquire) != seen {
                break;
            }
            std::hint::spin_loop();
        }
        let job = {
            let mut st = lock(&shared.state);
            while st.epoch == seen && !st.shutdown {
                st = wait(&shared.work_cv, st);
            }
            if st.shutdown {
                return;
            }
            seen = st.epoch;
            st.job.expect("epoch advanced without a published job")
        };
        if id < job.nworkers {
            // Participant: run our share, then report completion. The
            // catch_unwind keeps the worker alive across body panics;
            // the dispatcher re-throws after the barrier. The scope
            // attributes the worker's spans to the dispatching request.
            let ok = catch_unwind(AssertUnwindSafe(|| {
                let _req = wise_trace::telemetry::RequestScope::enter(job.request);
                (job.body)(id)
            }))
            .is_ok();
            let mut st = lock(&shared.state);
            if !ok {
                st.panicked = true;
            }
            st.remaining -= 1;
            shared.remaining_hint.store(st.remaining, Ordering::Release);
            if st.remaining == 0 {
                drop(st);
                shared.done_cv.notify_all();
            }
        }
    }
}

/// The process-wide pool used by `parallel_for_chunks`. Created empty
/// on first use; grows to the largest `nthreads` ever requested and
/// lives for the rest of the process (parked workers cost no CPU).
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(WorkerPool::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;

    #[test]
    fn runs_every_worker_index_exactly_once() {
        let pool = WorkerPool::new();
        for &n in &[1usize, 2, 5, 8] {
            let hits: Vec<TestCounter> = (0..n).map(|_| TestCounter::new(0)).collect();
            pool.run(n, &|t| {
                hits[t].fetch_add(1, Ordering::Relaxed);
            });
            for (t, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "worker {t} of {n}");
            }
        }
        assert!(pool.size() >= 8);
    }

    #[test]
    fn grows_on_demand_and_reuses_workers() {
        let pool = WorkerPool::new();
        assert_eq!(pool.size(), 0);
        pool.run(3, &|_| {});
        assert_eq!(pool.size(), 3);
        pool.run(2, &|_| {}); // smaller job: no shrink, no growth
        assert_eq!(pool.size(), 3);
        pool.run(6, &|_| {});
        assert_eq!(pool.size(), 6);
    }

    #[test]
    fn worker_index_visible_inside_job() {
        let pool = WorkerPool::new();
        let seen: Vec<TestCounter> = (0..4).map(|_| TestCounter::new(u64::MAX)).collect();
        pool.run(4, &|t| {
            seen[t].store(current_worker_index().expect("inside worker") as u64, Ordering::Relaxed);
        });
        for (t, s) in seen.iter().enumerate() {
            assert_eq!(s.load(Ordering::Relaxed), t as u64);
        }
        assert_eq!(current_worker_index(), None, "main thread is not a worker");
    }

    #[test]
    fn nested_run_from_worker_falls_back_inline() {
        let pool = WorkerPool::new();
        let total = TestCounter::new(0);
        pool.run(2, &|_| {
            // Calling into the same (or any) pool from a worker must
            // not deadlock; it runs inline.
            pool.run(3, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn survives_body_panics() {
        let pool = WorkerPool::new();
        for round in 0..3 {
            let err = catch_unwind(AssertUnwindSafe(|| {
                pool.run(4, &|t| {
                    if t == 2 {
                        panic!("injected panic (round {round})");
                    }
                });
            }));
            assert!(err.is_err(), "panic must propagate to the dispatcher");
            // The pool still works after the poisoned job.
            let hits: Vec<TestCounter> = (0..4).map(|_| TestCounter::new(0)).collect();
            pool.run(4, &|t| {
                hits[t].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn forwards_dispatcher_request_id_to_workers() {
        use wise_trace::telemetry;
        let pool = WorkerPool::new();
        let id = telemetry::next_request_id();
        let seen: Vec<TestCounter> = (0..3).map(|_| TestCounter::new(u64::MAX)).collect();
        {
            let _scope = telemetry::RequestScope::enter(id);
            pool.run(3, &|t| {
                seen[t].store(telemetry::current_request(), Ordering::Relaxed);
            });
        }
        for (t, s) in seen.iter().enumerate() {
            assert_eq!(s.load(Ordering::Relaxed), id, "worker {t}");
        }
        // Outside any request scope, workers see 0 again.
        pool.run(3, &|t| {
            seen[t].store(telemetry::current_request(), Ordering::Relaxed);
        });
        for s in &seen {
            assert_eq!(s.load(Ordering::Relaxed), 0);
        }
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new();
        pool.run(4, &|_| {});
        drop(pool); // must not hang
    }

    #[test]
    fn spin_env_parses_valid_budgets() {
        assert_eq!(parse_wise_pool_spin(None), Ok(None));
        // 0 is a *valid* setting: it disables spinning.
        assert_eq!(parse_wise_pool_spin(Some("0")), Ok(Some(0)));
        assert_eq!(parse_wise_pool_spin(Some("512")), Ok(Some(512)));
        assert_eq!(parse_wise_pool_spin(Some(" 64 ")), Ok(Some(64)));
        assert_eq!(parse_wise_pool_spin(Some("4294967295")), Ok(Some(u32::MAX)));
    }

    #[test]
    fn spin_env_rejects_malformed_budgets() {
        assert_eq!(
            parse_wise_pool_spin(Some("")),
            Err(KnobError::Empty { knob: "WISE_POOL_SPIN" })
        );
        assert_eq!(
            parse_wise_pool_spin(Some("  ")),
            Err(KnobError::Empty { knob: "WISE_POOL_SPIN" })
        );
        for bad in ["-1", "lots", "1e3", "4294967296"] {
            let err = parse_wise_pool_spin(Some(bad)).unwrap_err();
            match &err {
                KnobError::Invalid { knob: "WISE_POOL_SPIN", value, .. } => {
                    assert_eq!(value, bad, "input {bad:?}");
                }
                other => panic!("input {bad:?}: unexpected error {other:?}"),
            }
            assert!(err.to_string().contains("WISE_POOL_SPIN"));
        }
    }
}
