//! Segmented Reordered Vector Packing — the paper's unified matrix
//! format (Appendix A) from which all five vectorized SpMV methods are
//! executed by a single kernel.
//!
//! The format composes three orthogonal transformations:
//!
//! * **Column Frequency Sorting (CFS)** — relabel columns by descending
//!   nonzero count so hot input-vector entries cluster in cache lines;
//! * **Segmentation** — split the (CFS-ordered) columns into a *dense*
//!   segment holding a fraction `T` of the nonzeros and a *sparse*
//!   remainder, so each segment's slice of the input vector fits in the
//!   LLC;
//! * **Row reordering + chunk packing** — within each segment, order
//!   rows (identity for SELLPACK, σ-window sort for Sell-c-σ, global
//!   Row Frequency Sorting for Sell-c-R/LAV), group `c` consecutive
//!   rows into a chunk, and pad every row of a chunk to the chunk's
//!   maximum length so one vector instruction processes `c` rows.
//!
//! | Method     | CFS | Segments | Row order      |
//! |------------|-----|----------|----------------|
//! | SELLPACK   | no  | 1        | original       |
//! | Sell-c-σ   | no  | 1        | σ-window sort  |
//! | Sell-c-R   | no  | 1        | global (RFS)   |
//! | LAV-1Seg   | yes | 1        | global (RFS)   |
//! | LAV        | yes | 2 (T)    | global (RFS)   |

use crate::sched::{parallel_for_chunks, DisjointWriter, Schedule};
use crate::simd::{self, SimdIsa};
use serde::{Deserialize, Serialize};
use wise_matrix::{Csr, Permutation};

/// Row-reordering policy applied within each segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SigmaSpec {
    /// Keep original row order (SELLPACK).
    None,
    /// Stable sort by descending row length within windows of σ rows
    /// (Sell-c-σ).
    Window(usize),
    /// Stable global sort by descending row length — Row Frequency
    /// Sorting (Sell-c-R and the LAV family). Rows with no nonzeros in
    /// the segment are dropped.
    Full,
}

/// Column segmentation policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SegmentSpec {
    /// A single segment spanning all columns.
    One,
    /// Two segments: the dense one holds the smallest prefix of
    /// (CFS-ordered) columns covering at least fraction `T` of the
    /// nonzeros; the sparse one holds the rest.
    DenseFraction(f64),
}

/// Full packing configuration (one per method; see module table).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PackConfig {
    /// Chunk height = vector width (the paper uses 4 and 8).
    pub c: usize,
    pub sigma: SigmaSpec,
    /// Apply Column Frequency Sorting first.
    pub cfs: bool,
    pub segments: SegmentSpec,
}

/// One packed column segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Original row ids in pack order (chunk-major). Rows dropped by
    /// RFS (zero nonzeros in this segment) are absent.
    row_order: Vec<u32>,
    /// Per-chunk offsets in *column steps*: chunk `k` spans
    /// `offsets[k]..offsets[k+1]` steps, each step holding `c` lanes.
    offsets: Vec<usize>,
    /// Column ids, `c` lanes per step; padding lanes hold column 0.
    col_ids: Vec<u32>,
    /// Values, `c` lanes per step; padding lanes hold 0.0.
    vals: Vec<f64>,
    /// Real (unpadded) nonzeros in this segment.
    nnz_real: usize,
    /// Half-open range of (post-CFS) column ids this segment covers.
    col_range: (usize, usize),
}

impl Segment {
    #[inline]
    pub fn nchunks(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Width (in column steps) of chunk `k`.
    #[inline]
    pub fn chunk_width(&self, k: usize) -> usize {
        self.offsets[k + 1] - self.offsets[k]
    }

    /// Rows (original ids) written by chunk `k`.
    #[inline]
    pub fn chunk_rows(&self, k: usize, c: usize) -> &[u32] {
        let lo = k * c;
        let hi = ((k + 1) * c).min(self.row_order.len());
        &self.row_order[lo..hi]
    }

    pub fn row_order(&self) -> &[u32] {
        &self.row_order
    }

    pub fn nnz_real(&self) -> usize {
        self.nnz_real
    }

    /// Total stored entries including padding.
    pub fn nnz_padded(&self, c: usize) -> usize {
        self.offsets.last().copied().unwrap_or(0) * c
    }

    pub fn col_range(&self) -> (usize, usize) {
        self.col_range
    }

    pub fn col_ids(&self) -> &[u32] {
        &self.col_ids
    }
}

/// A matrix packed in SRVPack form, ready for vectorized SpMV.
///
/// ```
/// use wise_kernels::{SrvPack, Schedule};
/// use wise_kernels::srvpack::SpmvWorkspace;
/// let m = wise_matrix::Csr::identity(16);
/// let pack = SrvPack::lav(&m, 4, 0.8);
/// let x: Vec<f64> = (0..16).map(|i| i as f64).collect();
/// let mut y = vec![0.0; 16];
/// pack.spmv(&x, &mut y, 2, Schedule::Dyn, &mut SpmvWorkspace::default());
/// assert_eq!(y, x); // identity matrix
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SrvPack {
    nrows: usize,
    ncols: usize,
    config: PackConfig,
    /// CFS permutation (`new -> old`), if CFS was applied. The kernel
    /// gathers the input vector through it per call.
    col_perm: Option<Permutation>,
    segments: Vec<Segment>,
    /// Requested SIMD width (0 = auto, 1 = scalar; see
    /// [`SrvPack::with_simd`]). Defaults to 0 so packs serialized
    /// before this field existed deserialize to auto.
    #[serde(default)]
    simd: usize,
    /// Requested software prefetch distance in vector steps (see
    /// [`SrvPack::with_prefetch`]). `None` (the serde default, so old
    /// packs still load) defers to `WISE_PREFETCH` / the auto policy.
    #[serde(default)]
    prefetch: Option<usize>,
    /// Requested chunk-interleave factor (see
    /// [`SrvPack::with_interleave`]): 0 = auto policy, 1 = off, ≥ 2 =
    /// pair chunks. Serde-defaulted for the same back-compat reason.
    #[serde(default)]
    interleave: usize,
}

/// Reusable scratch buffers for [`SrvPack::spmv`] so iterative callers
/// (the dominant SpMV use case) pay no per-call allocation.
#[derive(Debug, Default)]
pub struct SpmvWorkspace {
    xperm: Vec<f64>,
}

impl SrvPack {
    // ---- Method constructors (Table 1) ------------------------------

    /// Sliced ELLPACK: chunks of `c` consecutive rows, no reordering.
    pub fn sellpack(m: &Csr, c: usize) -> SrvPack {
        Self::build(
            m,
            PackConfig { c, sigma: SigmaSpec::None, cfs: false, segments: SegmentSpec::One },
        )
    }

    /// Sell-c-σ: rows sorted by length within σ-row windows.
    pub fn sell_c_sigma(m: &Csr, c: usize, sigma: usize) -> SrvPack {
        Self::build(
            m,
            PackConfig {
                c,
                sigma: SigmaSpec::Window(sigma),
                cfs: false,
                segments: SegmentSpec::One,
            },
        )
    }

    /// Sell-c-R: global Row Frequency Sorting (σ = number of rows).
    pub fn sell_c_r(m: &Csr, c: usize) -> SrvPack {
        Self::build(
            m,
            PackConfig { c, sigma: SigmaSpec::Full, cfs: false, segments: SegmentSpec::One },
        )
    }

    /// LAV with a single segment: CFS then RFS.
    pub fn lav_1seg(m: &Csr, c: usize) -> SrvPack {
        Self::build(
            m,
            PackConfig { c, sigma: SigmaSpec::Full, cfs: true, segments: SegmentSpec::One },
        )
    }

    /// Full LAV: CFS, dense/sparse segmentation at fraction `t`, RFS per
    /// segment.
    pub fn lav(m: &Csr, c: usize, t: f64) -> SrvPack {
        Self::build(
            m,
            PackConfig {
                c,
                sigma: SigmaSpec::Full,
                cfs: true,
                segments: SegmentSpec::DenseFraction(t),
            },
        )
    }

    // ---- Generic builder ---------------------------------------------

    /// Packs `m` per `config`. Cost is O(nnz + rows·log σ-window); this
    /// is the preprocessing the selection heuristic charges for. Chunk
    /// filling is parallelized over the worker pool
    /// ([`crate::sched::default_threads`] workers); the output is
    /// bit-identical to [`SrvPack::build_serial`] because each chunk
    /// owns a disjoint `offsets`-delimited range of the buffers.
    pub fn build(m: &Csr, config: PackConfig) -> SrvPack {
        Self::build_with_threads(m, config, crate::sched::default_threads())
    }

    /// The serial reference build — the parity oracle for the parallel
    /// path (`convert_parity` asserts bit-identical prepared buffers).
    pub fn build_serial(m: &Csr, config: PackConfig) -> SrvPack {
        Self::build_with_threads(m, config, 1)
    }

    /// [`SrvPack::build`] with an explicit worker count (1 = fill
    /// chunks on the calling thread, no pool dispatch).
    pub fn build_with_threads(m: &Csr, config: PackConfig, nthreads: usize) -> SrvPack {
        assert!(config.c >= 1, "chunk height c must be >= 1");
        if let SegmentSpec::DenseFraction(t) = config.segments {
            assert!((0.0..=1.0).contains(&t), "T must be a fraction, got {t}");
            assert!(config.cfs, "segmentation requires CFS (LAV applies CFS first)");
        }
        let nrows = m.nrows();
        let ncols = m.ncols();

        // 1. CFS: old -> new column relabeling.
        let (col_perm, old_to_new) = if config.cfs {
            let perm = Permutation::sort_desc_by_key(&m.nnz_per_col());
            let inv = perm.inverse();
            (Some(perm), Some(inv))
        } else {
            (None, None)
        };

        // 2. Segment boundaries in the (possibly relabeled) column space.
        let boundaries: Vec<usize> = match config.segments {
            SegmentSpec::One => vec![0, ncols],
            SegmentSpec::DenseFraction(t) => {
                let counts = m.nnz_per_col();
                let perm = col_perm.as_ref().expect("checked above");
                let total = m.nnz();
                let target = (t * total as f64).ceil() as usize;
                let mut cum = 0usize;
                let mut split = ncols;
                for new_c in 0..ncols {
                    cum += counts[perm.apply(new_c)];
                    if cum >= target {
                        split = new_c + 1;
                        break;
                    }
                }
                if split >= ncols || total == 0 {
                    vec![0, ncols] // dense segment swallowed everything
                } else {
                    vec![0, split, ncols]
                }
            }
        };

        // 3. Build each segment.
        let nseg = boundaries.len() - 1;
        let mut segments = Vec::with_capacity(nseg);
        for s in 0..nseg {
            let (lo, hi) = (boundaries[s], boundaries[s + 1]);

            // Row lengths within this segment.
            let mut lens = vec![0usize; nrows];
            if nseg == 1 && old_to_new.is_none() {
                for (r, len) in lens.iter_mut().enumerate() {
                    *len = m.row_nnz(r);
                }
            } else {
                #[allow(clippy::needless_range_loop)]
                for r in 0..nrows {
                    for &c in m.row_cols(r) {
                        let nc = match &old_to_new {
                            Some(p) => p.apply(c as usize),
                            None => c as usize,
                        };
                        if nc >= lo && nc < hi {
                            lens[r] += 1;
                        }
                    }
                }
            }

            // Row order.
            let row_order: Vec<u32> = match config.sigma {
                SigmaSpec::None => (0..nrows as u32).collect(),
                SigmaSpec::Window(w) => {
                    let w = w.max(1);
                    let mut order: Vec<u32> = (0..nrows as u32).collect();
                    for win in order.chunks_mut(w) {
                        win.sort_by(|&a, &b| {
                            lens[b as usize].cmp(&lens[a as usize]).then(a.cmp(&b))
                        });
                    }
                    order
                }
                SigmaSpec::Full => {
                    let mut order: Vec<u32> = (0..nrows as u32).collect();
                    order.sort_by(|&a, &b| lens[b as usize].cmp(&lens[a as usize]).then(a.cmp(&b)));
                    // Drop trailing zero-length rows: they produce no
                    // output in this segment.
                    while let Some(&last) = order.last() {
                        if lens[last as usize] == 0 {
                            order.pop();
                        } else {
                            break;
                        }
                    }
                    order
                }
            };

            // Pack chunk-major. Widths and offsets are computed up
            // front (cheap: one max over `lens` per chunk), which lets
            // the expensive fill — re-walking every row's nonzeros —
            // run one chunk per work item over the worker pool: chunk
            // `k` owns the disjoint buffer range `offsets[k] * c ..
            // offsets[k + 1] * c`, so the parallel fill writes exactly
            // the bytes the serial loop would (padding slots keep their
            // zero initialization either way) and the prepared buffers
            // are bit-identical for every thread count.
            let c = config.c;
            let nchunks = row_order.len().div_ceil(c);
            let mut offsets = Vec::with_capacity(nchunks + 1);
            offsets.push(0usize);
            for chunk_rows in row_order.chunks(c) {
                let width = chunk_rows.iter().map(|&r| lens[r as usize]).max().unwrap_or(0);
                offsets.push(offsets.last().unwrap() + width);
            }
            let total = *offsets.last().unwrap() * c;
            let mut col_ids = vec![0u32; total];
            let mut vals = vec![0.0f64; total];
            let mut chunk_nnz = vec![0usize; nchunks];
            {
                let cols_w = DisjointWriter::new(&mut col_ids);
                let vals_w = DisjointWriter::new(&mut vals);
                let nnz_w = DisjointWriter::new(&mut chunk_nnz);
                let offsets = &offsets;
                let row_order = &row_order;
                let old_to_new = &old_to_new;
                let fill = |k: usize| {
                    let base = offsets[k] * c;
                    let chunk_rows = &row_order[k * c..((k + 1) * c).min(row_order.len())];
                    let mut real = 0usize;
                    let mut seg_cols: Vec<(u32, f64)> = Vec::new(); // scratch
                    for (lane, &r) in chunk_rows.iter().enumerate() {
                        seg_cols.clear();
                        for (cc, v) in m.row(r as usize) {
                            let nc = match old_to_new {
                                Some(p) => p.apply(cc as usize),
                                None => cc as usize,
                            };
                            if nc >= lo && nc < hi {
                                seg_cols.push((nc as u32, v));
                            }
                        }
                        real += seg_cols.len();
                        for (j, &(nc, v)) in seg_cols.iter().enumerate() {
                            // SAFETY: `base + j * c + lane` stays inside
                            // chunk k's buffer range (j < its width, lane
                            // < c) and chunk ranges are disjoint by the
                            // offsets prefix sum; k is unique per call.
                            unsafe {
                                cols_w.write(base + j * c + lane, nc);
                                vals_w.write(base + j * c + lane, v);
                            }
                        }
                    }
                    // SAFETY: one writer per chunk index.
                    unsafe { nnz_w.write(k, real) };
                };
                if nthreads <= 1 {
                    for k in 0..nchunks {
                        fill(k);
                    }
                } else {
                    let grain = (crate::csr_spmv::DEFAULT_ROWS_PER_CHUNK / c.max(1)).max(1);
                    parallel_for_chunks(nchunks, nthreads, Schedule::Dyn, grain, fill);
                }
            }
            segments.push(Segment {
                row_order,
                offsets,
                col_ids,
                vals,
                nnz_real: chunk_nnz.iter().sum(),
                col_range: (lo, hi),
            });
        }

        SrvPack { nrows, ncols, config, col_perm, segments, simd: 0, prefetch: None, interleave: 0 }
    }

    /// Requests a SIMD width for the chunk kernel: 0 = auto (widest
    /// active level), 1 = the original scalar path (bit-exact), else
    /// capped at the host's [`simd::active`] level. Vector paths exist
    /// for `c ∈ {4, 8}` (the catalog's widths) on every vector level,
    /// and for `c ∈ {2..=7}` on AVX-512 via the masked-lane kernel;
    /// other chunk heights always run scalar.
    pub fn with_simd(mut self, v: usize) -> SrvPack {
        self.simd = v;
        self
    }

    /// The requested SIMD width (see [`SrvPack::with_simd`]).
    pub fn simd(&self) -> usize {
        self.simd
    }

    /// Requests a software prefetch distance in vector steps:
    /// `Some(0)` disables prefetch, `Some(d)` forces `d` (clamped at
    /// [`simd::MAX_PREFETCH`]), `None` (default) defers to the
    /// `WISE_PREFETCH` override / auto policy. Scheduling only — never
    /// changes results.
    pub fn with_prefetch(mut self, d: Option<usize>) -> SrvPack {
        self.prefetch = d;
        self
    }

    /// The requested prefetch distance (see [`SrvPack::with_prefetch`]).
    pub fn prefetch(&self) -> Option<usize> {
        self.prefetch
    }

    /// Requests a chunk-interleave factor: 0 = auto policy (pair chunks
    /// on the AVX-512 c=8 path), 1 = off, ≥ 2 = pair chunks. Paired
    /// execution keeps each chunk's accumulator chain in solo-kernel
    /// order, so results are bit-identical across factors.
    pub fn with_interleave(mut self, r: usize) -> SrvPack {
        self.interleave = r;
        self
    }

    /// The requested interleave factor (see [`SrvPack::with_interleave`]).
    pub fn interleave(&self) -> usize {
        self.interleave
    }

    /// The level the chunk kernel will actually execute at.
    pub fn resolved_isa(&self) -> SimdIsa {
        let isa = simd::resolve(self.simd, self.ncols);
        match (isa, self.config.c) {
            (_, 4 | 8) => isa,
            // Non-native chunk heights vectorize only through the
            // AVX-512 masked-lane kernel; everything else would fall
            // back to the scalar loop inside the dispatcher, so report
            // it honestly as Scalar here.
            (SimdIsa::Avx512, 2..=7) => isa,
            _ => SimdIsa::Scalar,
        }
    }

    /// The effective prefetch distance at `isa`: the pack's override
    /// when set, else the `WISE_PREFETCH` / auto policy chain. Scalar
    /// never prefetches.
    pub fn resolved_prefetch(&self, isa: SimdIsa) -> usize {
        if isa.lanes() <= 1 {
            return 0;
        }
        match self.prefetch {
            Some(d) => d.min(simd::MAX_PREFETCH),
            None => simd::prefetch_distance(isa, self.ncols),
        }
    }

    /// The effective chunk-interleave factor at `isa`: the pack's
    /// override (clamped to {1, 2}) or the auto policy.
    pub fn resolved_interleave(&self, isa: SimdIsa) -> usize {
        if isa == SimdIsa::Scalar {
            return 1;
        }
        match self.interleave {
            0 => simd::auto_sell_interleave(isa, self.config.c),
            1 => 1,
            _ => 2,
        }
    }

    // ---- Accessors ----------------------------------------------------

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    pub fn config(&self) -> &PackConfig {
        &self.config
    }

    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    pub fn col_perm(&self) -> Option<&Permutation> {
        self.col_perm.as_ref()
    }

    /// Real nonzeros across segments (equals the source matrix's nnz).
    pub fn nnz_real(&self) -> usize {
        self.segments.iter().map(|s| s.nnz_real).sum()
    }

    /// Stored entries including padding — the vectorization overhead the
    /// paper's zero-padding-minimization methods fight.
    pub fn nnz_padded(&self) -> usize {
        self.segments.iter().map(|s| s.nnz_padded(self.config.c)).sum()
    }

    /// Padding ratio `padded / real` (1.0 = no padding). Returns 1.0 for
    /// empty matrices.
    pub fn padding_ratio(&self) -> f64 {
        let real = self.nnz_real();
        if real == 0 {
            1.0
        } else {
            self.nnz_padded() as f64 / real as f64
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.segments
            .iter()
            .map(|s| {
                s.vals.len() * 8 + s.col_ids.len() * 4 + s.row_order.len() * 4 + s.offsets.len() * 8
            })
            .sum::<usize>()
            + self.col_perm.as_ref().map_or(0, |p| p.len() * 4)
    }

    // ---- Kernel --------------------------------------------------------

    /// `y = A x` with `nthreads` workers under `schedule`.
    ///
    /// Segments run sequentially (dense first, as in LAV, so its slice
    /// of the input vector is LLC-resident while processed); chunks
    /// within a segment run in parallel. `ws` carries the CFS-gathered
    /// input vector between calls.
    pub fn spmv(
        &self,
        x: &[f64],
        y: &mut [f64],
        nthreads: usize,
        schedule: Schedule,
        ws: &mut SpmvWorkspace,
    ) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        let xeff: &[f64] = match &self.col_perm {
            Some(perm) => {
                ws.xperm.resize(self.ncols, 0.0);
                // Parallel gather: the permutation pass is bandwidth-
                // bound and LAV performs it every iteration, so it must
                // scale with the kernel itself.
                const GATHER_CHUNK: usize = 4096;
                let nchunks = self.ncols.div_ceil(GATHER_CHUNK);
                let writer = DisjointWriter::new(&mut ws.xperm);
                let map = perm.as_slice();
                parallel_for_chunks(nchunks, nthreads, Schedule::StCont, 1, |chunk| {
                    let lo = chunk * GATHER_CHUNK;
                    let hi = (lo + GATHER_CHUNK).min(map.len());
                    for i in lo..hi {
                        // SAFETY: i < map.len() by the loop bound, and a
                        // Permutation's entries are a bijection on
                        // 0..ncols (validated at construction), so
                        // map[i] < ncols == x.len(). Chunk index ranges
                        // are disjoint, satisfying the writer contract.
                        unsafe {
                            let src = *map.get_unchecked(i) as usize;
                            debug_assert!(src < x.len());
                            writer.write(i, *x.get_unchecked(src));
                        }
                    }
                });
                &ws.xperm
            }
            None => x,
        };
        y.fill(0.0);
        let c = self.config.c;
        // Dynamic scheduling grabs one chunk at a time: under RFS the
        // widest chunks cluster at the front, and coarse grabs would
        // hand them all to one thread. Static policies keep CSR-like
        // granularity to bound the round-robin bookkeeping.
        let grain = match schedule {
            Schedule::Dyn => 1,
            _ => (crate::csr_spmv::DEFAULT_ROWS_PER_CHUNK / c).max(1),
        };
        let isa = self.resolved_isa();
        let pf = self.resolved_prefetch(isa);
        let pair = self.resolved_interleave(isa) >= 2;
        for seg in &self.segments {
            let writer = DisjointWriter::new(&mut *y);
            if isa == SimdIsa::Scalar {
                let body = |chunk: usize| match c {
                    4 => Self::chunk_kernel::<4>(seg, xeff, &writer, chunk),
                    8 => Self::chunk_kernel::<8>(seg, xeff, &writer, chunk),
                    _ => Self::chunk_kernel_dyn(seg, c, xeff, &writer, chunk),
                };
                parallel_for_chunks(seg.nchunks(), nthreads, schedule, grain, body);
            } else if pair {
                // Chunk-pair interleave: one work item covers chunks
                // (2p, 2p + 1) so their gathers share the load ports
                // (two independent accumulator chains — bit-identical
                // to sequential chunks, see `simd::sell_chunk_pair`).
                let npairs = seg.nchunks().div_ceil(2);
                let body = |p: usize| {
                    let k0 = 2 * p;
                    if k0 + 1 < seg.nchunks() {
                        Self::chunk_pair_kernel_simd(seg, c, isa, xeff, &writer, k0, pf);
                    } else {
                        Self::chunk_kernel_simd(seg, c, isa, xeff, &writer, k0, pf);
                    }
                };
                parallel_for_chunks(npairs, nthreads, schedule, grain.div_ceil(2), body);
            } else {
                let body =
                    |chunk: usize| Self::chunk_kernel_simd(seg, c, isa, xeff, &writer, chunk, pf);
                parallel_for_chunks(seg.nchunks(), nthreads, schedule, grain, body);
            }
        }
    }

    /// Fixed-width chunk kernel: the `[f64; C]` accumulator maps to one
    /// vector register and the inner loop autovectorizes to the padded
    /// multiply-adds the paper issues with `#pragma omp simd`.
    #[inline]
    fn chunk_kernel<const C: usize>(
        seg: &Segment,
        x: &[f64],
        writer: &DisjointWriter<f64>,
        chunk: usize,
    ) {
        let w0 = seg.offsets[chunk];
        let w1 = seg.offsets[chunk + 1];
        let vals = &seg.vals[w0 * C..w1 * C];
        let cols = &seg.col_ids[w0 * C..w1 * C];
        let mut acc = [0.0f64; C];
        for (vrow, crow) in vals.chunks_exact(C).zip(cols.chunks_exact(C)) {
            for l in 0..C {
                // SAFETY: every stored column id is either a real
                // (post-CFS) column in [0, ncols) or padding column 0,
                // both < x.len() == ncols (`build` writes nothing
                // else). Eliding the data-dependent x-bound check here
                // is what lets the lane loop stay a pure gather +
                // multiply-add.
                unsafe {
                    let c = *crow.get_unchecked(l) as usize;
                    debug_assert!(c < x.len());
                    acc[l] += *vrow.get_unchecked(l) * *x.get_unchecked(c);
                }
            }
        }
        let rows = seg.chunk_rows(chunk, C);
        for (l, &r) in rows.iter().enumerate() {
            // SAFETY: rows are unique within a segment and segments are
            // processed sequentially.
            unsafe { writer.add(r as usize, acc[l]) };
        }
    }

    /// Explicitly vectorized chunk kernel (`c ∈ {2..=8}` — enforced by
    /// [`SrvPack::resolved_isa`]): the chunk's `c` rows map 1:1 onto
    /// vector lanes (masked lanes for `c ∉ {4, 8}` on AVX-512), so
    /// every column step is one gather + one FMA with no horizontal
    /// reduction. `pf` steps of software prefetch on the gathered
    /// x-lines.
    fn chunk_kernel_simd(
        seg: &Segment,
        c: usize,
        isa: SimdIsa,
        x: &[f64],
        writer: &DisjointWriter<f64>,
        chunk: usize,
        pf: usize,
    ) {
        debug_assert!((2..=8).contains(&c));
        let w0 = seg.offsets[chunk];
        let w1 = seg.offsets[chunk + 1];
        let vals = &seg.vals[w0 * c..w1 * c];
        let cols = &seg.col_ids[w0 * c..w1 * c];
        let mut acc = [0.0f64; 8];
        // SAFETY: vals/cols are equal-length multiples of c; every
        // stored column id is a real (post-CFS) column or padding
        // column 0, both < ncols == x.len() (`build` writes nothing
        // else); acc[..c] has exactly c lanes.
        unsafe { simd::sell_chunk_pf(isa, vals, cols, c, x, &mut acc[..c], pf) };
        let rows = seg.chunk_rows(chunk, c);
        for (l, &r) in rows.iter().enumerate() {
            // SAFETY: rows are unique within a segment and segments are
            // processed sequentially.
            unsafe { writer.add(r as usize, acc[l]) };
        }
    }

    /// Two adjacent chunks (`k0`, `k0 + 1`) through the interleaved
    /// pair kernel: both chunks' gathers stay in flight together (two
    /// independent accumulator chains, bit-identical to sequential
    /// solo chunks).
    fn chunk_pair_kernel_simd(
        seg: &Segment,
        c: usize,
        isa: SimdIsa,
        x: &[f64],
        writer: &DisjointWriter<f64>,
        k0: usize,
        pf: usize,
    ) {
        debug_assert!((2..=8).contains(&c) && k0 + 1 < seg.nchunks());
        let (a0, a1, a2) = (seg.offsets[k0], seg.offsets[k0 + 1], seg.offsets[k0 + 2]);
        let vals0 = &seg.vals[a0 * c..a1 * c];
        let cols0 = &seg.col_ids[a0 * c..a1 * c];
        let vals1 = &seg.vals[a1 * c..a2 * c];
        let cols1 = &seg.col_ids[a1 * c..a2 * c];
        let mut acc0 = [0.0f64; 8];
        let mut acc1 = [0.0f64; 8];
        // SAFETY: same invariants as `chunk_kernel_simd`, for both
        // chunks against the same x.
        unsafe {
            simd::sell_chunk_pair(
                isa,
                vals0,
                cols0,
                &mut acc0[..c],
                vals1,
                cols1,
                &mut acc1[..c],
                c,
                x,
                pf,
            )
        };
        for (k, acc) in [(k0, &acc0), (k0 + 1, &acc1)] {
            let rows = seg.chunk_rows(k, c);
            for (l, &r) in rows.iter().enumerate() {
                // SAFETY: rows are unique within a segment and segments
                // are processed sequentially; the two chunks of a pair
                // cover disjoint row sets.
                unsafe { writer.add(r as usize, acc[l]) };
            }
        }
    }

    /// Runtime-width fallback for non-{4,8} chunk heights.
    fn chunk_kernel_dyn(
        seg: &Segment,
        c: usize,
        x: &[f64],
        writer: &DisjointWriter<f64>,
        chunk: usize,
    ) {
        let w0 = seg.offsets[chunk];
        let w1 = seg.offsets[chunk + 1];
        let vals = &seg.vals[w0 * c..w1 * c];
        let cols = &seg.col_ids[w0 * c..w1 * c];
        let mut acc = vec![0.0f64; c];
        for (vrow, crow) in vals.chunks_exact(c).zip(cols.chunks_exact(c)) {
            for l in 0..c {
                // SAFETY: l < c == chunk row count of every exact
                // chunk; column ids < ncols == x.len() as in
                // `chunk_kernel`.
                unsafe {
                    let col = *crow.get_unchecked(l) as usize;
                    debug_assert!(col < x.len());
                    acc[l] += *vrow.get_unchecked(l) * *x.get_unchecked(col);
                }
            }
        }
        let rows = seg.chunk_rows(chunk, c);
        for (l, &r) in rows.iter().enumerate() {
            // SAFETY: as in `chunk_kernel`.
            unsafe { writer.add(r as usize, acc[l]) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use wise_gen::{suite, RmatParams};

    fn random_x(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn assert_matches_reference(m: &Csr, pack: &SrvPack, nthreads: usize, tag: &str) {
        let x = random_x(m.ncols(), 7);
        let mut want = vec![0.0; m.nrows()];
        m.spmv_reference(&x, &mut want);
        let mut ws = SpmvWorkspace::default();
        for sched in Schedule::ALL {
            let mut got = vec![1e9; m.nrows()];
            pack.spmv(&x, &mut got, nthreads, sched, &mut ws);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!(
                    (g - w).abs() <= 1e-9 * (1.0 + w.abs()),
                    "{tag} {sched:?} row {i}: {g} vs {w}"
                );
            }
        }
    }

    fn fig1a() -> Csr {
        // Same example as the paper's Figure 1a (see wise-matrix tests).
        let rows: Vec<Vec<u32>> = vec![
            vec![0, 3],
            vec![1, 2, 4],
            vec![2, 3],
            vec![3, 4],
            vec![0],
            vec![2, 3],
            vec![0, 1, 2],
            vec![3, 7],
        ];
        let mut row_ptr = vec![0usize];
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        let mut v = 1.0;
        for r in rows {
            for c in r {
                col_idx.push(c);
                vals.push(v);
                v += 1.0;
            }
            row_ptr.push(col_idx.len());
        }
        Csr::try_new(8, 8, row_ptr, col_idx, vals).unwrap()
    }

    #[test]
    fn sellpack_fig1_layout() {
        // Figure 1b: c=2 chunks of consecutive rows padded to the
        // longer row of each pair.
        let m = fig1a();
        let p = SrvPack::sellpack(&m, 2);
        assert_eq!(p.segments().len(), 1);
        let seg = &p.segments()[0];
        assert_eq!(seg.nchunks(), 4);
        // Chunk widths: max(2,3)=3, max(2,2)=2, max(1,2)=2, max(3,2)=3.
        let widths: Vec<_> = (0..4).map(|k| seg.chunk_width(k)).collect();
        assert_eq!(widths, vec![3, 2, 2, 3]);
        assert_eq!(p.nnz_real(), 17);
        assert_eq!(p.nnz_padded(), (3 + 2 + 2 + 3) * 2);
    }

    #[test]
    fn sell_c_sigma_reduces_padding() {
        // Skewed matrix: σ-sorting must not increase padding.
        let m = RmatParams::HIGH_SKEW.generate(10, 8, 3);
        let plain = SrvPack::sellpack(&m, 8);
        let sorted = SrvPack::sell_c_sigma(&m, 8, 512);
        let full = SrvPack::sell_c_r(&m, 8);
        assert!(sorted.nnz_padded() <= plain.nnz_padded());
        assert!(full.nnz_padded() <= sorted.nnz_padded());
        assert_eq!(full.nnz_real(), m.nnz());
    }

    #[test]
    fn lav_fig1_dense_segment() {
        // Figure 1f: T=0.7 puts CFS columns {0,3,2} in the dense segment.
        // Column nnz of fig1a: c0:3 c1:2 c2:4 c3:5 c4:2 c7:1 -> CFS
        // order c3,c2,c0,... cum 5,9,12 of 17; target ceil(0.7*17)=12 ->
        // split after 3 columns.
        let m = fig1a();
        let p = SrvPack::lav(&m, 2, 0.7);
        assert_eq!(p.segments().len(), 2);
        let dense = &p.segments()[0];
        assert_eq!(dense.col_range(), (0, 3));
        assert_eq!(dense.nnz_real(), 12);
        let sparse = &p.segments()[1];
        assert_eq!(sparse.nnz_real(), 5);
        // CFS perm maps new 0,1,2 to old 3,2,0.
        let perm = p.col_perm().unwrap();
        assert_eq!(perm.apply(0), 3);
        assert_eq!(perm.apply(1), 2);
        assert_eq!(perm.apply(2), 0);
    }

    #[test]
    fn all_methods_match_reference_on_random_matrices() {
        for (i, m) in [
            RmatParams::HIGH_SKEW.generate(9, 8, 1),
            RmatParams::LOW_LOC.generate(9, 4, 2),
            suite::stencil_2d(23, 23),
            suite::banded(517, 9, 0.5, 3),
        ]
        .iter()
        .enumerate()
        {
            for c in [4usize, 8] {
                assert_matches_reference(m, &SrvPack::sellpack(m, c), 3, &format!("sellpack{i}"));
                assert_matches_reference(
                    m,
                    &SrvPack::sell_c_sigma(m, c, 64),
                    3,
                    &format!("sigma{i}"),
                );
                assert_matches_reference(m, &SrvPack::sell_c_r(m, c), 3, &format!("scr{i}"));
                assert_matches_reference(m, &SrvPack::lav_1seg(m, c), 3, &format!("lav1{i}"));
                assert_matches_reference(m, &SrvPack::lav(m, c, 0.7), 3, &format!("lav{i}"));
            }
        }
    }

    #[test]
    fn odd_chunk_height_works() {
        let m = RmatParams::MED_SKEW.generate(8, 6, 9);
        assert_matches_reference(&m, &SrvPack::sellpack(&m, 3), 2, "c3");
        assert_matches_reference(&m, &SrvPack::lav(&m, 5, 0.8), 2, "c5");
    }

    #[test]
    fn rfs_orders_rows_descending() {
        let m = RmatParams::HIGH_SKEW.generate(9, 8, 4);
        let p = SrvPack::sell_c_r(&m, 8);
        let seg = &p.segments()[0];
        let lens: Vec<usize> = seg.row_order().iter().map(|&r| m.row_nnz(r as usize)).collect();
        for w in lens.windows(2) {
            assert!(w[0] >= w[1]);
        }
        // Dropped rows are exactly the empty ones.
        let nonempty = (0..m.nrows()).filter(|&r| m.row_nnz(r) > 0).count();
        assert_eq!(seg.row_order().len(), nonempty);
    }

    #[test]
    fn lav_segments_partition_nonzeros() {
        let m = RmatParams::HIGH_SKEW.generate(10, 16, 5);
        for t in [0.7, 0.8, 0.9] {
            let p = SrvPack::lav(&m, 8, t);
            assert_eq!(p.nnz_real(), m.nnz(), "T={t}");
            if p.segments().len() == 2 {
                let dense_frac = p.segments()[0].nnz_real() as f64 / m.nnz() as f64;
                assert!(dense_frac >= t, "dense fraction {dense_frac} < {t}");
                // Minimality: removing the last dense column must drop below T.
                let (lo, hi) = p.segments()[0].col_range();
                assert!(lo == 0 && hi >= 1);
            }
        }
    }

    #[test]
    fn empty_matrix() {
        let m = Csr::zero(6, 6);
        let p = SrvPack::lav(&m, 4, 0.7);
        let x = vec![1.0; 6];
        let mut y = vec![5.0; 6];
        p.spmv(&x, &mut y, 2, Schedule::Dyn, &mut SpmvWorkspace::default());
        assert_eq!(y, vec![0.0; 6]);
        assert_eq!(p.padding_ratio(), 1.0);
    }

    #[test]
    fn single_row_matrix() {
        let m = Csr::try_new(1, 3, vec![0, 2], vec![0, 2], vec![2.0, 3.0]).unwrap();
        assert_matches_reference(&m, &SrvPack::sellpack(&m, 8), 2, "1row");
    }

    #[test]
    fn workspace_reuse_is_correct() {
        let m = RmatParams::HIGH_SKEW.generate(8, 8, 11);
        let p = SrvPack::lav(&m, 8, 0.8);
        let mut ws = SpmvWorkspace::default();
        let x1 = random_x(m.ncols(), 1);
        let x2 = random_x(m.ncols(), 2);
        let mut y1 = vec![0.0; m.nrows()];
        let mut y2 = vec![0.0; m.nrows()];
        p.spmv(&x1, &mut y1, 2, Schedule::Dyn, &mut ws);
        p.spmv(&x2, &mut y2, 2, Schedule::Dyn, &mut ws); // reuses xperm
        let mut want = vec![0.0; m.nrows()];
        m.spmv_reference(&x2, &mut want);
        for (g, w) in y2.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9);
        }
    }

    #[test]
    fn simd_widths_match_scalar_within_ulp_bound() {
        let m = RmatParams::HIGH_SKEW.generate(9, 8, 21);
        let x = random_x(m.ncols(), 17);
        let mut ws = SpmvWorkspace::default();
        for c in [4usize, 8] {
            let pack = SrvPack::sell_c_sigma(&m, c, 64);
            let mut want = vec![0.0; m.nrows()];
            pack.clone().with_simd(1).spmv(&x, &mut want, 2, Schedule::StCont, &mut ws);
            for v in [0usize, 2, 4, 8] {
                let p = pack.clone().with_simd(v);
                assert!(p.resolved_isa() <= simd::active());
                let mut got = vec![0.0; m.nrows()];
                p.spmv(&x, &mut got, 2, Schedule::StCont, &mut ws);
                simd::assert_ulp_close(
                    &got,
                    &want,
                    simd::SPMV_MAX_ULPS,
                    simd::SPMV_ABS_FLOOR,
                    &format!("sell c={c} v={v}"),
                );
            }
        }
    }

    #[test]
    fn non_catalog_chunk_heights_resolve_masked_or_scalar() {
        // c ∈ {2..=7} \ {4} vectorize only through the AVX-512 masked
        // kernel; on lesser hosts (or under a narrower width request)
        // they must resolve scalar. c > 8 never vectorizes.
        let m = RmatParams::MED_SKEW.generate(8, 6, 9);
        let masked =
            if simd::active() == SimdIsa::Avx512 { SimdIsa::Avx512 } else { SimdIsa::Scalar };
        for c in [2usize, 3, 5, 6, 7] {
            assert_eq!(SrvPack::sellpack(&m, c).resolved_isa(), masked, "c={c}");
            assert_eq!(
                SrvPack::sellpack(&m, c).with_simd(4).resolved_isa(),
                SimdIsa::Scalar,
                "c={c} under a v=4 cap"
            );
        }
        for c in [1usize, 9, 16] {
            assert_eq!(SrvPack::sellpack(&m, c).resolved_isa(), SimdIsa::Scalar, "c={c}");
        }
    }

    #[test]
    fn masked_chunk_heights_match_reference() {
        // End-to-end SpMV through the masked AVX-512 path (scalar
        // elsewhere): every non-native chunk height must still match
        // the reference within the ulp contract.
        let m = RmatParams::MED_SKEW.generate(9, 8, 31);
        for c in [2usize, 3, 5, 6, 7] {
            assert_matches_reference(&m, &SrvPack::sell_c_sigma(&m, c, 64), 3, &format!("mc{c}"));
        }
    }

    #[test]
    fn prefetch_and_interleave_never_change_results() {
        // Both MLP knobs are scheduling-only: for a fixed resolved
        // level the output must be bit-identical across every (D, R)
        // combination, including the auto policies.
        let m = RmatParams::HIGH_SKEW.generate(9, 8, 41);
        let x = random_x(m.ncols(), 13);
        let mut ws = SpmvWorkspace::default();
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        for c in [4usize, 8] {
            let pack = SrvPack::sell_c_sigma(&m, c, 64);
            let mut base = vec![0.0; m.nrows()];
            pack.clone().with_prefetch(Some(0)).with_interleave(1).spmv(
                &x,
                &mut base,
                2,
                Schedule::Dyn,
                &mut ws,
            );
            for pf in [None, Some(0), Some(4), Some(simd::MAX_PREFETCH + 9)] {
                for il in [0usize, 1, 2, 5] {
                    let p = pack.clone().with_prefetch(pf).with_interleave(il);
                    let mut got = vec![0.0; m.nrows()];
                    p.spmv(&x, &mut got, 2, Schedule::Dyn, &mut ws);
                    assert_eq!(bits(&got), bits(&base), "c={c} pf={pf:?} il={il}");
                }
            }
        }
    }

    #[test]
    fn resolved_knobs_follow_policy() {
        let m = RmatParams::MED_SKEW.generate(8, 6, 2);
        let p = SrvPack::sellpack(&m, 8);
        assert_eq!(p.resolved_prefetch(SimdIsa::Scalar), 0);
        assert_eq!(p.resolved_interleave(SimdIsa::Scalar), 1);
        assert_eq!(p.resolved_interleave(SimdIsa::Avx512), 2, "auto pairs on AVX-512 c=8");
        let p = p.with_prefetch(Some(simd::MAX_PREFETCH + 3)).with_interleave(7);
        assert_eq!(p.resolved_prefetch(SimdIsa::Avx512), simd::MAX_PREFETCH);
        assert_eq!(p.resolved_interleave(SimdIsa::Avx512), 2);
        assert_eq!(p.prefetch(), Some(simd::MAX_PREFETCH + 3));
        assert_eq!(p.interleave(), 7);
        let p = p.with_interleave(1);
        assert_eq!(p.resolved_interleave(SimdIsa::Avx512), 1);
        let q = SrvPack::sellpack(&m, 4);
        assert_eq!(q.resolved_interleave(SimdIsa::Avx512), 1, "auto never pairs c=4");
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        // Satellite 1: the pool-parallel chunk fill must produce
        // byte-identical prepared buffers for every method and thread
        // count (the serial path is the parity oracle).
        for (i, m) in [RmatParams::HIGH_SKEW.generate(9, 8, 51), suite::banded(300, 5, 0.8, 7)]
            .iter()
            .enumerate()
        {
            for cfg in [
                PackConfig { c: 8, sigma: SigmaSpec::None, cfs: false, segments: SegmentSpec::One },
                PackConfig {
                    c: 4,
                    sigma: SigmaSpec::Window(64),
                    cfs: false,
                    segments: SegmentSpec::One,
                },
                PackConfig {
                    c: 8,
                    sigma: SigmaSpec::Full,
                    cfs: true,
                    segments: SegmentSpec::DenseFraction(0.7),
                },
                PackConfig { c: 3, sigma: SigmaSpec::Full, cfs: false, segments: SegmentSpec::One },
            ] {
                let serial = SrvPack::build_serial(m, cfg);
                for t in [2usize, 3, 7] {
                    let par = SrvPack::build_with_threads(m, cfg, t);
                    assert_eq!(par, serial, "matrix {i} cfg {cfg:?} t={t}");
                }
                assert_eq!(SrvPack::build(m, cfg), serial, "matrix {i} cfg {cfg:?} default");
            }
        }
    }

    #[test]
    fn serialized_pack_without_mlp_fields_defaults_to_auto() {
        // Packs written before the prefetch/interleave fields existed
        // must deserialize (serde defaults) and round-trip new values.
        let m = fig1a();
        let p = SrvPack::sellpack(&m, 2).with_prefetch(Some(4)).with_interleave(2);
        let json = serde_json::to_string(&p).unwrap();
        let back: SrvPack = serde_json::from_str(&json).unwrap();
        assert_eq!(back.prefetch(), Some(4));
        assert_eq!(back.interleave(), 2);
        let stripped = json.replace(",\"prefetch\":4", "").replace(",\"interleave\":2", "");
        assert_ne!(stripped, json, "test must actually strip the fields");
        let old: SrvPack = serde_json::from_str(&stripped).unwrap();
        assert_eq!(old.prefetch(), None);
        assert_eq!(old.interleave(), 0);
    }

    #[test]
    fn serialized_pack_without_simd_field_defaults_to_auto() {
        // Packs written before the simd field existed must deserialize
        // (serde default 0 = auto) and round-trip the new field.
        let m = fig1a();
        let p = SrvPack::sellpack(&m, 2).with_simd(4);
        let json = serde_json::to_string(&p).unwrap();
        let back: SrvPack = serde_json::from_str(&json).unwrap();
        assert_eq!(back.simd(), 4);
        let stripped = json.replace(",\"simd\":4", "");
        assert_ne!(stripped, json, "test must actually strip the field");
        let old: SrvPack = serde_json::from_str(&stripped).unwrap();
        assert_eq!(old.simd(), 0);
    }

    #[test]
    fn padding_ratio_exact_for_uniform_rows() {
        // All rows same length -> no padding regardless of method.
        let m = suite::banded(128, 2, 1.0, 0); // interior rows length 5
        let p = SrvPack::sell_c_r(&m, 4);
        // Only boundary rows differ; ratio stays close to 1.
        assert!(p.padding_ratio() < 1.05, "ratio={}", p.padding_ratio());
    }
}
