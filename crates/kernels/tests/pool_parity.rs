//! Pool ↔ spawn executor parity suite.
//!
//! The persistent pool must be *observationally identical* to the
//! original scoped-spawn executor: same chunk→thread assignments for
//! the static schedules (pinned against `static_assignment`, the
//! introspection helper `wise-perf` models with), exactly-once chunk
//! coverage for Dyn, and bit-identical SpMV outputs for both kernel
//! families across every schedule and ragged thread/chunk shapes.
//! Plus lifecycle: a panic inside a job body must not wedge the pool.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use wise_gen::{suite, RmatParams};
use wise_kernels::pool::{self, WorkerPool};
use wise_kernels::sched::{
    parallel_for_chunks_with, set_executor, static_assignment, Executor, Schedule,
};
use wise_kernels::srvpack::SpmvWorkspace;
use wise_kernels::MethodConfig;
use wise_matrix::Csr;

/// The thread counts the issue pins (1 = inline fallback, 16 >
/// container cores, 3/7 ragged against chunk counts).
const NTHREADS: [usize; 5] = [1, 2, 3, 7, 16];
/// Ragged chunk counts: fewer than threads, prime-ish, non-multiples.
const NCHUNKS: [usize; 6] = [1, 3, 5, 17, 63, 130];
const GRAINS: [usize; 3] = [1, 2, 8];

/// Runs a recording body under `exec` and returns (owner per chunk,
/// effective thread count). Chunks run inline on the caller map to
/// thread 0, matching `static_assignment` with one thread.
fn record_assignment(
    exec: Executor,
    nchunks: usize,
    nthreads: usize,
    sched: Schedule,
    grain: usize,
) -> (Vec<usize>, usize) {
    let owners = Mutex::new(vec![usize::MAX; nchunks]);
    let hits: Vec<AtomicUsize> = (0..nchunks).map(|_| AtomicUsize::new(0)).collect();
    parallel_for_chunks_with(exec, nchunks, nthreads, sched, grain, |i| {
        let t = pool::current_worker_index().unwrap_or(0);
        owners.lock().unwrap()[i] = t;
        hits[i].fetch_add(1, Ordering::SeqCst);
    });
    for (i, h) in hits.iter().enumerate() {
        assert_eq!(h.load(Ordering::SeqCst), 1, "chunk {i} ran {} times", h.load(Ordering::SeqCst));
    }
    // Mirror the executor's own clamping: inline when single-threaded
    // or the whole job fits one grain, else cap threads at nchunks.
    let effective =
        if nthreads <= 1 || nchunks <= grain.max(1) { 1 } else { nthreads.min(nchunks) };
    (owners.into_inner().unwrap(), effective)
}

#[test]
fn static_assignments_match_spawn_and_model() {
    for sched in [Schedule::St, Schedule::StCont] {
        for &nthreads in &NTHREADS {
            for &nchunks in &NCHUNKS {
                for &grain in &GRAINS {
                    let tag = format!("{sched:?} t={nthreads} n={nchunks} g={grain}");
                    let (pool_owners, eff) =
                        record_assignment(Executor::Pool, nchunks, nthreads, sched, grain);
                    let (spawn_owners, eff2) =
                        record_assignment(Executor::Spawn, nchunks, nthreads, sched, grain);
                    assert_eq!(eff, eff2);
                    // (a) pool and spawn executors place every chunk on
                    // the same logical thread;
                    assert_eq!(pool_owners, spawn_owners, "{tag}");
                    // ...and both match the model's assignment function
                    // (with the executors' thread clamping applied).
                    let want = static_assignment(nchunks, eff, sched, grain);
                    for (t, chunks) in want.iter().enumerate() {
                        for &c in chunks {
                            assert_eq!(pool_owners[c], t, "{tag} chunk {c}");
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn dyn_covers_every_chunk_exactly_once_on_both_executors() {
    for exec in [Executor::Pool, Executor::Spawn] {
        for &nthreads in &NTHREADS {
            for &nchunks in &NCHUNKS {
                for &grain in &GRAINS {
                    // Coverage is asserted inside record_assignment;
                    // Dyn's owner is timing-dependent by design.
                    record_assignment(exec, nchunks, nthreads, Schedule::Dyn, grain);
                }
            }
        }
    }
}

fn random_x(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// (b) CSR and SRVPack results must be bit-identical pool vs. spawn:
/// each chunk computes its outputs with the same instruction sequence
/// regardless of which thread runs it, and rows are written by exactly
/// one chunk (per segment, with segments sequential), so the executor
/// cannot change a single bit.
#[test]
fn spmv_results_bit_identical_pool_vs_spawn() {
    let matrices: Vec<(String, Csr)> = vec![
        ("rmat9".into(), RmatParams::HIGH_SKEW.generate(9, 8, 42)),
        ("stencil".into(), suite::stencil_2d(23, 23)),
        ("banded".into(), suite::banded(517, 9, 0.5, 3)),
    ];
    let prev = wise_kernels::sched::executor();
    for (name, m) in &matrices {
        let x = random_x(m.ncols(), 7);
        for cfg in MethodConfig::catalog() {
            let prep = cfg.prepare(m);
            for &nthreads in &NTHREADS {
                let mut y_spawn = vec![f64::NAN; m.nrows()];
                set_executor(Executor::Spawn);
                prep.spmv(&x, &mut y_spawn, nthreads, &mut SpmvWorkspace::default());
                let mut y_pool = vec![f64::NAN; m.nrows()];
                set_executor(Executor::Pool);
                prep.spmv(&x, &mut y_pool, nthreads, &mut SpmvWorkspace::default());
                for (r, (a, b)) in y_spawn.iter().zip(&y_pool).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{name} {} t={nthreads} row {r}: spawn={a} pool={b}",
                        cfg.label()
                    );
                }
            }
        }
    }
    set_executor(prev);
}

/// (c) A panicking job body must propagate to the dispatcher but leave
/// the global pool serving subsequent dispatches.
#[test]
fn pool_survives_panicking_chunk_bodies() {
    for round in 0..3 {
        let err = catch_unwind(AssertUnwindSafe(|| {
            parallel_for_chunks_with(Executor::Pool, 16, 4, Schedule::StCont, 1, |i| {
                if i == 9 {
                    panic!("injected chunk panic, round {round}");
                }
            });
        }));
        assert!(err.is_err(), "chunk panic must reach the caller");
        // The very next dispatch must work.
        let hits: Vec<AtomicUsize> = (0..32).map(|_| AtomicUsize::new(0)).collect();
        parallel_for_chunks_with(Executor::Pool, 32, 4, Schedule::Dyn, 2, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1), "pool wedged after panic");
    }
}

/// The pool resizes upward on demand and keeps old workers.
#[test]
fn local_pool_resizes_and_shuts_down() {
    let pool = WorkerPool::new();
    for &n in &[2usize, 3, 7, 16, 5] {
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.run(n, &|t| {
            hits[t].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }
    assert_eq!(pool.size(), 16, "grows to the high-water mark, never shrinks");
    drop(pool); // joins workers; hanging here fails the test by timeout
}
