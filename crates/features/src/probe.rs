//! The cheap stage-1 feature probe behind `wise_core::cascade`.
//!
//! One O(nnz) pass over the CSR arrays yields the subset of Table 2
//! that needs neither the tile grid nor the locality sweeps: the three
//! size features, the full R and C distribution statistics, and the
//! three trailing host SIMD/MLP capability features (22 of the 70
//! features), plus two probe-only scalars for the cost-model veto
//! (density and a bandwidth proxy).
//!
//! The R and C statistics are **bit-identical** to the full
//! extractor's: both paths push the same integer counts through the
//! same [`SummaryStats::from_counts_with`]. That identity is what lets
//! the cascade walk the trained decision trees on probe values and
//! trust that any comparison it *can* resolve resolves exactly as the
//! full walk would — the parity the cascade's confidence gate is
//! calibrated against (see `DESIGN.md` §16).

use crate::engine::FeatureScratch;
use crate::stats::SummaryStats;
use crate::vector::{host_simd_features, FeatureVector, N_FEATURES};
use std::sync::OnceLock;
use wise_matrix::Csr;

/// Stage-1 probe output: the probe-known Table 2 features plus the
/// two probe-only scalars used by the roofline veto.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeFeatures {
    pub n_rows: usize,
    pub n_cols: usize,
    pub nnz: usize,
    /// Nonzeros-per-row statistics (the R distribution).
    pub r_stats: SummaryStats,
    /// Nonzeros-per-column statistics (the C distribution).
    pub c_stats: SummaryStats,
    /// nnz / (n_rows * n_cols); 0 for degenerate shapes.
    pub density: f64,
    /// Mean normalized distance of each nonzero from the (scaled)
    /// diagonal: `mean |c - r * ncols/nrows| / ncols` ∈ [0, 1). Near 0
    /// for banded/diagonal structure (x-vector reuse is near-perfect),
    /// toward ~0.3 for uniformly scattered columns.
    pub bandwidth_frac: f64,
    /// The trailing host SIMD/MLP features, computed by the same
    /// [`host_simd_features`] call the full extractor uses (so they
    /// are bit-identical by construction).
    pub host: [f64; 3],
}

impl ProbeFeatures {
    /// Extracts the probe in one pass. Allocates a fresh workspace;
    /// hot loops should reuse one via [`Self::extract_with`].
    pub fn extract(m: &Csr) -> ProbeFeatures {
        Self::extract_with(m, &mut FeatureScratch::new())
    }

    /// [`Self::extract`] with a caller-owned [`FeatureScratch`] —
    /// allocation-free once buffers have grown. Only the scratch's
    /// count/sort/histogram buffers are touched; tile and transpose
    /// buffers stay untouched.
    pub fn extract_with(m: &Csr, scratch: &mut FeatureScratch) -> ProbeFeatures {
        let _span = wise_trace::span("features.probe");
        let (nrows, ncols, nnz) = (m.nrows(), m.ncols(), m.nnz());

        // R distribution straight from row-pointer differences —
        // the exact code path of the full extractor.
        scratch.counts_buf.clear();
        scratch.counts_buf.extend(m.row_ptr().windows(2).map(|w| w[1] - w[0]));
        let r_stats = SummaryStats::from_counts_with(&scratch.counts_buf, &mut scratch.stat_buf);

        // C distribution from an O(nnz) column histogram — no pattern
        // transpose. The full extractor derives the same per-column
        // counts from its transpose row pointers; `from_counts_with`
        // sorts either way, so order differences cannot matter.
        scratch.col_counts.clear();
        scratch.col_counts.resize(ncols, 0usize);
        // Bandwidth proxy accumulated in the same sweep: distance of
        // each nonzero's column from the scaled diagonal.
        let scale = if nrows > 0 { ncols as f64 / nrows as f64 } else { 0.0 };
        let mut band_sum = 0.0f64;
        for r in 0..nrows {
            let cols = &m.col_idx()[m.row_ptr()[r]..m.row_ptr()[r + 1]];
            let diag = r as f64 * scale;
            for &c in cols {
                scratch.col_counts[c as usize] += 1;
                band_sum += (c as f64 - diag).abs();
            }
        }
        let c_stats = SummaryStats::from_counts_with(&scratch.col_counts, &mut scratch.stat_buf);

        let cells = nrows as f64 * ncols as f64;
        let density = if cells > 0.0 { nnz as f64 / cells } else { 0.0 };
        let bandwidth_frac =
            if nnz > 0 && ncols > 0 { band_sum / nnz as f64 / ncols as f64 } else { 0.0 };

        ProbeFeatures {
            n_rows: nrows,
            n_cols: ncols,
            nnz,
            r_stats,
            c_stats,
            density,
            bandwidth_frac,
            host: host_simd_features(ncols),
        }
    }

    /// Vector indices (into [`FeatureVector`] order) the probe knows:
    /// the 3 size features, the 8 R and 8 C statistics, and the 3
    /// host SIMD/MLP features.
    pub fn known_indices() -> &'static [usize] {
        static IDX: OnceLock<Vec<usize>> = OnceLock::new();
        IDX.get_or_init(|| {
            let mut names = vec!["n_rows".to_string(), "n_cols".to_string(), "nnz".to_string()];
            for dist in ["R", "C"] {
                for stat in ["mean", "std", "var", "gini", "p", "min", "max", "ne"] {
                    names.push(format!("{stat}_{dist}"));
                }
            }
            for host in ["host_simd_lanes", "host_prefetch", "host_interleave"] {
                names.push(host.to_string());
            }
            names
                .iter()
                .map(|n| FeatureVector::name_index(n).expect("probe feature must exist"))
                .collect()
        })
    }

    /// The probe's feature values in full-vector layout: `Some(v)` at
    /// every probe-known index, `None` elsewhere. This is the partial
    /// row the cascade feeds to `DecisionTree::predict_partial`.
    pub fn known_values(&self) -> Vec<Option<f64>> {
        let mut values = vec![None; N_FEATURES];
        let idx = Self::known_indices();
        let r = &self.r_stats;
        let c = &self.c_stats;
        let ordered = [
            self.n_rows as f64,
            self.n_cols as f64,
            self.nnz as f64,
            r.mean,
            r.std,
            r.var,
            r.gini,
            r.p_ratio,
            r.min,
            r.max,
            r.ne,
            c.mean,
            c.std,
            c.var,
            c.gini,
            c.p_ratio,
            c.min,
            c.max,
            c.ne,
            self.host[0],
            self.host[1],
            self.host[2],
        ];
        for (&i, &v) in idx.iter().zip(ordered.iter()) {
            values[i] = Some(v);
        }
        values
    }

    /// Masks a *full* feature vector down to the probe-known subset —
    /// the calibration-time stand-in for [`Self::known_values`], valid
    /// because the probe's R/C statistics are bit-identical to the
    /// full extractor's.
    pub fn mask_full(full: &FeatureVector) -> Vec<Option<f64>> {
        let mut values = vec![None; N_FEATURES];
        for &i in Self::known_indices() {
            values[i] = Some(full.values()[i]);
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureConfig;
    use wise_gen::{suite, RmatParams};

    fn zoo() -> Vec<Csr> {
        vec![
            RmatParams::MED_SKEW.generate(9, 8, 3),
            RmatParams::HIGH_SKEW.generate(8, 6, 1),
            suite::banded(512, 4, 1.0, 0),
            suite::stencil_2d(24, 24),
            Csr::identity(64),
            Csr::zero(10, 10),
        ]
    }

    #[test]
    fn probe_matches_full_extractor_on_known_features() {
        let cfg = FeatureConfig::default();
        let mut scratch = FeatureScratch::new();
        for m in zoo() {
            let full = FeatureVector::extract(&m, &cfg);
            let probe = ProbeFeatures::extract_with(&m, &mut scratch);
            let known = probe.known_values();
            let masked = ProbeFeatures::mask_full(&full);
            // Bit-identical, not approximately equal: both paths push
            // the same integer counts through the same statistics code.
            assert_eq!(known, masked, "matrix {}x{}", m.nrows(), m.ncols());
            let n_known = known.iter().filter(|v| v.is_some()).count();
            assert_eq!(n_known, 22);
        }
    }

    #[test]
    fn known_indices_cover_size_r_c() {
        let idx = ProbeFeatures::known_indices();
        assert_eq!(idx.len(), 22);
        assert_eq!(idx[0], FeatureVector::name_index("n_rows").unwrap());
        assert!(idx.contains(&FeatureVector::name_index("p_R").unwrap()));
        assert!(idx.contains(&FeatureVector::name_index("ne_C").unwrap()));
        assert!(idx.contains(&FeatureVector::name_index("host_prefetch").unwrap()));
        assert!(!idx.contains(&FeatureVector::name_index("uniqR").unwrap()));
    }

    #[test]
    fn bandwidth_frac_separates_banded_from_scattered() {
        let banded = suite::banded(1024, 4, 1.0, 0);
        let scattered = RmatParams::LOW_LOC.generate(10, 8, 2);
        let pb = ProbeFeatures::extract(&banded);
        let ps = ProbeFeatures::extract(&scattered);
        assert!(pb.bandwidth_frac < 0.05, "banded frac {}", pb.bandwidth_frac);
        assert!(ps.bandwidth_frac > 0.1, "scattered frac {}", ps.bandwidth_frac);
    }

    #[test]
    fn degenerate_matrices_do_not_panic() {
        for m in [Csr::zero(0, 0), Csr::zero(5, 0), Csr::zero(0, 5)] {
            let p = ProbeFeatures::extract(&m);
            assert_eq!(p.nnz, 0);
            assert_eq!(p.density, 0.0);
            assert_eq!(p.bandwidth_frac, 0.0);
        }
    }

    #[test]
    fn scratch_reuse_is_stateless() {
        let mut scratch = FeatureScratch::new();
        for m in zoo() {
            let fresh = ProbeFeatures::extract(&m);
            let reused = ProbeFeatures::extract_with(&m, &mut scratch);
            assert_eq!(fresh, reused);
        }
    }
}
