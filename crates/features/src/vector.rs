//! Assembly of the fixed-order feature vector fed to the decision
//! trees (the full Table 2).

use crate::locality::{locality_metrics, GROUP_XS};
use crate::stats::SummaryStats;
use crate::tiling::TileGrid;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;
use wise_matrix::Csr;

/// Feature-extraction configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Maximum tile-grid dimension K. The paper uses 2048 (sized for L2
    /// and 2^20+-row matrices); the grid is clamped to the matrix
    /// dimensions either way.
    pub k_max: usize,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig { k_max: 2048 }
    }
}

/// A fixed-order vector of the 67 matrix features of Table 2:
/// 3 size + 5 distributions × 8 statistics + 24 locality metrics.
///
/// ```
/// use wise_features::{FeatureConfig, FeatureVector};
/// let m = wise_matrix::Csr::identity(64);
/// let f = FeatureVector::extract(&m, &FeatureConfig::default());
/// assert_eq!(f.get("nnz"), Some(64.0));
/// assert_eq!(f.get("mean_R"), Some(1.0)); // one nonzero per row
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    values: Vec<f64>,
}

/// Number of features.
pub const N_FEATURES: usize = 3 + 5 * 8 + 24;

fn build_names() -> Vec<String> {
    let mut names = vec!["n_rows".to_string(), "n_cols".to_string(), "nnz".to_string()];
    for dist in ["R", "C", "T", "RB", "CB"] {
        for stat in ["mean", "std", "var", "gini", "p", "min", "max", "ne"] {
            names.push(format!("{stat}_{dist}"));
        }
    }
    names.push("uniqR".into());
    names.push("uniqC".into());
    for x in GROUP_XS {
        names.push(format!("Gr{x}_uniqR"));
    }
    for x in GROUP_XS {
        names.push(format!("Gr{x}_uniqC"));
    }
    names.push("potReuseR".into());
    names.push("potReuseC".into());
    for x in GROUP_XS {
        names.push(format!("Gr{x}_potReuseR"));
    }
    for x in GROUP_XS {
        names.push(format!("Gr{x}_potReuseC"));
    }
    debug_assert_eq!(names.len(), N_FEATURES);
    names
}

impl FeatureVector {
    /// The feature names, in vector order.
    pub fn names() -> &'static [String] {
        static NAMES: OnceLock<Vec<String>> = OnceLock::new();
        NAMES.get_or_init(build_names)
    }

    /// Extracts all features from `m`. Runs in O(nnz log nnz); this is
    /// the feature-calculation half of WISE's preprocessing overhead
    /// (Fig. 13c).
    pub fn extract(m: &Csr, cfg: &FeatureConfig) -> FeatureVector {
        let grid = TileGrid::new(m, cfg.k_max);
        let mt = m.transpose();

        let r_stats = SummaryStats::from_counts(&m.nnz_per_row());
        let c_stats = SummaryStats::from_counts(&m.nnz_per_col());
        let t_stats = SummaryStats::from_sparse(grid.tile_counts(), grid.n_tiles());
        let rb_stats = SummaryStats::from_counts(grid.row_block_counts());
        let cb_stats = SummaryStats::from_counts(grid.col_block_counts());
        let loc = locality_metrics(m, &mt, &grid);

        let mut values = Vec::with_capacity(N_FEATURES);
        values.push(m.nrows() as f64);
        values.push(m.ncols() as f64);
        values.push(m.nnz() as f64);
        for s in [r_stats, c_stats, t_stats, rb_stats, cb_stats] {
            values.extend_from_slice(&[s.mean, s.std, s.var, s.gini, s.p_ratio, s.min, s.max, s.ne]);
        }
        values.push(loc.uniq_r);
        values.push(loc.uniq_c);
        values.extend_from_slice(&loc.gr_uniq_r);
        values.extend_from_slice(&loc.gr_uniq_c);
        values.push(loc.pot_reuse_r);
        values.push(loc.pot_reuse_c);
        values.extend_from_slice(&loc.gr_pot_reuse_r);
        values.extend_from_slice(&loc.gr_pot_reuse_c);
        debug_assert_eq!(values.len(), N_FEATURES);
        FeatureVector { values }
    }

    pub fn values(&self) -> &[f64] {
        &self.values
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Looks a feature up by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        Self::names().iter().position(|n| n == name).map(|i| self.values[i])
    }

    /// Builds a vector directly from values (model deserialization).
    pub fn from_values(values: Vec<f64>) -> FeatureVector {
        assert_eq!(values.len(), N_FEATURES, "feature vector must have {N_FEATURES} entries");
        FeatureVector { values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wise_gen::{suite, RmatParams};

    #[test]
    fn names_unique_and_sized() {
        let names = FeatureVector::names();
        assert_eq!(names.len(), N_FEATURES);
        let mut sorted = names.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), N_FEATURES);
    }

    #[test]
    fn extract_sizes_and_lookup() {
        let m = RmatParams::LOW_LOC.generate(8, 4, 1);
        let f = FeatureVector::extract(&m, &FeatureConfig::default());
        assert_eq!(f.len(), N_FEATURES);
        assert_eq!(f.get("n_rows"), Some(256.0));
        assert_eq!(f.get("n_cols"), Some(256.0));
        assert_eq!(f.get("nnz"), Some(m.nnz() as f64));
        assert_eq!(f.get("no_such_feature"), None);
        // Mean nonzeros per row must equal nnz / nrows.
        let mean_r = f.get("mean_R").unwrap();
        assert!((mean_r - m.nnz() as f64 / 256.0).abs() < 1e-9);
    }

    #[test]
    fn skew_features_separate_recipes() {
        // The core claim of the feature set: HS and LL matrices of the
        // same size differ strongly in skew features.
        let hs = RmatParams::HIGH_SKEW.generate(11, 8, 2);
        let ll = RmatParams::LOW_LOC.generate(11, 8, 2);
        let fh = FeatureVector::extract(&hs, &FeatureConfig::default());
        let fl = FeatureVector::extract(&ll, &FeatureConfig::default());
        assert!(fh.get("gini_R").unwrap() > fl.get("gini_R").unwrap() + 0.2);
        assert!(fh.get("p_R").unwrap() < fl.get("p_R").unwrap() - 0.1);
    }

    #[test]
    fn locality_features_separate_recipes() {
        let hl = RmatParams::HIGH_LOC.generate(11, 8, 2);
        let ll = RmatParams::LOW_LOC.generate(11, 8, 2);
        let fh = FeatureVector::extract(&hl, &FeatureConfig::default());
        let fl = FeatureVector::extract(&ll, &FeatureConfig::default());
        // Diagonal concentration -> fewer non-empty tiles, higher tile gini.
        assert!(fh.get("ne_T").unwrap() < fl.get("ne_T").unwrap());
        assert!(fh.get("gini_T").unwrap() > fl.get("gini_T").unwrap());
    }

    #[test]
    fn p_ratio_matches_paper_recipe_targets() {
        // Section 4.5: HS/MS/LS have row p-ratios of ~0.1 / ~0.2 / ~0.3;
        // locality recipes sit at ~0.4-0.5.
        let cfg = FeatureConfig::default();
        let p_of = |r: RmatParams, seed| {
            let m = r.generate(12, 16, seed);
            FeatureVector::extract(&m, &cfg).get("p_R").unwrap()
        };
        let p_hs = p_of(RmatParams::HIGH_SKEW, 3);
        let p_ms = p_of(RmatParams::MED_SKEW, 3);
        let p_ls = p_of(RmatParams::LOW_SKEW, 3);
        let p_ll = p_of(RmatParams::LOW_LOC, 3);
        assert!(p_hs < p_ms && p_ms < p_ls && p_ls < p_ll, "{p_hs} {p_ms} {p_ls} {p_ll}");
        assert!(p_hs < 0.2, "HS p-ratio {p_hs}");
        assert!(p_ll > 0.35, "LL p-ratio {p_ll}");
    }

    #[test]
    fn suite_matrices_have_high_p_ratio() {
        // Fig. 7's claim reproduced by our stand-ins.
        let cfg = FeatureConfig::default();
        for m in [suite::stencil_2d(48, 48), suite::banded(2048, 8, 0.7, 5)] {
            let p = FeatureVector::extract(&m, &cfg).get("p_R").unwrap();
            assert!(p > 0.4, "suite p-ratio {p}");
        }
    }

    #[test]
    fn from_values_roundtrip() {
        let m = suite::stencil_2d(10, 10);
        let f = FeatureVector::extract(&m, &FeatureConfig::default());
        let g = FeatureVector::from_values(f.values().to_vec());
        assert_eq!(f, g);
    }

    #[test]
    #[should_panic(expected = "feature vector must have")]
    fn from_values_rejects_wrong_len() {
        FeatureVector::from_values(vec![1.0, 2.0]);
    }
}
