//! Assembly of the fixed-order feature vector fed to the decision
//! trees (the full Table 2).

use crate::engine::{self, FeatureScratch};
use crate::locality::{locality_metrics, LocalityMetrics, GROUP_XS};
use crate::stats::SummaryStats;
use crate::tiling::{TileGeometry, TileGrid};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::OnceLock;
use wise_kernels::sched::default_threads;
use wise_matrix::Csr;

/// Feature-extraction configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Maximum tile-grid dimension K. The paper uses 2048 (sized for L2
    /// and 2^20+-row matrices); the grid is clamped to the matrix
    /// dimensions either way.
    pub k_max: usize,
    /// Worker threads for the fused extraction sweeps: 0 (the default)
    /// resolves to [`default_threads`] at extraction time. Callers that
    /// already parallelize *across* matrices (e.g. the rayon labeling
    /// loop in `wise-core`) should pin this to 1 to avoid
    /// oversubscription; the result is bit-identical either way.
    #[serde(default)]
    pub threads: usize,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig { k_max: 2048, threads: 0 }
    }
}

impl FeatureConfig {
    /// The worker-thread count extraction will actually use.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            default_threads()
        } else {
            self.threads
        }
    }
}

/// A fixed-order vector of the 70 features fed to the trees: the 67
/// matrix features of Table 2 (3 size + 5 distributions × 8 statistics
/// + 24 locality metrics) plus 3 trailing host-capability features
/// (SIMD lanes, auto prefetch distance, auto interleave factor) so
/// selection can learn vector-width/MLP decisions per matrix rather
/// than per host.
///
/// ```
/// use wise_features::{FeatureConfig, FeatureVector};
/// let m = wise_matrix::Csr::identity(64);
/// let f = FeatureVector::extract(&m, &FeatureConfig::default());
/// assert_eq!(f.get("nnz"), Some(64.0));
/// assert_eq!(f.get("mean_R"), Some(1.0)); // one nonzero per row
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    values: Vec<f64>,
}

/// Number of features: Table 2's 67 plus the 3 host SIMD/MLP features.
pub const N_FEATURES: usize = 3 + 5 * 8 + 24 + 3;

/// The host SIMD/MLP capability features, in vector order:
/// `[host_simd_lanes, host_prefetch, host_interleave]`. They depend on
/// the active ISA (so `WISE_SIMD`/`WISE_PREFETCH` caps are visible to
/// the classifier) and on `ncols`, which drives the auto policies'
/// x-footprint thresholds. Shared by the full extractor, the reference
/// extractor and the probe, so all three agree bit-for-bit.
pub fn host_simd_features(ncols: usize) -> [f64; 3] {
    let isa = wise_kernels::simd::active();
    [
        isa.lanes() as f64,
        wise_kernels::simd::prefetch_distance(isa, ncols) as f64,
        wise_kernels::simd::auto_csr_interleave(isa, ncols) as f64,
    ]
}

fn build_names() -> Vec<String> {
    let mut names = vec!["n_rows".to_string(), "n_cols".to_string(), "nnz".to_string()];
    for dist in ["R", "C", "T", "RB", "CB"] {
        for stat in ["mean", "std", "var", "gini", "p", "min", "max", "ne"] {
            names.push(format!("{stat}_{dist}"));
        }
    }
    names.push("uniqR".into());
    names.push("uniqC".into());
    for x in GROUP_XS {
        names.push(format!("Gr{x}_uniqR"));
    }
    for x in GROUP_XS {
        names.push(format!("Gr{x}_uniqC"));
    }
    names.push("potReuseR".into());
    names.push("potReuseC".into());
    for x in GROUP_XS {
        names.push(format!("Gr{x}_potReuseR"));
    }
    for x in GROUP_XS {
        names.push(format!("Gr{x}_potReuseC"));
    }
    names.push("host_simd_lanes".into());
    names.push("host_prefetch".into());
    names.push("host_interleave".into());
    debug_assert_eq!(names.len(), N_FEATURES);
    names
}

/// The shared final assembly: both extraction paths push the same
/// statistics in the same fixed order, so parity between them is purely
/// a question of equal counts.
fn assemble(
    nrows: usize,
    ncols: usize,
    nnz: usize,
    dists: [SummaryStats; 5], // R, C, T, RB, CB
    loc: &LocalityMetrics,
) -> Vec<f64> {
    let mut values = Vec::with_capacity(N_FEATURES);
    values.push(nrows as f64);
    values.push(ncols as f64);
    values.push(nnz as f64);
    for s in dists {
        values.extend_from_slice(&[s.mean, s.std, s.var, s.gini, s.p_ratio, s.min, s.max, s.ne]);
    }
    values.push(loc.uniq_r);
    values.push(loc.uniq_c);
    values.extend_from_slice(&loc.gr_uniq_r);
    values.extend_from_slice(&loc.gr_uniq_c);
    values.push(loc.pot_reuse_r);
    values.push(loc.pot_reuse_c);
    values.extend_from_slice(&loc.gr_pot_reuse_r);
    values.extend_from_slice(&loc.gr_pot_reuse_c);
    values.extend_from_slice(&host_simd_features(ncols));
    debug_assert_eq!(values.len(), N_FEATURES);
    values
}

impl FeatureVector {
    /// The feature names, in vector order.
    pub fn names() -> &'static [String] {
        static NAMES: OnceLock<Vec<String>> = OnceLock::new();
        NAMES.get_or_init(build_names)
    }

    /// Name → vector-index map (built once; [`Self::get`] is O(1)).
    fn index_map() -> &'static HashMap<&'static str, usize> {
        static MAP: OnceLock<HashMap<&'static str, usize>> = OnceLock::new();
        MAP.get_or_init(|| Self::names().iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect())
    }

    /// Vector index of a feature name, if it exists.
    pub fn name_index(name: &str) -> Option<usize> {
        Self::index_map().get(name).copied()
    }

    /// Extracts all features from `m` with the fused parallel engine —
    /// O(nnz + K) work split over `cfg.threads` workers. This is the
    /// feature-calculation half of WISE's preprocessing overhead
    /// (Fig. 13c). Allocates a fresh workspace; hot loops extracting
    /// from many matrices should reuse one via [`Self::extract_with`].
    pub fn extract(m: &Csr, cfg: &FeatureConfig) -> FeatureVector {
        Self::extract_with(m, cfg, &mut FeatureScratch::new())
    }

    /// [`Self::extract`] with a caller-owned [`FeatureScratch`], making
    /// repeated extractions allocation-free once the workspace has
    /// grown to the largest matrix seen.
    pub fn extract_with(
        m: &Csr,
        cfg: &FeatureConfig,
        scratch: &mut FeatureScratch,
    ) -> FeatureVector {
        let _span = wise_trace::span("features.extract");
        wise_trace::counter("features.nnz", m.nnz() as u64);
        let geo = TileGeometry::for_matrix(m.nrows(), m.ncols(), cfg.k_max);
        let threads = cfg.resolved_threads();

        // Fused row-major sweep: T, RB, CB and row-side incidence in
        // one pass over the CSR arrays.
        let (row_inc, t_stats, rb_stats, cb_stats) = {
            let _sweep = wise_trace::span("features.sweep_rows");
            let side = engine::fused_sweep(
                &mut scratch.workers,
                m.row_ptr(),
                m.col_idx(),
                m.nrows(),
                geo,
                true,
                threads,
            );
            let t = SummaryStats::from_sparse_with(
                side.tile_counts,
                geo.k * geo.k,
                &mut scratch.stat_buf,
            );
            let rb = SummaryStats::from_counts_with(side.row_block_counts, &mut scratch.stat_buf);
            let cb = SummaryStats::from_counts_with(side.col_block_counts, &mut scratch.stat_buf);
            (side.incidence, t, rb, cb)
        };

        // R distribution straight from row-pointer differences — no
        // per-row materialization pass.
        scratch.counts_buf.clear();
        scratch.counts_buf.extend(m.row_ptr().windows(2).map(|w| w[1] - w[0]));
        let r_stats = SummaryStats::from_counts_with(&scratch.counts_buf, &mut scratch.stat_buf);

        // Values-free pattern transpose: the C distribution falls out of
        // its row pointers, and the mirrored sweep yields the
        // column-side incidence levels.
        {
            let _t = wise_trace::span("features.transpose");
            m.transpose_pattern_into(&mut scratch.t_row_ptr, &mut scratch.t_col_idx);
        }
        scratch.counts_buf.clear();
        scratch.counts_buf.extend(scratch.t_row_ptr.windows(2).map(|w| w[1] - w[0]));
        let c_stats = SummaryStats::from_counts_with(&scratch.counts_buf, &mut scratch.stat_buf);

        let mirrored = TileGeometry { k: geo.k, tile_h: geo.tile_w, tile_w: geo.tile_h };
        let _sweep = wise_trace::span("features.sweep_cols");
        let col_inc = engine::fused_sweep(
            &mut scratch.workers,
            &scratch.t_row_ptr,
            &scratch.t_col_idx,
            m.ncols(),
            mirrored,
            false,
            threads,
        )
        .incidence;
        drop(_sweep);

        let loc = LocalityMetrics::from_incidence(row_inc, col_inc, m.nrows(), m.ncols(), m.nnz());
        FeatureVector {
            values: assemble(
                m.nrows(),
                m.ncols(),
                m.nnz(),
                [r_stats, c_stats, t_stats, rb_stats, cb_stats],
                &loc,
            ),
        }
    }

    /// The naive multi-pass reference extractor: full value-carrying
    /// transpose, sort-based [`TileGrid`], separate per-distribution
    /// passes. Kept as the oracle the parity test suite compares
    /// [`Self::extract`] against feature-by-feature (results are
    /// exactly equal); not used on any production path.
    pub fn extract_reference(m: &Csr, cfg: &FeatureConfig) -> FeatureVector {
        let grid = TileGrid::new(m, cfg.k_max);
        let mt = m.transpose();

        let r_stats = SummaryStats::from_counts(&m.nnz_per_row());
        let c_stats = SummaryStats::from_counts(&m.nnz_per_col());
        let t_stats = SummaryStats::from_sparse(grid.tile_counts(), grid.n_tiles());
        let rb_stats = SummaryStats::from_counts(grid.row_block_counts());
        let cb_stats = SummaryStats::from_counts(grid.col_block_counts());
        let loc = locality_metrics(m, &mt, &grid);

        FeatureVector {
            values: assemble(
                m.nrows(),
                m.ncols(),
                m.nnz(),
                [r_stats, c_stats, t_stats, rb_stats, cb_stats],
                &loc,
            ),
        }
    }

    pub fn values(&self) -> &[f64] {
        &self.values
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Looks a feature up by name (O(1) via a lazily built name map).
    pub fn get(&self, name: &str) -> Option<f64> {
        Self::name_index(name).map(|i| self.values[i])
    }

    /// Builds a vector directly from values (model deserialization).
    pub fn from_values(values: Vec<f64>) -> FeatureVector {
        assert_eq!(values.len(), N_FEATURES, "feature vector must have {N_FEATURES} entries");
        FeatureVector { values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wise_gen::{suite, RmatParams};

    #[test]
    fn names_unique_and_sized() {
        let names = FeatureVector::names();
        assert_eq!(names.len(), N_FEATURES);
        let mut sorted = names.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), N_FEATURES);
    }

    #[test]
    fn name_index_matches_position() {
        for (i, n) in FeatureVector::names().iter().enumerate() {
            assert_eq!(FeatureVector::name_index(n), Some(i));
        }
        assert_eq!(FeatureVector::name_index("bogus"), None);
    }

    #[test]
    fn extract_sizes_and_lookup() {
        let m = RmatParams::LOW_LOC.generate(8, 4, 1);
        let f = FeatureVector::extract(&m, &FeatureConfig::default());
        assert_eq!(f.len(), N_FEATURES);
        assert_eq!(f.get("n_rows"), Some(256.0));
        assert_eq!(f.get("n_cols"), Some(256.0));
        assert_eq!(f.get("nnz"), Some(m.nnz() as f64));
        assert_eq!(f.get("no_such_feature"), None);
        // Mean nonzeros per row must equal nnz / nrows.
        let mean_r = f.get("mean_R").unwrap();
        assert!((mean_r - m.nnz() as f64 / 256.0).abs() < 1e-9);
    }

    #[test]
    fn fused_matches_reference_across_threads() {
        let cfg1 = FeatureConfig { k_max: 16, threads: 1 };
        let mut scratch = FeatureScratch::new();
        for m in [
            RmatParams::MED_SKEW.generate(9, 8, 3),
            suite::banded(512, 4, 1.0, 0),
            wise_matrix::Csr::zero(10, 10),
        ] {
            let want = FeatureVector::extract_reference(&m, &cfg1);
            for threads in [1usize, 2, 7] {
                let cfg = FeatureConfig { k_max: 16, threads };
                let got = FeatureVector::extract_with(&m, &cfg, &mut scratch);
                assert_eq!(got, want, "threads={threads}");
            }
        }
    }

    #[test]
    fn scratch_reuse_is_stateless() {
        // Interleave matrices of very different shapes through one
        // scratch; results must match fresh extractions.
        let mut scratch = FeatureScratch::new();
        let cfg = FeatureConfig::default();
        let ms = [
            RmatParams::HIGH_SKEW.generate(9, 8, 2),
            suite::stencil_2d(10, 10),
            wise_matrix::Csr::identity(3),
            RmatParams::LOW_LOC.generate(8, 4, 1),
        ];
        for m in &ms {
            let fresh = FeatureVector::extract(m, &cfg);
            let reused = FeatureVector::extract_with(m, &cfg, &mut scratch);
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn skew_features_separate_recipes() {
        // The core claim of the feature set: HS and LL matrices of the
        // same size differ strongly in skew features.
        let hs = RmatParams::HIGH_SKEW.generate(11, 8, 2);
        let ll = RmatParams::LOW_LOC.generate(11, 8, 2);
        let fh = FeatureVector::extract(&hs, &FeatureConfig::default());
        let fl = FeatureVector::extract(&ll, &FeatureConfig::default());
        assert!(fh.get("gini_R").unwrap() > fl.get("gini_R").unwrap() + 0.2);
        assert!(fh.get("p_R").unwrap() < fl.get("p_R").unwrap() - 0.1);
    }

    #[test]
    fn locality_features_separate_recipes() {
        let hl = RmatParams::HIGH_LOC.generate(11, 8, 2);
        let ll = RmatParams::LOW_LOC.generate(11, 8, 2);
        let fh = FeatureVector::extract(&hl, &FeatureConfig::default());
        let fl = FeatureVector::extract(&ll, &FeatureConfig::default());
        // Diagonal concentration -> fewer non-empty tiles, higher tile gini.
        assert!(fh.get("ne_T").unwrap() < fl.get("ne_T").unwrap());
        assert!(fh.get("gini_T").unwrap() > fl.get("gini_T").unwrap());
    }

    #[test]
    fn p_ratio_matches_paper_recipe_targets() {
        // Section 4.5: HS/MS/LS have row p-ratios of ~0.1 / ~0.2 / ~0.3;
        // locality recipes sit at ~0.4-0.5.
        let cfg = FeatureConfig::default();
        let p_of = |r: RmatParams, seed| {
            let m = r.generate(12, 16, seed);
            FeatureVector::extract(&m, &cfg).get("p_R").unwrap()
        };
        let p_hs = p_of(RmatParams::HIGH_SKEW, 3);
        let p_ms = p_of(RmatParams::MED_SKEW, 3);
        let p_ls = p_of(RmatParams::LOW_SKEW, 3);
        let p_ll = p_of(RmatParams::LOW_LOC, 3);
        assert!(p_hs < p_ms && p_ms < p_ls && p_ls < p_ll, "{p_hs} {p_ms} {p_ls} {p_ll}");
        assert!(p_hs < 0.2, "HS p-ratio {p_hs}");
        assert!(p_ll > 0.35, "LL p-ratio {p_ll}");
    }

    #[test]
    fn suite_matrices_have_high_p_ratio() {
        // Fig. 7's claim reproduced by our stand-ins.
        let cfg = FeatureConfig::default();
        for m in [suite::stencil_2d(48, 48), suite::banded(2048, 8, 0.7, 5)] {
            let p = FeatureVector::extract(&m, &cfg).get("p_R").unwrap();
            assert!(p > 0.4, "suite p-ratio {p}");
        }
    }

    #[test]
    fn host_features_trail_the_vector_and_match_the_probe_policy() {
        let m = RmatParams::LOW_LOC.generate(8, 4, 1);
        let f = FeatureVector::extract(&m, &FeatureConfig::default());
        let host = host_simd_features(m.ncols());
        assert_eq!(&f.values()[N_FEATURES - 3..], &host);
        assert_eq!(f.get("host_simd_lanes"), Some(host[0]));
        assert_eq!(f.get("host_prefetch"), Some(host[1]));
        assert_eq!(f.get("host_interleave"), Some(host[2]));
        let isa = wise_kernels::simd::active();
        assert_eq!(host[0], isa.lanes() as f64);
        // The reference extractor emits the identical trailing triple.
        let r = FeatureVector::extract_reference(&m, &FeatureConfig::default());
        assert_eq!(&r.values()[N_FEATURES - 3..], &host);
    }

    #[test]
    fn from_values_roundtrip() {
        let m = suite::stencil_2d(10, 10);
        let f = FeatureVector::extract(&m, &FeatureConfig::default());
        let g = FeatureVector::from_values(f.values().to_vec());
        assert_eq!(f, g);
    }

    #[test]
    fn config_deserializes_without_threads_field() {
        // Models saved before the threads knob existed must still load.
        let cfg: FeatureConfig = serde_json::from_str(r#"{"k_max": 512}"#).unwrap();
        assert_eq!(cfg, FeatureConfig { k_max: 512, threads: 0 });
        assert!(cfg.resolved_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "feature vector must have")]
    fn from_values_rejects_wrong_len() {
        FeatureVector::from_values(vec![1.0, 2.0]);
    }
}
