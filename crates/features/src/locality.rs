//! Within-tile layout and cross-tile reuse metrics (paper Section 4.2).
//!
//! For each tile the paper counts the unique rows (`uniqR_i`) and
//! columns (`uniqC_i`) holding nonzeros, and the unique *groups of X
//! adjacent* rows/columns (`GrX_uniqR_i`, `GrX_uniqC_i`, X ∈ {4, 8, 16,
//! 32, 64} — cache-line granularities). Sums across tiles are
//! normalized by nnz. It also counts, per row (column, group), the
//! number of tiles it touches — `potReuse*`, averaged over rows
//! (columns, groups) — which measures cross-tile LLC reuse potential.
//!
//! All metrics reduce to counting distinct `(group, tile)` incidence
//! pairs, because
//! `Σ_tiles GrX_uniqR_i = #distinct (row-group, tile) pairs
//!  = Σ_groups GrX_potReuseR_g`.
//! One CSR pass per orientation with a last-seen marker per column
//! block computes every X level simultaneously in O(nnz · |X|) time and
//! O(K · |X|) memory; markers work because row groups appear in
//! non-decreasing order during a row-major scan.

use crate::tiling::TileGrid;
use serde::{Deserialize, Serialize};
use wise_matrix::Csr;

/// Group sizes used for `GrX_*` features (cache-line granularities for
/// 128-bit to 512-byte lines; paper Section 4.2).
pub const GROUP_XS: [usize; 5] = [4, 8, 16, 32, 64];

/// The 24 locality features of Table 2's last block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalityMetrics {
    /// Σ_i uniqR_i / nnz.
    pub uniq_r: f64,
    /// Σ_i uniqC_i / nnz.
    pub uniq_c: f64,
    /// Σ_i GrX_uniqR_i / nnz, per X in [`GROUP_XS`].
    pub gr_uniq_r: [f64; 5],
    /// Σ_i GrX_uniqC_i / nnz, per X.
    pub gr_uniq_c: [f64; 5],
    /// Mean tiles-touched per row.
    pub pot_reuse_r: f64,
    /// Mean tiles-touched per column.
    pub pot_reuse_c: f64,
    /// Mean tiles-touched per group of X rows, per X.
    pub gr_pot_reuse_r: [f64; 5],
    /// Mean tiles-touched per group of X columns, per X.
    pub gr_pot_reuse_c: [f64; 5],
}

/// Distinct `(group, tile)` incidence counts for one matrix orientation:
/// index 0 is group size 1 (individual rows), indices 1.. follow
/// [`GROUP_XS`].
fn incidence_counts(m: &Csr, tile_h: usize, tile_w: usize, k: usize) -> [usize; 6] {
    let levels: [usize; 6] = [1, GROUP_XS[0], GROUP_XS[1], GROUP_XS[2], GROUP_XS[3], GROUP_XS[4]];
    let mut counts = [0usize; 6];
    // last[level][cb] = encoded (group, row-block) last seen touching cb.
    let mut last: Vec<Vec<u64>> = (0..6).map(|_| vec![u64::MAX; k]).collect();
    for r in 0..m.nrows() {
        let rb = (r / tile_h) as u64;
        for &c in m.row_cols(r) {
            let cb = c as usize / tile_w;
            for (li, &x) in levels.iter().enumerate() {
                let key = (r / x) as u64 * k as u64 + rb;
                // Safe marker: keys for a fixed cb are non-decreasing in r.
                if last[li][cb] != key {
                    last[li][cb] = key;
                    counts[li] += 1;
                }
            }
        }
    }
    counts
}

impl LocalityMetrics {
    /// Assembles the 24 metrics from one distinct-`(group, tile)`
    /// incidence array per orientation (index 0 = single rows/columns,
    /// indices 1.. follow [`GROUP_XS`]). Shared by the reference path
    /// ([`locality_metrics`]) and the fused extraction engine, so both
    /// produce bit-identical features from equal counts.
    pub fn from_incidence(
        row_side: [usize; 6],
        col_side: [usize; 6],
        nrows: usize,
        ncols: usize,
        nnz: usize,
    ) -> LocalityMetrics {
        let nnz = nnz as f64;
        let ngroups = |n: usize, x: usize| n.div_ceil(x).max(1) as f64;
        let safe_div = |a: usize, b: f64| if b > 0.0 { a as f64 / b } else { 0.0 };

        let mut gr_uniq_r = [0.0; 5];
        let mut gr_uniq_c = [0.0; 5];
        let mut gr_pot_reuse_r = [0.0; 5];
        let mut gr_pot_reuse_c = [0.0; 5];
        for (i, &x) in GROUP_XS.iter().enumerate() {
            gr_uniq_r[i] = safe_div(row_side[i + 1], nnz);
            gr_uniq_c[i] = safe_div(col_side[i + 1], nnz);
            gr_pot_reuse_r[i] = row_side[i + 1] as f64 / ngroups(nrows, x);
            gr_pot_reuse_c[i] = col_side[i + 1] as f64 / ngroups(ncols, x);
        }
        LocalityMetrics {
            uniq_r: safe_div(row_side[0], nnz),
            uniq_c: safe_div(col_side[0], nnz),
            gr_uniq_r,
            gr_uniq_c,
            pot_reuse_r: row_side[0] as f64 / nrows.max(1) as f64,
            pot_reuse_c: col_side[0] as f64 / ncols.max(1) as f64,
            gr_pot_reuse_r,
            gr_pot_reuse_c,
        }
    }
}

/// Computes all locality metrics with the serial reference sweeps.
/// `mt` must be the transpose of `m` (callers typically already have it
/// for the C distribution). The production extraction path computes the
/// same incidence counts inside its fused sweep; this function is the
/// independently-testable oracle.
pub fn locality_metrics(m: &Csr, mt: &Csr, grid: &TileGrid) -> LocalityMetrics {
    debug_assert_eq!(mt.nrows(), m.ncols());
    debug_assert_eq!(mt.nnz(), m.nnz());
    let k = grid.k();
    let row_side = incidence_counts(m, grid.tile_h(), grid.tile_w(), k);
    // Column orientation: scan the transpose; its "rows" are original
    // columns, so tile height/width swap.
    let col_side = incidence_counts(mt, grid.tile_w(), grid.tile_h(), k);
    LocalityMetrics::from_incidence(row_side, col_side, m.nrows(), m.ncols(), m.nnz())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wise_gen::{suite, RmatParams};

    fn metrics(m: &Csr, k: usize) -> (LocalityMetrics, TileGrid) {
        let grid = TileGrid::new(m, k);
        let mt = m.transpose();
        (locality_metrics(m, &mt, &grid), grid)
    }

    /// Brute-force reference: count distinct (group, tile) pairs with
    /// hash sets.
    fn brute_incidence(m: &Csr, tile_h: usize, tile_w: usize, k: usize, x: usize) -> usize {
        let mut set = std::collections::HashSet::new();
        for r in 0..m.nrows() {
            for &c in m.row_cols(r) {
                set.insert((r / x, r / tile_h, (c as usize / tile_w).min(k - 1)));
            }
        }
        set.len()
    }

    #[test]
    fn identity_matrix_metrics() {
        let m = Csr::identity(64);
        let (l, g) = metrics(&m, 8);
        assert_eq!(g.tile_h(), 8);
        // Each row touches exactly 1 tile; every nonzero is a unique row
        // in its tile.
        assert_eq!(l.pot_reuse_r, 1.0);
        assert_eq!(l.pot_reuse_c, 1.0);
        assert_eq!(l.uniq_r, 1.0);
        assert_eq!(l.uniq_c, 1.0);
        // Groups of 4 rows touch 1 tile each (diagonal alignment).
        assert_eq!(l.gr_pot_reuse_r[0], 1.0);
        // Gr4_uniqR = 16 groups-in-tiles / 64 nnz = 0.25.
        assert!((l.gr_uniq_r[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn dense_row_touches_every_column_block() {
        // One row filled, k=4 blocks.
        let n = 16usize;
        let m = Csr::try_new(
            n,
            n,
            {
                let mut rp = vec![0usize; n + 1];
                for v in rp.iter_mut().skip(1) {
                    *v = n;
                }
                rp
            },
            (0..n as u32).collect(),
            vec![1.0; n],
        )
        .unwrap();
        let (l, _) = metrics(&m, 4);
        // The single non-empty row touches all 4 column blocks.
        assert!((l.pot_reuse_r - 4.0 / 16.0).abs() < 1e-12);
        // Each column has one nonzero -> touches 1 tile.
        assert_eq!(l.pot_reuse_c, 1.0);
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        for (seed, gen) in [(1u64, RmatParams::HIGH_SKEW), (2, RmatParams::LOW_LOC)] {
            let m = gen.generate(8, 6, seed);
            let grid = TileGrid::new(&m, 16);
            let counts = incidence_counts(&m, grid.tile_h(), grid.tile_w(), grid.k());
            for (li, &x) in [1usize, 4, 8, 16, 32, 64].iter().enumerate() {
                let want = brute_incidence(&m, grid.tile_h(), grid.tile_w(), grid.k(), x);
                assert_eq!(counts[li], want, "seed={seed} X={x}");
            }
        }
    }

    #[test]
    fn grouped_counts_are_monotone_in_x() {
        // Bigger groups can only merge, never split: counts decrease.
        let m = RmatParams::MED_SKEW.generate(9, 8, 4);
        let grid = TileGrid::new(&m, 32);
        let counts = incidence_counts(&m, grid.tile_h(), grid.tile_w(), grid.k());
        for w in counts.windows(2) {
            assert!(w[0] >= w[1], "{counts:?}");
        }
    }

    #[test]
    fn high_loc_has_lower_uniq_c_than_low_loc() {
        // Diagonal matrices keep column accesses clustered: grouped
        // unique-column counts per nonzero should be lower.
        let hl = RmatParams::HIGH_LOC.generate(11, 8, 9);
        let ll = RmatParams::LOW_LOC.generate(11, 8, 9);
        let (mhl, _) = metrics(&hl, 64);
        let (mll, _) = metrics(&ll, 64);
        assert!(
            mhl.gr_uniq_c[2] < mll.gr_uniq_c[2],
            "HighLoc {} vs LowLoc {}",
            mhl.gr_uniq_c[2],
            mll.gr_uniq_c[2]
        );
    }

    #[test]
    fn banded_rows_touch_few_tiles() {
        let m = suite::banded(512, 4, 1.0, 0);
        let (l, _) = metrics(&m, 16);
        // Bandwidth 4 << tile width 32: almost every row stays in 1-2 tiles.
        assert!(l.pot_reuse_r < 2.0, "pot_reuse_r={}", l.pot_reuse_r);
    }

    #[test]
    fn empty_matrix_is_all_zero() {
        let m = Csr::zero(8, 8);
        let (l, _) = metrics(&m, 4);
        assert_eq!(l.uniq_r, 0.0);
        assert_eq!(l.pot_reuse_c, 0.0);
        assert_eq!(l.gr_uniq_r, [0.0; 5]);
    }
}
