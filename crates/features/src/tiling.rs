//! The logical K×K tile grid (paper Section 4.2, Figure 9).
//!
//! The matrix is broken into `K²` tiles of `⌈nR/K⌉ × ⌈nC/K⌉` elements.
//! Rows of tiles are *row blocks* (RB), columns of tiles are *column
//! blocks* (CB). The paper picks K = 2048 for 2^20–2^26-row matrices;
//! [`TileGrid::new`] clamps K to the matrix dimensions so the same
//! definitions remain meaningful for the quick-scale corpora.

use wise_matrix::Csr;

/// Tile-grid geometry: the clamped grid dimension and tile extents,
/// without any per-matrix distributions. The single source of truth for
/// the clamping rule shared by [`TileGrid`] (the reference path) and
/// the fused extraction engine (`crate::engine`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileGeometry {
    /// Grid dimension actually used (after clamping to the matrix).
    pub k: usize,
    /// Rows per tile.
    pub tile_h: usize,
    /// Columns per tile.
    pub tile_w: usize,
}

impl TileGeometry {
    /// Geometry for an `nrows x ncols` matrix with grid dimension
    /// `min(k_max, nrows, ncols)` (at least 1).
    pub fn for_matrix(nrows: usize, ncols: usize, k_max: usize) -> TileGeometry {
        let k = k_max.min(nrows.max(1)).min(ncols.max(1)).max(1);
        TileGeometry { k, tile_h: nrows.div_ceil(k).max(1), tile_w: ncols.div_ceil(k).max(1) }
    }
}

/// Tile-grid geometry plus the T/RB/CB nonzero distributions.
///
/// This is the *reference* tiling pass: simple, serial, and
/// O(nnz log nnz) because of the tile-id sort. The production
/// extraction path (`FeatureVector::extract`) computes the same
/// distributions in a fused O(nnz + K) sweep; `TileGrid` is kept as
/// the independently-testable oracle the parity suite compares
/// against.
#[derive(Debug, Clone)]
pub struct TileGrid {
    /// Grid dimension actually used (after clamping to the matrix).
    k: usize,
    /// Rows per tile.
    tile_h: usize,
    /// Columns per tile.
    tile_w: usize,
    /// Nonzero count of each *non-empty* tile (unordered).
    tile_counts: Vec<usize>,
    /// Nonzeros per row block (dense, length k).
    row_block_counts: Vec<usize>,
    /// Nonzeros per column block (dense, length k).
    col_block_counts: Vec<usize>,
}

impl TileGrid {
    /// Builds the grid with dimension `min(k_max, nrows, ncols)` (at
    /// least 1) and computes all three block distributions in
    /// O(nnz log nnz).
    pub fn new(m: &Csr, k_max: usize) -> TileGrid {
        let TileGeometry { k, tile_h, tile_w } =
            TileGeometry::for_matrix(m.nrows(), m.ncols(), k_max);

        let mut row_block_counts = vec![0usize; k];
        let mut col_block_counts = vec![0usize; k];
        // Tile ids of every nonzero; sorted to get per-tile counts.
        let mut tile_ids: Vec<u64> = Vec::with_capacity(m.nnz());
        for r in 0..m.nrows() {
            let rb = r / tile_h;
            let row_cols = m.row_cols(r);
            row_block_counts[rb] += row_cols.len();
            for &c in row_cols {
                let cb = c as usize / tile_w;
                col_block_counts[cb] += 1;
                tile_ids.push((rb as u64) << 32 | cb as u64);
            }
        }
        tile_ids.sort_unstable();
        let mut tile_counts = Vec::new();
        let mut i = 0;
        while i < tile_ids.len() {
            let id = tile_ids[i];
            let mut j = i + 1;
            while j < tile_ids.len() && tile_ids[j] == id {
                j += 1;
            }
            tile_counts.push(j - i);
            i = j;
        }
        TileGrid { k, tile_h, tile_w, tile_counts, row_block_counts, col_block_counts }
    }

    /// Grid dimension (K).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Rows per tile.
    pub fn tile_h(&self) -> usize {
        self.tile_h
    }

    /// Columns per tile.
    pub fn tile_w(&self) -> usize {
        self.tile_w
    }

    /// Total number of tile buckets (K²).
    pub fn n_tiles(&self) -> usize {
        self.k * self.k
    }

    /// Nonzero counts of non-empty tiles (unordered).
    pub fn tile_counts(&self) -> &[usize] {
        &self.tile_counts
    }

    /// Nonzeros per row block.
    pub fn row_block_counts(&self) -> &[usize] {
        &self.row_block_counts
    }

    /// Nonzeros per column block.
    pub fn col_block_counts(&self) -> &[usize] {
        &self.col_block_counts
    }

    /// Number of non-empty tiles.
    pub fn n_nonempty_tiles(&self) -> usize {
        self.tile_counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wise_gen::suite;

    #[test]
    fn identity_matrix_hits_diagonal_tiles() {
        let m = Csr::identity(16);
        let g = TileGrid::new(&m, 4);
        assert_eq!(g.k(), 4);
        assert_eq!(g.tile_h(), 4);
        assert_eq!(g.tile_w(), 4);
        // Identity nonzeros land only in the 4 diagonal tiles, 4 each.
        assert_eq!(g.n_nonempty_tiles(), 4);
        assert!(g.tile_counts().iter().all(|&c| c == 4));
        assert_eq!(g.row_block_counts(), &[4, 4, 4, 4]);
        assert_eq!(g.col_block_counts(), &[4, 4, 4, 4]);
    }

    #[test]
    fn counts_sum_to_nnz() {
        let m = suite::banded(300, 7, 0.6, 9);
        let g = TileGrid::new(&m, 16);
        assert_eq!(g.tile_counts().iter().sum::<usize>(), m.nnz());
        assert_eq!(g.row_block_counts().iter().sum::<usize>(), m.nnz());
        assert_eq!(g.col_block_counts().iter().sum::<usize>(), m.nnz());
    }

    #[test]
    fn k_clamps_to_matrix() {
        let m = Csr::identity(5);
        let g = TileGrid::new(&m, 2048);
        assert_eq!(g.k(), 5);
        let wide = Csr::try_new(2, 100, vec![0, 1, 2], vec![0, 99], vec![1.0, 1.0]).unwrap();
        let g = TileGrid::new(&wide, 2048);
        assert_eq!(g.k(), 2); // min(nrows, ncols)
    }

    #[test]
    fn diagonal_band_occupies_diagonal_blocks() {
        let m = suite::banded(256, 2, 1.0, 0);
        let g = TileGrid::new(&m, 8);
        // A bandwidth-2 matrix in 32-wide tiles touches only diagonal
        // and immediately adjacent tiles.
        assert!(g.n_nonempty_tiles() <= 3 * g.k());
    }

    #[test]
    fn geometry_matches_grid() {
        for (nr, nc, k_max) in [(16, 16, 4), (5, 5, 2048), (2, 100, 2048), (0, 0, 8), (300, 7, 16)]
        {
            let m = Csr::zero(nr, nc);
            let g = TileGrid::new(&m, k_max);
            let geo = TileGeometry::for_matrix(nr, nc, k_max);
            assert_eq!((geo.k, geo.tile_h, geo.tile_w), (g.k(), g.tile_h(), g.tile_w()));
        }
    }

    #[test]
    fn empty_matrix_grid() {
        let m = Csr::zero(10, 10);
        let g = TileGrid::new(&m, 4);
        assert_eq!(g.n_nonempty_tiles(), 0);
        assert_eq!(g.tile_counts().len(), 0);
        assert_eq!(g.row_block_counts().iter().sum::<usize>(), 0);
    }
}
