//! Sparse-matrix feature extraction for WISE (paper Section 4.2,
//! Table 2).
//!
//! WISE characterizes a matrix by summary statistics over five nonzero
//! distributions — rows (R), columns (C), 2D tiles (T), row blocks
//! (RB), and column blocks (CB) — plus within-tile layout metrics
//! (unique rows/columns, cache-line-grouped uniques, and cross-tile
//! reuse potential). These are *method-oblivious*: none of them
//! references a particular SpMV format, which is what lets WISE add new
//! methods without re-designing features.
//!
//! * [`stats`] — mean/σ/σ²/min/max/Gini/p-ratio/ne over a distribution;
//! * [`tiling`] — the K×K logical tile grid and T/RB/CB distributions;
//! * [`locality`] — uniqR/uniqC, GrX_* grouped uniques, potReuse*;
//! * [`engine`] — the fused, parallel single-pass extraction engine and
//!   its reusable [`FeatureScratch`] workspace;
//! * [`probe`] — the O(nnz) stage-1 subset (sizes + full R/C
//!   statistics, no tiling or locality) behind the selection cascade;
//! * [`FeatureVector`] — the assembled, fixed-order feature vector fed
//!   to the decision trees.
//!
//! Extraction ([`FeatureVector::extract`]) runs in O(nnz + K) with one
//! fused sweep per orientation, parallelized over row-block-aligned
//! chunks; [`FeatureVector::extract_reference`] keeps the naive
//! multi-pass implementation as the parity oracle.

pub mod engine;
pub mod locality;
pub mod probe;
pub mod stats;
pub mod tiling;

mod vector;

pub use engine::FeatureScratch;
pub use probe::ProbeFeatures;
pub use stats::SummaryStats;
pub use tiling::{TileGeometry, TileGrid};
pub use vector::{FeatureConfig, FeatureVector, N_FEATURES};
