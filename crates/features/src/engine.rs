//! The fused, parallel, allocation-lean sweep behind
//! [`FeatureVector::extract`](crate::FeatureVector::extract).
//!
//! One row-major pass over a CSR pattern produces, simultaneously:
//!
//! * nonzeros per row block (RB) and per column block (CB);
//! * nonzeros per non-empty tile (T), via a per-row-block *last-seen*
//!   marker over column blocks — O(nnz + K) instead of the reference
//!   path's O(nnz log nnz) tile-id sort, with no nnz-sized allocation;
//! * all six row-side `(group, tile)` incidence levels (group sizes 1
//!   and [`GROUP_XS`]) with one marker array per level. Levels nest
//!   (1 | 4 | 8 | 16 | 32 | 64), so the per-nonzero level loop breaks
//!   at the first unchanged marker: if the group-of-X key matches, every
//!   coarser key matches too. The common case does one compare.
//!
//! The mirrored sweep over the values-free pattern transpose (built by
//! [`wise_matrix::Csr::transpose_pattern_into`]) yields the column-side
//! incidence levels and the C distribution.
//!
//! # Parallel decomposition — why merged results are exact
//!
//! The sweep is parallelized over contiguous row ranges whose
//! boundaries are multiples of `lcm(tile_h, 64)`. Every group size X
//! divides 64 and every row block spans `tile_h` rows, so no group and
//! no row block — hence no `(group, tile)` incidence pair and no tile —
//! straddles a boundary. Each worker therefore observes *complete*
//! groups, row blocks, and tiles: per-worker incidence counts and
//! block counts add exactly, and per-worker tile-count lists
//! concatenate exactly. The merged result is identical to the serial
//! sweep's for every thread count (the counts are integers; no
//! floating-point reassociation is involved).

use crate::locality::GROUP_XS;
use crate::tiling::TileGeometry;

/// Incidence levels of one sweep: individual rows, then [`GROUP_XS`].
const LEVELS: [usize; 6] = [1, GROUP_XS[0], GROUP_XS[1], GROUP_XS[2], GROUP_XS[3], GROUP_XS[4]];

/// Per-worker sweep state and partial outputs. Buffers persist across
/// sweeps (inside [`FeatureScratch`]) so repeated extractions are
/// allocation-free once capacities are reached.
#[derive(Debug, Default)]
pub(crate) struct Worker {
    /// Per-level last-seen `(group, row-block)` key per column block,
    /// flattened as `last[level * k + cb]`.
    last: Vec<u64>,
    /// Row block last seen touching each column block (tile detection).
    tile_last_rb: Vec<u64>,
    /// Nonzeros of the current row block in each touched column block.
    tile_acc: Vec<usize>,
    /// Column blocks touched by the current row block, first-touch order.
    touched: Vec<u32>,
    /// Distinct `(group, tile)` pairs seen, per level.
    incidence: [usize; 6],
    /// Nonzero count of every completed non-empty tile.
    tile_counts: Vec<usize>,
    /// Nonzeros per row block (dense, length k).
    row_block_counts: Vec<usize>,
    /// Nonzeros per column block (dense, length k).
    col_block_counts: Vec<usize>,
}

impl Worker {
    fn reset(&mut self, k: usize, want_tiles: bool) {
        self.last.clear();
        self.last.resize(LEVELS.len() * k, u64::MAX);
        self.incidence = [0; 6];
        self.tile_counts.clear();
        if want_tiles {
            self.tile_last_rb.clear();
            self.tile_last_rb.resize(k, u64::MAX);
            self.tile_acc.clear();
            self.tile_acc.resize(k, 0);
            self.touched.clear();
            self.row_block_counts.clear();
            self.row_block_counts.resize(k, 0);
            self.col_block_counts.clear();
            self.col_block_counts.resize(k, 0);
        }
    }

    /// Emits the tile counts of the row block just finished.
    fn flush_tiles(&mut self) {
        for &cb in &self.touched {
            self.tile_counts.push(self.tile_acc[cb as usize]);
        }
        self.touched.clear();
    }

    /// Sweeps rows `r0..r1` of the pattern `(row_ptr, col_idx)`.
    ///
    /// Correctness of the markers relies only on rows being scanned in
    /// ascending order within the range: for a fixed column block, the
    /// `(group, row-block)` keys are then non-decreasing, so equality
    /// with the last-seen key exactly detects repeats.
    fn sweep(
        &mut self,
        row_ptr: &[usize],
        col_idx: &[u32],
        r0: usize,
        r1: usize,
        geo: TileGeometry,
        want_tiles: bool,
    ) {
        let TileGeometry { k, tile_h, tile_w } = geo;
        self.reset(k, want_tiles);
        let k64 = k as u64;
        let mut cur_rb = u64::MAX;
        for r in r0..r1 {
            let rb = (r / tile_h) as u64;
            let cols = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            if want_tiles {
                if rb != cur_rb {
                    self.flush_tiles();
                    cur_rb = rb;
                }
                self.row_block_counts[rb as usize] += cols.len();
            }
            for &c in cols {
                let cb = c as usize / tile_w;
                if want_tiles {
                    self.col_block_counts[cb] += 1;
                    if self.tile_last_rb[cb] != rb {
                        self.tile_last_rb[cb] = rb;
                        self.tile_acc[cb] = 0;
                        self.touched.push(cb as u32);
                    }
                    self.tile_acc[cb] += 1;
                }
                for (li, &x) in LEVELS.iter().enumerate() {
                    let key = (r / x) as u64 * k64 + rb;
                    let slot = &mut self.last[li * k + cb];
                    if *slot == key {
                        // Levels nest: every coarser level matches too.
                        break;
                    }
                    *slot = key;
                    self.incidence[li] += 1;
                }
            }
        }
        if want_tiles {
            self.flush_tiles();
        }
    }
}

/// Merged outputs of one fused sweep, borrowed from the worker pool.
/// `tile_counts`/`row_block_counts`/`col_block_counts` are only
/// meaningful when the sweep ran with `want_tiles`.
pub(crate) struct SideCounts<'a> {
    pub incidence: [usize; 6],
    pub tile_counts: &'a [usize],
    pub row_block_counts: &'a [usize],
    pub col_block_counts: &'a [usize],
}

fn gcd(a: usize, b: usize) -> usize {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Rows per parallel chunk: `ceil(nrows / threads)` rounded up to a
/// multiple of `lcm(tile_h, 64)` so no row block and no row group
/// straddles a chunk boundary (see the module docs for why this makes
/// the parallel merge exact).
fn aligned_chunk_rows(nrows: usize, tile_h: usize, threads: usize) -> usize {
    let max_x = LEVELS[LEVELS.len() - 1];
    let align = tile_h / gcd(tile_h, max_x) * max_x;
    let per_thread = nrows.div_ceil(threads.max(1)).max(1);
    per_thread.div_ceil(align) * align
}

/// Runs the fused sweep over the whole pattern with up to `threads`
/// workers and merges the per-worker partial counts (see module docs
/// for the exactness argument). `geo.tile_h` is the tile extent along
/// the scanned (row) dimension — callers sweeping a transpose pass a
/// mirrored geometry.
pub(crate) fn fused_sweep<'w>(
    workers: &'w mut Vec<Worker>,
    row_ptr: &[usize],
    col_idx: &[u32],
    nrows: usize,
    geo: TileGeometry,
    want_tiles: bool,
    threads: usize,
) -> SideCounts<'w> {
    debug_assert_eq!(row_ptr.len(), nrows + 1);
    let chunk_rows = aligned_chunk_rows(nrows, geo.tile_h, threads);
    let n_chunks = nrows.div_ceil(chunk_rows);
    if workers.len() < n_chunks.max(1) {
        workers.resize_with(n_chunks.max(1), Worker::default);
    }
    if n_chunks <= 1 {
        let _chunk = wise_trace::span("features.chunk_sweep");
        workers[0].sweep(row_ptr, col_idx, 0, nrows, geo, want_tiles);
    } else {
        let active = &mut workers[..n_chunks];
        std::thread::scope(|s| {
            for (t, w) in active.iter_mut().enumerate() {
                let (lo, hi) = (t * chunk_rows, ((t + 1) * chunk_rows).min(nrows));
                s.spawn(move || {
                    let _chunk = wise_trace::span("features.chunk_sweep");
                    w.sweep(row_ptr, col_idx, lo, hi, geo, want_tiles)
                });
            }
        });
        let _merge = wise_trace::span("features.chunk_merge");
        let (head, rest) = workers.split_at_mut(1);
        let w0 = &mut head[0];
        for w in &rest[..n_chunks - 1] {
            for (a, b) in w0.incidence.iter_mut().zip(&w.incidence) {
                *a += *b;
            }
            w0.tile_counts.extend_from_slice(&w.tile_counts);
            if want_tiles {
                for (a, b) in w0.row_block_counts.iter_mut().zip(&w.row_block_counts) {
                    *a += *b;
                }
                for (a, b) in w0.col_block_counts.iter_mut().zip(&w.col_block_counts) {
                    *a += *b;
                }
            }
        }
    }
    let w = &workers[0];
    SideCounts {
        incidence: w.incidence,
        tile_counts: &w.tile_counts,
        row_block_counts: &w.row_block_counts,
        col_block_counts: &w.col_block_counts,
    }
}

/// Reusable workspace for
/// [`FeatureVector::extract_with`](crate::FeatureVector::extract_with):
/// the pattern-transpose buffers, the per-thread sweep workers, and the
/// statistics sort buffers.
/// Repeated extractions over a corpus reuse every buffer, so the hot
/// labeling loop performs no per-matrix allocations once capacities
/// have grown to the largest matrix seen.
#[derive(Debug, Default)]
pub struct FeatureScratch {
    /// Pattern-transpose row pointers (`ncols + 1` entries).
    pub(crate) t_row_ptr: Vec<usize>,
    /// Pattern-transpose row indices (`nnz` entries).
    pub(crate) t_col_idx: Vec<u32>,
    /// Per-thread sweep workers (grown on demand).
    pub(crate) workers: Vec<Worker>,
    /// Sort buffer for [`SummaryStats`](crate::SummaryStats).
    pub(crate) stat_buf: Vec<usize>,
    /// Dense R/C count buffer built from row-pointer differences.
    pub(crate) counts_buf: Vec<usize>,
    /// Column histogram for the stage-1 probe (no transpose needed).
    pub(crate) col_counts: Vec<usize>,
}

impl FeatureScratch {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> FeatureScratch {
        FeatureScratch::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locality::locality_metrics;
    use crate::tiling::TileGrid;
    use wise_matrix::Csr;

    fn side(m: &Csr, k_max: usize, threads: usize) -> (SideCounts<'_>, TileGeometry) {
        // Leak a worker pool per call; fine for tests.
        let workers = Box::leak(Box::new(Vec::new()));
        let geo = TileGeometry::for_matrix(m.nrows(), m.ncols(), k_max);
        let s = fused_sweep(workers, m.row_ptr(), m.col_idx(), m.nrows(), geo, true, threads);
        (s, geo)
    }

    #[test]
    fn matches_reference_tile_grid() {
        for threads in [1usize, 2, 7] {
            for (m, k_max) in [
                (wise_gen::RmatParams::MED_SKEW.generate(9, 8, 3), 16),
                (wise_gen::suite::banded(300, 7, 0.6, 9), 16),
                (Csr::identity(64), 8),
                (Csr::zero(10, 10), 4),
            ] {
                let grid = TileGrid::new(&m, k_max);
                let (s, _) = side(&m, k_max, threads);
                assert_eq!(s.row_block_counts, grid.row_block_counts());
                assert_eq!(s.col_block_counts, grid.col_block_counts());
                let mut got = s.tile_counts.to_vec();
                let mut want = grid.tile_counts().to_vec();
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "threads={threads}");
            }
        }
    }

    #[test]
    fn incidence_matches_reference() {
        for threads in [1usize, 2, 7] {
            let m = wise_gen::RmatParams::LOW_LOC.generate(9, 6, 5);
            let mt = m.transpose();
            let grid = TileGrid::new(&m, 16);
            let want = locality_metrics(&m, &mt, &grid);
            let geo = TileGeometry::for_matrix(m.nrows(), m.ncols(), 16);
            let (row, _) = side(&m, 16, threads);
            let workers = Box::leak(Box::new(Vec::new()));
            let (t_rp, t_ci) = m.transpose_pattern();
            let mirrored = TileGeometry { k: geo.k, tile_h: geo.tile_w, tile_w: geo.tile_h };
            let col = fused_sweep(workers, &t_rp, &t_ci, m.ncols(), mirrored, false, threads);
            let got = crate::locality::LocalityMetrics::from_incidence(
                row.incidence,
                col.incidence,
                m.nrows(),
                m.ncols(),
                m.nnz(),
            );
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn chunk_alignment_respects_groups_and_tiles() {
        for (nrows, tile_h, threads) in
            [(1000usize, 3usize, 4usize), (64, 64, 8), (1, 1, 2), (0, 5, 3)]
        {
            let chunk = aligned_chunk_rows(nrows, tile_h, threads);
            assert_eq!(chunk % tile_h, 0);
            assert_eq!(chunk % 64, 0);
            assert!(chunk >= 1);
        }
    }
}
