//! Summary statistics over nonzero-count distributions.
//!
//! For every distribution (nonzeros per row, per column, per tile, per
//! row block, per column block) the paper records: mean, standard
//! deviation, variance, min, max, Gini coefficient, p-ratio, and the
//! number of non-empty buckets (Section 4.2).
//!
//! * **Gini** ∈ [0, 1): 0 for a perfectly balanced distribution, →1
//!   when all mass sits in one bucket.
//! * **p-ratio** ∈ (0, 0.5]: the `p` such that the most-loaded `p`
//!   fraction of buckets holds a `(1-p)` fraction of the mass; 0.5 for
//!   balanced, →0 for maximally skewed (Kunegis & Preusse, WebSci'12).

use serde::{Deserialize, Serialize};

/// The eight per-distribution statistics of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    pub mean: f64,
    pub std: f64,
    pub var: f64,
    pub gini: f64,
    pub p_ratio: f64,
    pub min: f64,
    pub max: f64,
    /// Number of buckets holding at least one nonzero.
    pub ne: f64,
}

impl SummaryStats {
    /// Statistics of a dense distribution (every bucket materialized).
    pub fn from_counts(counts: &[usize]) -> SummaryStats {
        Self::from_counts_with(counts, &mut Vec::new())
    }

    /// [`Self::from_counts`] with a caller-owned sort buffer, so
    /// repeated statistics over a corpus avoid per-call allocation.
    pub fn from_counts_with(counts: &[usize], buf: &mut Vec<usize>) -> SummaryStats {
        buf.clear();
        buf.extend(counts.iter().copied().filter(|&v| v > 0));
        buf.sort_unstable();
        let has_empty_bucket = buf.len() < counts.len();
        Self::from_sorted_nonzero(buf, counts.len(), has_empty_bucket)
    }

    /// Statistics of a sparsely-stored distribution: `nonzero` holds
    /// only the non-empty bucket values; `total_buckets` includes the
    /// implicit zeros (used for the T distribution, where K² buckets
    /// would be too many to materialize).
    pub fn from_sparse(nonzero: &[usize], total_buckets: usize) -> SummaryStats {
        Self::from_sparse_with(nonzero, total_buckets, &mut Vec::new())
    }

    /// [`Self::from_sparse`] with a caller-owned sort buffer.
    pub fn from_sparse_with(
        nonzero: &[usize],
        total_buckets: usize,
        buf: &mut Vec<usize>,
    ) -> SummaryStats {
        assert!(
            nonzero.len() <= total_buckets,
            "more non-empty buckets ({}) than buckets ({})",
            nonzero.len(),
            total_buckets
        );
        buf.clear();
        buf.extend(nonzero.iter().copied().filter(|&v| v > 0));
        buf.sort_unstable();
        let has_empty = buf.len() < total_buckets;
        Self::from_sorted_nonzero(buf, total_buckets, has_empty)
    }

    /// Core computation over ascending-sorted non-empty values plus an
    /// implicit block of zero buckets.
    fn from_sorted_nonzero(sorted: &[usize], n_buckets: usize, has_empty: bool) -> SummaryStats {
        if n_buckets == 0 {
            return SummaryStats {
                mean: 0.0,
                std: 0.0,
                var: 0.0,
                gini: 0.0,
                p_ratio: 0.5,
                min: 0.0,
                max: 0.0,
                ne: 0.0,
            };
        }
        let n = n_buckets as f64;
        let total: usize = sorted.iter().sum();
        let mean = total as f64 / n;
        let sum_sq: f64 = sorted.iter().map(|&v| (v as f64) * (v as f64)).sum();
        // var = E[x^2] - mean^2 (zeros contribute 0 to sum_sq).
        let var = (sum_sq / n - mean * mean).max(0.0);
        let std = var.sqrt();
        let min = if has_empty { 0.0 } else { sorted.first().copied().unwrap_or(0) as f64 };
        let max = sorted.last().copied().unwrap_or(0) as f64;
        let ne = sorted.len() as f64;

        // Gini over all buckets: zeros occupy ranks 1..z with value 0,
        // contributing nothing to the weighted sum but inflating n.
        // G = (2 * sum_i i*v_(i)) / (n * total) - (n + 1) / n, ascending.
        let gini = if total == 0 {
            0.0
        } else {
            let z = n_buckets - sorted.len(); // zero buckets, lowest ranks
            let weighted: f64 =
                sorted.iter().enumerate().map(|(i, &v)| (z + i + 1) as f64 * v as f64).sum();
            (2.0 * weighted / (n * total as f64) - (n + 1.0) / n).clamp(0.0, 1.0)
        };

        // p-ratio: walk buckets in descending order; report the first
        // point where the cumulative mass fraction reaches 1 - k/n.
        let p_ratio = if total == 0 {
            0.5
        } else {
            let mut cum = 0usize;
            let mut p = 0.5;
            let mut found = false;
            for (k, &v) in sorted.iter().rev().enumerate() {
                cum += v;
                let frac_buckets = (k + 1) as f64 / n;
                let frac_mass = cum as f64 / total as f64;
                if frac_mass >= 1.0 - frac_buckets {
                    p = frac_buckets.min(0.5);
                    found = true;
                    break;
                }
            }
            if !found {
                // All non-empty buckets exhausted without crossing:
                // remaining buckets are zeros, so the crossing is where
                // frac_mass (=1) meets 1 - k/n — i.e. at ne/n.
                p = (sorted.len() as f64 / n).min(0.5)
            }
            p
        };

        SummaryStats { mean, std, var, gini, p_ratio, min, max, ne }
    }

    /// The statistics as `(name_suffix, value)` pairs, in Table 2 order.
    pub fn named(&self, dist: &str) -> Vec<(String, f64)> {
        vec![
            (format!("mean_{dist}"), self.mean),
            (format!("std_{dist}"), self.std),
            (format!("var_{dist}"), self.var),
            (format!("gini_{dist}"), self.gini),
            (format!("p_{dist}"), self.p_ratio),
            (format!("min_{dist}"), self.min),
            (format!("max_{dist}"), self.max),
            (format!("ne_{dist}"), self.ne),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_distribution_is_balanced() {
        let s = SummaryStats::from_counts(&[5; 100]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.var, 0.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.ne, 100.0);
        assert!(s.gini.abs() < 1e-9, "gini={}", s.gini);
        assert!((s.p_ratio - 0.5).abs() < 0.02, "p={}", s.p_ratio);
    }

    #[test]
    fn single_loaded_bucket_is_maximally_skewed() {
        let mut counts = vec![0usize; 1000];
        counts[17] = 5000;
        let s = SummaryStats::from_counts(&counts);
        assert!(s.gini > 0.99, "gini={}", s.gini);
        assert!(s.p_ratio <= 0.002, "p={}", s.p_ratio);
        assert_eq!(s.ne, 1.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 5000.0);
    }

    #[test]
    fn mean_var_match_manual() {
        let s = SummaryStats::from_counts(&[1, 2, 3, 4]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.var - 1.25).abs() < 1e-12);
        assert!((s.std - 1.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn gini_of_known_distribution() {
        // Values 1,1,2,4: G = sum_i sum_j |xi-xj| / (2 n^2 mean).
        // pairwise abs diffs (ordered pairs): computed = 14 * 2? Let's
        // use the textbook value: mean=2, n=4.
        // sum_{i,j} |xi - xj| with (1,1,2,4): pairs (1,1):0 (1,2):1
        // (1,4):3 (1,2):1 (1,4):3 (2,4):2 -> unordered sum 10, ordered 20.
        // G = 20 / (2 * 16 * 2) = 0.3125.
        let s = SummaryStats::from_counts(&[1, 1, 2, 4]);
        assert!((s.gini - 0.3125).abs() < 1e-9, "gini={}", s.gini);
    }

    #[test]
    fn empty_and_all_zero_distributions() {
        let e = SummaryStats::from_counts(&[]);
        assert_eq!(e.mean, 0.0);
        assert_eq!(e.p_ratio, 0.5);
        let z = SummaryStats::from_counts(&[0, 0, 0]);
        assert_eq!(z.gini, 0.0);
        assert_eq!(z.ne, 0.0);
        assert_eq!(z.max, 0.0);
    }

    #[test]
    fn sparse_matches_dense() {
        let dense = [0usize, 3, 0, 0, 7, 1, 0, 2];
        let a = SummaryStats::from_counts(&dense);
        let b = SummaryStats::from_sparse(&[3, 7, 1, 2], dense.len());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "more non-empty buckets")]
    fn sparse_rejects_overflow() {
        SummaryStats::from_sparse(&[1, 2, 3], 2);
    }

    #[test]
    fn p_ratio_power_law_is_low() {
        // Zipf-ish distribution: bucket k has floor(1000/k) items.
        let counts: Vec<usize> = (1..=1000usize).map(|k| 1000 / k).collect();
        let s = SummaryStats::from_counts(&counts);
        assert!(s.p_ratio < 0.2, "p={}", s.p_ratio);
        assert!(s.gini > 0.6, "gini={}", s.gini);
    }

    #[test]
    fn named_order_and_count() {
        let s = SummaryStats::from_counts(&[1, 2]);
        let named = s.named("R");
        assert_eq!(named.len(), 8);
        assert_eq!(named[0].0, "mean_R");
        assert_eq!(named[7].0, "ne_R");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Gini in [0,1), p-ratio in (0, 0.5], std^2 == var, min <= mean
        /// <= max, ne counts non-empty buckets.
        #[test]
        fn invariants_hold(counts in proptest::collection::vec(0usize..1000, 1..200)) {
            let s = SummaryStats::from_counts(&counts);
            prop_assert!((0.0..1.0).contains(&s.gini), "gini {}", s.gini);
            prop_assert!(s.p_ratio > 0.0 && s.p_ratio <= 0.5, "p {}", s.p_ratio);
            prop_assert!((s.std * s.std - s.var).abs() < 1e-9 * (1.0 + s.var));
            prop_assert!(s.min <= s.mean + 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
            let ne = counts.iter().filter(|&&c| c > 0).count() as f64;
            prop_assert_eq!(s.ne, ne);
        }

        /// Gini matches the O(n^2) mean-absolute-difference definition.
        #[test]
        fn gini_matches_pairwise_definition(
            counts in proptest::collection::vec(0usize..50, 2..40)
        ) {
            let s = SummaryStats::from_counts(&counts);
            let n = counts.len() as f64;
            let total: usize = counts.iter().sum();
            if total > 0 {
                let mut diff = 0.0;
                for &a in &counts {
                    for &b in &counts {
                        diff += (a as f64 - b as f64).abs();
                    }
                }
                let want = diff / (2.0 * n * n * (total as f64 / n));
                prop_assert!((s.gini - want).abs() < 1e-9, "{} vs {}", s.gini, want);
            } else {
                prop_assert_eq!(s.gini, 0.0);
            }
        }

        /// Sparse and dense constructions always agree.
        #[test]
        fn sparse_equals_dense(counts in proptest::collection::vec(0usize..100, 1..100)) {
            let dense = SummaryStats::from_counts(&counts);
            let nonzero: Vec<usize> = counts.iter().copied().filter(|&v| v > 0).collect();
            let sparse = SummaryStats::from_sparse(&nonzero, counts.len());
            prop_assert_eq!(dense, sparse);
        }
    }
}
