//! Shared machinery for the figure/table harness binaries.
//!
//! Every binary reproduces one table or figure of the paper's
//! evaluation (see DESIGN.md's per-experiment index). They share:
//!
//! * [`BenchContext`] — scale/seed/backend resolved from the
//!   environment (`WISE_SCALE`, `WISE_SEED`, `WISE_MEASURED`,
//!   `WISE_RESULTS_DIR`);
//! * disk-cached corpus labels (label generation is the expensive step;
//!   figures share one labeling run);
//! * plain-text renderers (histograms, grids, distribution summaries)
//!   and CSV writers, so each figure produces both a human-readable
//!   report and a machine-readable artifact.

pub mod report;
pub mod sweep;

/// Bumped whenever label semantics change (cost model, generators,
/// catalog); invalidates on-disk label caches.
pub const LABEL_CACHE_VERSION: u32 = 2;

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::path::{Path, PathBuf};
use wise_core::labels::{label_corpus, CorpusLabels};
use wise_features::FeatureConfig;
use wise_gen::{Corpus, CorpusScale};
use wise_kernels::method::{Method, MethodConfig};
use wise_perf::Estimator;

/// Environment-resolved benchmark configuration.
#[derive(Debug, Clone)]
pub struct BenchContext {
    pub scale: CorpusScale,
    pub scale_name: String,
    pub seed: u64,
    pub estimator: Estimator,
    pub feature_config: FeatureConfig,
    pub results_dir: PathBuf,
}

impl BenchContext {
    /// Reads `WISE_SCALE` (`tiny` | `quick` | `paper`; default `quick`),
    /// `WISE_SEED` (default 42), `WISE_MEASURED`, `WISE_RESULTS_DIR`
    /// (default `results/`).
    pub fn from_env() -> BenchContext {
        let scale_name = std::env::var("WISE_SCALE").unwrap_or_else(|_| "quick".to_string());
        let scale = match scale_name.as_str() {
            "tiny" => CorpusScale::tiny(),
            "quick" => CorpusScale::quick(),
            "paper" => CorpusScale::paper(),
            other => panic!("unknown WISE_SCALE '{other}' (tiny|quick|paper)"),
        };
        let seed = std::env::var("WISE_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42);
        let max_rows = 1usize << scale.row_scales.iter().copied().max().unwrap_or(16);
        let estimator = Estimator::from_env(max_rows);
        let results_dir = PathBuf::from(
            std::env::var("WISE_RESULTS_DIR").unwrap_or_else(|_| "results".to_string()),
        );
        std::fs::create_dir_all(&results_dir).expect("create results dir");
        BenchContext {
            scale,
            scale_name,
            seed,
            estimator,
            feature_config: FeatureConfig::default(),
            results_dir,
        }
    }

    fn backend_tag(&self) -> &'static str {
        match self.estimator {
            Estimator::Model { .. } => "model",
            Estimator::Measured { .. } => "measured",
        }
    }

    fn cache_path(&self, what: &str) -> PathBuf {
        // v{N}: bump LABEL_CACHE_VERSION whenever the cost model or the
        // generators change, so stale caches can never leak into figures.
        self.results_dir.join(format!(
            "labels_v{}_{}_{}_{}_s{}.json",
            LABEL_CACHE_VERSION,
            what,
            self.scale_name,
            self.backend_tag(),
            self.seed
        ))
    }

    /// Loads cached labels or computes and caches them.
    fn cached_labels(&self, what: &str, corpus: impl FnOnce() -> Corpus) -> CorpusLabels {
        let path = self.cache_path(what);
        if let Some(labels) = read_json::<CorpusLabels>(&path) {
            report::progress(format_args!("reusing cached labels {}", path.display()));
            return labels;
        }
        report::progress(format_args!(
            "computing {what} corpus labels (cache: {})",
            path.display()
        ));
        let corpus = corpus();
        let t0 = std::time::Instant::now();
        let labels = label_corpus(&corpus, &self.estimator, &self.feature_config);
        report::progress(format_args!(
            "labeled {} matrices in {:.1}s",
            labels.len(),
            t0.elapsed().as_secs_f64()
        ));
        write_json(&path, &labels);
        labels
    }

    /// Labels of the SuiteSparse stand-in corpus (Figs. 2, 3, 4, 7, 12b).
    pub fn suite_labels(&self) -> CorpusLabels {
        self.cached_labels("suite", || Corpus::suite(&self.scale, self.seed))
    }

    /// Labels of the random corpus (Figs. 11, 12a).
    pub fn random_labels(&self) -> CorpusLabels {
        self.cached_labels("random", || Corpus::random(&self.scale, self.seed))
    }

    /// Labels of the full training corpus (Figs. 10, 13, Table 4, §6.4).
    pub fn full_labels(&self) -> CorpusLabels {
        self.cached_labels("full", || Corpus::full(&self.scale, self.seed))
    }

    /// Writes a CSV artifact under the results dir and reports it.
    pub fn write_csv(&self, name: &str, header: &str, rows: &[String]) {
        let path = self.results_dir.join(name);
        let mut body = String::with_capacity(rows.len() * 32 + header.len() + 1);
        body.push_str(header);
        body.push('\n');
        for r in rows {
            body.push_str(r);
            body.push('\n');
        }
        std::fs::write(&path, body).expect("write csv");
        report::artifact(path.display());
    }
}

fn read_json<T: DeserializeOwned>(path: &Path) -> Option<T> {
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

fn write_json<T: Serialize>(path: &Path, value: &T) {
    let json = serde_json::to_string(value).expect("serialize");
    std::fs::write(path, json).expect("write json cache");
}

// ---------------------------------------------------------------------
// Catalog helpers
// ---------------------------------------------------------------------

/// Catalog index of matrix `mi`'s fastest configuration restricted to
/// `method` (every method has at least one catalog entry).
pub fn best_index_of_method(labels: &CorpusLabels, mi: usize, method: Method) -> usize {
    labels
        .catalog
        .iter()
        .enumerate()
        .filter(|(_, c)| c.method == method)
        .min_by(|a, b| {
            labels.matrices[mi].seconds[a.0].total_cmp(&labels.matrices[mi].seconds[b.0])
        })
        .map(|(i, _)| i)
        .expect("every method appears in the catalog")
}

/// The fastest *method* (not configuration) for matrix `mi`.
pub fn fastest_method(labels: &CorpusLabels, mi: usize) -> Method {
    let oracle = labels.matrices[mi].oracle_index();
    labels.catalog[oracle].method
}

/// Best CSR seconds for matrix `mi` (the Fig. 2/3 denominator).
pub fn best_csr_seconds(labels: &CorpusLabels, mi: usize) -> f64 {
    labels.matrices[mi].best_csr_seconds
}

/// Seconds of the MKL stand-in for matrix `mi`.
pub fn mkl_seconds(labels: &CorpusLabels, mi: usize) -> f64 {
    let idx = labels.config_index(&wise_kernels::baseline::mkl_like_config().label());
    labels.matrices[mi].seconds[idx]
}

/// The five vectorized methods of Fig. 2, in the paper's order.
pub const VECTORIZED: [Method; 5] =
    [Method::SellPack, Method::SellCSigma, Method::SellCR, Method::Lav1Seg, Method::Lav];

/// Display name for a method (paper spelling).
pub fn method_name(m: Method) -> &'static str {
    m.name()
}

// ---------------------------------------------------------------------
// Text rendering
// ---------------------------------------------------------------------

/// Renders a labeled horizontal ASCII histogram.
pub fn render_histogram(title: &str, bins: &[(String, usize)]) -> String {
    let max = bins.iter().map(|(_, c)| *c).max().unwrap_or(1).max(1);
    let width = 50usize;
    let mut s = format!("== {title} ==\n");
    for (label, count) in bins {
        let bar = "#".repeat(count * width / max);
        s.push_str(&format!("{label:>16} | {bar} {count}\n"));
    }
    s
}

/// Histogram of `values` over `nbins` equal bins spanning [lo, hi].
pub fn histogram_bins(values: &[f64], lo: f64, hi: f64, nbins: usize) -> Vec<(String, usize)> {
    let mut counts = vec![0usize; nbins];
    let span = (hi - lo).max(1e-12);
    for &v in values {
        let b = (((v - lo) / span) * nbins as f64).floor();
        let b = (b.max(0.0) as usize).min(nbins - 1);
        counts[b] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| {
            let b0 = lo + span * i as f64 / nbins as f64;
            let b1 = lo + span * (i + 1) as f64 / nbins as f64;
            (format!("{b0:.2}-{b1:.2}"), c)
        })
        .collect()
}

/// Renders a (rows x degrees) sweep grid of short cell strings, in the
/// layout of Figs. 5/6 (Y axis: nnz/row descending; X: #rows).
pub fn render_sweep_grid(
    title: &str,
    row_scales: &[u32],
    degrees: &[u32],
    cell: impl Fn(u32, u32) -> String,
) -> String {
    let mut s = format!("== {title} ==\n");
    s.push_str("nnz/row \\ rows |");
    for &rs in row_scales {
        s.push_str(&format!(" 2^{rs:<5}"));
    }
    s.push('\n');
    for &d in degrees.iter().rev() {
        s.push_str(&format!("{d:>14} |"));
        for &rs in row_scales {
            s.push_str(&format!(" {:<6}", cell(rs, d)));
        }
        s.push('\n');
    }
    s
}

/// Five-number summary line for a distribution.
pub fn summarize(label: &str, values: &[f64]) -> String {
    if values.is_empty() {
        return format!("{label}: (empty)");
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let q = |p: f64| v[((v.len() - 1) as f64 * p).round() as usize];
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    format!(
        "{label}: n={} mean={mean:.3} min={:.3} p25={:.3} median={:.3} p75={:.3} max={:.3}",
        v.len(),
        v[0],
        q(0.25),
        q(0.5),
        q(0.75),
        v[v.len() - 1]
    )
}

/// Short code used in sweep grids (Figs. 5/6 legend).
pub fn method_code(m: Method) -> &'static str {
    match m {
        Method::Csr => "o",
        Method::SellPack => "A",
        Method::SellCSigma => "*",
        Method::SellCR => "x",
        Method::Lav1Seg => "+",
        Method::Lav => "v",
    }
}

/// All catalog configs of one method.
pub fn configs_of(labels: &CorpusLabels, method: Method) -> Vec<(usize, MethodConfig)> {
    labels
        .catalog
        .iter()
        .enumerate()
        .filter(|(_, c)| c.method == method)
        .map(|(i, c)| (i, *c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_cover_range() {
        let bins = histogram_bins(&[0.0, 0.49, 0.5, 0.99, 1.0], 0.0, 1.0, 2);
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0].1 + bins[1].1, 5);
        assert_eq!(bins[0].1, 2);
        // Out-of-range values clamp to edge bins.
        let clamped = histogram_bins(&[-5.0, 5.0], 0.0, 1.0, 4);
        assert_eq!(clamped[0].1, 1);
        assert_eq!(clamped[3].1, 1);
    }

    #[test]
    fn render_histogram_shows_counts() {
        let s = render_histogram("t", &[("a".into(), 2), ("b".into(), 4)]);
        assert!(s.contains("a") && s.contains("4"));
    }

    #[test]
    fn summarize_orders_quantiles() {
        let s = summarize("x", &[3.0, 1.0, 2.0]);
        assert!(s.contains("min=1.000"));
        assert!(s.contains("max=3.000"));
        assert!(s.contains("median=2.000"));
    }

    #[test]
    fn sweep_grid_layout() {
        let g = render_sweep_grid("t", &[10, 12], &[4, 8], |rs, d| format!("{rs}{d}"));
        assert!(g.contains("2^10"));
        // Higher degree renders first (top row).
        let pos8 = g.find("108").unwrap();
        let pos4 = g.find("104").unwrap();
        assert!(pos8 < pos4);
    }

    #[test]
    fn method_codes_unique() {
        let codes: std::collections::HashSet<_> =
            Method::ALL.iter().map(|&m| method_code(m)).collect();
        assert_eq!(codes.len(), Method::ALL.len());
    }
}
