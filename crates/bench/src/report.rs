//! Shared progress/artifact reporting and trace-session management for
//! the harness binaries.
//!
//! Every bin starts `main` with
//!
//! ```ignore
//! let _trace = wise_bench::report::init();
//! ```
//!
//! which parses the common `--trace-out <path>` flag (forcing tracing on
//! when present) and, on drop, flushes the recorded events to a Chrome
//! trace + `perf_summary.json` and prints the human-readable run report.
//! Progress lines go through [`progress`] / [`section`] / [`artifact`]
//! so they share one format (and stdout stays reserved for the figure
//! content the bins exist to print).

use std::fmt::Display;
use std::path::PathBuf;
use wise_kernels::timing::Samples;

/// A progress note on stderr: `[wise-bench] {msg}`. Stderr so piping a
/// bin's stdout to a file captures only the figure/table content.
pub fn progress(msg: impl Display) {
    eprintln!("[wise-bench] {msg}");
}

/// A section banner on stdout (used between sub-runs, e.g. by `all`).
pub fn section(title: impl Display) {
    println!("\n=================== {title} ===================");
}

/// Reports a file artifact written by the run.
pub fn artifact(path: impl Display) {
    println!("\n[artifact] {path}");
}

/// Formats a [`Samples`] measurement for artifact/report lines:
/// median, min..p95 spread, *and the summed total* — the honest
/// wall-clock cost of the whole measurement, which median × iters
/// understates whenever the spread is skewed.
pub fn samples_summary(s: &Samples) -> String {
    format!(
        "median={:.2}us min={:.2}us p95={:.2}us total={:.2}ms over {} iters",
        s.median.as_secs_f64() * 1e6,
        s.min.as_secs_f64() * 1e6,
        s.p95.as_secs_f64() * 1e6,
        s.total.as_secs_f64() * 1e3,
        s.iters
    )
}

/// Scans argv for `--trace-out <path>` / `--trace-out=<path>` without
/// disturbing a bin's own flags.
fn trace_out_from_args() -> Option<PathBuf> {
    let mut out = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            out = args.next().map(PathBuf::from);
        } else if let Some(p) = a.strip_prefix("--trace-out=") {
            out = Some(PathBuf::from(p));
        }
    }
    out
}

/// RAII handle for a bin's trace session; created by [`init`], flushes
/// exporters on drop (i.e. at the end of `main`).
pub struct TraceSession {
    trace_out: Option<PathBuf>,
    /// Periodic `metrics_snapshot.json` exporter, live when
    /// `WISE_SNAPSHOT=<path>` is set; stopping it (on drop) writes one
    /// final snapshot.
    snapshot: Option<wise_trace::telemetry::SnapshotHandle>,
}

/// Starts the trace session for a harness binary. `--trace-out <path>`
/// turns tracing on even without `WISE_TRACE=1`; `WISE_TRACE=1` alone
/// still records and prints the run report, just without the JSON
/// artifacts. `WISE_SNAPSHOT=<path>` additionally starts the periodic
/// telemetry snapshot exporter (interval `WISE_SNAPSHOT_SECS`, default
/// 5s), which also writes a final snapshot when the session ends.
pub fn init() -> TraceSession {
    TraceSession::with_path(trace_out_from_args())
}

impl TraceSession {
    /// Builds a session with an explicit output path (bins that manage
    /// their own flags, and the panic-flush test). Tracing is forced on
    /// when a path is given, mirroring [`init`].
    pub fn with_path(trace_out: Option<PathBuf>) -> TraceSession {
        if trace_out.is_some() {
            wise_trace::set_enabled(true);
        }
        let snapshot = wise_trace::telemetry::snapshot_from_env();
        if let Some(s) = &snapshot {
            progress(format_args!("telemetry snapshots -> {}", s.path().display()));
        }
        TraceSession { trace_out, snapshot }
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        // Stop the exporter first so the final snapshot reflects the
        // full run (stopping joins the thread and writes once more).
        if let Some(snapshot) = self.snapshot.take() {
            let path = snapshot.path().to_path_buf();
            snapshot.stop();
            artifact(path.display());
        }
        if !wise_trace::enabled() {
            return;
        }
        let events = wise_trace::take_events();
        if events.is_empty() {
            return;
        }
        if let Some(path) = &self.trace_out {
            match wise_trace::write_trace_files(&events, path) {
                Ok(summary_path) => {
                    artifact(path.display());
                    artifact(summary_path.display());
                }
                Err(e) => progress(format_args!("failed to write trace files: {e}")),
            }
        }
        let summary = wise_trace::Summary::from_events(&events);
        eprint!("{}", wise_trace::run_report(&summary));
        let dropped = wise_trace::dropped_events();
        if dropped > 0 {
            progress(format_args!("trace ring overflowed: {dropped} events dropped"));
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn trace_out_parsing_handles_both_spellings() {
        // Can't inject argv into std::env::args; exercise the strip
        // logic directly instead.
        assert_eq!("--trace-out=/tmp/t.json".strip_prefix("--trace-out="), Some("/tmp/t.json"));
        assert_eq!("--trace-out".strip_prefix("--trace-out="), None);
    }
}
