//! Figure 4: distribution of the fastest SpMV method over the
//! SuiteSparse(-stand-in) corpus.
//!
//! The paper's reading: Sell-c-σ wins most often (66/136), CSR second
//! (34), MKL never — scientific corpora favor padding-minimizing
//! methods over the LAV family.

use wise_bench::*;
use wise_kernels::Method;

fn main() {
    let _trace = wise_bench::report::init();
    let ctx = BenchContext::from_env();
    let labels = ctx.suite_labels();

    let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
    for m in Method::ALL {
        counts.insert(method_name(m), 0);
    }
    for mi in 0..labels.len() {
        *counts.get_mut(method_name(fastest_method(&labels, mi))).unwrap() += 1;
    }
    let bins: Vec<(String, usize)> = counts.iter().map(|(k, v)| (k.to_string(), *v)).collect();
    println!(
        "{}",
        render_histogram(
            &format!("Figure 4: fastest method (suite corpus, {} matrices)", labels.len()),
            &bins
        )
    );
    println!("(paper, real SuiteSparse: Sell-c-s=66, CSR=34, others split the rest, MKL=0)");

    let rows: Vec<String> = bins.iter().map(|(k, v)| format!("{k},{v}")).collect();
    ctx.write_csv("fig4_fastest_method.csv", "method,count", &rows);
}
