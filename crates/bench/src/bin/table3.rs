//! Table 3: RMAT/RGG generator parameters (Section 4.5).

use wise_gen::Recipe;

fn main() {
    let _trace = wise_bench::report::init();
    println!("== Table 3: parameters for the RMAT/RGG matrices ==\n");
    println!("{:<10} {:<6} parameters", "recipe", "abbr");
    for r in Recipe::ALL {
        let params = match r.rmat_params() {
            Some(p) => format!("a={} b={} c={} d={}", p.a, p.b, p.c, p.d),
            None => "r = sqrt(degree / (#rows * pi))".to_string(),
        };
        println!("{:<10} {:<6} {}", format!("{r:?}"), r.abbrev(), params);
    }
}
