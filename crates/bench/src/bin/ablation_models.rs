//! Model ablation (DESIGN.md §6): how WISE's end-to-end speedup changes
//! with (a) the classifier family — the paper's single pruned tree vs a
//! bagged random forest — and (b) the speedup-class granularity — the
//! paper's 7 classes vs a coarse {slowdown, parity, speedup} bucketing.
//!
//! Expectation: forests buy little (the features nearly determine the
//! class, so variance is low), while coarsening classes costs real
//! speedup because the selection heuristic can no longer distinguish a
//! 1.1x from a 2x configuration.

use std::sync::Arc;
use wise_bench::*;
use wise_core::classes::{SpeedupClass, N_CLASSES};
use wise_core::select::select_index;
use wise_ml::grid::{cross_val_confusion_planned, FoldPlan};
use wise_ml::{kfold_indices, Dataset, FeatureMatrix, ForestParams, RandomForest, TreeParams};

/// Maps a 7-class label onto a coarse 3-class scheme:
/// 0 = slowdown (C0), 1 = parity (C1), 2 = any speedup (C2..C6).
fn coarse(c: SpeedupClass) -> u32 {
    match c {
        SpeedupClass::C0 => 0,
        SpeedupClass::C1 => 1,
        _ => 2,
    }
}

/// Representative class used for selection when only the coarse bucket
/// is known: the midpoint of the speedup range (C4).
fn coarse_to_class(b: u32) -> SpeedupClass {
    match b {
        0 => SpeedupClass::C0,
        1 => SpeedupClass::C1,
        _ => SpeedupClass::C4,
    }
}

fn main() {
    let _trace = wise_bench::report::init();
    let ctx = BenchContext::from_env();
    let labels = ctx.full_labels();
    let k = 10.min(labels.len());
    let n_cfg = labels.catalog.len();
    let mkl_index = labels.config_index(&wise_kernels::baseline::mkl_like_config().label());
    // One feature matrix shared by every variant's datasets; one fold
    // plan (split + per-fold presorts) shared by every tree CV run.
    let matrix = Arc::new(FeatureMatrix::from_row_slices(
        labels.matrices.len(),
        labels.matrices.iter().map(|m| m.features.values()),
    ));
    let base_rows: Vec<u32> = (0..matrix.n_rows() as u32).collect();
    let plan = FoldPlan::build(&matrix, &base_rows, k, ctx.seed);

    let end_to_end = |preds_per_cfg: &[Vec<SpeedupClass>]| -> f64 {
        let mut total = 0.0;
        for (mi, ml) in labels.matrices.iter().enumerate() {
            let preds: Vec<SpeedupClass> = (0..n_cfg).map(|ci| preds_per_cfg[ci][mi]).collect();
            let choice = select_index(&labels.catalog, &preds);
            total += ml.seconds[mkl_index] / ml.seconds[choice];
        }
        total / labels.len() as f64
    };

    println!("== Model ablation ({k}-fold CV, {} matrices) ==\n", labels.len());
    let mut results: Vec<(String, f64)> = Vec::new();

    // (a) Single tree, 7 classes — the paper's configuration.
    {
        let mut preds = Vec::with_capacity(n_cfg);
        for ci in 0..n_cfg {
            let y: Vec<u32> = labels.matrices.iter().map(|m| m.classes[ci].index()).collect();
            let ds = Dataset::from_matrix(Arc::clone(&matrix), y, N_CLASSES);
            let (pairs, _) = cross_val_confusion_planned(&plan, &ds, TreeParams::default());
            preds.push(
                pairs.into_iter().map(|(_, p)| SpeedupClass::from_index(p)).collect::<Vec<_>>(),
            );
        }
        results.push(("tree, 7 classes (paper)".into(), end_to_end(&preds)));
    }

    // (b) Random forest, 7 classes.
    {
        let folds = kfold_indices(labels.len(), k, ctx.seed);
        let mut preds = vec![vec![SpeedupClass::C0; labels.len()]; n_cfg];
        #[allow(clippy::needless_range_loop)]
        for ci in 0..n_cfg {
            let y: Vec<u32> = labels.matrices.iter().map(|m| m.classes[ci].index()).collect();
            let ds = Dataset::from_matrix(Arc::clone(&matrix), y, N_CLASSES);
            for (train_idx, test_idx) in &folds {
                let forest = RandomForest::fit(
                    &ds.subset(train_idx),
                    ForestParams { n_trees: 15, ..Default::default() },
                );
                for &i in test_idx {
                    preds[ci][i] = SpeedupClass::from_index(forest.predict(ds.row(i)));
                }
            }
        }
        results.push(("forest(15), 7 classes".into(), end_to_end(&preds)));
    }

    // (c) Single tree, 3 coarse classes.
    {
        let mut preds = vec![vec![SpeedupClass::C0; labels.len()]; n_cfg];
        #[allow(clippy::needless_range_loop)]
        for ci in 0..n_cfg {
            let y: Vec<u32> = labels.matrices.iter().map(|m| coarse(m.classes[ci])).collect();
            let ds = Dataset::from_matrix(Arc::clone(&matrix), y, 3);
            let (pairs, _) = cross_val_confusion_planned(&plan, &ds, TreeParams::default());
            for (i, (_, p)) in pairs.into_iter().enumerate() {
                preds[ci][i] = coarse_to_class(p);
            }
        }
        results.push(("tree, 3 coarse classes".into(), end_to_end(&preds)));
    }

    // Reference points.
    {
        let perfect: Vec<Vec<SpeedupClass>> =
            (0..n_cfg).map(|ci| labels.matrices.iter().map(|m| m.classes[ci]).collect()).collect();
        results.push(("perfect classes (bound)".into(), end_to_end(&perfect)));
        let oracle: f64 = labels
            .matrices
            .iter()
            .map(|ml| ml.seconds[mkl_index] / ml.seconds[ml.oracle_index()])
            .sum::<f64>()
            / labels.len() as f64;
        results.push(("oracle (exact times)".into(), oracle));
    }

    println!("{:<28} {:>14}", "variant", "mean speedup");
    let mut csv = Vec::new();
    for (name, speedup) in &results {
        println!("{name:<28} {speedup:>13.3}x");
        csv.push(format!("{name},{speedup:.4}"));
    }
    ctx.write_csv("ablation_models.csv", "variant,mean_wise_speedup", &csv);
}
