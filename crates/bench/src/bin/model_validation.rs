//! Model-vs-measured validation: runs a probe set of `{matrix, config}`
//! pairs through both the deterministic cost model and host wall-clock
//! measurement, then reports the Spearman rank correlation and the
//! calibrated absolute-scale fit.
//!
//! The claim being validated is the one the figures rest on: the model
//! orders configurations the way real hardware does. (On a single-core
//! host the parallel-scheduling terms are untested — run on a multicore
//! machine for the full check.)

use wise_gen::{suite, RmatParams};
use wise_kernels::method::MethodConfig;
use wise_kernels::sched::default_threads;
use wise_kernels::Schedule;
use wise_perf::calibrate::{calibrate_to_host, spearman};
use wise_perf::MachineModel;

fn main() {
    let _trace = wise_bench::report::init();
    let nthreads = default_threads();
    let matrices = vec![
        ("HS_s13_d16", RmatParams::HIGH_SKEW.generate_shuffled(13, 16, 1)),
        ("LL_s13_d16", RmatParams::LOW_LOC.generate(13, 16, 1)),
        ("HL_s13_d8", RmatParams::HIGH_LOC.generate(13, 8, 1)),
        ("stencil2d_90", suite::stencil_2d(90, 90)),
        ("banded_8k", suite::banded(8192, 16, 0.7, 3)),
    ];
    let configs = vec![
        MethodConfig::csr(Schedule::StCont),
        MethodConfig::csr(Schedule::Dyn),
        MethodConfig::sellpack(8, Schedule::StCont),
        MethodConfig::sell_c_sigma(8, 4096, Schedule::StCont),
        MethodConfig::sell_c_r(8),
        MethodConfig::lav_1seg(8),
        MethodConfig::lav(8, 0.8),
    ];
    // Model the HOST, not the paper's server: same thread count.
    let mut machine = MachineModel::scaled_for_rows(1 << 13);
    machine.threads = nthreads;

    let probes: Vec<(&wise_matrix::Csr, MethodConfig)> =
        matrices.iter().flat_map(|(_, m)| configs.iter().map(move |c| (m, *c))).collect();
    println!(
        "validating the cost model against wall clock: {} probes on {} thread(s)\n",
        probes.len(),
        nthreads
    );
    let (calibrated, report) = calibrate_to_host(&machine, &probes, nthreads, 7);

    let modeled: Vec<f64> = report.probes.iter().map(|&(m, _)| m).collect();
    let measured: Vec<f64> = report.probes.iter().map(|&(_, t)| t).collect();
    let rho = spearman(&modeled, &measured);

    println!("{:<14} {:<26} {:>12} {:>12}", "matrix", "config", "modeled*a", "measured");
    for ((mi, cfg), &(mo, me)) in
        matrices.iter().flat_map(|(n, _)| configs.iter().map(move |c| (n, c))).zip(&report.probes)
    {
        println!("{:<14} {:<26} {:>11.3e}s {:>11.3e}s", mi, cfg.label(), mo * report.alpha, me);
    }
    println!("\nSpearman rank correlation (model vs measured): {rho:.3}");
    println!(
        "time-scale fit alpha = {:.3e}, rms relative error after scaling = {:.2}",
        report.alpha, report.rms_rel_error
    );
    println!("calibrated machine: {}", calibrated.name);
}
