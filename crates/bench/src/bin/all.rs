//! Runs every figure/table harness in sequence (labels are computed
//! once and shared through the on-disk cache), capturing each report
//! under the results directory.

use std::process::Command;

const TARGETS: [&str; 14] = [
    "table1", "table2", "table3", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig10", "fig11",
    "fig12", "fig13", "ie",
];

fn main() {
    let _trace = wise_bench::report::init();
    // table4 is far more expensive (24 full CV evaluations); include it
    // only when asked.
    let with_table4 = std::env::args().any(|a| a == "--with-table4");
    let exe_dir =
        std::env::current_exe().expect("current exe").parent().expect("exe dir").to_path_buf();
    let results_dir = std::env::var("WISE_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    std::fs::create_dir_all(&results_dir).expect("results dir");

    let mut targets: Vec<&str> = TARGETS.to_vec();
    if with_table4 {
        targets.push("table4");
    }
    for t in targets {
        wise_bench::report::section(t);
        let out = Command::new(exe_dir.join(t)).output().unwrap_or_else(|e| {
            panic!("failed to run {t}: {e}; build with `cargo build --release -p wise-bench --bins` first")
        });
        let stdout = String::from_utf8_lossy(&out.stdout);
        let stderr = String::from_utf8_lossy(&out.stderr);
        print!("{stdout}");
        if !out.status.success() {
            eprintln!("{stderr}");
            panic!("{t} failed with {}", out.status);
        }
        std::fs::write(format!("{results_dir}/{t}.txt"), stdout.as_bytes()).expect("write report");
    }
    wise_bench::report::progress(format_args!("all reports written under {results_dir}/"));
}
