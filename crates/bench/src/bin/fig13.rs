//! Figure 13 / Section 6.3: distribution of (a) WISE's speedup over the
//! MKL baseline, (b) the oracle's speedup, and (c) WISE's preprocessing
//! overhead in MKL SpMV iterations. All selections are out-of-fold
//! (10-fold CV).
//!
//! The paper's reading: WISE averages 2.4x vs the oracle's 2.5x, with
//! 8.33 MKL iterations of preprocessing.

use wise_bench::*;
use wise_core::evaluate::evaluate_cv;
use wise_ml::TreeParams;

fn main() {
    let _trace = wise_bench::report::init();
    let ctx = BenchContext::from_env();
    let labels = ctx.full_labels();
    let k = 10.min(labels.len());
    let ev = evaluate_cv(&labels, TreeParams::default(), k, ctx.seed);

    let wise: Vec<f64> = ev.outcomes.iter().map(|o| o.wise_speedup_over_mkl()).collect();
    let oracle: Vec<f64> = ev.outcomes.iter().map(|o| o.oracle_speedup_over_mkl()).collect();
    let overhead: Vec<f64> = ev.outcomes.iter().map(|o| o.wise_overhead_mkl_iters()).collect();

    let hi = oracle.iter().fold(1.0f64, |a, &b| a.max(b)).ceil().max(4.0);
    println!(
        "{}",
        render_histogram(
            &format!("Figure 13a: WISE speedup over MKL ({} matrices)", ev.outcomes.len()),
            &histogram_bins(&wise, 0.0, hi, 16)
        )
    );
    println!(
        "{}",
        render_histogram(
            "Figure 13b: oracle speedup over MKL",
            &histogram_bins(&oracle, 0.0, hi, 16)
        )
    );
    let oh_hi = overhead.iter().fold(1.0f64, |a, &b| a.max(b)).ceil().max(10.0);
    println!(
        "{}",
        render_histogram(
            "Figure 13c: WISE preprocessing overhead (MKL iterations)",
            &histogram_bins(&overhead, 0.0, oh_hi, 10)
        )
    );

    println!("{}", summarize("WISE speedup   ", &wise));
    println!("{}", summarize("oracle speedup ", &oracle));
    println!("{}", summarize("overhead (iters)", &overhead));
    println!(
        "\nmeans: WISE {:.2}x | oracle {:.2}x | overhead {:.2} MKL iters",
        ev.mean_wise_speedup(),
        ev.mean_oracle_speedup(),
        ev.mean_wise_overhead_iters()
    );
    println!("(paper: WISE 2.4x, oracle 2.5x, overhead 8.33 iters)");

    let rows: Vec<String> = ev
        .outcomes
        .iter()
        .map(|o| {
            format!(
                "{},{:.4},{:.4},{:.4},{},{}",
                o.name,
                o.wise_speedup_over_mkl(),
                o.oracle_speedup_over_mkl(),
                o.wise_overhead_mkl_iters(),
                labels.catalog[o.wise_index].label(),
                labels.catalog[o.oracle_index].label()
            )
        })
        .collect();
    ctx.write_csv(
        "fig13_speedups.csv",
        "matrix,wise_speedup,oracle_speedup,overhead_iters,wise_choice,oracle_choice",
        &rows,
    );
}
