//! Figure 5: effect of nonzero *skew* — fastest method and its speedup
//! over best CSR, across a (#rows x nnz/row) sweep of LowSkew and
//! HighSkew RMAT matrices.
//!
//! The paper's reading: the LAV family and Sell-c-R dominate; LAV wins
//! when the matrix outgrows the LLC and rows are dense; LAV-1Seg when a
//! single segment suffices; Sell-c-R for small/low-skew matrices whose
//! input vector fits in the LLC.

use wise_bench::sweep::print_sweep_figure;

fn main() {
    let _trace = wise_bench::report::init();
    print_sweep_figure(
        "Figure 5",
        &[wise_gen::Recipe::LowSkew, wise_gen::Recipe::HighSkew],
        "fig5",
    );
}
