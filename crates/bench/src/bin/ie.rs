//! Section 6.4: comparison to the (stand-in) MKL inspector-executor.
//!
//! The IE trial-executes every configuration with cold caches and keeps
//! the best; its preprocessing charges every conversion + every trial.
//! The paper's reading: IE reaches 2.11x over the MKL baseline (vs
//! WISE's 2.4x, i.e. WISE is ~1.14x faster) while IE's preprocessing
//! (17.43 MKL iterations) is more than double WISE's (8.33).

use wise_bench::*;
use wise_core::evaluate::evaluate_cv;
use wise_ml::TreeParams;

fn main() {
    let _trace = wise_bench::report::init();
    let ctx = BenchContext::from_env();
    let labels = ctx.full_labels();
    let k = 10.min(labels.len());
    let ev = evaluate_cv(&labels, TreeParams::default(), k, ctx.seed);

    let ie: Vec<f64> = ev.outcomes.iter().map(|o| o.ie_speedup_over_mkl()).collect();
    let wise: Vec<f64> = ev.outcomes.iter().map(|o| o.wise_speedup_over_mkl()).collect();
    let ie_oh: Vec<f64> = ev.outcomes.iter().map(|o| o.ie_overhead_mkl_iters()).collect();
    let wise_oh: Vec<f64> = ev.outcomes.iter().map(|o| o.wise_overhead_mkl_iters()).collect();

    println!("== Section 6.4: WISE vs inspector-executor ({} matrices) ==\n", ev.outcomes.len());
    println!("{}", summarize("IE speedup over MKL  ", &ie));
    println!("{}", summarize("WISE speedup over MKL", &wise));
    println!("{}", summarize("IE overhead (iters)  ", &ie_oh));
    println!("{}", summarize("WISE overhead (iters)", &wise_oh));
    println!(
        "\nmeans: IE {:.2}x | WISE {:.2}x | WISE/IE speedup ratio {:.2}x",
        ev.mean_ie_speedup(),
        ev.mean_wise_speedup(),
        ev.mean_wise_speedup() / ev.mean_ie_speedup()
    );
    println!(
        "preprocessing: IE {:.2} vs WISE {:.2} MKL iterations (WISE = {:.0}% of IE)",
        ev.mean_ie_overhead_iters(),
        ev.mean_wise_overhead_iters(),
        100.0 * ev.mean_wise_overhead_iters() / ev.mean_ie_overhead_iters()
    );
    println!("(paper: IE 2.11x, WISE/IE 1.14x, WISE overhead < 50% of IE's 17.43 iters)");

    let rows: Vec<String> = ev
        .outcomes
        .iter()
        .map(|o| {
            format!(
                "{},{:.4},{:.4},{:.4},{:.4}",
                o.name,
                o.ie_speedup_over_mkl(),
                o.wise_speedup_over_mkl(),
                o.ie_overhead_mkl_iters(),
                o.wise_overhead_mkl_iters()
            )
        })
        .collect();
    ctx.write_csv(
        "sec64_inspector_executor.csv",
        "matrix,ie_speedup,wise_speedup,ie_overhead_iters,wise_overhead_iters",
        &rows,
    );
}
