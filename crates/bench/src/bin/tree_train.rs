//! Tree-training microbenchmark: the presorted columnar engine
//! (`DecisionTree::fit`, and `fit_with` over a shared [`Presort`])
//! against the exact reference trainer (`DecisionTree::fit_reference`),
//! on the shapes WISE actually trains — ~1000x80 (the parity-suite
//! scale) and 1500x67 (the registry corpus shape, 7 classes).
//!
//! The synthetic data mirrors the real workload: mostly-continuous
//! feature columns with a handful of quantized (duplicate-heavy) ones,
//! and labels that are *learnable* from a few feature thresholds with
//! ~8% noise — the regime WISE's ~90%-accurate format classes live in.
//!
//! Also checks, per shape, that both trainers produce bit-identical
//! trees before trusting the timings. `WISE_TREE_QUICK=1` (the CI smoke
//! mode) runs one small shape with one repetition; pass `--trace-out
//! <path>` to capture the `ml.fit` / `train.presort` / `train.split`
//! spans for `check_trace`.

use std::time::Instant;
use wise_bench::*;
use wise_ml::{Dataset, DecisionTree, Presort, TreeParams};

/// xorshift64* step for the generator below.
fn next(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(2685821657736338717)
}

/// Deterministic WISE-like dataset: continuous features (every 8th
/// column quantized to 97 levels so split-boundary handling over
/// duplicates is exercised too), labels decided by feature thresholds
/// with a deterministic ~8% noise flip.
fn synthetic_dataset(n: usize, f: usize, classes: u32, seed: u64) -> Dataset {
    let mut state = seed.wrapping_mul(2685821657736338717).wrapping_add(1442695040888963407) | 1;
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            (0..f)
                .map(|j| {
                    let u = next(&mut state);
                    if j % 8 == 0 {
                        (u % 97) as f64 / 97.0
                    } else {
                        (u >> 11) as f64 / (1u64 << 53) as f64
                    }
                })
                .collect()
        })
        .collect();
    let labels: Vec<u32> = rows
        .iter()
        .map(|r| {
            let mut c = 0u64;
            if r[1] > 0.5 {
                c += 1;
            }
            if r[3] > 0.3 {
                c += 2;
            }
            if r[7] > 0.66 {
                c += 1;
            }
            if next(&mut state) % 100 < 8 {
                c += 1 + next(&mut state) % (classes as u64 - 1);
            }
            (c % classes as u64) as u32
        })
        .collect();
    Dataset::new(rows, labels, classes as usize)
}

fn time_fits(reps: usize, mut fit: impl FnMut() -> DecisionTree) -> (f64, DecisionTree) {
    let tree = fit(); // warm-up, also the parity witness
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(fit());
    }
    (t0.elapsed().as_secs_f64() / reps as f64, tree)
}

fn main() {
    let _trace = wise_bench::report::init();
    let ctx = BenchContext::from_env();
    let quick = std::env::var("WISE_TREE_QUICK").map(|v| v == "1").unwrap_or(false);
    let reps = if quick { 1 } else { 10 };
    let shapes: &[(usize, usize, u32)] =
        if quick { &[(200, 20, 4)] } else { &[(1000, 80, 4), (1500, 67, 7)] };
    let params = TreeParams::default();

    println!("== tree training: presorted columnar engine vs reference trainer ==");
    println!("(reps per timing: {reps}; parity asserted per shape)\n");
    println!(
        "{:>10} {:>12} {:>12} {:>8} {:>14} {:>8}",
        "shape", "reference", "presorted", "speedup", "shared-presort", "speedup"
    );
    let mut rows = Vec::new();
    for &(n, f, classes) in shapes {
        let ds = synthetic_dataset(n, f, classes, ctx.seed);
        let (t_ref, tree_ref) = time_fits(reps, || DecisionTree::fit_reference(&ds, params));
        let (t_new, tree_new) = time_fits(reps, || DecisionTree::fit(&ds, params));
        // The registry / Table 4 path: one presort shared by many fits.
        let presort = Presort::for_dataset(&ds);
        let (t_shared, tree_shared) =
            time_fits(reps, || DecisionTree::fit_with(&ds, &presort, params));
        for (tree, what) in [(&tree_new, "fit"), (&tree_shared, "fit_with")] {
            assert_eq!(
                serde_json::to_string(&tree_ref).unwrap(),
                serde_json::to_string(tree).unwrap(),
                "engine ({what}) and reference disagree on {n}x{f}"
            );
        }
        let (speedup, speedup_shared) = (t_ref / t_new, t_ref / t_shared);
        println!(
            "{:>10} {:>10.2}ms {:>10.2}ms {:>7.2}x {:>12.2}ms {:>7.2}x",
            format!("{n}x{f}"),
            t_ref * 1e3,
            t_new * 1e3,
            speedup,
            t_shared * 1e3,
            speedup_shared
        );
        rows.push(format!(
            "{n},{f},{classes},{:.6},{:.6},{speedup:.3},{:.6},{speedup_shared:.3}",
            t_ref * 1e3,
            t_new * 1e3,
            t_shared * 1e3
        ));
    }
    println!("\n(trees verified bit-identical before timing; see tests/tree_parity.rs)");
    ctx.write_csv(
        "tree_train.csv",
        "n_samples,n_features,n_classes,reference_ms,presorted_ms,speedup,shared_presort_ms,shared_speedup",
        &rows,
    );
}
