//! Feature-group ablation (DESIGN.md §6): how much of WISE's end-to-end
//! speedup survives with only size features, size+skew, size+locality,
//! or the full Table 2 set — testing the paper's claim that skew *and*
//! locality features both matter.

use std::sync::Arc;
use wise_bench::*;
use wise_core::classes::N_CLASSES;
use wise_core::select::select_index;
use wise_features::FeatureVector;
use wise_ml::grid::{cross_val_confusion_planned, FoldPlan};
use wise_ml::{Dataset, FeatureMatrix, TreeParams};

/// Returns the feature indices of one named group.
fn group_indices(group: &str) -> Vec<usize> {
    let names = FeatureVector::names();
    let is_size = |n: &str| matches!(n, "n_rows" | "n_cols" | "nnz");
    let is_skew = |n: &str| {
        n.ends_with("_R") && !n.ends_with("uniqR") || n.ends_with("_C") && !n.ends_with("uniqC")
    };
    names
        .iter()
        .enumerate()
        .filter(|(_, n)| match group {
            "size" => is_size(n),
            "skew" => is_skew(n),
            "locality" => !is_size(n) && !is_skew(n),
            "full" => true,
            _ => panic!("unknown group {group}"),
        })
        .map(|(i, _)| i)
        .collect()
}

fn main() {
    let _trace = wise_bench::report::init();
    let ctx = BenchContext::from_env();
    let labels = ctx.full_labels();
    let k = 10.min(labels.len());
    let params = TreeParams::default();

    let variants: [(&str, Vec<usize>); 4] = [
        ("size-only", group_indices("size")),
        ("size+skew", {
            let mut v = group_indices("size");
            v.extend(group_indices("skew"));
            v
        }),
        ("size+locality", {
            let mut v = group_indices("size");
            v.extend(group_indices("locality"));
            v
        }),
        ("full (paper)", group_indices("full")),
    ];

    println!(
        "== Ablation: feature groups vs end-to-end WISE speedup ({k}-fold CV, {} matrices) ==\n",
        labels.len()
    );
    println!("{:<14} {:>9} {:>10} {:>12}", "features", "#features", "mean acc", "mean speedup");

    let mkl_index = labels.config_index(&wise_kernels::baseline::mkl_like_config().label());
    let mut rows = Vec::new();
    for (name, idxs) in &variants {
        // One subset matrix per variant; the 29 per-config datasets are
        // label views over it and share one fold plan (presorts built
        // once per fold, not per configuration).
        let subset_rows: Vec<Vec<f64>> = labels
            .matrices
            .iter()
            .map(|m| idxs.iter().map(|&i| m.features.values()[i]).collect())
            .collect();
        let matrix = Arc::new(FeatureMatrix::from_rows(subset_rows));
        let base_rows: Vec<u32> = (0..matrix.n_rows() as u32).collect();
        let plan = FoldPlan::build(&matrix, &base_rows, k, ctx.seed);
        let mut acc_sum = 0.0;
        let mut preds_per_cfg: Vec<Vec<u32>> = Vec::with_capacity(labels.catalog.len());
        for cfg_idx in 0..labels.catalog.len() {
            let y: Vec<u32> = labels.matrices.iter().map(|m| m.classes[cfg_idx].index()).collect();
            let ds = Dataset::from_matrix(Arc::clone(&matrix), y, N_CLASSES);
            let (pairs, cm) = cross_val_confusion_planned(&plan, &ds, params);
            acc_sum += cm.accuracy();
            preds_per_cfg.push(pairs.into_iter().map(|(_, p)| p).collect());
        }
        let mean_acc = acc_sum / labels.catalog.len() as f64;

        // End-to-end speedup with these predictions.
        let mut speedups = Vec::with_capacity(labels.len());
        for (mi, ml) in labels.matrices.iter().enumerate() {
            let preds: Vec<_> = (0..labels.catalog.len())
                .map(|ci| wise_core::SpeedupClass::from_index(preds_per_cfg[ci][mi]))
                .collect();
            let choice = select_index(&labels.catalog, &preds);
            speedups.push(ml.seconds[mkl_index] / ml.seconds[choice]);
        }
        let mean_speedup = speedups.iter().sum::<f64>() / speedups.len() as f64;
        println!(
            "{:<14} {:>9} {:>9.1}% {:>11.2}x",
            name,
            idxs.len(),
            100.0 * mean_acc,
            mean_speedup
        );
        rows.push(format!("{name},{},{mean_acc:.4},{mean_speedup:.4}", idxs.len()));
    }
    println!("\nExpectation: accuracy and speedup improve monotonically toward the full set.");
    ctx.write_csv("ablation_features.csv", "variant,n_features,mean_accuracy,mean_speedup", &rows);
}
