//! SpMV executor microbenchmark: persistent worker pool vs. per-call
//! thread spawning.
//!
//! Two measurements, both across schedules and thread counts:
//!
//! 1. **Dispatch overhead** — `parallel_for_chunks` with a near-empty
//!    body isolates what one parallel call costs before any useful
//!    work: pool = condvar handoff, spawn = OS thread creation + join.
//!    This is the per-label tax the WISE ground-truth pipeline pays 29
//!    configurations × `measure_median` iterations × corpus size times.
//! 2. **Small/medium-matrix SpMV** — full `Prepared::spmv` calls on
//!    RMAT matrices where kernels run in the microsecond range, i.e.
//!    where dispatch overhead actually distorts labels.
//!
//! Pool and spawn results are asserted bit-identical before timings are
//! trusted (the exhaustive version lives in the `pool_parity` suite).
//! `WISE_EXEC_QUICK=1` is the CI smoke mode; pass `--trace-out <path>`
//! to capture `pool.dispatch` / `pool.jobs` / `kernel.spmv` for
//! `check_trace`.

use std::time::Duration;
use wise_bench::*;
use wise_gen::RmatParams;
use wise_kernels::sched::{parallel_for_chunks_with, set_executor};
use wise_kernels::srvpack::SpmvWorkspace;
use wise_kernels::timing::measure_median;
use wise_kernels::{Executor, MethodConfig, Schedule};

fn main() {
    let _trace = wise_bench::report::init();
    let ctx = BenchContext::from_env();
    let quick = std::env::var("WISE_EXEC_QUICK").map(|v| v == "1").unwrap_or(false);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let isa = wise_kernels::simd::active();
    println!("== SpMV executor: persistent pool vs per-call spawn ==");
    println!(
        "(host cores: {cores}; simd: {} x{}; pmu: {}; dispatch times are per \
         parallel_for_chunks call)\n",
        isa.name(),
        isa.lanes(),
        wise_trace::pmu::status_label()
    );

    let mut rows: Vec<String> = Vec::new();
    // Honest wall-clock accounting: every `Samples.total` measured by
    // this bin, summed per section and reported at the end.
    let mut measured: [Duration; 2] = [Duration::ZERO; 2];

    // ---- 1. Dispatch-path overhead (near-empty body) ----------------
    let thread_counts: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8, 16] };
    let iters = if quick { 300 } else { 3000 };
    println!("-- dispatch overhead, ns/call (empty body, nchunks = 4 x threads, grain 1) --");
    println!("{:>8} {:>8} {:>12} {:>12} {:>9}", "sched", "threads", "spawn", "pool", "ratio");
    for &nthreads in thread_counts {
        for sched in Schedule::ALL {
            let nchunks = nthreads * 4;
            let mut per_exec = [0f64; 2];
            for (slot, exec) in [Executor::Spawn, Executor::Pool].into_iter().enumerate() {
                let s = measure_median(
                    || {
                        parallel_for_chunks_with(exec, nchunks, nthreads, sched, 1, |i| {
                            std::hint::black_box(i);
                        });
                    },
                    iters / 10,
                    iters,
                );
                per_exec[slot] = s.median.as_nanos() as f64;
                measured[0] += s.total;
                if exec == Executor::Pool {
                    report::progress(format_args!(
                        "dispatch {}/t{nthreads} pool: {}",
                        sched.name(),
                        report::samples_summary(&s)
                    ));
                }
            }
            let [spawn_ns, pool_ns] = per_exec;
            println!(
                "{:>8} {:>8} {:>10.0}ns {:>10.0}ns {:>8.1}x",
                sched.name(),
                nthreads,
                spawn_ns,
                pool_ns,
                spawn_ns / pool_ns.max(1.0)
            );
            rows.push(format!(
                "dispatch,{},{nthreads},,{spawn_ns:.0},{pool_ns:.0},{:.3}",
                sched.name(),
                spawn_ns / pool_ns.max(1.0)
            ));
        }
    }

    // ---- 2. Small/medium-matrix SpMV --------------------------------
    let shapes: &[(u32, u32)] = if quick { &[(8, 8)] } else { &[(8, 8), (10, 8), (12, 8)] };
    let spmv_threads: &[usize] = if quick { &[2] } else { &[1, 2, 4] };
    let configs = [
        MethodConfig::csr(Schedule::Dyn),
        MethodConfig::csr(Schedule::St),
        MethodConfig::csr(Schedule::StCont),
        MethodConfig::sellpack(8, Schedule::Dyn),
        MethodConfig::lav(8, 0.8),
    ];
    let spmv_iters = if quick { 30 } else { 200 };
    println!("\n-- SpMV medians, us/call (RMAT, nnz/row ~8) --");
    println!(
        "{:>8} {:>26} {:>8} {:>12} {:>12} {:>9}",
        "rows", "config", "threads", "spawn", "pool", "speedup"
    );
    for &(scale, deg) in shapes {
        let m = RmatParams::MED_SKEW.generate(scale, deg, ctx.seed);
        let x: Vec<f64> = (0..m.ncols()).map(|i| (i as f64).sin()).collect();
        for cfg in configs {
            let prep = cfg.prepare(&m);
            for &nthreads in spmv_threads {
                let mut per_exec = [0f64; 2];
                let mut outputs: Vec<Vec<f64>> = Vec::new();
                for (slot, exec) in [Executor::Spawn, Executor::Pool].into_iter().enumerate() {
                    set_executor(exec);
                    let mut y = vec![0.0; m.nrows()];
                    let mut ws = SpmvWorkspace::default();
                    let s = measure_median(
                        || prep.spmv(&x, &mut y, nthreads, &mut ws),
                        spmv_iters / 10,
                        spmv_iters,
                    );
                    per_exec[slot] = s.median.as_secs_f64() * 1e6;
                    measured[1] += s.total;
                    if exec == Executor::Pool {
                        report::progress(format_args!(
                            "spmv {}/t{nthreads} pool: {}",
                            cfg.label(),
                            report::samples_summary(&s)
                        ));
                    }
                    outputs.push(y);
                }
                set_executor(Executor::Pool);
                assert!(
                    outputs[0].iter().zip(&outputs[1]).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "executors disagree on {} ({} rows)",
                    cfg.label(),
                    m.nrows()
                );
                let [spawn_us, pool_us] = per_exec;
                println!(
                    "{:>8} {:>26} {:>8} {:>10.2}us {:>10.2}us {:>8.2}x",
                    m.nrows(),
                    cfg.label(),
                    nthreads,
                    spawn_us,
                    pool_us,
                    spawn_us / pool_us.max(1e-9)
                );
                rows.push(format!(
                    "spmv,{},{nthreads},{},{spawn_us:.3},{pool_us:.3},{:.3}",
                    cfg.label(),
                    m.nrows(),
                    spawn_us / pool_us.max(1e-9)
                ));
            }
        }
    }
    println!("\n(outputs verified bit-identical per cell; see tests/pool_parity.rs)");
    println!(
        "(total measured wall-clock: dispatch {:.1}ms, spmv {:.1}ms)",
        measured[0].as_secs_f64() * 1e3,
        measured[1].as_secs_f64() * 1e3
    );
    ctx.write_csv("spmv_exec.csv", "kind,config,threads,rows,spawn,pool,speedup", &rows);
}
