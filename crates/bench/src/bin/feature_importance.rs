//! Which Table 2 features do the trained models actually use?
//!
//! Trains the full registry (paper hyperparameters) on the corpus and
//! reports, per representative model and aggregated over all 29, the
//! features with the highest importance (normalized training-error
//! decrease). The paper's qualitative claims to check: the *skew*
//! statistics of R/C should drive scheduling- and padding-sensitive
//! models (CSR, SELLPACK, Sell-c-σ), while *locality* metrics should
//! drive the LAV family.

use wise_bench::*;
use wise_core::ModelRegistry;
use wise_features::FeatureVector;
use wise_ml::TreeParams;

fn top_features(importances: &[f64], k: usize) -> Vec<(String, f64)> {
    let names = FeatureVector::names();
    let mut idx: Vec<usize> = (0..importances.len()).collect();
    idx.sort_by(|&a, &b| importances[b].total_cmp(&importances[a]));
    idx.iter()
        .take(k)
        .filter(|&&i| importances[i] > 0.0)
        .map(|&i| (names[i].clone(), importances[i]))
        .collect()
}

fn main() {
    let _trace = wise_bench::report::init();
    let ctx = BenchContext::from_env();
    let labels = ctx.full_labels();
    let registry = ModelRegistry::train(&labels, TreeParams::default());

    let representative = [
        "CSR-Dyn",
        "SELLPACK-c8-StCont",
        "Sell-c-s-c8-s4096-StCont",
        "Sell-c-R-c8",
        "LAV-1Seg-c8",
        "LAV-c8-T80",
    ];
    println!("== Feature importances (trained on {} matrices) ==\n", labels.len());
    for label in representative {
        let i = labels.config_index(label);
        let imp = registry.tree(i).feature_importances();
        let top = top_features(&imp, 5);
        println!("-- {label} --");
        for (name, v) in top {
            println!("   {name:<18} {:.1}%", v * 100.0);
        }
        println!();
    }

    // Aggregate across all 29 models.
    let mut agg = vec![0.0f64; FeatureVector::names().len()];
    for i in 0..labels.catalog.len() {
        for (a, v) in agg.iter_mut().zip(registry.tree(i).feature_importances()) {
            *a += v;
        }
    }
    for v in agg.iter_mut() {
        *v /= labels.catalog.len() as f64;
    }
    println!("== Aggregate over all 29 models: top 12 features ==");
    let mut rows = Vec::new();
    for (name, v) in top_features(&agg, 12) {
        println!("   {name:<18} {:.1}%", v * 100.0);
        rows.push(format!("{name},{v:.5}"));
    }
    ctx.write_csv("feature_importance.csv", "feature,mean_importance", &rows);
}
