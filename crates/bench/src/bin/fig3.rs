//! Figure 3: CSR with Dyn / St / StCont scheduling and MKL, normalized
//! to the best CSR schedule per matrix (suite corpus).
//!
//! The paper's reading: the scheduling choice alone can cost up to 10x;
//! Dyn wins on web/social (skewed) matrices, St/StCont on scientific
//! ones.

use wise_bench::*;
use wise_kernels::method::MethodConfig;
use wise_kernels::Schedule;

fn main() {
    let _trace = wise_bench::report::init();
    let ctx = BenchContext::from_env();
    let labels = ctx.suite_labels();

    let idx_of = |s: Schedule| labels.config_index(&MethodConfig::csr(s).label());
    let scheds = [
        ("CSR-Dyn", idx_of(Schedule::Dyn)),
        ("CSR-St", idx_of(Schedule::St)),
        ("CSR-StCont", idx_of(Schedule::StCont)),
    ];

    println!(
        "== Figure 3: CSR scheduling (+MKL) vs best CSR (suite corpus, {} matrices) ==\n",
        labels.len()
    );

    let mut best_counts = [0usize; 3];
    let mut rows = Vec::new();
    let mut per_sched: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for (mi, ml) in labels.matrices.iter().enumerate() {
        let best = best_csr_seconds(&labels, mi);
        let rel: Vec<f64> = scheds.iter().map(|&(_, i)| best / ml.seconds[i]).collect();
        let winner =
            rel.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap();
        best_counts[winner] += 1;
        let mkl = best / mkl_seconds(&labels, mi);
        for (k, &r) in rel.iter().enumerate() {
            per_sched[k].push(r);
        }
        per_sched[3].push(mkl);
        rows.push(format!("{},{:.4},{:.4},{:.4},{:.4}", ml.name, rel[0], rel[1], rel[2], mkl));
    }

    for (k, (name, _)) in scheds.iter().enumerate() {
        println!("{}", summarize(&format!("{name:<11}"), &per_sched[k]));
    }
    println!("{}", summarize("MKL        ", &per_sched[3]));
    println!(
        "\nfastest schedule counts: Dyn={} St={} StCont={}",
        best_counts[0], best_counts[1], best_counts[2]
    );
    println!("(paper, real SuiteSparse: Dyn=28 St=16 StCont=92)");

    ctx.write_csv("fig3_scheduling.csv", "matrix,dyn,st,stcont,mkl", &rows);
}
