//! Figure 2: speedup of each vectorized SpMV method and MKL over the
//! best-scheduled CSR, per SuiteSparse(-stand-in) matrix, grouped by
//! the matrix's fastest method.
//!
//! The paper's reading: every method's speedup varies widely even among
//! matrices it wins on (e.g. SELLPACK 1.05–1.31x, Sell-c-σ 1.00–1.76x),
//! which is why WISE predicts the *magnitude* of speedups, not just the
//! winner.

use wise_bench::*;

fn main() {
    let _trace = wise_bench::report::init();
    let ctx = BenchContext::from_env();
    let labels = ctx.suite_labels();

    // Group matrices by fastest method (catalog oracle).
    let mut rows: Vec<String> = Vec::new();
    let mut per_winner: std::collections::BTreeMap<&str, Vec<usize>> = Default::default();
    for mi in 0..labels.len() {
        per_winner.entry(method_name(fastest_method(&labels, mi))).or_default().push(mi);
    }

    println!(
        "== Figure 2: vectorized-method speedup over best CSR (suite corpus, {} matrices) ==",
        labels.len()
    );
    println!(
        "   matrices grouped by their fastest method; speedup = t_bestCSR / t_bestConfigOfMethod\n"
    );

    for (winner, group) in &per_winner {
        println!("-- fastest method: {winner} ({} matrices) --", group.len());
        for &method in &VECTORIZED {
            let speedups: Vec<f64> = group
                .iter()
                .map(|&mi| {
                    let best = best_index_of_method(&labels, mi, method);
                    best_csr_seconds(&labels, mi) / labels.matrices[mi].seconds[best]
                })
                .collect();
            println!("   {}", summarize(&format!("{:<10}", method_name(method)), &speedups));
        }
        let mkl: Vec<f64> = group
            .iter()
            .map(|&mi| best_csr_seconds(&labels, mi) / mkl_seconds(&labels, mi))
            .collect();
        println!("   {}", summarize("MKL       ", &mkl));
    }

    // Per-matrix CSV (the figure's raw points).
    for mi in 0..labels.len() {
        let name = &labels.matrices[mi].name;
        let winner = method_name(fastest_method(&labels, mi));
        let mut cells = vec![name.clone(), winner.to_string()];
        for &method in &VECTORIZED {
            let best = best_index_of_method(&labels, mi, method);
            cells.push(format!(
                "{:.4}",
                best_csr_seconds(&labels, mi) / labels.matrices[mi].seconds[best]
            ));
        }
        cells.push(format!("{:.4}", best_csr_seconds(&labels, mi) / mkl_seconds(&labels, mi)));
        rows.push(cells.join(","));
    }
    ctx.write_csv(
        "fig2_speedups.csv",
        "matrix,fastest,SELLPACK,Sell-c-s,Sell-c-R,LAV-1Seg,LAV,MKL",
        &rows,
    );
}
