//! Figure 11: distribution of the nonzeros-per-row p-ratio over the
//! *random* (RMAT/RGG) corpus, by recipe.
//!
//! The paper's reading: HS/MS/LS land near 0.1/0.2/0.3 and the locality
//! recipes near 0.4–0.5 — together covering the skew range SuiteSparse
//! misses (contrast with Figure 7).

use wise_bench::*;
use wise_gen::Recipe;

fn main() {
    let _trace = wise_bench::report::init();
    let ctx = BenchContext::from_env();
    let labels = ctx.random_labels();

    println!("== Figure 11: p-ratio of nnz/row, random corpus ({} matrices) ==\n", labels.len());
    let mut rows = Vec::new();
    for recipe in Recipe::ALL {
        let ps: Vec<f64> = labels
            .matrices
            .iter()
            .filter(|m| m.name.starts_with(&format!("{}_", recipe.abbrev())))
            .map(|m| m.features.get("p_R").unwrap())
            .collect();
        println!("{}", summarize(&format!("{:<4}", recipe.abbrev()), &ps));
        for p in &ps {
            rows.push(format!("{},{p:.4}", recipe.abbrev()));
        }
    }
    let all: Vec<f64> = labels.matrices.iter().map(|m| m.features.get("p_R").unwrap()).collect();
    let bins = histogram_bins(&all, 0.0, 0.5, 5);
    println!("\n{}", render_histogram("combined", &bins));
    println!("(paper: HS~0.1, MS~0.2, LS~0.3, LL/ML/HL/rgg~0.4-0.5)");
    ctx.write_csv("fig11_p_ratio_random.csv", "recipe,p_ratio_rows", &rows);
}
