//! Table 4 / Section 6.5: mean WISE speedup over MKL for every
//! decision-tree (max depth D, pruning ccp_alpha) combination, 10-fold
//! CV end to end.
//!
//! The 24 grid cells run in parallel against one shared [`CvPlan`]: the
//! fold split and the per-fold presorted columnar layer are built once
//! and reused by every cell and every per-configuration model.
//!
//! The paper's reading: ccp must stay below 0.05 and D at 10+; the
//! chosen cell is D=15, ccp=0.005.

use wise_bench::*;
use wise_core::evaluate::{evaluate_cv_planned, CvPlan};
use wise_ml::grid::{sweep_table4, CCP_GRID, DEPTH_GRID};

fn main() {
    let _trace = wise_bench::report::init();
    let ctx = BenchContext::from_env();
    let labels = ctx.full_labels();
    let k = 10.min(labels.len());

    println!(
        "== Table 4: mean WISE speedup over MKL vs tree hyperparameters ({k}-fold CV, {} matrices) ==\n",
        labels.len()
    );
    let plan = CvPlan::build(&labels, k, ctx.seed);
    let cells =
        sweep_table4(|params| evaluate_cv_planned(&labels, &plan, params).mean_wise_speedup());

    print!("{:>6} |", "D\\ccp");
    for ccp in CCP_GRID {
        print!(" {ccp:>6}");
    }
    println!();
    let mut rows = Vec::new();
    for (di, d) in DEPTH_GRID.iter().enumerate() {
        print!("{d:>6} |");
        for (ci, _) in CCP_GRID.iter().enumerate() {
            let cell = &cells[di * CCP_GRID.len() + ci];
            print!(" {:>6.2}", cell.score);
            rows.push(format!("{},{},{:.4}", cell.max_depth, cell.ccp_alpha, cell.score));
        }
        println!();
    }
    println!("\n(paper: 2.21-2.41 across the grid, chosen D=15 ccp=0.005 at 2.40)");
    ctx.write_csv("table4_hyperparams.csv", "max_depth,ccp_alpha,mean_wise_speedup", &rows);
}
