//! Table 4 / Section 6.5: mean WISE speedup over MKL for every
//! decision-tree (max depth D, pruning ccp_alpha) combination, 10-fold
//! CV end to end.
//!
//! The paper's reading: ccp must stay below 0.05 and D at 10+; the
//! chosen cell is D=15, ccp=0.005.

use wise_bench::*;
use wise_core::evaluate::evaluate_cv;
use wise_ml::grid::{CCP_GRID, DEPTH_GRID};
use wise_ml::TreeParams;

fn main() {
    let _trace = wise_bench::report::init();
    let ctx = BenchContext::from_env();
    let labels = ctx.full_labels();
    let k = 10.min(labels.len());

    println!(
        "== Table 4: mean WISE speedup over MKL vs tree hyperparameters ({k}-fold CV, {} matrices) ==\n",
        labels.len()
    );
    print!("{:>6} |", "D\\ccp");
    for ccp in CCP_GRID {
        print!(" {ccp:>6}");
    }
    println!();
    let mut rows = Vec::new();
    for d in DEPTH_GRID {
        print!("{d:>6} |");
        for ccp in CCP_GRID {
            let params = TreeParams { max_depth: d, ccp_alpha: ccp, ..Default::default() };
            let ev = evaluate_cv(&labels, params, k, ctx.seed);
            let s = ev.mean_wise_speedup();
            print!(" {s:>6.2}");
            rows.push(format!("{d},{ccp},{s:.4}"));
        }
        println!();
    }
    println!("\n(paper: 2.21-2.41 across the grid, chosen D=15 ccp=0.005 at 2.40)");
    ctx.write_csv("table4_hyperparams.csv", "max_depth,ccp_alpha,mean_wise_speedup", &rows);
}
