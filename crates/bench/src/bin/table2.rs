//! Table 2: the WISE feature set (Section 4.2) — printed from the
//! actual extractor so the table can never drift from the code.

use wise_features::FeatureVector;

fn main() {
    let _trace = wise_bench::report::init();
    let names = FeatureVector::names();
    println!("== Table 2: WISE matrix features ({} total) ==\n", names.len());
    let group =
        |prefix: &str| -> Vec<&String> { names.iter().filter(|n| n.ends_with(prefix)).collect() };
    println!("Matrix size:      n_rows n_cols nnz");
    for dist in ["R", "C", "T", "RB", "CB"] {
        let stats: Vec<String> = group(&format!("_{dist}"))
            .iter()
            .map(|n| n.trim_end_matches(&format!("_{dist}")).to_string())
            .collect();
        println!("{dist:>4} distribution: {}", stats.join(" "));
    }
    let locality: Vec<&String> =
        names.iter().filter(|n| n.contains("uniq") || n.contains("potReuse")).collect();
    println!("Locality layout:  {} metrics:", locality.len());
    for chunk in locality.chunks(6) {
        println!(
            "                  {}",
            chunk.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(" ")
        );
    }
}
