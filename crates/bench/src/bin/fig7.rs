//! Figure 7: histogram of the nonzeros-per-row p-ratio over the
//! SuiteSparse(-stand-in) corpus.
//!
//! The paper's reading: most SuiteSparse matrices sit above 0.4 —
//! balanced row distributions — which biases the corpus toward
//! SELLPACK/Sell-c-σ and motivates augmenting it with RMAT matrices.

use wise_bench::*;

fn main() {
    let _trace = wise_bench::report::init();
    let ctx = BenchContext::from_env();
    let labels = ctx.suite_labels();
    let p_ratios: Vec<f64> = labels
        .matrices
        .iter()
        .map(|m| m.features.get("p_R").expect("p_R feature exists"))
        .collect();
    let bins = histogram_bins(&p_ratios, 0.0, 0.5, 5);
    println!(
        "{}",
        render_histogram(
            &format!("Figure 7: p-ratio of nnz/row, suite corpus ({} matrices)", labels.len()),
            &bins
        )
    );
    let above = p_ratios.iter().filter(|&&p| p > 0.4).count();
    println!(
        "matrices with p-ratio > 0.4: {above}/{} ({:.0}%) — paper: 'most'",
        labels.len(),
        100.0 * above as f64 / labels.len() as f64
    );
    let rows: Vec<String> =
        labels.matrices.iter().zip(&p_ratios).map(|(m, p)| format!("{},{p:.4}", m.name)).collect();
    ctx.write_csv("fig7_p_ratio_suite.csv", "matrix,p_ratio_rows", &rows);
}
