//! Figure 6: effect of nonzero *locality* — fastest method and speedup
//! grids for LowLoc and HighLoc RMAT matrices.
//!
//! The paper's reading: Sell-c-σ dominates high-locality matrices
//! (caches already work, segmentation unnecessary); for low locality
//! with dense rows, LAV wins by manufacturing LLC locality through
//! segmentation.

use wise_bench::sweep::print_sweep_figure;

fn main() {
    let _trace = wise_bench::report::init();
    print_sweep_figure("Figure 6", &[wise_gen::Recipe::LowLoc, wise_gen::Recipe::HighLoc], "fig6");
}
