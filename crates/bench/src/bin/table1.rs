//! Table 1: the SpMV method/parameter space, as the 29 concrete
//! configurations WISE models (Section 4.3).

use wise_kernels::method::MethodConfig;

fn main() {
    let _trace = wise_bench::report::init();
    let catalog = MethodConfig::catalog();
    println!("== Table 1: SpMV methods and parameters ({} configurations) ==\n", catalog.len());
    println!("{:<28} {:<10} {:>3} {:>7} {:>5}", "config", "method", "c", "sigma", "T");
    for cfg in &catalog {
        println!(
            "{:<28} {:<10} {:>3} {:>7} {:>5}",
            cfg.label(),
            cfg.method.name(),
            if cfg.c == 0 { "-".to_string() } else { cfg.c.to_string() },
            if cfg.sigma == 0 { "-".to_string() } else { cfg.sigma.to_string() },
            if cfg.t == 0.0 { "-".to_string() } else { format!("{:.0}%", cfg.t * 100.0) },
        );
    }
    println!("\nPreprocessing-cost tie-break order (Section 4.4): CSR < SELLPACK < Sell-c-s < Sell-c-R < LAV-1Seg < LAV, smaller parameters first.");
}
