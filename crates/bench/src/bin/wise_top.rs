//! `wise-top`: terminal renderer for the streaming telemetry snapshot.
//!
//! Reads the `metrics_snapshot.json` written by the periodic exporter
//! ([`wise_trace::telemetry::start_snapshot_thread`], enabled with
//! `WISE_SNAPSHOT=<path>`) and renders a `top`-style text view: the
//! hottest stages by total time with their streaming-sketch quantiles,
//! the prediction-drift status, and the flight-recorder aggregates.
//!
//! Usage: `wise_top [<snapshot path>] [--watch <secs>]`
//!
//! With `--watch`, re-reads and re-renders every interval until
//! interrupted (the exporter's atomic tmp+rename write guarantees a
//! torn file is never observed).

use std::time::Duration;
use wise_trace::export::json::{self, Value};

fn fail(msg: &str) -> ! {
    eprintln!("wise_top: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = "metrics_snapshot.json".to_string();
    let mut watch: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--watch" {
            let secs = it.next().unwrap_or_else(|| fail("--watch needs a number of seconds"));
            let secs: f64 = secs.parse().unwrap_or_else(|_| fail("--watch needs a number"));
            if !(secs > 0.0) {
                fail("--watch needs a positive number of seconds");
            }
            watch = Some(secs);
        } else if a == "--help" || a == "-h" {
            println!("usage: wise_top [<metrics_snapshot.json>] [--watch <secs>]");
            return;
        } else {
            path = a.clone();
        }
    }

    loop {
        match render_file(&path) {
            Ok(view) => {
                if watch.is_some() {
                    // ANSI clear + home, like top(1).
                    print!("\x1b[2J\x1b[H");
                }
                print!("{view}");
            }
            Err(e) if watch.is_some() => eprintln!("wise_top: {e} (retrying)"),
            Err(e) => fail(&e),
        }
        match watch {
            Some(secs) => std::thread::sleep(Duration::from_secs_f64(secs)),
            None => return,
        }
    }
}

fn render_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    render(&doc).ok_or_else(|| format!("{path}: not a metrics snapshot"))
}

/// Pretty ns with a unit, column-stable at 9 chars.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:7.2}s ", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:7.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:7.2}us", ns / 1e3)
    } else {
        format!("{ns:7.0}ns")
    }
}

fn num(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(|x| x.as_f64()).unwrap_or(0.0)
}

fn render(doc: &Value) -> Option<String> {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(2048);
    let ts_s = num(doc, "ts_ns") / 1e9;
    let pmu = doc.get("pmu_status").and_then(|v| v.as_str()).unwrap_or("?");
    let _ = writeln!(out, "wise-top — uptime {ts_s:.1}s — pmu {pmu}");

    if let Some(d) = doc.get("drift") {
        let status = d.get("status").and_then(|v| v.as_str()).unwrap_or("?");
        let _ = writeln!(
            out,
            "drift   {status}  regret {:.2}x  fallthrough {:.1}%  ({} observed)",
            num(d, "regret_permille") / 1000.0,
            num(d, "fallthrough_permille") / 10.0,
            num(d, "observed") as u64,
        );
    }
    if let Some(f) = doc.get("flight") {
        let threshold = match f.get("threshold_ns").and_then(|v| v.as_f64()) {
            Some(t) => fmt_ns(t).trim().to_string(),
            None => "unarmed".to_string(),
        };
        let _ = writeln!(
            out,
            "flight  {} request(s)  {} anomaly(ies)  ring {}  threshold {threshold}",
            num(f, "requests") as u64,
            num(f, "anomalies") as u64,
            num(f, "ring") as u64,
        );
    }

    let stages = doc.get("stages")?.as_object()?;
    let mut rows: Vec<(&String, &Value)> = stages.iter().collect();
    rows.sort_by(|a, b| {
        num(b.1, "total_ns").partial_cmp(&num(a.1, "total_ns")).unwrap_or(std::cmp::Ordering::Equal)
    });
    let _ = writeln!(
        out,
        "{:<32} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "stage", "count", "p50", "p95", "p99", "max", "total"
    );
    for (name, st) in rows {
        let _ = writeln!(
            out,
            "{:<32} {:>9} {} {} {} {} {}",
            name,
            num(st, "count") as u64,
            fmt_ns(num(st, "p50_ns")),
            fmt_ns(num(st, "p95_ns")),
            fmt_ns(num(st, "p99_ns")),
            fmt_ns(num(st, "max_ns")),
            fmt_ns(num(st, "total_ns")),
        );
    }
    Some(out)
}
