//! Benchmark ledger + regression gate: the repo's performance memory.
//!
//! Runs a *pinned* quick suite — every stage the ledger tracks, on
//! fixed seeds and a fixed tiny corpus — then:
//!
//! 1. aggregates the trace into a versioned [`BenchRecord`] (host
//!    fingerprint, corpus digest, per-stage wall times, kernel
//!    throughput, model quality: accuracy / P-ratio / per-matrix
//!    regret) and appends it to the `BENCH_<seq>.json` ledger;
//! 2. gates the new record against every comparable prior record
//!    (same schema, corpus digest, and host fingerprint) with a
//!    noise-aware threshold derived from each side's min/p50 spread,
//!    exiting non-zero with a readable diff on regression.
//!
//! Flags: `--quick` (CI sizing), `--ledger-dir <dir>` (default `.`),
//! `--trace-out <path>` (also write Chrome trace + perf summary),
//! `--note <text>` (free-form tag stored in the record),
//! `--simd-floor <x>` (minimum scalar/vector speedup of the SIMD
//! throughput stage; default 1.0 — the vector kernel must not lose.
//! Hosts whose probe resolves to the scalar ISA gate on parity only),
//! `--miss-rate-ceiling <x>` (maximum `kernel.spmv` LLC load miss-rate;
//! skipped with a notice when hardware counters are unavailable),
//! `--cascade-speedup-floor <x>` (minimum p50 cascade-vs-full selection
//! speedup on the stage-7 latency probe; default 1.0 — the fast path
//! must not lose. Skipped with a notice when the calibrated gate never
//! accepts a probe matrix),
//! `--telemetry-overhead-ceiling <x>` (maximum per-span slowdown of the
//! streaming-sketch telemetry layer measured by the stage-8 probe;
//! default 10.0 — observability must stay an epsilon on the workload).
//!
//! With PMU counters available the suite also runs a *residual* pass:
//! every catalog config executes single-threaded under a counter
//! read, and the measured DRAM bytes / cycles are compared against
//! the cost model's prediction ([`wise_perf::residual`]); the permille
//! ratios land in the trace as `model.residual.*` samples and in the
//! ledger record's `pmu.residual` summary.
//!
//! The suite must stay byte-for-byte pinned: records are only
//! comparable across runs because the work is identical. Change the
//! suite and the corpus digest changes with it, which quarantines old
//! records instead of diffing against them.

use std::hint::black_box;
use std::path::PathBuf;
use std::process::Command;
use wise_bench::report;
use wise_core::classes::N_CLASSES;
use wise_core::evaluate::{evaluate_cv, CvEvaluation};
use wise_core::explain_choice;
use wise_core::labels::label_corpus;
use wise_core::pipeline::{TrainOptions, Wise};
use wise_features::{FeatureConfig, FeatureVector};
use wise_gen::{Corpus, CorpusScale, RggParams, RmatParams};
use wise_kernels::sched::set_executor;
use wise_kernels::srvpack::SpmvWorkspace;
use wise_kernels::{Executor, MethodConfig, Schedule};
use wise_matrix::Csr;
use wise_ml::TreeParams;
use wise_perf::Estimator;
use wise_trace::ledger::{self, Fnv1a};
use wise_trace::{BenchRecord, GatePolicy, HostFingerprint, ModelMetrics, Summary};

/// The suite seed is part of the contract, not a knob: changing it
/// would silently start a new baseline.
const SEED: u64 = 42;

struct Args {
    quick: bool,
    ledger_dir: PathBuf,
    trace_out: Option<PathBuf>,
    note: String,
    simd_floor: f64,
    miss_rate_ceiling: Option<f64>,
    cascade_speedup_floor: f64,
    telemetry_overhead_ceiling: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        ledger_dir: PathBuf::from("."),
        trace_out: None,
        note: String::new(),
        simd_floor: 1.0,
        miss_rate_ceiling: None,
        cascade_speedup_floor: 1.0,
        telemetry_overhead_ceiling: 10.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--ledger-dir" => {
                args.ledger_dir = PathBuf::from(it.next().expect("--ledger-dir needs a path"));
            }
            "--trace-out" => {
                args.trace_out = Some(PathBuf::from(it.next().expect("--trace-out needs a path")));
            }
            "--note" => args.note = it.next().expect("--note needs text"),
            "--simd-floor" => {
                let raw = it.next().expect("--simd-floor needs a number");
                args.simd_floor = raw.parse().expect("--simd-floor: not a number");
            }
            "--miss-rate-ceiling" => {
                let raw = it.next().expect("--miss-rate-ceiling needs a number");
                args.miss_rate_ceiling =
                    Some(raw.parse().expect("--miss-rate-ceiling: not a number"));
            }
            "--cascade-speedup-floor" => {
                let raw = it.next().expect("--cascade-speedup-floor needs a number");
                args.cascade_speedup_floor =
                    raw.parse().expect("--cascade-speedup-floor: not a number");
            }
            "--telemetry-overhead-ceiling" => {
                let raw = it.next().expect("--telemetry-overhead-ceiling needs a number");
                args.telemetry_overhead_ceiling =
                    raw.parse().expect("--telemetry-overhead-ceiling: not a number");
            }
            other => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: bench_regress [--quick] [--ledger-dir <dir>] \
                     [--trace-out <path>] [--note <text>] [--simd-floor <x>] \
                     [--miss-rate-ceiling <x>] [--cascade-speedup-floor <x>] \
                     [--telemetry-overhead-ceiling <x>]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// Fixed probe matrices for the feature-extraction and kernel stages.
/// Shapes chosen so every catalog method gets non-trivial work while a
/// full run stays in the seconds range.
fn probe_matrices() -> Vec<(String, Csr)> {
    vec![
        ("rmat_hs_s10_d8".into(), RmatParams::HIGH_SKEW.generate(10, 8, SEED)),
        ("rmat_ll_s9_d4".into(), RmatParams::LOW_LOC.generate(9, 4, SEED)),
        ("rgg_n512_d8".into(), RggParams { n: 512, avg_degree: 8.0 }.generate(SEED)),
        // The SIMD throughput probe: >= 2^16 nonzeros so the vector-vs-
        // scalar ratio is not dominated by dispatch overhead.
        ("rmat_ms_s13_d16_simd".into(), RmatParams::MED_SKEW.generate(13, 16, SEED)),
    ]
}

/// FNV-1a digest over everything that defines the suite's inputs: the
/// probe matrices and the training corpus (names, shapes, and full
/// sparsity patterns — tiny corpus, so hashing every column index is
/// cheap). Two records diff only when this matches.
fn corpus_digest(probes: &[(String, Csr)], corpus: &Corpus) -> String {
    let mut h = Fnv1a::new();
    h.update_u64(SEED);
    let mut fold = |name: &str, m: &Csr| {
        h.update(name.as_bytes());
        h.update_u64(m.nrows() as u64);
        h.update_u64(m.ncols() as u64);
        h.update_u64(m.nnz() as u64);
        for &c in m.col_idx() {
            h.update_u64(c as u64);
        }
    };
    for (name, m) in probes {
        fold(name, m);
    }
    for lm in &corpus.matrices {
        fold(&lm.name, &lm.matrix);
    }
    h.digest()
}

fn rustc_version() -> Option<String> {
    let out = Command::new("rustc").arg("-V").output().ok()?;
    if !out.status.success() {
        return None;
    }
    Some(String::from_utf8_lossy(&out.stdout).trim().to_string())
}

/// Folds a [`CvEvaluation`] into the ledger's model-quality block.
fn model_metrics(eval: &CvEvaluation) -> ModelMetrics {
    let mut merged = wise_ml::ConfusionMatrix::new(N_CLASSES);
    let mut acc_sum = 0.0;
    for cm in &eval.confusions {
        merged.merge(cm);
        acc_sum += cm.accuracy();
    }
    let accuracy =
        if eval.confusions.is_empty() { 0.0 } else { acc_sum / eval.confusions.len() as f64 };
    let mut confusion = Vec::with_capacity(N_CLASSES * N_CLASSES);
    for t in 0..N_CLASSES {
        for p in 0..N_CLASSES {
            confusion.push(merged.get(t, p));
        }
    }
    // Regret: how much slower WISE's pick is than the per-matrix
    // oracle (1.0 = perfect). P-ratio is its reciprocal mean, the
    // paper's "fraction of oracle performance achieved".
    let mut per_matrix_regret = Vec::with_capacity(eval.outcomes.len());
    let mut p_sum = 0.0;
    for o in &eval.outcomes {
        let regret = o.wise_seconds / o.oracle_seconds.max(1e-300);
        per_matrix_regret.push((o.name.clone(), regret));
        p_sum += o.oracle_seconds / o.wise_seconds.max(1e-300);
    }
    let n = eval.outcomes.len().max(1) as f64;
    let mean_regret = per_matrix_regret.iter().map(|(_, r)| r).sum::<f64>() / n;
    let max_regret = per_matrix_regret.iter().map(|(_, r)| *r).fold(0.0, f64::max);
    ModelMetrics {
        accuracy,
        p_ratio: p_sum / n,
        mean_regret,
        max_regret,
        n_classes: N_CLASSES as u64,
        confusion,
        per_matrix_regret,
    }
}

fn main() {
    let args = parse_args();
    wise_trace::set_enabled(true);
    set_executor(Executor::Pool);
    let spmv_iters = if args.quick { 10 } else { 40 };
    let nthreads = 2;
    let mode = if args.quick { "quick" } else { "full" };

    println!("== bench_regress: pinned suite (seed {SEED}, {mode} mode) ==");

    // ---- 1. Feature extraction on the fixed probes ------------------
    report::progress("stage 1/8: feature extraction probes");
    let probes = probe_matrices();
    let feature_config = FeatureConfig::default();
    for (name, m) in &probes {
        let fv = FeatureVector::extract(m, &feature_config);
        black_box(&fv);
        report::progress(format_args!("extracted {name} ({} rows, {} nnz)", m.nrows(), m.nnz()));
    }

    // ---- 2. Registry fit on the pinned tiny corpus ------------------
    report::progress("stage 2/8: label corpus + registry fit");
    let scale = CorpusScale::tiny();
    let corpus = Corpus::full(&scale, SEED);
    let digest = corpus_digest(&probes, &corpus);
    let max_rows = 1usize << scale.row_scales.iter().copied().max().unwrap_or(10);
    let opts = TrainOptions {
        // Deterministic model backend on purpose: measured labels would
        // fold machine noise into the *model-quality* numbers, which
        // are supposed to move only when the code does.
        estimator: Estimator::model_for_rows(max_rows),
        feature_config,
        tree_params: TreeParams::default(),
    };
    let labels = label_corpus(&corpus, &opts.estimator, &opts.feature_config);
    let wise = Wise::from_labels(&labels, &opts);

    // ---- 3. SpMV catalog through the worker pool --------------------
    report::progress("stage 3/8: SpMV catalog sweep");
    let (_, spmv_matrix) = &probes[0];
    let x: Vec<f64> = (0..spmv_matrix.ncols()).map(|i| (i as f64).sin()).collect();
    let mut y = vec![0.0; spmv_matrix.nrows()];
    let mut ws = SpmvWorkspace::default();
    for cfg in MethodConfig::catalog() {
        let prep = cfg.prepare(spmv_matrix);
        for _ in 0..spmv_iters {
            prep.spmv(&x, &mut y, nthreads, &mut ws);
        }
        black_box(&y);
    }

    // ---- 4. SIMD vs scalar throughput on the pinned SELL probe ------
    // Three rungs: forced scalar, plain vector (prefetch and
    // interleave pinned off, so the span stays comparable with records
    // written before the MLP kernels existed), and the MLP kernel with
    // the auto prefetch/interleave policies engaged.
    report::progress("stage 4/8: SIMD throughput probe (scalar / vector / mlp)");
    let isa = wise_kernels::simd::active();
    let (_, simd_matrix) = &probes[3];
    let simd_cfg = MethodConfig::sell_c_sigma(8, 512, Schedule::StCont);
    let xs: Vec<f64> = (0..simd_matrix.ncols()).map(|i| (i as f64).cos()).collect();
    let mut ys = vec![0.0; simd_matrix.nrows()];
    let scalar_prep = simd_cfg.with_simd(1).prepare(simd_matrix);
    // `pf = MAX+`-style "explicit off" is not label-encodable, so pin
    // the plain-vector rung off through the process-wide override and
    // restore auto before the MLP rung.
    let vector_prep = simd_cfg.with_interleave(1).prepare(simd_matrix);
    let mlp_prep = simd_cfg.prepare(simd_matrix);
    let (mlp_pf, mlp_il) = match &mlp_prep {
        wise_kernels::method::Prepared::Pack(p, _) => {
            let risa = p.resolved_isa();
            (p.resolved_prefetch(risa), p.resolved_interleave(risa))
        }
        _ => (0, 1),
    };
    let probe_nnz = vector_prep.nnz_padded() as u64;
    wise_kernels::simd::set_prefetch(Some(0));
    for _ in 0..3 {
        scalar_prep.spmv(&xs, &mut ys, 1, &mut ws);
        vector_prep.spmv(&xs, &mut ys, 1, &mut ws);
    }
    for _ in 0..spmv_iters {
        {
            let _s = wise_trace::span("bench.simd.scalar");
            scalar_prep.spmv(&xs, &mut ys, 1, &mut ws);
        }
        wise_trace::counter("bench.simd.scalar.nnz", probe_nnz);
        {
            let _s = wise_trace::span("bench.simd.vector");
            vector_prep.spmv(&xs, &mut ys, 1, &mut ws);
        }
        wise_trace::counter("bench.simd.vector.nnz", probe_nnz);
    }
    wise_kernels::simd::set_prefetch(None);
    for _ in 0..3 {
        mlp_prep.spmv(&xs, &mut ys, 1, &mut ws);
    }
    for _ in 0..spmv_iters {
        {
            let _s = wise_trace::span("bench.simd.mlp");
            mlp_prep.spmv(&xs, &mut ys, 1, &mut ws);
        }
        wise_trace::counter("bench.simd.mlp.nnz", probe_nnz);
    }
    black_box(&ys);
    report::progress(format_args!(
        "simd probe: {} ({} lanes), mlp pf{mlp_pf}:il{mlp_il}, {} padded nnz, {spmv_iters} iters",
        isa.name(),
        isa.lanes(),
        probe_nnz
    ));

    // ---- 5. Cost-model residuals under hardware counters ------------
    // Each catalog config runs single-threaded (PMU groups are
    // per-thread) between two counter reads; the measured delta is
    // compared to the cost model's prediction for the same prepared
    // representation. Skipped entirely — with an explicit notice — when
    // counters are off or denied, leaving the trace bit-identical.
    report::progress("stage 5/8: cost-model residual probe");
    let pmu_status = wise_trace::pmu::status_label();
    if wise_trace::pmu::read_counts().is_some() {
        let (_, res_matrix) = &probes[3];
        let mut machine = wise_perf::MachineModel::scaled_for_rows(res_matrix.nrows());
        machine.threads = 1;
        let shift = wise_perf::cost::auto_sample_shift(res_matrix.nnz());
        let xr: Vec<f64> = (0..res_matrix.ncols()).map(|i| (i as f64).sin()).collect();
        let mut yr = vec![0.0; res_matrix.nrows()];
        let res_iters: u64 = if args.quick { 5 } else { 20 };
        let mut observed = 0usize;
        let catalog = MethodConfig::catalog();
        let n_configs = catalog.len();
        for cfg in catalog {
            let prep = cfg.prepare(res_matrix);
            let pred = wise_perf::cost::estimate_prepared(res_matrix, &cfg, &prep, &machine, shift);
            prep.spmv(&xr, &mut yr, 1, &mut ws); // warm caches + dispatch
            let base = wise_trace::pmu::read_counts().unwrap_or_default();
            for _ in 0..res_iters {
                prep.spmv(&xr, &mut yr, 1, &mut ws);
            }
            let end = wise_trace::pmu::read_counts().unwrap_or_default();
            let delta = end.delta_since(&base);
            let res = wise_perf::observe_residual(&pred, &delta, res_iters, &machine);
            observed += usize::from(!res.is_empty());
        }
        black_box(&yr);
        report::progress(format_args!(
            "residuals observed for {observed}/{n_configs} catalog configs ({res_iters} iters each)"
        ));
    } else {
        report::progress(format_args!("residual probe skipped (pmu {pmu_status})"));
    }

    // ---- 6. End-to-end selection + model quality --------------------
    report::progress("stage 6/8: end-to-end select + CV evaluation");
    let choice = wise.select(spmv_matrix);
    wise.run_spmv(spmv_matrix, &choice, &x, &mut y, nthreads);
    println!("\n{}", explain_choice(wise.registry().catalog(), &choice));
    let folds = 5.min(labels.len());
    let eval = evaluate_cv(&labels, opts.tree_params, folds, SEED);
    let metrics = model_metrics(&eval);
    println!(
        "model: accuracy {:.3}, P-ratio {:.3}, regret mean {:.3} / max {:.3} over {} matrices",
        metrics.accuracy,
        metrics.p_ratio,
        metrics.mean_regret,
        metrics.max_regret,
        metrics.per_matrix_regret.len()
    );

    // ---- 7. Selection-latency probe: cascade vs full ----------------
    // The same trained instance selects every probe matrix twice — once
    // through the calibrated cascade, once with the gate stripped (the
    // exact pre-cascade pipeline) — under `bench.cascade.fast` /
    // `bench.cascade.full` latency samples. Stage-1 answers then run a
    // measured SpMV to feed the regret accumulator.
    report::progress("stage 7/8: selection-latency probe (cascade vs full)");
    wise_core::cascade::reset_regret();
    let full_wise = wise.clone().with_cascade_gate(None);
    let sel_iters = if args.quick { 3 } else { 10 };
    let mut cascade_selects = 0u64;
    let mut stage1_answers = 0u64;
    for (name, m) in &probes {
        let mut fast_choice = None;
        for _ in 0..sel_iters {
            let t0 = std::time::Instant::now();
            let c = wise.select(m);
            wise_trace::observe_ns("bench.cascade.fast", t0.elapsed().as_nanos() as u64);
            cascade_selects += 1;
            let stage = c.cascade.as_ref().map(|i| i.stage);
            if stage == Some(wise_core::CascadeStage::Stage1) {
                stage1_answers += 1;
                fast_choice = Some(c);
            }
            let t1 = std::time::Instant::now();
            let full = full_wise.select(m);
            wise_trace::observe_ns("bench.cascade.full", t1.elapsed().as_nanos() as u64);
            black_box(&full);
        }
        // Close the loop: measure the fast-path pick and record its
        // regret against the stage-1 roofline prediction.
        if let Some(c) = fast_choice {
            let prep = wise.prepare(m, &c);
            let xc: Vec<f64> = (0..m.ncols()).map(|i| (i as f64).sin()).collect();
            let mut yc = vec![0.0; m.nrows()];
            prep.spmv(&xc, &mut yc, 1, &mut ws); // warm caches + dispatch
            let t = std::time::Instant::now();
            for _ in 0..spmv_iters {
                prep.spmv(&xc, &mut yc, 1, &mut ws);
            }
            let per_iter = t.elapsed().as_secs_f64() / spmv_iters as f64;
            wise_core::observe_execution(&c, per_iter);
            black_box(&yc);
            report::progress(format_args!("cascade stage-1 answered {name}"));
        }
    }
    let fallthrough_rate = 1.0 - stage1_answers as f64 / cascade_selects.max(1) as f64;
    report::progress(format_args!(
        "cascade: {stage1_answers}/{cascade_selects} stage-1 answers \
         (fallthrough rate {fallthrough_rate:.2})"
    ));
    if let Some(r) = wise_core::regret_stats() {
        println!(
            "cascade regret: mean measured/predicted {:.3} over {} measured execution(s)",
            r.mean_ratio, r.observed
        );
    }
    let drift = wise_core::drift::stats();
    if drift.observed > 0 {
        println!(
            "drift monitor: {} ({} observed executions)",
            drift.status.label(),
            drift.observed
        );
    }

    // ---- 8. Telemetry-overhead probe --------------------------------
    // Times a hot span loop with the streaming-sketch layer on and off;
    // the per-span ratio lands in the ledger and gates against
    // `--telemetry-overhead-ceiling`, so the observability layer can
    // never silently become the workload. The suite's events are
    // drained *first* so the probe's ring traffic (discarded below)
    // cannot overflow the ring and drop stage 1-7 samples out of the
    // summary.
    report::progress("stage 8/8: telemetry-overhead probe (streaming sketches on vs off)");
    let events = wise_trace::take_events();
    let overhead_iters: u32 = if args.quick { 20_000 } else { 50_000 };
    let time_spans = |iters: u32| -> f64 {
        let t0 = std::time::Instant::now();
        for i in 0..iters {
            let _s = wise_trace::span("bench.telemetry.probe");
            black_box(i);
        }
        t0.elapsed().as_nanos() as f64 / f64::from(iters.max(1))
    };
    let telemetry_was_on = wise_trace::telemetry::telemetry_enabled();
    wise_trace::telemetry::set_telemetry_enabled(true);
    time_spans(overhead_iters / 10); // warm the span path + the sketch
    let span_on_ns = time_spans(overhead_iters);
    wise_trace::telemetry::set_telemetry_enabled(false);
    time_spans(overhead_iters / 10);
    let span_off_ns = time_spans(overhead_iters);
    wise_trace::telemetry::set_telemetry_enabled(telemetry_was_on);
    drop(wise_trace::take_events()); // discard the probe's ring traffic
    let telemetry_overhead = if span_off_ns > 0.0 { span_on_ns / span_off_ns } else { 1.0 };
    report::progress(format_args!(
        "telemetry overhead: {span_on_ns:.0}ns/span with sketches vs {span_off_ns:.0}ns/span \
         without ({telemetry_overhead:.2}x, ceiling {:.2}x)",
        args.telemetry_overhead_ceiling
    ));

    // ---- Flush the trace and build the record -----------------------
    if let Some(path) = &args.trace_out {
        match wise_trace::write_trace_files(&events, path) {
            Ok(summary_path) => {
                report::artifact(path.display());
                report::artifact(summary_path.display());
            }
            Err(e) => report::progress(format_args!("failed to write trace files: {e}")),
        }
    }
    let summary = Summary::from_events(&events);
    let host = HostFingerprint::detect()
        .with_rustc(rustc_version())
        .with_mlp(Some(format!("pf{mlp_pf}:il{mlp_il}")));

    let dir = &args.ledger_dir;
    let mut warnings = Vec::new();
    let prior = match ledger::load_all(dir, &mut warnings) {
        Ok(records) => records,
        Err(e) => {
            eprintln!("cannot read ledger dir {}: {e}", dir.display());
            std::process::exit(2);
        }
    };
    for w in &warnings {
        report::progress(format_args!("ledger warning: {w}"));
    }
    let seq = ledger::next_seq(dir).expect("scan ledger dir");
    let note = if args.note.is_empty() { format!("{mode} suite") } else { args.note };
    let mut record = BenchRecord::from_summary(seq, &note, &digest, host, &summary);
    record.model = Some(metrics);

    // SIMD speedup: min-of-k scalar time over min-of-k vector time on
    // the stage-4 probe, recorded alongside the derived nnz/s rates.
    let speedup = match (
        summary.stages.get("bench.simd.scalar").map(|s| s.min_ns),
        summary.stages.get("bench.simd.vector").map(|s| s.min_ns),
    ) {
        (Some(s), Some(v)) if v > 0 => Some(s as f64 / v as f64),
        _ => None,
    };
    if let Some(sp) = speedup {
        record.throughput.insert("bench.simd.speedup".to_string(), sp);
        println!(
            "simd: {} ({} lanes), vector speedup {sp:.2}x over forced scalar (floor {:.2}x)",
            isa.name(),
            isa.lanes(),
            args.simd_floor
        );
    }
    // MLP speedup: the prefetched/interleaved kernel against the same
    // forced-scalar baseline. This is the rung the raised --simd-floor
    // gates on AVX-512 hosts; lesser ISAs run the plain vector kernel
    // in both spans, so the ratio would only duplicate bench.simd.speedup.
    let mlp_speedup = match (
        summary.stages.get("bench.simd.scalar").map(|s| s.min_ns),
        summary.stages.get("bench.simd.mlp").map(|s| s.min_ns),
    ) {
        (Some(s), Some(v)) if v > 0 => Some(s as f64 / v as f64),
        _ => None,
    };
    if let Some(sp) = mlp_speedup {
        record.throughput.insert("bench.simd.mlp_speedup".to_string(), sp);
        println!("simd: mlp kernel (pf{mlp_pf}:il{mlp_il}) speedup {sp:.2}x over forced scalar");
    }

    // Cascade selection latency: p50-over-p50 fast-vs-full speedup and
    // the fallthrough rate, recorded for trend tracking (older records
    // simply lack the fields).
    let cascade_speedup = match (
        summary.stages.get("bench.cascade.full").map(|s| s.p50_ns),
        summary.stages.get("bench.cascade.fast").map(|s| s.p50_ns),
    ) {
        (Some(full), Some(fast)) if fast > 0 => Some(full as f64 / fast as f64),
        _ => None,
    };
    record.throughput.insert("select.cascade.fallthrough_rate".to_string(), fallthrough_rate);
    record.throughput.insert("bench.telemetry.overhead".to_string(), telemetry_overhead);
    if let Some(sp) = cascade_speedup {
        record.throughput.insert("bench.cascade.speedup".to_string(), sp);
        println!(
            "cascade: selection p50 speedup {sp:.2}x over the full pipeline, \
             fallthrough rate {fallthrough_rate:.2} (floor {:.2}x)",
            args.cascade_speedup_floor
        );
    }

    // Hardware-counter telemetry: IPC, LLC miss-rate and model
    // residuals as recorded in the ledger (or the explicit
    // unavailability marker when the host denied counters).
    if let Some(pmu) = &record.pmu {
        println!("pmu: status {}", pmu.status);
        if let Some(st) = pmu.stages.get("kernel.spmv") {
            let fmt = |v: Option<f64>| v.map_or("n/a".to_string(), |x| format!("{x:.3}"));
            println!(
                "pmu: kernel.spmv ipc {}, llc miss-rate {}, {} counted spans",
                fmt(st.ipc()),
                fmt(st.llc_miss_rate()),
                st.samples
            );
        }
        if let Some(res) = &pmu.residual {
            println!(
                "residual: measured/predicted bytes p50 {:.3} p95 {:.3}, \
                 cycles p50 {:.3} p95 {:.3} ({} samples)",
                res.bytes_p50, res.bytes_p95, res.cycles_p50, res.cycles_p95, res.count
            );
        }
    }

    match ledger::write_record(dir, &record) {
        Ok(path) => report::artifact(path.display()),
        Err(e) => {
            eprintln!("cannot write ledger record: {e}");
            std::process::exit(2);
        }
    }

    // ---- Gate against comparable priors -----------------------------
    // The SIMD throughput stages only gate on hosts where a vector ISA
    // is active: a scalar-fallback host runs identical code in both
    // spans, so tracking them there would only gate noise.
    let mut policy = GatePolicy::default();
    if isa.lanes() > 1 {
        policy.tracked.push("bench.simd.scalar".to_string());
        policy.tracked.push("bench.simd.vector".to_string());
        policy.tracked.push("bench.simd.mlp".to_string());
    }
    let gate_report = ledger::gate(&prior, &record, &policy);
    println!("\n{}", gate_report.render());
    if !gate_report.passed() {
        eprintln!(
            "bench_regress: REGRESSION — {} tracked stage(s) failed the gate",
            gate_report.failures()
        );
        std::process::exit(1);
    }
    if isa.lanes() > 1 {
        // The raised floor gates the MLP rung only where the MLP
        // kernels actually engage (AVX-512: chunk-pair + prefetch);
        // narrower ISAs gate the plain vector rung so an AVX2 CI
        // runner is held to what its hardware can deliver.
        let gated = if isa == wise_kernels::simd::SimdIsa::Avx512 {
            ("mlp", mlp_speedup.unwrap_or(0.0))
        } else {
            ("vector", speedup.unwrap_or(0.0))
        };
        if gated.1 < args.simd_floor {
            eprintln!(
                "bench_regress: SIMD floor violated — {} kernel {:.2}x vs scalar \
                 (floor {:.2}x)",
                gated.0, gated.1, args.simd_floor
            );
            std::process::exit(1);
        }
    } else {
        println!("simd: scalar-fallback host; gated on parity only");
    }

    // ---- Cascade selection-latency floor ----------------------------
    // Only meaningful when the calibrated gate actually accepted at
    // least one probe selection: an always-fallthrough cascade pays the
    // probe on top of full extraction by design, and gating that would
    // only punish conservative calibrations.
    if stage1_answers > 0 {
        let sp = cascade_speedup.unwrap_or(0.0);
        if sp < args.cascade_speedup_floor {
            eprintln!(
                "bench_regress: cascade floor violated — fast-path selection {sp:.2}x vs \
                 full (floor {:.2}x)",
                args.cascade_speedup_floor
            );
            std::process::exit(1);
        }
    } else {
        println!("cascade: gate accepted no probe selections; floor gate skipped");
    }

    // ---- Telemetry-overhead ceiling ---------------------------------
    // The stage-8 per-span ratio: tracing with the sketch pipeline
    // engaged must stay within a constant factor of tracing alone.
    if telemetry_overhead > args.telemetry_overhead_ceiling {
        eprintln!(
            "bench_regress: telemetry overhead ceiling violated — {telemetry_overhead:.2}x \
             per span (ceiling {:.2}x)",
            args.telemetry_overhead_ceiling
        );
        std::process::exit(1);
    }

    // ---- LLC miss-rate ceiling (opt-in, needs hardware counters) -----
    if let Some(ceiling) = args.miss_rate_ceiling {
        let rate = record
            .pmu
            .as_ref()
            .and_then(|p| p.stages.get("kernel.spmv"))
            .and_then(|s| s.llc_miss_rate());
        match rate {
            Some(rate) if rate > ceiling => {
                eprintln!(
                    "bench_regress: LLC miss-rate ceiling violated — kernel.spmv \
                     {rate:.4} > {ceiling:.4}"
                );
                std::process::exit(1);
            }
            Some(rate) => {
                println!("miss-rate gate: kernel.spmv {rate:.4} <= ceiling {ceiling:.4}");
            }
            None => println!("miss-rate gate: skipped (pmu {pmu_status})"),
        }
    }
    println!("bench_regress: gate passed (BENCH_{seq}.json recorded)");
}
