//! Figure 10 / Section 6.2: 10-fold cross-validated confusion matrices
//! for the five representative models (c=8; StCont for SELLPACK and
//! Sell-c-σ, Dyn otherwise), plus accuracy for all 29 models.
//!
//! The paper's reading: per-model accuracy 83–92%, and ~90% of
//! misclassifications land within one class of the truth.

use wise_bench::*;
use wise_core::evaluate::evaluate_cv;
use wise_ml::TreeParams;

fn main() {
    let _trace = wise_bench::report::init();
    let ctx = BenchContext::from_env();
    let labels = ctx.full_labels();
    let k = 10.min(labels.len());
    let ev = evaluate_cv(&labels, TreeParams::default(), k, ctx.seed);

    let representative = [
        "SELLPACK-c8-StCont",
        "Sell-c-s-c8-s4096-StCont",
        "Sell-c-R-c8",
        "LAV-1Seg-c8",
        "LAV-c8-T80",
    ];
    println!("== Figure 10: confusion matrices, {k}-fold CV over {} matrices ==\n", labels.len());
    for label in representative {
        let i = labels.config_index(label);
        let cm = &ev.confusions[i];
        println!("-- {label} --");
        print!("{}", cm.render());
        println!(
            "accuracy {:.1}%  misses-within-1 {:.1}%  over/under = {:?}\n",
            100.0 * cm.accuracy(),
            100.0 * cm.misses_within(1),
            cm.over_under()
        );
    }

    println!("== Section 6.2: accuracy of all 29 models ==");
    let mut rows = Vec::new();
    let mut accs = Vec::new();
    let mut within = Vec::new();
    for (i, cfg) in labels.catalog.iter().enumerate() {
        let cm = &ev.confusions[i];
        accs.push(cm.accuracy());
        within.push(cm.misses_within(1));
        rows.push(format!("{},{:.4},{:.4}", cfg.label(), cm.accuracy(), cm.misses_within(1)));
        println!(
            "{:<28} accuracy {:>5.1}%   misses within 1 class {:>5.1}%",
            cfg.label(),
            100.0 * cm.accuracy(),
            100.0 * cm.misses_within(1)
        );
    }
    println!("\n{}", summarize("accuracy       ", &accs));
    println!("{}", summarize("misses-within-1", &within));
    println!("(paper, representative models: accuracy 83-92%, within-1 on misses 89-94%)");

    ctx.write_csv("fig10_accuracy.csv", "config,accuracy,misses_within_1", &rows);
}
