//! Figure 12: distribution of the average nonzeros per row (μR) for
//! (a) the random corpus and (b) the suite corpus.
//!
//! The paper's reading: the random matrices cover a much wider μR range
//! (up to 128), including the dense-row regime that exercises vector
//! units; SuiteSparse mass sits at small μR.

use wise_bench::*;

fn main() {
    let _trace = wise_bench::report::init();
    let ctx = BenchContext::from_env();
    let random = ctx.random_labels();
    let suite = ctx.suite_labels();

    let mu = |labels: &wise_core::labels::CorpusLabels| -> Vec<f64> {
        labels.matrices.iter().map(|m| m.features.get("mean_R").unwrap()).collect()
    };
    let mu_r = mu(&random);
    let mu_s = mu(&suite);

    println!(
        "{}",
        render_histogram(
            &format!("Figure 12a: mean nnz/row, random corpus ({} matrices)", random.len()),
            &histogram_bins(&mu_r, 0.0, 130.0, 13)
        )
    );
    println!(
        "{}",
        render_histogram(
            &format!("Figure 12b: mean nnz/row, suite corpus ({} matrices)", suite.len()),
            &histogram_bins(&mu_s, 0.0, 130.0, 13)
        )
    );
    println!("{}", summarize("random", &mu_r));
    println!("{}", summarize("suite ", &mu_s));

    let mut rows: Vec<String> = mu_r.iter().map(|v| format!("random,{v:.3}")).collect();
    rows.extend(mu_s.iter().map(|v| format!("suite,{v:.3}")));
    ctx.write_csv("fig12_mean_nnz_per_row.csv", "corpus,mean_R", &rows);
}
