//! Shared implementation of the Figure 5/6 sweep grids.

use crate::{fastest_method, method_code, render_sweep_grid, report, BenchContext};
use wise_core::labels::CorpusLabels;
use wise_gen::Recipe;

/// Parses `"<ABBR>_s<scale>_d<degree>"` names from the random corpus.
fn parse_name(name: &str) -> Option<(&str, u32, u32)> {
    let mut it = name.split('_');
    let abbr = it.next()?;
    let s = it.next()?.strip_prefix('s')?.parse().ok()?;
    let d = it.next()?.strip_prefix('d')?.parse().ok()?;
    Some((abbr, s, d))
}

/// Prints the fastest-method grid and the speedup-over-best-CSR grid
/// for each recipe, and writes a combined CSV.
pub fn print_sweep_figure(figure: &str, recipes: &[Recipe], csv_stem: &str) {
    let ctx = BenchContext::from_env();
    let labels = ctx.random_labels();
    report::progress(format_args!("rendering {figure} grids for {} recipes", recipes.len()));

    println!("legend: {}", legend());
    let mut rows: Vec<String> = Vec::new();
    for &recipe in recipes {
        let grid = collect(&labels, recipe);
        let row_scales = ctx.scale.row_scales.clone();
        let degrees = ctx.scale.degrees.clone();

        let fastest = render_sweep_grid(
            &format!("{figure}: {recipe:?} — fastest method"),
            &row_scales,
            &degrees,
            |rs, d| {
                grid.get(&(rs, d))
                    .map(|&(mi, _)| method_code(fastest_method(&labels, mi)).to_string())
                    .unwrap_or_else(|| ".".into())
            },
        );
        println!("{fastest}");
        let speedup = render_sweep_grid(
            &format!("{figure}: {recipe:?} — best speedup over best CSR"),
            &row_scales,
            &degrees,
            |rs, d| {
                grid.get(&(rs, d)).map(|&(_, s)| format!("{s:.2}")).unwrap_or_else(|| ".".into())
            },
        );
        println!("{speedup}");

        for ((rs, d), (mi, s)) in &grid {
            rows.push(format!(
                "{:?},{rs},{d},{},{s:.4}",
                recipe,
                crate::method_name(fastest_method(&labels, *mi)),
            ));
        }
    }
    ctx.write_csv(
        &format!("{csv_stem}_sweep.csv"),
        "recipe,log2_rows,degree,fastest,speedup_over_best_csr",
        &rows,
    );
}

fn legend() -> String {
    use wise_kernels::Method;
    Method::ALL
        .iter()
        .map(|&m| format!("{}={}", method_code(m), crate::method_name(m)))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Maps `(row_scale, degree)` to `(matrix index, oracle speedup over
/// best CSR)` for one recipe.
fn collect(
    labels: &CorpusLabels,
    recipe: Recipe,
) -> std::collections::BTreeMap<(u32, u32), (usize, f64)> {
    let mut out = std::collections::BTreeMap::new();
    for (mi, ml) in labels.matrices.iter().enumerate() {
        let Some((abbr, s, d)) = parse_name(&ml.name) else { continue };
        if abbr != recipe.abbrev() {
            continue;
        }
        let oracle = ml.oracle_index();
        let speedup = ml.best_csr_seconds / ml.seconds[oracle];
        out.insert((s, d), (mi, speedup));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_corpus_names() {
        assert_eq!(parse_name("HS_s14_d32"), Some(("HS", 14, 32)));
        assert_eq!(parse_name("rgg_s12_d4"), Some(("rgg", 12, 4)));
        assert_eq!(parse_name("banded_s10_bw4_f4"), None);
        assert_eq!(parse_name("nonsense"), None);
    }
}
