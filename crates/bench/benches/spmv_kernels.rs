//! Criterion microbenchmarks of every SpMV method (wall-clock on the
//! host, complementing the deterministic model used by the figure
//! harness). One group per method family; throughput in nonzeros/sec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wise_gen::RmatParams;
use wise_kernels::method::MethodConfig;
use wise_kernels::srvpack::SpmvWorkspace;
use wise_kernels::Schedule;

fn bench_methods(c: &mut Criterion) {
    let matrices = [
        ("HS_s13_d16", RmatParams::HIGH_SKEW.generate(13, 16, 1)),
        ("LL_s13_d16", RmatParams::LOW_LOC.generate(13, 16, 1)),
        ("HL_s13_d16", RmatParams::HIGH_LOC.generate(13, 16, 1)),
    ];
    let configs = [
        MethodConfig::csr(Schedule::StCont),
        MethodConfig::csr(Schedule::Dyn),
        MethodConfig::sellpack(8, Schedule::StCont),
        MethodConfig::sell_c_sigma(8, 4096, Schedule::StCont),
        MethodConfig::sell_c_r(8),
        MethodConfig::lav_1seg(8),
        MethodConfig::lav(8, 0.8),
    ];
    let mut group = c.benchmark_group("spmv");
    for (name, m) in &matrices {
        group.throughput(Throughput::Elements(m.nnz() as u64));
        let x = vec![1.0f64; m.ncols()];
        let mut y = vec![0.0f64; m.nrows()];
        for cfg in &configs {
            let prep = cfg.prepare(m);
            let mut ws = SpmvWorkspace::default();
            group.bench_with_input(BenchmarkId::new(cfg.label(), name), &prep, |b, prep| {
                b.iter(|| prep.spmv(&x, &mut y, 1, &mut ws));
            });
        }
    }
    group.finish();
}

fn bench_preprocessing(c: &mut Criterion) {
    let m = RmatParams::MED_SKEW.generate(13, 16, 2);
    let mut group = c.benchmark_group("prepare");
    group.throughput(Throughput::Elements(m.nnz() as u64));
    for cfg in [
        MethodConfig::sellpack(8, Schedule::Dyn),
        MethodConfig::sell_c_r(8),
        MethodConfig::lav(8, 0.8),
    ] {
        group.bench_function(cfg.label(), |b| b.iter(|| cfg.prepare(&m)));
    }
    group.finish();
}

criterion_group!(benches, bench_methods, bench_preprocessing);
criterion_main!(benches);
