//! Criterion benchmarks of the ML substrate: tree training (offline
//! cost) and inference (the 29 predictions on WISE's critical path).

use criterion::{criterion_group, criterion_main, Criterion};
use wise_ml::{Dataset, DecisionTree, TreeParams};

fn synthetic_dataset(n: usize, f: usize) -> Dataset {
    let rows: Vec<Vec<f64>> =
        (0..n).map(|i| (0..f).map(|j| ((i * 31 + j * 17) % 97) as f64 / 97.0).collect()).collect();
    let labels: Vec<u32> = (0..n).map(|i| ((i * 31 + i / 13) % 7) as u32).collect();
    Dataset::new(rows, labels, 7)
}

fn bench_tree(c: &mut Criterion) {
    // Shapes matching WISE: ~1500 matrices x 67 features x 7 classes.
    let ds = synthetic_dataset(1500, 67);
    c.bench_function("tree_fit_1500x67", |b| {
        b.iter(|| DecisionTree::fit(&ds, TreeParams::default()))
    });
    c.bench_function("tree_fit_reference_1500x67", |b| {
        b.iter(|| DecisionTree::fit_reference(&ds, TreeParams::default()))
    });
    // Amortized path: presort once, fit many label views (the registry).
    let presort = wise_ml::Presort::for_dataset(&ds);
    c.bench_function("tree_fit_presorted_1500x67", |b| {
        b.iter(|| DecisionTree::fit_with(&ds, &presort, TreeParams::default()))
    });
    let tree = DecisionTree::fit(&ds, TreeParams::default());
    let row: Vec<f64> = ds.row(7).to_vec();
    c.bench_function("tree_predict_single", |b| b.iter(|| tree.predict(&row)));
    c.bench_function("tree_predict_29_models", |b| {
        b.iter(|| {
            // WISE runs 29 trees per matrix at selection time.
            (0..29).map(|_| tree.predict(&row)).sum::<u32>()
        })
    });
}

criterion_group!(benches, bench_tree);
criterion_main!(benches);
