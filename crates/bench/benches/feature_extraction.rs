//! Criterion benchmark of WISE feature extraction — the per-matrix cost
//! a deployed WISE pays before prediction (half of Fig. 13c's
//! overhead).
//!
//! Three axes:
//! * `extract/2^s` — the fused engine at its defaults (thread count
//!   resolved from the machine), scales 2^11 / 2^13 / 2^16;
//! * `extract_threads/2^13 tN` — thread sweep (1 / 2 / all) of the
//!   fused engine at the reference scale, with a reused scratch;
//! * `extract_reference/2^13` — the kept naive multi-pass extractor,
//!   the before/after baseline for the engine rewrite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wise_features::{FeatureConfig, FeatureScratch, FeatureVector};
use wise_gen::RmatParams;
use wise_kernels::sched::default_threads;

fn bench_features(c: &mut Criterion) {
    let mut group = c.benchmark_group("feature_extraction");
    for scale in [11u32, 13, 16] {
        let m = RmatParams::MED_SKEW.generate(scale, 16, 3);
        group.throughput(Throughput::Elements(m.nnz() as u64));
        group.bench_with_input(BenchmarkId::new("extract", format!("2^{scale}")), &m, |b, m| {
            b.iter(|| FeatureVector::extract(m, &FeatureConfig::default()));
        });
    }
    group.finish();

    // Thread sweep at the reference scale, allocation-free inner loop.
    let m = RmatParams::MED_SKEW.generate(13, 16, 3);
    let mut group = c.benchmark_group("feature_extraction_threads");
    group.throughput(Throughput::Elements(m.nnz() as u64));
    let mut sweep = vec![1usize, 2];
    let all = default_threads();
    if !sweep.contains(&all) {
        sweep.push(all);
    }
    for threads in sweep {
        let cfg = FeatureConfig { threads, ..FeatureConfig::default() };
        group.bench_with_input(
            BenchmarkId::new("extract", format!("2^13 t{threads}")),
            &m,
            |b, m| {
                let mut scratch = FeatureScratch::new();
                b.iter(|| FeatureVector::extract_with(m, &cfg, &mut scratch));
            },
        );
    }
    group.finish();

    // The seed implementation, kept as the parity oracle: benchmark it
    // so the fused engine's speedup stays visible in CI history.
    let mut group = c.benchmark_group("feature_extraction_reference");
    group.throughput(Throughput::Elements(m.nnz() as u64));
    group.bench_with_input(BenchmarkId::new("extract_reference", "2^13"), &m, |b, m| {
        b.iter(|| FeatureVector::extract_reference(m, &FeatureConfig::default()));
    });
    group.finish();
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
