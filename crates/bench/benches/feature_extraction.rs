//! Criterion benchmark of WISE feature extraction — the per-matrix cost
//! a deployed WISE pays before prediction (half of Fig. 13c's
//! overhead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wise_features::{FeatureConfig, FeatureVector};
use wise_gen::RmatParams;

fn bench_features(c: &mut Criterion) {
    let mut group = c.benchmark_group("feature_extraction");
    for scale in [11u32, 13] {
        let m = RmatParams::MED_SKEW.generate(scale, 16, 3);
        group.throughput(Throughput::Elements(m.nnz() as u64));
        group.bench_with_input(BenchmarkId::new("extract", format!("2^{scale}")), &m, |b, m| {
            b.iter(|| FeatureVector::extract(m, &FeatureConfig::default()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
