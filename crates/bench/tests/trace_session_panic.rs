//! A panicking bin must still leave a loadable trace: `TraceSession`
//! flushes from `Drop`, which runs during unwinding, and the exporter
//! closes whatever spans the panic left open (`balanced_events`).

use std::path::PathBuf;
use wise_bench::report::TraceSession;
use wise_trace::export::validate_chrome_trace;

#[test]
fn panicking_run_still_writes_a_valid_trace() {
    // Unique directory: write_trace_files puts perf_summary.json next
    // to the trace, so sharing temp_dir with other tests would race.
    let mut dir = std::env::temp_dir();
    dir.push(format!("wise_panic_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path: PathBuf = dir.join("t.json");
    let _ = std::fs::remove_file(&trace_path);

    wise_trace::set_enabled(true);
    let result = std::panic::catch_unwind(|| {
        let _session = TraceSession::with_path(Some(trace_path.clone()));
        let _outer = wise_trace::span("panic_test.outer");
        wise_trace::counter("panic_test.progress", 7);
        // An *open* span at panic time: forget the guard so no End
        // event is ever recorded for it.
        std::mem::forget(wise_trace::span("panic_test.mid_flight"));
        panic!("simulated mid-benchmark crash");
        // _session drops during unwinding and must flush everything.
    });
    assert!(result.is_err(), "the closure must actually panic");

    let text = std::fs::read_to_string(&trace_path)
        .expect("TraceSession::drop should have written the trace during unwinding");
    let n_events = validate_chrome_trace(&text).expect("emitted trace must validate");
    assert!(n_events >= 4, "expected begin/end pairs for both spans, got {n_events} events");
    // The span that was open at panic time is present and closed.
    assert!(text.contains("panic_test.mid_flight"), "open span missing from trace:\n{text}");

    let summary_path = dir.join("perf_summary.json");
    let summary_text =
        std::fs::read_to_string(&summary_path).expect("perf summary written alongside the trace");
    assert!(summary_text.contains("panic_test.mid_flight"));

    let _ = std::fs::remove_dir_all(&dir);
}
