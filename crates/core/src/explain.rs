//! "Why this method won": a human-readable account of one selection.
//!
//! A [`Choice`] carries the decision path of all 29 classifier votes
//! ([`wise_ml::DecisionPath`]); [`explain_choice`] turns that into the
//! report section `bench_regress` (and any other caller) prints — the
//! winner with its predicted class, how the tie among same-class
//! candidates was broken, and the winning classifier's root-to-leaf
//! walk with feature names resolved through
//! [`wise_features::FeatureVector::names`].

use crate::cascade::{CascadeInfo, CascadeStage, FallthroughReason};
use crate::pipeline::Choice;
use std::fmt::Write as _;
use wise_features::FeatureVector;
use wise_kernels::method::MethodConfig;

/// One line of cascade provenance: which stage answered and why.
fn render_cascade(out: &mut String, info: &CascadeInfo) {
    let threshold = match info.threshold {
        Some(t) => format!("{t:.3}"),
        None => "none".to_string(),
    };
    match info.stage {
        CascadeStage::Stage1 => {
            let margin = if info.margin == f64::MAX {
                "exact (all heads reached leaves)".to_string()
            } else {
                format!("{:.3}", info.margin)
            };
            let _ = writeln!(
                out,
                "cascade: answered by the stage-1 fast path (margin {margin} >= threshold \
                 {threshold})"
            );
            if let Some(p) = info.predicted_seconds {
                let _ = writeln!(out, "cascade: roofline-predicted runtime ~{p:.3e} s/iteration");
            }
        }
        CascadeStage::Stage2 => {
            let reason = match info.fallthrough {
                Some(FallthroughReason::NoThreshold) => "no calibrated threshold",
                Some(FallthroughReason::LowMargin) => "stage-1 margin below threshold",
                Some(FallthroughReason::EstimatorVeto) => "roofline estimator veto",
                None => "unrecorded reason",
            };
            let _ = writeln!(
                out,
                "cascade: fell through to the full pipeline ({reason}; margin {:.3}, threshold \
                 {threshold})",
                info.margin
            );
        }
    }
}

/// Renders the "why this method won" section for a selection over
/// `catalog` (the catalog the producing registry was trained on;
/// `catalog[choice.index]` must be the chosen configuration).
///
/// Deserialized pre-explainability choices (empty `decision_paths`)
/// still render — the winner and tie-break lines don't need paths —
/// with a note in place of the walk.
pub fn explain_choice(catalog: &[MethodConfig], choice: &Choice) -> String {
    assert_eq!(catalog.len(), choice.predictions.len(), "catalog/prediction length mismatch");
    let mut out = String::from("== why this method won ==\n");
    let winner_class = choice.predictions[choice.index];
    let _ = writeln!(
        out,
        "winner: {} (predicted {winner_class:?}, ~{:.2}x vs best CSR)",
        choice.config.label(),
        winner_class.representative_speedup()
    );
    if let Some(info) = &choice.cascade {
        render_cascade(&mut out, info);
    }

    // Who else predicted the same class, and why they lost: the
    // selection heuristic breaks class ties toward cheaper
    // preprocessing (smaller preproc_key).
    let peers: Vec<&MethodConfig> = catalog
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != choice.index && choice.predictions[i] == winner_class)
        .map(|(_, cfg)| cfg)
        .collect();
    if peers.is_empty() {
        let _ = writeln!(out, "margin: only configuration predicted in class {winner_class:?}");
    } else {
        let shown = peers.iter().map(|c| c.label()).take(4).collect::<Vec<_>>().join(", ");
        let more =
            if peers.len() > 4 { format!(" (+{} more)", peers.len() - 4) } else { String::new() };
        let _ = writeln!(
            out,
            "tie-break: beat {} same-class candidate(s) on cheaper preprocessing: {shown}{more}",
            peers.len()
        );
    }

    match choice.winning_path() {
        Some(path) => {
            let _ = writeln!(out, "winning classifier's decision path ({} steps):", path.depth());
            let names = FeatureVector::names();
            let rendered =
                path.render(|i| names.get(i as usize).cloned().unwrap_or_else(|| format!("f{i}")));
            for line in rendered.lines() {
                let _ = writeln!(out, "  {line}");
            }
        }
        None => {
            out.push_str("(no decision paths recorded: pre-explainability choice)\n");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{TrainOptions, Wise};
    use wise_gen::{Corpus, CorpusScale};

    #[test]
    fn explanation_names_the_winner_and_walk() {
        let scale = CorpusScale::tiny();
        let corpus = Corpus::random(&scale, 11);
        let wise = Wise::train(&corpus, &TrainOptions::for_scale(&scale));
        let m = wise_gen::RmatParams::HIGH_SKEW.generate(9, 16, 77);
        let choice = wise.select(&m);
        let text = explain_choice(wise.registry().catalog(), &choice);
        assert!(text.contains("winner: "), "{text}");
        assert!(text.contains(&choice.config.label()), "{text}");
        assert!(text.contains("decision path"), "{text}");
        assert!(text.contains("leaf: class"), "{text}");
        // Real feature names appear, not f<i> fallbacks.
        assert!(!text.contains("f0 ="), "{text}");
    }

    #[test]
    fn cascade_provenance_is_rendered() {
        use crate::cascade::{self, CascadeGate, CascadeStage, FallthroughReason};
        cascade::set_mode(cascade::CascadeMode::Auto);
        let scale = CorpusScale::tiny();
        let corpus = Corpus::random(&scale, 11);
        let gate = CascadeGate {
            threshold: Some(0.0),
            machine: None,
            calibration_p_ratio: 1.0,
            full_p_ratio: 1.0,
            calibration_accept_rate: 1.0,
        };
        let wise =
            Wise::train(&corpus, &TrainOptions::for_scale(&scale)).with_cascade_gate(Some(gate));
        let m = wise_gen::RmatParams::HIGH_SKEW.generate(9, 16, 77);
        let choice = wise.select(&m);
        let info = choice.cascade.as_ref().expect("forced-accept gate answers in stage 1");
        assert_eq!(info.stage, CascadeStage::Stage1);
        let text = explain_choice(wise.registry().catalog(), &choice);
        assert!(text.contains("cascade: answered by the stage-1 fast path"), "{text}");

        // And a fallthrough explains why it declined.
        let gate = CascadeGate {
            threshold: None,
            machine: None,
            calibration_p_ratio: 1.0,
            full_p_ratio: 1.0,
            calibration_accept_rate: 1.0,
        };
        let wise = wise.with_cascade_gate(Some(gate));
        let through = wise.select(&m);
        let info = through.cascade.as_ref().unwrap();
        assert_eq!(info.fallthrough, Some(FallthroughReason::NoThreshold));
        let text = explain_choice(wise.registry().catalog(), &through);
        assert!(text.contains("cascade: fell through"), "{text}");
        assert!(text.contains("no calibrated threshold"), "{text}");
    }

    #[test]
    fn pathless_choice_still_explains() {
        let scale = CorpusScale::tiny();
        let corpus = Corpus::random(&scale, 11);
        let wise = Wise::train(&corpus, &TrainOptions::for_scale(&scale));
        let m = wise_gen::RmatParams::LOW_LOC.generate(8, 4, 5);
        let mut choice = wise.select(&m);
        choice.decision_paths.clear(); // a pre-explainability payload
        let text = explain_choice(wise.registry().catalog(), &choice);
        assert!(text.contains("winner: "), "{text}");
        assert!(text.contains("pre-explainability"), "{text}");
    }
}
