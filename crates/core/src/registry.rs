//! The 29-model registry: one decision tree per catalog configuration
//! (paper Section 4.3), with JSON persistence.

use crate::classes::{SpeedupClass, N_CLASSES};
use crate::labels::CorpusLabels;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;
use wise_features::FeatureVector;
use wise_kernels::method::MethodConfig;
use wise_ml::{Dataset, DecisionTree, FeatureMatrix, Presort, TreeParams};

/// The trained per-configuration performance models.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelRegistry {
    catalog: Vec<MethodConfig>,
    /// One tree per catalog entry, same order.
    trees: Vec<DecisionTree>,
    params: TreeParams,
}

impl ModelRegistry {
    /// Trains every model on the labeled corpus. All 29 datasets are
    /// label views over one shared [`FeatureMatrix`], and the columnar
    /// presort layer is built once and reused by every fit (the sort
    /// order depends only on feature values, not labels).
    pub fn train(labels: &CorpusLabels, params: TreeParams) -> ModelRegistry {
        let _span = wise_trace::span("train.registry");
        wise_trace::counter("train.registry.models", labels.catalog.len() as u64);
        assert!(!labels.is_empty(), "cannot train on an empty corpus");
        let matrix = Self::feature_matrix(labels);
        let base_rows: Vec<u32> = (0..matrix.n_rows() as u32).collect();
        let presort = Presort::build(&matrix, &base_rows);
        let trees: Vec<DecisionTree> = (0..labels.catalog.len())
            .into_par_iter()
            .map(|cfg_idx| {
                let _tree = wise_trace::span("train.tree");
                let y: Vec<u32> =
                    labels.matrices.iter().map(|m| m.classes[cfg_idx].index()).collect();
                let ds = Dataset::from_matrix(Arc::clone(&matrix), y, N_CLASSES);
                DecisionTree::fit_with(&ds, &presort, params)
            })
            .collect();
        ModelRegistry { catalog: labels.catalog.clone(), trees, params }
    }

    /// The corpus' feature matrix (one row per labeled matrix), built
    /// once and shared by every per-configuration dataset view.
    pub fn feature_matrix(labels: &CorpusLabels) -> Arc<FeatureMatrix> {
        Arc::new(FeatureMatrix::from_row_slices(
            labels.matrices.len(),
            labels.matrices.iter().map(|m| m.features.values()),
        ))
    }

    /// The per-configuration training dataset as a label view over
    /// `matrix` (from [`Self::feature_matrix`]; no feature copies).
    pub fn dataset_for_matrix(
        matrix: &Arc<FeatureMatrix>,
        labels: &CorpusLabels,
        cfg_idx: usize,
    ) -> Dataset {
        let y: Vec<u32> = labels.matrices.iter().map(|m| m.classes[cfg_idx].index()).collect();
        Dataset::from_matrix(Arc::clone(matrix), y, N_CLASSES)
    }

    /// Builds the per-configuration training dataset (exposed for
    /// cross-validation in the evaluation harness). Builds a fresh
    /// matrix; when iterating over configurations, build the matrix
    /// once with [`Self::feature_matrix`] and use
    /// [`Self::dataset_for_matrix`].
    pub fn dataset_for(labels: &CorpusLabels, cfg_idx: usize) -> Dataset {
        Self::dataset_for_matrix(&Self::feature_matrix(labels), labels, cfg_idx)
    }

    pub fn catalog(&self) -> &[MethodConfig] {
        &self.catalog
    }

    pub fn params(&self) -> &TreeParams {
        &self.params
    }

    pub fn tree(&self, cfg_idx: usize) -> &DecisionTree {
        &self.trees[cfg_idx]
    }

    /// Predicts the speedup class of every configuration for a feature
    /// vector, in catalog order.
    pub fn predict(&self, features: &FeatureVector) -> Vec<SpeedupClass> {
        self.trees.iter().map(|t| SpeedupClass::from_index(t.predict(features.values()))).collect()
    }

    /// [`ModelRegistry::predict`] plus the root-to-leaf decision path of
    /// every classifier vote (catalog order), so selections can explain
    /// themselves. Each path's `leaf_class` is the prediction; the two
    /// vectors are index-aligned with the catalog.
    pub fn predict_explained(
        &self,
        features: &FeatureVector,
    ) -> (Vec<SpeedupClass>, Vec<wise_ml::DecisionPath>) {
        let paths: Vec<wise_ml::DecisionPath> =
            self.trees.iter().map(|t| t.decision_path(features.values())).collect();
        let predictions = paths.iter().map(|p| SpeedupClass::from_index(p.leaf_class)).collect();
        (predictions, paths)
    }

    /// Partial prediction of every head over an incompletely-known
    /// feature row (catalog order) — the stage-1 vote of the selection
    /// cascade. Each tree walks until its first split on an unknown
    /// (`None`) feature; see
    /// [`wise_ml::DecisionTree::predict_partial`].
    pub fn predict_partial(&self, known: &[Option<f64>]) -> Vec<wise_ml::PartialPrediction> {
        self.trees.iter().map(|t| t.predict_partial(known)).collect()
    }

    /// [`ModelRegistry::predict_partial`] plus the partial walk of
    /// every head, so stage-1 selections stay as auditable as full
    /// ones (each path terminates at the stopping node).
    pub fn predict_partial_explained(
        &self,
        known: &[Option<f64>],
    ) -> (Vec<wise_ml::PartialPrediction>, Vec<wise_ml::DecisionPath>) {
        let mut partials = Vec::with_capacity(self.trees.len());
        let mut paths = Vec::with_capacity(self.trees.len());
        for t in &self.trees {
            let (p, path) = t.predict_partial_explained(known);
            partials.push(p);
            paths.push(path);
        }
        (partials, paths)
    }

    /// Serializes to pretty JSON at `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let json = serde_json::to_string(self).expect("registry serializes");
        std::fs::write(path, json)
    }

    /// Loads a registry saved by [`Self::save`].
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<ModelRegistry> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::label_corpus;
    use wise_features::FeatureConfig;
    use wise_gen::{Corpus, CorpusScale};
    use wise_perf::Estimator;

    fn labeled() -> CorpusLabels {
        let corpus = Corpus::random(&CorpusScale::tiny(), 4);
        label_corpus(&corpus, &Estimator::model_for_rows(1 << 10), &FeatureConfig::default())
    }

    #[test]
    fn train_and_predict_shapes() {
        let labels = labeled();
        let reg = ModelRegistry::train(&labels, TreeParams::default());
        assert_eq!(reg.catalog().len(), 29);
        let preds = reg.predict(&labels.matrices[0].features);
        assert_eq!(preds.len(), 29);
    }

    #[test]
    fn training_fit_is_strong_on_train_set() {
        // With unpruned deep trees, training accuracy should be very
        // high (features nearly identify each matrix).
        let labels = labeled();
        let params = TreeParams { max_depth: 30, ccp_alpha: 0.0, ..Default::default() };
        let reg = ModelRegistry::train(&labels, params);
        let mut correct = 0usize;
        let mut total = 0usize;
        for m in &labels.matrices {
            let preds = reg.predict(&m.features);
            for (p, t) in preds.iter().zip(&m.classes) {
                total += 1;
                if p == t {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.95, "train accuracy {acc}");
    }

    #[test]
    fn predict_explained_matches_predict() {
        let labels = labeled();
        let reg = ModelRegistry::train(&labels, TreeParams::default());
        for m in labels.matrices.iter().take(4) {
            let plain = reg.predict(&m.features);
            let (preds, paths) = reg.predict_explained(&m.features);
            assert_eq!(preds, plain);
            assert_eq!(paths.len(), 29);
            for (p, path) in preds.iter().zip(&paths) {
                assert_eq!(p.index(), path.leaf_class);
                assert!(path.leaf_samples > 0, "leaf must carry training support");
            }
        }
    }

    #[test]
    fn predict_partial_with_full_knowledge_matches_predict() {
        let labels = labeled();
        let reg = ModelRegistry::train(&labels, TreeParams::default());
        for m in labels.matrices.iter().take(4) {
            let known: Vec<Option<f64>> = m.features.values().iter().map(|&v| Some(v)).collect();
            let partials = reg.predict_partial(&known);
            let plain = reg.predict(&m.features);
            assert_eq!(partials.len(), 29);
            for (p, full) in partials.iter().zip(&plain) {
                assert!(p.reached_leaf);
                assert_eq!(p.confidence, 1.0);
                assert_eq!(SpeedupClass::from_index(p.class), *full);
            }
            let (explained, paths) = reg.predict_partial_explained(&known);
            assert_eq!(explained, partials);
            assert_eq!(paths.len(), 29);
            for (p, path) in partials.iter().zip(&paths) {
                assert_eq!(p.class, path.leaf_class);
            }
        }
    }

    #[test]
    fn probe_masked_partial_vote_never_exceeds_full_knowledge() {
        // Masking features can only stop walks early; where a walk does
        // reach a leaf, the class must equal the full prediction.
        let labels = labeled();
        let reg = ModelRegistry::train(&labels, TreeParams::default());
        for m in labels.matrices.iter().take(6) {
            let masked = wise_features::ProbeFeatures::mask_full(&m.features);
            let partials = reg.predict_partial(&masked);
            let full = reg.predict(&m.features);
            for (p, f) in partials.iter().zip(&full) {
                if p.reached_leaf {
                    assert_eq!(SpeedupClass::from_index(p.class), *f);
                }
                assert!((0.0..=1.0).contains(&p.confidence));
            }
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let labels = labeled();
        let reg = ModelRegistry::train(&labels, TreeParams::default());
        let path = std::env::temp_dir().join("wise_registry_test.json");
        reg.save(&path).unwrap();
        let back = ModelRegistry::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        for m in &labels.matrices {
            assert_eq!(reg.predict(&m.features), back.predict(&m.features));
        }
    }

    #[test]
    #[should_panic(expected = "empty corpus")]
    fn empty_corpus_rejected() {
        let empty = CorpusLabels { catalog: MethodConfig::catalog(), matrices: vec![] };
        ModelRegistry::train(&empty, TreeParams::default());
    }
}
