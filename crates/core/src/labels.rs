//! Ground-truth label generation: execution times for every catalog
//! configuration on every corpus matrix, and the derived speedup
//! classes.
//!
//! Labels come from an [`Estimator`] — the deterministic machine model
//! by default, wall-clock measurement with `WISE_MEASURED=1`. Label
//! generation is the expensive offline step of the WISE workflow (it is
//! what the trained models let end users skip).

use crate::classes::SpeedupClass;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use wise_features::{FeatureConfig, FeatureScratch, FeatureVector};
use wise_gen::Corpus;
use wise_kernels::method::{Method, MethodConfig};
use wise_matrix::Csr;
use wise_perf::Estimator;

/// Times, classes and features for one matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatrixLabels {
    /// Matrix name (from the corpus).
    pub name: String,
    /// Seconds per catalog configuration, catalog order.
    pub seconds: Vec<f64>,
    /// Best CSR seconds (the class denominator).
    pub best_csr_seconds: f64,
    /// Speedup class per configuration, catalog order.
    pub classes: Vec<SpeedupClass>,
    /// Extracted features.
    pub features: FeatureVector,
    /// Modeled/measured preprocessing seconds per configuration.
    pub preprocessing_seconds: Vec<f64>,
    /// Cold-cache first-iteration seconds per configuration — what a
    /// trial-executing inspector-executor observes (Section 6.4).
    pub cold_seconds: Vec<f64>,
    /// Seconds to extract the feature vector (the WISE-specific half of
    /// preprocessing, Fig. 13c).
    pub feature_extraction_seconds: f64,
}

impl MatrixLabels {
    /// Labels one matrix under `estimator`, over the standard catalog.
    pub fn compute(
        name: &str,
        m: &Csr,
        estimator: &Estimator,
        feature_config: &FeatureConfig,
    ) -> MatrixLabels {
        Self::compute_with(name, m, estimator, feature_config, &MethodConfig::catalog())
    }

    /// Labels one matrix over an arbitrary configuration catalog — the
    /// extension point of the paper (Section 7): adding a new method is
    /// adding entries to the catalog and training their models; the
    /// existing models are untouched.
    pub fn compute_with(
        name: &str,
        m: &Csr,
        estimator: &Estimator,
        feature_config: &FeatureConfig,
        catalog: &[MethodConfig],
    ) -> MatrixLabels {
        Self::compute_scoped(
            name,
            m,
            estimator,
            feature_config,
            catalog,
            &mut FeatureScratch::new(),
        )
    }

    /// [`Self::compute_with`] reusing a caller-owned extraction
    /// workspace, so labeling many matrices on one thread stays
    /// allocation-lean.
    pub fn compute_scoped(
        name: &str,
        m: &Csr,
        estimator: &Estimator,
        feature_config: &FeatureConfig,
        catalog: &[MethodConfig],
        scratch: &mut FeatureScratch,
    ) -> MatrixLabels {
        let _span = wise_trace::span("label.matrix");
        assert!(
            catalog.iter().any(|c| c.method == Method::Csr),
            "catalog must include a CSR configuration (the speedup-class baseline)"
        );
        let pairs: Vec<(f64, f64)> =
            catalog.iter().map(|cfg| estimator.spmv_seconds_pair(m, cfg)).collect();
        let seconds: Vec<f64> = pairs.iter().map(|&(s, _)| s).collect();
        let cold_seconds: Vec<f64> = pairs.iter().map(|&(_, c)| c).collect();
        let best_csr_seconds = catalog
            .iter()
            .zip(&seconds)
            .filter(|(cfg, _)| cfg.method == Method::Csr)
            .map(|(_, &t)| t)
            .fold(f64::MAX, f64::min);
        let classes = seconds
            .iter()
            .map(|&t| SpeedupClass::from_relative_time(t / best_csr_seconds))
            .collect();
        let preprocessing_seconds =
            catalog.iter().map(|cfg| estimator.preprocessing_seconds(m, cfg)).collect();
        MatrixLabels {
            name: name.to_string(),
            seconds,
            best_csr_seconds,
            classes,
            features: FeatureVector::extract_with(m, feature_config, scratch),
            preprocessing_seconds,
            cold_seconds,
            feature_extraction_seconds: estimator.feature_extraction_seconds(m),
        }
    }

    /// The configuration with the minimum time (the oracle choice) as a
    /// catalog index.
    pub fn oracle_index(&self) -> usize {
        self.seconds
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("catalog is non-empty")
    }

    /// Seconds of the configuration at catalog index `i`.
    pub fn seconds_of(&self, i: usize) -> f64 {
        self.seconds[i]
    }
}

/// Labels for a whole corpus, plus the catalog they index into.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusLabels {
    pub catalog: Vec<MethodConfig>,
    pub matrices: Vec<MatrixLabels>,
}

/// Labels every matrix of `corpus` in parallel (deterministic: output
/// order matches corpus order regardless of thread interleaving).
pub fn label_corpus(
    corpus: &Corpus,
    estimator: &Estimator,
    feature_config: &FeatureConfig,
) -> CorpusLabels {
    label_corpus_with(corpus, estimator, feature_config, MethodConfig::catalog())
}

/// [`label_corpus`] over an arbitrary configuration catalog (must
/// include at least one CSR configuration for the class denominator).
pub fn label_corpus_with(
    corpus: &Corpus,
    estimator: &Estimator,
    feature_config: &FeatureConfig,
    catalog: Vec<MethodConfig>,
) -> CorpusLabels {
    let _span = wise_trace::span("label.corpus");
    wise_trace::counter("label.corpus.matrices", corpus.len() as u64);
    assert!(
        catalog.iter().any(|c| c.method == Method::Csr),
        "catalog must include a CSR configuration (the speedup-class baseline)"
    );
    // Outer-parallel / inner-serial: rayon already spreads the corpus
    // across every core here, so the per-matrix feature extraction is
    // pinned to one thread — nested extraction parallelism would only
    // oversubscribe the machine. Features are bit-identical for any
    // thread count, so this is purely a scheduling decision. Each rayon
    // worker keeps one `FeatureScratch`, so extraction stops allocating
    // once the workspace has grown to the largest matrix.
    let serial = FeatureConfig { threads: 1, ..*feature_config };
    let matrices: Vec<MatrixLabels> = corpus
        .matrices
        .par_iter()
        .map_init(FeatureScratch::new, |scratch, lm| {
            MatrixLabels::compute_scoped(
                &lm.name, &lm.matrix, estimator, &serial, &catalog, scratch,
            )
        })
        .collect();
    CorpusLabels { catalog, matrices }
}

impl CorpusLabels {
    pub fn len(&self) -> usize {
        self.matrices.len()
    }

    pub fn is_empty(&self) -> bool {
        self.matrices.is_empty()
    }

    /// Catalog index of a configuration by label; panics if absent.
    pub fn config_index(&self, label: &str) -> usize {
        self.catalog
            .iter()
            .position(|c| c.label() == label)
            .unwrap_or_else(|| panic!("unknown config label {label}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wise_gen::CorpusScale;

    fn estimator() -> Estimator {
        Estimator::model_for_rows(1 << 10)
    }

    #[test]
    fn labels_are_complete_and_consistent() {
        let m = wise_gen::RmatParams::MED_SKEW.generate(9, 8, 3);
        let l = MatrixLabels::compute("t", &m, &estimator(), &FeatureConfig::default());
        assert_eq!(l.seconds.len(), 29);
        assert_eq!(l.classes.len(), 29);
        assert_eq!(l.preprocessing_seconds.len(), 29);
        assert!(l.best_csr_seconds > 0.0);
        // Classes match recomputation from times.
        for (t, c) in l.seconds.iter().zip(&l.classes) {
            assert_eq!(SpeedupClass::from_relative_time(t / l.best_csr_seconds), *c);
        }
        // Best CSR is one of the three CSR entries, so at least one CSR
        // config has relative time 1.0 => class C1.
        let catalog = MethodConfig::catalog();
        let csr_best_class = catalog
            .iter()
            .zip(&l.classes)
            .filter(|(cfg, _)| cfg.method == Method::Csr)
            .map(|(_, c)| *c)
            .max()
            .unwrap();
        assert!(csr_best_class >= SpeedupClass::C1);
    }

    #[test]
    fn oracle_is_minimum() {
        let m = wise_gen::RmatParams::HIGH_SKEW.generate(9, 16, 5);
        let l = MatrixLabels::compute("t", &m, &estimator(), &FeatureConfig::default());
        let i = l.oracle_index();
        for t in &l.seconds {
            assert!(l.seconds[i] <= *t);
        }
    }

    #[test]
    fn corpus_labeling_order_is_stable() {
        let corpus = Corpus::random(&CorpusScale::tiny(), 9);
        let labels = label_corpus(&corpus, &estimator(), &FeatureConfig::default());
        assert_eq!(labels.len(), corpus.len());
        for (lm, ml) in corpus.matrices.iter().zip(&labels.matrices) {
            assert_eq!(lm.name, ml.name);
        }
        assert_eq!(labels.config_index("CSR-Dyn"), 0);
    }

    #[test]
    #[should_panic(expected = "unknown config label")]
    fn unknown_label_panics() {
        let corpus = Corpus::random(&CorpusScale::tiny(), 9);
        let labels = label_corpus(&corpus, &estimator(), &FeatureConfig::default());
        labels.config_index("bogus");
    }
}
