//! Cross-validated end-to-end evaluation of WISE — the machinery behind
//! the paper's Sections 6.2–6.5 (Figures 10 and 13, Table 4, and the
//! MKL-IE comparison).
//!
//! Evaluation is strictly out-of-fold: every matrix's class predictions
//! come from models trained without it (10-fold CV as in Section 5),
//! and WISE's selection for that matrix uses only those held-out
//! predictions.

use crate::classes::{SpeedupClass, N_CLASSES};
use crate::labels::CorpusLabels;
use crate::registry::ModelRegistry;
use crate::select::select_index;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use wise_kernels::baseline::mkl_like_config;
use wise_ml::grid::cross_val_confusion_planned;
use wise_ml::{ConfusionMatrix, FeatureMatrix, FoldPlan, TreeParams};

/// Per-matrix outcome of the end-to-end evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalOutcome {
    pub name: String,
    /// Catalog indices of each selector's choice.
    pub wise_index: usize,
    pub oracle_index: usize,
    pub ie_index: usize,
    /// Steady-state seconds of each selection, plus references.
    pub wise_seconds: f64,
    pub oracle_seconds: f64,
    pub ie_seconds: f64,
    pub mkl_seconds: f64,
    pub best_csr_seconds: f64,
    /// WISE preprocessing: feature extraction + conversion of the
    /// chosen format.
    pub wise_preproc_seconds: f64,
    /// IE preprocessing: every conversion + every cold trial.
    pub ie_preproc_seconds: f64,
}

impl EvalOutcome {
    /// Speedup of WISE's choice over the MKL baseline.
    pub fn wise_speedup_over_mkl(&self) -> f64 {
        self.mkl_seconds / self.wise_seconds
    }

    /// Speedup of the oracle over the MKL baseline.
    pub fn oracle_speedup_over_mkl(&self) -> f64 {
        self.mkl_seconds / self.oracle_seconds
    }

    /// Speedup of the inspector-executor choice over MKL.
    pub fn ie_speedup_over_mkl(&self) -> f64 {
        self.mkl_seconds / self.ie_seconds
    }

    /// WISE preprocessing expressed in MKL SpMV iterations (the paper's
    /// Fig. 13c unit).
    pub fn wise_overhead_mkl_iters(&self) -> f64 {
        self.wise_preproc_seconds / self.mkl_seconds
    }

    /// IE preprocessing in MKL iterations.
    pub fn ie_overhead_mkl_iters(&self) -> f64 {
        self.ie_preproc_seconds / self.mkl_seconds
    }
}

/// Full result of a cross-validated evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CvEvaluation {
    /// Per-matrix outcomes, corpus order.
    pub outcomes: Vec<EvalOutcome>,
    /// Combined 10-fold confusion matrix per catalog configuration.
    pub confusions: Vec<ConfusionMatrix>,
    /// Out-of-fold predicted class per matrix (outer) per configuration
    /// (inner, catalog order).
    pub predictions: Vec<Vec<SpeedupClass>>,
}

impl CvEvaluation {
    /// Arithmetic mean of WISE's speedup over MKL (the paper's headline
    /// 2.4x).
    pub fn mean_wise_speedup(&self) -> f64 {
        mean(self.outcomes.iter().map(|o| o.wise_speedup_over_mkl()))
    }

    /// Mean oracle speedup over MKL (the paper's 2.5x ceiling).
    pub fn mean_oracle_speedup(&self) -> f64 {
        mean(self.outcomes.iter().map(|o| o.oracle_speedup_over_mkl()))
    }

    /// Mean IE speedup over MKL (the paper measures 2.11x).
    pub fn mean_ie_speedup(&self) -> f64 {
        mean(self.outcomes.iter().map(|o| o.ie_speedup_over_mkl()))
    }

    /// Mean WISE preprocessing overhead in MKL iterations (paper: 8.33).
    pub fn mean_wise_overhead_iters(&self) -> f64 {
        mean(self.outcomes.iter().map(|o| o.wise_overhead_mkl_iters()))
    }

    /// Mean IE preprocessing overhead in MKL iterations (paper: 17.43).
    pub fn mean_ie_overhead_iters(&self) -> f64 {
        mean(self.outcomes.iter().map(|o| o.ie_overhead_mkl_iters()))
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let mut n = 0usize;
    let mut acc = 0.0;
    for v in it {
        acc += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        acc / n as f64
    }
}

/// The reusable, label-independent half of a cross-validated
/// evaluation: the corpus feature matrix plus the [`FoldPlan`] (fold
/// split + per-fold presorted columnar layer). Build once per
/// `(corpus, k, seed)` and evaluate any number of tree configurations
/// against it — the Table 4 sweep reuses one plan for all 24 cells, so
/// each fold's feature columns are sorted exactly once for the whole
/// grid.
#[derive(Debug, Clone)]
pub struct CvPlan {
    matrix: Arc<FeatureMatrix>,
    plan: FoldPlan,
}

impl CvPlan {
    /// Builds the matrix and fold presorts for `labels`.
    pub fn build(labels: &CorpusLabels, k: usize, seed: u64) -> CvPlan {
        assert!(labels.len() >= k, "need at least k matrices for k-fold CV");
        let matrix = ModelRegistry::feature_matrix(labels);
        let base_rows: Vec<u32> = (0..matrix.n_rows() as u32).collect();
        let plan = FoldPlan::build(&matrix, &base_rows, k, seed);
        CvPlan { matrix, plan }
    }

    pub fn matrix(&self) -> &Arc<FeatureMatrix> {
        &self.matrix
    }

    pub fn fold_plan(&self) -> &FoldPlan {
        &self.plan
    }
}

/// Runs the full cross-validated evaluation on a labeled corpus.
/// Builds a fresh [`CvPlan`]; when sweeping tree configurations (e.g.
/// Table 4), build the plan once and call [`evaluate_cv_planned`].
pub fn evaluate_cv(
    labels: &CorpusLabels,
    tree_params: TreeParams,
    k: usize,
    seed: u64,
) -> CvEvaluation {
    evaluate_cv_planned(labels, &CvPlan::build(labels, k, seed), tree_params)
}

/// [`evaluate_cv`] against a prebuilt [`CvPlan`] (shared matrix and
/// fold presorts; no per-call sorting).
pub fn evaluate_cv_planned(
    labels: &CorpusLabels,
    plan: &CvPlan,
    tree_params: TreeParams,
) -> CvEvaluation {
    let n_cfg = labels.catalog.len();

    // Out-of-fold predictions + confusion per configuration.
    let per_cfg: Vec<(Vec<(u32, u32)>, ConfusionMatrix)> = (0..n_cfg)
        .into_par_iter()
        .map(|cfg_idx| {
            let ds = ModelRegistry::dataset_for_matrix(&plan.matrix, labels, cfg_idx);
            cross_val_confusion_planned(&plan.plan, &ds, tree_params)
        })
        .collect();
    let confusions: Vec<ConfusionMatrix> = per_cfg.iter().map(|(_, c)| c.clone()).collect();

    // Transpose to per-matrix prediction vectors.
    let predictions: Vec<Vec<SpeedupClass>> = (0..labels.len())
        .map(|mi| (0..n_cfg).map(|ci| SpeedupClass::from_index(per_cfg[ci].0[mi].1)).collect())
        .collect();

    let mkl_index = labels.config_index(&mkl_like_config().label());
    let outcomes = labels
        .matrices
        .iter()
        .zip(&predictions)
        .map(|(ml, preds)| {
            let wise_index = select_index(&labels.catalog, preds);
            let oracle_index = ml.oracle_index();
            // IE picks by its cold trials, then runs steady state.
            let ie_index = ml
                .cold_seconds
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("non-empty catalog");
            let ie_preproc_seconds =
                ml.preprocessing_seconds.iter().sum::<f64>() + ml.cold_seconds.iter().sum::<f64>();
            EvalOutcome {
                name: ml.name.clone(),
                wise_index,
                oracle_index,
                ie_index,
                wise_seconds: ml.seconds[wise_index],
                oracle_seconds: ml.seconds[oracle_index],
                ie_seconds: ml.seconds[ie_index],
                mkl_seconds: ml.seconds[mkl_index],
                best_csr_seconds: ml.best_csr_seconds,
                wise_preproc_seconds: ml.feature_extraction_seconds
                    + ml.preprocessing_seconds[wise_index],
                ie_preproc_seconds,
            }
        })
        .collect();

    CvEvaluation { outcomes, confusions, predictions }
}

/// Sanity helper used by tests and the Table 4 harness: the evaluation
/// run with every class predicted perfectly (upper bound on what the
/// trees can deliver).
pub fn evaluate_with_perfect_predictions(labels: &CorpusLabels) -> CvEvaluation {
    let predictions: Vec<Vec<SpeedupClass>> =
        labels.matrices.iter().map(|m| m.classes.clone()).collect();
    let confusions = (0..labels.catalog.len())
        .map(|ci| {
            ConfusionMatrix::from_pairs(
                N_CLASSES,
                labels.matrices.iter().map(|m| {
                    let c = m.classes[ci].index();
                    (c, c)
                }),
            )
        })
        .collect();
    let mkl_index = labels.config_index(&mkl_like_config().label());
    let outcomes = labels
        .matrices
        .iter()
        .zip(&predictions)
        .map(|(ml, preds)| {
            let wise_index = select_index(&labels.catalog, preds);
            let oracle_index = ml.oracle_index();
            let ie_index = oracle_index; // irrelevant for this helper
            EvalOutcome {
                name: ml.name.clone(),
                wise_index,
                oracle_index,
                ie_index,
                wise_seconds: ml.seconds[wise_index],
                oracle_seconds: ml.seconds[oracle_index],
                ie_seconds: ml.seconds[ie_index],
                mkl_seconds: ml.seconds[mkl_index],
                best_csr_seconds: ml.best_csr_seconds,
                wise_preproc_seconds: ml.feature_extraction_seconds
                    + ml.preprocessing_seconds[wise_index],
                ie_preproc_seconds: 0.0,
            }
        })
        .collect();
    CvEvaluation { outcomes, confusions, predictions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::label_corpus;
    use wise_features::FeatureConfig;
    use wise_gen::{Corpus, CorpusScale};
    use wise_perf::Estimator;

    fn labeled() -> CorpusLabels {
        let corpus = Corpus::full(&CorpusScale::tiny(), 21);
        // `threads: 0` lets extraction resolve its own worker count, but
        // the labeling loop overrides it to 1 (outer-parallel /
        // inner-serial — see `label_corpus_with`); evaluation results
        // are identical for any setting.
        let cfg = FeatureConfig { threads: 0, ..FeatureConfig::default() };
        label_corpus(&corpus, &Estimator::model_for_rows(1 << 10), &cfg)
    }

    #[test]
    fn cv_evaluation_is_complete() {
        let labels = labeled();
        let ev = evaluate_cv(&labels, TreeParams::default(), 5, 3);
        assert_eq!(ev.outcomes.len(), labels.len());
        assert_eq!(ev.confusions.len(), 29);
        for c in &ev.confusions {
            assert_eq!(c.total(), labels.len() as u64);
        }
        for o in &ev.outcomes {
            assert!(o.wise_seconds > 0.0);
            assert!(o.oracle_seconds <= o.wise_seconds + 1e-15);
            assert!(o.oracle_seconds <= o.mkl_seconds + 1e-15);
        }
    }

    #[test]
    fn oracle_dominates_wise_and_ie() {
        let labels = labeled();
        let ev = evaluate_cv(&labels, TreeParams::default(), 5, 3);
        assert!(ev.mean_oracle_speedup() >= ev.mean_wise_speedup() - 1e-12);
        assert!(ev.mean_oracle_speedup() >= ev.mean_ie_speedup() - 1e-12);
        assert!(ev.mean_oracle_speedup() >= 1.0);
    }

    #[test]
    fn ie_overhead_exceeds_wise_overhead() {
        // The paper's core efficiency claim: trial-everything costs far
        // more preprocessing than predict-then-convert.
        let labels = labeled();
        let ev = evaluate_cv(&labels, TreeParams::default(), 5, 3);
        assert!(
            ev.mean_ie_overhead_iters() > ev.mean_wise_overhead_iters(),
            "IE {} vs WISE {}",
            ev.mean_ie_overhead_iters(),
            ev.mean_wise_overhead_iters()
        );
    }

    #[test]
    fn perfect_predictions_upper_bound_cv() {
        let labels = labeled();
        let perfect = evaluate_with_perfect_predictions(&labels);
        let cv = evaluate_cv(&labels, TreeParams::default(), 5, 3);
        // Perfect class knowledge can't be slower on average than CV
        // predictions under the same selection rule... modulo the
        // coarseness of classes; allow small slack.
        assert!(perfect.mean_wise_speedup() >= cv.mean_wise_speedup() * 0.95);
        // And every confusion matrix is diagonal.
        for c in &perfect.confusions {
            assert_eq!(c.accuracy(), 1.0);
        }
    }

    #[test]
    fn planned_evaluation_matches_unplanned_across_params() {
        // One CvPlan reused for several grid cells must reproduce the
        // from-scratch evaluation exactly — the Table 4 fast path.
        let labels = labeled();
        let plan = CvPlan::build(&labels, 5, 3);
        for params in [
            TreeParams::default(),
            TreeParams { max_depth: 5, ccp_alpha: 0.0, ..Default::default() },
            TreeParams { max_depth: 20, ccp_alpha: 0.05, ..Default::default() },
        ] {
            let fresh = evaluate_cv(&labels, params, 5, 3);
            let planned = evaluate_cv_planned(&labels, &plan, params);
            assert_eq!(planned.predictions, fresh.predictions);
            assert_eq!(planned.confusions, fresh.confusions);
            assert_eq!(
                planned.outcomes.iter().map(|o| o.wise_index).collect::<Vec<_>>(),
                fresh.outcomes.iter().map(|o| o.wise_index).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn accuracy_is_reasonable_on_tiny_corpus() {
        let labels = labeled();
        let ev = evaluate_cv(&labels, TreeParams::default(), 5, 3);
        let mean_acc: f64 =
            ev.confusions.iter().map(|c| c.accuracy()).sum::<f64>() / ev.confusions.len() as f64;
        // Tiny corpus: demand only "clearly better than chance" (1/7).
        assert!(mean_acc > 0.4, "mean accuracy {mean_acc}");
    }
}
