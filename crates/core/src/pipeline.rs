//! The end-to-end WISE pipeline (paper Figure 8): feature extraction →
//! per-configuration class prediction → method selection → format
//! conversion → SpMV.

use crate::cascade::{self, CascadeGate, CascadeInfo, CascadeStage, FallthroughReason};
use crate::classes::SpeedupClass;
use crate::labels::{label_corpus, CorpusLabels};
use crate::registry::ModelRegistry;
use crate::select::select_index;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::Instant;
use wise_features::{FeatureConfig, FeatureVector, ProbeFeatures};
use wise_gen::{Corpus, CorpusScale};
use wise_kernels::method::{MethodConfig, Prepared};
use wise_kernels::srvpack::SpmvWorkspace;
use wise_matrix::Csr;
use wise_ml::TreeParams;
use wise_perf::Estimator;
use wise_trace::telemetry;

/// Everything needed to train a WISE instance.
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// Label backend (machine model or wall clock).
    pub estimator: Estimator,
    pub feature_config: FeatureConfig,
    pub tree_params: TreeParams,
}

impl TrainOptions {
    /// Defaults for a corpus scale: the machine model scaled to the
    /// corpus' largest matrices (respecting `WISE_MEASURED`), paper
    /// tree hyperparameters.
    pub fn for_scale(scale: &CorpusScale) -> TrainOptions {
        let max_rows = 1usize << scale.row_scales.iter().copied().max().unwrap_or(16);
        TrainOptions {
            estimator: Estimator::from_env(max_rows),
            feature_config: FeatureConfig::default(),
            tree_params: TreeParams::default(),
        }
    }
}

/// Wall-clock breakdown of the stages that produced a [`Choice`].
/// Always measured (a handful of `Instant` reads per selection), so
/// callers can report selection overhead without enabling tracing; the
/// same stages also appear as `select.*` spans in the trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ChoiceTiming {
    /// Seconds extracting the feature vector (0.0 when the caller
    /// passed pre-extracted features).
    pub feature_extraction_s: f64,
    /// Seconds running the per-configuration class predictions.
    pub predict_s: f64,
    /// Seconds in the selection heuristic (including, for
    /// [`Wise::select_for_iterations`], the preprocessing-cost
    /// estimates the amortized pick needs).
    pub select_s: f64,
}

impl ChoiceTiming {
    /// Total selection-side overhead in seconds (the cost a caller pays
    /// before the first SpMV, excluding format conversion).
    pub fn total_s(&self) -> f64 {
        self.feature_extraction_s + self.predict_s + self.select_s
    }
}

/// The outcome of WISE's selection step for one matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Choice {
    /// The selected configuration.
    pub config: MethodConfig,
    /// Catalog index of the selection.
    pub index: usize,
    /// Predicted class per catalog configuration.
    pub predictions: Vec<SpeedupClass>,
    /// Features extracted for the prediction.
    pub features: FeatureVector,
    /// Per-stage timing breakdown of this selection (absent in
    /// pre-observability serialized choices; defaults to zeros).
    #[serde(default)]
    pub timing: ChoiceTiming,
    /// Root-to-leaf decision path of every classifier vote, catalog
    /// order — `decision_paths[index]` explains the winning prediction
    /// (see [`crate::explain::explain_choice`]). Absent in
    /// pre-explainability serialized choices; defaults to empty.
    #[serde(default)]
    pub decision_paths: Vec<wise_ml::DecisionPath>,
    /// Cascade provenance: which stage answered, the stage-1 margin,
    /// and (on fallthrough) why. `None` when the cascade was off or
    /// the model carries no gate — those serializations stay
    /// byte-identical to pre-cascade ones.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub cascade: Option<CascadeInfo>,
    /// Flight-recorder request id of the selection that produced this
    /// choice (see [`wise_trace::telemetry`]), for correlating a saved
    /// choice with its flight-dump record. `0` — and absent from
    /// serializations — when telemetry was off, the selection was
    /// nested inside another request, or the JSON predates the
    /// recorder.
    #[serde(default, skip_serializing_if = "request_id_unset")]
    pub request_id: u64,
}

fn request_id_unset(id: &u64) -> bool {
    *id == 0
}

/// Attributes one public selection entry point to a flight-recorder
/// request: allocates the id, scopes it onto the calling thread (the
/// worker pool forwards it to kernel workers), and on [`Self::finish`]
/// records the completed request — latency, method, cascade stage,
/// margin, roofline prediction and PMU deltas — into
/// [`wise_trace::telemetry`]. Nested entry points (`select_full` →
/// `select_from_features`) see the outer id already set and record
/// nothing, so every public selection is exactly one request.
struct FlightRequest {
    id: u64,
    start_ns: u64,
    pmu_base: Option<wise_trace::PmuCounts>,
    _scope: Option<telemetry::RequestScope>,
}

impl FlightRequest {
    fn begin() -> FlightRequest {
        if !telemetry::telemetry_enabled() || telemetry::current_request() != 0 {
            return FlightRequest { id: 0, start_ns: 0, pmu_base: None, _scope: None };
        }
        let id = telemetry::next_request_id();
        FlightRequest {
            id,
            start_ns: telemetry::now_ns(),
            pmu_base: wise_trace::pmu::read_counts(),
            _scope: Some(telemetry::RequestScope::enter(id)),
        }
    }

    /// Stamps `choice.request_id` and records the request; returns
    /// whether the recorder flagged it anomalous.
    fn finish(self, choice: &mut Choice) -> bool {
        if self.id == 0 {
            return false;
        }
        choice.request_id = self.id;
        let (stage, margin, predicted_s) = match &choice.cascade {
            Some(info) => (
                match info.stage {
                    CascadeStage::Stage1 => "stage1",
                    CascadeStage::Stage2 => "stage2",
                },
                Some(info.margin),
                info.predicted_seconds,
            ),
            None => ("full", None, None),
        };
        let pmu = match (&self.pmu_base, wise_trace::pmu::read_counts()) {
            (Some(base), Some(now)) => Some(now.delta_since(base)),
            _ => None,
        };
        telemetry::record_request(telemetry::RequestRecord {
            id: self.id,
            start_ns: self.start_ns,
            latency_ns: telemetry::now_ns().saturating_sub(self.start_ns),
            method: choice.config.label(),
            stage,
            margin,
            predicted_s,
            measured_s: None,
            pmu,
        })
    }
}

impl Choice {
    /// The decision path of the winning classifier, when this choice
    /// was produced by an explainability-aware selection (deserialized
    /// pre-explainability choices return `None`).
    pub fn winning_path(&self) -> Option<&wise_ml::DecisionPath> {
        self.decision_paths.get(self.index)
    }
}

/// A trained WISE instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Wise {
    registry: ModelRegistry,
    feature_config: FeatureConfig,
    /// The stage-1 confidence gate of the selection cascade,
    /// calibrated at training time (see [`crate::cascade`]). Absent in
    /// models saved before the cascade existed — they load fine and
    /// simply always run the full pipeline.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    cascade_gate: Option<CascadeGate>,
}

impl Wise {
    /// Labels `corpus` with `opts.estimator`, then trains the 29
    /// models. For custom workflows (e.g. reusing labels), see
    /// [`Wise::from_labels`].
    pub fn train(corpus: &Corpus, opts: &TrainOptions) -> Wise {
        let labels = label_corpus(corpus, &opts.estimator, &opts.feature_config);
        Self::from_labels(&labels, opts)
    }

    /// Trains from pre-computed labels and calibrates the selection
    /// cascade's confidence gate on the same labels.
    pub fn from_labels(labels: &CorpusLabels, opts: &TrainOptions) -> Wise {
        let registry = ModelRegistry::train(labels, opts.tree_params);
        let gate = cascade::calibrate_gate(&registry, labels, &opts.estimator);
        Wise { registry, feature_config: opts.feature_config, cascade_gate: Some(gate) }
    }

    /// Wraps an existing registry. No training labels are available
    /// here, so the cascade gate is absent and selections always run
    /// the full pipeline.
    pub fn from_registry(registry: ModelRegistry, feature_config: FeatureConfig) -> Wise {
        Wise { registry, feature_config, cascade_gate: None }
    }

    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    pub fn feature_config(&self) -> &FeatureConfig {
        &self.feature_config
    }

    /// The calibrated cascade gate, if this instance carries one.
    pub fn cascade_gate(&self) -> Option<&CascadeGate> {
        self.cascade_gate.as_ref()
    }

    /// Replaces the cascade gate (tests, experiments; `None` disables
    /// the fast path for this instance regardless of `WISE_CASCADE`).
    pub fn with_cascade_gate(mut self, gate: Option<CascadeGate>) -> Wise {
        self.cascade_gate = gate;
        self
    }

    /// Runs steps 1–3 of Figure 8: extract features, predict classes,
    /// select the best configuration.
    ///
    /// When this instance carries a calibrated cascade gate and
    /// `WISE_CASCADE` is not `off`, selection is cascaded: a stage-1
    /// O(nnz) probe + partial tree vote answers immediately when its
    /// margin clears the gate (microseconds instead of the full
    /// extraction), falling through to the full pipeline otherwise —
    /// bit-identical to the non-cascaded result modulo the
    /// [`Choice::cascade`] provenance field.
    pub fn select(&self, m: &Csr) -> Choice {
        let _span = wise_trace::span_pmu("pipeline.select");
        let flight = FlightRequest::begin();
        let mut choice = self.select_cascaded(m);
        flight.finish(&mut choice);
        choice
    }

    /// [`Wise::select`] minus the span/flight bookkeeping: cascade
    /// dispatch with its early returns.
    fn select_cascaded(&self, m: &Csr) -> Choice {
        if cascade::mode() != cascade::CascadeMode::Off {
            if let Some(gate) = &self.cascade_gate {
                match self.select_stage_one(m, gate) {
                    Ok(choice) => {
                        wise_trace::counter("select.cascade.stage1", 1);
                        return choice;
                    }
                    Err((margin, reason)) => {
                        wise_trace::counter("select.cascade.stage2", 1);
                        wise_trace::counter(
                            match reason {
                                FallthroughReason::NoThreshold => {
                                    "select.cascade.fallthrough.no_threshold"
                                }
                                FallthroughReason::LowMargin => {
                                    "select.cascade.fallthrough.low_margin"
                                }
                                FallthroughReason::EstimatorVeto => {
                                    "select.cascade.fallthrough.veto"
                                }
                            },
                            1,
                        );
                        let _s2 = wise_trace::span("select.cascade.stage2");
                        let mut choice = self.select_full(m);
                        choice.cascade = Some(CascadeInfo {
                            stage: CascadeStage::Stage2,
                            margin,
                            threshold: gate.threshold,
                            fallthrough: Some(reason),
                            predicted_seconds: None,
                        });
                        return choice;
                    }
                }
            }
        }
        self.select_full(m)
    }

    /// The full (non-cascaded) selection: extract all 70 features,
    /// predict, pick. This is the exact pre-cascade `select` body.
    fn select_full(&self, m: &Csr) -> Choice {
        let t0 = Instant::now();
        let features = FeatureVector::extract(m, &self.feature_config);
        let feature_extraction_s = t0.elapsed().as_secs_f64();
        let mut choice = self.select_from_features(features);
        choice.timing.feature_extraction_s = feature_extraction_s;
        choice
    }

    /// Stage 1 of the cascade: probe, partial vote, gate, roofline
    /// veto. `Err` carries the margin and the fallthrough reason.
    fn select_stage_one(
        &self,
        m: &Csr,
        gate: &CascadeGate,
    ) -> Result<Choice, (f64, FallthroughReason)> {
        let _s1 = wise_trace::span("select.cascade.stage1");
        let t0 = Instant::now();
        let probe = ProbeFeatures::extract(m);
        let known = probe.known_values();
        let probe_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let (partials, paths) = self.registry.predict_partial_explained(&known);
        let vote = cascade::fold_stage_one(self.registry.catalog(), &partials);
        let predict_s = t1.elapsed().as_secs_f64();
        let Some(threshold) = gate.threshold else {
            return Err((vote.margin, FallthroughReason::NoThreshold));
        };
        if vote.margin < threshold {
            return Err((vote.margin, FallthroughReason::LowMargin));
        }
        let t2 = Instant::now();
        let winner = vote.predictions[vote.index];
        let mut predicted_seconds = None;
        if let Some(machine) = &gate.machine {
            let est = Estimator::Model { machine: machine.clone(), sample_shift: None };
            if let Some(bounds) = est.quick_bounds(&probe) {
                if winner.representative_speedup() > bounds.max_plausible_speedup {
                    return Err((vote.margin, FallthroughReason::EstimatorVeto));
                }
                predicted_seconds =
                    Some(bounds.csr_seconds * winner.representative_relative_time());
            }
        }
        // A stage-1 Choice carries the probe-known feature slots with
        // zeros elsewhere — a documented partial vector (NaN would not
        // survive JSON round-trips).
        let values: Vec<f64> = known.iter().map(|v| v.unwrap_or(0.0)).collect();
        let timing = ChoiceTiming {
            feature_extraction_s: probe_s,
            predict_s,
            select_s: t2.elapsed().as_secs_f64(),
        };
        Ok(Choice {
            config: self.registry.catalog()[vote.index],
            index: vote.index,
            predictions: vote.predictions,
            features: FeatureVector::from_values(values),
            timing,
            decision_paths: paths,
            cascade: Some(CascadeInfo {
                stage: CascadeStage::Stage1,
                margin: vote.margin,
                threshold: Some(threshold),
                fallthrough: None,
                predicted_seconds,
            }),
            request_id: 0,
        })
    }

    /// Selection from pre-extracted features (used when the caller
    /// already paid for extraction).
    pub fn select_from_features(&self, features: FeatureVector) -> Choice {
        let flight = FlightRequest::begin();
        let t0 = Instant::now();
        let (predictions, decision_paths) = {
            let _predict = wise_trace::span("select.predict");
            self.registry.predict_explained(&features)
        };
        let predict_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let index = {
            let _pick = wise_trace::span("select.pick");
            select_index(self.registry.catalog(), &predictions)
        };
        let timing = ChoiceTiming {
            feature_extraction_s: 0.0,
            predict_s,
            select_s: t1.elapsed().as_secs_f64(),
        };
        let mut choice = Choice {
            config: self.registry.catalog()[index],
            index,
            predictions,
            features,
            timing,
            decision_paths,
            cascade: None,
            request_id: 0,
        };
        flight.finish(&mut choice);
        choice
    }

    /// Amortization-aware selection: minimizes conversion cost plus
    /// `n_iterations` predicted SpMV iterations (Section 4.1's
    /// "including the preprocessing cost", made quantitative). Callers
    /// running few iterations get CSR back; iterative solvers get the
    /// fastest format.
    pub fn select_for_iterations(
        &self,
        m: &Csr,
        estimator: &wise_perf::Estimator,
        n_iterations: u64,
    ) -> Choice {
        let _span = wise_trace::span_pmu("pipeline.select");
        let flight = FlightRequest::begin();
        let t0 = Instant::now();
        let features = FeatureVector::extract(m, &self.feature_config);
        let feature_extraction_s = t0.elapsed().as_secs_f64();
        let mut choice =
            self.select_for_iterations_from_features(m, features, estimator, n_iterations);
        choice.timing.feature_extraction_s = feature_extraction_s;
        flight.finish(&mut choice);
        choice
    }

    /// [`Wise::select_for_iterations`] from pre-extracted features —
    /// callers that already ran [`Wise::select`] (or labeled the
    /// matrix) reuse the vector instead of paying extraction twice.
    /// A full-pipeline `choice.features` can be moved straight in;
    /// cascade *stage-1* choices carry only the probe subset (zeros
    /// elsewhere) and must not be reused here — check
    /// [`Choice::cascade`] first.
    pub fn select_for_iterations_from_features(
        &self,
        m: &Csr,
        features: FeatureVector,
        estimator: &wise_perf::Estimator,
        n_iterations: u64,
    ) -> Choice {
        let flight = FlightRequest::begin();
        let t1 = Instant::now();
        let (predictions, decision_paths) = {
            let _predict = wise_trace::span("select.predict");
            self.registry.predict_explained(&features)
        };
        let predict_s = t1.elapsed().as_secs_f64();
        let t2 = Instant::now();
        let _pick = wise_trace::span("select.pick");
        let catalog = self.registry.catalog();
        let preproc: Vec<f64> =
            catalog.iter().map(|cfg| estimator.preprocessing_seconds(m, cfg)).collect();
        let best_csr = catalog
            .iter()
            .filter(|c| c.method == wise_kernels::Method::Csr)
            .map(|cfg| estimator.spmv_seconds(m, cfg))
            .fold(f64::MAX, f64::min);
        let index = crate::select::select_index_amortized(
            catalog,
            &predictions,
            &preproc,
            best_csr,
            n_iterations,
        );
        let timing = ChoiceTiming {
            feature_extraction_s: 0.0,
            predict_s,
            select_s: t2.elapsed().as_secs_f64(),
        };
        let mut choice = Choice {
            config: catalog[index],
            index,
            predictions,
            features,
            timing,
            decision_paths,
            cascade: None,
            request_id: 0,
        };
        flight.finish(&mut choice);
        choice
    }

    /// Steps 4–5 of Figure 8: converts `m` to the chosen format and
    /// returns the executable kernel (callers keep it for iterative
    /// SpMV).
    pub fn prepare<'m>(&self, m: &'m Csr, choice: &Choice) -> Prepared<'m> {
        choice.config.prepare(m)
    }

    /// One-shot convenience: prepare and execute a single `y = A x`.
    pub fn run_spmv(&self, m: &Csr, choice: &Choice, x: &[f64], y: &mut [f64], nthreads: usize) {
        let prepared = self.prepare(m, choice);
        let mut ws = SpmvWorkspace::default();
        prepared.spmv(x, y, nthreads, &mut ws);
    }

    /// Persists the trained instance as JSON.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let json = serde_json::to_string(self).expect("wise serializes");
        std::fs::write(path, json)
    }

    /// Loads an instance saved by [`Self::save`].
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Wise> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn trained() -> (Wise, CorpusScale) {
        let scale = CorpusScale::tiny();
        let corpus = Corpus::random(&scale, 11);
        let wise = Wise::train(&corpus, &TrainOptions::for_scale(&scale));
        (wise, scale)
    }

    #[test]
    fn select_produces_catalog_config() {
        let (wise, _) = trained();
        let m = wise_gen::RmatParams::HIGH_SKEW.generate(9, 16, 77);
        let choice = wise.select(&m);
        assert_eq!(choice.predictions.len(), 29);
        assert_eq!(wise.registry().catalog()[choice.index].label(), choice.config.label());
        // The breakdown is always measured, and extraction cannot be
        // instantaneous.
        assert!(choice.timing.feature_extraction_s > 0.0);
        assert!(choice.timing.total_s() >= choice.timing.feature_extraction_s);
    }

    #[test]
    fn choice_timing_survives_serde_and_defaults_when_absent() {
        let (wise, _) = trained();
        let m = wise_gen::RmatParams::LOW_LOC.generate(8, 4, 5);
        let choice = wise.select(&m);
        let json = serde_json::to_string(&choice).unwrap();
        let back: Choice = serde_json::from_str(&json).unwrap();
        assert_eq!(back.timing, choice.timing);
        // Pre-observability payloads lack the field entirely.
        let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
        v.as_object_mut().unwrap().remove("timing");
        let old: Choice = serde_json::from_value(v).unwrap();
        assert_eq!(old.timing, ChoiceTiming::default());
    }

    #[test]
    fn every_choice_carries_winning_decision_path() {
        let (wise, _) = trained();
        for (params, seed) in
            [(wise_gen::RmatParams::HIGH_SKEW, 77), (wise_gen::RmatParams::LOW_LOC, 5)]
        {
            let m = params.generate(9, 8, seed);
            let choice = wise.select(&m);
            assert_eq!(choice.decision_paths.len(), choice.predictions.len());
            let path = choice.winning_path().expect("winning path present");
            // "Non-empty" in the explainability sense: the path always
            // carries the leaf evidence, and its class is the winner's
            // prediction.
            assert!(path.leaf_samples > 0);
            assert_eq!(path.leaf_class, choice.predictions[choice.index].index());
            // Every vote is consistent with its own path.
            for (pred, p) in choice.predictions.iter().zip(&choice.decision_paths) {
                assert_eq!(pred.index(), p.leaf_class);
            }
        }
    }

    #[test]
    fn decision_paths_survive_serde_and_default_when_absent() {
        let (wise, _) = trained();
        let m = wise_gen::RmatParams::LOW_LOC.generate(8, 4, 5);
        let choice = wise.select(&m);
        let json = serde_json::to_string(&choice).unwrap();
        let back: Choice = serde_json::from_str(&json).unwrap();
        assert_eq!(back.decision_paths, choice.decision_paths);
        // A pre-PR Choice JSON has no decision_paths key at all.
        let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
        v.as_object_mut().unwrap().remove("decision_paths");
        let old: Choice = serde_json::from_value(v).unwrap();
        assert!(old.decision_paths.is_empty());
        assert!(old.winning_path().is_none());
        assert_eq!(old.index, choice.index);
    }

    #[test]
    fn run_spmv_is_correct() {
        let (wise, _) = trained();
        let m = wise_gen::RmatParams::MED_LOC.generate(9, 8, 13);
        let choice = wise.select(&m);
        let mut rng = StdRng::seed_from_u64(1);
        let x: Vec<f64> = (0..m.ncols()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut y = vec![0.0; m.nrows()];
        wise.run_spmv(&m, &choice, &x, &mut y, 2);
        let mut want = vec![0.0; m.nrows()];
        m.spmv_reference(&x, &mut want);
        for (g, w) in y.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9 * (1.0 + w.abs()));
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let (wise, _) = trained();
        let path = std::env::temp_dir().join("wise_pipeline_test.json");
        wise.save(&path).unwrap();
        let back = Wise::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let m = wise_gen::RmatParams::LOW_LOC.generate(8, 4, 5);
        assert_eq!(wise.select(&m).config.label(), back.select(&m).config.label());
    }

    #[test]
    fn prepared_is_reusable_for_iterations() {
        let (wise, _) = trained();
        let m = wise_gen::RmatParams::LOW_SKEW.generate(8, 8, 2);
        let choice = wise.select(&m);
        let prep = wise.prepare(&m, &choice);
        let mut ws = SpmvWorkspace::default();
        let mut x = vec![1.0; m.ncols()];
        let mut y = vec![0.0; m.nrows()];
        // Three power iterations; just has to stay finite and correct
        // shape-wise.
        for _ in 0..3 {
            prep.spmv(&x, &mut y, 1, &mut ws);
            let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-12);
            for (xi, yi) in x.iter_mut().zip(&y) {
                *xi = yi / norm;
            }
        }
        assert!(x.iter().all(|v| v.is_finite()));
    }
}

#[cfg(test)]
mod cascade_pipeline_tests {
    use super::*;
    use crate::cascade::P_RATIO_REL_FLOOR;

    fn trained() -> Wise {
        // Pin the cascade on: these tests control behavior through the
        // per-instance gate, and must not depend on a WISE_CASCADE=0
        // leaking in from the environment.
        cascade::set_mode(cascade::CascadeMode::Auto);
        let scale = CorpusScale::tiny();
        let corpus = Corpus::random(&scale, 11);
        Wise::train(&corpus, &TrainOptions::for_scale(&scale))
    }

    fn forced_gate(threshold: Option<f64>) -> CascadeGate {
        CascadeGate {
            threshold,
            machine: None,
            calibration_p_ratio: 1.0,
            full_p_ratio: 1.0,
            calibration_accept_rate: 1.0,
        }
    }

    #[test]
    fn trained_instance_carries_a_calibrated_gate() {
        let wise = trained();
        let gate = wise.cascade_gate().expect("training calibrates a gate");
        assert!(gate.full_p_ratio > 0.0 && gate.full_p_ratio <= 1.0 + 1e-9);
        // The calibration contract: the induced training-set cascade
        // P-ratio honors the floor (trivially so when threshold=None).
        assert!(
            gate.calibration_p_ratio >= P_RATIO_REL_FLOOR * gate.full_p_ratio - 1e-9,
            "cascade P {} vs full P {}",
            gate.calibration_p_ratio,
            gate.full_p_ratio
        );
        assert!((0.0..=1.0).contains(&gate.calibration_accept_rate));
        // Model-backend training embeds the machine for the veto.
        assert!(gate.machine.is_some());
    }

    #[test]
    fn forced_accept_gate_answers_in_stage_one() {
        let wise = trained().with_cascade_gate(Some(forced_gate(Some(0.0))));
        let m = wise_gen::RmatParams::HIGH_SKEW.generate(9, 16, 77);
        let choice = wise.select(&m);
        let info = choice.cascade.expect("cascade provenance present");
        assert_eq!(info.stage, CascadeStage::Stage1);
        assert!(info.margin >= 0.0);
        assert!(info.fallthrough.is_none());
        assert_eq!(choice.predictions.len(), 29);
        // Stage-1 choices stay auditable: per-head partial paths align
        // with the votes.
        assert_eq!(choice.decision_paths.len(), 29);
        for (pred, path) in choice.predictions.iter().zip(&choice.decision_paths) {
            assert_eq!(pred.index(), path.leaf_class);
        }
        assert!(choice.timing.feature_extraction_s > 0.0);
    }

    #[test]
    fn no_threshold_gate_falls_through_identically() {
        let wise = trained().with_cascade_gate(Some(forced_gate(None)));
        let m = wise_gen::RmatParams::MED_SKEW.generate(9, 8, 13);
        let through = wise.select(&m);
        let info = through.cascade.expect("fallthrough still records provenance");
        assert_eq!(info.stage, CascadeStage::Stage2);
        assert_eq!(info.fallthrough, Some(FallthroughReason::NoThreshold));
        // Modulo the cascade field (and timing), the fallthrough Choice
        // is the full pipeline's.
        let full = wise.select_from_features(FeatureVector::extract(&m, wise.feature_config()));
        assert_eq!(through.index, full.index);
        assert_eq!(through.config.label(), full.config.label());
        assert_eq!(through.predictions, full.predictions);
        assert_eq!(through.features, full.features);
        assert_eq!(through.decision_paths, full.decision_paths);
    }

    #[test]
    fn all_leaves_stage_one_matches_full_selection_exactly() {
        // Whenever every partial walk reaches a leaf (margin == MAX),
        // the stage-1 answer provably equals the full pipeline's.
        let wise = trained().with_cascade_gate(Some(forced_gate(Some(0.0))));
        let mut saw_exact = false;
        for (params, seed) in [
            (wise_gen::RmatParams::HIGH_SKEW, 7u64),
            (wise_gen::RmatParams::LOW_LOC, 5),
            (wise_gen::RmatParams::MED_SKEW, 3),
            (wise_gen::RmatParams::LOW_SKEW, 9),
        ] {
            let m = params.generate(9, 8, seed);
            let choice = wise.select(&m);
            let info = choice.cascade.unwrap();
            if info.stage == CascadeStage::Stage1 && info.margin == f64::MAX {
                saw_exact = true;
                let full =
                    wise.select_from_features(FeatureVector::extract(&m, wise.feature_config()));
                assert_eq!(choice.index, full.index);
                assert_eq!(choice.predictions, full.predictions);
            }
        }
        // Not guaranteed for every corpus, but this seed/zoo combination
        // exercises at least one exact fast-path answer; if the trees
        // stop splitting on probe features the assertion below flags it.
        assert!(saw_exact, "no all-leaves stage-1 answer in the zoo");
    }

    #[test]
    fn gateless_choice_serializes_without_cascade_key() {
        let wise = trained().with_cascade_gate(None);
        let m = wise_gen::RmatParams::LOW_LOC.generate(8, 4, 5);
        let choice = wise.select(&m);
        assert!(choice.cascade.is_none());
        let json = serde_json::to_string(&choice).unwrap();
        assert!(!json.contains("\"cascade\""), "cascade key must be absent");
        // And a pre-cascade Choice JSON (no cascade key) loads as None.
        let back: Choice = serde_json::from_str(&json).unwrap();
        assert!(back.cascade.is_none());
    }

    #[test]
    fn pre_cascade_wise_json_loads_without_gate() {
        let wise = trained();
        let json = serde_json::to_string(&wise).unwrap();
        let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
        v.as_object_mut().unwrap().remove("cascade_gate");
        let old: Wise = serde_json::from_value(v).unwrap();
        assert!(old.cascade_gate().is_none());
        // A gateless instance selects through the full pipeline.
        let m = wise_gen::RmatParams::LOW_LOC.generate(8, 4, 5);
        let choice = old.select(&m);
        assert!(choice.cascade.is_none());
        assert_eq!(choice.predictions.len(), 29);
    }

    #[test]
    fn stage_one_records_roofline_prediction_with_machine() {
        let wise = trained();
        let machine = wise.cascade_gate().unwrap().machine.clone();
        assert!(machine.is_some());
        let gate = CascadeGate { machine, ..forced_gate(Some(0.0)) };
        let wise = wise.with_cascade_gate(Some(gate));
        let m = wise_gen::RmatParams::MED_LOC.generate(9, 8, 21);
        let choice = wise.select(&m);
        let info = choice.cascade.unwrap();
        match info.stage {
            CascadeStage::Stage1 => {
                let p = info.predicted_seconds.expect("veto machine implies a prediction");
                assert!(p > 0.0 && p.is_finite());
            }
            CascadeStage::Stage2 => {
                assert_eq!(info.fallthrough, Some(FallthroughReason::EstimatorVeto));
            }
        }
    }
}

#[cfg(test)]
mod amortized_pipeline_tests {
    use super::*;
    use wise_perf::Estimator;

    #[test]
    fn few_iterations_select_a_cheaper_format_than_many() {
        let scale = CorpusScale::tiny();
        let corpus = Corpus::random(&scale, 11);
        let opts = TrainOptions {
            estimator: Estimator::model_for_rows(1 << 10),
            feature_config: FeatureConfig::default(),
            tree_params: Default::default(),
        };
        let wise = Wise::train(&corpus, &opts);
        let m = wise_gen::RmatParams::HIGH_SKEW.generate_shuffled(10, 16, 313);
        let one = wise.select_for_iterations(&m, &opts.estimator, 1);
        let many = wise.select_for_iterations(&m, &opts.estimator, 1_000_000);
        // One iteration can never justify conversion: CSR family.
        assert_eq!(one.config.method, wise_kernels::Method::Csr, "{}", one.config.label());
        // The asymptotic choice matches the plain (pure-speed) selection
        // tier. Pin the full pipeline (not the cascade fast path) by
        // selecting from pre-extracted features — also exercising the
        // feature-reuse entry point.
        let features = FeatureVector::extract(&m, wise.feature_config());
        let plain = wise.select_from_features(features.clone());
        // Reusing features through the amortized path reproduces the
        // extraction-inclusive result exactly (modulo timing).
        let reused =
            wise.select_for_iterations_from_features(&m, features, &opts.estimator, 1_000_000);
        assert_eq!(reused.index, many.index);
        assert_eq!(reused.predictions, many.predictions);
        assert_eq!(reused.timing.feature_extraction_s, 0.0);
        assert_eq!(
            many.predictions[many.index], plain.predictions[plain.index],
            "many-iteration choice should reach the plain selection tier"
        );
    }
}
