//! The end-to-end WISE pipeline (paper Figure 8): feature extraction →
//! per-configuration class prediction → method selection → format
//! conversion → SpMV.

use crate::classes::SpeedupClass;
use crate::labels::{label_corpus, CorpusLabels};
use crate::registry::ModelRegistry;
use crate::select::select_index;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::Instant;
use wise_features::{FeatureConfig, FeatureVector};
use wise_gen::{Corpus, CorpusScale};
use wise_kernels::method::{MethodConfig, Prepared};
use wise_kernels::srvpack::SpmvWorkspace;
use wise_matrix::Csr;
use wise_ml::TreeParams;
use wise_perf::Estimator;

/// Everything needed to train a WISE instance.
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// Label backend (machine model or wall clock).
    pub estimator: Estimator,
    pub feature_config: FeatureConfig,
    pub tree_params: TreeParams,
}

impl TrainOptions {
    /// Defaults for a corpus scale: the machine model scaled to the
    /// corpus' largest matrices (respecting `WISE_MEASURED`), paper
    /// tree hyperparameters.
    pub fn for_scale(scale: &CorpusScale) -> TrainOptions {
        let max_rows = 1usize << scale.row_scales.iter().copied().max().unwrap_or(16);
        TrainOptions {
            estimator: Estimator::from_env(max_rows),
            feature_config: FeatureConfig::default(),
            tree_params: TreeParams::default(),
        }
    }
}

/// Wall-clock breakdown of the stages that produced a [`Choice`].
/// Always measured (a handful of `Instant` reads per selection), so
/// callers can report selection overhead without enabling tracing; the
/// same stages also appear as `select.*` spans in the trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ChoiceTiming {
    /// Seconds extracting the feature vector (0.0 when the caller
    /// passed pre-extracted features).
    pub feature_extraction_s: f64,
    /// Seconds running the per-configuration class predictions.
    pub predict_s: f64,
    /// Seconds in the selection heuristic (including, for
    /// [`Wise::select_for_iterations`], the preprocessing-cost
    /// estimates the amortized pick needs).
    pub select_s: f64,
}

impl ChoiceTiming {
    /// Total selection-side overhead in seconds (the cost a caller pays
    /// before the first SpMV, excluding format conversion).
    pub fn total_s(&self) -> f64 {
        self.feature_extraction_s + self.predict_s + self.select_s
    }
}

/// The outcome of WISE's selection step for one matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Choice {
    /// The selected configuration.
    pub config: MethodConfig,
    /// Catalog index of the selection.
    pub index: usize,
    /// Predicted class per catalog configuration.
    pub predictions: Vec<SpeedupClass>,
    /// Features extracted for the prediction.
    pub features: FeatureVector,
    /// Per-stage timing breakdown of this selection (absent in
    /// pre-observability serialized choices; defaults to zeros).
    #[serde(default)]
    pub timing: ChoiceTiming,
    /// Root-to-leaf decision path of every classifier vote, catalog
    /// order — `decision_paths[index]` explains the winning prediction
    /// (see [`crate::explain::explain_choice`]). Absent in
    /// pre-explainability serialized choices; defaults to empty.
    #[serde(default)]
    pub decision_paths: Vec<wise_ml::DecisionPath>,
}

impl Choice {
    /// The decision path of the winning classifier, when this choice
    /// was produced by an explainability-aware selection (deserialized
    /// pre-explainability choices return `None`).
    pub fn winning_path(&self) -> Option<&wise_ml::DecisionPath> {
        self.decision_paths.get(self.index)
    }
}

/// A trained WISE instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Wise {
    registry: ModelRegistry,
    feature_config: FeatureConfig,
}

impl Wise {
    /// Labels `corpus` with `opts.estimator`, then trains the 29
    /// models. For custom workflows (e.g. reusing labels), see
    /// [`Wise::from_labels`].
    pub fn train(corpus: &Corpus, opts: &TrainOptions) -> Wise {
        let labels = label_corpus(corpus, &opts.estimator, &opts.feature_config);
        Self::from_labels(&labels, opts)
    }

    /// Trains from pre-computed labels.
    pub fn from_labels(labels: &CorpusLabels, opts: &TrainOptions) -> Wise {
        Wise {
            registry: ModelRegistry::train(labels, opts.tree_params),
            feature_config: opts.feature_config,
        }
    }

    /// Wraps an existing registry.
    pub fn from_registry(registry: ModelRegistry, feature_config: FeatureConfig) -> Wise {
        Wise { registry, feature_config }
    }

    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    pub fn feature_config(&self) -> &FeatureConfig {
        &self.feature_config
    }

    /// Runs steps 1–3 of Figure 8: extract features, predict classes,
    /// select the best configuration.
    pub fn select(&self, m: &Csr) -> Choice {
        let _span = wise_trace::span_pmu("pipeline.select");
        let t0 = Instant::now();
        let features = FeatureVector::extract(m, &self.feature_config);
        let feature_extraction_s = t0.elapsed().as_secs_f64();
        let mut choice = self.select_from_features(features);
        choice.timing.feature_extraction_s = feature_extraction_s;
        choice
    }

    /// Selection from pre-extracted features (used when the caller
    /// already paid for extraction).
    pub fn select_from_features(&self, features: FeatureVector) -> Choice {
        let t0 = Instant::now();
        let (predictions, decision_paths) = {
            let _predict = wise_trace::span("select.predict");
            self.registry.predict_explained(&features)
        };
        let predict_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let index = {
            let _pick = wise_trace::span("select.pick");
            select_index(self.registry.catalog(), &predictions)
        };
        let timing = ChoiceTiming {
            feature_extraction_s: 0.0,
            predict_s,
            select_s: t1.elapsed().as_secs_f64(),
        };
        Choice {
            config: self.registry.catalog()[index],
            index,
            predictions,
            features,
            timing,
            decision_paths,
        }
    }

    /// Amortization-aware selection: minimizes conversion cost plus
    /// `n_iterations` predicted SpMV iterations (Section 4.1's
    /// "including the preprocessing cost", made quantitative). Callers
    /// running few iterations get CSR back; iterative solvers get the
    /// fastest format.
    pub fn select_for_iterations(
        &self,
        m: &Csr,
        estimator: &wise_perf::Estimator,
        n_iterations: u64,
    ) -> Choice {
        let _span = wise_trace::span_pmu("pipeline.select");
        let t0 = Instant::now();
        let features = FeatureVector::extract(m, &self.feature_config);
        let feature_extraction_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let (predictions, decision_paths) = {
            let _predict = wise_trace::span("select.predict");
            self.registry.predict_explained(&features)
        };
        let predict_s = t1.elapsed().as_secs_f64();
        let t2 = Instant::now();
        let _pick = wise_trace::span("select.pick");
        let catalog = self.registry.catalog();
        let preproc: Vec<f64> =
            catalog.iter().map(|cfg| estimator.preprocessing_seconds(m, cfg)).collect();
        let best_csr = catalog
            .iter()
            .filter(|c| c.method == wise_kernels::Method::Csr)
            .map(|cfg| estimator.spmv_seconds(m, cfg))
            .fold(f64::MAX, f64::min);
        let index = crate::select::select_index_amortized(
            catalog,
            &predictions,
            &preproc,
            best_csr,
            n_iterations,
        );
        let timing =
            ChoiceTiming { feature_extraction_s, predict_s, select_s: t2.elapsed().as_secs_f64() };
        Choice { config: catalog[index], index, predictions, features, timing, decision_paths }
    }

    /// Steps 4–5 of Figure 8: converts `m` to the chosen format and
    /// returns the executable kernel (callers keep it for iterative
    /// SpMV).
    pub fn prepare<'m>(&self, m: &'m Csr, choice: &Choice) -> Prepared<'m> {
        choice.config.prepare(m)
    }

    /// One-shot convenience: prepare and execute a single `y = A x`.
    pub fn run_spmv(&self, m: &Csr, choice: &Choice, x: &[f64], y: &mut [f64], nthreads: usize) {
        let prepared = self.prepare(m, choice);
        let mut ws = SpmvWorkspace::default();
        prepared.spmv(x, y, nthreads, &mut ws);
    }

    /// Persists the trained instance as JSON.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let json = serde_json::to_string(self).expect("wise serializes");
        std::fs::write(path, json)
    }

    /// Loads an instance saved by [`Self::save`].
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Wise> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn trained() -> (Wise, CorpusScale) {
        let scale = CorpusScale::tiny();
        let corpus = Corpus::random(&scale, 11);
        let wise = Wise::train(&corpus, &TrainOptions::for_scale(&scale));
        (wise, scale)
    }

    #[test]
    fn select_produces_catalog_config() {
        let (wise, _) = trained();
        let m = wise_gen::RmatParams::HIGH_SKEW.generate(9, 16, 77);
        let choice = wise.select(&m);
        assert_eq!(choice.predictions.len(), 29);
        assert_eq!(wise.registry().catalog()[choice.index].label(), choice.config.label());
        // The breakdown is always measured, and extraction cannot be
        // instantaneous.
        assert!(choice.timing.feature_extraction_s > 0.0);
        assert!(choice.timing.total_s() >= choice.timing.feature_extraction_s);
    }

    #[test]
    fn choice_timing_survives_serde_and_defaults_when_absent() {
        let (wise, _) = trained();
        let m = wise_gen::RmatParams::LOW_LOC.generate(8, 4, 5);
        let choice = wise.select(&m);
        let json = serde_json::to_string(&choice).unwrap();
        let back: Choice = serde_json::from_str(&json).unwrap();
        assert_eq!(back.timing, choice.timing);
        // Pre-observability payloads lack the field entirely.
        let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
        v.as_object_mut().unwrap().remove("timing");
        let old: Choice = serde_json::from_value(v).unwrap();
        assert_eq!(old.timing, ChoiceTiming::default());
    }

    #[test]
    fn every_choice_carries_winning_decision_path() {
        let (wise, _) = trained();
        for (params, seed) in
            [(wise_gen::RmatParams::HIGH_SKEW, 77), (wise_gen::RmatParams::LOW_LOC, 5)]
        {
            let m = params.generate(9, 8, seed);
            let choice = wise.select(&m);
            assert_eq!(choice.decision_paths.len(), choice.predictions.len());
            let path = choice.winning_path().expect("winning path present");
            // "Non-empty" in the explainability sense: the path always
            // carries the leaf evidence, and its class is the winner's
            // prediction.
            assert!(path.leaf_samples > 0);
            assert_eq!(path.leaf_class, choice.predictions[choice.index].index());
            // Every vote is consistent with its own path.
            for (pred, p) in choice.predictions.iter().zip(&choice.decision_paths) {
                assert_eq!(pred.index(), p.leaf_class);
            }
        }
    }

    #[test]
    fn decision_paths_survive_serde_and_default_when_absent() {
        let (wise, _) = trained();
        let m = wise_gen::RmatParams::LOW_LOC.generate(8, 4, 5);
        let choice = wise.select(&m);
        let json = serde_json::to_string(&choice).unwrap();
        let back: Choice = serde_json::from_str(&json).unwrap();
        assert_eq!(back.decision_paths, choice.decision_paths);
        // A pre-PR Choice JSON has no decision_paths key at all.
        let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
        v.as_object_mut().unwrap().remove("decision_paths");
        let old: Choice = serde_json::from_value(v).unwrap();
        assert!(old.decision_paths.is_empty());
        assert!(old.winning_path().is_none());
        assert_eq!(old.index, choice.index);
    }

    #[test]
    fn run_spmv_is_correct() {
        let (wise, _) = trained();
        let m = wise_gen::RmatParams::MED_LOC.generate(9, 8, 13);
        let choice = wise.select(&m);
        let mut rng = StdRng::seed_from_u64(1);
        let x: Vec<f64> = (0..m.ncols()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut y = vec![0.0; m.nrows()];
        wise.run_spmv(&m, &choice, &x, &mut y, 2);
        let mut want = vec![0.0; m.nrows()];
        m.spmv_reference(&x, &mut want);
        for (g, w) in y.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9 * (1.0 + w.abs()));
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let (wise, _) = trained();
        let path = std::env::temp_dir().join("wise_pipeline_test.json");
        wise.save(&path).unwrap();
        let back = Wise::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let m = wise_gen::RmatParams::LOW_LOC.generate(8, 4, 5);
        assert_eq!(wise.select(&m).config.label(), back.select(&m).config.label());
    }

    #[test]
    fn prepared_is_reusable_for_iterations() {
        let (wise, _) = trained();
        let m = wise_gen::RmatParams::LOW_SKEW.generate(8, 8, 2);
        let choice = wise.select(&m);
        let prep = wise.prepare(&m, &choice);
        let mut ws = SpmvWorkspace::default();
        let mut x = vec![1.0; m.ncols()];
        let mut y = vec![0.0; m.nrows()];
        // Three power iterations; just has to stay finite and correct
        // shape-wise.
        for _ in 0..3 {
            prep.spmv(&x, &mut y, 1, &mut ws);
            let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-12);
            for (xi, yi) in x.iter_mut().zip(&y) {
                *xi = yi / norm;
            }
        }
        assert!(x.iter().all(|v| v.is_finite()));
    }
}

#[cfg(test)]
mod amortized_pipeline_tests {
    use super::*;
    use wise_perf::Estimator;

    #[test]
    fn few_iterations_select_a_cheaper_format_than_many() {
        let scale = CorpusScale::tiny();
        let corpus = Corpus::random(&scale, 11);
        let opts = TrainOptions {
            estimator: Estimator::model_for_rows(1 << 10),
            feature_config: FeatureConfig::default(),
            tree_params: Default::default(),
        };
        let wise = Wise::train(&corpus, &opts);
        let m = wise_gen::RmatParams::HIGH_SKEW.generate_shuffled(10, 16, 313);
        let one = wise.select_for_iterations(&m, &opts.estimator, 1);
        let many = wise.select_for_iterations(&m, &opts.estimator, 1_000_000);
        // One iteration can never justify conversion: CSR family.
        assert_eq!(one.config.method, wise_kernels::Method::Csr, "{}", one.config.label());
        // The asymptotic choice matches the plain (pure-speed) selection
        // tier.
        let plain = wise.select(&m);
        assert_eq!(
            many.predictions[many.index], plain.predictions[plain.index],
            "many-iteration choice should reach the plain selection tier"
        );
    }
}
