//! Speedup classes C0–C6 (paper Section 4.3).
//!
//! Each performance model predicts the execution time of its
//! configuration *relative to the fastest CSR* (lower = faster), bucketed
//! into seven classes:
//!
//! | class | relative time  | meaning                    |
//! |-------|----------------|----------------------------|
//! | C0    | (∞, 1.05]      | slowdown                   |
//! | C1    | (1.05, 0.95]   | parity                     |
//! | C2    | (0.95, 0.85]   | ~1.1x speedup              |
//! | C3    | (0.85, 0.75]   | ~1.25x                     |
//! | C4    | (0.75, 0.65]   | ~1.4x                      |
//! | C5    | (0.65, 0.55]   | ~1.7x                      |
//! | C6    | (0.55, 0]      | >2x speedup                |

use serde::{Deserialize, Serialize};

/// A predicted/observed speedup class. Ordering: `C0 < C1 < ... < C6`,
/// i.e. *greater is faster*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SpeedupClass {
    C0,
    C1,
    C2,
    C3,
    C4,
    C5,
    C6,
}

/// Number of classes.
pub const N_CLASSES: usize = 7;

/// Upper boundaries of C1..C6 in relative-time space (C0 is everything
/// above 1.05).
const BOUNDS: [f64; 6] = [1.05, 0.95, 0.85, 0.75, 0.65, 0.55];

impl SpeedupClass {
    pub const ALL: [SpeedupClass; 7] = [
        SpeedupClass::C0,
        SpeedupClass::C1,
        SpeedupClass::C2,
        SpeedupClass::C3,
        SpeedupClass::C4,
        SpeedupClass::C5,
        SpeedupClass::C6,
    ];

    /// Classifies a relative execution time `t_method / t_best_csr`.
    pub fn from_relative_time(ratio: f64) -> SpeedupClass {
        assert!(ratio >= 0.0 && ratio.is_finite(), "relative time must be finite, got {ratio}");
        if ratio > BOUNDS[0] {
            return SpeedupClass::C0;
        }
        for (i, &b) in BOUNDS.iter().enumerate().skip(1) {
            if ratio > b {
                return Self::from_index(i as u32);
            }
        }
        SpeedupClass::C6
    }

    /// Class index 0..=6 (usable as an ML label).
    pub fn index(&self) -> u32 {
        *self as u32
    }

    /// Inverse of [`Self::index`].
    pub fn from_index(i: u32) -> SpeedupClass {
        Self::ALL[i as usize]
    }

    /// A representative relative time for the class (interval midpoint;
    /// open-ended classes use 1.2 and 0.45), used when a scalar estimate
    /// is needed from a class prediction.
    pub fn representative_relative_time(&self) -> f64 {
        match self {
            SpeedupClass::C0 => 1.2,
            SpeedupClass::C1 => 1.0,
            SpeedupClass::C2 => 0.9,
            SpeedupClass::C3 => 0.8,
            SpeedupClass::C4 => 0.7,
            SpeedupClass::C5 => 0.6,
            SpeedupClass::C6 => 0.45,
        }
    }

    /// Representative speedup over the best CSR (1 / relative time).
    pub fn representative_speedup(&self) -> f64 {
        1.0 / self.representative_relative_time()
    }

    /// `true` if the class denotes an actual speedup over best CSR.
    pub fn is_speedup(&self) -> bool {
        *self >= SpeedupClass::C2
    }
}

impl std::fmt::Display for SpeedupClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "C{}", self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_match_paper() {
        assert_eq!(SpeedupClass::from_relative_time(2.0), SpeedupClass::C0);
        assert_eq!(SpeedupClass::from_relative_time(1.06), SpeedupClass::C0);
        assert_eq!(SpeedupClass::from_relative_time(1.05), SpeedupClass::C1);
        assert_eq!(SpeedupClass::from_relative_time(1.0), SpeedupClass::C1);
        assert_eq!(SpeedupClass::from_relative_time(0.95), SpeedupClass::C2);
        assert_eq!(SpeedupClass::from_relative_time(0.85), SpeedupClass::C3);
        assert_eq!(SpeedupClass::from_relative_time(0.75), SpeedupClass::C4);
        assert_eq!(SpeedupClass::from_relative_time(0.65), SpeedupClass::C5);
        assert_eq!(SpeedupClass::from_relative_time(0.55), SpeedupClass::C6);
        assert_eq!(SpeedupClass::from_relative_time(0.1), SpeedupClass::C6);
        assert_eq!(SpeedupClass::from_relative_time(0.0), SpeedupClass::C6);
    }

    #[test]
    fn ordering_is_faster_is_greater() {
        assert!(SpeedupClass::C6 > SpeedupClass::C0);
        assert!(SpeedupClass::C3 > SpeedupClass::C2);
    }

    #[test]
    fn index_roundtrip() {
        for c in SpeedupClass::ALL {
            assert_eq!(SpeedupClass::from_index(c.index()), c);
        }
    }

    #[test]
    fn representative_times_fall_in_their_class() {
        for c in SpeedupClass::ALL {
            let t = c.representative_relative_time();
            assert_eq!(SpeedupClass::from_relative_time(t), c, "{c}");
        }
    }

    #[test]
    fn speedup_predicate() {
        assert!(!SpeedupClass::C0.is_speedup());
        assert!(!SpeedupClass::C1.is_speedup());
        assert!(SpeedupClass::C2.is_speedup());
        assert!(SpeedupClass::C6.is_speedup());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        SpeedupClass::from_relative_time(f64::NAN);
    }

    #[test]
    fn display() {
        assert_eq!(SpeedupClass::C4.to_string(), "C4");
    }
}
