//! WISE — ML-based SpMV method selection.
//!
//! Reproduction of *"WISE: Predicting the Performance of Sparse Matrix
//! Vector Multiplication with Machine Learning"* (PPoPP 2023). Given a
//! sparse matrix, WISE:
//!
//! 1. extracts size/skew/locality features
//!    ([`wise_features::FeatureVector`]);
//! 2. runs one decision-tree classifier per `{method, parameter}`
//!    configuration (29 models, [`registry::ModelRegistry`]), each
//!    predicting a *speedup class* ([`classes::SpeedupClass`]) relative
//!    to the best CSR implementation;
//! 3. picks the configuration with the highest predicted speedup,
//!    breaking ties toward cheaper preprocessing
//!    ([`select::select_config`]);
//! 4. converts the matrix to the chosen format and runs SpMV
//!    ([`pipeline::Wise`]).
//!
//! Selection itself is cascaded ([`cascade`]): a single O(nnz) feature
//! probe plus partial tree walks answer "easy" matrices in microseconds
//! when a calibrated confidence gate accepts, and fall through to the
//! full pipeline (steps 1–3 above, bit-identical) otherwise. The
//! `WISE_CASCADE` environment knob (`0|off` / `1|on|auto`) disables or
//! enables the fast path.
//!
//! # Quick start
//!
//! ```
//! use wise_core::pipeline::{TrainOptions, Wise};
//! use wise_gen::{Corpus, CorpusScale};
//!
//! // Train on a (tiny, for doc-test speed) corpus.
//! let scale = CorpusScale::tiny();
//! let corpus = Corpus::full(&scale, 42);
//! let wise = Wise::train(&corpus, &TrainOptions::for_scale(&scale));
//!
//! // Select and run the predicted-best SpMV method for a new matrix.
//! let m = wise_gen::RmatParams::HIGH_SKEW.generate(9, 8, 7);
//! let choice = wise.select(&m);
//! let x = vec![1.0; m.ncols()];
//! let mut y = vec![0.0; m.nrows()];
//! wise.run_spmv(&m, &choice, &x, &mut y, 1);
//! ```

pub mod cascade;
pub mod classes;
pub mod drift;
pub mod evaluate;
pub mod explain;
pub mod labels;
pub mod pipeline;
pub mod registry;
pub mod select;

pub use cascade::{
    observe_execution, regret_stats, CascadeGate, CascadeInfo, CascadeMode, CascadeStage,
    FallthroughReason, RegretStats,
};
pub use classes::SpeedupClass;
pub use drift::{DriftStats, DriftStatus};
pub use evaluate::{evaluate_cv, CvEvaluation, EvalOutcome};
pub use explain::explain_choice;
pub use labels::{label_corpus, CorpusLabels, MatrixLabels};
pub use pipeline::{TrainOptions, Wise};
pub use registry::ModelRegistry;
pub use select::select_config;
