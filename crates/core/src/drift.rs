//! Prediction-drift monitor: windowed EWMAs over the cascade's
//! execution feedback that classify the deployed model's health into an
//! explicit [`DriftStatus`] (ISSUE 10's third tentpole leg).
//!
//! Two signals are tracked, both fed by
//! [`observe_execution`](crate::cascade::observe_execution):
//!
//! * **Regret** — the measured/predicted per-iteration time ratio of
//!   stage-1 answers. A healthy roofline prediction hovers near 1.0;
//!   a sustained climb means the machine model (and therefore the
//!   gate's veto and the training labels) no longer describes the
//!   hardware or the workload.
//! * **Fallthrough** — the fraction of cascaded selections that fell
//!   through to stage 2. The gate was calibrated to accept a known
//!   fraction of the *training* distribution; a collapse toward
//!   all-fallthrough means the incoming matrices look nothing like
//!   what the gate was calibrated on (feature drift), even when every
//!   answer is still correct.
//!
//! Both are exponentially-weighted moving averages over the last
//! [`DRIFT_WINDOW`] observations (α = 2/(window+1)), so the status
//! recovers once the workload normalizes — this is a *drift* monitor,
//! not a lifetime average. Nothing leaves [`DriftStatus::Stable`]
//! before [`DRIFT_MIN_OBSERVATIONS`] samples.
//!
//! Every observation is mirrored into the trace stream
//! (`drift.regret` permille samples, `drift.fallthrough` counter) and
//! into [`wise_trace::telemetry::set_drift_gauge`], which is how the
//! run report, `metrics_snapshot.json` and the benchmark ledger see
//! the current status without depending on this crate.

use crate::cascade::CascadeStage;
use crate::pipeline::Choice;
use std::sync::Mutex;
use wise_trace::telemetry::{self, DriftLevel, DriftSnapshot};

/// EWMA window, in observations.
pub const DRIFT_WINDOW: u64 = 64;

/// Observations before the monitor may leave [`DriftStatus::Stable`].
pub const DRIFT_MIN_OBSERVATIONS: u64 = 16;

/// Regret-EWMA level that raises [`DriftStatus::Warning`]: stage-1
/// predictions running 1.5× slow on average.
pub const REGRET_WARNING: f64 = 1.5;

/// Regret-EWMA level that suggests retraining.
pub const REGRET_RETRAIN: f64 = 2.5;

/// Fallthrough-rate EWMA that raises [`DriftStatus::Warning`].
pub const FALLTHROUGH_WARNING: f64 = 0.5;

/// Fallthrough-rate EWMA that suggests retraining: the calibrated gate
/// has effectively stopped firing.
pub const FALLTHROUGH_RETRAIN: f64 = 0.8;

/// The monitor's verdict on the deployed model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DriftStatus {
    /// Predictions and gate behavior match calibration.
    Stable,
    /// One signal crossed its warning level; watch the trend.
    Warning,
    /// Sustained divergence — retrain (or recalibrate the gate) on the
    /// current workload.
    RetrainSuggested,
}

impl DriftStatus {
    /// The wire label, shared with [`wise_trace::telemetry::DriftLevel`].
    pub fn label(self) -> &'static str {
        self.level().label()
    }

    fn level(self) -> DriftLevel {
        match self {
            DriftStatus::Stable => DriftLevel::Stable,
            DriftStatus::Warning => DriftLevel::Warning,
            DriftStatus::RetrainSuggested => DriftLevel::RetrainSuggested,
        }
    }
}

/// A point-in-time copy of the monitor's state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftStats {
    pub status: DriftStatus,
    /// EWMA of measured/predicted stage-1 time (1.0 = exact); `None`
    /// before the first stage-1 observation with a prediction.
    pub regret_ewma: Option<f64>,
    /// EWMA of the stage-2 fallthrough indicator over cascaded
    /// selections; `None` before the first cascaded observation.
    pub fallthrough_ewma: Option<f64>,
    /// Total executions observed (cascaded or not).
    pub observed: u64,
}

#[derive(Default)]
struct DriftState {
    regret: Option<f64>,
    fallthrough: Option<f64>,
    observed: u64,
}

impl DriftState {
    fn status(&self) -> DriftStatus {
        if self.observed < DRIFT_MIN_OBSERVATIONS {
            return DriftStatus::Stable;
        }
        let mut status = DriftStatus::Stable;
        if let Some(r) = self.regret {
            if r >= REGRET_RETRAIN {
                status = status.max(DriftStatus::RetrainSuggested);
            } else if r >= REGRET_WARNING {
                status = status.max(DriftStatus::Warning);
            }
        }
        if let Some(f) = self.fallthrough {
            if f >= FALLTHROUGH_RETRAIN {
                status = status.max(DriftStatus::RetrainSuggested);
            } else if f >= FALLTHROUGH_WARNING {
                status = status.max(DriftStatus::Warning);
            }
        }
        status
    }

    fn snapshot(&self) -> DriftSnapshot {
        DriftSnapshot {
            level: self.status().level(),
            regret_permille: self
                .regret
                .map_or(0, |r| (r * 1000.0).round().clamp(0.0, 1e12) as u64),
            fallthrough_permille: self
                .fallthrough
                .map_or(0, |f| (f * 1000.0).round().clamp(0.0, 1000.0) as u64),
            observed: self.observed,
        }
    }
}

static STATE: Mutex<DriftState> =
    Mutex::new(DriftState { regret: None, fallthrough: None, observed: 0 });

fn lock() -> std::sync::MutexGuard<'static, DriftState> {
    STATE.lock().unwrap_or_else(|p| p.into_inner())
}

fn ewma(prev: Option<f64>, sample: f64) -> f64 {
    const ALPHA: f64 = 2.0 / (DRIFT_WINDOW as f64 + 1.0);
    match prev {
        Some(p) => p + ALPHA * (sample - p),
        None => sample,
    }
}

/// Feeds one measured execution into the monitor. Called by
/// [`crate::cascade::observe_execution`]; callers integrating the
/// pipeline by hand can also call it directly.
pub fn observe_choice(choice: &Choice, measured_seconds: f64) {
    let mut st = lock();
    st.observed += 1;
    if let Some(info) = &choice.cascade {
        let fell_through = info.stage == CascadeStage::Stage2;
        st.fallthrough = Some(ewma(st.fallthrough, fell_through as u64 as f64));
        if fell_through {
            wise_trace::counter("drift.fallthrough", 1);
        }
        if info.stage == CascadeStage::Stage1 {
            if let Some(predicted) = info.predicted_seconds {
                if measured_seconds > 0.0 && predicted > 0.0 {
                    let ratio = measured_seconds / predicted;
                    st.regret = Some(ewma(st.regret, ratio));
                    let permille = (ratio * 1000.0).round().clamp(0.0, 1e12) as u64;
                    wise_trace::observe("drift.regret", permille);
                }
            }
        }
    }
    telemetry::set_drift_gauge(st.snapshot());
}

/// The monitor's current verdict.
pub fn status() -> DriftStatus {
    lock().status()
}

/// A copy of the full monitor state.
pub fn stats() -> DriftStats {
    let st = lock();
    DriftStats {
        status: st.status(),
        regret_ewma: st.regret,
        fallthrough_ewma: st.fallthrough,
        observed: st.observed,
    }
}

/// Clears the monitor (tests, benchmark stages) and resets the
/// telemetry gauge to match.
pub fn reset() {
    let mut st = lock();
    *st = DriftState::default();
    telemetry::set_drift_gauge(st.snapshot());
}

/// Serializes unit tests (in this crate) that touch the process-global
/// monitor state; `observe_execution` feeds it from any test that runs
/// the selection loop.
#[cfg(test)]
pub(crate) fn monitor_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static TEST_LOCK: Mutex<()> = Mutex::new(());
    TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cascade::{CascadeInfo, FallthroughReason};
    use crate::classes::SpeedupClass;

    fn lock_tests() -> std::sync::MutexGuard<'static, ()> {
        monitor_test_lock()
    }

    fn choice_with(cascade: Option<CascadeInfo>) -> Choice {
        let catalog = wise_kernels::method::MethodConfig::catalog();
        Choice {
            config: catalog[0],
            index: 0,
            predictions: vec![SpeedupClass::C1; catalog.len()],
            features: wise_features::FeatureVector::from_values(vec![
                0.0;
                wise_features::N_FEATURES
            ]),
            timing: Default::default(),
            decision_paths: Vec::new(),
            cascade,
            request_id: 0,
        }
    }

    fn stage1(predicted: f64) -> Choice {
        choice_with(Some(CascadeInfo {
            stage: CascadeStage::Stage1,
            margin: 2.0,
            threshold: Some(0.5),
            fallthrough: None,
            predicted_seconds: Some(predicted),
        }))
    }

    fn stage2() -> Choice {
        choice_with(Some(CascadeInfo {
            stage: CascadeStage::Stage2,
            margin: 0.1,
            threshold: Some(0.5),
            fallthrough: Some(FallthroughReason::LowMargin),
            predicted_seconds: None,
        }))
    }

    #[test]
    fn stays_stable_below_min_observations_then_flags_regret() {
        let _g = lock_tests();
        reset();
        // Wildly slow executions, but fewer than the arming minimum.
        for _ in 0..DRIFT_MIN_OBSERVATIONS - 1 {
            observe_choice(&stage1(1e-3), 10e-3);
        }
        assert_eq!(status(), DriftStatus::Stable);
        // Crossing the minimum with a 10x regret EWMA suggests retrain.
        observe_choice(&stage1(1e-3), 10e-3);
        assert_eq!(status(), DriftStatus::RetrainSuggested);
        let s = stats();
        assert!(s.regret_ewma.unwrap() > REGRET_RETRAIN, "{s:?}");
        assert_eq!(s.observed, DRIFT_MIN_OBSERVATIONS);
        reset();
    }

    #[test]
    fn accurate_predictions_stay_stable_and_recover() {
        let _g = lock_tests();
        reset();
        for _ in 0..DRIFT_MIN_OBSERVATIONS {
            observe_choice(&stage1(1e-3), 1e-3);
        }
        assert_eq!(status(), DriftStatus::Stable);
        // A burst of 2x-slow samples lifts the EWMA into warning...
        for _ in 0..DRIFT_WINDOW {
            observe_choice(&stage1(1e-3), 2e-3);
        }
        assert_eq!(status(), DriftStatus::Warning);
        // ...and a long accurate stretch decays it back to stable.
        for _ in 0..4 * DRIFT_WINDOW {
            observe_choice(&stage1(1e-3), 1e-3);
        }
        assert_eq!(status(), DriftStatus::Stable);
        reset();
    }

    #[test]
    fn all_fallthrough_suggests_retraining_and_feeds_the_gauge() {
        let _g = lock_tests();
        reset();
        for _ in 0..2 * DRIFT_WINDOW {
            observe_choice(&stage2(), 1e-3);
        }
        assert_eq!(status(), DriftStatus::RetrainSuggested);
        let s = stats();
        assert!(s.fallthrough_ewma.unwrap() > FALLTHROUGH_RETRAIN, "{s:?}");
        assert_eq!(s.regret_ewma, None);
        // The trace-side gauge mirrors the monitor.
        let gauge = telemetry::drift_gauge();
        assert_eq!(gauge.level, DriftLevel::RetrainSuggested);
        assert_eq!(gauge.observed, s.observed);
        assert!(gauge.fallthrough_permille > 800, "{gauge:?}");
        reset();
        assert_eq!(telemetry::drift_gauge().observed, 0);
    }

    #[test]
    fn non_cascaded_choices_count_but_move_no_signal() {
        let _g = lock_tests();
        reset();
        for _ in 0..2 * DRIFT_MIN_OBSERVATIONS {
            observe_choice(&choice_with(None), 1e-3);
        }
        let s = stats();
        assert_eq!(s.status, DriftStatus::Stable);
        assert_eq!(s.regret_ewma, None);
        assert_eq!(s.fallthrough_ewma, None);
        assert_eq!(s.observed, 2 * DRIFT_MIN_OBSERVATIONS);
        reset();
    }
}
