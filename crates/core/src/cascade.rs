//! Cascaded two-stage selection: an O(nnz) fast path that answers
//! easy matrices in microseconds (ROADMAP item 2; cf. Elafrou et
//! al.'s lightweight selection and the cascaded-prediction line of
//! work in PAPERS.md).
//!
//! **Stage 1** extracts the cheap probe
//! ([`wise_features::ProbeFeatures`]: sizes + full R/C statistics, one
//! O(nnz) pass, no tiling/locality sweeps), walks every registry tree
//! over the 22 probe-known features
//! ([`DecisionTree::predict_partial`](wise_ml::DecisionTree::predict_partial)),
//! and computes a *vote margin*. If the margin clears a threshold
//! calibrated on the training labels — and the roofline veto
//! ([`wise_perf::QuickBounds`]) finds the winning class physically
//! plausible — the selection is answered immediately. **Stage 2**
//! falls through to the full pipeline, bit-identical to a plain
//! [`Wise::select`](crate::pipeline::Wise::select).
//!
//! Because the probe's feature values are *bit-identical* to the full
//! extractor's, a partial tree walk that reaches a leaf provably
//! equals the full walk; such unanimous-leaf votes get margin
//! `f64::MAX` and are always safe to accept. Early-stopped walks carry
//! training-frequency confidence instead, and the calibrated threshold
//! ([`wise_perf::calibrate_margin_threshold`]) admits exactly the
//! margin range whose training-set cascade P-ratio stays within
//! [`P_RATIO_REL_FLOOR`] of full WISE.
//!
//! The loop is closed two ways: measured execution seconds feed a
//! per-process regret accumulator ([`observe_execution`], surfaced as
//! `select.cascade.regret` ledger telemetry), and the `WISE_CASCADE`
//! knob (`0|off|1|on|auto`; malformed values warn once, like
//! `WISE_SIMD`) can disable the fast path entirely — `WISE_CASCADE=0`
//! is bit-exact with the pre-cascade pipeline.

use crate::classes::SpeedupClass;
use crate::labels::CorpusLabels;
use crate::registry::ModelRegistry;
use crate::select::select_index;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use wise_ml::PartialPrediction;
use wise_perf::{calibrate_margin_threshold, Estimator, MachineModel, MarginSample};
use wise_trace::env_knob::{Knob, KnobError};

/// The cascade's training-set quality contract: the calibrated gate
/// must keep the cascade P-ratio at ≥ 98% of full WISE's.
pub const P_RATIO_REL_FLOOR: f64 = 0.98;

// ---------------------------------------------------------------------
// WISE_CASCADE knob
// ---------------------------------------------------------------------

/// Runtime cascade mode. `Auto` (the default, also spelled `1`/`on`)
/// engages stage 1 whenever the selecting [`Wise`] carries a
/// calibrated gate; `Off` forces the full pipeline for every matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CascadeMode {
    Off,
    Auto,
}

impl CascadeMode {
    fn to_u8(self) -> u8 {
        match self {
            CascadeMode::Off => 0,
            CascadeMode::Auto => 1,
        }
    }

    fn from_u8(v: u8) -> CascadeMode {
        if v == 0 {
            CascadeMode::Off
        } else {
            CascadeMode::Auto
        }
    }
}

/// The `WISE_CASCADE` knob, on the shared [`wise_trace::env_knob`]
/// grammar.
const CASCADE_KNOB: Knob =
    Knob::new("WISE_CASCADE", "a cascade mode (expected 0/off, 1/on, or auto)");

/// Interpreter shared by [`parse_wise_cascade`] and the env read.
fn cascade_interp(norm: &str) -> Option<CascadeMode> {
    match norm {
        "0" | "off" => Some(CascadeMode::Off),
        "1" | "on" | "auto" => Some(CascadeMode::Auto),
        _ => None,
    }
}

/// Parses a raw `WISE_CASCADE` value. `Ok(None)` means unset (use the
/// default, [`CascadeMode::Auto`]); `1`, `on` and `auto` are synonyms.
pub fn parse_wise_cascade(raw: Option<&str>) -> Result<Option<CascadeMode>, KnobError> {
    CASCADE_KNOB.parse(raw, cascade_interp)
}

const MODE_UNINIT: u8 = u8::MAX;
static MODE: AtomicU8 = AtomicU8::new(MODE_UNINIT);

/// The process-wide cascade mode: `WISE_CASCADE`, resolved lazily on
/// first use and cached. A malformed value falls back to the default
/// *loudly* — a once-per-process stderr warning plus a
/// `select.cascade_env_invalid` trace counter — never a silent
/// behavior change.
pub fn mode() -> CascadeMode {
    match MODE.load(Ordering::Relaxed) {
        MODE_UNINIT => {
            let m = mode_from_env();
            MODE.store(m.to_u8(), Ordering::Relaxed);
            m
        }
        v => CascadeMode::from_u8(v),
    }
}

fn mode_from_env() -> CascadeMode {
    CASCADE_KNOB
        .read("select.cascade_env_invalid", "cascade stays in auto mode", cascade_interp)
        .unwrap_or(CascadeMode::Auto)
}

/// Overrides the process-wide mode (tests, experiments).
pub fn set_mode(m: CascadeMode) {
    MODE.store(m.to_u8(), Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Gate: calibrated acceptance threshold + roofline veto
// ---------------------------------------------------------------------

/// The distilled stage-1 confidence gate, calibrated at training time
/// and serialized inside [`Wise`](crate::pipeline::Wise). Models saved
/// before the cascade existed deserialize without one and simply never
/// take the fast path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CascadeGate {
    /// Accept stage-1 votes with `margin >= threshold`. `None` means
    /// calibration found no acceptable margin range: the gate never
    /// fires (every selection falls through).
    pub threshold: Option<f64>,
    /// Machine model for the roofline veto; `None` (measured-backend
    /// training) disables the veto.
    pub machine: Option<MachineModel>,
    /// Training-set cascade P-ratio at the chosen threshold.
    pub calibration_p_ratio: f64,
    /// Full-WISE P-ratio on the same training set.
    pub full_p_ratio: f64,
    /// Fraction of training matrices the gate accepted at calibration.
    pub calibration_accept_rate: f64,
}

/// Which stage of the cascade produced a [`Choice`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CascadeStage {
    /// Answered by the O(nnz) probe + partial tree walk.
    Stage1,
    /// Fell through to the full pipeline.
    Stage2,
}

/// Why stage 1 declined to answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FallthroughReason {
    /// Calibration admitted no margin range; the gate never fires.
    NoThreshold,
    /// The vote margin fell below the calibrated threshold.
    LowMargin,
    /// The roofline veto: the winning class' representative speedup
    /// exceeds what the machine model deems physically plausible.
    EstimatorVeto,
}

/// Cascade provenance attached to a [`Choice`](crate::pipeline::Choice)
/// (absent entirely when the cascade is off or the model has no gate,
/// keeping `WISE_CASCADE=0` serializations byte-identical to pre-
/// cascade ones).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CascadeInfo {
    /// Stage that produced the answer.
    pub stage: CascadeStage,
    /// The stage-1 vote margin (`f64::MAX` when every tree walk
    /// reached a leaf — the answer then provably equals full WISE's).
    pub margin: f64,
    /// Calibrated acceptance threshold in force.
    pub threshold: Option<f64>,
    /// Why stage 1 declined (stage 2 only).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub fallthrough: Option<FallthroughReason>,
    /// Stage 1 only: quick roofline estimate of the chosen
    /// configuration's per-iteration seconds — the baseline the regret
    /// accumulator compares measured samples against.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub predicted_seconds: Option<f64>,
}

// ---------------------------------------------------------------------
// Stage-1 vote
// ---------------------------------------------------------------------

/// The outcome of one stage-1 partial vote across all registry heads.
#[derive(Debug, Clone, PartialEq)]
pub struct StageOneVote {
    /// Per-head predicted class, catalog order.
    pub predictions: Vec<SpeedupClass>,
    /// Catalog index [`select_index`] picks from those classes.
    pub index: usize,
    /// Acceptance margin: `min_confidence × (1 + speedup gap)` between
    /// the winner and the best differently-classed head, or `f64::MAX`
    /// when every walk reached a leaf.
    pub margin: f64,
    /// Whether every head's partial walk reached a true leaf (the vote
    /// then equals the full pipeline's exactly).
    pub all_leaves: bool,
    /// Smallest per-head confidence in the vote.
    pub min_confidence: f64,
}

/// Folds per-head partial predictions into a [`StageOneVote`].
///
/// The margin multiplies the weakest head's confidence by one plus the
/// representative-speedup gap between the winning class and the best
/// head that predicted a *different* class (a unanimous vote has no
/// challenger; its gap is the winner's own representative speedup).
/// Any head stopped at an impure node can be wrong toward a faster
/// class, so the minimum over *all* heads is the honest choice.
pub fn fold_stage_one(
    catalog: &[wise_kernels::method::MethodConfig],
    partials: &[PartialPrediction],
) -> StageOneVote {
    assert_eq!(catalog.len(), partials.len(), "catalog/head count mismatch");
    let predictions: Vec<SpeedupClass> =
        partials.iter().map(|p| SpeedupClass::from_index(p.class)).collect();
    let index = select_index(catalog, &predictions);
    let winner = predictions[index];
    let top1 = winner.representative_speedup();
    let runner_up = predictions
        .iter()
        .filter(|&&c| c != winner)
        .map(|c| c.representative_speedup())
        .fold(f64::NAN, f64::max);
    let gap = if runner_up.is_nan() { top1 } else { (top1 - runner_up).max(0.0) };
    let min_confidence = partials.iter().map(|p| p.confidence).fold(1.0, f64::min);
    let all_leaves = partials.iter().all(|p| p.reached_leaf);
    let margin = if all_leaves { f64::MAX } else { min_confidence * (1.0 + gap) };
    StageOneVote { predictions, index, margin, all_leaves, min_confidence }
}

/// Runs the full stage-1 vote for a probe-known partial feature row.
pub fn stage_one_vote(registry: &ModelRegistry, known: &[Option<f64>]) -> StageOneVote {
    fold_stage_one(registry.catalog(), &registry.predict_partial(known))
}

// ---------------------------------------------------------------------
// Calibration
// ---------------------------------------------------------------------

/// Distills the confidence gate from a trained registry and its
/// training labels: every labeled matrix's *full* feature vector is
/// masked down to the probe-known subset (bit-identical to what the
/// runtime probe would produce), voted on, and scored against the
/// oracle; [`calibrate_margin_threshold`] then picks the most
/// permissive threshold whose training-set cascade P-ratio stays
/// within [`P_RATIO_REL_FLOOR`] of full WISE's.
pub fn calibrate_gate(
    registry: &ModelRegistry,
    labels: &CorpusLabels,
    estimator: &Estimator,
) -> CascadeGate {
    let _span = wise_trace::span("select.cascade.calibrate");
    assert_eq!(
        registry.catalog().len(),
        labels.catalog.len(),
        "registry and labels must share a catalog"
    );
    let catalog = registry.catalog();
    let mut samples = Vec::with_capacity(labels.matrices.len());
    for m in &labels.matrices {
        let oracle = m.seconds.iter().copied().fold(f64::MAX, f64::min);
        let full_idx = select_index(catalog, &registry.predict(&m.features));
        let p_full = oracle / m.seconds[full_idx];
        let known = wise_features::ProbeFeatures::mask_full(&m.features);
        let vote = stage_one_vote(registry, &known);
        let p_stage1 = oracle / m.seconds[vote.index];
        samples.push(MarginSample { margin: vote.margin, p_stage1, p_full });
    }
    let threshold = calibrate_margin_threshold(&samples, P_RATIO_REL_FLOOR);

    let n = samples.len() as f64;
    let full_p_ratio = samples.iter().map(|s| s.p_full).sum::<f64>() / n.max(1.0);
    let (mut cascade_sum, mut accepted) = (0.0, 0usize);
    for s in &samples {
        let fast = threshold.map(|t| s.margin >= t).unwrap_or(false);
        cascade_sum += if fast { s.p_stage1 } else { s.p_full };
        accepted += fast as usize;
    }
    CascadeGate {
        threshold,
        machine: estimator.machine().cloned(),
        calibration_p_ratio: cascade_sum / n.max(1.0),
        full_p_ratio,
        calibration_accept_rate: accepted as f64 / n.max(1.0),
    }
}

// ---------------------------------------------------------------------
// Regret feedback
// ---------------------------------------------------------------------

/// Per-process regret accumulator state: `(samples, Σ permille)` of
/// measured/predicted per-iteration time for stage-1 answers.
static REGRET: Mutex<(u64, u64)> = Mutex::new((0, 0));

/// Aggregated stage-1 regret so far in this process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegretStats {
    /// Measured stage-1 executions observed.
    pub observed: u64,
    /// Mean measured/predicted time ratio (1.0 = the roofline estimate
    /// was exact; > 1 = stage 1 was optimistic).
    pub mean_ratio: f64,
}

/// Feeds one measured execution back into the closed loop: the
/// per-request flight recorder (matching the record by
/// `choice.request_id`), the drift monitor ([`crate::drift`], which
/// sees every observation), and — for stage-1 choices carrying a
/// roofline prediction — the regret accumulator. Each regret
/// observation lands in the `select.cascade.regret` trace metric
/// (permille of measured/predicted) and in the process-global
/// [`regret_stats`].
pub fn observe_execution(choice: &crate::pipeline::Choice, measured_seconds: f64) {
    if choice.request_id != 0 && measured_seconds > 0.0 {
        wise_trace::telemetry::note_measured(choice.request_id, measured_seconds);
    }
    crate::drift::observe_choice(choice, measured_seconds);
    let Some(info) = &choice.cascade else { return };
    if info.stage != CascadeStage::Stage1 {
        return;
    }
    let Some(predicted) = info.predicted_seconds else { return };
    if !(measured_seconds > 0.0) || !(predicted > 0.0) {
        return;
    }
    let permille = (measured_seconds / predicted * 1000.0).round().clamp(0.0, 1e12) as u64;
    wise_trace::observe("select.cascade.regret", permille);
    let mut g = REGRET.lock().unwrap();
    g.0 += 1;
    g.1 += permille;
}

/// The process-global regret aggregate; `None` before any observation.
pub fn regret_stats() -> Option<RegretStats> {
    let g = REGRET.lock().unwrap();
    (g.0 > 0).then(|| RegretStats { observed: g.0, mean_ratio: g.1 as f64 / g.0 as f64 / 1000.0 })
}

/// Clears the regret accumulator (tests, benchmark stages).
pub fn reset_regret() {
    *REGRET.lock().unwrap() = (0, 0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_spellings() {
        assert_eq!(parse_wise_cascade(None), Ok(None));
        for s in ["0", "off", "OFF", " off "] {
            assert_eq!(parse_wise_cascade(Some(s)), Ok(Some(CascadeMode::Off)), "{s:?}");
        }
        for s in ["1", "on", "auto", "AUTO"] {
            assert_eq!(parse_wise_cascade(Some(s)), Ok(Some(CascadeMode::Auto)), "{s:?}");
        }
    }

    #[test]
    fn parse_rejects_malformed_values() {
        assert_eq!(parse_wise_cascade(Some("")), Err(KnobError::Empty { knob: "WISE_CASCADE" }));
        assert_eq!(parse_wise_cascade(Some("  ")), Err(KnobError::Empty { knob: "WISE_CASCADE" }));
        let err = parse_wise_cascade(Some("fast")).unwrap_err();
        assert!(matches!(err, KnobError::Invalid { knob: "WISE_CASCADE", .. }));
        assert!(err.to_string().contains("WISE_CASCADE"), "{err}");
    }

    fn head(class: u32, confidence: f64, reached_leaf: bool) -> PartialPrediction {
        PartialPrediction { class, confidence, reached_leaf, depth: 1 }
    }

    #[test]
    fn unanimous_leaf_vote_gets_max_margin() {
        let catalog = wise_kernels::method::MethodConfig::catalog();
        let partials: Vec<PartialPrediction> = catalog.iter().map(|_| head(1, 1.0, true)).collect();
        let vote = fold_stage_one(&catalog, &partials);
        assert!(vote.all_leaves);
        assert_eq!(vote.margin, f64::MAX);
        assert_eq!(vote.predictions[vote.index], SpeedupClass::C1);
    }

    #[test]
    fn weakest_head_bounds_the_margin() {
        let catalog = wise_kernels::method::MethodConfig::catalog();
        let mut partials: Vec<PartialPrediction> =
            catalog.iter().map(|_| head(1, 1.0, true)).collect();
        partials[3] = head(4, 0.6, false); // C4 head, shaky
        let vote = fold_stage_one(&catalog, &partials);
        assert!(!vote.all_leaves);
        assert_eq!(vote.predictions[vote.index], SpeedupClass::C4);
        assert!((vote.min_confidence - 0.6).abs() < 1e-12);
        // gap = rep(C4) - rep(C1) = 1/0.7 - 1.0
        let gap = SpeedupClass::C4.representative_speedup() - 1.0;
        assert!((vote.margin - 0.6 * (1.0 + gap)).abs() < 1e-12, "margin {}", vote.margin);
    }

    #[test]
    fn confident_vote_outranks_shaky_vote() {
        let catalog = wise_kernels::method::MethodConfig::catalog();
        let confident: Vec<PartialPrediction> =
            catalog.iter().map(|_| head(2, 0.95, false)).collect();
        let shaky: Vec<PartialPrediction> = catalog.iter().map(|_| head(2, 0.55, false)).collect();
        let mc = fold_stage_one(&catalog, &confident).margin;
        let ms = fold_stage_one(&catalog, &shaky).margin;
        assert!(mc > ms, "{mc} vs {ms}");
    }

    #[test]
    fn regret_accumulator_rounds_trip() {
        // observe_execution also feeds the global drift monitor.
        let _g = crate::drift::monitor_test_lock();
        reset_regret();
        assert_eq!(regret_stats(), None);
        // Build a minimal stage-1 choice by hand.
        let catalog = wise_kernels::method::MethodConfig::catalog();
        let choice = crate::pipeline::Choice {
            config: catalog[0],
            index: 0,
            predictions: vec![SpeedupClass::C1; catalog.len()],
            features: wise_features::FeatureVector::from_values(vec![
                0.0;
                wise_features::N_FEATURES
            ]),
            timing: Default::default(),
            decision_paths: Vec::new(),
            cascade: Some(CascadeInfo {
                stage: CascadeStage::Stage1,
                margin: f64::MAX,
                threshold: Some(0.5),
                fallthrough: None,
                predicted_seconds: Some(1e-3),
            }),
            request_id: 0,
        };
        observe_execution(&choice, 2e-3); // 2x the prediction
        observe_execution(&choice, 1e-3); // exact
        let stats = regret_stats().unwrap();
        assert_eq!(stats.observed, 2);
        assert!((stats.mean_ratio - 1.5).abs() < 1e-9, "ratio {}", stats.mean_ratio);
        // Stage-2 and prediction-less choices are ignored.
        let mut stage2 = choice.clone();
        stage2.cascade = Some(CascadeInfo {
            stage: CascadeStage::Stage2,
            margin: 0.1,
            threshold: Some(0.5),
            fallthrough: Some(FallthroughReason::LowMargin),
            predicted_seconds: None,
        });
        observe_execution(&stage2, 5e-3);
        let mut plain = choice;
        plain.cascade = None;
        observe_execution(&plain, 5e-3);
        assert_eq!(regret_stats().unwrap().observed, 2);
        reset_regret();
        assert_eq!(regret_stats(), None);
    }

    #[test]
    fn cascade_info_serde_roundtrips_and_skips_none_fields() {
        let info = CascadeInfo {
            stage: CascadeStage::Stage1,
            margin: f64::MAX,
            threshold: Some(0.75),
            fallthrough: None,
            predicted_seconds: Some(2.5e-4),
        };
        let json = serde_json::to_string(&info).unwrap();
        assert!(!json.contains("fallthrough"), "{json}");
        let back: CascadeInfo = serde_json::from_str(&json).unwrap();
        assert_eq!(back, info);
        let through = CascadeInfo {
            stage: CascadeStage::Stage2,
            margin: 0.2,
            threshold: Some(0.75),
            fallthrough: Some(FallthroughReason::EstimatorVeto),
            predicted_seconds: None,
        };
        let json = serde_json::to_string(&through).unwrap();
        assert!(json.contains("EstimatorVeto"), "{json}");
        assert!(!json.contains("predicted_seconds"), "{json}");
        let back: CascadeInfo = serde_json::from_str(&json).unwrap();
        assert_eq!(back, through);
    }
}
