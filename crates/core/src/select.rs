//! The method-selection heuristic (paper Section 4.4).
//!
//! WISE picks the `{method, parameter}` pair with the highest predicted
//! speedup class. Ties are broken toward lower preprocessing cost:
//! first by method (CSR < SELLPACK < Sell-c-σ < Sell-c-R < LAV-1Seg <
//! LAV), then by smaller parameter values — the paper observes smaller
//! parameters mean cheaper preprocessing (e.g. LAV T=70% before 80%).

use crate::classes::SpeedupClass;
use wise_kernels::method::MethodConfig;

/// Picks the winning catalog index from per-configuration class
/// predictions (catalog order).
pub fn select_index(catalog: &[MethodConfig], predictions: &[SpeedupClass]) -> usize {
    assert_eq!(catalog.len(), predictions.len(), "catalog/prediction length mismatch");
    assert!(!catalog.is_empty(), "empty catalog");
    let mut best = 0usize;
    for i in 1..catalog.len() {
        let better = predictions[i] > predictions[best]
            || (predictions[i] == predictions[best]
                && catalog[i].preproc_key() < catalog[best].preproc_key());
        if better {
            best = i;
        }
    }
    best
}

/// Like [`select_index`] but returns the configuration itself.
pub fn select_config(catalog: &[MethodConfig], predictions: &[SpeedupClass]) -> MethodConfig {
    catalog[select_index(catalog, predictions)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wise_kernels::Schedule;

    fn catalog() -> Vec<MethodConfig> {
        MethodConfig::catalog()
    }

    #[test]
    fn highest_class_wins() {
        let cat = catalog();
        let mut preds = vec![SpeedupClass::C0; cat.len()];
        preds[17] = SpeedupClass::C5;
        assert_eq!(select_index(&cat, &preds), 17);
    }

    #[test]
    fn tie_breaks_toward_cheaper_preprocessing() {
        let cat = catalog();
        // Everything predicts C3: CSR (cheapest) must win; among CSR the
        // catalog's first entry is kept (stable ordering).
        let preds = vec![SpeedupClass::C3; cat.len()];
        let chosen = select_config(&cat, &preds);
        assert_eq!(chosen.method, wise_kernels::Method::Csr);
    }

    #[test]
    fn lav_ties_prefer_smaller_t() {
        let cat = vec![MethodConfig::lav(8, 0.9), MethodConfig::lav(8, 0.7)];
        let preds = vec![SpeedupClass::C6, SpeedupClass::C6];
        assert_eq!(select_config(&cat, &preds).t, 0.7);
    }

    #[test]
    fn sigma_ties_prefer_smaller_sigma() {
        let cat = vec![
            MethodConfig::sell_c_sigma(8, 16384, Schedule::Dyn),
            MethodConfig::sell_c_sigma(8, 512, Schedule::Dyn),
        ];
        let preds = vec![SpeedupClass::C4, SpeedupClass::C4];
        assert_eq!(select_config(&cat, &preds).sigma, 512);
    }

    #[test]
    fn all_slowdowns_fall_back_to_csr() {
        // If nothing beats CSR, WISE must pick a CSR schedule (no
        // conversion cost for no benefit).
        let cat = catalog();
        let preds = vec![SpeedupClass::C0; cat.len()];
        assert_eq!(select_config(&cat, &preds).method, wise_kernels::Method::Csr);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        select_index(&catalog(), &[SpeedupClass::C0]);
    }
}

/// Amortization-aware selection: picks the configuration minimizing
/// *total* cost over `n_iterations` SpMV calls, including the one-time
/// format conversion — the quantitative form of Section 4.1's "picks
/// the method ... while including the preprocessing cost".
///
/// Execution time per iteration is reconstructed from the predicted
/// class's representative relative time and `best_csr_seconds`;
/// `preproc_seconds` holds the per-configuration conversion estimate
/// (catalog order). For tiny `n_iterations` this collapses to CSR (no
/// conversion is worth it); for large `n_iterations` it converges to
/// [`select_index`].
pub fn select_index_amortized(
    catalog: &[MethodConfig],
    predictions: &[SpeedupClass],
    preproc_seconds: &[f64],
    best_csr_seconds: f64,
    n_iterations: u64,
) -> usize {
    assert_eq!(catalog.len(), predictions.len(), "catalog/prediction length mismatch");
    assert_eq!(catalog.len(), preproc_seconds.len(), "catalog/preproc length mismatch");
    assert!(!catalog.is_empty(), "empty catalog");
    assert!(best_csr_seconds > 0.0, "need a positive baseline time");
    let n = n_iterations.max(1) as f64;
    let total = |i: usize| -> f64 {
        let per_iter = predictions[i].representative_relative_time() * best_csr_seconds;
        preproc_seconds[i] + n * per_iter
    };
    let mut best = 0usize;
    for i in 1..catalog.len() {
        let better = total(i) < total(best) - 1e-18
            || (total(i) <= total(best) + 1e-18
                && catalog[i].preproc_key() < catalog[best].preproc_key());
        if better {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod amortized_tests {
    use super::*;
    use crate::classes::SpeedupClass;

    fn two_config_setup() -> (Vec<MethodConfig>, Vec<SpeedupClass>, Vec<f64>) {
        // CSR at parity (free) vs LAV at >2x speedup (expensive to build).
        let catalog =
            vec![MethodConfig::csr(wise_kernels::Schedule::Dyn), MethodConfig::lav(8, 0.8)];
        let predictions = vec![SpeedupClass::C1, SpeedupClass::C6];
        let preproc = vec![0.0, 50.0]; // LAV conversion = 50 baseline units
        (catalog, predictions, preproc)
    }

    #[test]
    fn one_iteration_prefers_no_conversion() {
        let (cat, preds, preproc) = two_config_setup();
        let i = select_index_amortized(&cat, &preds, &preproc, 1.0, 1);
        assert_eq!(cat[i].method, wise_kernels::Method::Csr);
    }

    #[test]
    fn many_iterations_prefer_the_fast_method() {
        let (cat, preds, preproc) = two_config_setup();
        // Saves 0.55s/iter; conversion 50s pays off after ~91 iters.
        let i = select_index_amortized(&cat, &preds, &preproc, 1.0, 1000);
        assert_eq!(cat[i].method, wise_kernels::Method::Lav);
    }

    #[test]
    fn crossover_is_where_savings_equal_conversion() {
        let (cat, preds, preproc) = two_config_setup();
        // per-iter: CSR 1.0, LAV 0.45 -> breakeven at 50/0.55 = 90.9.
        let before = select_index_amortized(&cat, &preds, &preproc, 1.0, 90);
        let after = select_index_amortized(&cat, &preds, &preproc, 1.0, 92);
        assert_eq!(cat[before].method, wise_kernels::Method::Csr);
        assert_eq!(cat[after].method, wise_kernels::Method::Lav);
    }

    #[test]
    fn converges_to_plain_selection_for_huge_n() {
        let cat = MethodConfig::catalog();
        let preds: Vec<SpeedupClass> =
            (0..cat.len()).map(|i| SpeedupClass::from_index((i % 7) as u32)).collect();
        let preproc = vec![1.0; cat.len()];
        let amortized = select_index_amortized(&cat, &preds, &preproc, 1.0, u64::MAX / 2);
        let plain = select_index(&cat, &preds);
        assert_eq!(preds[amortized], preds[plain], "same class tier at n -> inf");
    }
}
