//! Matrix Market (`.mtx`) reading and writing.
//!
//! Supports the `matrix coordinate` class with `real`, `integer`, and
//! `pattern` fields and `general`/`symmetric` symmetry — enough to load
//! every SuiteSparse matrix the paper uses, so a user with the actual
//! collection can feed it straight into the pipeline.

use crate::coo::DupPolicy;
use crate::{Coo, Csr, MatrixError, Result};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Value field of the Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    /// Pattern files carry no values; entries are read as 1.0.
    Pattern,
}

/// Symmetry of the Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    /// Off-diagonal entries are mirrored across the diagonal.
    Symmetric,
}

/// Reads a Matrix Market file from disk into CSR.
pub fn read_matrix_market(path: impl AsRef<Path>) -> Result<Csr> {
    let f = std::fs::File::open(path)?;
    read_matrix_market_from(BufReader::new(f))
}

/// Reads Matrix Market data from any reader into CSR.
pub fn read_matrix_market_from<R: Read>(reader: R) -> Result<Csr> {
    let mut lines = BufReader::new(reader).lines();

    let header = lines.next().ok_or_else(|| MatrixError::Parse("empty file".into()))??;
    let head: Vec<&str> = header.split_whitespace().collect();
    if head.len() < 5 || !head[0].starts_with("%%MatrixMarket") {
        return Err(MatrixError::Parse(format!("bad header line: {header}")));
    }
    if !head[1].eq_ignore_ascii_case("matrix") || !head[2].eq_ignore_ascii_case("coordinate") {
        return Err(MatrixError::Parse(format!(
            "only 'matrix coordinate' is supported, got '{} {}'",
            head[1], head[2]
        )));
    }
    let field = match head[3].to_ascii_lowercase().as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => return Err(MatrixError::Parse(format!("unsupported field '{other}'"))),
    };
    let symmetry = match head[4].to_ascii_lowercase().as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        other => return Err(MatrixError::Parse(format!("unsupported symmetry '{other}'"))),
    };

    // Skip comments, then read the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(line);
        break;
    }
    let size_line = size_line.ok_or_else(|| MatrixError::Parse("missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>().map_err(|e| MatrixError::Parse(e.to_string())))
        .collect::<Result<_>>()?;
    if dims.len() != 3 {
        return Err(MatrixError::Parse(format!("bad size line: {size_line}")));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let cap = if symmetry == Symmetry::Symmetric { nnz * 2 } else { nnz };
    let mut coo = Coo::with_capacity(nrows, ncols, cap);
    let mut read = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| MatrixError::Parse(format!("bad entry: {t}")))?
            .parse()
            .map_err(|e: std::num::ParseIntError| MatrixError::Parse(e.to_string()))?;
        let c: usize = it
            .next()
            .ok_or_else(|| MatrixError::Parse(format!("bad entry: {t}")))?
            .parse()
            .map_err(|e: std::num::ParseIntError| MatrixError::Parse(e.to_string()))?;
        let v: f64 = match field {
            Field::Pattern => 1.0,
            Field::Real | Field::Integer => it
                .next()
                .ok_or_else(|| MatrixError::Parse(format!("missing value: {t}")))?
                .parse()
                .map_err(|e: std::num::ParseFloatError| MatrixError::Parse(e.to_string()))?,
        };
        if r == 0 || c == 0 {
            return Err(MatrixError::Parse("matrix market indices are 1-based".into()));
        }
        coo.push(r - 1, c - 1, v)?;
        if symmetry == Symmetry::Symmetric && r != c {
            coo.push(c - 1, r - 1, v)?;
        }
        read += 1;
    }
    if read != nnz {
        return Err(MatrixError::Parse(format!(
            "header declared {nnz} entries but file had {read}"
        )));
    }
    Ok(coo.to_csr(DupPolicy::Sum))
}

/// Writes a CSR matrix as `matrix coordinate real general`.
pub fn write_matrix_market(m: &Csr, path: impl AsRef<Path>) -> Result<()> {
    let f = std::fs::File::create(path)?;
    write_matrix_market_to(m, BufWriter::new(f))
}

/// Writes Matrix Market data to any writer.
pub fn write_matrix_market_to<W: Write>(m: &Csr, mut w: W) -> Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by wise-matrix")?;
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for r in 0..m.nrows() {
        for (c, v) in m.row(r) {
            writeln!(w, "{} {} {:e}", r + 1, c + 1, v)?;
        }
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_str(s: &str) -> Result<Csr> {
        read_matrix_market_from(s.as_bytes())
    }

    #[test]
    fn parses_general_real() {
        let m = read_str(
            "%%MatrixMarket matrix coordinate real general\n\
             % a comment\n\
             3 3 3\n\
             1 1 2.0\n\
             2 3 -1.5\n\
             3 1 4.0\n",
        )
        .unwrap();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row_vals(1), &[-1.5]);
    }

    #[test]
    fn parses_pattern() {
        let m = read_str(
            "%%MatrixMarket matrix coordinate pattern general\n\
             2 2 2\n\
             1 2\n\
             2 1\n",
        )
        .unwrap();
        assert_eq!(m.row_vals(0), &[1.0]);
        assert_eq!(m.row_vals(1), &[1.0]);
    }

    #[test]
    fn symmetric_mirrors_offdiagonal() {
        let m = read_str(
            "%%MatrixMarket matrix coordinate real symmetric\n\
             3 3 3\n\
             1 1 1.0\n\
             2 1 2.0\n\
             3 2 3.0\n",
        )
        .unwrap();
        assert_eq!(m.nnz(), 5); // diag kept once; two mirrored pairs
        assert_eq!(m.row_cols(0), &[0, 1]);
        assert_eq!(m.row_cols(1), &[0, 2]);
    }

    #[test]
    fn rejects_count_mismatch() {
        let e = read_str(
            "%%MatrixMarket matrix coordinate real general\n\
             2 2 2\n\
             1 1 1.0\n",
        );
        assert!(e.is_err());
    }

    #[test]
    fn rejects_zero_based_indices() {
        let e = read_str(
            "%%MatrixMarket matrix coordinate real general\n\
             2 2 1\n\
             0 1 1.0\n",
        );
        assert!(e.is_err());
    }

    #[test]
    fn rejects_unsupported_format() {
        assert!(read_str("%%MatrixMarket matrix array real general\n1 1\n1.0\n").is_err());
        assert!(read_str("%%MatrixMarket matrix coordinate complex general\n1 1 0\n").is_err());
    }

    #[test]
    fn roundtrip() {
        let mut coo = Coo::new(4, 5);
        coo.push(0, 4, 1.25).unwrap();
        coo.push(3, 0, -2.0).unwrap();
        coo.push(1, 2, 0.5).unwrap();
        let m = coo.to_csr(DupPolicy::Sum);
        let mut buf = Vec::new();
        write_matrix_market_to(&m, &mut buf).unwrap();
        let back = read_matrix_market_from(&buf[..]).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("wise_matrix_io_test.mtx");
        let m = Csr::identity(6);
        write_matrix_market(&m, &path).unwrap();
        let back = read_matrix_market(&path).unwrap();
        assert_eq!(back, m);
        let _ = std::fs::remove_file(&path);
    }
}
