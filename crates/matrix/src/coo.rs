//! Coordinate (triplet) storage.
//!
//! The matrix generators emit `(row, col, value)` triplets in arbitrary
//! order, possibly with duplicates (RMAT frequently samples the same
//! edge twice). [`Coo`] collects them and converts to [`Csr`], summing
//! or deduplicating as requested.

use crate::{Csr, MatrixError, Result};

/// How duplicate `(row, col)` entries are combined when converting to CSR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DupPolicy {
    /// Values of duplicates are summed (Matrix Market convention).
    Sum,
    /// Only the last-inserted duplicate is kept. RMAT graph generators
    /// use this: an edge sampled twice is still one edge.
    KeepLast,
}

/// A growable triplet matrix.
#[derive(Debug, Clone, Default)]
pub struct Coo {
    nrows: usize,
    ncols: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl Coo {
    /// An empty `nrows x ncols` triplet collection.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Coo { nrows, ncols, rows: Vec::new(), cols: Vec::new(), vals: Vec::new() }
    }

    /// Pre-allocates space for `cap` triplets.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        Coo {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (duplicates included).
    #[inline]
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Appends one triplet. Bounds are checked.
    pub fn push(&mut self, row: usize, col: usize, val: f64) -> Result<()> {
        if row >= self.nrows {
            return Err(MatrixError::RowOutOfBounds { row, nrows: self.nrows });
        }
        if col >= self.ncols {
            return Err(MatrixError::ColumnOutOfBounds { row, col: col as u32, ncols: self.ncols });
        }
        self.rows.push(row as u32);
        self.cols.push(col as u32);
        self.vals.push(val);
        Ok(())
    }

    /// Appends one triplet without bounds checks (generator hot path;
    /// checked in debug builds).
    #[inline]
    pub fn push_unchecked(&mut self, row: u32, col: u32, val: f64) {
        debug_assert!((row as usize) < self.nrows && (col as usize) < self.ncols);
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Converts to CSR, combining duplicates per `policy`.
    ///
    /// Two counting-sort passes (row-major, then per-row column sort)
    /// give O(nnz log nnz_row) overall; duplicates are merged after the
    /// sort so the result always satisfies the CSR invariants.
    pub fn to_csr(&self, policy: DupPolicy) -> Csr {
        // Counting sort by row.
        let mut counts = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            counts[r as usize + 1] += 1;
        }
        for i in 0..self.nrows {
            counts[i + 1] += counts[i];
        }
        let mut order: Vec<u32> = vec![0; self.len()];
        {
            let mut next = counts.clone();
            for (i, &r) in self.rows.iter().enumerate() {
                order[next[r as usize]] = i as u32;
                next[r as usize] += 1;
            }
        }
        // Per-row: sort by column (stable on insertion order so KeepLast
        // semantics can use the later entry), then merge duplicates.
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx = Vec::with_capacity(self.len());
        let mut vals = Vec::with_capacity(self.len());
        row_ptr.push(0usize);
        let mut scratch: Vec<(u32, u32)> = Vec::new(); // (col, triplet idx)
        for r in 0..self.nrows {
            scratch.clear();
            for &t in &order[counts[r]..counts[r + 1]] {
                scratch.push((self.cols[t as usize], t));
            }
            // Stable so equal columns keep insertion order (idx order).
            scratch.sort_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut j = i;
                while j + 1 < scratch.len() && scratch[j + 1].0 == c {
                    j += 1;
                }
                let v = match policy {
                    DupPolicy::Sum => {
                        scratch[i..=j].iter().map(|&(_, t)| self.vals[t as usize]).sum()
                    }
                    DupPolicy::KeepLast => {
                        let t = scratch[i..=j].iter().map(|&(_, t)| t).max().unwrap();
                        self.vals[t as usize]
                    }
                };
                col_idx.push(c);
                vals.push(v);
                i = j + 1;
            }
            row_ptr.push(col_idx.len());
        }
        Csr::from_parts_unchecked(self.nrows, self.ncols, row_ptr, col_idx, vals)
    }

    /// Iterator over stored triplets.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, f64)> + '_ {
        self.rows.iter().zip(self.cols.iter()).zip(self.vals.iter()).map(|((&r, &c), &v)| (r, c, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_bounds_checked() {
        let mut m = Coo::new(2, 2);
        assert!(m.push(0, 0, 1.0).is_ok());
        assert!(matches!(m.push(2, 0, 1.0), Err(MatrixError::RowOutOfBounds { .. })));
        assert!(matches!(m.push(0, 2, 1.0), Err(MatrixError::ColumnOutOfBounds { .. })));
    }

    #[test]
    fn to_csr_sorts_rows_and_cols() {
        let mut m = Coo::new(3, 3);
        m.push(2, 1, 5.0).unwrap();
        m.push(0, 2, 1.0).unwrap();
        m.push(0, 0, 2.0).unwrap();
        m.push(2, 0, 3.0).unwrap();
        let c = m.to_csr(DupPolicy::Sum);
        assert_eq!(c.nnz(), 4);
        assert_eq!(c.row_cols(0), &[0, 2]);
        assert_eq!(c.row_vals(0), &[2.0, 1.0]);
        assert_eq!(c.row_nnz(1), 0);
        assert_eq!(c.row_cols(2), &[0, 1]);
    }

    #[test]
    fn duplicates_summed() {
        let mut m = Coo::new(1, 2);
        m.push(0, 1, 1.0).unwrap();
        m.push(0, 1, 2.5).unwrap();
        let c = m.to_csr(DupPolicy::Sum);
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.row_vals(0), &[3.5]);
    }

    #[test]
    fn duplicates_keep_last() {
        let mut m = Coo::new(1, 2);
        m.push(0, 1, 1.0).unwrap();
        m.push(0, 0, 9.0).unwrap();
        m.push(0, 1, 2.5).unwrap();
        let c = m.to_csr(DupPolicy::KeepLast);
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.row_vals(0), &[9.0, 2.5]);
    }

    #[test]
    fn empty_matrix() {
        let m = Coo::new(4, 4);
        let c = m.to_csr(DupPolicy::Sum);
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.nrows(), 4);
    }

    #[test]
    fn iter_yields_all() {
        let mut m = Coo::new(2, 2);
        m.push(0, 0, 1.0).unwrap();
        m.push(1, 1, 2.0).unwrap();
        let got: Vec<_> = m.iter().collect();
        assert_eq!(got, vec![(0, 0, 1.0), (1, 1, 2.0)]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// COO->CSR with Sum policy equals naive dense accumulation.
        #[test]
        fn to_csr_matches_dense_accumulation(
            entries in proptest::collection::vec((0usize..12, 0usize..15, -4.0f64..4.0), 0..120)
        ) {
            let (nr, nc) = (12usize, 15usize);
            let mut coo = Coo::new(nr, nc);
            let mut dense = vec![0.0f64; nr * nc];
            for &(r, c, v) in &entries {
                coo.push(r, c, v).unwrap();
                dense[r * nc + c] += v;
            }
            let m = coo.to_csr(DupPolicy::Sum);
            let got = m.to_dense();
            for i in 0..nr * nc {
                prop_assert!((got[i] - dense[i]).abs() < 1e-12);
            }
        }

        /// KeepLast keeps exactly the last-pushed value per coordinate.
        #[test]
        fn keep_last_matches_map_semantics(
            entries in proptest::collection::vec((0usize..6, 0usize..6, 0.0f64..9.0), 1..60)
        ) {
            let mut coo = Coo::new(6, 6);
            let mut map = std::collections::HashMap::new();
            for &(r, c, v) in &entries {
                coo.push(r, c, v).unwrap();
                map.insert((r, c), v);
            }
            let m = coo.to_csr(DupPolicy::KeepLast);
            prop_assert_eq!(m.nnz(), map.len());
            for r in 0..6 {
                for (c, v) in m.row(r) {
                    prop_assert_eq!(map[&(r, c as usize)], v);
                }
            }
        }
    }
}
