//! Sparse-matrix substrate for the WISE reproduction.
//!
//! This crate provides the storage formats every other crate in the
//! workspace builds on:
//!
//! * [`Csr`] — Compressed Sparse Row, the baseline format of the paper
//!   (Section 2.1). All SpMV methods start from a CSR matrix.
//! * [`Coo`] — coordinate triplets, the natural output of the matrix
//!   generators and of Matrix Market files; convertible to CSR.
//! * [`Permutation`] — bijective index maps used by the reordering
//!   transformations (RFS row sorting, CFS column sorting).
//! * [`io`] — Matrix Market reading/writing so external matrices (e.g.
//!   actual SuiteSparse downloads) can be plugged into the pipeline.
//!
//! Conventions: row pointers are `usize`, column indices are `u32`
//! (the paper caps matrices at 2^26 rows/columns), values are `f64`.
//! Column indices within each CSR row are kept sorted; every constructor
//! either sorts or verifies.

pub mod coo;
pub mod csr;
pub mod io;
pub mod perm;

pub use coo::Coo;
pub use csr::Csr;
pub use perm::Permutation;

/// Errors produced by matrix construction and I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// A column index was >= the declared number of columns.
    ColumnOutOfBounds { row: usize, col: u32, ncols: usize },
    /// A row index was >= the declared number of rows.
    RowOutOfBounds { row: usize, nrows: usize },
    /// `row_ptr` is not monotonically non-decreasing or has wrong length.
    MalformedRowPtr(String),
    /// Column indices within a row are not strictly increasing.
    UnsortedRow { row: usize },
    /// A Matrix Market file could not be parsed.
    Parse(String),
    /// An I/O error (stringified; `std::io::Error` is not `Clone`).
    Io(String),
    /// A permutation was not a bijection on `0..n`.
    InvalidPermutation(String),
}

impl std::fmt::Display for MatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatrixError::ColumnOutOfBounds { row, col, ncols } => {
                write!(f, "column {col} out of bounds (ncols={ncols}) in row {row}")
            }
            MatrixError::RowOutOfBounds { row, nrows } => {
                write!(f, "row {row} out of bounds (nrows={nrows})")
            }
            MatrixError::MalformedRowPtr(s) => write!(f, "malformed row_ptr: {s}"),
            MatrixError::UnsortedRow { row } => write!(f, "row {row} has unsorted column indices"),
            MatrixError::Parse(s) => write!(f, "parse error: {s}"),
            MatrixError::Io(s) => write!(f, "io error: {s}"),
            MatrixError::InvalidPermutation(s) => write!(f, "invalid permutation: {s}"),
        }
    }
}

impl std::error::Error for MatrixError {}

impl From<std::io::Error> for MatrixError {
    fn from(e: std::io::Error) -> Self {
        MatrixError::Io(e.to_string())
    }
}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, MatrixError>;
