//! Compressed Sparse Row storage (paper Section 2.1).
//!
//! CSR stores a sparse `nrows x ncols` matrix as three arrays:
//! `vals` (nonzero values, row-major), `col_idx` (the column of each
//! value), and `row_ptr` (`nrows + 1` offsets; row `i` occupies
//! `vals[row_ptr[i]..row_ptr[i+1]]`).

use crate::{MatrixError, Permutation, Result};
use serde::{Deserialize, Serialize};

/// A sparse matrix in Compressed Sparse Row format.
///
/// ```
/// use wise_matrix::Csr;
/// // [[1, 0, 2],
/// //  [0, 0, 0],
/// //  [0, 3, 0]]
/// let m = Csr::try_new(3, 3, vec![0, 2, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0]).unwrap();
/// let mut y = vec![0.0; 3];
/// m.spmv_reference(&[1.0, 10.0, 100.0], &mut y);
/// assert_eq!(y, vec![201.0, 0.0, 30.0]);
/// ```
///
/// Invariants (checked by [`Csr::try_new`], preserved by every method):
/// * `row_ptr.len() == nrows + 1`, `row_ptr[0] == 0`,
///   `row_ptr[nrows] == vals.len() == col_idx.len()`,
/// * `row_ptr` is non-decreasing,
/// * column indices within each row are strictly increasing and
///   `< ncols`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    vals: Vec<f64>,
}

impl Csr {
    /// Builds a CSR matrix, validating every invariant.
    pub fn try_new(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        vals: Vec<f64>,
    ) -> Result<Self> {
        if row_ptr.len() != nrows + 1 {
            return Err(MatrixError::MalformedRowPtr(format!(
                "row_ptr.len()={} but nrows+1={}",
                row_ptr.len(),
                nrows + 1
            )));
        }
        if row_ptr[0] != 0 {
            return Err(MatrixError::MalformedRowPtr("row_ptr[0] != 0".into()));
        }
        if *row_ptr.last().unwrap() != col_idx.len() || col_idx.len() != vals.len() {
            return Err(MatrixError::MalformedRowPtr(format!(
                "row_ptr[-1]={} col_idx.len()={} vals.len()={}",
                row_ptr.last().unwrap(),
                col_idx.len(),
                vals.len()
            )));
        }
        for r in 0..nrows {
            if row_ptr[r] > row_ptr[r + 1] {
                return Err(MatrixError::MalformedRowPtr(format!("row_ptr decreases at row {r}")));
            }
            let cols = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in cols.windows(2) {
                if w[0] >= w[1] {
                    return Err(MatrixError::UnsortedRow { row: r });
                }
            }
            if let Some(&last) = cols.last() {
                if last as usize >= ncols {
                    return Err(MatrixError::ColumnOutOfBounds { row: r, col: last, ncols });
                }
            }
        }
        Ok(Csr { nrows, ncols, row_ptr, col_idx, vals })
    }

    /// Builds a CSR matrix without validation.
    ///
    /// Callers must uphold the invariants documented on [`Csr`]; this is
    /// used on hot construction paths (generators, format converters)
    /// that produce rows in sorted order by construction. Debug builds
    /// still validate.
    pub fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        vals: Vec<f64>,
    ) -> Self {
        #[cfg(debug_assertions)]
        {
            Csr::try_new(nrows, ncols, row_ptr, col_idx, vals).expect("invalid CSR parts")
        }
        #[cfg(not(debug_assertions))]
        {
            Csr { nrows, ncols, row_ptr, col_idx, vals }
        }
    }

    /// An `nrows x ncols` matrix with no nonzeros.
    pub fn zero(nrows: usize, ncols: usize) -> Self {
        Csr { nrows, ncols, row_ptr: vec![0; nrows + 1], col_idx: Vec::new(), vals: Vec::new() }
    }

    /// The identity matrix of dimension `n` (all diagonal values 1.0).
    pub fn identity(n: usize) -> Self {
        Csr {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n as u32).collect(),
            vals: vec![1.0; n],
        }
    }

    /// Builds from a dense row-major slice; entries with value 0.0 are dropped.
    pub fn from_dense(nrows: usize, ncols: usize, dense: &[f64]) -> Self {
        assert_eq!(dense.len(), nrows * ncols, "dense slice has wrong length");
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        for r in 0..nrows {
            for c in 0..ncols {
                let v = dense[r * ncols + c];
                if v != 0.0 {
                    col_idx.push(c as u32);
                    vals.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Csr { nrows, ncols, row_ptr, col_idx, vals }
    }

    /// Renders to a dense row-major vector (test/debug helper; O(nrows*ncols)).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.nrows * self.ncols];
        for r in 0..self.nrows {
            for (c, v) in self.row(r) {
                d[r * self.ncols + c as usize] = v;
            }
        }
        d
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    #[inline]
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    #[inline]
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Number of nonzeros in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Iterator over `(col, value)` pairs of row `r`, in increasing column order.
    #[inline]
    pub fn row(&self, r: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi].iter().copied().zip(self.vals[lo..hi].iter().copied())
    }

    /// Column indices of row `r` as a slice.
    #[inline]
    pub fn row_cols(&self, r: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Values of row `r` as a slice.
    #[inline]
    pub fn row_vals(&self, r: usize) -> &[f64] {
        &self.vals[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Nonzero counts of every row (the paper's R distribution).
    pub fn nnz_per_row(&self) -> Vec<usize> {
        (0..self.nrows).map(|r| self.row_nnz(r)).collect()
    }

    /// Nonzero counts of every column (the paper's C distribution).
    pub fn nnz_per_col(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.ncols];
        for &c in &self.col_idx {
            counts[c as usize] += 1;
        }
        counts
    }

    /// Transpose (also usable as a CSC view of `self`).
    ///
    /// Runs in O(nnz + nrows + ncols) with a counting pass and a scatter
    /// pass; output rows are sorted because input rows are scanned in
    /// order.
    pub fn transpose(&self) -> Csr {
        let _span = wise_trace::span("matrix.transpose");
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut vals = vec![0.0f64; self.nnz()];
        let mut next = counts;
        for r in 0..self.nrows {
            for (c, v) in self.row(r) {
                let dst = next[c as usize];
                col_idx[dst] = r as u32;
                vals[dst] = v;
                next[c as usize] += 1;
            }
        }
        Csr { nrows: self.ncols, ncols: self.nrows, row_ptr, col_idx, vals }
    }

    /// Values-free transpose of the sparsity pattern, written into
    /// caller-owned buffers (counting sort, O(nnz + nrows + ncols)).
    ///
    /// After the call `row_ptr` has `ncols + 1` entries and `col_idx`
    /// holds the row indices of every nonzero grouped by column, each
    /// group sorted ascending — exactly the `row_ptr`/`col_idx` pair of
    /// [`Csr::transpose`], without materializing the values array.
    /// Analysis passes that only need the transposed *pattern* (e.g.
    /// column-side feature extraction) use this to halve the transpose
    /// memory traffic; reusing the buffers across matrices makes
    /// repeated calls allocation-free once capacity is reached.
    pub fn transpose_pattern_into(&self, row_ptr: &mut Vec<usize>, col_idx: &mut Vec<u32>) {
        let _span = wise_trace::span("matrix.transpose_pattern");
        row_ptr.clear();
        row_ptr.resize(self.ncols + 1, 0);
        for &c in &self.col_idx {
            row_ptr[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            row_ptr[i + 1] += row_ptr[i];
        }
        col_idx.clear();
        col_idx.resize(self.nnz(), 0);
        // Scatter using `row_ptr[c]` itself as the write cursor for
        // column c (scanning rows in order keeps each group sorted);
        // afterwards `row_ptr[c]` holds the *end* of column c, i.e. the
        // array shifted left by one, which the backward pass undoes.
        for r in 0..self.nrows {
            for &c in self.row_cols(r) {
                col_idx[row_ptr[c as usize]] = r as u32;
                row_ptr[c as usize] += 1;
            }
        }
        for i in (1..=self.ncols).rev() {
            row_ptr[i] = row_ptr[i - 1];
        }
        row_ptr[0] = 0;
    }

    /// Values-free pattern transpose into freshly allocated buffers.
    /// See [`Csr::transpose_pattern_into`].
    pub fn transpose_pattern(&self) -> (Vec<usize>, Vec<u32>) {
        let mut row_ptr = Vec::new();
        let mut col_idx = Vec::new();
        self.transpose_pattern_into(&mut row_ptr, &mut col_idx);
        (row_ptr, col_idx)
    }

    /// Reference sequential SpMV: `y = A x`. The ground truth every
    /// optimized kernel is tested against.
    pub fn spmv_reference(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (c, v) in self.row(r) {
                acc += v * x[c as usize];
            }
            *out = acc;
        }
    }

    /// Returns a new matrix with rows permuted: row `i` of the result is
    /// row `perm.apply(i)` of `self` (i.e. `perm` maps new index -> old
    /// index, the "gather" convention used by RFS).
    pub fn permute_rows(&self, perm: &Permutation) -> Result<Csr> {
        if perm.len() != self.nrows {
            return Err(MatrixError::InvalidPermutation(format!(
                "row permutation has len {} but nrows={}",
                perm.len(),
                self.nrows
            )));
        }
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut vals = Vec::with_capacity(self.nnz());
        row_ptr.push(0);
        for new_r in 0..self.nrows {
            let old_r = perm.apply(new_r);
            col_idx.extend_from_slice(self.row_cols(old_r));
            vals.extend_from_slice(self.row_vals(old_r));
            row_ptr.push(col_idx.len());
        }
        Ok(Csr { nrows: self.nrows, ncols: self.ncols, row_ptr, col_idx, vals })
    }

    /// Returns a new matrix with columns relabeled: column `j` of `self`
    /// becomes column `perm.inverse_apply(j)` of the result (the
    /// "scatter" convention used by CFS: `perm` maps new index -> old
    /// index, so old index `j` lands at the new position where `j`
    /// appears in `perm`). Rows are re-sorted after relabeling.
    pub fn permute_cols(&self, perm: &Permutation) -> Result<Csr> {
        if perm.len() != self.ncols {
            return Err(MatrixError::InvalidPermutation(format!(
                "col permutation has len {} but ncols={}",
                perm.len(),
                self.ncols
            )));
        }
        let inv = perm.inverse();
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut vals = Vec::with_capacity(self.nnz());
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        row_ptr.push(0);
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for r in 0..self.nrows {
            scratch.clear();
            scratch.extend(self.row(r).map(|(c, v)| (inv.apply(c as usize) as u32, v)));
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &scratch {
                col_idx.push(c);
                vals.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Ok(Csr { nrows: self.nrows, ncols: self.ncols, row_ptr, col_idx, vals })
    }

    /// Approximate heap footprint in bytes (vals + col_idx + row_ptr).
    pub fn footprint_bytes(&self) -> usize {
        self.vals.len() * std::mem::size_of::<f64>()
            + self.col_idx.len() * std::mem::size_of::<u32>()
            + self.row_ptr.len() * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example matrix of Figure 1a of the paper (8x8, letters a..u
    /// replaced by 1.0..=14.0 in reading order).
    pub(crate) fn fig1a() -> Csr {
        // r0: c0,c3 ; r1: c1,c2,c4 ; r2: c2,c3 ; r3: c3,c4 ; r4: c0 ;
        // r5: c2,c3 ; r6: c0,c1,c2 ; r7: c3,c7
        let rows: Vec<Vec<u32>> = vec![
            vec![0, 3],
            vec![1, 2, 4],
            vec![2, 3],
            vec![3, 4],
            vec![0],
            vec![2, 3],
            vec![0, 1, 2],
            vec![3, 7],
        ];
        let mut row_ptr = vec![0usize];
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        let mut v = 1.0;
        for r in rows {
            for c in r {
                col_idx.push(c);
                vals.push(v);
                v += 1.0;
            }
            row_ptr.push(col_idx.len());
        }
        Csr::try_new(8, 8, row_ptr, col_idx, vals).unwrap()
    }

    #[test]
    fn try_new_valid() {
        let m = fig1a();
        assert_eq!(m.nrows(), 8);
        assert_eq!(m.ncols(), 8);
        assert_eq!(m.nnz(), 17);
        assert_eq!(m.row_nnz(1), 3);
        assert_eq!(m.row_cols(6), &[0, 1, 2]);
    }

    #[test]
    fn try_new_rejects_bad_row_ptr_len() {
        let e = Csr::try_new(2, 2, vec![0, 1], vec![0], vec![1.0]);
        assert!(matches!(e, Err(MatrixError::MalformedRowPtr(_))));
    }

    #[test]
    fn try_new_rejects_nonzero_start() {
        let e = Csr::try_new(1, 2, vec![1, 1], vec![], vec![]);
        assert!(matches!(e, Err(MatrixError::MalformedRowPtr(_))));
    }

    #[test]
    fn try_new_rejects_decreasing_row_ptr() {
        let e = Csr::try_new(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]);
        assert!(matches!(e, Err(MatrixError::MalformedRowPtr(_))));
    }

    #[test]
    fn try_new_rejects_unsorted_row() {
        let e = Csr::try_new(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
        assert_eq!(e, Err(MatrixError::UnsortedRow { row: 0 }));
    }

    #[test]
    fn try_new_rejects_duplicate_col() {
        let e = Csr::try_new(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]);
        assert_eq!(e, Err(MatrixError::UnsortedRow { row: 0 }));
    }

    #[test]
    fn try_new_rejects_col_out_of_bounds() {
        let e = Csr::try_new(1, 2, vec![0, 1], vec![5], vec![1.0]);
        assert!(matches!(e, Err(MatrixError::ColumnOutOfBounds { .. })));
    }

    #[test]
    fn zero_and_identity() {
        let z = Csr::zero(3, 4);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.nrows(), 3);
        let i = Csr::identity(4);
        assert_eq!(i.nnz(), 4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let mut y = vec![0.0; 4];
        i.spmv_reference(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn dense_roundtrip() {
        let dense = vec![
            1.0, 0.0, 2.0, //
            0.0, 0.0, 0.0, //
            3.0, 4.0, 0.0,
        ];
        let m = Csr::from_dense(3, 3, &dense);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.to_dense(), dense);
    }

    #[test]
    fn nnz_per_row_and_col() {
        let m = fig1a();
        assert_eq!(m.nnz_per_row(), vec![2, 3, 2, 2, 1, 2, 3, 2]);
        let cols = m.nnz_per_col();
        assert_eq!(cols, vec![3, 2, 4, 5, 2, 0, 0, 1]);
        assert_eq!(cols.iter().sum::<usize>(), m.nnz());
    }

    #[test]
    fn transpose_involution() {
        let m = fig1a();
        let t = m.transpose();
        assert_eq!(t.nrows(), m.ncols());
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn transpose_matches_dense() {
        let m = fig1a();
        let t = m.transpose();
        let d = m.to_dense();
        let td = t.to_dense();
        for r in 0..8 {
            for c in 0..8 {
                assert_eq!(d[r * 8 + c], td[c * 8 + r]);
            }
        }
    }

    #[test]
    fn transpose_pattern_matches_transpose() {
        for m in [fig1a(), Csr::identity(7), Csr::zero(4, 9)] {
            let t = m.transpose();
            let (rp, ci) = m.transpose_pattern();
            assert_eq!(rp, t.row_ptr());
            assert_eq!(ci, t.col_idx());
        }
        // Rectangular, including an empty column and an empty row.
        let wide = Csr::try_new(2, 100, vec![0, 1, 3], vec![5, 0, 99], vec![1.0; 3]).unwrap();
        let t = wide.transpose();
        let (rp, ci) = wide.transpose_pattern();
        assert_eq!(rp, t.row_ptr());
        assert_eq!(ci, t.col_idx());
    }

    #[test]
    fn transpose_pattern_into_reuses_buffers() {
        let m = fig1a();
        let mut rp = Vec::new();
        let mut ci = Vec::new();
        m.transpose_pattern_into(&mut rp, &mut ci);
        let (rp0, ci0) = (rp.clone(), ci.clone());
        // Second call over the same matrix must not change the result
        // (buffers are fully re-initialized, not appended to).
        m.transpose_pattern_into(&mut rp, &mut ci);
        assert_eq!(rp, rp0);
        assert_eq!(ci, ci0);
        // And a smaller matrix shrinks the logical contents.
        Csr::identity(3).transpose_pattern_into(&mut rp, &mut ci);
        assert_eq!(rp, vec![0, 1, 2, 3]);
        assert_eq!(ci, vec![0, 1, 2]);
    }

    #[test]
    fn spmv_reference_dense_check() {
        let m = fig1a();
        let d = m.to_dense();
        let x: Vec<f64> = (0..8).map(|i| (i as f64) * 0.5 + 1.0).collect();
        let mut y = vec![0.0; 8];
        m.spmv_reference(&x, &mut y);
        for r in 0..8 {
            let expect: f64 = (0..8).map(|c| d[r * 8 + c] * x[c]).sum();
            assert!((y[r] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn permute_rows_reverses() {
        let m = fig1a();
        let perm = Permutation::try_new((0..8).rev().collect()).unwrap();
        let p = m.permute_rows(&perm).unwrap();
        for r in 0..8 {
            assert_eq!(p.row_cols(r), m.row_cols(7 - r));
            assert_eq!(p.row_vals(r), m.row_vals(7 - r));
        }
    }

    #[test]
    fn permute_cols_then_permuted_input_matches() {
        // y = A x must equal y' = A' x' where A' = A with columns
        // relabeled by perm and x'[new] = x[perm[new]].
        let m = fig1a();
        let perm = Permutation::try_new(vec![3, 0, 2, 1, 7, 6, 5, 4]).unwrap();
        let mp = m.permute_cols(&perm).unwrap();
        let x: Vec<f64> = (0..8).map(|i| i as f64 + 1.0).collect();
        let xp: Vec<f64> = (0..8).map(|new| x[perm.apply(new)]).collect();
        let mut y = vec![0.0; 8];
        let mut yp = vec![0.0; 8];
        m.spmv_reference(&x, &mut y);
        mp.spmv_reference(&xp, &mut yp);
        for r in 0..8 {
            assert!((y[r] - yp[r]).abs() < 1e-12);
        }
    }

    #[test]
    fn permute_wrong_len_rejected() {
        let m = fig1a();
        let perm = Permutation::try_new(vec![0, 1]).unwrap();
        assert!(m.permute_rows(&perm).is_err());
        assert!(m.permute_cols(&perm).is_err());
    }

    #[test]
    fn footprint_counts_all_arrays() {
        let m = fig1a();
        assert_eq!(m.footprint_bytes(), 17 * 8 + 17 * 4 + 9 * 8);
    }
}
