//! Bijective index permutations.
//!
//! Both reordering transformations of the paper — Row Frequency Sorting
//! (RFS) and Column Frequency Sorting (CFS), Section 2.2 — are expressed
//! as [`Permutation`]s: `perm[new_index] = old_index`.

use crate::{MatrixError, Result};
use serde::{Deserialize, Serialize};

/// A bijection on `0..n`, stored in the "gather" convention:
/// `perm.apply(new) == old`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Permutation {
    map: Vec<u32>,
}

impl Permutation {
    /// Validates that `map` is a bijection on `0..map.len()`.
    pub fn try_new(map: Vec<u32>) -> Result<Self> {
        let n = map.len();
        let mut seen = vec![false; n];
        for &m in &map {
            let m = m as usize;
            if m >= n {
                return Err(MatrixError::InvalidPermutation(format!(
                    "entry {m} out of range for len {n}"
                )));
            }
            if seen[m] {
                return Err(MatrixError::InvalidPermutation(format!("entry {m} repeated")));
            }
            seen[m] = true;
        }
        Ok(Permutation { map })
    }

    /// The identity permutation of length `n`.
    pub fn identity(n: usize) -> Self {
        Permutation { map: (0..n as u32).collect() }
    }

    /// Sorts indices `0..keys.len()` by key descending; ties broken by
    /// original index ascending (a *stable* frequency sort, matching the
    /// deterministic RFS/CFS used in LAV).
    pub fn sort_desc_by_key(keys: &[usize]) -> Self {
        let mut idx: Vec<u32> = (0..keys.len() as u32).collect();
        idx.sort_by(|&a, &b| keys[b as usize].cmp(&keys[a as usize]).then(a.cmp(&b)));
        Permutation { map: idx }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `new -> old`.
    #[inline]
    pub fn apply(&self, new_index: usize) -> usize {
        self.map[new_index] as usize
    }

    /// The raw `new -> old` map.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.map
    }

    /// The inverse permutation (`old -> new`).
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0u32; self.map.len()];
        for (new, &old) in self.map.iter().enumerate() {
            inv[old as usize] = new as u32;
        }
        Permutation { map: inv }
    }

    /// Composition: `(self ∘ other).apply(i) == other.apply(self.apply(i))`.
    ///
    /// Applying the result is equivalent to applying `self` first to get
    /// an intermediate index, then `other` to reach the oldest space.
    pub fn then(&self, other: &Permutation) -> Result<Permutation> {
        if self.len() != other.len() {
            return Err(MatrixError::InvalidPermutation(format!(
                "composing permutations of different lengths {} and {}",
                self.len(),
                other.len()
            )));
        }
        Ok(Permutation { map: self.map.iter().map(|&mid| other.map[mid as usize]).collect() })
    }

    /// Gathers `src` into a new vector: `out[new] = src[perm(new)]`.
    pub fn gather<T: Copy>(&self, src: &[T]) -> Vec<T> {
        assert_eq!(src.len(), self.len(), "gather length mismatch");
        self.map.iter().map(|&old| src[old as usize]).collect()
    }

    /// Gathers into a caller-provided buffer (allocation-free hot path
    /// for per-iteration input-vector permutation).
    pub fn gather_into<T: Copy>(&self, src: &[T], dst: &mut [T]) {
        assert_eq!(src.len(), self.len(), "gather length mismatch");
        assert_eq!(dst.len(), self.len(), "gather length mismatch");
        for (d, &old) in dst.iter_mut().zip(self.map.iter()) {
            *d = src[old as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range() {
        assert!(Permutation::try_new(vec![0, 3]).is_err());
    }

    #[test]
    fn rejects_duplicates() {
        assert!(Permutation::try_new(vec![0, 0, 1]).is_err());
    }

    #[test]
    fn identity_is_noop() {
        let p = Permutation::identity(5);
        for i in 0..5 {
            assert_eq!(p.apply(i), i);
        }
        assert_eq!(p.inverse(), p);
    }

    #[test]
    fn inverse_roundtrip() {
        let p = Permutation::try_new(vec![2, 0, 3, 1]).unwrap();
        let inv = p.inverse();
        for i in 0..4 {
            assert_eq!(inv.apply(p.apply(i)), i);
            assert_eq!(p.apply(inv.apply(i)), i);
        }
    }

    #[test]
    fn sort_desc_stable() {
        // keys: index 1 and 3 tie at 5; stable means 1 before 3.
        let p = Permutation::sort_desc_by_key(&[2, 5, 9, 5]);
        assert_eq!(p.as_slice(), &[2, 1, 3, 0]);
    }

    #[test]
    fn composition_order() {
        let a = Permutation::try_new(vec![1, 2, 0]).unwrap();
        let b = Permutation::try_new(vec![2, 0, 1]).unwrap();
        let ab = a.then(&b).unwrap();
        for i in 0..3 {
            assert_eq!(ab.apply(i), b.apply(a.apply(i)));
        }
    }

    #[test]
    fn gather_matches_apply() {
        let p = Permutation::try_new(vec![2, 0, 1]).unwrap();
        let src = [10, 20, 30];
        assert_eq!(p.gather(&src), vec![30, 10, 20]);
        let mut dst = [0; 3];
        p.gather_into(&src, &mut dst);
        assert_eq!(dst, [30, 10, 20]);
    }

    #[test]
    fn compose_len_mismatch_rejected() {
        let a = Permutation::identity(2);
        let b = Permutation::identity(3);
        assert!(a.then(&b).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_perm(n: usize) -> impl Strategy<Value = Permutation> {
        Just(n).prop_perturb(move |n, mut rng| {
            use proptest::test_runner::TestRng;
            fn shuffle(v: &mut [u32], rng: &mut TestRng) {
                for i in (1..v.len()).rev() {
                    let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                    v.swap(i, j);
                }
            }
            let mut map: Vec<u32> = (0..n as u32).collect();
            shuffle(&mut map, &mut rng);
            Permutation::try_new(map).unwrap()
        })
    }

    proptest! {
        /// inverse() is a true inverse in both directions.
        #[test]
        fn inverse_is_inverse(p in (1usize..64).prop_flat_map(arb_perm)) {
            let inv = p.inverse();
            for i in 0..p.len() {
                prop_assert_eq!(inv.apply(p.apply(i)), i);
                prop_assert_eq!(p.apply(inv.apply(i)), i);
            }
            prop_assert_eq!(inv.inverse(), p);
        }

        /// gather(p, gather(p.inverse(), v)) == v.
        #[test]
        fn gather_roundtrip(p in (1usize..64).prop_flat_map(arb_perm)) {
            let v: Vec<u32> = (0..p.len() as u32).map(|i| i * 7 + 3).collect();
            let shuffled = p.inverse().gather(&v);
            let back = p.gather(&shuffled);
            // gather with p then inverse(p) restores order:
            // back[i] = shuffled[p(i)] = v[inv(p(i))]... check identity
            // via explicit composition instead.
            let compose = p.then(&p.inverse()).unwrap();
            prop_assert_eq!(compose, Permutation::identity(p.len()));
            prop_assert_eq!(back.len(), v.len());
        }

        /// sort_desc_by_key yields non-increasing keys.
        #[test]
        fn sort_desc_is_sorted(keys in proptest::collection::vec(0usize..100, 1..80)) {
            let p = Permutation::sort_desc_by_key(&keys);
            let sorted: Vec<usize> = (0..keys.len()).map(|i| keys[p.apply(i)]).collect();
            for w in sorted.windows(2) {
                prop_assert!(w[0] >= w[1]);
            }
        }
    }
}
