//! Predicted-vs-measured residuals for the cost model.
//!
//! The cost model ([`crate::cost`]) predicts DRAM traffic and compute
//! for every `{matrix, method-config}` pair; with hardware counters
//! available ([`wise_trace::pmu`]) those predictions can be compared to
//! what the machine actually did. This module computes the two residual
//! ratios the telemetry tracks:
//!
//! * **bytes** — measured DRAM traffic per call (LLC misses x cache
//!   line) over predicted `dram_bytes`;
//! * **cycles** — measured core cycles per call over predicted
//!   `seconds x freq`.
//!
//! Ratios are emitted as permille samples under `model.residual.bytes`
//! and `model.residual.cycles` via [`wise_trace::observe`], so the
//! run report and the benchmark ledger pick up their distribution
//! (p50/p95) without new plumbing. A ratio of 1000 permille means the
//! model was exact; persistent drift in either direction localizes
//! which half of the model (traffic vs compute) is mis-calibrated.
//!
//! Samples where the measured counter is zero (counter multiplexed
//! out, or the event never fired) are skipped rather than recorded as
//! infinitely-wrong: absence of measurement is not evidence of model
//! error.

use crate::cost::CostBreakdown;
use crate::machine::MachineModel;
use wise_trace::{PmuCounts, PmuKind};

/// One predicted-vs-measured comparison. `None` means the sample was
/// skipped (measured counter zero or prediction non-positive).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Residual {
    /// measured DRAM bytes / predicted DRAM bytes.
    pub bytes_ratio: Option<f64>,
    /// measured cycles / predicted cycles.
    pub cycles_ratio: Option<f64>,
}

impl Residual {
    /// True when neither ratio could be computed.
    pub fn is_empty(&self) -> bool {
        self.bytes_ratio.is_none() && self.cycles_ratio.is_none()
    }
}

/// Compares a [`CostBreakdown`] prediction against a measured counter
/// delta covering `calls` kernel executions, records the ratios as
/// permille samples (`model.residual.bytes` / `model.residual.cycles`)
/// and returns them.
///
/// `measured` must be the *delta* over exactly `calls` back-to-back
/// executions of the predicted kernel, taken on the calling thread with
/// no other work in between (PMU groups are per-thread, so the
/// measurement loop must run at `nthreads = 1` to be attributable).
pub fn observe_residual(
    predicted: &CostBreakdown,
    measured: &PmuCounts,
    calls: u64,
    machine: &MachineModel,
) -> Residual {
    if calls == 0 {
        return Residual::default();
    }
    let per_call = |kind: PmuKind| measured.get(kind) as f64 / calls as f64;

    let measured_bytes = per_call(PmuKind::LlcMisses) * machine.cache_line as f64;
    let bytes_ratio = ratio(measured_bytes, predicted.dram_bytes);
    if let Some(r) = bytes_ratio {
        wise_trace::observe("model.residual.bytes", permille(r));
    }

    let predicted_cycles = predicted.seconds * machine.freq_ghz * 1e9;
    let cycles_ratio = ratio(per_call(PmuKind::Cycles), predicted_cycles);
    if let Some(r) = cycles_ratio {
        wise_trace::observe("model.residual.cycles", permille(r));
    }

    Residual { bytes_ratio, cycles_ratio }
}

fn ratio(measured: f64, predicted: f64) -> Option<f64> {
    (measured > 0.0 && predicted > 0.0).then(|| measured / predicted)
}

fn permille(ratio: f64) -> u64 {
    (ratio * 1000.0).round().min(u64::MAX as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown(seconds: f64, dram_bytes: f64) -> CostBreakdown {
        CostBreakdown {
            seconds,
            dram_bytes,
            llc_bytes: 0.0,
            compute_seconds: seconds,
            x_counts: Default::default(),
            nnz_padded: 0,
            segment_critical: vec![seconds],
            segment_floor: vec![0.0],
        }
    }

    fn counts(cycles: u64, llc_misses: u64) -> PmuCounts {
        PmuCounts { cycles, instructions: 2 * cycles, llc_misses, ..Default::default() }
    }

    // Single test fn: the trace ring is process-global, so the permille
    // emission paths share one #[test] to avoid cross-test interference.
    #[test]
    fn residual_ratios_and_skip_rules() {
        let mut machine = MachineModel::scaled_for_rows(1 << 12);
        machine.threads = 1;
        machine.freq_ghz = 2.0;
        machine.cache_line = 64;

        // Predicted: 1e6 cycles (5e-4 s at 2 GHz), 64_000 DRAM bytes.
        let pred = breakdown(5e-4, 64_000.0);
        // Measured over 10 calls: 2e7 cycles and 20_000 misses total
        // => per call 2e6 cycles (2x) and 2_000 misses = 128_000 B (2x).
        let r = observe_residual(&pred, &counts(20_000_000, 20_000), 10, &machine);
        assert!((r.bytes_ratio.unwrap() - 2.0).abs() < 1e-9, "{r:?}");
        assert!((r.cycles_ratio.unwrap() - 2.0).abs() < 1e-9, "{r:?}");

        // Zero measured counters are skipped, not recorded as 0x.
        let z = observe_residual(&pred, &counts(0, 0), 10, &machine);
        assert!(z.is_empty(), "{z:?}");

        // Zero calls never divides.
        assert!(observe_residual(&pred, &counts(1, 1), 0, &machine).is_empty());

        // Non-positive predictions are skipped per-ratio.
        let p0 = breakdown(0.0, 64_000.0);
        let h = observe_residual(&p0, &counts(1_000, 1_000), 1, &machine);
        assert!(h.cycles_ratio.is_none() && h.bytes_ratio.is_some(), "{h:?}");

        assert_eq!(permille(1.0), 1000);
        assert_eq!(permille(0.7557), 756);
    }
}
