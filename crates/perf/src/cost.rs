//! The SpMV cost model: from a `{matrix, method-config}` pair to an
//! estimated execution time on the modeled machine.
//!
//! Per-chunk cost = compute cycles (scalar per-nonzero for CSR, vector
//! per-column-step for packed methods, padding included) + the chunk's
//! share of DRAM/LLC traffic at the per-thread bandwidth. Traffic has
//! three components:
//!
//! * matrix streaming (values + indices; LLC-resident in steady state
//!   if the whole working set fits);
//! * output writes (with a scatter penalty for RFS-reordered methods
//!   whose output exceeds the LLC);
//! * input-vector reads, classified by LRU reuse-distance simulation of
//!   the method's *actual* access stream — so CFS clustering,
//!   segmentation and row reordering genuinely move the estimate.
//!
//! Chunk costs are folded into a parallel makespan per the scheduling
//! policy ([`crate::sched_sim`]). Everything is deterministic.

use crate::lru::{AccessCounts, SampledLru};
use crate::machine::MachineModel;
use crate::sched_sim::makespan;
use wise_kernels::method::{Method, MethodConfig, Prepared};
use wise_kernels::srvpack::SigmaSpec;
use wise_matrix::Csr;

/// Detailed output of the cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct CostBreakdown {
    /// Estimated wall-clock seconds of one SpMV.
    pub seconds: f64,
    /// Total DRAM bytes (all threads).
    pub dram_bytes: f64,
    /// Total LLC-served bytes.
    pub llc_bytes: f64,
    /// Total compute seconds (sum over chunks, single-thread units).
    pub compute_seconds: f64,
    /// Input-vector access classification (line granularity, scaled).
    pub x_counts: AccessCounts,
    /// Stored entries including padding.
    pub nnz_padded: usize,
    /// Per-segment critical-path makespan (diagnostics).
    pub segment_critical: Vec<f64>,
    /// Per-segment aggregate-bandwidth floor (diagnostics).
    pub segment_floor: Vec<f64>,
}

/// Scheduling granularity used by the model: the kernel's default
/// 256-row chunks at paper scale, shrunk for small matrices so the
/// modeled machine still sees several chunks per thread (a 2^20-row
/// paper matrix has 4096 chunks; a 2^12-row quick-scale one would have
/// 16, hiding all load-imbalance effects at the modeled 24 threads).
pub fn model_rows_per_chunk(nrows: usize, threads: usize) -> usize {
    let target_chunks = threads.max(1) * 8;
    (nrows / target_chunks.max(1)).clamp(8, wise_kernels::csr_spmv::DEFAULT_ROWS_PER_CHUNK)
}

/// Picks a set-sampling shift appropriate for the stream length: exact
/// below 128 K accesses, then one extra bit per doubling, capped at 6
/// (1-in-64 sampling).
pub fn auto_sample_shift(nnz: usize) -> u32 {
    let mut shift = 0u32;
    let mut budget = 128 * 1024;
    while nnz > budget && shift < 6 {
        shift += 1;
        budget *= 2;
    }
    shift
}

/// Estimates one *steady-state* SpMV execution of `cfg` on `m` under
/// `machine` (iterative use, working set warm).
///
/// `sample_shift` controls reuse-distance sampling (see
/// [`auto_sample_shift`]); pass 0 for the exact simulation.
pub fn estimate_spmv_seconds(
    m: &Csr,
    cfg: &MethodConfig,
    machine: &MachineModel,
    sample_shift: u32,
) -> CostBreakdown {
    let prepared = cfg.prepare(m);
    estimate_prepared_opts(m, cfg, &prepared, machine, sample_shift, false)
}

/// Estimates a *first-iteration* (cold caches) execution: the matrix
/// streams from DRAM regardless of size and cold input-vector lines
/// miss to DRAM. This is what a trial-executing inspector-executor
/// actually measures, and why its choices can deviate from the
/// steady-state oracle.
pub fn estimate_spmv_seconds_cold(
    m: &Csr,
    cfg: &MethodConfig,
    machine: &MachineModel,
    sample_shift: u32,
) -> CostBreakdown {
    let prepared = cfg.prepare(m);
    estimate_prepared_opts(m, cfg, &prepared, machine, sample_shift, true)
}

/// Cost model over an already-prepared representation (lets callers
/// amortize the format conversion across estimates).
pub fn estimate_prepared(
    m: &Csr,
    cfg: &MethodConfig,
    prepared: &Prepared<'_>,
    machine: &MachineModel,
    sample_shift: u32,
) -> CostBreakdown {
    estimate_prepared_opts(m, cfg, prepared, machine, sample_shift, false)
}

/// See [`estimate_prepared`]; `cold` selects first-iteration behaviour.
pub fn estimate_prepared_opts(
    m: &Csr,
    cfg: &MethodConfig,
    prepared: &Prepared<'_>,
    machine: &MachineModel,
    sample_shift: u32,
    cold: bool,
) -> CostBreakdown {
    let nthreads = machine.threads;
    let line = machine.cache_line as f64;
    let lines_per_elt = 8.0; // f64 elements per 64-byte line

    // ---- Working-set residency: steady-state iterative SpMV keeps the
    // matrix + vectors in LLC when they fit.
    let matrix_bytes = match prepared {
        Prepared::Csr(_) => m.footprint_bytes(),
        Prepared::Pack(p, _) => p.footprint_bytes(),
    };
    let working_set = matrix_bytes + m.ncols() * 8 + m.nrows() * 8;
    let matrix_from_llc = !cold && working_set <= machine.llc_bytes;

    // ---- Per-chunk compute cycles, matrix/y bytes and x access stream.
    let mut chunk_compute: Vec<f64> = Vec::new(); // cycles
    let mut chunk_stream_bytes: Vec<f64> = Vec::new(); // matrix + y
    let mut chunk_x_accesses: Vec<f64> = Vec::new();
    let mut x_sim =
        SampledLru::new(machine.l1_lines(), machine.l2_lines(), machine.llc_lines(), sample_shift);
    if !cold {
        // Steady state: a first touch within this iteration was last
        // touched one iteration ago; classify it by footprint instead
        // of charging DRAM.
        x_sim = x_sim.defer_cold();
    }

    let mut grain = 1usize;
    let mut per_segment_chunks: Vec<usize> = Vec::new(); // segment boundaries

    match prepared {
        Prepared::Csr(_) => {
            // Explicit SIMD width: a row of length `len` runs as
            // `len / lanes` gather+FMA steps plus a scalar tail of
            // `len % lanes` elements. `lanes <= 1` (v = 0 legacy model
            // or forced-scalar v = 1) keeps the calibrated per-nonzero
            // formula bit-identical to the pre-SIMD model.
            let lanes = machine.modeled_lanes(cfg.v);
            // Memory-level parallelism: explicit prefetch/interleave
            // knobs overlap gather latency, scaling SIMD step
            // throughput by the machine's MLP dividend. Exactly 1.0
            // when both knobs are auto/off, so the pre-MLP model is
            // bit-unchanged; scalar paths never gather, so the factor
            // only divides vector-step cycles.
            let mlp = machine.mlp_factor(cfg.pf, cfg.il);
            let rows_per_chunk = model_rows_per_chunk(m.nrows(), nthreads);
            let nchunks = m.nrows().div_ceil(rows_per_chunk);
            for chunk in 0..nchunks {
                let lo = chunk * rows_per_chunk;
                let hi = (lo + rows_per_chunk).min(m.nrows());
                let mut nnz_chunk = 0usize;
                let mut steps = 0usize;
                let mut tail = 0usize;
                for r in lo..hi {
                    let len = m.row_nnz(r);
                    nnz_chunk += len;
                    if lanes > 1 {
                        steps += len / lanes;
                        tail += len % lanes;
                    }
                    for &c in m.row_cols(r) {
                        x_sim.access(c as u64 / lines_per_elt as u64);
                    }
                }
                let cycles = if lanes > 1 {
                    steps as f64 * machine.simd_cycles_per_step / mlp
                        + tail as f64 * machine.scalar_cycles_per_nnz
                } else {
                    nnz_chunk as f64 * machine.scalar_cycles_per_nnz
                };
                chunk_compute.push(cycles);
                // vals 8B + col_idx 4B per nnz, row_ptr 8B + y 8B per row.
                chunk_stream_bytes.push(nnz_chunk as f64 * 12.0 + (hi - lo) as f64 * 16.0);
                chunk_x_accesses.push(nnz_chunk as f64);
            }
            per_segment_chunks.push(nchunks);
        }
        Prepared::Pack(p, _) => {
            let c = p.config().c;
            // The runtime dispatcher only vectorizes catalog chunk
            // heights (c = 4 or 8); other heights always run scalar, so
            // the model must not credit them with SIMD throughput.
            let lanes = if c == 4 || c == 8 { machine.modeled_lanes(cfg.v) } else { 0 };
            // Cycles per packed column step: legacy calibrated constant
            // for v = 0, pure scalar for a forced v = 1, and one vector
            // op per `lanes` rows of the chunk otherwise.
            // MLP dividend, as in the CSR arm: only the explicit-SIMD
            // gather steps overlap, so legacy (v = 0) and forced-scalar
            // (v = 1) step costs are untouched.
            let mlp = machine.mlp_factor(cfg.pf, cfg.il);
            let step_cycles = match lanes {
                0 => machine.vector_cycles_per_step,
                1 => c as f64 * machine.scalar_cycles_per_nnz,
                l => (c as f64 / l as f64).ceil() * machine.simd_cycles_per_step / mlp,
            };
            // Mirror the kernel: Dyn grabs single chunks (RFS fronts
            // the widest chunks), static policies use coarser blocks.
            grain = match cfg.schedule {
                wise_kernels::Schedule::Dyn => 1,
                _ => (model_rows_per_chunk(m.nrows(), nthreads) / c).max(1),
            };
            // Scattered-output penalty: RFS randomizes the y rows a
            // chunk writes; if y exceeds the LLC each write allocates a
            // full line.
            let scattered =
                matches!(p.config().sigma, SigmaSpec::Full) && m.nrows() * 8 > machine.llc_bytes;
            let y_write_bytes = if scattered { 8.0 * machine.scatter_write_factor } else { 8.0 };
            for seg in p.segments() {
                for chunk in 0..seg.nchunks() {
                    let w = seg.chunk_width(chunk);
                    let rows = seg.chunk_rows(chunk, c).len();
                    chunk_compute.push(w as f64 * step_cycles);
                    chunk_stream_bytes.push((w * c) as f64 * 12.0 + rows as f64 * y_write_bytes);
                    chunk_x_accesses.push((w * c) as f64);
                }
                // Feed the x stream in packed order.
                for &cid in seg.col_ids() {
                    x_sim.access(cid as u64 / lines_per_elt as u64);
                }
                per_segment_chunks.push(seg.nchunks());
            }
        }
    }

    let x_counts = x_sim.finish();
    let total_x_accesses: f64 = chunk_x_accesses.iter().sum::<f64>().max(1.0);
    // Line-granularity misses -> bytes.
    let x_dram_bytes = x_counts.dram * line;
    let x_llc_bytes = x_counts.llc * line;

    // ---- Assemble per-chunk seconds. A chunk runs on one thread, so
    // its memory time uses single-thread bandwidth; the machine-wide
    // bandwidth cap is applied per segment below (roofline + critical
    // path).
    let mut dram_total = 0.0f64;
    let mut llc_total = 0.0f64;
    let mut compute_total = 0.0f64;
    let nchunks = chunk_compute.len();
    let mut chunk_seconds: Vec<f64> = Vec::with_capacity(nchunks);
    let mut chunk_dram: Vec<f64> = Vec::with_capacity(nchunks);
    let mut chunk_llc: Vec<f64> = Vec::with_capacity(nchunks);
    for i in 0..nchunks {
        let share = chunk_x_accesses[i] / total_x_accesses;
        let (stream_dram, stream_llc) = if matrix_from_llc {
            (0.0, chunk_stream_bytes[i])
        } else {
            (chunk_stream_bytes[i], 0.0)
        };
        let dram = stream_dram + x_dram_bytes * share;
        let llc = stream_llc + x_llc_bytes * share;
        dram_total += dram;
        llc_total += llc;
        chunk_dram.push(dram);
        chunk_llc.push(llc);
        let compute = machine.cycles_to_seconds(chunk_compute[i]);
        compute_total += compute;
        chunk_seconds
            .push(compute + machine.dram_seconds_single(dram) + machine.llc_seconds_single(llc));
    }

    // ---- Parallel makespan, segment by segment (segments of LAV run
    // sequentially so the dense segment's x slice stays LLC-resident).
    // Segment time = max(critical-path makespan under the scheduling
    // policy, aggregate-bandwidth floor).
    let dyn_grab = machine.dyn_grab_ns * 1e-9;
    let mut seconds = 0.0f64;
    let mut offset = 0usize;
    let mut segment_critical = Vec::with_capacity(per_segment_chunks.len());
    let mut segment_floor = Vec::with_capacity(per_segment_chunks.len());
    for &seg_chunks in &per_segment_chunks {
        let range = offset..offset + seg_chunks;
        let critical =
            makespan(&chunk_seconds[range.clone()], nthreads, cfg.schedule, grain, dyn_grab);
        let floor = machine.bandwidth_floor_seconds(
            chunk_dram[range.clone()].iter().sum(),
            chunk_llc[range].iter().sum(),
        );
        segment_critical.push(critical);
        segment_floor.push(floor);
        seconds += critical.max(floor);
        offset += seg_chunks;
    }

    // ---- CFS input-vector gather (done per call, single traversal).
    if let Prepared::Pack(p, _) = prepared {
        if p.col_perm().is_some() {
            let bytes = 2.0 * m.ncols() as f64 * 8.0;
            seconds += machine
                .bandwidth_floor_seconds(bytes, 0.0)
                .max(machine.cycles_to_seconds(m.ncols() as f64));
            dram_total += bytes;
        }
    }

    CostBreakdown {
        seconds,
        dram_bytes: dram_total,
        llc_bytes: llc_total,
        compute_seconds: compute_total,
        x_counts,
        nnz_padded: prepared.nnz_padded(),
        segment_critical,
        segment_floor,
    }
}

/// Estimated preprocessing seconds to convert a CSR matrix into `cfg`'s
/// format (Section 4.4 charges this when breaking ties; Fig. 13c
/// reports it). Modeled as streaming conversion traffic plus sorting
/// work, parallelized across the machine.
pub fn estimate_preprocessing_seconds(m: &Csr, cfg: &MethodConfig, machine: &MachineModel) -> f64 {
    if cfg.method == Method::Csr {
        return 0.0;
    }
    let nnz = m.nnz() as f64;
    let nrows = m.nrows() as f64;
    let ncols = m.ncols() as f64;
    let threads = machine.threads as f64;
    // Read CSR once, write packed data once (padding grows writes; use
    // an upper-bound 1.3x without building the pack).
    let traffic = nnz * 12.0 + nnz * 12.0 * 1.3 + nrows * 16.0;
    let mut seconds = traffic / (machine.dram_bw_gbs * 1e9);
    let sort_cycles_per_key = 6.0;
    let mut cycles = 0.0;
    match cfg.method {
        Method::SellPack => {}
        Method::SellCSigma => {
            let sigma = cfg.sigma.max(2) as f64;
            cycles += nrows * sigma.log2() * sort_cycles_per_key;
        }
        Method::SellCR => {
            cycles += nrows * nrows.max(2.0).log2() * sort_cycles_per_key;
        }
        Method::Lav1Seg | Method::Lav => {
            // CFS column sort + per-nonzero remap + RFS.
            cycles += ncols * ncols.max(2.0).log2() * sort_cycles_per_key;
            cycles += nnz * 2.0;
            cycles += nrows * nrows.max(2.0).log2() * sort_cycles_per_key;
            if cfg.method == Method::Lav {
                // Segment-splitting pass (per-segment row lengths).
                cycles += nnz * 2.0;
            }
        }
        Method::Csr => unreachable!("handled above"),
    }
    seconds += machine.cycles_to_seconds(cycles / threads);
    seconds
}

/// Estimated seconds to extract the WISE feature vector from `m`
/// (the other half of WISE's preprocessing overhead): a few streaming
/// passes (row/col counts, transpose, tiling) plus the tile sort.
pub fn estimate_feature_extraction_seconds(m: &Csr, machine: &MachineModel) -> f64 {
    let nnz = m.nnz() as f64;
    let passes = 4.0; // counts, transpose scatter, tiling, locality scan
    let traffic = passes * nnz * 12.0;
    let sort_cycles = nnz * nnz.max(2.0).log2() * 2.0;
    traffic / (machine.dram_bw_gbs * 1e9)
        + machine.cycles_to_seconds(sort_cycles / machine.threads as f64)
}

/// Estimates all 29 catalog configurations on `m`, in catalog order.
pub fn time_all_configs(
    m: &Csr,
    machine: &MachineModel,
    sample_shift: u32,
) -> Vec<(MethodConfig, CostBreakdown)> {
    MethodConfig::catalog()
        .into_iter()
        .map(|cfg| {
            let b = estimate_spmv_seconds(m, &cfg, machine, sample_shift);
            (cfg, b)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wise_gen::{suite, RmatParams};
    use wise_kernels::Schedule;

    fn machine() -> MachineModel {
        MachineModel::scaled_for_rows(1 << 14)
    }

    #[test]
    fn estimates_are_positive_and_deterministic() {
        let m = RmatParams::MED_SKEW.generate(10, 8, 1);
        let mach = machine();
        let a = estimate_spmv_seconds(&m, &MethodConfig::csr(Schedule::Dyn), &mach, 0);
        let b = estimate_spmv_seconds(&m, &MethodConfig::csr(Schedule::Dyn), &mach, 0);
        assert!(a.seconds > 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn more_nonzeros_cost_more() {
        let mach = machine();
        let small = RmatParams::LOW_LOC.generate(10, 4, 2);
        let big = RmatParams::LOW_LOC.generate(10, 32, 2);
        let cfg = MethodConfig::csr(Schedule::StCont);
        let ts = estimate_spmv_seconds(&small, &cfg, &mach, 0).seconds;
        let tb = estimate_spmv_seconds(&big, &cfg, &mach, 0).seconds;
        assert!(tb > 2.0 * ts, "{tb} vs {ts}");
    }

    #[test]
    fn skew_punishes_static_contiguous_csr() {
        // The paper's Fig. 3 effect: under skew, StCont loses to Dyn.
        let m = RmatParams::HIGH_SKEW.generate(12, 16, 3);
        let mach = machine();
        let dynamic =
            estimate_spmv_seconds(&m, &MethodConfig::csr(Schedule::Dyn), &mach, 0).seconds;
        let stcont =
            estimate_spmv_seconds(&m, &MethodConfig::csr(Schedule::StCont), &mach, 0).seconds;
        assert!(stcont > dynamic * 1.2, "StCont {stcont} should trail Dyn {dynamic} under skew");
    }

    #[test]
    fn balanced_matrix_schedules_are_close() {
        let m = suite::stencil_2d(64, 64);
        let mach = machine();
        let times: Vec<f64> = Schedule::ALL
            .iter()
            .map(|&s| estimate_spmv_seconds(&m, &MethodConfig::csr(s), &mach, 0).seconds)
            .collect();
        let max = times.iter().fold(0.0f64, |a, &b| a.max(b));
        let min = times.iter().fold(f64::MAX, |a, &b| a.min(b));
        assert!(max / min < 1.5, "{times:?}");
    }

    #[test]
    fn padding_shows_up_for_skewed_sellpack() {
        let m = RmatParams::HIGH_SKEW.generate(11, 8, 5);
        let mach = machine();
        let sp = estimate_spmv_seconds(&m, &MethodConfig::sellpack(8, Schedule::Dyn), &mach, 0);
        let scr = estimate_spmv_seconds(&m, &MethodConfig::sell_c_r(8), &mach, 0);
        assert!(sp.nnz_padded > 2 * m.nnz(), "padding {} nnz {}", sp.nnz_padded, m.nnz());
        assert!(scr.nnz_padded < sp.nnz_padded);
    }

    #[test]
    fn segmentation_reduces_x_dram_traffic_on_large_skewed_matrices() {
        // The LAV premise: when x exceeds the LLC, splitting into
        // segments cuts DRAM misses on x.
        let m = RmatParams::HIGH_SKEW.generate(13, 16, 7);
        let mach = MachineModel::scaled_for_rows(1 << 13); // x >> LLC
        let one = estimate_spmv_seconds(&m, &MethodConfig::lav_1seg(8), &mach, 0);
        let seg = estimate_spmv_seconds(&m, &MethodConfig::lav(8, 0.7), &mach, 0);
        assert!(
            seg.x_counts.dram < one.x_counts.dram,
            "segmented {} vs single {}",
            seg.x_counts.dram,
            one.x_counts.dram
        );
    }

    #[test]
    fn cfs_improves_x_locality_under_skew() {
        let m = RmatParams::HIGH_SKEW.generate(12, 16, 9);
        let mach = MachineModel::scaled_for_rows(1 << 12);
        let plain = estimate_spmv_seconds(&m, &MethodConfig::sell_c_r(8), &mach, 0);
        let cfs = estimate_spmv_seconds(&m, &MethodConfig::lav_1seg(8), &mach, 0);
        assert!(
            cfs.x_counts.dram <= plain.x_counts.dram,
            "CFS {} vs plain {}",
            cfs.x_counts.dram,
            plain.x_counts.dram
        );
    }

    #[test]
    fn preprocessing_costs_are_ordered() {
        let m = RmatParams::MED_SKEW.generate(11, 8, 11);
        let mach = machine();
        let cost = |cfg: MethodConfig| estimate_preprocessing_seconds(&m, &cfg, &mach);
        let csr = cost(MethodConfig::csr(Schedule::Dyn));
        let sp = cost(MethodConfig::sellpack(8, Schedule::Dyn));
        let lav = cost(MethodConfig::lav(8, 0.7));
        assert_eq!(csr, 0.0);
        assert!(sp > 0.0);
        assert!(lav > sp, "LAV {lav} should cost more than SELLPACK {sp}");
    }

    #[test]
    fn sampling_tracks_exact_estimate() {
        let m = RmatParams::LOW_SKEW.generate(12, 8, 13);
        let mach = machine();
        let cfg = MethodConfig::lav(8, 0.8);
        let exact = estimate_spmv_seconds(&m, &cfg, &mach, 0).seconds;
        let sampled = estimate_spmv_seconds(&m, &cfg, &mach, 3).seconds;
        let ratio = sampled / exact;
        assert!((0.7..1.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn auto_shift_scales() {
        assert_eq!(auto_sample_shift(1000), 0);
        assert_eq!(auto_sample_shift(200_000), 1);
        assert!(auto_sample_shift(100_000_000) == 6);
    }

    #[test]
    fn explicit_widths_move_modeled_packed_compute() {
        let m = RmatParams::MED_SKEW.generate(11, 16, 19);
        let mach = machine();
        let base = MethodConfig::sell_c_sigma(8, 4096, Schedule::StCont);
        let auto = estimate_spmv_seconds(&m, &base, &mach, 0);
        let scalar = estimate_spmv_seconds(&m, &base.with_simd(1), &mach, 0);
        let wide = estimate_spmv_seconds(&m, &base.with_simd(8), &mach, 0);
        // Forcing the scalar kernel (v = 1) must cost more compute than
        // both the legacy vector model and an explicit 8-lane width.
        assert!(scalar.compute_seconds > auto.compute_seconds, "{scalar:?} vs {auto:?}");
        assert!(wide.compute_seconds <= scalar.compute_seconds);
        // The width only changes compute; traffic and padding are the
        // same packed layout regardless of v.
        assert_eq!(auto.dram_bytes, scalar.dram_bytes);
        assert_eq!(auto.nnz_padded, wide.nnz_padded);
    }

    #[test]
    fn explicit_width_lowers_csr_compute_on_long_rows() {
        // ~32 nnz per row: an 8-lane width models 4 gather steps per
        // row instead of 32 scalar ops, so compute must drop.
        let m = RmatParams::MED_LOC.generate(11, 32, 23);
        let mach = machine();
        let cfg = MethodConfig::csr(Schedule::Dyn);
        let legacy = estimate_spmv_seconds(&m, &cfg, &mach, 0);
        let one = estimate_spmv_seconds(&m, &cfg.with_simd(1), &mach, 0);
        let wide = estimate_spmv_seconds(&m, &cfg.with_simd(8), &mach, 0);
        // v = 0 and v = 1 share the scalar CSR formula bit-for-bit.
        assert_eq!(legacy, one);
        assert!(wide.compute_seconds < legacy.compute_seconds, "{wide:?} vs {legacy:?}");
    }

    #[test]
    fn mlp_knobs_lower_simd_compute_only() {
        let m = RmatParams::MED_LOC.generate(11, 32, 23);
        let mach = machine();
        for base in
            [MethodConfig::csr(Schedule::Dyn), MethodConfig::sell_c_sigma(8, 4096, Schedule::Dyn)]
        {
            let wide = estimate_spmv_seconds(&m, &base.with_simd(8), &mach, 0);
            let pf = estimate_spmv_seconds(&m, &base.with_simd(8).with_prefetch(8), &mach, 0);
            let both = estimate_spmv_seconds(
                &m,
                &base.with_simd(8).with_prefetch(8).with_interleave(2),
                &mach,
                0,
            );
            // The overlap term ranks pf < pf+interleave below plain v8.
            assert!(pf.compute_seconds < wide.compute_seconds, "{}", base.label());
            assert!(both.compute_seconds < pf.compute_seconds, "{}", base.label());
            // Traffic is untouched — MLP reorders loads, it doesn't
            // remove them.
            assert_eq!(both.dram_bytes, wide.dram_bytes);
            assert_eq!(both.llc_bytes, wide.llc_bytes);
            // Legacy (v = 0) and forced-scalar models ignore the knobs
            // bit-for-bit: they have no gather steps to overlap.
            for v in [0usize, 1] {
                let plain = estimate_spmv_seconds(&m, &base.with_simd(v), &mach, 0);
                let knobbed = estimate_spmv_seconds(
                    &m,
                    &base.with_simd(v).with_prefetch(8).with_interleave(2),
                    &mach,
                    0,
                );
                assert_eq!(plain, knobbed, "{} v={v}", base.label());
            }
        }
    }

    #[test]
    fn all_29_configs_estimate() {
        let m = RmatParams::MED_LOC.generate(9, 8, 17);
        let mach = machine();
        let all = time_all_configs(&m, &mach, 0);
        assert_eq!(all.len(), 29);
        for (cfg, b) in &all {
            assert!(b.seconds > 0.0, "{}", cfg.label());
            assert!(b.seconds < 1.0, "{} absurd time {}", cfg.label(), b.seconds);
        }
    }
}
