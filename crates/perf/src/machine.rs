//! Machine descriptions for the cost model.

use serde::{Deserialize, Serialize};

/// Parameters of the modeled shared-memory machine.
///
/// Bandwidths are aggregate (whole machine); the cost model divides
/// them across active threads. Cache capacities drive the reuse-
/// distance classification of input-vector accesses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineModel {
    pub name: String,
    /// Worker threads modeled (the paper pins 24).
    pub threads: usize,
    /// Clock in GHz.
    pub freq_ghz: f64,
    /// Per-core L1D bytes.
    pub l1_bytes: usize,
    /// Per-core L2 bytes.
    pub l2_bytes: usize,
    /// Total last-level cache bytes (both sockets).
    pub llc_bytes: usize,
    /// Aggregate DRAM bandwidth, GB/s.
    pub dram_bw_gbs: f64,
    /// Aggregate LLC bandwidth, GB/s.
    pub llc_bw_gbs: f64,
    /// Cache line bytes.
    pub cache_line: usize,
    /// Cycles for one scalar multiply-add over a CSR element
    /// (load val + load idx + indexed load + FMA, issue-bound).
    pub scalar_cycles_per_nnz: f64,
    /// Cycles for one c-wide packed column step (vector FMA + gather);
    /// gathers dominate, roughly independent of width on Skylake.
    pub vector_cycles_per_step: f64,
    /// Cycles for one explicit-SIMD gather+FMA step of the runtime-
    /// dispatched kernels (one vector register of lanes). Only engaged
    /// when a config requests an explicit width (`v > 1`); the legacy
    /// constants above stay in force for `v = 0` so pre-SIMD model
    /// outputs are unchanged. Defaults to `vector_cycles_per_step` for
    /// files serialized before this field existed.
    #[serde(default = "default_simd_cycles_per_step")]
    pub simd_cycles_per_step: f64,
    /// f64 lanes of the modeled machine's vector units (AVX-512: 8).
    /// Caps the lane count an explicit `v` can model. Defaults match
    /// the Skylake preset for files missing the field.
    #[serde(default = "default_simd_lanes")]
    pub simd_lanes: usize,
    /// Relative throughput gained per extra in-flight gather stream —
    /// the memory-level-parallelism dividend of software prefetch and
    /// row/chunk interleaving. Each enabled MLP mechanism (prefetch on,
    /// plus every interleaved chain beyond the first) multiplies SIMD
    /// step throughput by `1 + simd_gather_mlp` (see
    /// [`MachineModel::mlp_factor`]). Calibrated from the measured
    /// chunk-pair win on this repo's Skylake-class host (~1.2× for the
    /// first extra stream, diminishing after). Defaults to the preset
    /// for files serialized before this field existed.
    #[serde(default = "default_simd_gather_mlp")]
    pub simd_gather_mlp: f64,
    /// Overhead of one dynamic-scheduling work grab, nanoseconds
    /// (shared-counter fetch_add plus its coherence traffic).
    pub dyn_grab_ns: f64,
    /// Fraction of the aggregate DRAM bandwidth one core can sustain
    /// alone (Skylake: one core reaches ~1/8 of the two-socket total).
    pub single_thread_dram_fraction: f64,
    /// Fraction of the aggregate LLC bandwidth one core can sustain.
    pub single_thread_llc_fraction: f64,
    /// Penalty factor for scattered (RFS-reordered) output writes that
    /// miss the LLC: each row write touches a whole line.
    pub scatter_write_factor: f64,
}

fn default_simd_cycles_per_step() -> f64 {
    MachineModel::skylake_6126().vector_cycles_per_step
}

fn default_simd_lanes() -> usize {
    8
}

fn default_simd_gather_mlp() -> f64 {
    0.2
}

impl MachineModel {
    /// The paper's testbed: 2 × 12-core Xeon Gold 6126 @ 2.6 GHz,
    /// 32 KB L1D + 1 MB L2 per core, 19.25 MB LLC per socket,
    /// AVX-512, ~115 GB/s aggregate DRAM bandwidth.
    pub fn skylake_6126() -> MachineModel {
        MachineModel {
            name: "skylake-6126-2s".into(),
            threads: 24,
            freq_ghz: 2.6,
            l1_bytes: 32 << 10,
            l2_bytes: 1 << 20,
            llc_bytes: 2 * 19 * (1 << 20),
            dram_bw_gbs: 115.0,
            llc_bw_gbs: 600.0,
            cache_line: 64,
            scalar_cycles_per_nnz: 2.0,
            vector_cycles_per_step: 6.0,
            simd_cycles_per_step: 6.0,
            simd_lanes: 8,
            simd_gather_mlp: 0.2,
            dyn_grab_ns: 40.0,
            single_thread_dram_fraction: 0.125,
            single_thread_llc_fraction: 0.1,
            scatter_write_factor: 4.0,
        }
    }

    /// The Skylake model with caches scaled so that the LLC-residency
    /// crossover of the input vector lands mid-sweep for a corpus whose
    /// largest matrices have `max_rows` rows — mirroring the paper,
    /// where the crossover sits at ~2^23 rows inside a 2^20–2^26 sweep.
    ///
    /// Scaling: the paper's LLC holds the input vector of a 2^22-row
    /// matrix comfortably (38.5 MB / 8 B ≈ 2^22.3); we preserve that
    /// ratio, i.e. `llc = max_rows/16 * 8` bytes, and scale L1/L2 by
    /// the same factor. Bandwidths and latencies are unchanged.
    pub fn scaled_for_rows(max_rows: usize) -> MachineModel {
        let paper = Self::skylake_6126();
        // Anchor the LLC so the input vector of a (max_rows / 4)-row
        // matrix just fits — the same relative crossover position as the
        // paper's 2^23 rows within its 2^20..2^26 sweep. L2/L1 keep a
        // sane hierarchy below it.
        let llc = (max_rows * 2).min(paper.llc_bytes).max(32 << 10);
        let l2 = (llc / 16).max(2 << 10).min(paper.l2_bytes);
        let l1 = (l2 / 8).max(512).min(paper.l1_bytes);
        MachineModel {
            name: format!("skylake-6126-scaled-{max_rows}rows"),
            l1_bytes: l1,
            l2_bytes: l2,
            llc_bytes: llc,
            ..paper
        }
    }

    /// Lines in the LLC (capacity used by the reuse-distance model).
    pub fn llc_lines(&self) -> usize {
        (self.llc_bytes / self.cache_line).max(1)
    }

    /// Lines in one core's L2.
    pub fn l2_lines(&self) -> usize {
        (self.l2_bytes / self.cache_line).max(1)
    }

    /// Lines in one core's L1D.
    pub fn l1_lines(&self) -> usize {
        (self.l1_bytes / self.cache_line).max(1)
    }

    /// Seconds for `cycles` on one core.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.freq_ghz * 1e9)
    }

    /// Seconds for *one thread* to move `bytes` from DRAM (used for
    /// per-chunk critical-path costs; the machine-wide bandwidth cap is
    /// applied separately).
    pub fn dram_seconds_single(&self, bytes: f64) -> f64 {
        bytes / (self.dram_bw_gbs * 1e9 * self.single_thread_dram_fraction)
    }

    /// Seconds for one thread to move `bytes` from the LLC.
    pub fn llc_seconds_single(&self, bytes: f64) -> f64 {
        bytes / (self.llc_bw_gbs * 1e9 * self.single_thread_llc_fraction)
    }

    /// Machine-wide lower bound: seconds to move `dram_bytes` +
    /// `llc_bytes` at full aggregate bandwidth (the roofline cap that
    /// binds when work is balanced).
    pub fn bandwidth_floor_seconds(&self, dram_bytes: f64, llc_bytes: f64) -> f64 {
        dram_bytes / (self.dram_bw_gbs * 1e9) + llc_bytes / (self.llc_bw_gbs * 1e9)
    }

    /// Lanes an explicit catalog width `v` models on this machine
    /// (0 = legacy auto-vectorized model, reported as 0 so callers can
    /// keep the calibrated pre-SIMD constants; otherwise clamped to the
    /// machine's vector width).
    pub fn modeled_lanes(&self, v: usize) -> usize {
        match v {
            0 => 0,
            _ => v.min(self.simd_lanes.max(1)),
        }
    }

    /// Throughput multiplier for the memory-level parallelism a config
    /// exposes: `pf` is the resolved prefetch distance (0 = off) and
    /// `il` the resolved interleave factor (≤ 1 = solo chains). Each
    /// extra in-flight gather stream — prefetch counts as one, every
    /// chain beyond the first counts as one — adds `simd_gather_mlp`
    /// of a step's base throughput, saturating at three extra streams
    /// (the load ports bound further overlap). Returns exactly 1.0
    /// when no MLP mechanism is enabled, so pre-MLP model outputs are
    /// bit-unchanged.
    pub fn mlp_factor(&self, pf: usize, il: usize) -> f64 {
        let streams = (il.max(1) - 1) + usize::from(pf > 0);
        1.0 + self.simd_gather_mlp * streams.min(3) as f64
    }

    /// The SIMD capability of the *host* this process runs on, as
    /// `(isa name, f64 lanes)` — the runtime probe of
    /// `wise_kernels::simd` surfaced where cost-model users live.
    /// Reflects `WISE_SIMD` caps, so a forced-scalar run reports
    /// `("scalar", 1)`.
    pub fn host_simd() -> (&'static str, usize) {
        let isa = wise_kernels::simd::active();
        (isa.name(), isa.lanes())
    }
}

impl Default for MachineModel {
    fn default() -> Self {
        Self::skylake_6126()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skylake_preset_sane() {
        let m = MachineModel::skylake_6126();
        assert_eq!(m.threads, 24);
        assert_eq!(m.llc_lines(), 2 * 19 * (1 << 20) / 64);
        assert!(m.cycles_to_seconds(2.6e9) - 1.0 < 1e-9);
    }

    #[test]
    fn scaling_preserves_crossover_ratio() {
        let m = MachineModel::scaled_for_rows(1 << 16);
        // LLC should hold the x of a 2^12-row matrix but not 2^16.
        assert!(m.llc_bytes >= (1 << 12) * 8, "llc={}", m.llc_bytes);
        assert!(m.llc_bytes < (1 << 16) * 8, "llc={}", m.llc_bytes);
        // Hierarchy ordering survives scaling.
        assert!(m.l1_bytes <= m.l2_bytes && m.l2_bytes <= m.llc_bytes);
    }

    #[test]
    fn scaling_at_paper_size_is_identity_like() {
        let m = MachineModel::scaled_for_rows(1 << 26);
        let p = MachineModel::skylake_6126();
        assert_eq!(m.llc_bytes, p.llc_bytes);
        assert_eq!(m.l2_bytes, p.l2_bytes);
    }

    #[test]
    fn simd_fields_default_for_pre_simd_json() {
        // Model files serialized before the simd fields existed must
        // deserialize to the preset values (parsing old JSON is how
        // saved experiments reload their machine description).
        let m = MachineModel::skylake_6126();
        let json = serde_json::to_string(&m).unwrap();
        let stripped = json
            .replace(",\"simd_cycles_per_step\":6.0", "")
            .replace(",\"simd_lanes\":8", "")
            .replace(",\"simd_gather_mlp\":0.2", "");
        assert_ne!(stripped, json, "test must actually strip the fields");
        let back: MachineModel = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn mlp_factor_counts_streams_and_saturates() {
        let m = MachineModel::skylake_6126();
        assert_eq!(m.mlp_factor(0, 0), 1.0, "no MLP → exactly 1.0");
        assert_eq!(m.mlp_factor(0, 1), 1.0);
        assert_eq!(m.mlp_factor(8, 1), 1.0 + m.simd_gather_mlp);
        assert_eq!(m.mlp_factor(0, 2), 1.0 + m.simd_gather_mlp);
        assert_eq!(m.mlp_factor(8, 2), 1.0 + 2.0 * m.simd_gather_mlp);
        assert_eq!(m.mlp_factor(8, 4), 1.0 + 3.0 * m.simd_gather_mlp, "saturates at 3 streams");
        assert_eq!(m.mlp_factor(64, 8), m.mlp_factor(1, 4));
    }

    #[test]
    fn modeled_lanes_clamp_to_machine_width() {
        let m = MachineModel::skylake_6126();
        assert_eq!(m.modeled_lanes(0), 0, "0 = legacy model, not widest");
        assert_eq!(m.modeled_lanes(1), 1);
        assert_eq!(m.modeled_lanes(4), 4);
        assert_eq!(m.modeled_lanes(8), 8);
        assert_eq!(m.modeled_lanes(16), 8, "capped at simd_lanes");
        let (name, lanes) = MachineModel::host_simd();
        assert!(!name.is_empty() && lanes >= 1);
    }

    #[test]
    fn single_thread_bandwidth_between_fair_share_and_full() {
        let m = MachineModel::skylake_6126();
        let single = m.dram_seconds_single(1e9);
        let full = m.bandwidth_floor_seconds(1e9, 0.0);
        // One core is slower than the whole machine but much faster
        // than a 1/24 fair share.
        assert!(single > full);
        assert!(single < full * m.threads as f64);
        // LLC floor adds on top of DRAM floor.
        assert!(m.bandwidth_floor_seconds(1e9, 1e9) > full);
    }
}
