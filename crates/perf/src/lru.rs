//! LRU reuse-distance (stack-distance) simulation.
//!
//! For a fully-associative LRU cache of capacity `C` lines, an access
//! hits iff its *reuse distance* — the number of distinct lines touched
//! since the previous access to the same line — is `< C` (Mattson et
//! al., 1970). Computing distances exactly for a whole access stream
//! takes O(n log n) with a Fenwick tree over access timestamps; for
//! long streams, [`SampledLru`] applies *set sampling* (simulate only
//! lines whose hash falls in a 1-in-S sample, against capacity C/S, and
//! scale counts by S), the standard unbiased estimator for
//! set-associative-like behaviour.

use std::collections::HashMap;

/// Fenwick (binary indexed) tree over `usize` counts.
#[derive(Debug, Clone)]
pub struct Fenwick {
    tree: Vec<usize>,
}

impl Fenwick {
    pub fn new(n: usize) -> Fenwick {
        Fenwick { tree: vec![0; n + 1] }
    }

    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds `delta` at `index` (0-based).
    pub fn add(&mut self, index: usize, delta: isize) {
        let mut i = index + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as isize + delta) as usize;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of `0..=index` (0-based, inclusive).
    pub fn prefix_sum(&self, index: usize) -> usize {
        let mut i = (index + 1).min(self.tree.len() - 1);
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Sum over the closed range `[lo, hi]`.
    pub fn range_sum(&self, lo: usize, hi: usize) -> usize {
        if lo > hi {
            return 0;
        }
        let below = if lo == 0 { 0 } else { self.prefix_sum(lo - 1) };
        self.prefix_sum(hi) - below
    }

    /// Grows the tree to cover at least `n` indices.
    fn ensure(&mut self, n: usize) {
        if n + 1 > self.tree.len() {
            // Rebuild from scratch preserving point values.
            let old_len = self.tree.len() - 1;
            let mut vals = vec![0isize; old_len];
            for (i, v) in vals.iter_mut().enumerate() {
                *v = self.range_sum(i, i) as isize;
            }
            let new_cap = (n + 1).next_power_of_two();
            self.tree = vec![0; new_cap + 1];
            for (i, v) in vals.into_iter().enumerate() {
                if v != 0 {
                    self.add(i, v);
                }
            }
        }
    }
}

/// Exact reuse-distance tracker over an access stream of line ids.
#[derive(Debug)]
pub struct StackDistance {
    last_access: HashMap<u64, usize>,
    /// marks[t] == 1 iff timestamp t is the most recent access of its line.
    marks: Fenwick,
    time: usize,
}

impl Default for StackDistance {
    fn default() -> Self {
        Self::new()
    }
}

impl StackDistance {
    pub fn new() -> StackDistance {
        StackDistance { last_access: HashMap::new(), marks: Fenwick::new(1024), time: 0 }
    }

    /// Records an access to `line`, returning its reuse distance —
    /// `None` for a cold (first-ever) access.
    pub fn access(&mut self, line: u64) -> Option<usize> {
        let t = self.time;
        self.time += 1;
        self.marks.ensure(t + 1);
        let dist = match self.last_access.insert(line, t) {
            Some(prev) => {
                // Distinct lines touched strictly between prev and t =
                // number of "last access" marks in (prev, t).
                let d = if prev < t - 1 { self.marks.range_sum(prev + 1, t - 1) } else { 0 };
                self.marks.add(prev, -1);
                Some(d)
            }
            None => None,
        };
        self.marks.add(t, 1);
        dist
    }

    /// Number of distinct lines seen so far.
    pub fn distinct_lines(&self) -> usize {
        self.last_access.len()
    }
}

/// Which level of the modeled hierarchy served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    L1,
    L2,
    Llc,
    Dram,
}

/// Per-level access counts produced by a cache simulation. Counts are
/// in units of (possibly scaled) accesses.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AccessCounts {
    pub l1: f64,
    pub l2: f64,
    pub llc: f64,
    pub dram: f64,
}

impl AccessCounts {
    pub fn total(&self) -> f64 {
        self.l1 + self.l2 + self.llc + self.dram
    }
}

/// Set-sampled LRU hierarchy classifier.
///
/// Capacities are in *lines*. With `sample_shift = s`, only lines whose
/// multiplicative hash has `s` leading zero bits are simulated, against
/// capacities divided by `2^s`; reported counts are scaled back by
/// `2^s`. `sample_shift = 0` is the exact simulation.
#[derive(Debug)]
pub struct SampledLru {
    sd: StackDistance,
    l1_lines: usize,
    l2_lines: usize,
    llc_lines: usize,
    sample_shift: u32,
    counts: AccessCounts,
    /// Cold misses are classified by the caller-provided footprint rule:
    /// in steady-state iterative SpMV a "cold" access within one
    /// iteration was last touched one iteration ago, i.e. at reuse
    /// distance ~ total distinct lines of the stream.
    cold_as_dram: bool,
    cold: f64,
}

impl SampledLru {
    pub fn new(l1_lines: usize, l2_lines: usize, llc_lines: usize, sample_shift: u32) -> Self {
        let div = 1usize << sample_shift;
        SampledLru {
            sd: StackDistance::new(),
            l1_lines: (l1_lines / div).max(1),
            l2_lines: (l2_lines / div).max(1),
            llc_lines: (llc_lines / div).max(1),
            sample_shift,
            counts: AccessCounts::default(),
            cold_as_dram: true,
            cold: 0.0,
        }
    }

    /// If set, cold accesses are classified later by [`Self::finish`]
    /// against the stream's distinct-line footprint instead of being
    /// counted as DRAM immediately.
    pub fn defer_cold(mut self) -> Self {
        self.cold_as_dram = false;
        self
    }

    #[inline]
    fn sampled(&self, line: u64) -> bool {
        if self.sample_shift == 0 {
            return true;
        }
        // Fibonacci hash; take the top bits.
        let h = line.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> (64 - self.sample_shift)) == 0
    }

    /// Feeds one line access.
    pub fn access(&mut self, line: u64) -> Option<HitLevel> {
        if !self.sampled(line) {
            return None;
        }
        let w = (1u64 << self.sample_shift) as f64;
        match self.sd.access(line) {
            Some(d) => {
                let lvl = if d < self.l1_lines {
                    HitLevel::L1
                } else if d < self.l2_lines {
                    HitLevel::L2
                } else if d < self.llc_lines {
                    HitLevel::Llc
                } else {
                    HitLevel::Dram
                };
                match lvl {
                    HitLevel::L1 => self.counts.l1 += w,
                    HitLevel::L2 => self.counts.l2 += w,
                    HitLevel::Llc => self.counts.llc += w,
                    HitLevel::Dram => self.counts.dram += w,
                }
                Some(lvl)
            }
            None => {
                if self.cold_as_dram {
                    self.counts.dram += w;
                    Some(HitLevel::Dram)
                } else {
                    self.cold += w;
                    None
                }
            }
        }
    }

    /// Finalizes the counts. Deferred cold accesses are classified
    /// against the stream's distinct-line footprint: if all distinct
    /// lines fit below a level's capacity, a steady-state iteration
    /// would find them resident there.
    pub fn finish(mut self) -> AccessCounts {
        if self.cold > 0.0 {
            let distinct = self.sd.distinct_lines();
            if distinct < self.l2_lines {
                self.counts.l2 += self.cold;
            } else if distinct < self.llc_lines {
                self.counts.llc += self.cold;
            } else {
                self.counts.dram += self.cold;
            }
        }
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fenwick_prefix_sums() {
        let mut f = Fenwick::new(10);
        f.add(0, 3);
        f.add(4, 2);
        f.add(9, 1);
        assert_eq!(f.prefix_sum(0), 3);
        assert_eq!(f.prefix_sum(3), 3);
        assert_eq!(f.prefix_sum(4), 5);
        assert_eq!(f.prefix_sum(9), 6);
        assert_eq!(f.range_sum(1, 4), 2);
        assert_eq!(f.range_sum(5, 8), 0);
        f.add(4, -2);
        assert_eq!(f.prefix_sum(9), 4);
    }

    #[test]
    fn fenwick_grows() {
        let mut f = Fenwick::new(2);
        f.add(0, 1);
        f.ensure(100);
        f.add(99, 5);
        assert_eq!(f.prefix_sum(99), 6);
        assert_eq!(f.range_sum(0, 0), 1);
    }

    #[test]
    fn stack_distance_classic_sequence() {
        // Stream a b c a: distance of final a = 2 (b, c).
        let mut sd = StackDistance::new();
        assert_eq!(sd.access(10), None);
        assert_eq!(sd.access(20), None);
        assert_eq!(sd.access(30), None);
        assert_eq!(sd.access(10), Some(2));
        // Immediately repeated access has distance 0.
        assert_eq!(sd.access(10), Some(0));
        // b was last touched before c and the two a's: distance 2.
        assert_eq!(sd.access(20), Some(2));
    }

    #[test]
    fn stack_distance_brute_force_agreement() {
        // Compare against an O(n^2) reference on a pseudorandom stream.
        let stream: Vec<u64> = (0..500u64).map(|i| (i * i * 31 + i) % 47).collect();
        let mut sd = StackDistance::new();
        let mut seen: Vec<u64> = Vec::new();
        for (i, &l) in stream.iter().enumerate() {
            let want = stream[..i].iter().rposition(|&p| p == l).map(|prev| {
                let mut distinct: Vec<u64> = stream[prev + 1..i].to_vec();
                distinct.sort_unstable();
                distinct.dedup();
                distinct.len()
            });
            assert_eq!(sd.access(l), want, "at access {i}");
            seen.push(l);
        }
    }

    #[test]
    fn lru_hit_iff_distance_below_capacity() {
        // Cyclic sweep over N lines against capacity C: after warmup,
        // hits iff N <= C.
        let classify = |n: u64, cap: usize| -> (f64, f64) {
            let mut sim = SampledLru::new(1, 1, cap, 0);
            for _ in 0..4 {
                for l in 0..n {
                    sim.access(l);
                }
            }
            let c = sim.finish();
            (c.llc, c.dram)
        };
        let (hits, misses) = classify(8, 16);
        assert_eq!(misses, 8.0); // cold only
        assert_eq!(hits, 3.0 * 8.0);
        let (hits2, misses2) = classify(32, 16);
        assert_eq!(hits2, 0.0);
        assert_eq!(misses2, 4.0 * 32.0); // thrashing
    }

    #[test]
    fn deferred_cold_classifies_by_footprint() {
        let mut sim = SampledLru::new(1, 100, 1000, 0).defer_cold();
        for l in 0..50u64 {
            sim.access(l);
        }
        let c = sim.finish();
        // 50 distinct lines fit in L2 (100 lines): cold accesses
        // counted as steady-state L2 hits.
        assert_eq!(c.l2, 50.0);
        assert_eq!(c.dram, 0.0);
    }

    #[test]
    fn sampling_is_unbiased_on_uniform_stream() {
        // Random-ish uniform stream over many lines: sampled DRAM-rate
        // should be within a few percent of exact.
        let stream: Vec<u64> = (0..200_000u64)
            .map(|i| i.wrapping_mul(6364136223846793005).rotate_left(17) % 10_000)
            .collect();
        let run = |shift: u32| -> f64 {
            let mut sim = SampledLru::new(8, 64, 1024, shift);
            for &l in &stream {
                sim.access(l);
            }
            let c = sim.finish();
            c.dram / c.total()
        };
        let exact = run(0);
        let sampled = run(4);
        assert!((exact - sampled).abs() < 0.05, "exact {exact} vs sampled {sampled}");
    }

    #[test]
    fn total_counts_scale_back() {
        let stream: Vec<u64> = (0..100_000u64).map(|i| i % 4096).collect();
        let mut sim = SampledLru::new(8, 64, 8192, 3);
        for &l in &stream {
            sim.access(l);
        }
        let c = sim.finish();
        // Scaled total should approximate the stream length.
        let ratio = c.total() / stream.len() as f64;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Exact stack distances match the O(n^2) definition on random
        /// streams.
        #[test]
        fn distances_match_brute_force(stream in proptest::collection::vec(0u64..40, 1..300)) {
            let mut sd = StackDistance::new();
            for (i, &l) in stream.iter().enumerate() {
                let want = stream[..i].iter().rposition(|&p| p == l).map(|prev| {
                    let mut d: Vec<u64> = stream[prev + 1..i].to_vec();
                    d.sort_unstable();
                    d.dedup();
                    d.len()
                });
                prop_assert_eq!(sd.access(l), want, "access {}", i);
            }
            let mut distinct: Vec<u64> = stream.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assert_eq!(sd.distinct_lines(), distinct.len());
        }

        /// Larger caches never miss more (LRU inclusion property).
        #[test]
        fn miss_count_monotone_in_capacity(
            stream in proptest::collection::vec(0u64..60, 1..400),
            cap in 1usize..32,
        ) {
            let misses = |c: usize| {
                let mut sim = SampledLru::new(1, 1, c, 0);
                for &l in &stream {
                    sim.access(l);
                }
                sim.finish().dram
            };
            prop_assert!(misses(cap * 2) <= misses(cap));
        }
    }
}
