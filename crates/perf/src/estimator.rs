//! The label backend: modeled or measured execution times behind one
//! interface.
//!
//! Everything downstream (training labels, figure harnesses, the WISE
//! selection pipeline) asks an [`Estimator`] for seconds. The default
//! is the deterministic machine model; setting `WISE_MEASURED=1`
//! switches to wall-clock measurement on the host (useful on real
//! multicore hardware to validate the model's orderings).

use crate::cost::{
    auto_sample_shift, estimate_feature_extraction_seconds, estimate_preprocessing_seconds,
    estimate_spmv_seconds, estimate_spmv_seconds_cold,
};
use crate::machine::MachineModel;
use wise_kernels::method::MethodConfig;
use wise_kernels::srvpack::SpmvWorkspace;
use wise_kernels::timing::{measure_median, measure_once};
use wise_matrix::Csr;

/// Execution-time backend.
#[derive(Debug, Clone)]
pub enum Estimator {
    /// Deterministic cost model of a target machine.
    Model {
        machine: MachineModel,
        /// Reuse-distance sampling shift; `None` = auto per matrix.
        sample_shift: Option<u32>,
    },
    /// Wall-clock measurement on the host.
    Measured { nthreads: usize, warmup: usize, iters: usize },
}

impl Estimator {
    /// The default model backend scaled for a corpus whose largest
    /// matrices have `max_rows` rows.
    pub fn model_for_rows(max_rows: usize) -> Estimator {
        Estimator::Model { machine: MachineModel::scaled_for_rows(max_rows), sample_shift: None }
    }

    /// Chooses the backend from the environment: `WISE_MEASURED=1`
    /// selects wall-clock measurement, anything else the model.
    pub fn from_env(max_rows: usize) -> Estimator {
        if std::env::var("WISE_MEASURED").map(|v| v == "1").unwrap_or(false) {
            Estimator::Measured {
                nthreads: wise_kernels::sched::default_threads(),
                warmup: 2,
                iters: 5,
            }
        } else {
            Estimator::model_for_rows(max_rows)
        }
    }

    /// The machine being modeled, if any.
    pub fn machine(&self) -> Option<&MachineModel> {
        match self {
            Estimator::Model { machine, .. } => Some(machine),
            Estimator::Measured { .. } => None,
        }
    }

    /// Seconds for one SpMV of `cfg` on `m`.
    pub fn spmv_seconds(&self, m: &Csr, cfg: &MethodConfig) -> f64 {
        let _span = wise_trace::span("estimate.spmv");
        match self {
            Estimator::Model { machine, sample_shift } => {
                let shift = sample_shift.unwrap_or_else(|| auto_sample_shift(m.nnz()));
                estimate_spmv_seconds(m, cfg, machine, shift).seconds
            }
            Estimator::Measured { nthreads, warmup, iters } => {
                let prep = cfg.prepare(m);
                let x = vec![1.0f64; m.ncols()];
                let mut y = vec![0.0f64; m.nrows()];
                let mut ws = SpmvWorkspace::default();
                measure_median(|| prep.spmv(&x, &mut y, *nthreads, &mut ws), *warmup, *iters)
                    .median
                    .as_secs_f64()
            }
        }
    }

    /// `(steady-state, cold first-iteration)` seconds in one call —
    /// shares the format conversion between both estimates (label
    /// generation calls this for all 29 configurations per matrix, so
    /// the saved conversions halve labeling time).
    pub fn spmv_seconds_pair(&self, m: &Csr, cfg: &MethodConfig) -> (f64, f64) {
        let _span = wise_trace::span("estimate.spmv_pair");
        match self {
            Estimator::Model { machine, sample_shift } => {
                let shift = sample_shift.unwrap_or_else(|| auto_sample_shift(m.nnz()));
                let prepared = cfg.prepare(m);
                let steady =
                    crate::cost::estimate_prepared_opts(m, cfg, &prepared, machine, shift, false)
                        .seconds;
                let cold =
                    crate::cost::estimate_prepared_opts(m, cfg, &prepared, machine, shift, true)
                        .seconds;
                (steady, cold)
            }
            Estimator::Measured { .. } => {
                (self.spmv_seconds(m, cfg), self.spmv_seconds_cold(m, cfg))
            }
        }
    }

    /// Seconds for one *cold-cache first iteration* of `cfg` on `m` —
    /// what a trial-executing inspector-executor measures.
    pub fn spmv_seconds_cold(&self, m: &Csr, cfg: &MethodConfig) -> f64 {
        match self {
            Estimator::Model { machine, sample_shift } => {
                let shift = sample_shift.unwrap_or_else(|| auto_sample_shift(m.nnz()));
                estimate_spmv_seconds_cold(m, cfg, machine, shift).seconds
            }
            Estimator::Measured { nthreads, .. } => {
                let prep = cfg.prepare(m);
                let x = vec![1.0f64; m.ncols()];
                let mut y = vec![0.0f64; m.nrows()];
                let mut ws = SpmvWorkspace::default();
                // No warmup: genuinely cold-ish single run.
                measure_median(|| prep.spmv(&x, &mut y, *nthreads, &mut ws), 0, 1)
                    .median
                    .as_secs_f64()
            }
        }
    }

    /// Seconds to extract the WISE feature vector from `m`.
    pub fn feature_extraction_seconds(&self, m: &Csr) -> f64 {
        let _span = wise_trace::span("estimate.features");
        match self {
            Estimator::Model { machine, .. } => estimate_feature_extraction_seconds(m, machine),
            Estimator::Measured { .. } => {
                let cfg = wise_features::FeatureConfig::default();
                let (_f, d) = measure_once(|| wise_features::FeatureVector::extract(m, &cfg));
                d.as_secs_f64()
            }
        }
    }

    /// Seconds of preprocessing (format conversion) for `cfg` on `m`.
    pub fn preprocessing_seconds(&self, m: &Csr, cfg: &MethodConfig) -> f64 {
        let _span = wise_trace::span("estimate.preproc");
        match self {
            Estimator::Model { machine, .. } => estimate_preprocessing_seconds(m, cfg, machine),
            Estimator::Measured { .. } => {
                let (_prep, d) = measure_once(|| cfg.prepare(m));
                d.as_secs_f64()
            }
        }
    }

    /// Seconds per `{config}` for the whole catalog, in catalog order.
    pub fn time_catalog(&self, m: &Csr) -> Vec<(MethodConfig, f64)> {
        MethodConfig::catalog()
            .into_iter()
            .map(|cfg| {
                let t = self.spmv_seconds(m, &cfg);
                (cfg, t)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wise_gen::RmatParams;
    use wise_kernels::Schedule;

    #[test]
    fn model_backend_is_deterministic() {
        let m = RmatParams::LOW_LOC.generate(9, 8, 3);
        let e = Estimator::model_for_rows(1 << 9);
        let cfg = MethodConfig::sellpack(8, Schedule::Dyn);
        assert_eq!(e.spmv_seconds(&m, &cfg), e.spmv_seconds(&m, &cfg));
    }

    #[test]
    fn measured_backend_runs() {
        let m = RmatParams::LOW_LOC.generate(8, 4, 3);
        let e = Estimator::Measured { nthreads: 1, warmup: 0, iters: 1 };
        let t = e.spmv_seconds(&m, &MethodConfig::csr(Schedule::StCont));
        assert!(t > 0.0);
        let p = e.preprocessing_seconds(&m, &MethodConfig::lav(8, 0.7));
        assert!(p > 0.0);
    }

    #[test]
    fn catalog_timing_covers_all() {
        let m = RmatParams::MED_SKEW.generate(8, 4, 5);
        let e = Estimator::model_for_rows(1 << 8);
        let all = e.time_catalog(&m);
        assert_eq!(all.len(), 29);
        assert!(all.iter().all(|(_, t)| *t > 0.0));
    }

    #[test]
    fn csr_preprocessing_is_free_in_model() {
        let m = RmatParams::MED_SKEW.generate(8, 4, 5);
        let e = Estimator::model_for_rows(1 << 8);
        assert_eq!(e.preprocessing_seconds(&m, &MethodConfig::csr(Schedule::Dyn)), 0.0);
    }
}
