//! The label backend: modeled or measured execution times behind one
//! interface.
//!
//! Everything downstream (training labels, figure harnesses, the WISE
//! selection pipeline) asks an [`Estimator`] for seconds. The default
//! is the deterministic machine model; setting `WISE_MEASURED=1`
//! switches to wall-clock measurement on the host (useful on real
//! multicore hardware to validate the model's orderings).

use crate::cost::{
    auto_sample_shift, estimate_feature_extraction_seconds, estimate_preprocessing_seconds,
    estimate_spmv_seconds, estimate_spmv_seconds_cold,
};
use crate::machine::MachineModel;
use wise_features::ProbeFeatures;
use wise_kernels::method::MethodConfig;
use wise_kernels::srvpack::SpmvWorkspace;
use wise_kernels::timing::{measure_median, measure_once};
use wise_matrix::Csr;

/// Closed-form roofline bounds computed from the stage-1 probe alone —
/// no format conversion, no LRU reuse simulation; O(1) given the
/// probe. Used by `wise_core::cascade` as a sanity veto: a stage-1
/// class whose representative speedup exceeds `max_plausible_speedup`
/// is physically implausible on the modeled machine, so the cascade
/// falls through to the full pipeline instead of trusting it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuickBounds {
    /// Pessimistic-reuse CSR estimate: issue-bound compute vs DRAM
    /// traffic with input-vector reuse discounted by the probe's
    /// bandwidth proxy (scattered columns ⇒ near one load per nnz).
    pub csr_seconds: f64,
    /// Compulsory-traffic lower bound for *any* catalog method: vector
    /// compute vs matrix + output + one-pass input traffic.
    pub best_seconds: f64,
    /// Largest speedup over CSR any method could plausibly reach,
    /// `csr_seconds / best_seconds` with 25% slack, clamped ≥ 1 (CSR
    /// itself is always available).
    pub max_plausible_speedup: f64,
}

/// Execution-time backend.
#[derive(Debug, Clone)]
pub enum Estimator {
    /// Deterministic cost model of a target machine.
    Model {
        machine: MachineModel,
        /// Reuse-distance sampling shift; `None` = auto per matrix.
        sample_shift: Option<u32>,
    },
    /// Wall-clock measurement on the host.
    Measured { nthreads: usize, warmup: usize, iters: usize },
}

impl Estimator {
    /// The default model backend scaled for a corpus whose largest
    /// matrices have `max_rows` rows.
    pub fn model_for_rows(max_rows: usize) -> Estimator {
        Estimator::Model { machine: MachineModel::scaled_for_rows(max_rows), sample_shift: None }
    }

    /// Chooses the backend from the environment: `WISE_MEASURED=1`
    /// selects wall-clock measurement, anything else the model.
    pub fn from_env(max_rows: usize) -> Estimator {
        if std::env::var("WISE_MEASURED").map(|v| v == "1").unwrap_or(false) {
            Estimator::Measured {
                nthreads: wise_kernels::sched::default_threads(),
                warmup: 2,
                iters: 5,
            }
        } else {
            Estimator::model_for_rows(max_rows)
        }
    }

    /// The machine being modeled, if any.
    pub fn machine(&self) -> Option<&MachineModel> {
        match self {
            Estimator::Model { machine, .. } => Some(machine),
            Estimator::Measured { .. } => None,
        }
    }

    /// Roofline bounds from a stage-1 probe — model backend only
    /// (`None` for the measured backend, which has no machine to
    /// reason about, and for empty matrices, where any bound is
    /// vacuous).
    pub fn quick_bounds(&self, probe: &ProbeFeatures) -> Option<QuickBounds> {
        let Estimator::Model { machine, .. } = self else { return None };
        if probe.nnz == 0 {
            return None;
        }
        let (nnz, nrows, ncols) = (probe.nnz as f64, probe.n_rows as f64, probe.n_cols as f64);
        let cycles_per_sec = machine.threads as f64 * machine.freq_ghz * 1e9;
        let t_scalar = nnz * machine.scalar_cycles_per_nnz / cycles_per_sec;
        let lanes = machine.simd_lanes.max(1) as f64;
        let t_vector = nnz / lanes * machine.simd_cycles_per_step / cycles_per_sec;

        // CSR traffic: 8B value + 4B index per nonzero, row pointers,
        // output writes, and input-vector loads. Compulsory x traffic
        // is one pass (ncols · 8B); the pessimistic CSR estimate moves
        // toward one load per nonzero as the bandwidth proxy says
        // columns scatter away from the diagonal.
        let mat_bytes = nnz * 12.0 + (nrows + 1.0) * 8.0;
        let y_bytes = nrows * 8.0;
        let x_once = ncols * 8.0;
        let reuse_penalty = probe.bandwidth_frac.clamp(0.0, 1.0);
        let x_pessimistic = x_once + (nnz * 8.0 - x_once).max(0.0) * reuse_penalty;
        let bw = machine.dram_bw_gbs * 1e9;

        let csr_seconds = t_scalar.max((mat_bytes + y_bytes + x_pessimistic) / bw);
        let best_seconds = t_vector.max((mat_bytes + y_bytes + x_once) / bw).max(1e-15);
        let max_plausible_speedup = (csr_seconds / best_seconds * 1.25).max(1.0);
        Some(QuickBounds { csr_seconds, best_seconds, max_plausible_speedup })
    }

    /// Seconds for one SpMV of `cfg` on `m`.
    pub fn spmv_seconds(&self, m: &Csr, cfg: &MethodConfig) -> f64 {
        let _span = wise_trace::span("estimate.spmv");
        match self {
            Estimator::Model { machine, sample_shift } => {
                let shift = sample_shift.unwrap_or_else(|| auto_sample_shift(m.nnz()));
                estimate_spmv_seconds(m, cfg, machine, shift).seconds
            }
            Estimator::Measured { nthreads, warmup, iters } => {
                let prep = cfg.prepare(m);
                let x = vec![1.0f64; m.ncols()];
                let mut y = vec![0.0f64; m.nrows()];
                let mut ws = SpmvWorkspace::default();
                measure_median(|| prep.spmv(&x, &mut y, *nthreads, &mut ws), *warmup, *iters)
                    .median
                    .as_secs_f64()
            }
        }
    }

    /// `(steady-state, cold first-iteration)` seconds in one call —
    /// shares the format conversion between both estimates (label
    /// generation calls this for all 29 configurations per matrix, so
    /// the saved conversions halve labeling time).
    pub fn spmv_seconds_pair(&self, m: &Csr, cfg: &MethodConfig) -> (f64, f64) {
        let _span = wise_trace::span("estimate.spmv_pair");
        match self {
            Estimator::Model { machine, sample_shift } => {
                let shift = sample_shift.unwrap_or_else(|| auto_sample_shift(m.nnz()));
                let prepared = cfg.prepare(m);
                let steady =
                    crate::cost::estimate_prepared_opts(m, cfg, &prepared, machine, shift, false)
                        .seconds;
                let cold =
                    crate::cost::estimate_prepared_opts(m, cfg, &prepared, machine, shift, true)
                        .seconds;
                (steady, cold)
            }
            Estimator::Measured { .. } => {
                (self.spmv_seconds(m, cfg), self.spmv_seconds_cold(m, cfg))
            }
        }
    }

    /// Seconds for one *cold-cache first iteration* of `cfg` on `m` —
    /// what a trial-executing inspector-executor measures.
    pub fn spmv_seconds_cold(&self, m: &Csr, cfg: &MethodConfig) -> f64 {
        match self {
            Estimator::Model { machine, sample_shift } => {
                let shift = sample_shift.unwrap_or_else(|| auto_sample_shift(m.nnz()));
                estimate_spmv_seconds_cold(m, cfg, machine, shift).seconds
            }
            Estimator::Measured { nthreads, .. } => {
                let prep = cfg.prepare(m);
                let x = vec![1.0f64; m.ncols()];
                let mut y = vec![0.0f64; m.nrows()];
                let mut ws = SpmvWorkspace::default();
                // No warmup: genuinely cold-ish single run.
                measure_median(|| prep.spmv(&x, &mut y, *nthreads, &mut ws), 0, 1)
                    .median
                    .as_secs_f64()
            }
        }
    }

    /// Seconds to extract the WISE feature vector from `m`.
    pub fn feature_extraction_seconds(&self, m: &Csr) -> f64 {
        let _span = wise_trace::span("estimate.features");
        match self {
            Estimator::Model { machine, .. } => estimate_feature_extraction_seconds(m, machine),
            Estimator::Measured { .. } => {
                let cfg = wise_features::FeatureConfig::default();
                let (_f, d) = measure_once(|| wise_features::FeatureVector::extract(m, &cfg));
                d.as_secs_f64()
            }
        }
    }

    /// Seconds of preprocessing (format conversion) for `cfg` on `m`.
    pub fn preprocessing_seconds(&self, m: &Csr, cfg: &MethodConfig) -> f64 {
        let _span = wise_trace::span("estimate.preproc");
        match self {
            Estimator::Model { machine, .. } => estimate_preprocessing_seconds(m, cfg, machine),
            Estimator::Measured { .. } => {
                let (_prep, d) = measure_once(|| cfg.prepare(m));
                d.as_secs_f64()
            }
        }
    }

    /// Seconds per `{config}` for the whole catalog, in catalog order.
    pub fn time_catalog(&self, m: &Csr) -> Vec<(MethodConfig, f64)> {
        MethodConfig::catalog()
            .into_iter()
            .map(|cfg| {
                let t = self.spmv_seconds(m, &cfg);
                (cfg, t)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wise_gen::RmatParams;
    use wise_kernels::Schedule;

    #[test]
    fn model_backend_is_deterministic() {
        let m = RmatParams::LOW_LOC.generate(9, 8, 3);
        let e = Estimator::model_for_rows(1 << 9);
        let cfg = MethodConfig::sellpack(8, Schedule::Dyn);
        assert_eq!(e.spmv_seconds(&m, &cfg), e.spmv_seconds(&m, &cfg));
    }

    #[test]
    fn measured_backend_runs() {
        let m = RmatParams::LOW_LOC.generate(8, 4, 3);
        let e = Estimator::Measured { nthreads: 1, warmup: 0, iters: 1 };
        let t = e.spmv_seconds(&m, &MethodConfig::csr(Schedule::StCont));
        assert!(t > 0.0);
        let p = e.preprocessing_seconds(&m, &MethodConfig::lav(8, 0.7));
        assert!(p > 0.0);
    }

    #[test]
    fn catalog_timing_covers_all() {
        let m = RmatParams::MED_SKEW.generate(8, 4, 5);
        let e = Estimator::model_for_rows(1 << 8);
        let all = e.time_catalog(&m);
        assert_eq!(all.len(), 29);
        assert!(all.iter().all(|(_, t)| *t > 0.0));
    }

    #[test]
    fn csr_preprocessing_is_free_in_model() {
        let m = RmatParams::MED_SKEW.generate(8, 4, 5);
        let e = Estimator::model_for_rows(1 << 8);
        assert_eq!(e.preprocessing_seconds(&m, &MethodConfig::csr(Schedule::Dyn)), 0.0);
    }

    #[test]
    fn quick_bounds_sane_and_deterministic() {
        use wise_features::ProbeFeatures;
        let m = RmatParams::MED_SKEW.generate(9, 8, 5);
        let e = Estimator::model_for_rows(1 << 9);
        let probe = ProbeFeatures::extract(&m);
        let b = e.quick_bounds(&probe).unwrap();
        assert!(b.csr_seconds > 0.0 && b.best_seconds > 0.0);
        assert!(b.csr_seconds >= b.best_seconds * 0.999, "{b:?}");
        assert!(b.max_plausible_speedup >= 1.0);
        assert_eq!(e.quick_bounds(&probe), Some(b));
    }

    #[test]
    fn quick_bounds_rewards_diagonal_locality() {
        use wise_features::ProbeFeatures;
        let e = Estimator::model_for_rows(1 << 10);
        let banded = ProbeFeatures::extract(&wise_gen::suite::banded(1024, 4, 1.0, 0));
        let scattered = ProbeFeatures::extract(&RmatParams::LOW_LOC.generate(10, 4, 2));
        let bb = e.quick_bounds(&banded).unwrap();
        let bs = e.quick_bounds(&scattered).unwrap();
        // Scattered columns pay more pessimistic x traffic relative to
        // their compulsory bound, so more headroom is plausible there.
        assert!(bs.max_plausible_speedup >= bb.max_plausible_speedup, "{bs:?} vs {bb:?}");
    }

    #[test]
    fn quick_bounds_absent_for_measured_and_empty() {
        use wise_features::ProbeFeatures;
        let m = RmatParams::LOW_LOC.generate(8, 4, 3);
        let probe = ProbeFeatures::extract(&m);
        let measured = Estimator::Measured { nthreads: 1, warmup: 0, iters: 1 };
        assert_eq!(measured.quick_bounds(&probe), None);
        let empty = ProbeFeatures::extract(&wise_matrix::Csr::zero(16, 16));
        let model = Estimator::model_for_rows(1 << 8);
        assert_eq!(model.quick_bounds(&empty), None);
    }
}
