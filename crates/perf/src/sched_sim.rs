//! Scheduling simulation: fold per-chunk costs into a parallel
//! makespan under each of the paper's three policies.
//!
//! St and StCont use the *actual* assignment functions of the kernel
//! crate, so the model and the implementation can never drift apart.
//! Dyn is simulated with greedy list scheduling (earliest-free thread
//! takes the next grab of `grain` chunks), which is exactly what the
//! shared-counter loop in `wise_kernels::sched` converges to, plus a
//! per-grab overhead charge.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use wise_kernels::sched::static_assignment;
use wise_kernels::Schedule;

/// Total-order f64 wrapper for the scheduling heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Finish(f64);

impl Eq for Finish {}
impl PartialOrd for Finish {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Finish {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Parallel completion time of `chunk_costs` (seconds each) on
/// `nthreads` workers under `schedule`.
///
/// `grain` is the number of consecutive chunks per scheduling grab (as
/// in the executor); `dyn_grab_seconds` is charged once per grab under
/// Dyn.
pub fn makespan(
    chunk_costs: &[f64],
    nthreads: usize,
    schedule: Schedule,
    grain: usize,
    dyn_grab_seconds: f64,
) -> f64 {
    let nthreads = nthreads.max(1);
    let grain = grain.max(1);
    if chunk_costs.is_empty() {
        return 0.0;
    }
    match schedule {
        Schedule::St | Schedule::StCont => {
            let assign = static_assignment(chunk_costs.len(), nthreads, schedule, grain);
            assign
                .iter()
                .map(|chunks| chunks.iter().map(|&i| chunk_costs[i]).sum::<f64>())
                .fold(0.0f64, f64::max)
        }
        Schedule::Dyn => {
            let mut heap: BinaryHeap<Reverse<Finish>> =
                (0..nthreads).map(|_| Reverse(Finish(0.0))).collect();
            let mut start = 0usize;
            while start < chunk_costs.len() {
                let end = (start + grain).min(chunk_costs.len());
                let grab_cost: f64 = chunk_costs[start..end].iter().sum::<f64>() + dyn_grab_seconds;
                let Reverse(Finish(t)) = heap.pop().expect("nthreads >= 1");
                heap.push(Reverse(Finish(t + grab_cost)));
                start = end;
            }
            heap.into_iter().map(|Reverse(Finish(t))| t).fold(0.0f64, f64::max)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_chunks_balance_everywhere() {
        let costs = vec![1.0; 64];
        for sched in Schedule::ALL {
            let t = makespan(&costs, 8, sched, 1, 0.0);
            assert!((t - 8.0).abs() < 1e-9, "{sched:?}: {t}");
        }
    }

    #[test]
    fn skewed_chunks_hurt_static_contiguous() {
        // All heavy work at the front: StCont gives it to one thread.
        let mut costs = vec![0.01; 64];
        for c in costs.iter_mut().take(16) {
            *c = 1.0;
        }
        let stcont = makespan(&costs, 4, Schedule::StCont, 1, 0.0);
        let dynamic = makespan(&costs, 4, Schedule::Dyn, 1, 0.0);
        let st = makespan(&costs, 4, Schedule::St, 1, 0.0);
        assert!(stcont > 15.0, "one thread eats all heavy chunks: {stcont}");
        assert!(dynamic < stcont / 2.0, "dyn balances: {dynamic} vs {stcont}");
        assert!(st < stcont / 2.0, "round-robin interleaves: {st}");
    }

    #[test]
    fn dyn_charges_grab_overhead() {
        let costs = vec![1.0; 16];
        let free = makespan(&costs, 4, Schedule::Dyn, 1, 0.0);
        let taxed = makespan(&costs, 4, Schedule::Dyn, 1, 0.5);
        assert!((free - 4.0).abs() < 1e-9);
        assert!((taxed - 6.0).abs() < 1e-9, "4 grabs/thread x 0.5s: {taxed}");
        // Larger grain amortizes the overhead.
        let coarse = makespan(&costs, 4, Schedule::Dyn, 4, 0.5);
        assert!(coarse < taxed);
    }

    #[test]
    fn single_thread_is_sum() {
        let costs = vec![0.5, 1.5, 2.0];
        for sched in Schedule::ALL {
            assert!((makespan(&costs, 1, sched, 1, 0.0) - 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(makespan(&[], 4, Schedule::Dyn, 1, 1.0), 0.0);
    }

    #[test]
    fn makespan_at_least_mean_load() {
        let costs: Vec<f64> = (0..37).map(|i| (i % 5) as f64 * 0.3 + 0.1).collect();
        let total: f64 = costs.iter().sum();
        for sched in Schedule::ALL {
            let t = makespan(&costs, 6, sched, 2, 0.0);
            assert!(t >= total / 6.0 - 1e-9);
            assert!(t <= total + 1e-9);
        }
    }
}
