//! Calibration of the machine model against host measurements.
//!
//! The cost model's *relative* structure (who wins, by what factor) is
//! what the WISE experiments need, but users running on real hardware
//! may also want absolute predictions. Calibration measures a probe set
//! of `{matrix, config}` pairs on the host and fits a single time-scale
//! factor `α` minimizing the squared error between `α · modeled` and
//! measured seconds — preserving every relative relationship while
//! anchoring the absolute scale. (A full per-parameter fit would risk
//! overfitting the handful of probes; one global factor cannot.)

use crate::cost::{auto_sample_shift, estimate_spmv_seconds};
use crate::machine::MachineModel;
use wise_kernels::method::MethodConfig;
use wise_kernels::srvpack::SpmvWorkspace;
use wise_kernels::timing::measure_median;
use wise_matrix::Csr;

/// Outcome of a calibration run.
#[derive(Debug, Clone)]
pub struct CalibrationReport {
    /// Fitted time-scale factor (measured ≈ α · modeled).
    pub alpha: f64,
    /// `(modeled, measured)` seconds per probe.
    pub probes: Vec<(f64, f64)>,
    /// Root-mean-square relative error after scaling.
    pub rms_rel_error: f64,
}

/// Least-squares fit of `measured ≈ α · modeled`:
/// `α = Σ m·t / Σ m²`. Panics on an empty or all-zero input.
pub fn fit_time_scale(pairs: &[(f64, f64)]) -> f64 {
    let num: f64 = pairs.iter().map(|&(m, t)| m * t).sum();
    let den: f64 = pairs.iter().map(|&(m, _)| m * m).sum();
    assert!(den > 0.0, "calibration needs non-zero modeled times");
    num / den
}

/// Applies a time-scale factor to a machine: all times produced by the
/// model scale by `alpha` (frequency and bandwidths divide by it).
pub fn scale_machine_time(machine: &MachineModel, alpha: f64) -> MachineModel {
    assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive, got {alpha}");
    MachineModel {
        name: format!("{}-calibrated", machine.name),
        freq_ghz: machine.freq_ghz / alpha,
        dram_bw_gbs: machine.dram_bw_gbs / alpha,
        llc_bw_gbs: machine.llc_bw_gbs / alpha,
        dyn_grab_ns: machine.dyn_grab_ns * alpha,
        ..machine.clone()
    }
}

/// Measures each probe on the host (`nthreads` workers, median of
/// `iters` timed runs) and returns the calibrated machine plus the fit
/// report.
pub fn calibrate_to_host(
    machine: &MachineModel,
    probes: &[(&Csr, MethodConfig)],
    nthreads: usize,
    iters: usize,
) -> (MachineModel, CalibrationReport) {
    assert!(!probes.is_empty(), "calibration needs at least one probe");
    let mut pairs = Vec::with_capacity(probes.len());
    for (m, cfg) in probes {
        let shift = auto_sample_shift(m.nnz());
        let modeled = estimate_spmv_seconds(m, cfg, machine, shift).seconds;
        let prep = cfg.prepare(m);
        let x = vec![1.0f64; m.ncols()];
        let mut y = vec![0.0f64; m.nrows()];
        let mut ws = SpmvWorkspace::default();
        let measured = measure_median(|| prep.spmv(&x, &mut y, nthreads, &mut ws), 1, iters)
            .median
            .as_secs_f64();
        pairs.push((modeled, measured));
    }
    let alpha = fit_time_scale(&pairs);
    let rms_rel_error = (pairs
        .iter()
        .map(|&(m, t)| {
            let e = (alpha * m - t) / t.max(1e-12);
            e * e
        })
        .sum::<f64>()
        / pairs.len() as f64)
        .sqrt();
    (scale_machine_time(machine, alpha), CalibrationReport { alpha, probes: pairs, rms_rel_error })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wise_gen::RmatParams;
    use wise_kernels::Schedule;

    #[test]
    fn fit_recovers_known_scale() {
        let pairs: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 3.0 * i as f64)).collect();
        assert!((fit_time_scale(&pairs) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fit_is_least_squares_not_mean_of_ratios() {
        // One noisy point should be weighted by magnitude.
        let pairs = vec![(1.0, 2.0), (10.0, 20.0), (0.001, 1.0)];
        let alpha = fit_time_scale(&pairs);
        assert!((alpha - 2.0).abs() < 0.02, "alpha {alpha}");
    }

    #[test]
    #[should_panic(expected = "non-zero modeled")]
    fn fit_rejects_degenerate_input() {
        fit_time_scale(&[(0.0, 1.0)]);
    }

    #[test]
    fn scaling_machine_scales_model_output_linearly() {
        let m = RmatParams::MED_SKEW.generate(9, 8, 1);
        let machine = MachineModel::scaled_for_rows(1 << 9);
        let cfg = MethodConfig::csr(Schedule::Dyn);
        let base = estimate_spmv_seconds(&m, &cfg, &machine, 0).seconds;
        let scaled = scale_machine_time(&machine, 2.5);
        let doubled = estimate_spmv_seconds(&m, &cfg, &scaled, 0).seconds;
        let ratio = doubled / base;
        assert!((ratio - 2.5).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn calibrate_to_host_runs_and_reduces_scale_error() {
        let m1 = RmatParams::MED_SKEW.generate(10, 8, 2);
        let m2 = RmatParams::LOW_LOC.generate(10, 4, 3);
        let machine = MachineModel::scaled_for_rows(1 << 10);
        let probes = vec![
            (&m1, MethodConfig::csr(Schedule::StCont)),
            (&m2, MethodConfig::sellpack(8, Schedule::Dyn)),
        ];
        let (calibrated, report) = calibrate_to_host(&machine, &probes, 1, 3);
        assert!(report.alpha > 0.0 && report.alpha.is_finite());
        assert_eq!(report.probes.len(), 2);
        // After calibration the modeled times match measurements at
        // least in aggregate scale.
        let total_modeled: f64 = report.probes.iter().map(|&(m, _)| m * report.alpha).sum();
        let total_measured: f64 = report.probes.iter().map(|&(_, t)| t).sum();
        assert!(
            (total_modeled / total_measured - 1.0).abs() < 0.5,
            "aggregate scale off: {total_modeled} vs {total_measured}"
        );
        assert!(calibrated.freq_ghz > 0.0);
    }
}

/// One calibration sample for the selection cascade's confidence gate
/// (see `wise_core::cascade`): the stage-1 vote margin on a labeled
/// training matrix, the P-ratio (oracle seconds / chosen seconds) the
/// stage-1 answer would achieve there, and the P-ratio full WISE
/// achieves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginSample {
    pub margin: f64,
    pub p_stage1: f64,
    pub p_full: f64,
}

/// Picks the most permissive margin threshold τ such that the overall
/// cascade P-ratio — stage-1 P for samples with `margin ≥ τ`, full-WISE
/// P for the rest — stays at or above `rel_floor` × the full-WISE mean
/// P-ratio on the same samples.
///
/// Samples are scanned in descending margin order (groups of equal
/// margins accepted atomically, so the returned τ is unambiguous at
/// runtime); the *lowest* group margin whose induced cascade P-ratio
/// still clears the floor wins, maximizing fast-path acceptance.
/// Returns `None` — gate never fires — when no prefix clears the
/// floor, or when there are no finite-margin samples.
pub fn calibrate_margin_threshold(samples: &[MarginSample], rel_floor: f64) -> Option<f64> {
    let mut sorted: Vec<&MarginSample> = samples.iter().filter(|s| !s.margin.is_nan()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| b.margin.total_cmp(&a.margin));
    let n = samples.len() as f64;
    let p_full_sum: f64 = samples.iter().map(|s| s.p_full).sum();
    let floor = rel_floor * p_full_sum / n;
    let mut delta = 0.0; // Σ (p_stage1 - p_full) over the accepted prefix.
    let mut best = None;
    let mut i = 0;
    while i < sorted.len() {
        let margin = sorted[i].margin;
        while i < sorted.len() && sorted[i].margin == margin {
            delta += sorted[i].p_stage1 - sorted[i].p_full;
            i += 1;
        }
        if (p_full_sum + delta) / n >= floor - 1e-12 {
            best = Some(margin);
        }
    }
    best
}

#[cfg(test)]
mod margin_tests {
    use super::*;

    fn s(margin: f64, p_stage1: f64, p_full: f64) -> MarginSample {
        MarginSample { margin, p_stage1, p_full }
    }

    #[test]
    fn harmless_stage1_accepts_everything() {
        // Stage 1 matches full WISE everywhere: τ is the minimum margin.
        let samples = vec![s(0.9, 0.95, 0.95), s(0.5, 0.9, 0.9), s(0.2, 1.0, 1.0)];
        assert_eq!(calibrate_margin_threshold(&samples, 0.98), Some(0.2));
    }

    #[test]
    fn bad_low_margin_answers_are_excluded() {
        // The low-margin sample would tank the cascade P-ratio; τ must
        // sit above it.
        let samples = vec![s(0.9, 1.0, 1.0), s(0.8, 1.0, 1.0), s(0.1, 0.2, 1.0)];
        assert_eq!(calibrate_margin_threshold(&samples, 0.98), Some(0.8));
    }

    #[test]
    fn impossible_floor_yields_none() {
        let samples = vec![s(0.9, 0.5, 1.0), s(0.7, 0.4, 1.0)];
        assert_eq!(calibrate_margin_threshold(&samples, 0.98), None);
    }

    #[test]
    fn later_good_group_can_recover_the_floor() {
        // A damaging middle group followed by a strongly positive one:
        // the scan keeps going and finds the lower, better prefix.
        let samples = vec![s(0.9, 1.0, 1.0), s(0.5, 0.90, 1.0), s(0.3, 1.0, 0.9)];
        // Prefix to 0.5: mean p = (1.0 + 0.90 + 0.9)/3 ≈ 0.933 < 0.98·0.9667.
        // Prefix to 0.3: mean p = (1.0 + 0.90 + 1.0)/3 ≈ 0.9667 > floor.
        assert_eq!(calibrate_margin_threshold(&samples, 0.98), Some(0.3));
    }

    #[test]
    fn equal_margins_accept_atomically() {
        // Two samples share a margin; one is bad enough that the pair
        // must be rejected together.
        let samples = vec![s(0.9, 1.0, 1.0), s(0.5, 1.0, 1.0), s(0.5, 0.1, 1.0)];
        assert_eq!(calibrate_margin_threshold(&samples, 0.98), Some(0.9));
    }

    #[test]
    fn empty_and_nan_inputs_yield_none() {
        assert_eq!(calibrate_margin_threshold(&[], 0.98), None);
        assert_eq!(calibrate_margin_threshold(&[s(f64::NAN, 1.0, 1.0)], 0.5), None);
    }

    #[test]
    fn max_margin_exact_matches_always_admitted() {
        // The all-heads-reached-leaves case: margin f64::MAX with
        // p_stage1 == p_full survives any floor ≤ 1.
        let samples = vec![s(f64::MAX, 0.97, 0.97), s(0.1, 0.2, 1.0)];
        assert_eq!(calibrate_margin_threshold(&samples, 0.98), Some(f64::MAX));
    }
}

/// Spearman rank correlation between two equal-length samples —
/// the model-validation metric: we claim the model orders
/// configurations like the hardware does, not that it predicts
/// absolute times.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "samples must align");
    assert!(a.len() >= 2, "need at least two points");
    let rank = |v: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&x, &y| v[x].total_cmp(&v[y]));
        let mut ranks = vec![0.0; v.len()];
        let mut i = 0;
        while i < idx.len() {
            // Average ranks over ties.
            let mut j = i;
            while j + 1 < idx.len() && v[idx[j + 1]] == v[idx[i]] {
                j += 1;
            }
            let avg = (i + j) as f64 / 2.0;
            for &k in &idx[i..=j] {
                ranks[k] = avg;
            }
            i = j + 1;
        }
        ranks
    };
    let ra = rank(a);
    let rb = rank(b);
    let n = a.len() as f64;
    let mean = (n - 1.0) / 2.0;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in ra.iter().zip(&rb) {
        cov += (x - mean) * (y - mean);
        va += (x - mean) * (x - mean);
        vb += (y - mean) * (y - mean);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod spearman_tests {
    use super::*;

    #[test]
    fn perfect_monotone_is_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 300.0, 4000.0]; // nonlinear but monotone
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_is_minus_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [9.0, 5.0, 1.0];
        assert!((spearman(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ties_are_averaged() {
        let a = [1.0, 1.0, 2.0];
        let b = [5.0, 5.0, 9.0];
        let r = spearman(&a, &b);
        assert!(r > 0.99, "tied monotone data: {r}");
    }

    #[test]
    fn constant_series_is_zero() {
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }
}
