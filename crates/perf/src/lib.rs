//! Machine performance model for the WISE reproduction.
//!
//! The paper's evaluation runs on a 2-socket, 24-core Intel Xeon Gold
//! 6126 (Skylake) — hardware this reproduction does not have. Per the
//! substitution rule in DESIGN.md, this crate models that machine and
//! produces *deterministic* execution-time estimates for every
//! `{matrix, method-config}` pair. The estimates drive label generation
//! for model training and every figure of the evaluation; a wall-clock
//! backend ([`estimator::Estimator::Measured`]) remains available for
//! validating the model's orderings on real hardware.
//!
//! The model captures exactly the effects the paper identifies as
//! performance-determining:
//!
//! * **traffic** — matrix, output and input-vector bytes from DRAM or
//!   LLC, with input-vector locality computed by an LRU reuse-distance
//!   simulation ([`lru`]) of the method's actual access stream (so CFS,
//!   segmentation and σ/RFS reordering genuinely change the estimate);
//! * **padding** — vectorized methods pay compute and traffic for the
//!   zeros SELLPACK-style packing introduces;
//! * **scheduling** — per-chunk costs are folded over the Dyn/St/StCont
//!   assignment (list-scheduling simulation for Dyn), reproducing load
//!   imbalance under skew ([`sched_sim`]);
//! * **machine** — cache capacities, bandwidths and vector widths are
//!   explicit ([`machine::MachineModel`]), with the paper's Skylake as
//!   a preset and a proportionally scaled variant for quick-scale
//!   corpora.

pub mod calibrate;
pub mod cost;
pub mod estimator;
pub mod lru;
pub mod machine;
pub mod residual;
pub mod sched_sim;

pub use calibrate::{
    calibrate_margin_threshold, calibrate_to_host, CalibrationReport, MarginSample,
};
pub use cost::{estimate_preprocessing_seconds, estimate_spmv_seconds, CostBreakdown};
pub use estimator::{Estimator, QuickBounds};
pub use machine::MachineModel;
pub use residual::{observe_residual, Residual};
