//! The benchmark ledger: versioned `BenchRecord` artifacts
//! (`BENCH_<seq>.json`) and the noise-aware regression gate that
//! compares them.
//!
//! Every performance PR so far has left its numbers in prose (commit
//! messages, EXPERIMENTS.md). The ledger makes the trajectory machine
//! readable: one record per benchmark run, carrying
//!
//! * a **host fingerprint** (core count, `WISE_THREADS` / `WISE_POOL` /
//!   `WISE_SIMD` state, detected SIMD capability, rustc version) so
//!   records from different machines are never silently compared;
//! * a **corpus digest** pinning the exact input set;
//! * per-stage wall times lifted from the trace [`Summary`] (count /
//!   min / p50 / p95 / total, nanoseconds);
//! * derived **throughput** figures (e.g. `kernel.spmv` nnz/s from the
//!   existing counters);
//! * **model quality**: accuracy, P-ratio, summed per-class confusion,
//!   and per-matrix *regret* (chosen-config time ÷ oracle-best time).
//!
//! [`gate`] compares a candidate record against all comparable prior
//! records and fails when a tracked stage regresses beyond a
//! noise-aware threshold: the candidate's **min-of-k** is compared to
//! the best prior min, with a relative tolerance widened by the
//! observed min→p50 spread of both sides (a stage that jitters 40%
//! between its fastest and median iteration cannot be gated at 10%).
//!
//! JSON is emitted by the same hand-rolled writer and validated by the
//! same in-crate parser ([`crate::export::json`]) as every other
//! artifact of this crate — still zero dependencies.

use crate::export::json::{self, Value};
use crate::export::write_escaped;
use crate::telemetry::QuantileSketch;
use crate::Summary;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Bump when the `BenchRecord` JSON layout changes incompatibly.
/// Records with a different major schema are excluded from gating.
pub const SCHEMA_VERSION: u64 = 1;

/// The stages the default [`GatePolicy`] tracks: one per hot path the
/// repo has optimized so far, plus the end-to-end selection.
pub const DEFAULT_TRACKED: &[&str] = &[
    "features.extract",
    "train.registry",
    "ml.fit",
    "kernel.convert",
    "kernel.spmv",
    "pipeline.select",
];

// ---------------------------------------------------------------------
// Host fingerprint
// ---------------------------------------------------------------------

/// What makes two benchmark runs comparable: the hardware and the
/// process-level knobs that change how the hot paths execute.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HostFingerprint {
    /// `std::thread::available_parallelism()` at record time.
    pub cpu_cores: u64,
    /// Raw `WISE_THREADS` value, if set.
    pub threads_env: Option<String>,
    /// Raw `WISE_POOL` value, if set (unset means the pool is on).
    pub pool_env: Option<String>,
    /// `rustc -V` output, when the recording binary could obtain it.
    pub rustc: Option<String>,
    /// Detected SIMD capability as `isa:lanes` (e.g. `avx512f:8`,
    /// `scalar:1`). `None` only in records written before the field
    /// existed.
    pub simd: Option<String>,
    /// Raw `WISE_SIMD` value, if set — it caps which kernels run, so
    /// runs under different caps must never be compared.
    pub simd_env: Option<String>,
    /// Per-kernel MLP settings as `pf{d}:il{r}` — the resolved
    /// prefetch distance and interleave factor the SIMD bench stages
    /// ran with (e.g. `pf8:il2`). `None` in records written before the
    /// MLP kernels existed; tolerated when missing so old records stay
    /// comparable.
    pub mlp: Option<String>,
    /// Raw `WISE_PREFETCH` value, if set — like `simd_env`, an explicit
    /// override changes what the kernels execute, so it must match
    /// exactly for two runs to be comparable.
    pub prefetch_env: Option<String>,
}

/// The host's SIMD capability in `isa:lanes` form. Mirrors the probe in
/// `wise_kernels::simd` — re-implemented here because this crate has no
/// dependencies and `wise-kernels` depends on it, not vice versa.
fn detect_simd() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        // AVX2 without FMA (or AVX-512 without both) is not worth a
        // distinct tier; the kernel probe applies the same gate.
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            if is_x86_feature_detected!("avx512f") {
                return "avx512f:8".to_string();
            }
            return "avx2:4".to_string();
        }
        if is_x86_feature_detected!("sse2") {
            return "sse2:2".to_string();
        }
    }
    "scalar:1".to_string()
}

impl HostFingerprint {
    /// Reads the fingerprint of the current process. `rustc` is left
    /// `None` — a library cannot assume a toolchain on `PATH`; bins
    /// fill it in via [`HostFingerprint::with_rustc`].
    pub fn detect() -> HostFingerprint {
        HostFingerprint {
            cpu_cores: std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(1),
            threads_env: std::env::var("WISE_THREADS").ok(),
            pool_env: std::env::var("WISE_POOL").ok(),
            rustc: None,
            simd: Some(detect_simd()),
            simd_env: std::env::var("WISE_SIMD").ok(),
            mlp: None,
            prefetch_env: std::env::var("WISE_PREFETCH").ok(),
        }
    }

    /// Returns `self` with the rustc version string attached.
    pub fn with_rustc(mut self, rustc: Option<String>) -> HostFingerprint {
        self.rustc = rustc;
        self
    }

    /// Returns `self` with the per-kernel MLP settings attached
    /// (`pf{d}:il{r}`; bins that run the SIMD bench stages record what
    /// they resolved).
    pub fn with_mlp(mut self, mlp: Option<String>) -> HostFingerprint {
        self.mlp = mlp;
        self
    }

    /// Emits the fingerprint as a JSON object (shared by the ledger and
    /// the `perf_summary.json` exporter).
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(out, "{{\"cpu_cores\":{}", self.cpu_cores);
        for (key, v) in [
            ("threads_env", &self.threads_env),
            ("pool_env", &self.pool_env),
            ("rustc", &self.rustc),
            ("simd", &self.simd),
            ("simd_env", &self.simd_env),
            ("mlp", &self.mlp),
            ("prefetch_env", &self.prefetch_env),
        ] {
            let _ = write!(out, ",\"{key}\":");
            match v {
                None => out.push_str("null"),
                Some(s) => write_json_str(out, s),
            }
        }
        out.push('}');
    }

    /// Whether two fingerprints are close enough that timing comparison
    /// is meaningful. Unknown rustc or SIMD capability on either side
    /// is tolerated (old records); everything else — including the
    /// `WISE_SIMD` cap — must match exactly.
    pub fn comparable_to(&self, other: &HostFingerprint) -> bool {
        let opt_ok = |a: &Option<String>, b: &Option<String>| match (a, b) {
            (Some(a), Some(b)) => a == b,
            _ => true,
        };
        self.cpu_cores == other.cpu_cores
            && self.threads_env == other.threads_env
            && self.pool_env == other.pool_env
            && opt_ok(&self.rustc, &other.rustc)
            && opt_ok(&self.simd, &other.simd)
            && self.simd_env == other.simd_env
            && opt_ok(&self.mlp, &other.mlp)
            && self.prefetch_env == other.prefetch_env
    }
}

// ---------------------------------------------------------------------
// Record contents
// ---------------------------------------------------------------------

/// Wall-time statistics of one stage, lifted from [`Summary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageRecord {
    pub count: u64,
    /// Fastest observation — the min-of-k the gate compares.
    pub min_ns: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    /// Tail latency (serving gates on p99). Records written before the
    /// field existed parse with `p99_ns == p95_ns`.
    pub p99_ns: u64,
    pub total_ns: u64,
}

impl StageRecord {
    /// Relative min→p50 spread, the stage's own noise gauge:
    /// `(p50 - min) / min`.
    pub fn rel_spread(&self) -> f64 {
        if self.min_ns == 0 {
            0.0
        } else {
            (self.p50_ns.saturating_sub(self.min_ns)) as f64 / self.min_ns as f64
        }
    }
}

/// Hardware-counter aggregate of one stage, lifted from
/// [`crate::PmuStats`], plus the derived per-nonzero memory traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmuStageRecord {
    /// Spans that contributed counter deltas.
    pub samples: u64,
    pub cycles: u64,
    pub instructions: u64,
    pub llc_loads: u64,
    pub llc_misses: u64,
    pub branch_misses: u64,
    /// `llc_misses × 64B ÷ <stage>.nnz` — measured post-LLC bytes per
    /// nonzero, when the stage recorded an nnz volume counter.
    pub bytes_per_nnz: Option<f64>,
}

impl PmuStageRecord {
    /// Instructions per cycle over the stage's aggregate.
    pub fn ipc(&self) -> Option<f64> {
        if self.cycles > 0 && self.instructions > 0 {
            Some(self.instructions as f64 / self.cycles as f64)
        } else {
            None
        }
    }

    /// Aggregate LLC load miss rate in `[0, 1]`.
    pub fn llc_miss_rate(&self) -> Option<f64> {
        if self.llc_loads > 0 {
            Some((self.llc_misses as f64 / self.llc_loads as f64).min(1.0))
        } else {
            None
        }
    }
}

/// Distribution summary of the `model.residual.*` stages: cost-model
/// predicted ÷ hardware measured, per (matrix, method) execution (1.0
/// means the model's bytes/cycles matched the counters exactly).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResidualSummary {
    /// Residual samples aggregated (max of the two stages' counts).
    pub count: u64,
    pub bytes_p50: f64,
    pub bytes_p95: f64,
    pub cycles_p50: f64,
    pub cycles_p95: f64,
}

/// The optional hardware-counter section of a [`BenchRecord`]. Records
/// written before the section existed (or parsed from other tools)
/// carry `None`, which the gate and all readers tolerate.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PmuSection {
    /// [`crate::pmu::status_label`] at record time — the explicit
    /// degradation marker (`off` / `available` / `unavailable (...)`).
    pub status: String,
    /// Stage name → counter aggregate, for stages that carried deltas.
    pub stages: BTreeMap<String, PmuStageRecord>,
    /// Predicted-vs-measured cost-model residuals, when the run emitted
    /// `model.residual.*` samples.
    pub residual: Option<ResidualSummary>,
}

impl PmuSection {
    /// Lifts the PMU view out of a flushed trace summary: the status
    /// marker, every stage with counter deltas (deriving bytes/nnz from
    /// the stage's `.nnz` volume counter when present, 64-byte lines),
    /// and the residual distribution when `model.residual.*` stages
    /// were recorded (their samples are permille ratios; see
    /// `wise_perf::residual`).
    pub fn from_summary(summary: &Summary) -> PmuSection {
        let mut stages = BTreeMap::new();
        for (name, st) in &summary.stages {
            let Some(pmu) = &st.pmu else { continue };
            let nnz = summary.counters.get(&format!("{name}.nnz")).copied().unwrap_or(0);
            let bytes_per_nnz = (nnz > 0).then(|| pmu.llc_misses as f64 * 64.0 / nnz as f64);
            stages.insert(
                name.clone(),
                PmuStageRecord {
                    samples: pmu.samples,
                    cycles: pmu.cycles,
                    instructions: pmu.instructions,
                    llc_loads: pmu.llc_loads,
                    llc_misses: pmu.llc_misses,
                    branch_misses: pmu.branch_misses,
                    bytes_per_nnz,
                },
            );
        }
        let bytes = summary.stages.get("model.residual.bytes");
        let cycles = summary.stages.get("model.residual.cycles");
        let residual = (bytes.is_some() || cycles.is_some()).then(|| {
            let permille = |v: u64| v as f64 / 1000.0;
            ResidualSummary {
                count: bytes
                    .map(|s| s.count)
                    .unwrap_or(0)
                    .max(cycles.map(|s| s.count).unwrap_or(0)),
                bytes_p50: bytes.map(|s| permille(s.p50_ns)).unwrap_or(0.0),
                bytes_p95: bytes.map(|s| permille(s.p95_ns)).unwrap_or(0.0),
                cycles_p50: cycles.map(|s| permille(s.p50_ns)).unwrap_or(0.0),
                cycles_p95: cycles.map(|s| permille(s.p95_ns)).unwrap_or(0.0),
            }
        });
        PmuSection { status: summary.pmu_status.clone(), stages, residual }
    }
}

/// The drift monitor's reading at record time, lifted from
/// `wise_core::drift` via the [`crate::telemetry`] gauge. Records
/// written before the monitor existed carry `None` (tolerated
/// everywhere, like the `pmu` section).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DriftRecord {
    /// [`crate::telemetry::DriftLevel::label`] (`stable`, `warning`, or
    /// `retrain-suggested`).
    pub status: String,
    /// EWMA of measured/predicted execution time, permille.
    pub regret_permille: u64,
    /// EWMA of the cascade fallthrough indicator, permille.
    pub fallthrough_permille: u64,
    /// Executions the monitor had observed.
    pub observed: u64,
}

impl DriftRecord {
    /// The current [`crate::telemetry::drift_gauge`] reading, or `None`
    /// when the monitor never observed an execution this process (the
    /// record then matches pre-monitor ones).
    pub fn from_gauge() -> Option<DriftRecord> {
        let g = crate::telemetry::drift_gauge();
        (g.observed > 0).then(|| DriftRecord {
            status: g.level.label().to_string(),
            regret_permille: g.regret_permille,
            fallthrough_permille: g.fallthrough_permille,
            observed: g.observed,
        })
    }
}

/// Prediction-quality metrics of the model the run trained.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ModelMetrics {
    /// Mean exact-match accuracy across the per-configuration
    /// classifiers (out-of-fold).
    pub accuracy: f64,
    /// Mean oracle-best time ÷ chosen-config time over the corpus
    /// (≤ 1.0; 1.0 means every choice was oracle-optimal).
    pub p_ratio: f64,
    /// Mean per-matrix regret (chosen ÷ oracle, ≥ 1.0).
    pub mean_regret: f64,
    /// Worst per-matrix regret.
    pub max_regret: f64,
    /// Class count of the confusion matrix below.
    pub n_classes: u64,
    /// Row-major summed confusion counts (true × predicted), all
    /// classifiers combined.
    pub confusion: Vec<u64>,
    /// Per-matrix `(name, regret)` pairs, corpus order.
    pub per_matrix_regret: Vec<(String, f64)>,
}

/// One ledger entry: everything needed to compare this run against any
/// other run of the same pinned suite.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchRecord {
    pub schema_version: u64,
    /// Ledger sequence number (the `<seq>` of `BENCH_<seq>.json`).
    pub seq: u64,
    /// Free-form tag, e.g. `"quick"` or a git revision.
    pub note: String,
    /// Digest pinning the benchmark input set (see [`fnv1a`]).
    pub corpus_digest: String,
    pub host: HostFingerprint,
    /// Stage name → wall-time statistics.
    pub stages: BTreeMap<String, StageRecord>,
    /// Raw summed counters carried over from the trace.
    pub counters: BTreeMap<String, u64>,
    /// Derived rates, e.g. `kernel.spmv.nnz_per_s`.
    pub throughput: BTreeMap<String, f64>,
    /// Model quality, when the run trained and evaluated one.
    pub model: Option<ModelMetrics>,
    /// Hardware-counter section; `None` on records written before the
    /// field existed (tolerated everywhere, including the gate).
    pub pmu: Option<PmuSection>,
    /// Stage name → mergeable quantile sketch over the same durations
    /// the [`StageRecord`] percentiles summarize. Empty on records
    /// written before sketches existed (tolerated everywhere).
    pub sketches: BTreeMap<String, QuantileSketch>,
    /// Prediction-drift reading at record time; `None` on old records
    /// and on runs that never fed the monitor.
    pub drift: Option<DriftRecord>,
}

impl BenchRecord {
    /// Builds a record from a flushed trace summary: every stage is
    /// lifted verbatim, counters are copied, and throughput rates are
    /// derived where both a volume counter and its stage time exist
    /// (`kernel.spmv.nnz` ÷ `kernel.spmv` total, and the analogous
    /// `rows` rate).
    pub fn from_summary(
        seq: u64,
        note: &str,
        corpus_digest: &str,
        host: HostFingerprint,
        summary: &Summary,
    ) -> BenchRecord {
        let stages: BTreeMap<String, StageRecord> = summary
            .stages
            .iter()
            .map(|(name, st)| {
                let rec = StageRecord {
                    count: st.count,
                    min_ns: st.min_ns,
                    p50_ns: st.p50_ns,
                    p95_ns: st.p95_ns,
                    p99_ns: st.p99_ns,
                    total_ns: st.total_ns,
                };
                (name.clone(), rec)
            })
            .collect();
        let mut throughput = BTreeMap::new();
        for (counter, rate) in [
            ("kernel.spmv.nnz", "kernel.spmv.nnz_per_s"),
            ("kernel.spmv.rows", "kernel.spmv.rows_per_s"),
            ("kernel.convert.nnz", "kernel.convert.nnz_per_s"),
            ("bench.simd.scalar.nnz", "bench.simd.scalar.nnz_per_s"),
            ("bench.simd.vector.nnz", "bench.simd.vector.nnz_per_s"),
            ("bench.simd.mlp.nnz", "bench.simd.mlp.nnz_per_s"),
        ] {
            let volume = summary.counters.get(counter).copied().unwrap_or(0);
            let stage = counter.rsplit_once('.').map(|(s, _)| s).unwrap_or(counter);
            let total_ns = stages.get(stage).map(|s| s.total_ns).unwrap_or(0);
            if volume > 0 && total_ns > 0 {
                throughput.insert(rate.to_string(), volume as f64 * 1e9 / total_ns as f64);
            }
        }
        BenchRecord {
            schema_version: SCHEMA_VERSION,
            seq,
            note: note.to_string(),
            corpus_digest: corpus_digest.to_string(),
            host,
            stages,
            counters: summary.counters.clone(),
            throughput,
            model: None,
            pmu: Some(PmuSection::from_summary(summary)),
            sketches: summary
                .stages
                .iter()
                .map(|(name, st)| (name.clone(), st.sketch.clone()))
                .collect(),
            drift: DriftRecord::from_gauge(),
        }
    }

    // -- JSON ---------------------------------------------------------

    /// Serializes the record with the crate's hand-rolled JSON writer.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024 + self.stages.len() * 128);
        let _ = write!(
            out,
            "{{\"schema_version\":{},\"seq\":{},\"note\":",
            self.schema_version, self.seq
        );
        write_json_str(&mut out, &self.note);
        out.push_str(",\"corpus_digest\":");
        write_json_str(&mut out, &self.corpus_digest);
        out.push_str(",\"host\":");
        self.host.write_json(&mut out);
        out.push_str(",\"stages\":{");
        let mut first = true;
        for (name, st) in &self.stages {
            if !first {
                out.push(',');
            }
            first = false;
            write_json_str(&mut out, name);
            let _ = write!(
                out,
                ":{{\"count\":{},\"min_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"total_ns\":{}}}",
                st.count, st.min_ns, st.p50_ns, st.p95_ns, st.p99_ns, st.total_ns
            );
        }
        out.push_str("},\"counters\":{");
        let mut first = true;
        for (name, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            write_json_str(&mut out, name);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"throughput\":{");
        let mut first = true;
        for (name, v) in &self.throughput {
            if !first {
                out.push(',');
            }
            first = false;
            write_json_str(&mut out, name);
            let _ = write!(out, ":{v:.3}");
        }
        out.push_str("},\"model\":");
        match &self.model {
            None => out.push_str("null"),
            Some(m) => {
                let _ = write!(
                    out,
                    "{{\"accuracy\":{:.6},\"p_ratio\":{:.6},\"mean_regret\":{:.6},\
                     \"max_regret\":{:.6},\"n_classes\":{},\"confusion\":[",
                    m.accuracy, m.p_ratio, m.mean_regret, m.max_regret, m.n_classes
                );
                for (i, c) in m.confusion.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{c}");
                }
                out.push_str("],\"per_matrix_regret\":[");
                for (i, (name, r)) in m.per_matrix_regret.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"name\":");
                    write_json_str(&mut out, name);
                    let _ = write!(out, ",\"regret\":{r:.6}}}");
                }
                out.push_str("]}");
            }
        }
        out.push_str(",\"pmu\":");
        match &self.pmu {
            None => out.push_str("null"),
            Some(p) => {
                out.push_str("{\"status\":");
                write_json_str(&mut out, &p.status);
                out.push_str(",\"stages\":{");
                let mut first = true;
                for (name, st) in &p.stages {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    write_json_str(&mut out, name);
                    let _ = write!(
                        out,
                        ":{{\"samples\":{},\"cycles\":{},\"instructions\":{},\"llc_loads\":{},\"llc_misses\":{},\"branch_misses\":{}",
                        st.samples, st.cycles, st.instructions, st.llc_loads, st.llc_misses,
                        st.branch_misses
                    );
                    // ipc / llc_miss_rate are derived; emitted for
                    // greppability, recomputed (not parsed) on read.
                    match st.ipc() {
                        Some(v) => {
                            let _ = write!(out, ",\"ipc\":{v:.4}");
                        }
                        None => out.push_str(",\"ipc\":null"),
                    }
                    match st.llc_miss_rate() {
                        Some(v) => {
                            let _ = write!(out, ",\"llc_miss_rate\":{v:.6}");
                        }
                        None => out.push_str(",\"llc_miss_rate\":null"),
                    }
                    match st.bytes_per_nnz {
                        Some(v) => {
                            let _ = write!(out, ",\"bytes_per_nnz\":{v:.6}}}");
                        }
                        None => out.push_str(",\"bytes_per_nnz\":null}"),
                    }
                }
                out.push_str("},\"residual\":");
                match &p.residual {
                    None => out.push_str("null"),
                    Some(r) => {
                        let _ = write!(
                            out,
                            "{{\"count\":{},\"bytes_p50\":{:.6},\"bytes_p95\":{:.6},\"cycles_p50\":{:.6},\"cycles_p95\":{:.6}}}",
                            r.count, r.bytes_p50, r.bytes_p95, r.cycles_p50, r.cycles_p95
                        );
                    }
                }
                out.push('}');
            }
        }
        out.push_str(",\"sketches\":{");
        let mut first = true;
        for (name, sk) in &self.sketches {
            if !first {
                out.push(',');
            }
            first = false;
            write_json_str(&mut out, name);
            out.push(':');
            out.push_str(&sk.to_json());
        }
        out.push_str("},\"drift\":");
        match &self.drift {
            None => out.push_str("null"),
            Some(d) => {
                out.push_str("{\"status\":");
                write_json_str(&mut out, &d.status);
                let _ = write!(
                    out,
                    ",\"regret_permille\":{},\"fallthrough_permille\":{},\"observed\":{}}}",
                    d.regret_permille, d.fallthrough_permille, d.observed
                );
            }
        }
        out.push('}');
        out
    }

    /// Parses a record emitted by [`BenchRecord::to_json`] (or any
    /// schema-compatible document).
    pub fn from_json(text: &str) -> Result<BenchRecord, String> {
        let doc = json::parse(text)?;
        let u64_of = |v: &Value, what: &str| -> Result<u64, String> {
            v.as_f64().map(|f| f as u64).ok_or_else(|| format!("{what}: not a number"))
        };
        let str_of = |v: &Value, what: &str| -> Result<String, String> {
            v.as_str().map(str::to_string).ok_or_else(|| format!("{what}: not a string"))
        };
        let field = |name: &str| -> Result<&Value, String> {
            doc.get(name).ok_or_else(|| format!("missing field '{name}'"))
        };

        let schema_version = u64_of(field("schema_version")?, "schema_version")?;
        let seq = u64_of(field("seq")?, "seq")?;
        let note = str_of(field("note")?, "note")?;
        let corpus_digest = str_of(field("corpus_digest")?, "corpus_digest")?;

        let host_v = field("host")?;
        let opt_str = |key: &str| host_v.get(key).and_then(|v| v.as_str()).map(str::to_string);
        let host = HostFingerprint {
            cpu_cores: u64_of(host_v.get("cpu_cores").ok_or("host.cpu_cores")?, "cpu_cores")?,
            threads_env: opt_str("threads_env"),
            pool_env: opt_str("pool_env"),
            rustc: opt_str("rustc"),
            simd: opt_str("simd"),
            simd_env: opt_str("simd_env"),
            mlp: opt_str("mlp"),
            prefetch_env: opt_str("prefetch_env"),
        };

        let mut stages = BTreeMap::new();
        for (name, st) in field("stages")?.as_object().ok_or("stages: not an object")? {
            let g = |key: &str| -> Result<u64, String> {
                u64_of(st.get(key).ok_or_else(|| format!("stage {name}: missing {key}"))?, key)
            };
            let p95_ns = g("p95_ns")?;
            stages.insert(
                name.clone(),
                StageRecord {
                    count: g("count")?,
                    min_ns: g("min_ns")?,
                    p50_ns: g("p50_ns")?,
                    p95_ns,
                    // serde-default equivalent: records written before
                    // p99 existed fall back to their p95.
                    p99_ns: st
                        .get("p99_ns")
                        .and_then(|v| v.as_f64())
                        .map(|f| f as u64)
                        .unwrap_or(p95_ns),
                    total_ns: g("total_ns")?,
                },
            );
        }

        let mut counters = BTreeMap::new();
        for (name, v) in field("counters")?.as_object().ok_or("counters: not an object")? {
            counters.insert(name.clone(), u64_of(v, name)?);
        }
        let mut throughput = BTreeMap::new();
        for (name, v) in field("throughput")?.as_object().ok_or("throughput: not an object")? {
            throughput.insert(name.clone(), v.as_f64().ok_or_else(|| format!("{name}: NaN"))?);
        }

        let model = match field("model")? {
            Value::Null => None,
            m => {
                let f = |key: &str| -> Result<f64, String> {
                    m.get(key)
                        .and_then(|v| v.as_f64())
                        .ok_or_else(|| format!("model.{key}: missing"))
                };
                let confusion = m
                    .get("confusion")
                    .and_then(|v| v.as_array())
                    .ok_or("model.confusion: missing")?
                    .iter()
                    .map(|v| u64_of(v, "confusion cell"))
                    .collect::<Result<Vec<u64>, String>>()?;
                let per_matrix_regret = m
                    .get("per_matrix_regret")
                    .and_then(|v| v.as_array())
                    .ok_or("model.per_matrix_regret: missing")?
                    .iter()
                    .map(|v| -> Result<(String, f64), String> {
                        Ok((
                            str_of(v.get("name").ok_or("regret entry name")?, "name")?,
                            v.get("regret").and_then(|r| r.as_f64()).ok_or("regret value")?,
                        ))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Some(ModelMetrics {
                    accuracy: f("accuracy")?,
                    p_ratio: f("p_ratio")?,
                    mean_regret: f("mean_regret")?,
                    max_regret: f("max_regret")?,
                    n_classes: u64_of(m.get("n_classes").ok_or("model.n_classes")?, "n_classes")?,
                    confusion,
                    per_matrix_regret,
                })
            }
        };

        // Tolerated-when-missing: old records have no "pmu" field.
        let pmu = match doc.get("pmu") {
            None | Some(Value::Null) => None,
            Some(p) => {
                let status = p
                    .get("status")
                    .and_then(|v| v.as_str())
                    .ok_or("pmu.status: missing")?
                    .to_string();
                let mut pmu_stages = BTreeMap::new();
                if let Some(obj) = p.get("stages").and_then(|v| v.as_object()) {
                    for (name, st) in obj {
                        let g = |key: &str| -> Result<u64, String> {
                            u64_of(
                                st.get(key)
                                    .ok_or_else(|| format!("pmu stage {name}: missing {key}"))?,
                                key,
                            )
                        };
                        pmu_stages.insert(
                            name.clone(),
                            PmuStageRecord {
                                samples: g("samples")?,
                                cycles: g("cycles")?,
                                instructions: g("instructions")?,
                                llc_loads: g("llc_loads")?,
                                llc_misses: g("llc_misses")?,
                                branch_misses: g("branch_misses")?,
                                bytes_per_nnz: st.get("bytes_per_nnz").and_then(|v| v.as_f64()),
                            },
                        );
                    }
                }
                let residual = match p.get("residual") {
                    None | Some(Value::Null) => None,
                    Some(r) => {
                        let f = |key: &str| -> Result<f64, String> {
                            r.get(key)
                                .and_then(|v| v.as_f64())
                                .ok_or_else(|| format!("pmu.residual.{key}: missing"))
                        };
                        Some(ResidualSummary {
                            count: f("count")? as u64,
                            bytes_p50: f("bytes_p50")?,
                            bytes_p95: f("bytes_p95")?,
                            cycles_p50: f("cycles_p50")?,
                            cycles_p95: f("cycles_p95")?,
                        })
                    }
                };
                Some(PmuSection { status, stages: pmu_stages, residual })
            }
        };

        // Tolerated-when-missing: old records have no sketches/drift.
        let mut sketches = BTreeMap::new();
        if let Some(obj) = doc.get("sketches").and_then(|v| v.as_object()) {
            for (name, v) in obj {
                let sk = QuantileSketch::from_json(v)
                    .ok_or_else(|| format!("sketches.{name}: malformed sketch"))?;
                sketches.insert(name.clone(), sk);
            }
        }
        let drift = match doc.get("drift") {
            None | Some(Value::Null) => None,
            Some(d) => {
                let g = |key: &str| -> Result<u64, String> {
                    u64_of(d.get(key).ok_or_else(|| format!("drift.{key}: missing"))?, key)
                };
                Some(DriftRecord {
                    status: str_of(d.get("status").ok_or("drift.status")?, "status")?,
                    regret_permille: g("regret_permille")?,
                    fallthrough_permille: g("fallthrough_permille")?,
                    observed: g("observed")?,
                })
            }
        };

        Ok(BenchRecord {
            schema_version,
            seq,
            note,
            corpus_digest,
            host,
            stages,
            counters,
            throughput,
            model,
            pmu,
            sketches,
            drift,
        })
    }
}

fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    write_escaped(out, s);
    out.push('"');
}

// ---------------------------------------------------------------------
// Ledger files: BENCH_<seq>.json discovery and IO
// ---------------------------------------------------------------------

/// Parses a ledger file name (`BENCH_<seq>.json`) into its sequence
/// number.
pub fn parse_ledger_name(name: &str) -> Option<u64> {
    name.strip_prefix("BENCH_")?.strip_suffix(".json")?.parse().ok()
}

/// All ledger files under `dir`, sorted by sequence number. Files that
/// merely resemble the pattern (`BENCH_x.json`, `BENCH_.json`) are
/// ignored.
pub fn ledger_paths(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_ledger_name) {
            found.push((seq, entry.path()));
        }
    }
    found.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(found)
}

/// The next free sequence number in `dir` (1 for an empty ledger).
pub fn next_seq(dir: &Path) -> std::io::Result<u64> {
    Ok(ledger_paths(dir)?.last().map(|&(seq, _)| seq + 1).unwrap_or(1))
}

/// Loads every parseable ledger record in `dir`, sequence order.
/// Unparseable files are skipped with their error collected into
/// `warnings`.
pub fn load_all(dir: &Path, warnings: &mut Vec<String>) -> std::io::Result<Vec<BenchRecord>> {
    let mut records = Vec::new();
    for (seq, path) in ledger_paths(dir)? {
        let text = std::fs::read_to_string(&path)?;
        match BenchRecord::from_json(&text) {
            Ok(r) => records.push(r),
            Err(e) => warnings.push(format!("{}: skipped (seq {seq}): {e}", path.display())),
        }
    }
    Ok(records)
}

/// Writes `record` as `BENCH_<record.seq>.json` under `dir`, returning
/// the path. Refuses to overwrite an existing sequence number.
pub fn write_record(dir: &Path, record: &BenchRecord) -> std::io::Result<PathBuf> {
    let path = dir.join(format!("BENCH_{}.json", record.seq));
    if path.exists() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::AlreadyExists,
            format!("{} already exists; ledger entries are immutable", path.display()),
        ));
    }
    std::fs::write(&path, record.to_json())?;
    Ok(path)
}

// ---------------------------------------------------------------------
// Digest (corpus pinning)
// ---------------------------------------------------------------------

/// FNV-1a 64-bit streaming hasher — enough to pin a generated corpus to
/// its exact structure without a crypto dependency.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf29ce484222325)
    }
}

impl Fnv1a {
    pub fn new() -> Fnv1a {
        Fnv1a::default()
    }

    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Final digest, in the `fnv1a:<16 hex>` form the ledger stores.
    pub fn digest(&self) -> String {
        format!("fnv1a:{:016x}", self.0)
    }
}

// ---------------------------------------------------------------------
// Regression gate
// ---------------------------------------------------------------------

/// Tuning of the regression gate.
#[derive(Debug, Clone)]
pub struct GatePolicy {
    /// Stage names that must not regress.
    pub tracked: Vec<String>,
    /// Tolerance floor: a stage may always be this much slower
    /// (relative) than the baseline without failing.
    pub base_rel_tol: f64,
    /// How much of the observed min→p50 spread widens the tolerance.
    pub spread_weight: f64,
    /// Tolerance ceiling, so a pathologically noisy stage still gates
    /// order-of-magnitude regressions.
    pub max_rel_tol: f64,
}

impl Default for GatePolicy {
    fn default() -> Self {
        GatePolicy {
            tracked: DEFAULT_TRACKED.iter().map(|s| s.to_string()).collect(),
            base_rel_tol: 0.30,
            spread_weight: 2.0,
            max_rel_tol: 3.0,
        }
    }
}

/// Outcome for one tracked stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Candidate min is at or below the baseline min.
    Improved,
    /// Slower than baseline but inside the noise tolerance.
    WithinNoise,
    /// Slower than baseline beyond the tolerance — gate failure.
    Regressed,
    /// The stage is tracked but absent from the candidate — a silent
    /// loss of coverage, also a gate failure.
    MissingStage,
    /// No comparable baseline has the stage; informational only.
    NoBaseline,
}

impl Verdict {
    pub fn is_failure(self) -> bool {
        matches!(self, Verdict::Regressed | Verdict::MissingStage)
    }
}

/// One line of the gate diff.
#[derive(Debug, Clone)]
pub struct StageDiff {
    pub name: String,
    pub baseline_min_ns: Option<u64>,
    pub candidate_min_ns: Option<u64>,
    /// candidate ÷ baseline, when both exist.
    pub ratio: Option<f64>,
    /// The relative tolerance actually applied.
    pub tolerance: f64,
    pub verdict: Verdict,
}

/// The full gate outcome: per-stage diffs plus baseline bookkeeping.
#[derive(Debug, Clone)]
pub struct GateReport {
    pub diffs: Vec<StageDiff>,
    /// Prior records considered (comparable host + digest + schema).
    pub baselines_used: usize,
    /// Prior records excluded, with the reason.
    pub excluded: Vec<String>,
}

impl GateReport {
    pub fn passed(&self) -> bool {
        !self.diffs.iter().any(|d| d.verdict.is_failure())
    }

    pub fn failures(&self) -> usize {
        self.diffs.iter().filter(|d| d.verdict.is_failure()).count()
    }

    /// The human-readable diff the gate prints.
    pub fn render(&self) -> String {
        let mut out = String::from("== bench_regress gate ==\n");
        if self.baselines_used == 0 {
            out.push_str("(no comparable baseline records; gate passes vacuously)\n");
        }
        for reason in &self.excluded {
            let _ = writeln!(out, "excluded baseline: {reason}");
        }
        let name_w = self.diffs.iter().map(|d| d.name.len()).max().unwrap_or(5).max("stage".len());
        let _ = writeln!(
            out,
            "{:<name_w$} {:>12} {:>12} {:>8} {:>7}  verdict",
            "stage", "baseline", "candidate", "ratio", "tol"
        );
        for d in &self.diffs {
            let fmt_opt = |v: Option<u64>| match v {
                Some(ns) => fmt_ns(ns),
                None => "-".to_string(),
            };
            let ratio = match d.ratio {
                Some(r) => format!("{r:.2}x"),
                None => "-".to_string(),
            };
            let verdict = match d.verdict {
                Verdict::Improved => "ok (improved)",
                Verdict::WithinNoise => "ok (within noise)",
                Verdict::Regressed => "REGRESSED",
                Verdict::MissingStage => "MISSING STAGE",
                Verdict::NoBaseline => "ok (new stage)",
            };
            let _ = writeln!(
                out,
                "{:<name_w$} {:>12} {:>12} {:>8} {:>6.0}%  {}",
                d.name,
                fmt_opt(d.baseline_min_ns),
                fmt_opt(d.candidate_min_ns),
                ratio,
                d.tolerance * 100.0,
                verdict
            );
        }
        let _ = writeln!(
            out,
            "{} tracked stage(s), {} baseline record(s), {} failure(s)",
            self.diffs.len(),
            self.baselines_used,
            self.failures()
        );
        out
    }
}

fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.1}us", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// Compares `candidate` against every comparable record in `prior`.
///
/// A prior record is comparable when its schema version and corpus
/// digest match the candidate's and its host fingerprint is
/// [`HostFingerprint::comparable_to`] the candidate's; the rest are
/// listed in [`GateReport::excluded`] and never gate. Per tracked
/// stage, the baseline is the **best** (minimum) `min_ns` across
/// comparable records — gating against the best known run, not merely
/// the last one, so a slow regression cannot ratchet the baseline up.
pub fn gate(prior: &[BenchRecord], candidate: &BenchRecord, policy: &GatePolicy) -> GateReport {
    let mut excluded = Vec::new();
    let baselines: Vec<&BenchRecord> = prior
        .iter()
        .filter(|r| {
            if r.schema_version != candidate.schema_version {
                excluded.push(format!(
                    "seq {}: schema {} != {}",
                    r.seq, r.schema_version, candidate.schema_version
                ));
                false
            } else if r.corpus_digest != candidate.corpus_digest {
                excluded.push(format!(
                    "seq {}: corpus digest differs ({} vs {})",
                    r.seq, r.corpus_digest, candidate.corpus_digest
                ));
                false
            } else if !r.host.comparable_to(&candidate.host) {
                excluded.push(format!("seq {}: host fingerprint differs", r.seq));
                false
            } else {
                true
            }
        })
        .collect();

    let mut diffs = Vec::new();
    for name in &policy.tracked {
        // The best prior min, and the spread of the record it came from.
        let base: Option<(u64, f64)> = baselines
            .iter()
            .filter_map(|r| r.stages.get(name).map(|s| (s.min_ns, s.rel_spread())))
            .min_by_key(|&(min_ns, _)| min_ns);
        let cand = candidate.stages.get(name);
        let diff = match (base, cand) {
            (None, _) => StageDiff {
                name: name.clone(),
                baseline_min_ns: None,
                candidate_min_ns: cand.map(|s| s.min_ns),
                ratio: None,
                tolerance: policy.base_rel_tol,
                verdict: Verdict::NoBaseline,
            },
            (Some((base_min, _)), None) => StageDiff {
                name: name.clone(),
                baseline_min_ns: Some(base_min),
                candidate_min_ns: None,
                ratio: None,
                tolerance: policy.base_rel_tol,
                verdict: Verdict::MissingStage,
            },
            (Some((base_min, base_spread)), Some(c)) => {
                let spread = base_spread.max(c.rel_spread());
                let tolerance =
                    (policy.base_rel_tol + policy.spread_weight * spread).min(policy.max_rel_tol);
                let ratio = if base_min == 0 { 1.0 } else { c.min_ns as f64 / base_min as f64 };
                let verdict = if ratio <= 1.0 {
                    Verdict::Improved
                } else if ratio <= 1.0 + tolerance {
                    Verdict::WithinNoise
                } else {
                    Verdict::Regressed
                };
                StageDiff {
                    name: name.clone(),
                    baseline_min_ns: Some(base_min),
                    candidate_min_ns: Some(c.min_ns),
                    ratio: Some(ratio),
                    tolerance,
                    verdict,
                }
            }
        };
        diffs.push(diff);
    }
    GateReport { diffs, baselines_used: baselines.len(), excluded }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(min: u64, p50: u64) -> StageRecord {
        StageRecord {
            count: 5,
            min_ns: min,
            p50_ns: p50,
            p95_ns: p50 * 2,
            p99_ns: p50 * 2,
            total_ns: p50 * 5,
        }
    }

    fn record(seq: u64, stages: &[(&str, StageRecord)]) -> BenchRecord {
        BenchRecord {
            schema_version: SCHEMA_VERSION,
            seq,
            note: "test".into(),
            corpus_digest: "fnv1a:0000000000000001".into(),
            host: HostFingerprint { cpu_cores: 4, ..Default::default() },
            stages: stages.iter().map(|(n, s)| (n.to_string(), *s)).collect(),
            ..Default::default()
        }
    }

    fn policy(names: &[&str]) -> GatePolicy {
        GatePolicy { tracked: names.iter().map(|s| s.to_string()).collect(), ..Default::default() }
    }

    #[test]
    fn improvement_and_noise_pass_regression_fails() {
        let base = record(1, &[("a", stage(1000, 1000)), ("b", stage(1000, 1000))]);
        let p = policy(&["a", "b"]);

        // Improvement.
        let faster = record(2, &[("a", stage(700, 700)), ("b", stage(1000, 1000))]);
        let rep = gate(&[base.clone()], &faster, &p);
        assert!(rep.passed(), "{}", rep.render());
        assert_eq!(rep.diffs[0].verdict, Verdict::Improved);

        // Within the 30% floor tolerance (zero spread).
        let noisy = record(2, &[("a", stage(1200, 1200)), ("b", stage(1000, 1000))]);
        let rep = gate(&[base.clone()], &noisy, &p);
        assert!(rep.passed(), "{}", rep.render());
        assert_eq!(rep.diffs[0].verdict, Verdict::WithinNoise);

        // 2x with tight spread: regression.
        let slow = record(2, &[("a", stage(2000, 2000)), ("b", stage(1000, 1000))]);
        let rep = gate(&[base], &slow, &p);
        assert!(!rep.passed());
        assert_eq!(rep.diffs[0].verdict, Verdict::Regressed);
        assert_eq!(rep.failures(), 1);
        assert!(rep.render().contains("REGRESSED"));
    }

    #[test]
    fn spread_widens_tolerance() {
        // Baseline min 1000 with p50 1800: spread 0.8 -> tolerance
        // 0.30 + 2*0.8 = 1.9. A 2.5x candidate still fails; 1.8x passes.
        let base = record(1, &[("a", stage(1000, 1800))]);
        let p = policy(&["a"]);
        let ok = record(2, &[("a", stage(1800, 1800))]);
        assert!(gate(&[base.clone()], &ok, &p).passed());
        let bad = record(2, &[("a", stage(2950, 2950))]);
        assert!(!gate(&[base], &bad, &p).passed());
    }

    #[test]
    fn tolerance_is_capped() {
        // Absurd spread cannot push tolerance past max_rel_tol = 3.0:
        // a 4.5x regression always fails.
        let base = record(1, &[("a", stage(1000, 50_000))]);
        let bad = record(2, &[("a", stage(4500, 4500))]);
        assert!(!gate(&[base], &bad, &policy(&["a"])).passed());
    }

    #[test]
    fn missing_stage_fails_new_stage_passes() {
        let base = record(1, &[("a", stage(1000, 1000))]);
        let p = policy(&["a", "brand_new"]);
        let cand = record(2, &[("brand_new", stage(10, 10))]);
        let rep = gate(&[base], &cand, &p);
        assert!(!rep.passed());
        assert_eq!(rep.diffs[0].verdict, Verdict::MissingStage);
        assert_eq!(rep.diffs[1].verdict, Verdict::NoBaseline);
        assert!(rep.render().contains("MISSING STAGE"));
    }

    #[test]
    fn incomparable_hosts_and_digests_are_excluded() {
        let base = record(1, &[("a", stage(10, 10))]);
        let mut other_host = record(2, &[("a", stage(10, 10))]);
        other_host.host.cpu_cores = 64;
        let mut other_corpus = record(3, &[("a", stage(10, 10))]);
        other_corpus.corpus_digest = "fnv1a:ffff000000000000".into();
        // Candidate is 100x slower than both excluded baselines — but
        // they must not gate it.
        let cand = record(4, &[("a", stage(1000, 1000))]);
        let rep = gate(&[other_host, other_corpus], &cand, &policy(&["a"]));
        assert!(rep.passed(), "{}", rep.render());
        assert_eq!(rep.baselines_used, 0);
        assert_eq!(rep.excluded.len(), 2);
        // With the comparable baseline included, it fails.
        let rep = gate(&[base], &cand, &policy(&["a"]));
        assert!(!rep.passed());
    }

    #[test]
    fn baseline_is_best_prior_min_not_last() {
        let fast = record(1, &[("a", stage(500, 500))]);
        let slow = record(2, &[("a", stage(5000, 5000))]);
        // Candidate matches the slow run: against best-known 500ns this
        // is a regression even though the *last* record would pass it.
        let cand = record(3, &[("a", stage(5000, 5000))]);
        let rep = gate(&[fast, slow], &cand, &policy(&["a"]));
        assert!(!rep.passed());
        assert_eq!(rep.diffs[0].baseline_min_ns, Some(500));
    }

    #[test]
    fn fingerprint_comparability_rules() {
        let a = HostFingerprint {
            cpu_cores: 8,
            threads_env: Some("4".into()),
            pool_env: None,
            rustc: Some("rustc 1.95.0".into()),
            simd: Some("avx2:4".into()),
            simd_env: None,
            mlp: Some("pf8:il2".into()),
            prefetch_env: None,
        };
        assert!(a.comparable_to(&a));
        // Unknown rustc / SIMD capability on one side is tolerated
        // (records written before the fields existed).
        assert!(a.comparable_to(&HostFingerprint { rustc: None, ..a.clone() }));
        assert!(a.comparable_to(&HostFingerprint { simd: None, ..a.clone() }));
        assert!(a.comparable_to(&HostFingerprint { mlp: None, ..a.clone() }));
        // Different cores / env / rustc / capability are not.
        assert!(!a.comparable_to(&HostFingerprint { cpu_cores: 4, ..a.clone() }));
        assert!(!a.comparable_to(&HostFingerprint { threads_env: None, ..a.clone() }));
        assert!(!a.comparable_to(&HostFingerprint { pool_env: Some("0".into()), ..a.clone() }));
        assert!(
            !a.comparable_to(&HostFingerprint { rustc: Some("rustc 1.94.0".into()), ..a.clone() })
        );
        assert!(!a.comparable_to(&HostFingerprint { simd: Some("scalar:1".into()), ..a.clone() }));
        // WISE_SIMD is strict: a forced-scalar run is a different
        // experiment, even if the hardware matches.
        assert!(!a.comparable_to(&HostFingerprint { simd_env: Some("0".into()), ..a.clone() }));
        // Mismatched MLP settings (both known) or an explicit
        // WISE_PREFETCH override on one side are different experiments.
        assert!(!a.comparable_to(&HostFingerprint { mlp: Some("pf0:il1".into()), ..a.clone() }));
        assert!(!a.comparable_to(&HostFingerprint { prefetch_env: Some("4".into()), ..a.clone() }));
    }

    #[test]
    fn fingerprint_simd_round_trips_through_json() {
        let mut rec = record(1, &[("a", stage(10, 10))]);
        rec.host.simd = Some("avx512f:8".into());
        rec.host.simd_env = Some("4".into());
        rec.host.mlp = Some("pf8:il2".into());
        rec.host.prefetch_env = Some("8".into());
        let back = BenchRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(back.host, rec.host);
        // detect() always knows its own capability, in isa:lanes form.
        let detected = HostFingerprint::detect();
        assert!(detected.simd.as_deref().unwrap().contains(':'));
    }

    #[test]
    fn ledger_name_parsing() {
        assert_eq!(parse_ledger_name("BENCH_1.json"), Some(1));
        assert_eq!(parse_ledger_name("BENCH_42.json"), Some(42));
        assert_eq!(parse_ledger_name("BENCH_x.json"), None);
        assert_eq!(parse_ledger_name("BENCH_.json"), None);
        assert_eq!(parse_ledger_name("BENCH_1.json.bak"), None);
        assert_eq!(parse_ledger_name("bench_1.json"), None);
    }

    #[test]
    fn fnv1a_is_stable_and_sensitive() {
        let mut a = Fnv1a::new();
        a.update(b"corpus");
        a.update_u64(42);
        let mut b = Fnv1a::new();
        b.update(b"corpus");
        b.update_u64(42);
        assert_eq!(a.digest(), b.digest());
        let mut c = Fnv1a::new();
        c.update(b"corpus");
        c.update_u64(43);
        assert_ne!(a.digest(), c.digest());
        assert!(a.digest().starts_with("fnv1a:"));
    }

    #[test]
    fn stage_rel_spread() {
        assert_eq!(stage(1000, 1500).rel_spread(), 0.5);
        assert_eq!(stage(0, 10).rel_spread(), 0.0);
        // p50 < min cannot happen from Summary, but must not underflow.
        let s = StageRecord { count: 1, min_ns: 10, p50_ns: 5, p95_ns: 5, p99_ns: 5, total_ns: 5 };
        assert_eq!(s.rel_spread(), 0.0);
    }

    #[test]
    fn old_records_parse_with_p99_defaulted_and_no_pmu() {
        // A pre-p99, pre-pmu record exactly as PR 5 wrote it.
        let old = r#"{"schema_version":1,"seq":3,"note":"old","corpus_digest":"fnv1a:0000000000000001",
            "host":{"cpu_cores":4,"threads_env":null,"pool_env":null,"rustc":null,"simd":null,"simd_env":null},
            "stages":{"kernel.spmv":{"count":5,"min_ns":100,"p50_ns":120,"p95_ns":150,"total_ns":600}},
            "counters":{},"throughput":{},"model":null}"#;
        let rec = BenchRecord::from_json(old).expect("old schema parses");
        assert_eq!(rec.stages["kernel.spmv"].p99_ns, 150); // defaulted to p95
        assert_eq!(rec.pmu, None);
        // And it still gates cleanly against a new-schema candidate.
        let cand = record(4, &[("kernel.spmv", stage(100, 120))]);
        let rep = gate(&[rec], &cand, &policy(&["kernel.spmv"]));
        assert!(rep.passed(), "{}", rep.render());
        assert_eq!(rep.baselines_used, 1);
    }

    #[test]
    fn cascade_fields_round_trip_and_old_records_tolerate_absence() {
        // Cascade telemetry rides in the schema-free throughput /
        // counters maps: new records round-trip it bit-exactly...
        let mut rec = record(7, &[("pipeline.select", stage(1_000, 1_200))]);
        rec.throughput.insert("bench.cascade.speedup".to_string(), 12.5);
        rec.throughput.insert("select.cascade.fallthrough_rate".to_string(), 0.25);
        rec.counters.insert("select.cascade.stage1".to_string(), 9);
        rec.counters.insert("select.cascade.stage2".to_string(), 3);
        let back = BenchRecord::from_json(&rec.to_json()).expect("parses");
        assert_eq!(back, rec);
        assert_eq!(back.throughput["select.cascade.fallthrough_rate"], 0.25);
        // ...while records written before the cascade existed carry
        // neither field and must keep parsing and gating unchanged
        // (tolerated-when-missing, like the pmu section).
        let old = r#"{"schema_version":1,"seq":3,"note":"old","corpus_digest":"fnv1a:0000000000000001",
            "host":{"cpu_cores":4,"threads_env":null,"pool_env":null,"rustc":null,"simd":null,"simd_env":null},
            "stages":{"pipeline.select":{"count":5,"min_ns":1000,"p50_ns":1200,"p95_ns":1500,"total_ns":6000}},
            "counters":{},"throughput":{},"model":null}"#;
        let rec_old = BenchRecord::from_json(old).expect("pre-cascade record parses");
        assert!(rec_old.throughput.get("bench.cascade.speedup").is_none());
        assert!(rec_old.counters.get("select.cascade.stage1").is_none());
        let rep = gate(&[rec_old], &rec, &policy(&["pipeline.select"]));
        assert!(rep.passed(), "{}", rep.render());
        assert_eq!(rep.baselines_used, 1);
    }

    #[test]
    fn sketch_and_drift_round_trip_and_old_records_tolerate_absence() {
        let mut rec = record(8, &[("kernel.spmv", stage(100, 120))]);
        let mut sk = QuantileSketch::default();
        for v in [0u64, 100, 120, 150, 600, 1_000_000] {
            sk.observe(v);
        }
        rec.sketches.insert("kernel.spmv".to_string(), sk.clone());
        rec.drift = Some(DriftRecord {
            status: "warning".to_string(),
            regret_permille: 1_500,
            fallthrough_permille: 120,
            observed: 640,
        });
        let back = BenchRecord::from_json(&rec.to_json()).expect("parses");
        assert_eq!(back, rec);
        assert_eq!(back.sketches["kernel.spmv"].quantile(0.5), sk.quantile(0.5));
        // Old records (no sketches / drift fields at all) still load.
        let old = r#"{"schema_version":1,"seq":3,"note":"old","corpus_digest":"fnv1a:0000000000000001",
            "host":{"cpu_cores":4,"threads_env":null,"pool_env":null,"rustc":null,"simd":null,"simd_env":null},
            "stages":{"kernel.spmv":{"count":5,"min_ns":100,"p50_ns":120,"p95_ns":150,"total_ns":600}},
            "counters":{},"throughput":{},"model":null}"#;
        let rec_old = BenchRecord::from_json(old).expect("pre-sketch record parses");
        assert!(rec_old.sketches.is_empty());
        assert_eq!(rec_old.drift, None);
        let rep = gate(&[rec_old], &rec, &policy(&["kernel.spmv"]));
        assert!(rep.passed(), "{}", rep.render());
    }

    #[test]
    fn pmu_section_round_trips_through_json() {
        let mut rec = record(1, &[("kernel.spmv", stage(100, 120))]);
        rec.pmu = Some(PmuSection {
            status: "available".into(),
            stages: [(
                "kernel.spmv".to_string(),
                PmuStageRecord {
                    samples: 5,
                    cycles: 1_000_000,
                    instructions: 2_500_000,
                    llc_loads: 4_000,
                    llc_misses: 1_000,
                    branch_misses: 42,
                    bytes_per_nnz: Some(1.25),
                },
            )]
            .into(),
            residual: Some(ResidualSummary {
                count: 29,
                bytes_p50: 0.875,
                bytes_p95: 1.5,
                cycles_p50: 1.125,
                cycles_p95: 2.0,
            }),
        });
        let text = rec.to_json();
        // Derived figures are emitted in-band for grep/jq consumers.
        assert!(text.contains("\"ipc\":2.5"), "{text}");
        assert!(text.contains("\"llc_miss_rate\":0.25"), "{text}");
        let back = BenchRecord::from_json(&text).expect("parses");
        assert_eq!(back, rec);

        // A forced-off section (the explicit degradation marker) also
        // survives, with no stages and no residuals.
        rec.pmu = Some(PmuSection { status: "off".into(), ..Default::default() });
        let back = BenchRecord::from_json(&rec.to_json()).expect("parses");
        assert_eq!(back.pmu.as_ref().unwrap().status, "off");
        assert!(back.pmu.as_ref().unwrap().stages.is_empty());
    }

    #[test]
    fn pmu_section_lifts_from_summary() {
        use crate::span::{Event, Phase};
        use crate::PmuKind;
        let ev = |name, phase, ts_ns, value| Event { name, phase, ts_ns, tid: 1, value };
        let events = [
            ev("kernel.spmv", Phase::Begin, 0, 0),
            ev("kernel.spmv.nnz", Phase::Counter, 1, 1000),
            ev("kernel.spmv", Phase::Pmu(PmuKind::Cycles), 9, 5000),
            ev("kernel.spmv", Phase::Pmu(PmuKind::LlcMisses), 9, 125),
            ev("kernel.spmv", Phase::End, 10, 10),
            // Permille residual samples, as wise_perf::residual emits.
            ev("model.residual.bytes", Phase::Sample, 11, 800),
            ev("model.residual.cycles", Phase::Sample, 12, 1200),
        ];
        let summary = Summary::from_events(&events);
        let section = PmuSection::from_summary(&summary);
        assert!(!section.status.is_empty());
        let spmv = &section.stages["kernel.spmv"];
        assert_eq!(spmv.cycles, 5000);
        // 125 misses × 64B ÷ 1000 nnz = 8 bytes/nnz.
        assert_eq!(spmv.bytes_per_nnz, Some(8.0));
        let residual = section.residual.expect("residual summary");
        assert_eq!(residual.count, 1);
        assert_eq!(residual.bytes_p50, 0.8);
        assert_eq!(residual.cycles_p50, 1.2);
        // from_summary wires the section into the record.
        let rec =
            BenchRecord::from_summary(9, "t", "fnv1a:00", HostFingerprint::default(), &summary);
        assert_eq!(rec.pmu.as_ref().unwrap().stages.len(), 1);
        assert_eq!(rec.stages["kernel.spmv"].p99_ns, 10);
    }
}
