//! CI validator for emitted trace artifacts.
//!
//! Usage: `check_trace <trace.json> [<perf_summary.json>] [--summary
//! <perf_summary.json>] [--require stage1,stage2,...]`
//!
//! Checks that the Chrome trace parses as JSON with balanced,
//! properly-nested begin/end events, and that the perf summary (given
//! positionally or via `--summary`) conforms to the schema
//! `perf_summary_json` emits — a `host` fingerprint object with a
//! positive core count, numeric per-stage statistics, numeric counters
//! — and contains every required stage with a non-zero count. The
//! default required set is the end-to-end WISE pipeline: feature
//! extraction, labeling, training, selection, format conversion and
//! SpMV.

use wise_trace::export::json::{self, Value};
use wise_trace::export::validate_chrome_trace;

const DEFAULT_REQUIRED: &[&str] = &[
    "features.extract",
    "label.corpus",
    "train.registry",
    "pipeline.select",
    "kernel.convert",
    "kernel.spmv",
];

/// Every numeric field `perf_summary_json` writes per stage.
const STAGE_FIELDS: &[&str] =
    &["count", "p50_ns", "p95_ns", "p99_ns", "min_ns", "max_ns", "total_ns", "self_total_ns"];

/// Numeric fields of a stage's optional `pmu` block.
const PMU_FIELDS: &[&str] =
    &["samples", "cycles", "instructions", "llc_loads", "llc_misses", "branch_misses"];

fn fail(msg: &str) -> ! {
    eprintln!("check_trace: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&String> = Vec::new();
    let mut summary_flag: Option<&String> = None;
    let mut required: Vec<String> = DEFAULT_REQUIRED.iter().map(|s| s.to_string()).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--require" {
            let list = it.next().unwrap_or_else(|| fail("--require needs a comma-separated list"));
            required = list.split(',').map(|s| s.trim().to_string()).collect();
        } else if a == "--summary" {
            summary_flag = Some(it.next().unwrap_or_else(|| fail("--summary needs a path")));
        } else {
            paths.push(a);
        }
    }
    let [trace_path, rest @ ..] = paths.as_slice() else {
        fail(
            "usage: check_trace <trace.json> [<perf_summary.json>] \
             [--summary <path>] [--require a,b,...]",
        );
    };

    let trace_text = std::fs::read_to_string(trace_path)
        .unwrap_or_else(|e| fail(&format!("cannot read {trace_path}: {e}")));
    match validate_chrome_trace(&trace_text) {
        Ok(0) => fail("trace is valid JSON but contains no complete spans"),
        Ok(spans) => println!("check_trace: {trace_path}: OK ({spans} balanced spans)"),
        Err(e) => fail(&format!("{trace_path}: {e}")),
    }

    // The summary may be given positionally (historical) or via
    // --summary; both run the same validation.
    let summary_path = match (summary_flag, rest) {
        (Some(p), []) => Some(p),
        (None, [p]) => Some(*p),
        (None, []) => None,
        _ => fail("give the summary either positionally or via --summary, not both"),
    };
    if let Some(summary_path) = summary_path {
        let summary_text = std::fs::read_to_string(summary_path)
            .unwrap_or_else(|e| fail(&format!("cannot read {summary_path}: {e}")));
        let doc =
            json::parse(&summary_text).unwrap_or_else(|e| fail(&format!("{summary_path}: {e}")));
        validate_summary_schema(&doc)
            .unwrap_or_else(|e| fail(&format!("{summary_path}: schema: {e}")));
        let stages = doc.get("stages").and_then(|v| v.as_object()).unwrap();
        for name in &required {
            let count = stages
                .get(name.as_str())
                .and_then(|s| s.get("count"))
                .and_then(|c| c.as_f64())
                .unwrap_or(0.0);
            if count < 1.0 {
                fail(&format!("{summary_path}: required stage '{name}' missing or empty"));
            }
        }
        println!(
            "check_trace: {summary_path}: OK ({} stages, all {} required present)",
            stages.len(),
            required.len()
        );
    }
}

/// Validates the `perf_summary.json` schema: `host` object with a
/// positive `cpu_cores` and string-or-null env fields, `stages` mapping
/// names to objects with every numeric field, `counters` mapping names
/// to numbers.
fn validate_summary_schema(doc: &Value) -> Result<(), String> {
    let host = doc.get("host").ok_or("missing host object")?;
    let cores =
        host.get("cpu_cores").and_then(|v| v.as_f64()).ok_or("host.cpu_cores not a number")?;
    if cores < 1.0 {
        return Err(format!("host.cpu_cores must be >= 1, got {cores}"));
    }
    for key in ["threads_env", "pool_env", "rustc", "simd", "simd_env"] {
        match host.get(key) {
            Some(Value::String(_) | Value::Null) => {}
            Some(_) => return Err(format!("host.{key} must be a string or null")),
            None => return Err(format!("host.{key} missing")),
        }
    }
    // The explicit PMU degradation marker is part of the schema: every
    // summary must say whether counters were on, off, or denied.
    match doc.get("pmu_status") {
        Some(Value::String(s)) if !s.is_empty() => {}
        Some(Value::String(_)) => return Err("pmu_status empty".into()),
        _ => return Err("pmu_status missing or not a string".into()),
    }
    let stages = doc.get("stages").and_then(|v| v.as_object()).ok_or("missing stages object")?;
    for (name, st) in stages {
        for field in STAGE_FIELDS {
            let v = st
                .get(field)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("stage '{name}': {field} missing or not a number"))?;
            if v < 0.0 {
                return Err(format!("stage '{name}': {field} negative"));
            }
        }
        // pmu is optional per stage; when present it must be complete.
        if let Some(pmu) = st.get("pmu") {
            for field in PMU_FIELDS {
                let v = pmu.get(field).and_then(|v| v.as_f64()).ok_or_else(|| {
                    format!("stage '{name}': pmu.{field} missing or not a number")
                })?;
                if v < 0.0 {
                    return Err(format!("stage '{name}': pmu.{field} negative"));
                }
            }
        }
    }
    let counters =
        doc.get("counters").and_then(|v| v.as_object()).ok_or("missing counters object")?;
    for (name, v) in counters {
        if v.as_f64().is_none() {
            return Err(format!("counter '{name}' is not a number"));
        }
    }
    Ok(())
}
