//! CI validator for emitted trace artifacts.
//!
//! Usage: `check_trace <trace.json> [<perf_summary.json>] [--summary
//! <perf_summary.json>] [--snapshot <metrics_snapshot.json>]
//! [--require stage1,stage2,...]`
//!
//! Checks that the Chrome trace parses as JSON with balanced,
//! properly-nested begin/end events, and that the perf summary (given
//! positionally or via `--summary`) conforms to the schema
//! `perf_summary_json` emits — a `host` fingerprint object with a
//! positive core count, numeric per-stage statistics (including a
//! loadable quantile sketch whose count matches the stage), numeric
//! counters — and contains every required stage with a non-zero count.
//! The default required set is the end-to-end WISE pipeline: feature
//! extraction, labeling, training, selection, format conversion and
//! SpMV. `--snapshot` additionally validates a `metrics_snapshot.json`
//! written by the streaming telemetry exporter (schema version, stage
//! sketch quantiles, drift status, flight-recorder aggregates).

use wise_trace::export::json::{self, Value};
use wise_trace::export::validate_chrome_trace;
use wise_trace::telemetry::{DriftLevel, QuantileSketch};

const DEFAULT_REQUIRED: &[&str] = &[
    "features.extract",
    "label.corpus",
    "train.registry",
    "pipeline.select",
    "kernel.convert",
    "kernel.spmv",
];

/// Every numeric field `perf_summary_json` writes per stage.
const STAGE_FIELDS: &[&str] =
    &["count", "p50_ns", "p95_ns", "p99_ns", "min_ns", "max_ns", "total_ns", "self_total_ns"];

/// Numeric fields of a stage's optional `pmu` block.
const PMU_FIELDS: &[&str] =
    &["samples", "cycles", "instructions", "llc_loads", "llc_misses", "branch_misses"];

fn fail(msg: &str) -> ! {
    eprintln!("check_trace: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&String> = Vec::new();
    let mut summary_flag: Option<&String> = None;
    let mut snapshot_flag: Option<&String> = None;
    let mut required: Vec<String> = DEFAULT_REQUIRED.iter().map(|s| s.to_string()).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--require" {
            let list = it.next().unwrap_or_else(|| fail("--require needs a comma-separated list"));
            required = list.split(',').map(|s| s.trim().to_string()).collect();
        } else if a == "--summary" {
            summary_flag = Some(it.next().unwrap_or_else(|| fail("--summary needs a path")));
        } else if a == "--snapshot" {
            snapshot_flag = Some(it.next().unwrap_or_else(|| fail("--snapshot needs a path")));
        } else {
            paths.push(a);
        }
    }
    // A snapshot stands alone (`check_trace --snapshot <path>`); every
    // other mode starts from a positional trace.
    let (trace_path, rest): (Option<&String>, &[&String]) = match paths.as_slice() {
        [trace, rest @ ..] => (Some(trace), rest),
        [] if snapshot_flag.is_some() => (None, &[]),
        [] => fail(
            "usage: check_trace <trace.json> [<perf_summary.json>] \
             [--summary <path>] [--snapshot <path>] [--require a,b,...]",
        ),
    };

    if let Some(trace_path) = trace_path {
        let trace_text = std::fs::read_to_string(trace_path)
            .unwrap_or_else(|e| fail(&format!("cannot read {trace_path}: {e}")));
        match validate_chrome_trace(&trace_text) {
            Ok(0) => fail("trace is valid JSON but contains no complete spans"),
            Ok(spans) => println!("check_trace: {trace_path}: OK ({spans} balanced spans)"),
            Err(e) => fail(&format!("{trace_path}: {e}")),
        }
    }

    // The summary may be given positionally (historical) or via
    // --summary; both run the same validation.
    let summary_path = match (summary_flag, rest) {
        (Some(p), []) => Some(p),
        (None, [p]) => Some(*p),
        (None, []) => None,
        _ => fail("give the summary either positionally or via --summary, not both"),
    };
    if let Some(summary_path) = summary_path {
        let summary_text = std::fs::read_to_string(summary_path)
            .unwrap_or_else(|e| fail(&format!("cannot read {summary_path}: {e}")));
        let doc =
            json::parse(&summary_text).unwrap_or_else(|e| fail(&format!("{summary_path}: {e}")));
        validate_summary_schema(&doc)
            .unwrap_or_else(|e| fail(&format!("{summary_path}: schema: {e}")));
        let stages = doc.get("stages").and_then(|v| v.as_object()).unwrap();
        for name in &required {
            let count = stages
                .get(name.as_str())
                .and_then(|s| s.get("count"))
                .and_then(|c| c.as_f64())
                .unwrap_or(0.0);
            if count < 1.0 {
                fail(&format!("{summary_path}: required stage '{name}' missing or empty"));
            }
        }
        println!(
            "check_trace: {summary_path}: OK ({} stages, all {} required present)",
            stages.len(),
            required.len()
        );
    }

    if let Some(snapshot_path) = snapshot_flag {
        let text = std::fs::read_to_string(snapshot_path)
            .unwrap_or_else(|e| fail(&format!("cannot read {snapshot_path}: {e}")));
        let doc = json::parse(&text).unwrap_or_else(|e| fail(&format!("{snapshot_path}: {e}")));
        validate_snapshot_schema(&doc)
            .unwrap_or_else(|e| fail(&format!("{snapshot_path}: schema: {e}")));
        let stages = doc.get("stages").and_then(|v| v.as_object()).unwrap();
        println!("check_trace: {snapshot_path}: OK ({} streaming stages)", stages.len());
    }
}

/// Numeric fields of a snapshot's per-stage streaming-sketch block.
const SNAPSHOT_STAGE_FIELDS: &[&str] =
    &["count", "p50_ns", "p95_ns", "p99_ns", "max_ns", "total_ns", "alpha"];

/// Validates a `metrics_snapshot.json` written by
/// `wise_trace::telemetry::snapshot_json`: schema version 1, a
/// timestamp, the PMU status marker, per-stage sketch quantiles, a
/// drift object with a known status label, and the flight-recorder
/// aggregates.
fn validate_snapshot_schema(doc: &Value) -> Result<(), String> {
    match doc.get("schema_version").and_then(|v| v.as_f64()) {
        Some(v) if v == 1.0 => {}
        Some(v) => return Err(format!("unsupported schema_version {v}")),
        None => return Err("schema_version missing".into()),
    }
    doc.get("ts_ns").and_then(|v| v.as_f64()).ok_or("ts_ns missing or not a number")?;
    match doc.get("pmu_status") {
        Some(Value::String(s)) if !s.is_empty() => {}
        _ => return Err("pmu_status missing or empty".into()),
    }
    let stages = doc.get("stages").and_then(|v| v.as_object()).ok_or("missing stages object")?;
    for (name, st) in stages {
        for field in SNAPSHOT_STAGE_FIELDS {
            let v = st
                .get(field)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("stage '{name}': {field} missing or not a number"))?;
            if v < 0.0 {
                return Err(format!("stage '{name}': {field} negative"));
            }
        }
        let p50 = st.get("p50_ns").and_then(|v| v.as_f64()).unwrap_or(0.0);
        let p99 = st.get("p99_ns").and_then(|v| v.as_f64()).unwrap_or(0.0);
        if p99 < p50 {
            return Err(format!("stage '{name}': p99 < p50 ({p99} < {p50})"));
        }
    }
    let drift = doc.get("drift").ok_or("missing drift object")?;
    let status = drift.get("status").and_then(|v| v.as_str()).ok_or("drift.status missing")?;
    if DriftLevel::parse(status).is_none() {
        return Err(format!("drift.status '{status}' is not a known level"));
    }
    for field in ["regret_permille", "fallthrough_permille", "observed"] {
        drift
            .get(field)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("drift.{field} missing or not a number"))?;
    }
    let flight = doc.get("flight").ok_or("missing flight object")?;
    for field in ["requests", "anomalies", "ring"] {
        flight
            .get(field)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("flight.{field} missing or not a number"))?;
    }
    match flight.get("threshold_ns") {
        Some(Value::Number(_) | Value::Null) => Ok(()),
        _ => Err("flight.threshold_ns missing or mistyped".into()),
    }
}

/// Validates the `perf_summary.json` schema: `host` object with a
/// positive `cpu_cores` and string-or-null env fields, `stages` mapping
/// names to objects with every numeric field, `counters` mapping names
/// to numbers.
fn validate_summary_schema(doc: &Value) -> Result<(), String> {
    let host = doc.get("host").ok_or("missing host object")?;
    let cores =
        host.get("cpu_cores").and_then(|v| v.as_f64()).ok_or("host.cpu_cores not a number")?;
    if cores < 1.0 {
        return Err(format!("host.cpu_cores must be >= 1, got {cores}"));
    }
    for key in ["threads_env", "pool_env", "rustc", "simd", "simd_env"] {
        match host.get(key) {
            Some(Value::String(_) | Value::Null) => {}
            Some(_) => return Err(format!("host.{key} must be a string or null")),
            None => return Err(format!("host.{key} missing")),
        }
    }
    // The explicit PMU degradation marker is part of the schema: every
    // summary must say whether counters were on, off, or denied.
    match doc.get("pmu_status") {
        Some(Value::String(s)) if !s.is_empty() => {}
        Some(Value::String(_)) => return Err("pmu_status empty".into()),
        _ => return Err("pmu_status missing or not a string".into()),
    }
    let stages = doc.get("stages").and_then(|v| v.as_object()).ok_or("missing stages object")?;
    for (name, st) in stages {
        for field in STAGE_FIELDS {
            let v = st
                .get(field)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("stage '{name}': {field} missing or not a number"))?;
            if v < 0.0 {
                return Err(format!("stage '{name}': {field} negative"));
            }
        }
        // pmu is optional per stage; when present it must be complete.
        if let Some(pmu) = st.get("pmu") {
            for field in PMU_FIELDS {
                let v = pmu.get(field).and_then(|v| v.as_f64()).ok_or_else(|| {
                    format!("stage '{name}': pmu.{field} missing or not a number")
                })?;
                if v < 0.0 {
                    return Err(format!("stage '{name}': pmu.{field} negative"));
                }
            }
        }
        // The sketch is optional (summaries from older tools); when
        // present it must load and agree with the stage's count.
        if let Some(sk) = st.get("sketch") {
            let sketch = QuantileSketch::from_json(sk)
                .ok_or_else(|| format!("stage '{name}': sketch is malformed"))?;
            let count = st.get("count").and_then(|v| v.as_f64()).unwrap_or(0.0) as u64;
            if sketch.count() != count {
                return Err(format!(
                    "stage '{name}': sketch count {} != stage count {count}",
                    sketch.count()
                ));
            }
        }
    }
    let counters =
        doc.get("counters").and_then(|v| v.as_object()).ok_or("missing counters object")?;
    for (name, v) in counters {
        if v.as_f64().is_none() {
            return Err(format!("counter '{name}' is not a number"));
        }
    }
    Ok(())
}
